(* The uncertainty-model landscape of Section 7, side by side:

   - tuple-independent probabilistic databases (Prob(q)),
   - block-independent-disjoint databases,
   - counting repairs under primary keys (#Repairs(q)),
   - and the paper's incomplete databases (#Val / #Comp),

   all on the same "employee directory" data, exposing the structural
   difference the paper isolates: repair/BID choices never collide,
   whereas distinct valuations of an incomplete database can produce the
   same completion — which is exactly why #Comp and #Val diverge.

     dune exec examples/uncertainty_models.exe
*)

open Incdb_bignum
open Incdb_relational
open Incdb_cq
open Incdb_incomplete
open Incdb_probdb

let q = Query.Bcq (Cq.of_string "Emp(n, d), Dept(d)")

let () =
  Format.printf "One query, four uncertainty models@.";
  Format.printf "q = %s@.@." (Query.to_string q);

  (* 1. Tuple-independent: each fact has an independent probability. *)
  let tid =
    Tid.make
      [
        (Cdb.fact "Emp" [ "alice"; "hr" ], Qnum.of_ints 3 4);
        (Cdb.fact "Emp" [ "bob"; "sales" ], Qnum.of_ints 1 2);
        (Cdb.fact "Dept" [ "hr" ], Qnum.of_ints 9 10);
        (Cdb.fact "Dept" [ "sales" ], Qnum.of_ints 1 10);
      ]
  in
  Format.printf "[TID]      Prob(q) = %s@."
    (Qnum.to_string (Tid.probability q tid));

  (* 2. Inconsistent database + primary key Emp(name -> dept). *)
  let repairs =
    Repairs.make
      ~keys:[ ("Emp", [ 0 ]) ]
      [
        Cdb.fact "Emp" [ "alice"; "hr" ];
        Cdb.fact "Emp" [ "alice"; "sales" ];
        Cdb.fact "Emp" [ "bob"; "sales" ];
        Cdb.fact "Emp" [ "bob"; "support" ];
        Cdb.fact "Dept" [ "hr" ];
        Cdb.fact "Dept" [ "support" ];
      ]
  in
  Format.printf "[Repairs]  #Repairs(q) = %s of %s@."
    (Nat.to_string (Repairs.count_repairs ~query:q repairs))
    (Nat.to_string (Repairs.total_repairs repairs));

  (* 3. The same repairs as a uniform BID space. *)
  Format.printf "[BID]      Prob(q) = %s (uniform over repairs)@."
    (Qnum.to_string (Bid.probability q (Repairs.to_bid repairs)));

  (* 4. The paper's model: an incomplete database with nulls.  Note the
     same null ?ad reused twice (naive table!). *)
  let idb =
    Idb.make
      [
        Idb.fact_of_strings "Emp" [ "alice"; "?ad" ];
        Idb.fact_of_strings "Emp" [ "bob"; "?ad" ];
        Idb.fact_of_strings "Emp" [ "carol"; "?cd" ];
        Idb.fact_of_strings "Dept" [ "?d1" ];
        Idb.fact_of_strings "Dept" [ "?d2" ];
      ]
      (Idb.Nonuniform
         [
           ("ad", [ "hr"; "sales" ]);
           ("cd", [ "hr"; "sales"; "support" ]);
           ("d1", [ "hr"; "support" ]);
           ("d2", [ "hr"; "support" ]);
         ])
  in
  let _, vals = Incdb_core.Count_val.count (Cq.of_string "Emp(n,d), Dept(d)") idb in
  let _, comps = Incdb_core.Count_comp.count (Cq.of_string "Emp(n,d), Dept(d)") idb in
  Format.printf "[Incomplete] #Val(q) = %s of %s valuations@."
    (Nat.to_string vals)
    (Nat.to_string (Idb.total_valuations idb));
  Format.printf "[Incomplete] #Comp(q) = %s distinct completions@."
    (Nat.to_string comps);
  Format.printf "[Incomplete] Prob(q) = %s under the induced distribution@.@."
    (Qnum.to_string (Worlds.probability q idb));

  (* The structural contrast (end of Section 7): repairs never collide,
     valuations can. *)
  Format.printf "Collisions (valuations mapping to the same completion):@.";
  Format.printf "  incomplete database: %s@."
    (Nat.to_string (Worlds.collision_count idb));
  let bid_worlds = Bid.worlds (Repairs.to_bid repairs) in
  let distinct =
    List.length (List.sort_uniq Cdb.compare (List.map fst bid_worlds))
  in
  Format.printf "  repair space: %d worlds, %d distinct - never collide@."
    (List.length bid_worlds) distinct;
  Format.printf
    "@.(This collision gap is why #Comp has no analogue in the repair/BID@.";
  Format.printf
    " settings, and why the paper studies it separately from #Val.)@."
