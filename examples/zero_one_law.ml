(* Libkin's 0-1 law, observed through exact counting (Section 7 of the
   paper): as the uniform domain {1..k} grows, the fraction mu_k of
   valuations satisfying a query tends to 0 or 1.  The paper's #Val^u(q)
   is exactly the numerator of mu_k; tractable query shapes use the
   Theorem 3.9 algorithm, so the scan stays exact far beyond enumeration.

     dune exec examples/zero_one_law.exe
*)

open Incdb_cq
open Incdb_incomplete
open Incdb_core

let scan_and_print title q facts ~kmax =
  Format.printf "%s  (query: %s)@." title (Cq.to_string q);
  List.iter
    (fun (k, v) ->
      let bar_len = int_of_float (40. *. Zero_one.float_of_mu v) in
      Format.printf "  k=%-3d mu_k = %-12s %s@." k
        (Incdb_bignum.Qnum.to_string v)
        (String.make (max bar_len 0) '#'))
    (Zero_one.scan q facts ~kmax);
  Format.printf "@."

let () =
  Format.printf "The 0-1 law for incomplete databases@.@.";

  (* mu_k -> 0: a diagonal query over independent nulls. *)
  scan_and_print "Tends to 0:"
    (Cq.of_string "R(x,x)")
    [ Idb.fact "R" [ Term.null "n1"; Term.null "n2" ] ]
    ~kmax:10;

  (* mu_k -> 1: a join that some pair eventually misses...  with many
     tuples the chance that SOME tuple hits the diagonal grows if tuples
     grow with k; for a fixed table it still tends to 0 - so instead use a
     query satisfied unless a collision fails: R(x), S(y) over nonempty
     tables is always satisfied (mu = 1 for every k). *)
  scan_and_print "Constantly 1 (satisfied in every world):"
    (Cq.of_string "R(x), S(y)")
    [ Idb.fact "R" [ Term.null "a" ]; Idb.fact "S" [ Term.null "b" ] ]
    ~kmax:8;

  (* The interesting slow decay: a two-atom join through a shared value,
     computed by the Theorem 3.9 block dynamic program. *)
  scan_and_print "Tends to 0 (shared-value join, Thm 3.9 exact):"
    (Cq.of_string "R(x), S(x)")
    [
      Idb.fact "R" [ Term.null "r1" ];
      Idb.fact "R" [ Term.null "r2" ];
      Idb.fact "R" [ Term.null "r3" ];
      Idb.fact "S" [ Term.null "s1" ];
      Idb.fact "S" [ Term.null "s2" ];
      Idb.fact "S" [ Term.null "s3" ];
    ]
    ~kmax:12;

  (* Completions version on a small table (enumerated). *)
  Format.printf "Completions variant (mu over distinct completions):@.";
  let facts =
    [
      Idb.fact "S" [ Term.const "1"; Term.null "n1" ];
      Idb.fact "S" [ Term.null "n2"; Term.const "1" ];
    ]
  in
  let q = Cq.of_string "S(x,x)" in
  List.iter
    (fun k ->
      Format.printf "  k=%-3d mu_k(valuations) = %-8s mu_k(completions) = %s@."
        k
        (Incdb_bignum.Qnum.to_string (Zero_one.mu q facts ~k))
        (Incdb_bignum.Qnum.to_string (Zero_one.mu_completions q facts ~k)))
    [ 1; 2; 3; 4; 5; 6 ];
  Format.printf
    "@.(The two measures differ - the heart of the paper's #Val vs #Comp split.)@."
