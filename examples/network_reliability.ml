(* Network reliability through recursive queries over incomplete
   databases: links whose endpoints are only partially known become nulls
   with finite domains, and "how many worlds keep s connected to t" is
   exactly #Val of a Datalog reachability query — the Section 6 setting of
   queries with polynomial-time model checking beyond first-order logic.

     dune exec examples/network_reliability.exe
*)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_core
open Incdb_datalog

let () =
  Format.printf "Uncertain network: counting connected worlds@.@.";

  (* A data-center fabric: switches s, r1, r2, r3, t.  Two uplinks are
     being re-patched and their destination ports are unknown. *)
  let db =
    Idb.make
      [
        Idb.fact_of_strings "E" [ "s"; "r1" ];
        Idb.fact_of_strings "E" [ "s"; "r2" ];
        Idb.fact_of_strings "E" [ "r1"; "?up1" ];
        Idb.fact_of_strings "E" [ "r2"; "?up2" ];
        Idb.fact_of_strings "E" [ "r3"; "t" ];
      ]
      (Idb.Nonuniform
         [ ("up1", [ "r3"; "r2"; "s" ]); ("up2", [ "r3"; "r1" ]) ])
  in
  Format.printf "%a@." Idb.pp db;

  let q = Datalog.reachability ~from:"s" ~to_:"t" in
  Format.printf "query: %s@.@." (Query.to_string q);

  let reachable = Brute.count_valuations q db in
  let total = Idb.total_valuations db in
  Format.printf "worlds where s reaches t: %s of %s (reliability %s)@."
    (Nat.to_string reachable) (Nat.to_string total)
    (Qnum.to_string (Certainty.support_ratio q db));
  Format.printf "possible: %b   certain: %b@.@." (Certainty.possible q db)
    (Certainty.certain q db);

  (* Per-world detail. *)
  Format.printf "world-by-world:@.";
  Idb.iter_valuations db (fun v ->
      let ok = Query.eval q (Idb.apply db v) in
      Format.printf "  up1=%-3s up2=%-3s  connected: %b@."
        (List.assoc "up1" v) (List.assoc "up2" v) ok);

  (* The same count under completions: collisions are possible when the
     two uplinks cross-connect symmetrically. *)
  let comps = Brute.count_completions q db in
  Format.printf "@.distinct connected completions: %s@." (Nat.to_string comps);

  (* A custom Datalog policy: t is "safe" if reachable from s through r3
     only (no direct fabric loops back to s). *)
  let policy =
    Datalog.parse
      "Via3(x) :- E(x, 'r3'). SafePath(y) :- Via3(x), E('r3', y)."
  in
  let safe =
    Datalog.to_query policy
      ~goal:{ Datalog.rel = "SafePath"; args = [ Datalog.Const "t" ] }
  in
  Format.printf "@.policy query: %s@." (Query.to_string safe);
  Format.printf "worlds satisfying the policy: %s of %s@."
    (Nat.to_string (Brute.count_valuations safe db))
    (Nat.to_string total)
