(* The Section 5 story, executable: #Val always has an FPRAS
   (Corollary 5.3), and the Karp-Luby estimator keeps working far beyond
   the reach of exhaustive enumeration, while naive Monte-Carlo degrades
   when satisfying valuations are rare.

     dune exec examples/approx_demo.exe
*)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_core
open Incdb_approx

(* A Codd table of n independent binary R-tuples over a domain of size d:
   #Val(R(x,x)) is exactly d^(2n) - (d^2 - d)^n, computable in closed form
   (Theorem 3.7), which lets us score the estimators at any scale. *)
let diagonal_instance n d =
  let facts =
    List.init n (fun i ->
        Idb.fact "R"
          [
            Term.null (Printf.sprintf "a%d" i);
            Term.null (Printf.sprintf "b%d" i);
          ])
  in
  Idb.make facts (Idb.Uniform (List.init d (fun i -> "v" ^ string_of_int i)))

let q = Cq.of_string "R(x,x)"

let () =
  Format.printf "FPRAS for #Val (Corollary 5.3) vs naive Monte-Carlo@.@.";
  Format.printf "%-8s %-10s %-24s %-14s %-14s %-8s@." "nulls" "domain"
    "exact #Val" "Karp-Luby" "Monte-Carlo" "KL err";
  List.iter
    (fun (n, d) ->
      let db = diagonal_instance n d in
      let exact = Count_val.codd_nonuniform q db in
      let kl = Karp_luby.estimate ~seed:17 ~samples:40_000 (Query.Bcq q) db in
      let mc = Montecarlo.estimate ~seed:17 ~samples:40_000 (Query.Bcq q) db in
      let err = abs_float (kl -. Nat.to_float exact) /. Nat.to_float exact in
      Format.printf "%-8d %-10d %-24s %-14.4g %-14.4g %-8.4f@." (2 * n) d
        (Nat.to_string exact) kl mc err)
    [ (2, 3); (5, 5); (10, 10); (20, 30); (40, 100) ];
  Format.printf
    "@.(Monte-Carlo collapses to 0 once satisfying valuations are rare;@.";
  Format.printf
    " the event-based estimator keeps its relative guarantee — the paper's@.";
  Format.printf " FPRAS/no-FPRAS divide made visible.)@.@.";

  (* The sample budget prescribed by the analysis for 1% error. *)
  let db = diagonal_instance 20 30 in
  let events = List.length (Karp_luby.events (Query.Bcq q) db) in
  Format.printf "events for the 40-null instance: %d@." events;
  Format.printf "samples for epsilon = 0.05: %d@."
    (Karp_luby.samples_for ~epsilon:0.05 ~events);

  (* Completions, by contrast, have no FPRAS in general (Theorem 5.7); on
     small instances we can still watch the exact counter. *)
  let small = diagonal_instance 3 2 in
  let _, comp = Count_comp.count_all small in
  Format.printf "@.completions of the 6-null/2-value instance (exact): %a@."
    Nat.pp comp
