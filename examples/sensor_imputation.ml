(* Sensor readings with missing values: imputation candidates become null
   domains, prior knowledge becomes per-value weights, and data-quality
   questions become (weighted) counting problems.

     dune exec examples/sensor_imputation.exe
*)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_core
open Incdb_probdb

(* Reading(sensor, level): two gauges dropped packets; the plausible
   levels come from neighboring readings.  Alert(level): levels that
   trigger an alert. *)
let db =
  Idb.make
    [
      Idb.fact_of_strings "Reading" [ "g1"; "low" ];
      Idb.fact_of_strings "Reading" [ "g2"; "?r2" ];
      Idb.fact_of_strings "Reading" [ "g3"; "?r3" ];
      Idb.fact_of_strings "Alert" [ "high" ];
      Idb.fact_of_strings "Alert" [ "critical" ];
    ]
    (Idb.Nonuniform
       [
         ("r2", [ "low"; "medium"; "high" ]);
         ("r3", [ "medium"; "high"; "critical" ]);
       ])

let q = Cq.of_string "Reading(s, l), Alert(l)"

let () =
  Format.printf "Sensor network with missing readings@.@.%a@." Idb.pp db;
  Format.printf "question: does some gauge sit at an alert level?@.";
  Format.printf "query: %s@.@." (Cq.to_string q);

  (* Counting view: support over the imputation worlds. *)
  let _, vals = Count_val.count q db in
  Format.printf "worlds raising an alert: %s of %s (support %s)@."
    (Nat.to_string vals)
    (Nat.to_string (Idb.total_valuations db))
    (Qnum.to_string (Certainty.support_ratio (Query.Bcq q) db));

  (* Sound bounds on the number of distinct alert-raising completions. *)
  let b = Comp_bounds.bounds ~seed:1 ~samples:500 q db in
  Format.printf "distinct alert-raising completions within [%s, %s]@.@."
    (Nat.to_string b.Comp_bounds.lower)
    (Nat.to_string b.Comp_bounds.upper);

  (* Weighted view: neighboring readings make some imputations likelier.
     g2 sits next to g1 (low), g3 next to the overflow channel. *)
  let weighted =
    Indnull.make db
      [
        ( "r2",
          [
            ("low", Qnum.of_ints 6 10);
            ("medium", Qnum.of_ints 3 10);
            ("high", Qnum.of_ints 1 10);
          ] );
        ( "r3",
          [
            ("medium", Qnum.of_ints 2 10);
            ("high", Qnum.of_ints 5 10);
            ("critical", Qnum.of_ints 3 10);
          ] );
      ]
  in
  Format.printf "weighted probability of an alert: %s@."
    (Qnum.to_string (Indnull.probability_brute (Query.Bcq q) weighted));
  Format.printf "(uniform imputation would give %s)@.@."
    (Qnum.to_string
       (Indnull.probability_brute (Query.Bcq q) (Indnull.uniform db)));

  (* Which gauge explains the alerts?  Per-answer support. *)
  Format.printf "support per answer tuple of Reading(s,l) & Alert(l):@.";
  List.iter
    (fun (s : Answers.support) ->
      Format.printf "  s=%-4s l=%-9s supported in %s worlds@."
        (List.nth s.Answers.tuple 0)
        (List.nth s.Answers.tuple 1)
        (Nat.to_string s.Answers.count))
    (Answers.supports q ~free:[ "s"; "l" ] db);
  Format.printf "@.certain answers: %s@."
    (match Answers.certain_answers q ~free:[ "s" ] db with
    | [] -> "(none - no gauge is certainly alerting)"
    | l -> String.concat ", " (List.map (String.concat ",") l))
