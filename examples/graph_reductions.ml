(* Graph counting through incomplete databases: the hardness reductions of
   the paper run "forward" as encodings, cross-checked against the direct
   combinatorial counters.

     dune exec examples/graph_reductions.exe
*)

open Incdb_bignum
open Incdb_graph
open Incdb_reductions

let show name got expected =
  Format.printf "  %-34s %-10s (direct: %s)%s@." name (Nat.to_string got)
    (Nat.to_string expected)
    (if Nat.equal got expected then "" else "  MISMATCH!")

let analyze name g =
  Format.printf "%s: %d nodes, %d edges@." name (Graph.node_count g)
    (Graph.edge_count g);
  show "3-colorings via #Val^u(R(x,x))"
    (Coloring_red.colorings_via_val g)
    (Colorings.count_colorings g 3);
  show "independent sets via #Val^u (RST)"
    (Indep_val.independent_sets_via_val ~variant:`Rst g)
    (Independent.count_independent_sets g);
  show "vertex covers via #Comp_Cd(R(x))"
    (Vc_comp.vertex_covers_via_comp g)
    (Independent.count_vertex_covers g);
  show "independent sets via #Comp^u"
    (Indep_comp.independent_sets_via_comp g)
    (Independent.count_independent_sets g);
  let gadget = Threecol_gadget.completion_count g in
  Format.printf "  %-34s %-10s (3-colorable: %b)@.@."
    "Prop 5.6 gadget completions" (Nat.to_string gadget)
    (Colorings.is_colorable g 3)

let () =
  Format.printf
    "Counting graph invariants through incomplete-database encodings@.@.";
  analyze "Triangle K3" (Generators.complete 3);
  analyze "Cycle C5" (Generators.cycle 5);
  analyze "Petersen-like (K4)" (Generators.complete 4);
  analyze "Path P5" (Generators.path 5);
  analyze "Random G(6, 1/2)" (Generators.random ~seed:2024 6 1 2);

  (* The bipartite-only reductions. *)
  let b = Generators.random_bipartite ~seed:7 3 3 1 2 in
  Format.printf "Random bipartite 3+3:@.";
  show "#BIS via the Prop 3.11 linear system"
    (Bis_val.bis_via_val b)
    (Independent.count_bipartite_independent_sets b);
  show "pseudoforests via #Comp^u_Cd"
    (Pf_comp.pseudoforests_via_comp b)
    (Pseudoforest.count_pseudoforests (Bipartite.to_graph b));
  Format.printf "@.";

  (* Theorem 6.3 on a small formula. *)
  let f = Cnf.random ~seed:5 ~nvars:4 ~nclauses:3 in
  Format.printf "3-CNF: %s@." (Cnf.to_string f);
  List.iter
    (fun k ->
      show
        (Printf.sprintf "#k3SAT (k=%d) via #Comp^u(neg q)" k)
        (Spanp.k3sat_via_comp f k) (Cnf.count_k3sat f k))
    [ 1; 2; 3; 4 ]
