(* Explore the dichotomies of Table 1 over a corpus of queries: the
   classification, the witness patterns, the approximability verdicts and
   the counting-class memberships.

     dune exec examples/dichotomy_explorer.exe
*)

open Incdb_cq
open Incdb_core

let corpus =
  List.map Cq.of_string
    [
      "R(x)";
      "R(x,y)";
      "R(x,x)";
      "R(x), S(x)";
      "R(x), S(y)";
      "R(x,y), S(x)";
      "R(x,y), S(x,y)";
      "R(x), S(x,y), T(y)";
      "R(x,u), S(x,v)";
      "R(x,y), S(y,z)";
      "Emp(p,dept), Dept(dept), Badge(p,b)";
      "A(x), B(x), C(x), D(y), E(y)";
    ]

let () =
  print_string (Classify.table1 corpus);
  print_newline ();

  (* Detailed report for a few interesting queries. *)
  let detail q =
    Format.printf "=== %s ===@." (Cq.to_string q);
    List.iter
      (fun s ->
        Format.printf "  %-11s %s@." (Setting.to_string s)
          (Classify.verdict_to_string (Classify.exact s q));
        Format.printf "  %-11s approx: %s; %s@." ""
          (Classify.approx_verdict_to_string (Classify.approximate s q))
          (Classify.membership s))
      Setting.all;
    Format.printf "@."
  in
  detail (Cq.of_string "R(x,y), S(x,y)");
  detail (Cq.of_string "Emp(p,dept), Dept(dept), Badge(p,b)")
