(* Quickstart: the paper's running example (Example 2.2 / Figure 1),
   driven through the public API.

     dune exec examples/quickstart.exe
*)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_core

let () =
  (* The incomplete database D = (T, dom) with
     T = {S(a,b), S(?n1,a), S(a,?n2)},
     dom(n1) = {a,b,c}, dom(n2) = {a,b}. *)
  let db =
    Idb.make
      [
        Idb.fact_of_strings "S" [ "a"; "b" ];
        Idb.fact_of_strings "S" [ "?n1"; "a" ];
        Idb.fact_of_strings "S" [ "a"; "?n2" ];
      ]
      (Idb.Nonuniform [ ("n1", [ "a"; "b"; "c" ]); ("n2", [ "a"; "b" ]) ])
  in
  let q = Cq.of_string "S(x,x)" in
  Format.printf "Database:@.%a@." Idb.pp db;
  Format.printf "Query: %s@.@." (Cq.to_string q);

  (* Enumerate the six valuations, as in Figure 1. *)
  Format.printf "Valuations and completions (Figure 1):@.";
  Idb.iter_valuations db (fun v ->
      let completion = Idb.apply db v in
      let verdict = if Cq.eval q completion then "yes" else "no" in
      let binding = String.concat " " (List.map (fun (n, c) -> n ^ "->" ^ c) v) in
      Format.printf "  %-12s %-35s |= q? %s@."
        binding
        (Format.asprintf "%a" Incdb_relational.Cdb.pp completion)
        verdict);

  (* The two counting problems of the paper. *)
  let _, vals = Count_val.count q db in
  let _, comps = Count_comp.count q db in
  Format.printf "@.#Val(S(x,x))  = %a  (paper: 4)@." Nat.pp vals;
  Format.printf "#Comp(S(x,x)) = %a  (paper: 3)@." Nat.pp comps;

  (* What does the dichotomy say about this query and database shape? *)
  let setting = Setting.of_idb Setting.Valuations db in
  Format.printf "@.Setting %s: %s@."
    (Setting.to_string setting)
    (Classify.verdict_to_string (Classify.exact setting q));
  let setting' = Setting.of_idb Setting.Completions db in
  Format.printf "Setting %s: %s@."
    (Setting.to_string setting')
    (Classify.verdict_to_string (Classify.exact setting' q))
