(* A realistic missing-data scenario: an HR database in which some
   employees' office assignments and clearance levels are unknown, modeled
   as nulls with finite domains (the paper's closed-world setting).

   We measure the *support* of several Boolean queries: how many of the
   possible worlds (valuations / completions) satisfy them — exactly the
   quantities #Val(q) and #Comp(q) whose complexity the paper maps out.

     dune exec examples/census.exe
*)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_core
open Incdb_approx

(* Office(person, city): some cities unknown.  Clearance(level): levels
   granted this quarter, one record pending.  Site(city): cities with an
   open site. *)
let db =
  Idb.make
    [
      Idb.fact_of_strings "Office" [ "ada"; "lyon" ];
      Idb.fact_of_strings "Office" [ "grace"; "?grace_city" ];
      Idb.fact_of_strings "Office" [ "alan"; "?alan_city" ];
      Idb.fact_of_strings "Site" [ "?new_site" ];
      Idb.fact_of_strings "Skill" [ "grace"; "compilers" ];
      Idb.fact_of_strings "Skill" [ "?prover"; "proofs" ];
      Idb.fact_of_strings "Clearance" [ "?pending_level" ];
    ]
    (Idb.Nonuniform
       [
         ("grace_city", [ "berlin"; "paris"; "amsterdam" ]);
         ("alan_city", [ "london"; "paris" ]);
         ("new_site", [ "paris"; "london"; "madrid" ]);
         ("prover", [ "ada"; "alan" ]);
         ("pending_level", [ "secret"; "topsecret" ]);
       ])

let report q_str =
  let q = Cq.of_string q_str in
  let algo_v, vals = Count_val.count q db in
  let algo_c, comps = Count_comp.count q db in
  let total = Idb.total_valuations db in
  let support =
    100. *. Nat.to_float vals /. Nat.to_float total
  in
  Format.printf "query: %s@." q_str;
  Format.printf "  #Val  = %s (%.1f%% of %s worlds)  [%s]@."
    (Nat.to_string vals) support (Nat.to_string total)
    (Count_val.algorithm_to_string algo_v);
  Format.printf "  #Comp = %s distinct completions  [%s]@."
    (Nat.to_string comps)
    (Count_comp.algorithm_to_string algo_c);
  (* Estimator cross-check (Corollary 5.3: #Val always has an FPRAS). *)
  let est = Karp_luby.estimate ~seed:1 ~samples:20_000 (Query.Bcq q) db in
  Format.printf "  FPRAS estimate of #Val: %.1f@.@." est

let () =
  Format.printf "Possible-world analysis of the HR database@.@.";
  Format.printf "%a@." Idb.pp db;

  (* Is someone surely in a city with an open site?  Certain answers would
     say "no" unless it holds in EVERY world; counting tells us how close
     to certain it is. *)
  report "Office(p, c), Site(c)";

  (* Is any clearance pending at top-secret level? *)
  report "Clearance(l)";

  (* Is some employee with a recorded skill placed in a site city?
     (the shared person variable drops the support further) *)
  report "Office(p, c), Site(c), Skill(p, s)";

  (* Classification: the first query has the R(x) ∧ S(x) pattern (the
     shared city variable), so exact #Val is #P-hard in the non-uniform
     settings — brute force above — while the uniform settings are
     tractable (Theorem 3.9) and #Val always admits an FPRAS. *)
  let q = Cq.of_string "Office(p, c), Site(c)" in
  List.iter
    (fun s ->
      Format.printf "%s: %s@." (Setting.to_string s)
        (Classify.verdict_to_string (Classify.exact s q)))
    Setting.all
