(** The classical decision problems that the paper's counting problems
    refine (Introduction, Section 1): certainty and possibility of a
    Boolean query over an incomplete database.

    [q] is {e certain} when every valuation satisfies it, {e possible}
    when some valuation does.  Counting gives the refinement: certainty
    iff [#Val(q) = total], and the support ratio measures "how close to
    certain" [q] is.

    For monotone queries possibility is decidable in polynomial time: some
    valuation satisfies [q] iff the Karp–Luby event set is non-empty (an
    event is exactly a consistent partial match).  Certainty of a BCQ is
    coNP-hard in general, so the general path counts. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

(** [possible q db] — decides [∃ν. ν(db) |= q].  Polynomial for monotone
    queries; falls back to enumeration (with [limit]) otherwise. *)
val possible : ?limit:int -> Query.t -> Idb.t -> bool

(** [certain q db] — decides [∀ν. ν(db) |= q] by comparing [#Val] against
    the number of valuations (using the tractable counters when the query
    shape allows, enumeration otherwise). *)
val certain : ?limit:int -> Query.t -> Idb.t -> bool

(** [support_ratio q db] is [#Val(q) / total valuations] as an exact
    rational — 1 iff certain, 0 iff impossible. *)
val support_ratio : ?limit:int -> Query.t -> Idb.t -> Qnum.t
