(** Exact completion counting for Codd tables by candidate-space
    enumeration — the constructive reading of Proposition B.1's membership
    proof.

    The #P machine of Proposition B.1 guesses a set [S] of ground facts
    drawn from the union of the per-fact ground instantiations [P(f)] and
    accepts iff [S] satisfies the query and is a completion (decided by
    the Lemma B.2 matching test).  Running the same machine
    deterministically enumerates [2^|U|] candidate sets where
    [U = ⋃_f P(f)], which beats brute-force valuation enumeration whenever
    the candidate universe is small — e.g. many nulls over few domain
    values: [R(⊥1) ... R(⊥n)] over [{0,1}] has [2^n] valuations but only
    [4] candidate sets. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_relational

(** [candidate_facts db] is the ground-fact universe [⋃_f P(f)]. *)
val candidate_facts : Idb.t -> Cdb.fact list

(** [count ?query ?max_candidates db] counts the completions of the Codd
    table [db] satisfying [query] (all completions if omitted).
    @raise Invalid_argument if [db] is not Codd or the candidate universe
    exceeds [max_candidates] (default 22). *)
val count : ?query:Query.t -> ?max_candidates:int -> Idb.t -> Nat.t
