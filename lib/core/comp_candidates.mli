(** Exact completion counting for Codd tables by candidate-space
    enumeration — the constructive reading of Proposition B.1's membership
    proof.

    The #P machine of Proposition B.1 guesses a set [S] of ground facts
    drawn from the union of the per-fact ground instantiations [P(f)] and
    accepts iff [S] satisfies the query and is a completion (decided by
    the Lemma B.2 matching test).  Running the same machine
    deterministically enumerates [2^|U|] candidate sets where
    [U = ⋃_f P(f)], which beats brute-force valuation enumeration whenever
    the candidate universe is small — e.g. many nulls over few domain
    values: [R(⊥1) ... R(⊥n)] over [{0,1}] has [2^n] valuations but only
    [4] candidate sets.

    {b The bitset kernel.}  [count] no longer materializes one [Cdb.t] per
    subset.  It compiles the query to a {!Incdb_cq.Lineage.t} (a DNF of
    fact-id bitmasks over [U]), precomputes each table fact's ground-image
    mask ({!Incdb_incomplete.Codd.kernel}), and enumerates candidate masks
    by recursive prefix descent, maintaining per-fact reachability and
    per-clause winnability counters incrementally — so star-check failures
    and query falsification prune whole subtrees, and a leaf costs only
    the saturating-matching test.  The mask space is split into prefix
    shards executed on {!Incdb_par.Pool} — at least 64, growing with the
    universe up to a cap of 16x the host's recommended domain count (so
    a small machine is not taxed with re-walking thousands of shard
    prefixes it cannot run in parallel).  The shard split depends on the
    universe and the host, never on [jobs], so totals (and the
    [comp_kernel.*] metrics) are bit-identical at any job count. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_relational

(** [candidate_facts db] is the ground-fact universe [⋃_f P(f)]. *)
val candidate_facts : Idb.t -> Cdb.fact list

(** [universe_within db ~limit] is the candidate universe as a sorted
    array, or [None] as soon as its size is found to exceed [limit] —
    grounding stops at [limit + 1] distinct facts, so probing an instance
    with a huge universe is cheap.  Dispatchers use this to both decide
    feasibility and hand the materialized universe to {!count}. *)
val universe_within : Idb.t -> limit:int -> Cdb.fact array option

(** Raised by {!count} when the candidate universe exceeds the cap;
    carries the actual universe size, mirroring
    [Idb.Too_many_valuations]. *)
exception Too_many_candidates of { universe : int; limit : int }

(** Default candidate cap of {!count} (80, past the single-word ceiling
    since the wide-mask path landed; previously 26, and the pre-kernel
    enumerator capped at 22). *)
val default_max_candidates : int

(** Which mask representation {!count} enumerates with.  [Auto] (the
    default) picks the single-word int kernel up to
    [Lineage.max_universe] candidates and the multi-word
    {!Incdb_bignum.Bitset.Wide} kernel beyond; [Int_masks]/[Wide_masks]
    force one side, for A/B measurement ([Int_masks] past one word
    raises {!Too_many_candidates} at the word ceiling, as the pre-wide
    dispatcher did). *)
type mask_choice = Auto | Int_masks | Wide_masks

(** [count ?query ?max_candidates ?jobs ?mask ?universe db] counts the
    completions of the Codd table [db] satisfying [query] (all completions
    if omitted), sharding the mask space over [jobs] worker domains
    (default 1; totals are bit-identical at any job count).  Pass
    [~universe] (as produced by {!universe_within}) to skip re-grounding.
    Both mask representations share the shard split and walk the same
    prefix tree, so counts and [comp_kernel.*] metric deltas agree
    bit-for-bit wherever both apply; the [comp_kernel.mask_width] gauge
    records the probed width and [comp_kernel.wide_dispatch] counts
    wide-path runs.
    @raise Invalid_argument if [db] is not Codd.
    @raise Too_many_candidates if the candidate universe exceeds
    [max_candidates] (default {!default_max_candidates}), or exceeds
    [Lineage.max_universe] under [~mask:Int_masks]. *)
val count :
  ?query:Query.t ->
  ?max_candidates:int ->
  ?jobs:int ->
  ?mask:mask_choice ->
  ?universe:Cdb.fact array ->
  Idb.t ->
  Nat.t

(** The pre-kernel enumerator, kept verbatim: materializes every subset
    as a [Cdb.t] and evaluates the query on it.  Agreement oracle for the
    kernel and the "before" leg of the benchmark.
    @raise Invalid_argument if [db] is not Codd or the universe exceeds
    [max_candidates] (default 22, the seed ceiling). *)
val count_reference : ?query:Query.t -> ?max_candidates:int -> Idb.t -> Nat.t
