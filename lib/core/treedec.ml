(* Tree decompositions of the null-interaction graph: triangulate along
   an elimination order, keep the maximal cliques as bags, join them
   with a maximum-weight spanning tree on separator sizes, root at the
   first bag.  See treedec.mli for the contract. *)

module Iset = Set.Make (Int)

type t = {
  bags : int array array;
  parent : int array;
  postorder : int array;
  width : int;
}

(* Adjacency of the interaction graph: each clique's slots are pairwise
   adjacent.  Values are immutable [Iset]s, so the elimination below can
   update bindings without aliasing surprises. *)
let adjacency cliques =
  let adj = Hashtbl.create 16 in
  let ensure v =
    if not (Hashtbl.mem adj v) then Hashtbl.replace adj v Iset.empty
  in
  Array.iter
    (fun cl ->
      Array.iter ensure cl;
      Array.iter
        (fun a ->
          Array.iter
            (fun b ->
              if a <> b then
                Hashtbl.replace adj a (Iset.add b (Hashtbl.find adj a)))
            cl)
        cl)
    cliques;
  adj

let build ~order ~cliques =
  let adj = adjacency cliques in
  let slots = Hashtbl.fold (fun s _ acc -> Iset.add s acc) adj Iset.empty in
  let order_set = Iset.of_list order in
  if List.length order <> Iset.cardinal order_set then
    invalid_arg "Treedec.build: elimination order repeats a slot";
  if not (Iset.subset slots order_set) then
    invalid_arg "Treedec.build: elimination order misses a slot";
  (* Slots of the order that no clique mentions still get a bag: the
     caller decides what lives in the decomposition. *)
  List.iter
    (fun v -> if not (Hashtbl.mem adj v) then Hashtbl.replace adj v Iset.empty)
    order;
  (* Eliminate: bag of [v] is [v] plus its current neighborhood, which
     then becomes a clique of the fill-in graph. *)
  let raw =
    List.map
      (fun v ->
        let nbrs = Hashtbl.find adj v in
        let bag = Iset.add v nbrs in
        Iset.iter
          (fun a ->
            Hashtbl.replace adj a
              (Iset.remove v (Iset.union (Hashtbl.find adj a) (Iset.remove a nbrs))))
          nbrs;
        Hashtbl.remove adj v;
        bag)
      order
  in
  (* Keep the maximal cliques only (first occurrence wins on duplicates);
     non-maximal elimination cliques are subsumed by a later one. *)
  let arr = Array.of_list raw in
  let n = Array.length arr in
  let keep = Array.make n true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if
        keep.(i) && j <> i && keep.(j)
        && Iset.subset arr.(i) arr.(j)
        && ((not (Iset.equal arr.(i) arr.(j))) || j < i)
      then keep.(i) <- false
    done
  done;
  let bag_sets =
    Array.of_list
      (List.filteri (fun i _ -> keep.(i)) (Array.to_list arr))
  in
  let m = Array.length bag_sets in
  let bags =
    Array.map (fun s -> Array.of_list (Iset.elements s)) bag_sets
  in
  let parent = Array.make m (-1) in
  if m > 1 then begin
    (* Prim from bag 0, maximizing the separator size of the next edge:
       a maximum-weight spanning tree of the clique graph of a chordal
       graph is a junction tree (running intersection holds).  Ties
       break on the smallest candidate node, then the smallest attach
       node — [best_at] keeps the first maximum, and candidates are
       scanned ascending. *)
    let in_tree = Array.make m false in
    let best_w = Array.make m (-1) in
    let best_at = Array.make m (-1) in
    let weight i j = Iset.cardinal (Iset.inter bag_sets.(i) bag_sets.(j)) in
    let absorb i =
      in_tree.(i) <- true;
      for j = 0 to m - 1 do
        if not in_tree.(j) then begin
          let w = weight i j in
          if w > best_w.(j) then begin
            best_w.(j) <- w;
            best_at.(j) <- i
          end
        end
      done
    in
    absorb 0;
    for _ = 2 to m do
      let pick = ref (-1) in
      for j = m - 1 downto 0 do
        if (not in_tree.(j)) && (!pick < 0 || best_w.(j) >= best_w.(!pick))
        then pick := j
      done;
      let j = !pick in
      parent.(j) <- best_at.(j);
      absorb j
    done
  end;
  (* Children-first traversal from the root, children ascending. *)
  let children = Array.make m [] in
  let root = ref 0 in
  Array.iteri
    (fun i p ->
      if p < 0 then root := i else children.(p) <- i :: children.(p))
    parent;
  Array.iteri (fun i l -> children.(i) <- List.rev l) children;
  let post = ref [] in
  let rec visit i =
    List.iter visit children.(i);
    post := i :: !post
  in
  if m > 0 then visit !root;
  let postorder = Array.of_list (List.rev !post) in
  let width = Array.fold_left (fun w b -> max w (Array.length b)) 0 bags in
  { bags; parent; postorder; width }

let bag_count t = Array.length t.bags

let separator t i =
  let p = t.parent.(i) in
  if p < 0 then [||]
  else begin
    let pset = Iset.of_list (Array.to_list t.bags.(p)) in
    Array.of_list
      (List.filter (fun s -> Iset.mem s pset) (Array.to_list t.bags.(i)))
  end

let validate ~cliques t =
  let m = Array.length t.bags in
  let bag_sets = Array.map (fun b -> Iset.of_list (Array.to_list b)) t.bags in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if Array.length t.parent <> m then err "parent array has the wrong length"
  else if Array.length t.postorder <> m then
    err "postorder has the wrong length"
  else begin
    (* postorder: a permutation visiting children before parents. *)
    let seen = Array.make m false in
    let post_ok =
      Array.for_all
        (fun i ->
          if i < 0 || i >= m || seen.(i) then false
          else begin
            seen.(i) <- true;
            let p = t.parent.(i) in
            p < 0 || not seen.(p)
          end)
        t.postorder
    in
    if not post_ok then err "postorder is not a children-first permutation"
    else begin
      let roots =
        Array.fold_left (fun acc p -> if p < 0 then acc + 1 else acc) 0 t.parent
      in
      if m > 0 && roots <> 1 then err "expected exactly one root, found %d" roots
      else begin
        let width =
          Array.fold_left (fun w b -> max w (Array.length b)) 0 t.bags
        in
        if width <> t.width then
          err "reported width %d but the largest bag has %d slots" t.width width
        else begin
          (* Every clique's slots inside some bag. *)
          let uncovered =
            Array.find_opt
              (fun cl ->
                let cset = Iset.of_list (Array.to_list cl) in
                not (Array.exists (fun b -> Iset.subset cset b) bag_sets))
              cliques
          in
          match uncovered with
          | Some cl ->
            err "clique {%s} is covered by no bag"
              (String.concat "," (List.map string_of_int (Array.to_list cl)))
          | None ->
            (* Running intersection: the bags containing a slot form a
               connected subtree iff exactly one of them is topmost
               (root, or parent bag missing the slot). *)
            let slots =
              Array.fold_left Iset.union Iset.empty bag_sets |> Iset.elements
            in
            let bad =
              List.find_opt
                (fun s ->
                  let tops = ref 0 and present = ref 0 in
                  Array.iteri
                    (fun i bs ->
                      if Iset.mem s bs then begin
                        incr present;
                        let p = t.parent.(i) in
                        if p < 0 || not (Iset.mem s bag_sets.(p)) then
                          incr tops
                      end)
                    bag_sets;
                  !present > 0 && !tops <> 1)
                slots
            in
            (match bad with
            | Some s -> err "slot %d violates the running intersection property" s
            | None -> Ok ())
        end
      end
    end
  end
