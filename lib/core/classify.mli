(** The dichotomy classifier: Table 1 of the paper as an executable
    function, together with the approximability classification of Section 5
    and the beyond-#P annotations of Section 6.

    Every verdict carries evidence: a witness hard pattern for hardness, or
    the name of the tractability argument. *)

open Incdb_cq

type verdict =
  | Tractable of string
      (** in FP; the payload names the algorithm/theorem that solves it *)
  | Hard of Cq.t
      (** #P-hard (Turing reductions); the payload is a witness pattern *)
  | Open_case of string
      (** the paper leaves this query/setting combination open *)

val verdict_to_string : verdict -> string

(** [exact setting q] classifies the exact counting problem for the
    sjfBCQ [q] in the given setting, per Theorems 3.6, 3.7, 3.9 and the
    open #Val^u_Cd case, and Theorems 4.3, 4.4, 4.6, 4.7.
    @raise Invalid_argument if [q] is not self-join-free. *)
val exact : Setting.t -> Cq.t -> verdict

type approx_verdict =
  | Fpras of string  (** admits an FPRAS; payload names the reason *)
  | Fp of string  (** even exact counting is in FP *)
  | No_fpras of string
      (** no FPRAS unless NP = RP; payload names the theorem *)
  | Approx_open of string

val approx_verdict_to_string : approx_verdict -> string

(** [approximate setting q] classifies approximability per Corollary 5.3
    and Theorems 5.5 and 5.7 (and the open uniform-Codd completion
    case). *)
val approximate : Setting.t -> Cq.t -> approx_verdict

(** Counting-class membership notes of Sections 3–6 for the given setting:
    e.g. "#P" for valuations, "#P" for completions over Codd tables
    (Theorem 4.4), "SpanP; not in #P unless NP ⊆ SPP" for completions over
    naïve tables (Observation 6.2, Proposition 6.1). *)
val membership : Setting.t -> string

(** The hard patterns governing a setting's dichotomy (the corresponding
    cell of Table 1); empty list when every sjfBCQ is hard. *)
val hard_patterns : Setting.t -> Cq.t list

(** [table1 queries] renders the classification of each query under all
    eight settings, in a Table-1 shaped text table. *)
val table1 : Cq.t list -> string

(** {2 Verdict-cache lifecycle}

    {!exact} memoizes verdicts in a module-global table (classification
    is pure in the (setting, query) pair).  In a one-shot CLI the table
    dies with the process; a persistent [incdbd] needs it bounded and
    resettable.  The table stops absorbing new entries at its capacity —
    no eviction, so verdicts are never recomputed differently and memory
    stays bounded.  Cached and uncached calls return identical verdicts;
    only the [classify.cache_hits]/[classify.cache_misses] counters can
    differ. *)

(** Default entry cap of the verdict cache ([4096]). *)
val default_cache_capacity : int

(** Drop every cached verdict (capacity and the hit/miss counters are
    untouched).  Registered with
    {!Incdb_obs.Export.register_cache_reset} under
    ["classify.verdict_cache"], so {!Incdb_obs.Export.reset_caches}
    reaches it. *)
val reset_cache : unit -> unit

(** [set_cache_capacity n] re-bounds the cache; [0] disables caching
    (every call recomputes and records a miss).  Shrinking below the
    current population clears the table.
    @raise Invalid_argument on a negative [n]. *)
val set_cache_capacity : int -> unit

(** Number of verdicts currently cached. *)
val cache_length : unit -> int
