(** Lineage-driven elimination for [#Comp]: count the query-satisfying
    completions of an incomplete database by dynamic programming over the
    candidate-fact interaction graph, without visiting completions one by
    one — and without requiring the table to be Codd.

    {2 The surjection view}

    Fix an assignment [a] of the {e shared} nulls (those occurring in
    more than one argument position).  A ground database [S] over the
    candidate universe is a completion of the residual table iff

    - {e star}: every table fact's ground image under [a] intersects [S]
      (each fact must land somewhere inside [S]), and
    - {e matching}: [S] is saturated by a matching of candidates to
      distinct table facts whose images contain them (the valuation is a
      surjection onto [S]; equivalently [S] is independent in the
      transversal matroid of the candidate-fact bipartite graph — the
      Lemma B.2 matching condition, generalized off the Codd diagonal).

    The kernel sweeps the candidate bits in a {!Treedec}-derived order
    and counts the accepted subsets by DP.  Per conditioning branch the
    separator state is (i) the {e antichain of achievable free-fact
    sets} over the facts whose image windows are currently open — the
    exact information needed to extend a partial matching — and (ii) a
    {e hit} mask recording which open facts already intersect the chosen
    prefix.  Clause satisfaction of the compiled {!Lineage} DNF is
    tracked the same way with per-clause viability bits.

    Non-Codd tables are handled by conditioning on the shared nulls, but
    the branches are {e not} summed — distinct shared assignments can
    produce the same completion — instead all branches run jointly in
    one sweep (the state maps each branch to a sub-state) and a subset
    is accepted when at least one branch stays alive, so each completion
    is counted exactly once.

    The DP is sequential and fully deterministic: counts and the
    [comp_kernel.elim_*] counters are invariant across [jobs], mask
    representation and cache configuration. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

(** Dispatch choice for the elimination arm ([--comp-elim]). *)
type choice = Auto | Off | Force

val choice_to_string : choice -> string

(** Typed reasons the kernel declines (or abandons) an instance, in the
    style of the other limits ([Too_many_valuations] / [_candidates] /
    [_events]) so the CLI reports them uniformly:

    - [Uncompilable_query]: the query has no mask-DNF lineage
      (opaque [Semantic] queries).
    - [Universe_too_large]: the per-branch ground universe exceeds
      [max_universe] candidates.
    - [Too_many_branches]: the shared-null assignment space exceeds
      [max_branches] (reported count is a partial product — "at least").
    - [Width_exceeded]: more than [width_bound] fact windows (or more
      than 62 clause windows) would be open at once in the sweep order.
    - [Too_many_states]: the DP frontier outgrew [max_states] mid-run. *)
type infeasible =
  | Uncompilable_query
  | Universe_too_large of { universe : int; limit : int }
  | Too_many_branches of { branches : int; limit : int }
  | Width_exceeded of { width : int; bound : int }
  | Too_many_states of { states : int; limit : int }

exception Infeasible of infeasible

val infeasible_to_string : infeasible -> string

val default_width_bound : int
val default_max_branches : int
val default_max_universe : int
val default_max_states : int

(** Frontier size past which a bag-boundary message spills its counts
    through {!Factor_store} (the [--comp-max-cells] default). *)
val default_max_cells : int

(** A compiled instance: universe, conditioning branches, per-branch
    fact images scattered over a tree-decomposition sweep order, window
    entry/exit schedule, compiled clause windows. *)
type plan

(** Number of candidate bits (distinct ground facts over all branches). *)
val plan_universe : plan -> int

(** Number of shared-null conditioning branches ([1] on Codd tables). *)
val plan_branches : plan -> int

(** Maximum number of fact windows open at once in the sweep. *)
val plan_width : plan -> int

(** Bags of the underlying tree decomposition ([0] on an empty table). *)
val plan_bags : plan -> int

(** [plan ?query ... db] compiles [db] (Codd or not) and the optional
    query into a sweep plan, or says why it will not.  Cheap relative to
    {!run}: grounding is capped by [max_universe] with early exit, the
    branch product bails at [max_branches], and width is computed from
    the min-degree/tree-decomposition order before any DP state exists. *)
val plan :
  ?query:Query.t ->
  ?width_bound:int ->
  ?max_branches:int ->
  ?max_universe:int ->
  Idb.t ->
  (plan, infeasible) result

(** {2 Caller-owned transform memos}

    By default each {!run} allocates (and drops) its family intern store
    and the three antichain-transform memo tables.  A long-lived process
    can instead own one {!type-memos} bundle and pass it to successive
    runs: every key inside is plan-relative, so the bundle binds to the
    first plan it serves and silently clears itself when handed a
    structurally different one — cross-plan contamination is impossible,
    while a repeat of the same (query, db) pair (whose deterministic
    {!plan} compiles to an equal plan) replays its transforms as cache
    hits.  Counts are bit-identical with any memos, shared or fresh. *)

type memos

(** A fresh, unbound memo bundle. *)
val memos_create : unit -> memos

(** Drop every table and the plan binding; the handle stays valid. *)
val memos_clear : memos -> unit

(** Total entries across the three transform tables. *)
val memos_length : memos -> int

(** [run plan] executes the sweep and returns the exact number of
    distinct query-satisfying completions.  [cache] (default [true])
    memoizes the antichain transforms (entry / include / project) across
    branches and states; [memos] (when given) backs those tables with a
    caller-owned bundle that survives the run (see {!type-memos} — the
    incdbd warm-reuse hook); [max_cells] bounds the in-memory message at
    bag boundaries before counts spill to disk under [spill_dir]; [jobs]
    is accepted for signature uniformity but the DP is sequential —
    results and counters never depend on it.
    @raise Infeasible ([Too_many_states]) if the frontier outgrows
    [max_states]. *)
val run :
  ?max_states:int ->
  ?max_cells:int ->
  ?cache:bool ->
  ?memos:memos ->
  ?spill_dir:string ->
  ?jobs:int ->
  plan ->
  Nat.t

(** {!plan} + {!run}.
    @raise Infeasible instead of returning [Error]. *)
val count :
  ?query:Query.t ->
  ?width_bound:int ->
  ?max_branches:int ->
  ?max_universe:int ->
  ?max_states:int ->
  ?max_cells:int ->
  ?cache:bool ->
  ?memos:memos ->
  ?spill_dir:string ->
  ?jobs:int ->
  Idb.t ->
  Nat.t
