open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

exception Found

(* Does some valuation make this disjunct true?  Search for one fact per
   atom and a consistent homomorphism whose induced partial valuation is
   within the null domains — a positive witness is exactly a Karp-Luby
   event, found with early exit. *)
let possible_cq ?(neqs = []) cq db =
  let atoms = Array.of_list cq in
  let m = Array.length atoms in
  let facts_per_atom =
    Array.map
      (fun (a : Cq.atom) ->
        List.filter
          (fun (f : Idb.fact) ->
            Array.length f.Idb.args = Array.length a.Cq.vars)
          (Idb.facts_of db a.Cq.rel))
      atoms
  in
  if Array.exists (fun fs -> fs = []) facts_per_atom then false
  else begin
    let candidates_of_term = function
      | Term.Const c -> [ c ]
      | Term.Null n -> Idb.domain_of db n
    in
    let try_homomorphism chosen =
      (* constraints: variable -> list of terms it must match *)
      let constraints = ref [] in
      List.iteri
        (fun i (f : Idb.fact) ->
          Array.iteri
            (fun j v -> constraints := (v, f.Idb.args.(j)) :: !constraints)
            atoms.(i).Cq.vars)
        chosen;
      let vars = List.sort_uniq String.compare (List.map fst !constraints) in
      let rec go vars hvals sigma =
        match vars with
        | [] ->
          let neq_ok =
            List.for_all
              (fun (x, y) -> List.assoc_opt x hvals <> List.assoc_opt y hvals)
              neqs
          in
          if neq_ok then raise Found
        | v :: rest ->
          let terms =
            List.filter_map
              (fun (v', t) -> if v = v' then Some t else None)
              !constraints
          in
          let candidate_values =
            match terms with
            | [] -> []
            | t :: ts ->
              List.filter
                (fun c ->
                  List.for_all (fun t' -> List.mem c (candidates_of_term t')) ts)
                (candidates_of_term t)
          in
          List.iter
            (fun c ->
              let rec extend sigma = function
                | [] -> Some sigma
                | Term.Const c' :: rest ->
                  if c' = c then extend sigma rest else None
                | Term.Null n :: rest ->
                  (match List.assoc_opt n sigma with
                  | Some c' -> if c' = c then extend sigma rest else None
                  | None -> extend ((n, c) :: sigma) rest)
              in
              match extend sigma terms with
              | Some sigma' -> go rest ((v, c) :: hvals) sigma'
              | None -> ())
            candidate_values
      in
      go vars [] []
    in
    let rec choose i chosen =
      if i = m then try_homomorphism (List.rev chosen)
      else List.iter (fun f -> choose (i + 1) (f :: chosen)) facts_per_atom.(i)
    in
    try
      choose 0 [];
      false
    with Found -> true
  end

let possible ?limit q db =
  match q with
  | Query.Bcq cq -> possible_cq cq db
  | Query.Union cqs -> List.exists (fun cq -> possible_cq cq db) cqs
  | Query.Bcq_neq (cq, neqs) -> possible_cq ~neqs cq db
  | Query.Not _ | Query.Semantic _ ->
    (* No match structure to exploit: enumerate. *)
    let found = ref false in
    Idb.iter_valuations ?limit db (fun v ->
        if (not !found) && Query.eval q (Idb.apply db v) then found := true);
    !found

let count_val ?limit q db =
  match q with
  | Query.Bcq cq ->
    let brute_limit = Option.value ~default:4_000_000 limit in
    snd (Count_val.count ~brute_limit cq db)
  | _ -> Incdb_incomplete.Brute.count_valuations ?limit q db

let certain ?limit q db =
  Nat.equal (count_val ?limit q db) (Idb.total_valuations db)

let support_ratio ?limit q db =
  let total = Idb.total_valuations db in
  if Nat.is_zero total then Qnum.one
  else
    Qnum.make
      (Zint.of_nat (count_val ?limit q db))
      (Zint.of_nat total)
