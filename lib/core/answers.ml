open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

type support = { tuple : string list; count : Nat.t }

let validate_free q free =
  let vars = Cq.variables q in
  List.iter
    (fun v ->
      if not (List.mem v vars) then
        invalid_arg (Printf.sprintf "Answers: %s is not a variable of the query" v))
    free

let answer_tuples q ~free db =
  validate_free q free;
  Cq.homomorphisms q db
  |> List.map (fun h -> List.map (fun v -> List.assoc v h) free)
  |> List.sort_uniq Stdlib.compare

(* Enumerate worlds once, recording for every tuple the (ordered) list of
   world indices supporting it. *)
let support_sets ?limit q ~free db =
  validate_free q free;
  let table : (string list, int list) Hashtbl.t = Hashtbl.create 64 in
  let world = ref 0 in
  Idb.iter_valuations ?limit db (fun v ->
      let completion = Idb.apply db v in
      List.iter
        (fun tuple ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt table tuple) in
          Hashtbl.replace table tuple (!world :: cur))
        (answer_tuples q ~free completion);
      incr world);
  (table, !world)

let supports ?limit q ~free db =
  let table, _ = support_sets ?limit q ~free db in
  Hashtbl.fold
    (fun tuple worlds acc ->
      { tuple; count = Nat.of_int (List.length worlds) } :: acc)
    table []
  |> List.sort (fun a b ->
         match Nat.compare b.count a.count with
         | 0 -> Stdlib.compare a.tuple b.tuple
         | c -> c)

(* [subset_sorted a b]: is [a ⊆ b]?  Both are strictly decreasing lists
   of world indices (they were built by prepending increasing indices). *)
let rec subset_sorted a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' ->
    if x = y then subset_sorted a' b'
    else if x > y then false
    else subset_sorted (x :: a') b'

let best_answers ?limit q ~free db =
  let table, _ = support_sets ?limit q ~free db in
  let entries =
    Hashtbl.fold (fun tuple worlds acc -> (tuple, worlds) :: acc) table []
  in
  let strictly_better (_, w') (_, w) =
    (* w' strictly contains w *)
    List.length w' > List.length w && subset_sorted w w'
  in
  entries
  |> List.filter (fun e -> not (List.exists (fun e' -> strictly_better e' e) entries))
  |> List.map fst
  |> List.sort Stdlib.compare

let certain_answers ?limit q ~free db =
  let table, worlds = support_sets ?limit q ~free db in
  Hashtbl.fold
    (fun tuple supp acc ->
      if List.length supp = worlds then tuple :: acc else acc)
    table []
  |> List.sort Stdlib.compare
