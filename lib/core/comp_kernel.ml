(* Lineage-driven elimination for #Comp.

   The enumerator (Comp_candidates) visits every surviving completion;
   this kernel counts them by DP instead, and extends past Codd tables.

   Correctness rests on the surjection characterization: fixing an
   assignment [a] of the shared nulls, S is a completion of the residual
   table iff every fact's ground image under [a] meets S (star) and S is
   saturated by a matching of candidates to distinct producing facts
   (the valuation is onto S).  The DP sweeps candidate bits in a
   tree-decomposition order, deciding in/out per bit; per conditioning
   branch the state is the antichain of achievable free-fact sets over
   the currently open fact windows (matching feasibility is monotone in
   the free set, so maximal sets are exactly the information the future
   needs) plus a hit mask for the star condition.  Clause satisfaction
   of the compiled DNF is per-clause viability over clause windows.

   Non-Codd caveat: summing the per-branch counts would overcount —
   distinct shared assignments can yield the same completion (e.g.
   R(n), R(m), S(n), S(m) with (n,m) = (0,1) and (1,0)).  All branches
   therefore run jointly in one sweep; a subset is accepted when at
   least one branch is alive, so each completion counts once: the joint
   state is a function of the selected subset alone.

   Determinism: the sweep is sequential (jobs accepted, unused), the
   frontier is an explicit array in first-reach order, families are
   interned behind canonical sorting, and Nat addition is exact — the
   count and every elim counter are invariant across jobs, mask
   representation and cache on/off. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_relational
module Metrics = Incdb_obs.Metrics
module Events = Incdb_obs.Events
module Trace = Incdb_obs.Trace
module WB = Bitset.Wide

type choice = Auto | Off | Force

let choice_to_string = function Auto -> "auto" | Off -> "off" | Force -> "force"

type infeasible =
  | Uncompilable_query
  | Universe_too_large of { universe : int; limit : int }
  | Too_many_branches of { branches : int; limit : int }
  | Width_exceeded of { width : int; bound : int }
  | Too_many_states of { states : int; limit : int }

exception Infeasible of infeasible

let infeasible_to_string = function
  | Uncompilable_query -> "query has no mask-DNF lineage"
  | Universe_too_large { universe; limit } ->
    Printf.sprintf "candidate universe exceeds %d ground facts (saw %d)" limit
      universe
  | Too_many_branches { branches; limit } ->
    Printf.sprintf "shared-null conditioning needs more than %d branches (at least %d)"
      limit branches
  | Width_exceeded { width; bound } ->
    Printf.sprintf "elimination width %d exceeds the bound %d" width bound
  | Too_many_states { states; limit } ->
    Printf.sprintf "DP frontier grew past %d states (%d)" limit states

let default_width_bound = 16
let default_max_branches = 64
let default_max_universe = 512
let default_max_states = 1 lsl 20
let default_max_cells = 1 lsl 16

(* Fact and clause window slots live in single-word masks. *)
let max_slots = 62

(* Registered eagerly so the kernel's activity always shows up in metric
   exports, at zero when it never ran. *)
let elim_dispatch = Metrics.counter "comp_kernel.elim_dispatch"
let elim_width_gauge = Metrics.gauge "comp_kernel.elim_width"
let cond_branches = Metrics.counter "comp_kernel.cond_branches"
let elim_states = Metrics.counter "comp_kernel.elim_states"
let elim_cache_hits = Metrics.counter "comp_kernel.elim_cache_hits"
let elim_cache_misses = Metrics.counter "comp_kernel.elim_cache_misses"
let elim_spilled = Metrics.counter "comp_kernel.elim_spilled_messages"
let elim_spill_bytes = Metrics.counter "comp_kernel.elim_spill_bytes"

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

type step = {
  bag : int;  (* tree-decomposition bag that introduced this bit *)
  enter_facts : int array;  (* fact windows opening before this bit *)
  enter_clauses : int array;
  producers : (int * int array option) array;
      (* facts whose image contains this bit: (fact, Some branches)
         restricts to the listed conditioning branches, None means all *)
  kill_clauses : int array;  (* clauses containing this bit *)
  exit_facts : int array;  (* windows closing after this bit *)
  exit_clauses : int array;
}

type plan = {
  m : int;  (* candidate bits *)
  nfacts : int;
  nclauses : int;
  nbranches : int;
  nshared : int;
  steps : step array;
  width : int;  (* max simultaneously open fact windows *)
  nbags : int;
  negated : bool;
  sat_all : bool;  (* no query: acceptance ignores clause state *)
  init_sat : bool;  (* an empty clause satisfies every completion *)
}

let plan_universe p = p.m
let plan_branches p = p.nbranches
let plan_width p = p.width
let plan_bags p = p.nbags

let build ?query ~width_bound ~max_branches ~max_universe db =
  let facts = Array.of_list (Idb.facts db) in
  let nf = Array.length facts in
  (* Shared nulls: more than one argument position across the table
     (two positions of the same fact count — R(n,n) must condition). *)
  let occ : (string, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun (f : Idb.fact) ->
      Array.iter
        (function
          | Term.Null n ->
            Hashtbl.replace occ n
              (1 + Option.value ~default:0 (Hashtbl.find_opt occ n))
          | Term.Const _ -> ())
        f.Idb.args)
    facts;
  let shared =
    List.filter
      (fun n -> Option.value ~default:0 (Hashtbl.find_opt occ n) >= 2)
      (Idb.nulls db)
  in
  let sdoms =
    Array.of_list
      (List.map (fun n -> (n, Array.of_list (Idb.domain_of db n))) shared)
  in
  let nshared = Array.length sdoms in
  let nbranches =
    Array.fold_left
      (fun acc (_, d) ->
        let acc = acc * Array.length d in
        if acc > max_branches then
          raise
            (Infeasible (Too_many_branches { branches = acc; limit = max_branches }));
        acc)
      1 sdoms
  in
  (* Branch b assigns shared null i the value asg.(b).(i): mixed-radix
     decode with the first shared null most significant. *)
  let asg = Array.make_matrix (max 1 nbranches) (max 1 nshared) "" in
  for b = 0 to nbranches - 1 do
    let x = ref b in
    for i = nshared - 1 downto 0 do
      let _, d = sdoms.(i) in
      asg.(b).(i) <- d.(!x mod Array.length d);
      x := !x / Array.length d
    done
  done;
  let shared_ix : (string, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri (fun i (n, _) -> Hashtbl.replace shared_ix n i) sdoms;
  (* Per-position grounding choices; a free null occurs in exactly one
     position, so the positional product never equates distinct vectors. *)
  let fact_choices =
    Array.map
      (fun (f : Idb.fact) ->
        Array.map
          (function
            | Term.Const c -> `Const c
            | Term.Null n -> (
              match Hashtbl.find_opt shared_ix n with
              | Some si -> `Shared si
              | None -> `Free (Array.of_list (Idb.domain_of db n))))
          f.Idb.args)
      facts
  in
  let bdep =
    Array.map
      (fun ch -> Array.exists (function `Shared _ -> true | _ -> false) ch)
      fact_choices
  in
  let iter_image f b yield =
    let ch = fact_choices.(f) in
    let k = Array.length ch in
    let out = Array.make k "" in
    let rec go i =
      if i = k then yield { Cdb.rel = facts.(f).Idb.rel; args = Array.copy out }
      else
        match ch.(i) with
        | `Const c ->
          out.(i) <- c;
          go (i + 1)
        | `Shared si ->
          out.(i) <- asg.(b).(si);
          go (i + 1)
        | `Free d ->
          Array.iter
            (fun v ->
              out.(i) <- v;
              go (i + 1))
            d
    in
    go 0
  in
  (* Candidate universe over all branches, with an early-exit cap: any
     single fact-branch image is duplicate-free, so the cap fires within
     max_universe + 1 yields of each sweep. *)
  let bit_of : (Cdb.fact, int) Hashtbl.t = Hashtbl.create 64 in
  let ulist = ref [] in
  let usize = ref 0 in
  let note g =
    if not (Hashtbl.mem bit_of g) then begin
      incr usize;
      if !usize > max_universe then
        raise
          (Infeasible (Universe_too_large { universe = !usize; limit = max_universe }));
      Hashtbl.replace bit_of g (-1);
      ulist := g :: !ulist
    end
  in
  for f = 0 to nf - 1 do
    if bdep.(f) then
      for b = 0 to nbranches - 1 do
        iter_image f b note
      done
    else iter_image f 0 note
  done;
  let universe = Array.of_list (List.sort Cdb.compare_fact !ulist) in
  let m = Array.length universe in
  Array.iteri (fun i g -> Hashtbl.replace bit_of g i) universe;
  (* Per-branch images as sorted bit arrays. *)
  let img_common = Array.make (max 1 nf) [||] in
  let img_branch = Array.make (max 1 nf) [||] in
  let bits_of f b =
    let l = ref [] in
    iter_image f b (fun g -> l := Hashtbl.find bit_of g :: !l);
    let a = Array.of_list !l in
    Array.sort compare a;
    a
  in
  for f = 0 to nf - 1 do
    if bdep.(f) then
      img_branch.(f) <- Array.init nbranches (fun b -> bits_of f b)
    else img_common.(f) <- bits_of f 0
  done;
  let unions =
    Array.init nf (fun f ->
        if not bdep.(f) then img_common.(f)
        else begin
          let seen = Array.make m false in
          Array.iter
            (Array.iter (fun i -> seen.(i) <- true))
            img_branch.(f);
          let l = ref [] in
          for i = m - 1 downto 0 do
            if seen.(i) then l := i :: !l
          done;
          Array.of_list !l
        end)
  in
  (* Compiled clause windows. *)
  let negated, clause_bits, sat_all =
    match query with
    | None -> (false, [||], true)
    | Some q -> (
      match Lineage.Wide.compile q universe with
      | None -> raise (Infeasible Uncompilable_query)
      | Some l ->
        let cl =
          Array.map
            (fun mask ->
              let bits = ref [] in
              WB.iter (fun i -> bits := i :: !bits) mask;
              Array.of_list (List.rev !bits))
            (Lineage.Wide.clauses l)
        in
        (Lineage.Wide.is_negated l, cl, false))
  in
  let init_sat =
    (not sat_all) && Array.exists (fun c -> Array.length c = 0) clause_bits
  in
  let clause_bits = if init_sat then [||] else clause_bits in
  let nclauses = Array.length clause_bits in
  (* Interaction graph: a fact's branch-union image is a clique (those
     bits compete for the fact in the matching), and so is each clause.
     Min-degree elimination with fill-in gives the Treedec order; the
     sweep walks the junction tree's bags in postorder. *)
  let cliques = Array.append unions clause_bits in
  let sweep, bag_of_step, nbags =
    if m = 0 then ([||], [||], 0)
    else begin
      let adj = Array.init m (fun _ -> WB.zero ~width:m) in
      Array.iter
        (fun cl ->
          if Array.length cl > 1 then begin
            let cm = WB.zero ~width:m in
            Array.iter (fun v -> WB.set_inplace cm v) cl;
            Array.iter
              (fun v ->
                let r = WB.union adj.(v) cm in
                WB.clear_inplace r v;
                adj.(v) <- r)
              cl
          end)
        cliques;
      let alive = WB.copy (WB.full ~width:m) in
      let order = Array.make m 0 in
      for k = 0 to m - 1 do
        let best = ref (-1) and bestd = ref max_int in
        for v = 0 to m - 1 do
          if WB.test alive v then begin
            let d = WB.popcount_inter adj.(v) alive in
            if d < !bestd then begin
              best := v;
              bestd := d
            end
          end
        done;
        let v = !best in
        order.(k) <- v;
        WB.clear_inplace alive v;
        let nbrs = WB.inter adj.(v) alive in
        WB.iter
          (fun u ->
            let r = WB.union adj.(u) nbrs in
            WB.clear_inplace r u;
            adj.(u) <- r)
          nbrs
      done;
      let td = Treedec.build ~order:(Array.to_list order) ~cliques in
      let seen = Array.make m false in
      let ord = ref [] and bag_of = ref [] in
      Array.iter
        (fun bi ->
          Array.iter
            (fun v ->
              if not seen.(v) then begin
                seen.(v) <- true;
                ord := v :: !ord;
                bag_of := bi :: !bag_of
              end)
            td.Treedec.bags.(bi))
        td.Treedec.postorder;
      ( Array.of_list (List.rev !ord),
        Array.of_list (List.rev !bag_of),
        Treedec.bag_count td )
    end
  in
  let pos = Array.make (max 1 m) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) sweep;
  (* Window schedule. *)
  let window bits =
    Array.fold_left
      (fun (lo, hi) b -> (min lo pos.(b), max hi pos.(b)))
      (max_int, -1) bits
  in
  let enter_f = Array.make (max 1 m) []
  and exit_f = Array.make (max 1 m) []
  and enter_c = Array.make (max 1 m) []
  and exit_c = Array.make (max 1 m) [] in
  for f = nf - 1 downto 0 do
    let lo, hi = window unions.(f) in
    enter_f.(lo) <- f :: enter_f.(lo);
    exit_f.(hi) <- f :: exit_f.(hi)
  done;
  for c = nclauses - 1 downto 0 do
    let lo, hi = window clause_bits.(c) in
    enter_c.(lo) <- c :: enter_c.(lo);
    exit_c.(hi) <- c :: exit_c.(hi)
  done;
  let max_open enter exit =
    let active = ref 0 and w = ref 0 in
    for i = 0 to m - 1 do
      active := !active + List.length enter.(i);
      if !active > !w then w := !active;
      active := !active - List.length exit.(i)
    done;
    !w
  in
  let width = max_open enter_f exit_f in
  let width_cap = min width_bound max_slots in
  if width > width_cap then
    raise (Infeasible (Width_exceeded { width; bound = width_cap }));
  let cwidth = max_open enter_c exit_c in
  if cwidth > max_slots then
    raise (Infeasible (Width_exceeded { width = cwidth; bound = max_slots }));
  (* Producers and clause kills, scattered over the sweep. *)
  let producers = Array.make (max 1 m) [] in
  for f = nf - 1 downto 0 do
    if bdep.(f) then begin
      let per_bit : (int, int list) Hashtbl.t = Hashtbl.create 16 in
      Array.iteri
        (fun b img ->
          Array.iter
            (fun bit ->
              Hashtbl.replace per_bit bit
                (b :: Option.value ~default:[] (Hashtbl.find_opt per_bit bit)))
            img)
        img_branch.(f);
      Array.iter
        (fun bit ->
          match Hashtbl.find_opt per_bit bit with
          | None -> ()
          | Some rev ->
            let brs = Array.of_list (List.rev rev) in
            let p = pos.(bit) in
            let sel = if Array.length brs = nbranches then None else Some brs in
            producers.(p) <- (f, sel) :: producers.(p))
        unions.(f)
    end
    else
      Array.iter
        (fun bit -> producers.(pos.(bit)) <- (f, None) :: producers.(pos.(bit)))
        img_common.(f)
  done;
  let kills = Array.make (max 1 m) [] in
  for c = nclauses - 1 downto 0 do
    Array.iter (fun bit -> kills.(pos.(bit)) <- c :: kills.(pos.(bit))) clause_bits.(c)
  done;
  let steps =
    Array.init m (fun i ->
        {
          bag = bag_of_step.(i);
          enter_facts = Array.of_list enter_f.(i);
          enter_clauses = Array.of_list enter_c.(i);
          producers = Array.of_list producers.(i);
          kill_clauses = Array.of_list kills.(i);
          exit_facts = Array.of_list exit_f.(i);
          exit_clauses = Array.of_list exit_c.(i);
        })
  in
  {
    m;
    nfacts = nf;
    nclauses;
    nbranches;
    nshared;
    steps;
    width;
    nbags;
    negated;
    sat_all;
    init_sat;
  }

let plan ?query ?(width_bound = default_width_bound)
    ?(max_branches = default_max_branches)
    ?(max_universe = default_max_universe) db =
  Trace.with_span "comp_kernel.plan" (fun () ->
      try Ok (build ?query ~width_bound ~max_branches ~max_universe db)
      with Infeasible i -> Error i)

(* ------------------------------------------------------------------ *)
(* The sweep DP                                                        *)
(* ------------------------------------------------------------------ *)

(* Int-array keys hash by folding the whole array: the default
   polymorphic hash only examines a bounded prefix, which degenerates on
   long, similar state vectors. *)
module IntArrH = Hashtbl.Make (struct
  type t = int array

  let equal (a : int array) (b : int array) = a = b

  let hash (a : int array) =
    Array.fold_left (fun h x -> ((h * 1000003) + x) land max_int) (Array.length a) a
end)

type 'a vec = { mutable data : 'a array; mutable len : int }

let vec_create () = { data = [||]; len = 0 }

let vec_push v x =
  if v.len = Array.length v.data then begin
    let d = Array.make (max 64 (2 * v.len)) x in
    Array.blit v.data 0 d 0 v.len;
    v.data <- d
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

type counts = Mem of Nat.t array | Stored of Factor_store.t

(* Caller-owned transform memos: the family intern table and the three
   transform tables bundled together, so a long-lived process can keep
   them warm across runs of the same plan (the incdbd reuse hook).
   Every key is plan-relative (fact/clause window slots, family ids),
   so the bundle is only meaningful for one plan: [run] binds the memos
   to its plan on first use and silently clears them when handed a
   structurally different plan — stale reuse is impossible, and
   [build] is deterministic, so a repeat of the same (query, db) pair
   rebinds to an equal plan and keeps everything. *)
type memos = {
  mutable bound : plan option;
  mfam_tbl : int IntArrH.t;
  mfams : int array vec;
  mentry : (int, int) Hashtbl.t;
  minclude : (int * int, int) Hashtbl.t;
  mproject : (int, int) Hashtbl.t;
}

let memos_create () =
  {
    bound = None;
    mfam_tbl = IntArrH.create 256;
    mfams = vec_create ();
    mentry = Hashtbl.create 256;
    minclude = Hashtbl.create 1024;
    mproject = Hashtbl.create 256;
  }

let memos_clear ms =
  ms.bound <- None;
  IntArrH.reset ms.mfam_tbl;
  ms.mfams.len <- 0;
  Hashtbl.reset ms.mentry;
  Hashtbl.reset ms.minclude;
  Hashtbl.reset ms.mproject

let memos_length ms =
  Hashtbl.length ms.mentry + Hashtbl.length ms.minclude
  + Hashtbl.length ms.mproject

(* State key layout: [0] viable clause-slot mask, [1] sat flag, then per
   branch b a (family id, hit mask) pair at 2+2b / 3+2b; family id -1 is
   a dead branch.  Once sat is set, viable is canonicalized to 0 so
   states that differ only in doomed clause bookkeeping merge. *)

let run ?(max_states = default_max_states) ?(max_cells = default_max_cells)
    ?(cache = true) ?memos ?spill_dir ?jobs:_ p =
  Trace.with_span "comp_kernel.run" (fun () ->
      Metrics.incr elim_dispatch;
      Metrics.set elim_width_gauge (float_of_int p.width);
      if p.nshared > 0 then Metrics.incr cond_branches ~by:p.nbranches;
      let nb = p.nbranches in
      (* Family store: canonical antichains of free-fact-slot masks,
         interned to dense ids.  The transforms below are pure mask
         operations, so the memo tables are shared across branches and
         states — the canonical-form subproblem cache of the #Val
         kernel, at the mask level.  With caller-owned [memos] the
         tables also survive the run: they are rebound to this plan
         (clearing any state from a structurally different one), so a
         warm repeat replays every transform as a hit. *)
      let ms =
        match memos with
        | None -> memos_create ()
        | Some ms ->
          (match ms.bound with
          | Some p' when p' = p -> ()
          | Some _ -> memos_clear ms
          | None -> ());
          ms
      in
      ms.bound <- Some p;
      let fam_tbl = ms.mfam_tbl in
      let fams : int array vec = ms.mfams in
      let intern_fam a =
        match IntArrH.find_opt fam_tbl a with
        | Some id -> id
        | None ->
          let id = fams.len in
          vec_push fams a;
          IntArrH.replace fam_tbl a id;
          id
      in
      let fam0 = intern_fam [| 0 |] in
      (* Canonical form: maximal masks only (feasibility is monotone in
         the free set), sorted ascending. *)
      let canon l =
        let a = Array.of_list l in
        Array.sort
          (fun x y ->
            let c = compare (Lineage.popcount y) (Lineage.popcount x) in
            if c <> 0 then c else compare x y)
          a;
        let kept = vec_create () in
        Array.iter
          (fun mask ->
            let dominated = ref false in
            for i = 0 to kept.len - 1 do
              if (not !dominated) && mask land kept.data.(i) = mask then
                dominated := true
            done;
            if not !dominated then vec_push kept mask)
          a;
        let r = Array.sub kept.data 0 kept.len in
        Array.sort compare r;
        r
      in
      let memo tbl key compute =
        if not cache then compute ()
        else
          match Hashtbl.find_opt tbl key with
          | Some r ->
            Metrics.incr elim_cache_hits;
            r
          | None ->
            Metrics.incr elim_cache_misses;
            let r = compute () in
            Hashtbl.replace tbl key r;
            r
      in
      let entry_memo = ms.mentry in
      (* A fresh slot joins every achievable free set; the slot bit is
         set in no mask, so order and maximality are preserved as-is. *)
      let fam_entry fid slot =
        memo entry_memo ((fid * 64) + slot) (fun () ->
            intern_fam
              (Array.map (fun mask -> mask lor (1 lsl slot)) fams.data.(fid)))
      in
      let include_memo = ms.minclude in
      (* Match the included bit to one free producer: children are
         F \ {p} for p in pmask ∩ F; -1 when no family member can pay. *)
      let fam_include fid pmask =
        memo include_memo (fid, pmask) (fun () ->
            let l = ref [] in
            Array.iter
              (fun mask ->
                let avail = ref (mask land pmask) in
                while !avail <> 0 do
                  let pbit = !avail land - !avail in
                  avail := !avail land lnot pbit;
                  l := (mask land lnot pbit) :: !l
                done)
              fams.data.(fid);
            if !l = [] then -1 else intern_fam (canon !l))
      in
      let project_memo = ms.mproject in
      (* A closing window's slot no longer constrains the future: drop
         the coordinate (unmatched facts are allowed). *)
      let fam_project fid slot =
        memo project_memo ((fid * 64) + slot) (fun () ->
            intern_fam
              (canon
                 (Array.fold_left
                    (fun acc mask -> (mask land lnot (1 lsl slot)) :: acc)
                    [] fams.data.(fid))))
      in
      (* Window slot allocation: lowest free index, freed after the
         step that closes the window — deterministic and reusable. *)
      let fact_slot = Array.make (max 1 p.nfacts) (-1) in
      let fact_used = Array.make max_slots false in
      let clause_slot = Array.make (max 1 p.nclauses) (-1) in
      let clause_used = Array.make max_slots false in
      let alloc used =
        let rec go i = if used.(i) then go (i + 1) else (used.(i) <- true; i) in
        go 0
      in
      let key_len = 2 + (2 * nb) in
      let init_key = Array.make key_len 0 in
      init_key.(1) <- (if p.init_sat then 1 else 0);
      for b = 0 to nb - 1 do
        init_key.((2 * b) + 2) <- fam0
      done;
      let keys = ref [| init_key |] in
      let counts = ref (Mem [| Nat.one |]) in
      let release_counts () =
        match !counts with Mem _ -> () | Stored f -> Factor_store.release f
      in
      let get_count i =
        match !counts with Mem a -> a.(i) | Stored f -> Factor_store.get f i
      in
      let step i =
        let s = p.steps.(i) in
        let entry_slots =
          Array.map
            (fun f ->
              let sl = alloc fact_used in
              fact_slot.(f) <- sl;
              sl)
            s.enter_facts
        in
        let cl_entry =
          Array.fold_left
            (fun acc c ->
              let sl = alloc clause_used in
              clause_slot.(c) <- sl;
              acc lor (1 lsl sl))
            0 s.enter_clauses
        in
        let kill =
          Array.fold_left
            (fun acc c -> acc lor (1 lsl clause_slot.(c)))
            0 s.kill_clauses
        in
        let pm = Array.make nb 0 in
        Array.iter
          (fun (f, brs) ->
            let bit = 1 lsl fact_slot.(f) in
            match brs with
            | None ->
              for b = 0 to nb - 1 do
                pm.(b) <- pm.(b) lor bit
              done
            | Some arr -> Array.iter (fun b -> pm.(b) <- pm.(b) lor bit) arr)
          s.producers;
        let exit_slots = Array.map (fun f -> fact_slot.(f)) s.exit_facts in
        let cexit_slots = Array.map (fun c -> clause_slot.(c)) s.exit_clauses in
        let next_tbl = IntArrH.create 256 in
        let next_keys : int array vec = vec_create () in
        let next_counts : Nat.t vec = vec_create () in
        let emit key cnt =
          match IntArrH.find_opt next_tbl key with
          | Some ix -> next_counts.data.(ix) <- Nat.add next_counts.data.(ix) cnt
          | None ->
            IntArrH.replace next_tbl key next_keys.len;
            vec_push next_keys key;
            vec_push next_counts cnt
        in
        (* Apply window exits to a child key (owned, mutable), then emit
           unless every branch died. *)
        let finish key cnt =
          Array.iter
            (fun sl ->
              let bit = 1 lsl sl in
              for b = 0 to nb - 1 do
                let fi = 2 + (2 * b) in
                let hi = fi + 1 in
                if key.(fi) >= 0 then
                  if key.(hi) land bit = 0 then begin
                    (* star violated: the fact's image misses the subset *)
                    key.(fi) <- -1;
                    key.(hi) <- 0
                  end
                  else begin
                    key.(hi) <- key.(hi) land lnot bit;
                    key.(fi) <- fam_project key.(fi) sl
                  end
              done)
            exit_slots;
          let alive = ref false in
          for b = 0 to nb - 1 do
            if key.(2 + (2 * b)) >= 0 then alive := true
          done;
          if !alive then begin
            Array.iter
              (fun sl ->
                let bit = 1 lsl sl in
                if key.(0) land bit <> 0 then key.(1) <- 1;
                key.(0) <- key.(0) land lnot bit)
              cexit_slots;
            if key.(1) = 1 then key.(0) <- 0;
            emit key cnt
          end
        in
        let cur = !keys in
        for si = 0 to Array.length cur - 1 do
          let cnt = get_count si in
          let base = Array.copy cur.(si) in
          Array.iter
            (fun sl ->
              for b = 0 to nb - 1 do
                let fi = 2 + (2 * b) in
                if base.(fi) >= 0 then base.(fi) <- fam_entry base.(fi) sl
              done)
            entry_slots;
          if base.(1) = 0 then base.(0) <- base.(0) lor cl_entry;
          (* exclude the bit: clauses containing it die *)
          let ex = Array.copy base in
          ex.(0) <- ex.(0) land lnot kill;
          finish ex cnt;
          (* include the bit: each branch matches it to a free producer *)
          let inc = Array.copy base in
          let any = ref false in
          for b = 0 to nb - 1 do
            let fi = 2 + (2 * b) in
            let hi = fi + 1 in
            if inc.(fi) >= 0 then begin
              let pmb = pm.(b) in
              let fid = if pmb = 0 then -1 else fam_include inc.(fi) pmb in
              if fid < 0 then begin
                inc.(fi) <- -1;
                inc.(hi) <- 0
              end
              else begin
                inc.(fi) <- fid;
                inc.(hi) <- inc.(hi) lor pmb;
                any := true
              end
            end
          done;
          if !any then finish inc cnt
        done;
        Array.iter
          (fun f ->
            fact_used.(fact_slot.(f)) <- false;
            fact_slot.(f) <- -1)
          s.exit_facts;
        Array.iter
          (fun c ->
            clause_used.(clause_slot.(c)) <- false;
            clause_slot.(c) <- -1)
          s.exit_clauses;
        release_counts ();
        let n = next_keys.len in
        if n > max_states then begin
          keys := [||];
          counts := Mem [||];
          raise (Infeasible (Too_many_states { states = n; limit = max_states }))
        end;
        keys := Array.sub next_keys.data 0 n;
        counts := Mem (Array.sub next_counts.data 0 n);
        Metrics.incr elim_states ~by:n
      in
      let nsteps = Array.length p.steps in
      Fun.protect ~finally:release_counts (fun () ->
          let i = ref 0 in
          while !i < nsteps do
            let bag = p.steps.(!i).bag in
            let states_in = Array.length !keys in
            Events.with_span "comp_kernel.bag"
              ~args:
                [
                  ("bag", Events.Int bag);
                  ("states", Events.Int states_in);
                ]
              (fun () ->
                while !i < nsteps && p.steps.(!i).bag = bag do
                  step !i;
                  incr i
                done);
            (* Bag boundary: the frontier is the separator message; past
               the cell budget its counts go through the factor store
               (disk-backed), read back streamily by the next bag. *)
            if !i < nsteps && Array.length !keys > max_cells then begin
              match !counts with
              | Stored _ -> ()
              | Mem arr ->
                let w =
                  Factor_store.create ~spill:true ?dir:spill_dir
                    ~on_write:(fun bytes ->
                      Metrics.incr elim_spill_bytes ~by:bytes)
                    (Factor_store.make_meta ~scope:[| 0 |]
                       ~sizes:[| Array.length arr |])
                in
                (try Array.iter (Factor_store.append w) arr
                 with e ->
                   Factor_store.abort w;
                   raise e);
                counts := Stored (Factor_store.finish w);
                Metrics.incr elim_spilled
            end
          done;
          (* Accept: some branch alive (the subset is a completion of at
             least one shared assignment — counted once), and the clause
             verdict matches the query's polarity. *)
          let total = ref Nat.zero in
          Array.iteri
            (fun si key ->
              let alive = ref false in
              for b = 0 to nb - 1 do
                if key.(2 + (2 * b)) >= 0 then alive := true
              done;
              let sat_ok = p.sat_all || (key.(1) = 1) <> p.negated in
              if !alive && sat_ok then total := Nat.add !total (get_count si))
            !keys;
          !total))

let count ?query ?width_bound ?max_branches ?max_universe ?max_states
    ?max_cells ?cache ?memos ?spill_dir ?jobs db =
  match plan ?query ?width_bound ?max_branches ?max_universe db with
  | Error i -> raise (Infeasible i)
  | Ok p -> run ?max_states ?max_cells ?cache ?memos ?spill_dir ?jobs p
