open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

type t = Qnum.t array

let null_count facts =
  List.length
    (List.sort_uniq String.compare
       (List.concat_map
          (fun (f : Idb.fact) ->
            Array.to_list f.Idb.args
            |> List.filter_map (function
                 | Term.Null n -> Some n
                 | Term.Const _ -> None))
          facts))

(* Fresh values disjoint from any table constant. *)
let symbolic_domain d = List.init d (fun i -> Printf.sprintf "\xc2\xa7%d" i)

let count_at ?limit q facts d =
  let db = Idb.make facts (Idb.Uniform (symbolic_domain d)) in
  Incdb_incomplete.Brute.count_valuations ?limit (Query.Bcq q) db

let interpolate ?limit q facts =
  let n = null_count facts in
  let points =
    List.init (n + 1) (fun i ->
        let d = i + 1 in
        (Qnum.of_int d, Qnum.of_nat (count_at ?limit q facts d)))
  in
  Incdb_linalg.Qmatrix.lagrange_interpolate points

let eval p ~d =
  let v = Incdb_linalg.Qmatrix.eval_poly p (Qnum.of_int d) in
  if not (Qnum.is_integer v) || Qnum.sign v < 0 then
    failwith "Domain_polynomial.eval: non-integral value (structure violated)"
  else Zint.to_nat (Qnum.to_zint v)

let degree p =
  let rec top i =
    if i < 0 then 0 else if Qnum.is_zero p.(i) then top (i - 1) else i
  in
  top (Array.length p - 1)

let to_string p =
  let terms = ref [] in
  Array.iteri
    (fun i c ->
      if not (Qnum.is_zero c) then
        terms :=
          (match i with
          | 0 -> Qnum.to_string c
          | 1 -> Qnum.to_string c ^ "*d"
          | _ -> Printf.sprintf "%s*d^%d" (Qnum.to_string c) i)
          :: !terms)
    p;
  match !terms with [] -> "0" | l -> String.concat " + " (List.rev l)
