(** Exact counting of satisfying completions — the tractable side of the
    #Comp dichotomies (last two columns of Table 1).

    By Theorem 4.6 the only tractable cells are uniform databases with a
    query whose atoms are all unary (absence of the [R(x,x)] and [R(x,y)]
    patterns).  The algorithm implements the completion-shape enumeration
    of Lemmas B.17–B.19: a completion of a unary-schema uniform database is
    determined by the {e exact class} of every domain value (the set of
    relations it belongs to), so we sum, over all ways to assign class
    sizes to plain domain values and to "upgrade" table constants into
    larger classes, the number of value choices (a product of binomials),
    keeping only assignments that are {e realizable} by the available
    nulls and that satisfy the query.

    Realizability (the paper's [check] predicate, Lemma B.19) is decided
    by an exact cover-feasibility search rather than the paper's loose
    bounded z-system enumeration: every null must land on a value whose
    class contains the null's occurrence class, and every counted value
    must have its missing coverage covered by the classes of at least one
    null routed to it; minimal covers are enumerated per value type and
    distributed by a memoized search.  See DESIGN.md §4. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

type algorithm =
  | Uniform_unary  (** Theorem 4.6 completion-shape enumeration *)
  | Candidate_enumeration
      (** Proposition B.1 candidate-space enumeration (Codd tables with a
          small ground-fact universe); see {!Comp_candidates} *)
  | Lineage_elimination
      (** Counting by DP over the candidate-fact interaction graph —
          Codd tables past the enumeration cap and (via shared-null
          conditioning) non-Codd tables; see {!Comp_kernel} *)
  | Brute_force

val algorithm_to_string : algorithm -> string

(** [uniform_unary ?query db] counts the completions of the uniform
    database [db] (naïve or Codd) over a unary schema that satisfy
    [query]; with [query] omitted it counts all completions.
    @raise Invalid_argument if [db] is not uniform, a fact is not unary,
    or the query mentions a relation with non-unary atoms / is missing a
    relation of [db]. *)
val uniform_unary : ?query:Cq.t -> Idb.t -> Nat.t

(** [uniform_symbolic ?query facts ~domain_size] counts the completions
    over a {e symbolic} uniform domain of [domain_size] fresh values
    (every table constant treated as external to the domain).  The
    Theorem 4.6 enumeration is bounded by the null count, not the domain,
    so this is polynomial in [log domain_size] — completion counting with
    domains of size 10^9.
    @raise Invalid_argument as {!uniform_unary}, or on
    [domain_size < 1]. *)
val uniform_symbolic :
  ?query:Cq.t -> Incdb_incomplete.Idb.fact list -> domain_size:int -> Nat.t

(** [count ?brute_limit ?max_candidates ?jobs q db] dispatches: the
    Theorem 4.6 algorithm when it applies; otherwise, for a Codd table
    whose candidate universe fits within [max_candidates] (default
    {!Comp_candidates.default_max_candidates}; probed with an early-exit
    grounding, and the probed universe is reused by the counting call),
    the {!Comp_candidates} bitset kernel; then — Codd or not — the
    {!Comp_kernel} elimination arm whenever it can compile a plan;
    brute-force enumeration as the last resort.  [jobs] (default 1:
    sequential; 0: auto-detect) shards the brute-force completion dedup
    — or the enumerator's mask space — across domains; totals are
    bit-identical at any job count (the elimination DP is sequential).
    [mask] (default [Auto]) picks the enumerator's mask representation:
    single-word up to [Lineage.max_universe] candidates, multi-word
    beyond (see {!Comp_candidates.mask_choice}).

    The elimination arm is steered by [comp_elim] (default
    [Comp_kernel.Auto]): [Off] restores the pre-kernel policy, [Force]
    requires the kernel — overriding every other arm, the Theorem 4.6
    closed form included — and raises {!Comp_kernel.Infeasible} when it
    declines; under [Auto] a mid-run [Too_many_states] falls back to
    brute force.  [comp_width_bound] caps the sweep's open fact windows
    (plan-time, typed failure), [comp_max_cells] bounds the in-memory
    bag-boundary message before counts spill to disk under
    [comp_spill_dir], [comp_max_states] bounds the DP frontier,
    [comp_cache] (default [true]) toggles the kernel's antichain
    transform memos, and [comp_memos] backs those memos with a
    caller-owned bundle surviving the call (see
    {!Comp_kernel.type-memos} — the incdbd warm-reuse hook; the bundle
    self-clears on a plan change, so passing one is always sound) —
    none of them change any count.
    @raise Idb.Too_many_valuations if enumeration is needed but the
    instance exceeds [brute_limit] valuations.
    @raise Comp_kernel.Infeasible under [comp_elim = Force] when the
    kernel declines the instance. *)
val count :
  ?brute_limit:int ->
  ?max_candidates:int ->
  ?jobs:int ->
  ?mask:Comp_candidates.mask_choice ->
  ?comp_elim:Comp_kernel.choice ->
  ?comp_width_bound:int ->
  ?comp_max_cells:int ->
  ?comp_max_states:int ->
  ?comp_cache:bool ->
  ?comp_memos:Comp_kernel.memos ->
  ?comp_spill_dir:string ->
  Cq.t ->
  Idb.t ->
  algorithm * Nat.t

(** [count_all ?brute_limit ?max_candidates ?jobs ?mask db] counts all
    completions (no query); same dispatch and options as {!count}. *)
val count_all :
  ?brute_limit:int ->
  ?max_candidates:int ->
  ?jobs:int ->
  ?mask:Comp_candidates.mask_choice ->
  ?comp_elim:Comp_kernel.choice ->
  ?comp_width_bound:int ->
  ?comp_max_cells:int ->
  ?comp_max_states:int ->
  ?comp_cache:bool ->
  ?comp_memos:Comp_kernel.memos ->
  ?comp_spill_dir:string ->
  Idb.t ->
  algorithm * Nat.t
