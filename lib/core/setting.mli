(** The eight problem settings of the paper: {naïve, Codd} × {non-uniform,
    uniform} × {valuations, completions}. *)

type table_kind = Naive | Codd
type domain_kind = Non_uniform | Uniform
type problem = Valuations | Completions

type t = { table : table_kind; domain : domain_kind; problem : problem }

val all : t list

(** e.g. ["#Val^u_Cd"] in the paper's notation. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** [of_idb problem db] derives the setting that matches a concrete
    incomplete database: Codd if every null occurs once, uniform if the
    database was built with a uniform domain. *)
val of_idb : problem -> Incdb_incomplete.Idb.t -> t
