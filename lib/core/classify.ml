open Incdb_cq

type verdict = Tractable of string | Hard of Cq.t | Open_case of string

let verdict_to_string = function
  | Tractable reason -> "FP (" ^ reason ^ ")"
  | Hard p -> "#P-hard (pattern " ^ Cq.to_string p ^ ")"
  | Open_case why -> "open (" ^ why ^ ")"

let check_sjf q =
  if not (Cq.is_self_join_free q) then
    invalid_arg "Classify: the dichotomies are stated for self-join-free BCQs"

(* Hard patterns of each Table 1 cell.  For completions in the non-uniform
   setting every sjfBCQ is hard (Theorem 4.3) because R(x) is a pattern of
   every query. *)
let hard_patterns (s : Setting.t) =
  match (s.problem, s.domain, s.table) with
  | Setting.Valuations, Setting.Non_uniform, Setting.Naive ->
    [ Cq.q_rxx; Cq.q_rx_sx ]
  | Setting.Valuations, Setting.Non_uniform, Setting.Codd -> [ Cq.q_rx_sx ]
  | Setting.Valuations, Setting.Uniform, Setting.Naive ->
    [ Cq.q_rxx; Cq.q_rx_sxy_ty; Cq.q_rxy_sxy ]
  | Setting.Valuations, Setting.Uniform, Setting.Codd -> [ Cq.q_rx_sxy_ty ]
  | Setting.Completions, Setting.Non_uniform, _ -> [ Cq.q_rx ]
  | Setting.Completions, Setting.Uniform, _ -> [ Cq.q_rxx; Cq.q_rxy ]

module Trace = Incdb_obs.Trace
module Metrics = Incdb_obs.Metrics

(* Classification is pure in (setting, query), and the pattern search it
   performs is the single hottest part of classifying a corpus (Table 1
   runs it 8x per query), so verdicts are memoized.  The hit/miss
   counters expose the cache's effectiveness.

   The table is module-global — that is what lets a persistent incdbd
   serve repeat classifications without re-running the pattern search —
   so unlike a one-shot CLI it needs a lifecycle: a size cap (the table
   stops absorbing new entries at capacity, like the Val_kernel
   subproblem cache — no eviction, so memory stays bounded and verdicts
   never change), and a generation-safe [reset_cache], registered with
   {!Incdb_obs.Export.register_cache_reset} so the server's lifecycle
   hook can drop warm state without lib/obs depending on this module. *)
let cache_hits = Metrics.counter "classify.cache_hits"
let cache_misses = Metrics.counter "classify.cache_misses"
let default_cache_capacity = 1 lsl 12
let verdict_cache : (string, verdict) Hashtbl.t = Hashtbl.create 64
let cache_capacity = ref default_cache_capacity
let cache_lock = Mutex.create ()

let reset_cache () =
  Mutex.protect cache_lock (fun () -> Hashtbl.reset verdict_cache)

let set_cache_capacity n =
  if n < 0 then invalid_arg "Classify.set_cache_capacity: negative capacity";
  Mutex.protect cache_lock (fun () ->
      cache_capacity := n;
      if Hashtbl.length verdict_cache > n then Hashtbl.reset verdict_cache)

let cache_length () =
  Mutex.protect cache_lock (fun () -> Hashtbl.length verdict_cache)

let () =
  Incdb_obs.Export.register_cache_reset "classify.verdict_cache" reset_cache

let exact_uncached (s : Setting.t) q =
  let witness = Pattern.first_hard_pattern (hard_patterns s) q in
  match (s.problem, s.domain, s.table, witness) with
  | _, _, _, Some p -> Hard p
  | Setting.Valuations, Setting.Non_uniform, Setting.Naive, None ->
    Tractable "Thm 3.6: every variable occurs once; multiply domain sizes"
  | Setting.Valuations, Setting.Non_uniform, Setting.Codd, None ->
    Tractable "Thm 3.7: atoms share no variable; per-atom product"
  | Setting.Valuations, Setting.Uniform, Setting.Naive, None ->
    Tractable "Thm 3.9: basic-singleton decomposition + block sums"
  | Setting.Valuations, Setting.Uniform, Setting.Codd, None ->
    (* No dichotomy is known here (the paper's open case); but both
       tractability arguments transfer, since uniform instances are special
       non-uniform instances and Codd tables are special naïve tables. *)
    if not (Pattern.has_rx_sx q) then
      Tractable "Thm 3.7 applies (uniform inputs are non-uniform inputs)"
    else if
      not (Pattern.has_rxx q || Pattern.has_rx_sxy_ty q || Pattern.has_rxy_sxy q)
    then Tractable "Thm 3.9 applies (Codd tables are naive tables)"
    else Open_case "#Val^u_Cd dichotomy left open by the paper (Sec. 3.2)"
  | Setting.Completions, Setting.Non_uniform, _, None ->
    (* Unreachable: R(x) is a pattern of every well-formed sjfBCQ. *)
    assert false
  | Setting.Completions, Setting.Uniform, _, None ->
    Tractable "Thm 4.6: unary schema; completion-shape enumeration"

let exact (s : Setting.t) q =
  check_sjf q;
  Trace.with_span "classify.exact" (fun () ->
      let key = Setting.to_string s ^ "|" ^ Cq.to_string q in
      match
        Mutex.protect cache_lock (fun () -> Hashtbl.find_opt verdict_cache key)
      with
      | Some v ->
        Metrics.incr cache_hits;
        v
      | None ->
        Metrics.incr cache_misses;
        let v = exact_uncached s q in
        Mutex.protect cache_lock (fun () ->
            if Hashtbl.length verdict_cache < !cache_capacity then
              Hashtbl.replace verdict_cache key v);
        v)

type approx_verdict =
  | Fpras of string
  | Fp of string
  | No_fpras of string
  | Approx_open of string

let approx_verdict_to_string = function
  | Fpras reason -> "FPRAS (" ^ reason ^ ")"
  | Fp reason -> "FP (" ^ reason ^ ")"
  | No_fpras reason -> "no FPRAS unless NP = RP (" ^ reason ^ ")"
  | Approx_open why -> "open (" ^ why ^ ")"

let approximate (s : Setting.t) q =
  check_sjf q;
  match s.problem with
  | Setting.Valuations ->
    (match exact s q with
    | Tractable r -> Fp r
    | Hard _ | Open_case _ ->
      Fpras "Cor 5.3: unions of BCQs are monotone with bounded minimal models")
  | Setting.Completions ->
    (match s.domain with
    | Setting.Non_uniform -> No_fpras "Thm 5.5, via #IS through #VC"
    | Setting.Uniform ->
      (match exact s q with
      | Tractable r -> Fp r
      | Open_case _ -> assert false
      | Hard p ->
        (match s.table with
        | Setting.Naive ->
          No_fpras
            ("Thm 5.7, 3-colorability gadget; pattern " ^ Cq.to_string p)
        | Setting.Codd -> Approx_open "FPRAS for #Comp^u_Cd open (Sec. 5.2)")))

let membership (s : Setting.t) =
  match (s.problem, s.table) with
  | Setting.Valuations, _ -> "in #P (guess a valuation, model-check)"
  | Setting.Completions, Setting.Codd ->
    "in #P (Thm 4.4 via the Lemma B.2 matching test)"
  | Setting.Completions, Setting.Naive ->
    "in SpanP (Obs 6.2); not in #P for some q unless NP \xe2\x8a\x86 SPP (Prop 6.1)"

let table1 queries =
  let buf = Buffer.create 1024 in
  let settings = Setting.all in
  let qcol = 28 and col = 12 in
  (* Pad by display width: count UTF-8 code points, not bytes, so the
     wedge symbol does not break the column alignment. *)
  let display_length s =
    let n = ref 0 in
    String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
    !n
  in
  let pad width s =
    let len = display_length s in
    if len >= width then s ^ " "
    else s ^ String.make (width - len) ' '
  in
  Buffer.add_string buf (pad qcol "query");
  List.iter (fun s -> Buffer.add_string buf (pad col (Setting.to_string s))) settings;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (qcol + (col * List.length settings)) '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun q ->
      Buffer.add_string buf (pad qcol (Cq.to_string q));
      List.iter
        (fun s ->
          let cell =
            match exact s q with
            | Tractable _ -> "FP"
            | Hard _ -> "#P-hard"
            | Open_case _ -> "open"
          in
          Buffer.add_string buf (pad col cell))
        settings;
      Buffer.add_char buf '\n')
    queries;
  Buffer.contents buf
