open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

type algorithm =
  | Product_of_domains
  | Codd_per_atom
  | Uniform_block_dp
  | Lineage_elimination
  | Brute_force

let algorithm_to_string = function
  | Product_of_domains -> "product-of-domains (Thm 3.6)"
  | Codd_per_atom -> "codd-per-atom (Thm 3.7)"
  | Uniform_block_dp -> "uniform-block-dp (Thm 3.9)"
  | Lineage_elimination -> "lineage variable elimination (#Val kernel)"
  | Brute_force -> "brute-force enumeration"

module Sset = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Theorem 3.6: every variable occurs exactly once.                    *)
(* ------------------------------------------------------------------ *)

let all_variables_single q =
  List.for_all (fun v -> Cq.occurrences q v = 1) (Cq.variables q)

let nonuniform_naive q db =
  if not (all_variables_single q) then
    invalid_arg "Count_val.nonuniform_naive: a variable occurs twice";
  (* With single-occurrence variables, any fact of the right arity matches
     an atom, so q holds under every valuation unless some atom has no
     candidate fact at all (footnote 2 of the paper). *)
  let atom_has_fact (a : Cq.atom) =
    List.exists
      (fun (f : Idb.fact) -> Array.length f.Idb.args = Array.length a.Cq.vars)
      (Idb.facts_of db a.Cq.rel)
  in
  if List.for_all atom_has_fact q then Idb.total_valuations db else Nat.zero

(* ------------------------------------------------------------------ *)
(* Theorem 3.7: Codd table, atoms pairwise variable-disjoint.          *)
(* ------------------------------------------------------------------ *)

let atoms_share_no_variable q =
  let rec go = function
    | [] -> true
    | a :: rest ->
      List.for_all (fun b -> Conngraph.shared_vars a b = []) rest && go rest
  in
  go q

(* Values a term can take: the domain of a null, the singleton of a
   constant (this replaces the paper's preprocessing that turns each
   constant into a fresh null with a singleton domain). *)
let candidates db = function
  | Term.Null n -> Sset.of_list (Idb.domain_of db n)
  | Term.Const c -> Sset.singleton c

let fact_null_names (f : Idb.fact) =
  Array.to_list f.Idb.args
  |> List.filter_map (function Term.Null n -> Some n | Term.Const _ -> None)

(* Number of valuations of the nulls of tuple [f] making it match atom
   [a]: the product over the distinct variables of [a] of the size of the
   intersection of the candidate sets at that variable's positions. *)
let tuple_match_count db (a : Cq.atom) (f : Idb.fact) =
  if Array.length f.Idb.args <> Array.length a.Cq.vars then Nat.zero
  else begin
    let by_var = Hashtbl.create 4 in
    Array.iteri
      (fun i v ->
        let cand = candidates db f.Idb.args.(i) in
        let cur = Option.value ~default:None (Hashtbl.find_opt by_var v) in
        let inter = match cur with None -> cand | Some s -> Sset.inter s cand in
        Hashtbl.replace by_var v (Some inter))
      a.Cq.vars;
    Hashtbl.fold
      (fun _ inter acc ->
        match inter with
        | Some s -> Nat.mul acc (Nat.of_int (Sset.cardinal s))
        | None -> acc)
      by_var Nat.one
  end

let tuple_total_valuations db f =
  Nat.product
    (List.map (fun n -> Nat.of_int (List.length (Idb.domain_of db n)))
       (fact_null_names f))

let codd_nonuniform q db =
  if not (atoms_share_no_variable q) then
    invalid_arg "Count_val.codd_nonuniform: atoms share a variable";
  if not (Idb.is_codd db) then
    invalid_arg "Count_val.codd_nonuniform: not a Codd table";
  (* #Val(q) = prod_i #Val(R_i(x_i))(D(R_i)) x (free-null domain sizes);
     within a relation, #Val = total - prod_j rho(t_j) where rho counts the
     non-matching valuations of tuple t_j (tuples have disjoint nulls). *)
  let atom_count (a : Cq.atom) =
    let tuples = Idb.facts_of db a.Cq.rel in
    let total =
      Nat.product (List.map (tuple_total_valuations db) tuples)
    in
    let rho f =
      Nat.sub (tuple_total_valuations db f) (tuple_match_count db a f)
    in
    Nat.sub total (Nat.product (List.map rho tuples))
  in
  let per_atom = Nat.product (List.map atom_count q) in
  (* Nulls in relations not mentioned by q are unconstrained. *)
  let rels = Cq.relations q in
  let free_nulls =
    Idb.facts db
    |> List.filter (fun (f : Idb.fact) -> not (List.mem f.Idb.rel rels))
    |> List.concat_map fact_null_names
    |> List.sort_uniq String.compare
  in
  Nat.mul per_atom
    (Nat.product
       (List.map
          (fun n -> Nat.of_int (List.length (Idb.domain_of db n)))
          free_nulls))

(* ------------------------------------------------------------------ *)
(* Theorem 3.9: uniform naive tables, basic-singleton shape.           *)
(* ------------------------------------------------------------------ *)

let uniform_shape_ok q =
  not (Pattern.has_rxx q || Pattern.has_rx_sxy_ty q || Pattern.has_rxy_sxy q)

(* A projected unary atom: the set of terms in the shared-variable column
   of one relation.  [group] identifies the basic singleton (connected
   component) the atom belongs to. *)
type proj_atom = { group : int; terms : Term.t list }

let uniform_domain db =
  match Idb.domain_spec db with
  | Idb.Uniform dom -> dom
  | Idb.Nonuniform _ ->
    invalid_arg "Count_val.uniform_naive: database is not uniform"

(* Project the query onto its basic singletons (Lemmas A.11 and A.12).
   Returns the projected atoms and the set of nulls they constrain; all
   other nulls of the table are free.  Raises if the query shape is not
   the tractable one. *)
let project_basic_singletons q db =
  let comps = Conngraph.components q in
  let atoms = ref [] in
  let gid = ref 0 in
  List.iter
    (fun (c : Conngraph.component) ->
      match (c.Conngraph.atoms, c.Conngraph.shared_var) with
      | [ _a ], _ ->
        (* Single-occurrence variables only: the atom is satisfied by any
           valuation iff its relation is non-empty; represent it as a
           one-atom group whose terms are a fresh marker when non-empty.
           We model it exactly: group with one projected atom whose term
           set is the full column... any column works since any fact
           matches; use emptiness only. *)
        ()
      | many, Some v ->
        incr gid;
        List.iter
          (fun (a : Cq.atom) ->
            (* position of the shared variable in this atom (no repeats) *)
            let pos = ref (-1) in
            Array.iteri (fun i u -> if u = v then pos := i) a.Cq.vars;
            assert (!pos >= 0);
            let col =
              List.filter_map
                (fun (f : Idb.fact) ->
                  if Array.length f.Idb.args > !pos then Some f.Idb.args.(!pos)
                  else None)
                (Idb.facts_of db a.Cq.rel)
            in
            let col = List.sort_uniq Term.compare col in
            atoms := { group = !gid; terms = col } :: !atoms)
          many
      | _, None ->
        invalid_arg "Count_val.uniform_naive: query has a hard pattern")
    comps;
  (List.rev !atoms, comps)

(* Shared preprocessing of the three Theorem 3.9 engines: the projected
   atoms of the basic singletons, the per-group forbidden masks for the
   Lemma A.13 inclusion–exclusion, and the occurrence / base-coverage
   masks of the nulls and constants over the projected atoms. *)
type singleton_setup = {
  forbidden_all : int list;  (* per basic singleton, the mask of its atoms *)
  occ_of_null : (string, int) Hashtbl.t;
  cov_of_const : (string, int) Hashtbl.t;
  all_nulls : string list;
}

(* Empty-relation test for singleton components (footnote 2). *)
let singleton_relations_nonempty q db =
  List.for_all
    (fun (c : Conngraph.component) ->
      match c.Conngraph.atoms with
      | [ a ] -> Idb.facts_of db a.Cq.rel <> []
      | _ -> true)
    (Conngraph.components q)

let singleton_setup q db =
  let proj, _ = project_basic_singletons q db in
  let proj = Array.of_list proj in
  let kk = Array.length proj in
  let atom_ids = List.init kk Fun.id in
  let groups =
    List.sort_uniq Stdlib.compare
      (Array.to_list (Array.map (fun p -> p.group) proj))
  in
  let group_mask g =
    List.fold_left
      (fun m i -> if proj.(i).group = g then m lor (1 lsl i) else m)
      0 atom_ids
  in
  let occ_of_null = Hashtbl.create 16 in
  let cov_of_const = Hashtbl.create 16 in
  Array.iteri
    (fun i p ->
      List.iter
        (function
          | Term.Null n ->
            let cur = Option.value ~default:0 (Hashtbl.find_opt occ_of_null n) in
            Hashtbl.replace occ_of_null n (cur lor (1 lsl i))
          | Term.Const c ->
            let cur = Option.value ~default:0 (Hashtbl.find_opt cov_of_const c) in
            Hashtbl.replace cov_of_const c (cur lor (1 lsl i)))
        p.terms)
    proj;
  {
    forbidden_all = List.map group_mask groups;
    occ_of_null;
    cov_of_const;
    all_nulls = Idb.nulls db;
  }

let setup_occ s n = Option.value ~default:0 (Hashtbl.find_opt s.occ_of_null n)
let setup_cov s c = Option.value ~default:0 (Hashtbl.find_opt s.cov_of_const c)

(* Coverage masks of the constants outside [dom_set]: fixed under every
   valuation.  With [dom_set] empty every table constant is external
   (the symbolic-domain case). *)
let setup_external_covers s dom_set =
  Hashtbl.fold
    (fun c mask acc -> if Sset.mem c dom_set then acc else mask :: acc)
    s.cov_of_const []

let uniform_naive q db =
  if not (uniform_shape_ok q) then
    invalid_arg "Count_val.uniform_naive: query contains a hard pattern";
  let dom = uniform_domain db in
  let d = List.length dom in
  if not (singleton_relations_nonempty q db) then Nat.zero
  else begin
    let setup = singleton_setup q db in
    let forbidden_all = setup.forbidden_all in
    let all_nulls = setup.all_nulls in
    let constrained_occ = setup_occ setup in
    (* Out-of-domain constants have a fixed coverage. *)
    let external_covers = setup_external_covers setup (Sset.of_list dom) in
    (* N_S for a subset of groups, identified by the union mask of their
       atoms and the list of their individual forbidden masks. *)
    let n_s sub_forbidden =
      let atoms_mask = List.fold_left ( lor ) 0 sub_forbidden in
      (* A constant outside dom whose fixed coverage includes all atoms of
         some forbidden group satisfies that group under every valuation. *)
      let ext_unsafe =
        List.exists
          (fun m -> List.exists (fun f -> m land f = f) sub_forbidden)
          external_covers
      in
      if ext_unsafe then Nat.zero
      else begin
        (* Group constrained nulls by occurrence class within S. *)
        let class_counts = Hashtbl.create 8 in
        let free = ref 0 in
        List.iter
          (fun n ->
            let m = constrained_occ n land atoms_mask in
            if m = 0 then incr free
            else begin
              let cur = Option.value ~default:0 (Hashtbl.find_opt class_counts m) in
              Hashtbl.replace class_counts m (cur + 1)
            end)
          all_nulls;
        let classes =
          Hashtbl.fold (fun m c acc -> (m, c) :: acc) class_counts []
          |> List.sort Stdlib.compare
        in
        let nclasses = List.length classes in
        let class_masks = Array.of_list (List.map fst classes) in
        let class_sizes = Array.of_list (List.map snd classes) in
        let unsafe u = List.exists (fun f -> u land f = f) sub_forbidden in
        (* DP over domain values; state = remaining nulls per class. *)
        let tbl : (int list, Nat.t) Hashtbl.t = Hashtbl.create 64 in
        Hashtbl.replace tbl (Array.to_list class_sizes) Nat.one;
        let value_basecov a = setup_cov setup a land atoms_mask in
        let dead = ref false in
        List.iter
          (fun a ->
            if not !dead then begin
              let base = value_basecov a in
              if unsafe base then dead := true
              else begin
                let next : (int list, Nat.t) Hashtbl.t = Hashtbl.create 64 in
                let add st v =
                  let cur = Option.value ~default:Nat.zero (Hashtbl.find_opt next st) in
                  Hashtbl.replace next st (Nat.add cur v)
                in
                Hashtbl.iter
                  (fun state weight ->
                    let rem = Array.of_list state in
                    (* Enumerate allocations (k_0..k_{nclasses-1}). *)
                    let rec alloc i union ways acc_rem =
                      if i = nclasses then begin
                        if not (unsafe union) then
                          add (List.rev acc_rem) (Nat.mul weight ways)
                      end else
                        for k = 0 to rem.(i) do
                          let union' = if k > 0 then union lor class_masks.(i) else union in
                          (* Prune: an unsafe union can only grow. *)
                          if not (unsafe union') then
                            alloc (i + 1) union'
                              (Nat.mul ways (Combinat.binomial rem.(i) k))
                              ((rem.(i) - k) :: acc_rem)
                        done
                    in
                    alloc 0 base Nat.one [])
                  tbl;
                Hashtbl.reset tbl;
                Hashtbl.iter (Hashtbl.replace tbl) next
              end
            end)
          dom;
        if !dead then Nat.zero
        else begin
          let zero_state = List.map (fun _ -> 0) (Array.to_list class_sizes) in
          let core =
            Option.value ~default:Nat.zero (Hashtbl.find_opt tbl zero_state)
          in
          Nat.mul core (Combinat.power d !free)
        end
      end
    in
    (* Inclusion-exclusion over subsets of basic singletons (Lemma A.13). *)
    let result = ref Zint.zero in
    List.iter
      (fun subset ->
        let term = Zint.of_nat (n_s subset) in
        let signed =
          if List.length subset land 1 = 0 then term else Zint.neg term
        in
        result := Zint.add !result signed)
      (Combinat.subsets forbidden_all);
    Zint.to_nat !result
  end

(* ------------------------------------------------------------------ *)
(* Theorem 3.9, weighted: the probability version of the block DP.     *)
(* ------------------------------------------------------------------ *)

let uniform_weighted q db ~weight =
  if not (uniform_shape_ok q) then
    invalid_arg "Count_val.uniform_weighted: query contains a hard pattern";
  let dom = uniform_domain db in
  let total_mass =
    List.fold_left (fun acc a -> Qnum.add acc (weight a)) Qnum.zero dom
  in
  if not (Qnum.equal total_mass Qnum.one) then
    invalid_arg "Count_val.uniform_weighted: weights must sum to 1";
  if not (singleton_relations_nonempty q db) then Qnum.zero
  else begin
    let setup = singleton_setup q db in
    let forbidden_all = setup.forbidden_all in
    let all_nulls = setup.all_nulls in
    let constrained_occ = setup_occ setup in
    let external_covers = setup_external_covers setup (Sset.of_list dom) in
    (* P_S: probability that no basic singleton of S is satisfied; the
       counting DP with binomial allocation weights scaled by w(a)^k. *)
    let p_s sub_forbidden =
      let atoms_mask = List.fold_left ( lor ) 0 sub_forbidden in
      let ext_unsafe =
        List.exists
          (fun m -> List.exists (fun f -> m land f = f) sub_forbidden)
          (List.map (fun m -> m land atoms_mask) external_covers)
      in
      if ext_unsafe then Qnum.zero
      else begin
        let class_counts = Hashtbl.create 8 in
        List.iter
          (fun n ->
            let m = constrained_occ n land atoms_mask in
            if m <> 0 then begin
              let cur = Option.value ~default:0 (Hashtbl.find_opt class_counts m) in
              Hashtbl.replace class_counts m (cur + 1)
            end)
          all_nulls;
        let classes =
          Hashtbl.fold (fun m c acc -> (m, c) :: acc) class_counts []
          |> List.sort Stdlib.compare
        in
        let nclasses = List.length classes in
        let class_masks = Array.of_list (List.map fst classes) in
        let class_sizes = Array.of_list (List.map snd classes) in
        let unsafe u = List.exists (fun f -> u land f = f) sub_forbidden in
        let tbl : (int list, Qnum.t) Hashtbl.t = Hashtbl.create 64 in
        Hashtbl.replace tbl (Array.to_list class_sizes) Qnum.one;
        let value_basecov a = setup_cov setup a land atoms_mask in
        let dead = ref false in
        List.iter
          (fun a ->
            if not !dead then begin
              let base = value_basecov a in
              if unsafe base then dead := true
              else begin
                let wa = weight a in
                let next : (int list, Qnum.t) Hashtbl.t = Hashtbl.create 64 in
                let add st v =
                  let cur =
                    Option.value ~default:Qnum.zero (Hashtbl.find_opt next st)
                  in
                  Hashtbl.replace next st (Qnum.add cur v)
                in
                Hashtbl.iter
                  (fun state mass ->
                    let rem = Array.of_list state in
                    let rec alloc i union ways acc_rem =
                      if i = nclasses then begin
                        if not (unsafe union) then add (List.rev acc_rem) (Qnum.mul mass ways)
                      end else
                        for k = 0 to rem.(i) do
                          let union' =
                            if k > 0 then union lor class_masks.(i) else union
                          in
                          if not (unsafe union') then begin
                            let choose =
                              Qnum.of_nat (Combinat.binomial rem.(i) k)
                            in
                            let rec wpow acc j =
                              if j = 0 then acc else wpow (Qnum.mul acc wa) (j - 1)
                            in
                            alloc (i + 1) union'
                              (Qnum.mul ways (Qnum.mul choose (wpow Qnum.one k)))
                              ((rem.(i) - k) :: acc_rem)
                          end
                        done
                    in
                    alloc 0 base Qnum.one [])
                  tbl;
                Hashtbl.reset tbl;
                Hashtbl.iter (Hashtbl.replace tbl) next
              end
            end)
          dom;
        if !dead then Qnum.zero
        else begin
          let zero_state = List.init nclasses (fun _ -> 0) in
          (* Free nulls (not constrained by S) integrate to total mass 1. *)
          Option.value ~default:Qnum.zero (Hashtbl.find_opt tbl zero_state)
        end
      end
    in
    List.fold_left
      (fun acc subset ->
        let term = p_s subset in
        if List.length subset land 1 = 0 then Qnum.add acc term
        else Qnum.sub acc term)
      Qnum.zero
      (Combinat.subsets forbidden_all)
  end

(* ------------------------------------------------------------------ *)
(* Theorem 3.9 over a symbolic domain: matrix exponentiation.          *)
(* ------------------------------------------------------------------ *)

(* Dense square matrices of naturals, just big enough for the transition
   powering below. *)
let nat_mat_mul a b =
  let n = Array.length a in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let acc = ref Nat.zero in
          for k = 0 to n - 1 do
            if not (Nat.is_zero a.(i).(k) || Nat.is_zero b.(k).(j)) then
              acc := Nat.add !acc (Nat.mul a.(i).(k) b.(k).(j))
          done;
          !acc))

let rec nat_mat_pow m e =
  let n = Array.length m in
  if e = 0 then
    Array.init n (fun i -> Array.init n (fun j -> if i = j then Nat.one else Nat.zero))
  else begin
    let h = nat_mat_pow m (e / 2) in
    let h2 = nat_mat_mul h h in
    if e land 1 = 1 then nat_mat_mul h2 m else h2
  end

let uniform_symbolic q facts ~domain_size =
  if domain_size < 1 then
    invalid_arg "Count_val.uniform_symbolic: domain_size must be positive";
  if not (uniform_shape_ok q) then
    invalid_arg "Count_val.uniform_symbolic: query contains a hard pattern";
  (* The placeholder value never meets the table: constants are treated as
     external to the symbolic domain. *)
  let db = Idb.make facts (Idb.Uniform [ "Â§sym" ]) in
  let d = domain_size in
  if not (singleton_relations_nonempty q db) then Nat.zero
  else begin
    let setup = singleton_setup q db in
    let forbidden_all = setup.forbidden_all in
    let all_nulls = setup.all_nulls in
    let constrained_occ = setup_occ setup in
    (* Every table constant is external to the symbolic domain. *)
    let external_covers = setup_external_covers setup Sset.empty in
    let n_s sub_forbidden =
      let atoms_mask = List.fold_left ( lor ) 0 sub_forbidden in
      let ext_unsafe =
        List.exists
          (fun m -> List.exists (fun f -> m land f = f) sub_forbidden)
          (List.map (fun m -> m land atoms_mask) external_covers)
      in
      if ext_unsafe then Nat.zero
      else begin
        let class_counts = Hashtbl.create 8 in
        let free = ref 0 in
        List.iter
          (fun n ->
            let m = constrained_occ n land atoms_mask in
            if m = 0 then incr free
            else begin
              let cur = Option.value ~default:0 (Hashtbl.find_opt class_counts m) in
              Hashtbl.replace class_counts m (cur + 1)
            end)
          all_nulls;
        let classes =
          Hashtbl.fold (fun m c acc -> (m, c) :: acc) class_counts []
          |> List.sort Stdlib.compare
        in
        let nclasses = List.length classes in
        let class_masks = Array.of_list (List.map fst classes) in
        let class_sizes = List.map snd classes in
        let unsafe u = List.exists (fun f -> u land f = f) sub_forbidden in
        let core =
          if nclasses = 0 then Nat.one
          else begin
            (* State space: vectors of remaining nulls per class, encoded
               in mixed radix. *)
            let radix = Array.of_list (List.map (fun n -> n + 1) class_sizes) in
            let nstates = Array.fold_left ( * ) 1 radix in
            let decode ix =
              let v = Array.make nclasses 0 in
              let ix = ref ix in
              for i = 0 to nclasses - 1 do
                v.(i) <- !ix mod radix.(i);
                ix := !ix / radix.(i)
              done;
              v
            in
            let encode v =
              let ix = ref 0 in
              for i = nclasses - 1 downto 0 do
                ix := (!ix * radix.(i)) + v.(i)
              done;
              !ix
            in
            (* One plain value absorbs an allocation vector with a safe
               coverage union; the transition matrix is the same for all
               d values. *)
            let m = Array.make_matrix nstates nstates Nat.zero in
            for from = 0 to nstates - 1 do
              let rem = decode from in
              let rec alloc i union ways acc =
                if i = nclasses then begin
                  if not (unsafe union) then begin
                    let dest = encode (Array.of_list (List.rev acc)) in
                    m.(dest).(from) <- Nat.add m.(dest).(from) ways
                  end
                end else
                  for k = 0 to rem.(i) do
                    let union' =
                      if k > 0 then union lor class_masks.(i) else union
                    in
                    if not (unsafe union') then
                      alloc (i + 1) union'
                        (Nat.mul ways (Combinat.binomial rem.(i) k))
                        ((rem.(i) - k) :: acc)
                  done
              in
              alloc 0 0 Nat.one []
            done;
            let powered = nat_mat_pow m d in
            let full_state = encode (Array.of_list (List.map (fun n -> n) class_sizes)) in
            powered.(0).(full_state)
            (* state 0 encodes the all-zero remaining vector *)
          end
        in
        Nat.mul core (Combinat.power d !free)
      end
    in
    let result = ref Zint.zero in
    List.iter
      (fun subset ->
        let term = Zint.of_nat (n_s subset) in
        let signed =
          if List.length subset land 1 = 0 then term else Zint.neg term
        in
        result := Zint.add !result signed)
      (Combinat.subsets forbidden_all);
    Zint.to_nat !result
  end

(* ------------------------------------------------------------------ *)
(* Dispatcher.                                                         *)
(* ------------------------------------------------------------------ *)

module Trace = Incdb_obs.Trace
module Log = Incdb_obs.Log

(* Brute-force routed through the sharded engine; [jobs = 1] (the
   default) is exactly the sequential [Brute] code path. *)
let brute_force ?limit ?(jobs = 1) q db =
  Incdb_par.Brute_par.count_valuations ?limit ~jobs q db

(* Try the lineage variable-elimination kernel; [None] means it declined
   (opaque query, or more events than [max_events] would compile) and the
   caller should enumerate instead. *)
let try_kernel ?width_bound ?max_events ?max_cells ?order ?cache_entries
    ?cache ?spill ?spill_dir ?spill_budget_bytes ?jobs q db =
  Trace.with_span "count_val.lineage_elimination" (fun () ->
      match
        Val_kernel.count ?width_bound ?max_events ?max_cells ?order
          ?cache_entries ?cache ?spill ?spill_dir ?spill_budget_bytes ?jobs q
          db
      with
      | result -> result
      | exception Val_kernel.Too_many_events { events; limit } ->
        Log.debugf
          "count_val: %d events exceed the kernel limit %d; enumerating"
          events limit;
        None)

let count ?brute_limit ?val_width_bound ?val_max_events ?val_max_cells
    ?val_order ?val_cache_entries ?val_cache ?val_spill ?val_spill_dir
    ?val_spill_budget_bytes ?jobs q db =
  Trace.with_span "count_val.count" (fun () ->
      (* Phase 1: pattern matching -- decide which closed form applies. *)
      let algo =
        Trace.with_span "count_val.pattern_match" (fun () ->
            if all_variables_single q then Product_of_domains
            else if atoms_share_no_variable q && Idb.is_codd db then
              Codd_per_atom
            else if uniform_shape_ok q && Idb.is_uniform db then
              Uniform_block_dp
            else Lineage_elimination)
      in
      Log.debugf "count_val: %s -> %s" (Cq.to_string q) (algorithm_to_string algo);
      (* Phase 2: closed-form dispatch, the compiled-lineage kernel, or
         brute-force enumeration when the event set is too large. *)
      match algo with
      | Product_of_domains ->
        ( algo,
          Trace.with_span "count_val.product_of_domains" (fun () ->
              nonuniform_naive q db) )
      | Codd_per_atom ->
        ( algo,
          Trace.with_span "count_val.codd_per_atom" (fun () ->
              codd_nonuniform q db) )
      | Uniform_block_dp ->
        ( algo,
          Trace.with_span "count_val.uniform_block_dp" (fun () ->
              uniform_naive q db) )
      | Lineage_elimination | Brute_force -> (
        match
          try_kernel ?width_bound:val_width_bound ?max_events:val_max_events
            ?max_cells:val_max_cells ?order:val_order
            ?cache_entries:val_cache_entries ?cache:val_cache ?spill:val_spill
            ?spill_dir:val_spill_dir ?spill_budget_bytes:val_spill_budget_bytes
            ?jobs (Query.Bcq q) db
        with
        | Some n -> (Lineage_elimination, n)
        | None ->
          ( Brute_force,
            Trace.with_span "count_val.brute_force" (fun () ->
                brute_force ?limit:brute_limit ?jobs (Query.Bcq q) db) )))

let count_query ?brute_limit ?val_width_bound ?val_max_events ?val_max_cells
    ?val_order ?val_cache_entries ?val_cache ?val_spill ?val_spill_dir
    ?val_spill_budget_bytes ?jobs q db =
  match q with
  | Query.Bcq cq ->
    count ?brute_limit ?val_width_bound ?val_max_events ?val_max_cells
      ?val_order ?val_cache_entries ?val_cache ?val_spill ?val_spill_dir
      ?val_spill_budget_bytes ?jobs cq db
  | Query.Union _ | Query.Bcq_neq _ | Query.Not _ ->
    Trace.with_span "count_val.count" (fun () ->
        match
          try_kernel ?width_bound:val_width_bound ?max_events:val_max_events
            ?max_cells:val_max_cells ?order:val_order
            ?cache_entries:val_cache_entries ?cache:val_cache ?spill:val_spill
            ?spill_dir:val_spill_dir ?spill_budget_bytes:val_spill_budget_bytes
            ?jobs q db
        with
        | Some n -> (Lineage_elimination, n)
        | None ->
          ( Brute_force,
            Trace.with_span "count_val.brute_force" (fun () ->
                brute_force ?limit:brute_limit ?jobs q db) ))
  | Query.Semantic _ ->
    Trace.with_span "count_val.count" (fun () ->
        ( Brute_force,
          Trace.with_span "count_val.brute_force" (fun () ->
              brute_force ?limit:brute_limit ?jobs q db) ))
