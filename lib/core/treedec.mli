(** Tree decompositions of the null-interaction graph.

    The [#Val] kernel's elimination schedule used to be implicit: a
    greedy order, factors merged whenever they touch the eliminated
    slot.  This module makes the schedule a first-class object — a
    {e tree decomposition} in the dpdb style (dynamic programming on
    tree decompositions with database-resident tables): triangulate
    the interaction graph along an elimination order, collect the
    maximal cliques of the fill-in graph as {e bags}, connect them by a
    maximum-weight spanning tree on separator sizes (a junction tree),
    and root it.  The kernel then runs one bag-local join per node and
    passes an upward message over each parent separator, which is what
    lets an oversized factor become a streaming problem (see
    {!Factor_store}) instead of a conditioning fallback.

    Everything here is deterministic: bags are recorded in elimination
    order, spanning-tree ties break on the smallest node index, and
    children are visited in ascending index order — so the kernel's
    counts and metrics stay reproducible. *)

type t = private {
  bags : int array array;  (** per node, its slots sorted ascending *)
  parent : int array;  (** parent node index; [-1] for the root *)
  postorder : int array;
      (** every node exactly once, children before parents; the last
          entry is the root *)
  width : int;
      (** largest bag cardinality — the {e cluster-size} convention of
          {!Val_kernel} (graph-theoretic treewidth plus one) *)
}

(** [build ~order ~cliques] is the tree decomposition obtained by
    triangulating the union of the [cliques] (each an array of slots —
    for the kernel, the slot set of one lineage clause) along the
    elimination [order], which must list every slot of the cliques
    exactly once.  Isolated slots appearing in a singleton clique get a
    singleton bag.
    @raise Invalid_argument if [order] misses a slot of some clique or
    repeats one. *)
val build : order:int list -> cliques:int array array -> t

val bag_count : t -> int

(** [separator t i] is [bags.(i) ∩ bags.(parent.(i))], sorted ascending
    — the scope of the upward message out of node [i].  [[||]] for the
    root. *)
val separator : t -> int -> int array

(** Structural soundness check, used by the property tests and cheap
    enough to assert in debug runs: every clique's slots lie inside
    some bag, every slot's bags form a connected subtree (the running
    intersection property), [postorder] is a valid children-first
    traversal of [parent], and [width] matches the bags.  [Error]
    carries a human-readable description of the first violation. *)
val validate : cliques:int array array -> t -> (unit, string) result
