open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

type algorithm =
  | Uniform_unary
  | Candidate_enumeration
  | Lineage_elimination
  | Brute_force

let algorithm_to_string = function
  | Uniform_unary -> "uniform-unary completion shapes (Thm 4.6)"
  | Candidate_enumeration -> "candidate-space enumeration (Prop B.1)"
  | Lineage_elimination -> "lineage-driven elimination (fact-interaction DP)"
  | Brute_force -> "brute-force enumeration"

module Sset = Set.Make (String)

(* The split enumeration assigns values to exact classes from pools. *)
type pool = Plain | Const_pool of int (* basecov mask *)

(* One enumeration variable: how many values of [pool] get target class
   [target]. *)
type split_var = { pool : pool; target : int }

(* ------------------------------------------------------------------ *)
(* Cover feasibility (the check predicate of Lemma B.19).              *)
(* ------------------------------------------------------------------ *)

(* A value type: [count] values each needing the atom set [missing]
   covered by classes drawn from [covers] (each cover is a list of null
   class indices, using each class at most once). *)
type value_type = { count : int; covers : int list list }

(* Minimal covers of [missing] using the null classes [classes] (masks)
   that are subsets of [target]; returns lists of class indices. *)
let minimal_covers ~classes ~target ~missing =
  let allowed =
    List.mapi (fun i m -> (i, m)) classes
    |> List.filter (fun (_, m) -> m land target = m && m land missing <> 0)
  in
  let rec subsets = function
    | [] -> [ ([], 0) ]
    | (i, m) :: rest ->
      let subs = subsets rest in
      List.map (fun (s, u) -> (i :: s, u lor m)) subs @ subs
  in
  let covering =
    List.filter (fun (_, u) -> u land missing = missing) (subsets allowed)
  in
  let is_minimal (s, _) =
    List.for_all
      (fun (s', _) ->
        s' = s
        || not (List.for_all (fun i -> List.mem i s) s' && List.length s' < List.length s))
      covering
  in
  List.filter is_minimal covering |> List.map fst

(* Decide whether the value types can all be covered within the null
   supplies.  Exhaustive search over cover distributions, memoized on
   (type index, remaining supplies).  Supplies are copy-on-write int
   arrays: an update is one copy + in-place subtractions, and — since a
   supply array is never mutated after it is used as a key — arrays hash
   and compare structurally in the memo table just like the lists did. *)
let covers_feasible types supplies =
  let memo = Hashtbl.create 256 in
  (* Subtract [amount] from every class of [cover], or [None] if some
     class runs short. *)
  let apply (sup : int array) amount cover =
    if List.for_all (fun cls -> sup.(cls) >= amount) cover then begin
      let sup' = Array.copy sup in
      List.iter (fun cls -> sup'.(cls) <- sup'.(cls) - amount) cover;
      Some sup'
    end
    else None
  in
  let rec feasible idx (supplies : int array) =
    if idx = Array.length types then true
    else begin
      let key = (idx, supplies) in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
        let t = types.(idx) in
        let covers = Array.of_list t.covers in
        let k = Array.length covers in
        let result =
          if k = 0 then t.count = 0 && feasible (idx + 1) supplies
          else begin
            (* Distribute t.count values among the k covers. *)
            let rec distribute c remaining sup =
              if c = k - 1 then
                (* Last cover takes everything left. *)
                match apply sup remaining covers.(c) with
                | Some sup' -> feasible (idx + 1) sup'
                | None -> false
              else begin
                let rec try_amount a =
                  if a > remaining then false
                  else
                    match apply sup a covers.(c) with
                    | Some sup' ->
                      distribute (c + 1) (remaining - a) sup' || try_amount (a + 1)
                    | None ->
                      (* Larger amounts only fail harder. *)
                      false
                in
                try_amount 0
              end
            in
            distribute 0 t.count supplies
          end
        in
        Hashtbl.replace memo key result;
        result
    end
  in
  feasible 0 supplies

(* ------------------------------------------------------------------ *)
(* The Theorem 4.6 algorithm.                                          *)
(* ------------------------------------------------------------------ *)

(* Parameterized core: the enumeration only touches the domain through
   its size [d] and the in-domain test for table constants, so the same
   code serves explicit and symbolic (astronomically large) domains. *)
let uniform_core ?query ~d ~in_dom db =
  let qrels = match query with None -> [] | Some q -> Cq.relations q in
  (match query with
  | Some q ->
    List.iter
      (fun (a : Cq.atom) ->
        if Array.length a.Cq.vars <> 1 then
          invalid_arg "Count_comp.uniform_unary: query atom is not unary")
      q
  | None -> ());
  List.iter
    (fun (f : Idb.fact) ->
      if Array.length f.Idb.args <> 1 then
        invalid_arg "Count_comp.uniform_unary: table fact is not unary")
    (Idb.facts db);
  let rels =
    List.sort_uniq String.compare (Idb.relations db @ qrels)
  in
  let l = List.length rels in
  if l = 0 then Nat.one
  else begin
    let rel_index r =
      let rec go i = function
        | [] -> assert false
        | r' :: rest -> if r = r' then i else go (i + 1) rest
      in
      go 0 rels
    in
    (* Coverage of constants and occurrence classes of nulls. *)
    let const_cov = Hashtbl.create 16 in
    let null_occ = Hashtbl.create 16 in
    List.iter
      (fun (f : Idb.fact) ->
        let bit = 1 lsl rel_index f.Idb.rel in
        match f.Idb.args.(0) with
        | Term.Const c ->
          let cur = Option.value ~default:0 (Hashtbl.find_opt const_cov c) in
          Hashtbl.replace const_cov c (cur lor bit)
        | Term.Null n ->
          let cur = Option.value ~default:0 (Hashtbl.find_opt null_occ n) in
          Hashtbl.replace null_occ n (cur lor bit))
      (Idb.facts db);
    (* Null classes. *)
    let class_counts = Hashtbl.create 8 in
    Hashtbl.iter
      (fun _ m ->
        let cur = Option.value ~default:0 (Hashtbl.find_opt class_counts m) in
        Hashtbl.replace class_counts m (cur + 1))
      null_occ;
    let null_classes =
      Hashtbl.fold (fun m c acc -> (m, c) :: acc) class_counts []
      |> List.sort Stdlib.compare
    in
    let class_masks = List.map fst null_classes in
    let supplies0 = List.map snd null_classes in
    let supplies0_arr = Array.of_list supplies0 in
    let total_nulls = List.fold_left ( + ) 0 supplies0 in
    (* Constant pools: in-domain constants by exact base class; constants
       outside the domain are fixed, only their coverage matters. *)
    let const_pools = Hashtbl.create 8 in
    let external_covers = ref [] in
    Hashtbl.iter
      (fun c m ->
        if in_dom c then begin
          let cur = Option.value ~default:0 (Hashtbl.find_opt const_pools m) in
          Hashtbl.replace const_pools m (cur + 1)
        end else external_covers := m :: !external_covers)
      const_cov;
    let const_pool_list =
      Hashtbl.fold (fun m c acc -> (m, c) :: acc) const_pools []
      |> List.sort Stdlib.compare
    in
    let c_total = List.fold_left (fun acc (_, c) -> acc + c) 0 const_pool_list in
    let plain_size = d - c_total in
    (* Query groups: for each variable of q, the mask of its relations. *)
    let q_groups =
      match query with
      | None -> []
      | Some q ->
        List.map
          (fun v ->
            List.fold_left
              (fun m (a : Cq.atom) ->
                if Array.exists (String.equal v) a.Cq.vars then
                  m lor (1 lsl rel_index a.Cq.rel)
                else m)
              0 q)
          (Cq.variables q)
    in
    let full = (1 lsl l) - 1 in
    let all_classes_list = List.init full (fun i -> i + 1) in
    (* An atom bit is producible when some null class or some constant
       coverage contains it; targets needing unproducible bits (beyond the
       value's own base coverage) are dead. *)
    let producible_by_nulls r =
      List.exists (fun m -> m land (1 lsl r) <> 0) class_masks
    in
    (* Enumeration variables. *)
    let vars =
      let plain_vars =
        if plain_size <= 0 then []
        else
          List.filter_map
            (fun t ->
              let feas =
                List.for_all
                  (fun r -> t land (1 lsl r) = 0 || producible_by_nulls r)
                  (List.init l Fun.id)
              in
              if feas then Some { pool = Plain; target = t } else None)
            all_classes_list
      in
      let const_vars =
        List.concat_map
          (fun (base, _) ->
            List.filter_map
              (fun t ->
                if t land base = base && t <> base then begin
                  let feas =
                    List.for_all
                      (fun r ->
                        t land (1 lsl r) = 0
                        || base land (1 lsl r) <> 0
                        || producible_by_nulls r)
                      (List.init l Fun.id)
                  in
                  if feas then Some { pool = Const_pool base; target = t }
                  else None
                end
                else None)
              all_classes_list)
          const_pool_list
      in
      Array.of_list (plain_vars @ const_vars)
    in
    let nvars = Array.length vars in
    (* Checks at a leaf of the enumeration. *)
    let external_sat g =
      List.exists (fun m -> m land g = g) !external_covers
    in
    let check assignment =
      let m_of i = assignment.(i) in
      let rem base =
        let used = ref 0 in
        Array.iteri
          (fun i _ -> if vars.(i).pool = Const_pool base then used := !used + m_of i)
          vars;
        (match List.assoc_opt base const_pool_list with
        | Some c -> c
        | None -> 0)
        - !used
      in
      let value_with_class_superset g =
        (* Some value present with class containing g: counted value or
           remaining base constant. *)
        let counted =
          List.exists
            (fun i -> m_of i > 0 && vars.(i).target land g = g)
            (List.init nvars Fun.id)
        in
        counted
        || List.exists
             (fun (base, _) -> base land g = g && rem base > 0)
             const_pool_list
      in
      (* (a) the query must hold in the completion. *)
      let query_ok =
        List.for_all
          (fun g -> external_sat g || value_with_class_superset g)
          q_groups
      in
      query_ok
      && begin
           (* (b) every null class needs a home. *)
           List.for_all2
             (fun nc supply -> supply = 0 || value_with_class_superset nc)
             class_masks supplies0
         end
      && begin
           (* (c) coverage feasibility. *)
           let types =
             List.filter_map
               (fun i ->
                 if m_of i = 0 then None
                 else begin
                   let base =
                     match vars.(i).pool with Plain -> 0 | Const_pool b -> b
                   in
                   let missing = vars.(i).target land lnot base in
                   Some
                     {
                       count = m_of i;
                       covers =
                         minimal_covers ~classes:class_masks
                           ~target:vars.(i).target ~missing;
                     }
                 end)
               (List.init nvars Fun.id)
           in
           covers_feasible (Array.of_list types) supplies0_arr
         end
    in
    (* Enumerate assignments with pool-capacity and total-null bounds,
       accumulating the product of binomials (a multinomial per pool). *)
    let total = ref Nat.zero in
    let assignment = Array.make nvars 0 in
    let pool_remaining = Hashtbl.create 8 in
    let pool_key = function Plain -> -1 | Const_pool b -> b in
    Hashtbl.replace pool_remaining (-1) (max plain_size 0);
    List.iter (fun (b, c) -> Hashtbl.replace pool_remaining b c) const_pool_list;
    let rec enumerate i used_nulls ways =
      if i = nvars then begin
        if check assignment then total := Nat.add !total ways
      end else begin
        let key = pool_key vars.(i).pool in
        let available = Hashtbl.find pool_remaining key in
        let max_m = min available (total_nulls - used_nulls) in
        for m = 0 to max_m do
          assignment.(i) <- m;
          Hashtbl.replace pool_remaining key (available - m);
          enumerate (i + 1) (used_nulls + m)
            (Nat.mul ways (Combinat.binomial available m));
          Hashtbl.replace pool_remaining key available
        done;
        assignment.(i) <- 0
      end
    in
    enumerate 0 0 Nat.one;
    !total
  end

let uniform_unary ?query db =
  let dom =
    match Idb.domain_spec db with
    | Idb.Uniform dom -> dom
    | Idb.Nonuniform _ ->
      invalid_arg "Count_comp.uniform_unary: database is not uniform"
  in
  let dom_set = Sset.of_list dom in
  uniform_core ?query ~d:(List.length dom) ~in_dom:(fun c -> Sset.mem c dom_set)
    db

let uniform_symbolic ?query facts ~domain_size =
  if domain_size < 1 then
    invalid_arg "Count_comp.uniform_symbolic: domain_size must be positive";
  (* Placeholder domain; every table constant counts as external. *)
  let db = Idb.make facts (Idb.Uniform [ "\xc2\xa7sym" ]) in
  uniform_core ?query ~d:domain_size ~in_dom:(fun _ -> false) db

(* ------------------------------------------------------------------ *)
(* Dispatcher.                                                         *)
(* ------------------------------------------------------------------ *)

let applicable query db =
  Idb.is_uniform db
  && List.for_all
       (fun (f : Idb.fact) -> Array.length f.Idb.args = 1)
       (Idb.facts db)
  &&
  match query with
  | None -> true
  | Some q ->
    List.for_all (fun (a : Cq.atom) -> Array.length a.Cq.vars = 1) q

module Trace = Incdb_obs.Trace
module Log = Incdb_obs.Log

(* Dispatch routes carry the work the probe already did: the enumerator
   route keeps the materialized universe, the elimination route keeps
   the compiled sweep plan. *)
type route =
  | R_uniform
  | R_enum of Incdb_relational.Cdb.fact array
  | R_elim of Comp_kernel.plan
  | R_brute

(* Policy: the Theorem 4.6 closed enumeration when it applies; the
   candidate enumerator when the table is Codd and its universe fits the
   cap (it wins on small universes: no plan, no state interning); then
   the elimination kernel whenever it can compile a plan — in particular
   on every feasible non-Codd instance, which previously went straight
   to brute force; brute force as the last resort.  [Force] requires the
   kernel — it overrides every other arm, the closed form included, and
   makes plan failures loud instead of falling back; [Off] restores the
   pre-kernel policy.  The probe grounds at most [max_candidates + 1]
   facts (early exit) and returns the materialized work so counting does
   not repeat it. *)
let dispatch_route ?(max_candidates = Comp_candidates.default_max_candidates)
    ~comp_elim ?comp_width_bound query db =
  Trace.with_span "count_comp.pattern_match" (fun () ->
      if comp_elim <> Comp_kernel.Force && applicable query db then R_uniform
      else begin
        let plan_query = Option.map (fun q -> Query.Bcq q) query in
        let try_elim fallback =
          match
            Comp_kernel.plan ?query:plan_query ?width_bound:comp_width_bound db
          with
          | Ok p -> R_elim p
          | Error i -> fallback i
        in
        match comp_elim with
        | Comp_kernel.Force ->
          try_elim (fun i -> raise (Comp_kernel.Infeasible i))
        | (Comp_kernel.Auto | Comp_kernel.Off) as c -> (
          let enum =
            if Idb.is_codd db then
              Comp_candidates.universe_within db ~limit:max_candidates
            else None
          in
          match enum with
          | Some u -> R_enum u
          | None ->
            if c = Comp_kernel.Auto then try_elim (fun _ -> R_brute)
            else R_brute)
      end)

(* Shared back half of [count]/[count_all]: run the routed engine, with
   the elimination arm falling back to brute force if the DP outgrows
   its state budget mid-run under [Auto] (mirrors the #Val kernel's
   conditioning fallback). *)
let run_route ?brute_limit ?max_candidates ~jobs ?mask ~comp_elim
    ?comp_max_cells ?comp_max_states ?(comp_cache = true) ?comp_memos
    ?comp_spill_dir query db route =
  let brute () =
    Trace.with_span "count_comp.completion_dedup" (fun () ->
        match query with
        | Some q ->
          Incdb_par.Brute_par.count_completions ?limit:brute_limit ~jobs
            (Query.Bcq q) db
        | None ->
          Incdb_par.Brute_par.count_all_completions ?limit:brute_limit ~jobs db)
  in
  match route with
  | R_uniform ->
    ( Uniform_unary,
      Trace.with_span "count_comp.uniform_unary" (fun () ->
          uniform_unary ?query db) )
  | R_enum universe ->
    ( Candidate_enumeration,
      Trace.with_span "count_comp.candidate_enumeration" (fun () ->
          Comp_candidates.count
            ?query:(Option.map (fun q -> Query.Bcq q) query)
            ?max_candidates ~jobs ?mask ~universe db) )
  | R_elim plan -> (
    match
      Trace.with_span "count_comp.lineage_elimination" (fun () ->
          Comp_kernel.run ?max_states:comp_max_states ?max_cells:comp_max_cells
            ~cache:comp_cache ?memos:comp_memos ?spill_dir:comp_spill_dir ~jobs
            plan)
    with
    | n -> (Lineage_elimination, n)
    | exception Comp_kernel.Infeasible _ when comp_elim <> Comp_kernel.Force ->
      (Brute_force, brute ()))
  | R_brute -> (Brute_force, brute ())

let count ?brute_limit ?max_candidates ?(jobs = 1) ?mask
    ?(comp_elim = Comp_kernel.Auto) ?comp_width_bound ?comp_max_cells
    ?comp_max_states ?comp_cache ?comp_memos ?comp_spill_dir q db =
  Trace.with_span "count_comp.count" (fun () ->
      let route =
        dispatch_route ?max_candidates ~comp_elim ?comp_width_bound (Some q) db
      in
      let algo, n =
        run_route ?brute_limit ?max_candidates ~jobs ?mask ~comp_elim
          ?comp_max_cells ?comp_max_states ?comp_cache ?comp_memos
          ?comp_spill_dir (Some q) db route
      in
      Log.debugf "count_comp: %s -> %s" (Cq.to_string q)
        (algorithm_to_string algo);
      (algo, n))

let count_all ?brute_limit ?max_candidates ?(jobs = 1) ?mask
    ?(comp_elim = Comp_kernel.Auto) ?comp_width_bound ?comp_max_cells
    ?comp_max_states ?comp_cache ?comp_memos ?comp_spill_dir db =
  Trace.with_span "count_comp.count" (fun () ->
      let route =
        dispatch_route ?max_candidates ~comp_elim ?comp_width_bound None db
      in
      let algo, n =
        run_route ?brute_limit ?max_candidates ~jobs ?mask ~comp_elim
          ?comp_max_cells ?comp_max_states ?comp_cache ?comp_memos
          ?comp_spill_dir None db route
      in
      Log.debugf "count_comp: <all completions> -> %s"
        (algorithm_to_string algo);
      (algo, n))
