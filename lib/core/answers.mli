(** Counting support for non-Boolean queries — the Section 8 future-work
    direction, connecting the paper's counting problems to Libkin's best
    answers (Section 7).

    For a CQ with free variables, each candidate answer tuple [a] has a
    {e support}: the set of valuations [ν] with [a ∈ q(ν(D))].  Its size
    is exactly [#Val(q[a/x])]; a tuple is a {e better} answer than another
    when its support set contains the other's, and a {e best answer} when
    no tuple is strictly better (Libkin 2018).  Unlike best answers, the
    support sizes distinguish valuations from completions — the phenomenon
    this paper isolates. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_relational

type support = { tuple : string list; count : Nat.t }

(** [answer_tuples q ~free db] is the set of answers of [q] with free
    variables [free] over a complete database: the projections of the
    homomorphisms to [free], deduplicated and sorted.
    @raise Invalid_argument if some name in [free] is not a variable of
    [q]. *)
val answer_tuples : Cq.t -> free:string list -> Cdb.t -> string list list

(** [supports q ~free db] computes the support size of every tuple that is
    an answer in at least one world, sorted by decreasing support (ties by
    tuple).  Enumerates valuations.
    @raise Invalid_argument beyond the enumeration [limit]. *)
val supports : ?limit:int -> Cq.t -> free:string list -> Idb.t -> support list

(** [best_answers q ~free db] is the set of best answers: tuples whose
    support set is maximal under inclusion. *)
val best_answers :
  ?limit:int -> Cq.t -> free:string list -> Idb.t -> string list list

(** [certain_answers q ~free db] are the tuples answered in {e every}
    world — the classical notion the paper's counting problems refine. *)
val certain_answers :
  ?limit:int -> Cq.t -> free:string list -> Idb.t -> string list list
