(** Exact counting of satisfying valuations — the tractable sides of the
    #Val dichotomies (first two columns of Table 1).

    Three polynomial-time algorithms are provided, one per tractable cell:

    - {!nonuniform_naive} (Theorem 3.6): when every variable of [q] occurs
      exactly once, every valuation satisfies [q] as soon as each relation
      of [q] is non-empty, so the answer is the product of domain sizes.
    - {!codd_nonuniform} (Theorem 3.7): when no two atoms share a variable
      and the table is Codd, the count factorizes over atoms, with a
      per-tuple inclusion–exclusion within each relation.
    - {!uniform_naive} (Theorem 3.9 / Proposition A.14): when [q] avoids
      [R(x,x)], [R(x) ∧ S(x,y) ∧ T(y)] and [R(x,y) ∧ S(x,y)], the query
      decomposes into basic singletons (Lemma A.11), single-occurrence
      variables factor out (Lemma A.12), and each term of the Lemma A.13
      inclusion–exclusion is computed by a dynamic program over domain
      values whose state is the vector of unassigned nulls per occurrence
      class — the executable form of the paper's nested block sums.

    {!count} dispatches on the query shape; hard instances go to the
    {!Val_kernel} lineage variable-elimination kernel, with brute force
    (under an enumeration limit) only when the kernel's compiled event
    set would be too large. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

(** Which algorithm answered (reported by {!count}). *)
type algorithm =
  | Product_of_domains  (** Theorem 3.6 *)
  | Codd_per_atom  (** Theorem 3.7 *)
  | Uniform_block_dp  (** Theorem 3.9 *)
  | Lineage_elimination
      (** the {!Val_kernel} bucket-elimination / conditioning counter over
          compiled Karp–Luby events; handles every hard-pattern BCQ and
          every union / inequality / negation query whose event set fits
          the kernel's limit *)
  | Brute_force

val algorithm_to_string : algorithm -> string

(** @raise Invalid_argument if some variable of [q] occurs twice. *)
val nonuniform_naive : Cq.t -> Idb.t -> Nat.t

(** @raise Invalid_argument if two atoms of [q] share a variable, or if the
    table is not Codd. *)
val codd_nonuniform : Cq.t -> Idb.t -> Nat.t

(** @raise Invalid_argument if [q] contains one of the three uniform hard
    patterns, or if the database is not uniform. *)
val uniform_naive : Cq.t -> Idb.t -> Nat.t

(** [uniform_symbolic q facts ~domain_size] computes [#Val^u(q)] for the
    naïve table [facts] over a {e symbolic} uniform domain of
    [domain_size] fresh values (every constant of the table is treated as
    lying outside the domain).  Same tractable query shapes as
    {!uniform_naive}, but the dynamic program over domain values is
    replaced by exponentiation of the value-transition matrix, so the cost
    is [O(S^3 log d)] for a state space [S] independent of [d]: exact
    counting with domains of size 10^9 and beyond.
    @raise Invalid_argument on a hard query shape or [domain_size < 1]. *)
val uniform_symbolic : Cq.t -> Idb.fact list -> domain_size:int -> Nat.t

(** [uniform_weighted q db ~weight] is the {e probability} that a random
    valuation satisfies [q], when every null draws independently from the
    shared uniform domain under the distribution [weight] (which must sum
    to 1 over the domain).  This is the weighted generalization of the
    Theorem 3.9 dynamic program — nulls stay interchangeable because the
    distribution is shared — bridging the paper's counting setting to
    probabilistic databases (Section 7): with uniform weights it equals
    [#Val / total].
    @raise Invalid_argument on hard query shapes, non-uniform databases,
    or a distribution not summing to 1. *)
val uniform_weighted :
  Cq.t -> Incdb_incomplete.Idb.t -> weight:(string -> Qnum.t) -> Qnum.t

(** [count ?brute_limit ?val_width_bound ?val_max_events ?jobs q db] picks
    the matching tractable algorithm for [(q, db)] — or, on the hard
    shapes, the {!Val_kernel} lineage-elimination kernel (with
    [val_width_bound] as its induced-width bound and [val_max_events] as
    its event cap) — and reports which one ran.  Brute force remains the
    fallback when the kernel declines ([Val_kernel.Too_many_events]).
    [jobs] (default 1: the sequential path; 0: auto-detect) parallelizes
    the kernel's conditioning branches and the brute-force fallback's
    shards; counts are bit-identical at every job count.  [val_order]
    selects the kernel's elimination-order heuristic,
    [val_cache_entries] bounds its cross-branch subproblem cache
    ([0] disables it) and [val_cache] substitutes a caller-owned cache
    that survives the call (see {!Val_kernel.type-cache} — the incdbd
    warm-reuse hook), [val_max_cells] caps one in-memory message table,
    [val_spill]/[val_spill_dir] control the kernel's spill-to-disk
    policy for oversized tables, and [val_spill_budget_bytes] bounds
    this call's total spill traffic (the budget is per call, so a
    persistent server gets per-request spill accounting for free); see
    {!Val_kernel.count}.
    @raise Idb.Too_many_valuations if brute force is needed but the
    instance exceeds [brute_limit] valuations. *)
val count :
  ?brute_limit:int ->
  ?val_width_bound:int ->
  ?val_max_events:int ->
  ?val_max_cells:int ->
  ?val_order:Val_kernel.order ->
  ?val_cache_entries:int ->
  ?val_cache:Val_kernel.cache ->
  ?val_spill:Val_kernel.spill ->
  ?val_spill_dir:string ->
  ?val_spill_budget_bytes:int ->
  ?jobs:int ->
  Cq.t ->
  Idb.t ->
  algorithm * Nat.t

(** [count_query ?brute_limit ?val_width_bound ?val_max_events ?jobs q db]
    extends {!count} to the full query language: single BCQs route
    through {!count}; unions, inequalities and negations go through the
    {!Val_kernel} (which handles [Not] by complementing the avoidance
    count) with brute-force enumeration as the over-limit fallback;
    opaque [Semantic] queries always enumerate. *)
val count_query :
  ?brute_limit:int ->
  ?val_width_bound:int ->
  ?val_max_events:int ->
  ?val_max_cells:int ->
  ?val_order:Val_kernel.order ->
  ?val_cache_entries:int ->
  ?val_cache:Val_kernel.cache ->
  ?val_spill:Val_kernel.spill ->
  ?val_spill_dir:string ->
  ?val_spill_budget_bytes:int ->
  ?jobs:int ->
  Query.t ->
  Idb.t ->
  algorithm * Nat.t
