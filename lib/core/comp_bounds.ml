open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

type bounds = { lower : Nat.t; upper : Nat.t }

module Cdb_set = Set.Make (struct
  type t = Incdb_relational.Cdb.t

  let compare = Incdb_relational.Cdb.compare
end)

let random_valuation st db =
  List.map
    (fun n ->
      let dom = Array.of_list (Idb.domain_of db n) in
      (n, dom.(Random.State.int st (Array.length dom))))
    (Idb.nulls db)

(* Deterministic sweep valuations: assign every null its i-th domain
   value (wrapping); cheap extra coverage for the witness set. *)
let sweep_valuation db i =
  List.map
    (fun n ->
      let dom = Array.of_list (Idb.domain_of db n) in
      (n, dom.(i mod Array.length dom)))
    (Idb.nulls db)

let lower_bound ~seed ~samples q db =
  let st = Random.State.make [| seed |] in
  let witnessed = ref Cdb_set.empty in
  let consider v =
    let c = Idb.apply db v in
    if Cq.eval q c then witnessed := Cdb_set.add c !witnessed
  in
  let max_dom =
    List.fold_left
      (fun acc n -> max acc (List.length (Idb.domain_of db n)))
      1 (Idb.nulls db)
  in
  for i = 0 to max_dom - 1 do
    consider (sweep_valuation db i)
  done;
  for _ = 1 to samples do
    consider (random_valuation st db)
  done;
  Nat.of_int (Cdb_set.cardinal !witnessed)

let upper_bound q db =
  (* #Comp <= #Val; bound #Val by the exact tractable count when the
     dispatcher has a polynomial algorithm, by the union-of-events size
     otherwise (sum of event sizes over-counts overlaps, soundly). *)
  let query = Query.Bcq q in
  let tractable_val =
    let all_single =
      List.for_all (fun v -> Cq.occurrences q v = 1) (Cq.variables q)
    in
    if all_single then Some (Count_val.nonuniform_naive q db)
    else if
      Idb.is_codd db
      && List.for_all
           (fun (a : Cq.atom) ->
             List.for_all
               (fun (b : Cq.atom) -> a == b || Conngraph.shared_vars a b = [])
               q)
           q
    then Some (Count_val.codd_nonuniform q db)
    else if
      Idb.is_uniform db
      && not (Pattern.has_rxx q || Pattern.has_rx_sxy_ty q || Pattern.has_rxy_sxy q)
    then Some (Count_val.uniform_naive q db)
    else None
  in
  match tractable_val with
  | Some v -> v
  | None ->
    let events = Incdb_approx.Karp_luby.events query db in
    let union_bound =
      Nat.sum (List.map (fun e -> e.Incdb_approx.Karp_luby.size) events)
    in
    Nat.min union_bound (Idb.total_valuations db)

let bounds ~seed ~samples q db =
  let lower = lower_bound ~seed ~samples q db in
  let upper = Nat.max lower (upper_bound q db) in
  { lower; upper }

let exact_within ~seed ~samples q db =
  let b = bounds ~seed ~samples q db in
  if Nat.equal b.lower b.upper then Some b.lower else None
