open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

let domain_k k = List.init k (fun i -> string_of_int (i + 1))

let with_domain facts k =
  if k < 1 then invalid_arg "Zero_one: k must be at least 1";
  Idb.make facts (Idb.Uniform (domain_k k))

let mu q facts ~k =
  let db = with_domain facts k in
  let _, sat = Count_val.count q db in
  let total = Idb.total_valuations db in
  if Nat.is_zero total then Qnum.one
  else Qnum.make (Zint.of_nat sat) (Zint.of_nat total)

let mu_completions q facts ~k =
  let db = with_domain facts k in
  let sat =
    Incdb_incomplete.Brute.count_completions (Query.Bcq q) db
  in
  let all = Incdb_incomplete.Brute.count_all_completions db in
  if Nat.is_zero all then Qnum.one
  else Qnum.make (Zint.of_nat sat) (Zint.of_nat all)

let mu_symbolic q facts ~k =
  if k < 1 then invalid_arg "Zero_one.mu_symbolic: k must be at least 1";
  let sat = Count_val.uniform_symbolic q facts ~domain_size:k in
  let nulls =
    List.sort_uniq String.compare
      (List.concat_map
         (fun (f : Idb.fact) ->
           Array.to_list f.Idb.args
           |> List.filter_map (function
                | Term.Null n -> Some n
                | Term.Const _ -> None))
         facts)
  in
  let total = Combinat.power k (List.length nulls) in
  if Nat.is_zero total then Qnum.one
  else Qnum.make (Zint.of_nat sat) (Zint.of_nat total)

let scan q facts ~kmax =
  List.init kmax (fun i ->
      let k = i + 1 in
      (k, mu q facts ~k))

let float_of_mu r =
  let num = Qnum.num r and den = Qnum.den r in
  Nat.to_float (Zint.abs num) /. Nat.to_float den
  *. float_of_int (if Zint.sign num >= 0 then 1 else -1)
