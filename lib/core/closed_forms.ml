open Incdb_bignum

(* Equation (3): check(i) = 0 if i > n, 0 if i = 0 and n >= 1, else 1. *)
let comp_unary_no_constants ~d ~n =
  let acc = ref Nat.zero in
  for i = 0 to d do
    let check = if i > n then false else if i = 0 && n >= 1 then false else true in
    if check then acc := Nat.add !acc (Combinat.binomial d i)
  done;
  !acc

(* Equation (4): check(i) = 0 if i > n, 0 if i = 0 && c = 0 && n >= 1. *)
let comp_unary ~d ~n ~c =
  let acc = ref Nat.zero in
  for i = 0 to d - c do
    let check =
      if i > n then false
      else if i = 0 && c = 0 && n >= 1 then false
      else true
    in
    if check then acc := Nat.add !acc (Combinat.binomial (d - c) i)
  done;
  !acc

(* Equation (5): the triple sum over class sizes.  NOTE: the paper's
   displayed check function (B.6.3) rejects (iR = 0, nR >= 1, nRS = 0),
   but that contradicts its own Claim B.15 (condition (1) tests the
   emptiness of C_R ∪ C_RS ∪ I_RS, i.e. of the target sets, not of the
   shared-null count): with nRS = 0 an R-null and an S-null can still
   meet on a common value, realizing I_RS and absorbing the R-nulls.
   We implement the Claim B.15 conditions, which agree with brute force;
   the discrepancy is recorded in DESIGN.md. *)
let comp_two_sum ~d ~nr ~ns ~nrs ~require_joint =
  let acc = ref Nat.zero in
  for ir = 0 to d do
    for is_ = 0 to d - ir do
      for irs = 0 to d - ir - is_ do
        let check =
          (not (ir > nr))
          && (not (is_ > ns))
          && (not (nrs >= 1 && irs = 0))
          && (not (ir = 0 && nr >= 1 && irs = 0))
          && (not (is_ = 0 && ns >= 1 && irs = 0))
          && irs <= min (nrs + nr - ir) (nrs + ns - is_)
          && ((not require_joint) || irs >= 1)
        in
        if check then
          acc :=
            Nat.add !acc
              (Nat.mul
                 (Combinat.binomial d ir)
                 (Nat.mul
                    (Combinat.binomial (d - ir) is_)
                    (Combinat.binomial (d - ir - is_) irs)))
      done
    done
  done;
  !acc

let comp_two_unary_no_constants ~d ~nr ~ns ~nrs =
  comp_two_sum ~d ~nr ~ns ~nrs ~require_joint:false

let comp_two_unary_joint ~d ~nr ~ns ~nrs =
  comp_two_sum ~d ~nr ~ns ~nrs ~require_joint:true

let example_3_10_unsatisfying ~d ~nr ~cr ~ns ~cs =
  let m = d - cr - cs in
  let acc = ref Nat.zero in
  for m' = 0 to max m 0 do
    for r' = 0 to cr do
      acc :=
        Nat.add !acc
          (Nat.mul
             (Nat.mul (Combinat.binomial m m') (Combinat.binomial cr r'))
             (Nat.mul
                (Combinat.surj nr (m' + r'))
                (Combinat.power (d - cr - m') ns)))
    done
  done;
  !acc

let example_3_10 ~d ~nr ~cr ~ns ~cs =
  Nat.sub
    (Combinat.power d (nr + ns))
    (example_3_10_unsatisfying ~d ~nr ~cr ~ns ~cs)
