(** The role of fixed tables and growing domains (Section 8's closing
    question about fixed domains, and a lens on the open #Val^u_Cd case).

    For a {e fixed} naïve table with [N] nulls over a symbolic uniform
    domain [{1..d}] (table constants external), the count
    [d ↦ #Val(q)(T, {1..d})] is a polynomial in [d] of degree at most
    [N]: valuations are classified by the partition they induce on the
    nulls together with which block takes which "role", and each
    classification contributes a falling-factorial of [d].  The same
    holds for queries where no polynomial-time algorithm is known — so
    one can {e compute} the counting function of a hard query on a fixed
    table by interpolation from [N+1] brute-forced data points, then
    evaluate it at astronomical domain sizes.

    This module implements that pipeline.  It is a research tool, not a
    poly-time algorithm (the interpolation needs brute force at small
    [d], and the table is fixed); but it makes the structure behind the
    paper's fixed-domain discussion tangible, open cases included. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

(** A polynomial in [d] with rational coefficients, low degree first. *)
type t = Qnum.t array

(** [interpolate ?limit q facts] brute-forces [#Val^u(q)] on the table at
    [d = 1 .. N+1] and interpolates the unique degree-[≤ N] polynomial
    (table constants are treated as external to the domain, matching
    {!Count_val.uniform_symbolic}).
    @raise Invalid_argument when brute force exceeds [limit]. *)
val interpolate : ?limit:int -> Cq.t -> Idb.fact list -> t

(** [eval p ~d] evaluates at a concrete domain size; the result of an
    interpolated counting polynomial is always a non-negative integer.
    @raise Failure if it is not (which would falsify the polynomial
    structure). *)
val eval : t -> d:int -> Nat.t

val degree : t -> int
val to_string : t -> string
