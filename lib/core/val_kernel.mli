(** Exact [#Val] by variable elimination over compiled lineage.

    The Karp–Luby event construction (Proposition 5.2) already
    characterizes the satisfying valuations of a monotone query exactly: a
    valuation satisfies [q] iff it extends some event, and
    {!Incdb_approx.Karp_luby.encode_fixes} turns each event into a
    {!Incdb_cq.Lineage} slot clause — a conjunction of [(null, value)]
    literals over machine ints.  Counting satisfying valuations is then
    weighted model counting of a DNF over the nulls, and this kernel does
    it the knowledge-compilation way instead of enumerating the
    [∏ |dom(N_i)|] valuation space:

    - count the {e avoiding} assignments (extending no clause) and
      subtract from the total, flipping for an odd number of outer [Not]s;
    - split the minimal clause set into connected components of the
      null-interaction graph (components multiply);
    - per component, shrink every null's domain to its mentioned values
      plus one weighted "other" bucket, pick a min-degree elimination
      order, and run dynamic programming over the induced
      {!Treedec} tree decomposition — one bag-local join per clique
      node, one upward message per parent separator, marginalizing each
      null with [Nat] weights at its topmost bag;
    - when a message table would exceed [max_cells], stream it through
      a disk-backed {!Factor_store} instead of giving up (the dpdb
      idiom), as long as the estimated IO fits the spill budget;
    - when the simulated induced width exceeds the bound — or spilling
      is off or out of budget — fall back to {e conditioning}: branch
      on the highest-degree null's mentioned values plus the aggregated
      rest, simplify, and recurse on the now smaller (often
      disconnected) residual problems, so worst-case cost degrades
      gracefully instead of cliff-ing.

    Branches of an outermost conditioning split run on
    {!Incdb_par.Pool} when [jobs <> 1]; branch and component results are
    combined in a fixed order, so counts and metric totals are
    bit-identical at every job count.  Spans and the
    [val_kernel.{events_compiled,width,factors_merged,conditioning_splits,
    slots_eliminated}] counters record what the kernel did. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

(** The event set exceeded [max_events]: compiling the lineage would cost
    more than it saves, the caller should fall back to enumeration. *)
exception Too_many_events of { events : int; limit : int }

(** Default induced-width bound ([8]) above which a component is split by
    conditioning rather than eliminated. *)
val default_width_bound : int

(** Default cap ([4096]) on the number of compiled events. *)
val default_max_events : int

(** Default size bound ([65536] entries) of the cross-branch subproblem
    cache. *)
val default_cache_entries : int

(** Default in-memory cap ([2{^20}]) on the cells of one message table;
    larger tables spill (policy permitting) or force conditioning. *)
val default_max_cells : int

(** Default spill budget ([2{^30}] bytes ≈ 1 GiB) on the bytes one
    [count] call may stream through spilled tables. *)
val default_spill_budget_bytes : int

(** Elimination-order heuristic over the slot-interaction graph.
    [Min_degree] (the default) greedily eliminates the smallest-degree
    slot.  [Min_fill] greedily eliminates the slot whose neighborhood
    needs the fewest fill edges, simulates both heuristics, and keeps
    whichever order induces the smaller (width, cells) — so it is never
    worse than [Min_degree] on the instance at hand.  Both break ties on
    the smallest slot index; orders, counts and metrics are
    deterministic either way. *)
type order = Min_degree | Min_fill

val order_to_string : order -> string

(** When a component's message tables outgrow [max_cells]:

    - [Auto] (the default) — spill the oversized messages to disk as
      long as the component's induced width respects [width_bound] and
      the estimated stream fits what is left of the spill budget;
      condition otherwise.  In-bounds components never spill.
    - [Off] — the seed kernel's behavior: never touch disk, condition
      any component whose width or tables exceed the bounds.
    - [Force] — spill {e every} message of {e every} component,
      ignoring [width_bound] (only the spill budget gates admission).
      A testing and measurement mode: it exercises the disk backend on
      instances of any size and makes
      [val_kernel.spilled_factors]/[spill_bytes] deterministic targets
      for smoke assertions.

    Counts are bit-identical across all three modes. *)
type spill = Auto | Off | Force

val spill_to_string : spill -> string

(** {2 Caller-owned subproblem cache}

    By default every {!count} call creates (and drops) its own
    subproblem cache.  A long-lived process can instead own one cache
    and pass it to successive calls: entries key on
    {!Incdb_cq.Lineage.canonical_fixes} of the component plus its
    reduced-domain sizes — nothing database- or call-specific — so
    cross-call sharing is sound, and a repeat of the same query against
    the same database resolves its components entirely from cache.
    The table stops absorbing entries at its capacity (no eviction);
    counts are bit-identical with any cache, shared or fresh. *)

type cache

(** [cache_create entries] is an empty cache absorbing at most
    [entries] keys.  @raise Invalid_argument when [entries < 1]. *)
val cache_create : int -> cache

(** Drop every entry; the handle and its capacity stay valid. *)
val cache_clear : cache -> unit

(** Number of subproblem counts currently held. *)
val cache_length : cache -> int

(** [count ?width_bound ?max_events ?max_cells ?order ?cache_entries
    ?spill ?spill_dir ?spill_budget_bytes ?jobs q db] is
    [Some (#Val(q)(db))] for any query built from monotone parts and
    [Not] — [None] only for queries containing an opaque [Semantic]
    leaf.  [jobs] follows the {!Incdb_par.Pool} convention
    (1 = sequential, 0 = auto-detect); results are bit-identical at
    every job count, under either [order], and with the cache on or off.

    [cache_entries] bounds the cross-branch subproblem cache: component
    avoidance counts memoized on {!Incdb_cq.Lineage.canonical_fixes} of
    the component (slots and values renamed to dense ids, clauses
    sorted, paired with the per-slot domain sizes), shared across the
    conditioning recursion and the outermost parallel split — the
    isomorphic residual subproblems that K_{k,k}-style lineage
    regenerates once per branch are then solved once.  [0] disables the
    cache; the [val_kernel.cache_hits]/[..._misses] counters record the
    sharing.  [cache] (when given) overrides [cache_entries] with a
    caller-owned table that survives the call — see {!type-cache}.

    [max_cells] caps the in-memory cells of one message table (see
    {!spill} for what happens beyond it); [spill_dir] is where spilled
    tables live (default: the system temp directory — temp files are
    deleted before [count] returns, on every path including
    exceptions); [spill_budget_bytes] bounds the call's total spill
    traffic, shared across branches and pool domains.  The
    [val_kernel.bags] counter, [val_kernel.bag] flight-recorder spans
    and the [treedec.width] gauge record the DP's shape, and
    [val_kernel.spilled_factors]/[spill_bytes]/[spill_read_bytes] its
    disk traffic.
    @raise Too_many_events when more than [max_events] events compile.
    @raise Invalid_argument on a negative [width_bound], [max_events],
    [cache_entries] or [spill_budget_bytes], or a [max_cells] below 1. *)
val count :
  ?width_bound:int ->
  ?max_events:int ->
  ?max_cells:int ->
  ?order:order ->
  ?cache_entries:int ->
  ?cache:cache ->
  ?spill:spill ->
  ?spill_dir:string ->
  ?spill_budget_bytes:int ->
  ?jobs:int ->
  Query.t ->
  Idb.t ->
  Nat.t option
