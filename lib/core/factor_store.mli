(** Pluggable storage for the [#Val] kernel's factor tables.

    A factor is a table of {!Incdb_bignum.Nat} weights over the
    mixed-radix cells of a sorted slot scope ([scope.(0)] is the fastest
    digit, matching {!Val_kernel}'s historical layout).  The kernel's
    tree-decomposition DP produces them as upward separator messages;
    most fit comfortably in RAM, but a wide separator can exceed the
    in-memory cell cap — the dpdb lesson is that such a table should
    become a {e streaming} problem, not a hard failure.

    {!FACTOR_STORE} is the contract both backends implement:

    - {!Memory} — plain [Nat.t array]s, the historical representation;
    - {!Disk} — tables serialized to a temp file in fixed-size blocks of
      cells (so the kernel's block-sequential writes and block-local
      reads touch one block at a time), with byte/IO accounting through
      the [val_kernel.spilled_factors], [val_kernel.spill_bytes] and
      [val_kernel.spill_read_bytes] counters and temp-file cleanup
      guaranteed by {!FACTOR_STORE.abort}/{!FACTOR_STORE.release} (both
      idempotent, both safe mid-write — the kernel runs its DP under a
      [Fun.protect] that releases every live factor on any exception).

    {!t} is the kernel-facing sum of the two, so a single DP can mix
    in-memory and spilled messages factor by factor. *)

open Incdb_bignum

(** Table shape: sorted slot scope, per-slot (reduced) domain sizes,
    and the cell count [Array.fold_left ( * ) 1 sizes]. *)
type meta = { scope : int array; sizes : int array; cells : int }

(** [make_meta ~scope ~sizes] pairs the arrays with their cell count.
    @raise Invalid_argument on mismatched lengths or a non-positive
    size. *)
val make_meta : scope:int array -> sizes:int array -> meta

module type FACTOR_STORE = sig
  (** Backend name, for logs and trace args. *)
  val backend : string

  type writer
  type factor

  (** [create ?dir ?on_write m] opens a writer for a table of shape
      [m].  [dir] is where the {!Disk} backend places its temp file
      (default: the system temp directory); {!Memory} ignores it.
      [on_write] is invoked with the byte delta after every flushed
      block — the kernel uses it to enforce its spill budget, and an
      exception it raises propagates out of {!append}/{!finish} with
      the writer still abortable. *)
  val create : ?dir:string -> ?on_write:(int -> unit) -> meta -> writer

  (** Cells must be appended in index order, exactly [meta.cells] of
      them before {!finish}. *)
  val append : writer -> Nat.t -> unit

  (** @raise Invalid_argument if fewer than [meta.cells] cells were
      appended. *)
  val finish : writer -> factor

  (** Drop a writer mid-stream, deleting any temp file.  Idempotent;
      also safe after {!finish} (then a no-op). *)
  val abort : writer -> unit

  val meta : factor -> meta

  (** Bytes the factor occupies on disk ([0] for {!Memory}). *)
  val byte_size : factor -> int

  (** Random access by cell index.  The {!Disk} backend caches one
      decoded block; the kernel's enumeration order keeps consecutive
      reads block-local per child factor. *)
  val get : factor -> int -> Nat.t

  (** Free the table (delete the temp file).  Idempotent.  [get] after
      [release] raises [Invalid_argument]. *)
  val release : factor -> unit
end

module Memory : FACTOR_STORE
module Disk : FACTOR_STORE

(** Cells per serialized block of the {!Disk} backend (also the size of
    its single-block read cache). *)
val disk_block_cells : int

(** {2 Kernel-facing dispatch} *)

type t = In_memory of Memory.factor | On_disk of Disk.factor
type writer = W_memory of Memory.writer | W_disk of Disk.writer

(** [create ~spill ?dir ?on_write m] opens a {!Disk} writer when
    [spill] is true, a {!Memory} writer otherwise. *)
val create : spill:bool -> ?dir:string -> ?on_write:(int -> unit) -> meta -> writer

val append : writer -> Nat.t -> unit
val finish : writer -> t
val abort : writer -> unit
val meta : t -> meta
val get : t -> int -> Nat.t
val byte_size : t -> int
val release : t -> unit
val spilled : t -> bool
