type table_kind = Naive | Codd
type domain_kind = Non_uniform | Uniform
type problem = Valuations | Completions

type t = { table : table_kind; domain : domain_kind; problem : problem }

let all =
  let tables = [ Naive; Codd ] in
  let domains = [ Non_uniform; Uniform ] in
  let problems = [ Valuations; Completions ] in
  List.concat_map
    (fun problem ->
      List.concat_map
        (fun domain ->
          List.map (fun table -> { table; domain; problem }) tables)
        domains)
    problems

let to_string s =
  let base = match s.problem with Valuations -> "#Val" | Completions -> "#Comp" in
  let dom = match s.domain with Non_uniform -> "" | Uniform -> "^u" in
  let tbl = match s.table with Naive -> "" | Codd -> "_Cd" in
  base ^ dom ^ tbl

let pp fmt s = Format.pp_print_string fmt (to_string s)

let of_idb problem db =
  {
    problem;
    table = (if Incdb_incomplete.Idb.is_codd db then Codd else Naive);
    domain =
      (if Incdb_incomplete.Idb.is_uniform db then Uniform else Non_uniform);
  }
