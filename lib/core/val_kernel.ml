open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
module Trace = Incdb_obs.Trace
module Metrics = Incdb_obs.Metrics
module Events = Incdb_obs.Events
module Log = Incdb_obs.Log
module Iset = Set.Make (Int)

(* Hoisted flight-recorder args for the per-lookup cache instants: the
   cache probe is the kernel's hottest event site, and a literal list
   there would allocate even with observability disabled. *)
let cache_hit_args = [ ("cache", Events.Str "hit") ]
let cache_miss_args = [ ("cache", Events.Str "miss") ]

exception Too_many_events of { events : int; limit : int }

let () =
  Printexc.register_printer (function
    | Too_many_events { events; limit } ->
      Some
        (Printf.sprintf
           "Val_kernel.Too_many_events { events = %d; limit = %d }" events
           limit)
    | _ -> None)

let default_width_bound = 8
let default_max_events = 4096
let default_cache_entries = 1 lsl 16

type order = Min_degree | Min_fill

let order_to_string = function
  | Min_degree -> "min-degree"
  | Min_fill -> "min-fill"

(* Largest factor table the elimination is allowed to materialize; beyond
   this (or beyond the width bound) a component is split by conditioning
   instead, so memory stays bounded whatever the instance. *)
let max_factor_cells = 1 lsl 20

(* Registered eagerly so the kernel's activity always shows up in metric
   exports, at zero when it never ran. *)
let events_compiled = Metrics.counter "val_kernel.events_compiled"
let width_counter = Metrics.counter "val_kernel.width"
let factors_merged = Metrics.counter "val_kernel.factors_merged"
let conditioning_splits = Metrics.counter "val_kernel.conditioning_splits"
let slots_eliminated = Metrics.counter "val_kernel.slots_eliminated"
let cache_hits = Metrics.counter "val_kernel.cache_hits"
let cache_misses = Metrics.counter "val_kernel.cache_misses"

(* ------------------------------------------------------------------ *)
(* Reduced domains                                                     *)
(* ------------------------------------------------------------------ *)

(* Within one connected component of clauses, a slot's values split into
   the values some clause mentions (each its own reduced value) and one
   aggregated "other" value of weight [|dom| - |mentioned|]: the clauses
   cannot tell the unmentioned values apart, so the factor tables shrink
   from the domain size to the mention count plus one. *)
type cctx = {
  dom : int array;  (* per slot, its full domain size *)
  vals : (int, int array) Hashtbl.t;  (* per slot, sorted mentioned values *)
}

let mentioned_values clauses =
  let sets = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      Array.iter
        (fun (s, v) ->
          let cur = Option.value ~default:Iset.empty (Hashtbl.find_opt sets s) in
          Hashtbl.replace sets s (Iset.add v cur))
        c)
    clauses;
  let out = Hashtbl.create 16 in
  Hashtbl.iter
    (fun s vs -> Hashtbl.replace out s (Array.of_list (Iset.elements vs)))
    sets;
  out

let red_size ctx j =
  let m = Array.length (Hashtbl.find ctx.vals j) in
  if ctx.dom.(j) > m then m + 1 else m

(* Weight of reduced value [r] of slot [j]: mentioned values come first
   (weight 1 each), the trailing "other" bucket aggregates the rest. *)
let red_weight ctx j r =
  let m = Array.length (Hashtbl.find ctx.vals j) in
  if r < m then Nat.one else Nat.of_int (ctx.dom.(j) - m)

let red_index ctx j v =
  let vals = Hashtbl.find ctx.vals j in
  let rec go lo hi =
    if lo >= hi then invalid_arg "Val_kernel.red_index: unmentioned value"
    else
      let mid = (lo + hi) / 2 in
      if vals.(mid) = v then mid
      else if vals.(mid) < v then go (mid + 1) hi
      else go lo mid
  in
  go 0 (Array.length vals)

(* ------------------------------------------------------------------ *)
(* Factor tables                                                       *)
(* ------------------------------------------------------------------ *)

(* A factor: [Nat] weights over the reduced-value tuples of its (sorted)
   scope, in mixed radix with scope.(0) as the fastest digit. *)
type factor = { scope : int array; table : Nat.t array }

let scope_pos scope j =
  let rec go i = if scope.(i) = j then i else go (i + 1) in
  go 0

let factor_of_clause ctx c =
  let scope = Array.map fst c in
  let sizes = Array.map (red_size ctx) scope in
  let cells = Array.fold_left ( * ) 1 sizes in
  let table = Array.make cells Nat.one in
  let idx = ref 0 and stride = ref 1 in
  Array.iteri
    (fun k (slot, v) ->
      idx := !idx + (red_index ctx slot v * !stride);
      stride := !stride * sizes.(k))
    c;
  (* The clause excludes exactly the assignments extending it. *)
  table.(!idx) <- Nat.zero;
  { scope; table }

let multiply ctx = function
  | [ f ] -> f
  | fs ->
    let scope =
      Array.of_list
        (Iset.elements
           (List.fold_left
              (fun acc f ->
                Array.fold_left (fun a s -> Iset.add s a) acc f.scope)
              Iset.empty fs))
    in
    let k = Array.length scope in
    let sizes = Array.map (red_size ctx) scope in
    let cells = Array.fold_left ( * ) 1 sizes in
    (* Per factor, the stride each merged-scope digit contributes to its
       own table index (0 when the factor does not constrain the slot). *)
    let strides_for f =
      let s = Array.make k 0 in
      let stride = ref 1 in
      Array.iter
        (fun slot ->
          s.(scope_pos scope slot) <- !stride;
          stride := !stride * red_size ctx slot)
        f.scope;
      s
    in
    let tabs = List.map (fun f -> (f.table, strides_for f)) fs in
    let digits = Array.make k 0 in
    let table =
      Array.init cells (fun cell ->
          let c = ref cell in
          for i = 0 to k - 1 do
            digits.(i) <- !c mod sizes.(i);
            c := !c / sizes.(i)
          done;
          List.fold_left
            (fun acc (tab, str) ->
              if Nat.is_zero acc then acc
              else begin
                let idx = ref 0 in
                for i = 0 to k - 1 do
                  idx := !idx + (digits.(i) * str.(i))
                done;
                Nat.mul acc tab.(!idx)
              end)
            Nat.one tabs)
    in
    { scope; table }

let sum_out ctx j f =
  let sizes = Array.map (red_size ctx) f.scope in
  let pos = scope_pos f.scope j in
  let sj = sizes.(pos) in
  let stride = ref 1 in
  for i = 0 to pos - 1 do
    stride := !stride * sizes.(i)
  done;
  let stride = !stride in
  let out_scope =
    Array.of_list (List.filter (fun s -> s <> j) (Array.to_list f.scope))
  in
  let out_cells = Array.length f.table / sj in
  let out_table = Array.make (max 1 out_cells) Nat.zero in
  let weights = Array.init sj (fun r -> red_weight ctx j r) in
  Array.iteri
    (fun idx v ->
      if not (Nat.is_zero v) then begin
        let digit = idx / stride mod sj in
        let low = idx mod stride in
        let high = idx / (stride * sj) in
        let out = low + (high * stride) in
        out_table.(out) <- Nat.add out_table.(out) (Nat.mul weights.(digit) v)
      end)
    f.table;
  { scope = out_scope; table = out_table }

(* ------------------------------------------------------------------ *)
(* Elimination order                                                   *)
(* ------------------------------------------------------------------ *)

(* Saturating cell-count product, so simulating a wide cluster cannot
   overflow the machine int (anything past the cap is "too big" anyway). *)
let cells_mul a b = if a > max_factor_cells / b then max_factor_cells + 1 else a * b

(* Greedy elimination-order simulation over the slot-interaction graph
   (slots adjacent when co-fixed by a clause): returns the order, the
   induced width (max cluster size) and the largest factor-table cell
   count the elimination would materialize.  [pick] chooses the next
   slot to eliminate; both heuristics break ties on the smallest slot
   index (the [Iset] fold visits slots ascending and [<=] keeps the
   first minimum), so each order — and with it every count and metric —
   is deterministic. *)
let simulate_order pick ctx slots clauses =
  let adj = Hashtbl.create 16 in
  Array.iter (fun j -> Hashtbl.replace adj j Iset.empty) slots;
  Array.iter
    (fun c ->
      Array.iter
        (fun (a, _) ->
          Array.iter
            (fun (b, _) ->
              if a <> b then
                Hashtbl.replace adj a (Iset.add b (Hashtbl.find adj a)))
            c)
        c)
    clauses;
  let remaining = ref (Iset.of_list (Array.to_list slots)) in
  let order = ref [] in
  let width = ref 0 in
  let max_cells = ref 1 in
  while not (Iset.is_empty !remaining) do
    let j = pick !remaining adj in
    let nbrs = Hashtbl.find adj j in
    let cluster = Iset.add j nbrs in
    width := max !width (Iset.cardinal cluster);
    max_cells :=
      max !max_cells
        (Iset.fold (fun s acc -> cells_mul acc (red_size ctx s)) cluster 1);
    Iset.iter
      (fun a ->
        Hashtbl.replace adj a
          (Iset.remove j
             (Iset.union (Hashtbl.find adj a) (Iset.remove a nbrs))))
      nbrs;
    Hashtbl.remove adj j;
    remaining := Iset.remove j !remaining;
    order := j :: !order
  done;
  (List.rev !order, !width, !max_cells)

let pick_min_degree remaining adj =
  Iset.fold
    (fun j acc ->
      let dj = Iset.cardinal (Hashtbl.find adj j) in
      match acc with
      | Some (_, d) when d <= dj -> acc
      | _ -> Some (j, dj))
    remaining None
  |> Option.get |> fst

(* Min-fill: eliminate the slot whose neighborhood needs the fewest new
   edges to become a clique (degree is the secondary criterion). *)
let pick_min_fill remaining adj =
  Iset.fold
    (fun j acc ->
      let nbrs = Hashtbl.find adj j in
      let deg = Iset.cardinal nbrs in
      let fill =
        Iset.fold
          (fun a acc ->
            let adj_a = Hashtbl.find adj a in
            Iset.fold
              (fun b acc ->
                if b > a && not (Iset.mem b adj_a) then acc + 1 else acc)
              nbrs acc)
          nbrs 0
      in
      match acc with
      | Some (_, cost) when cost <= (fill, deg) -> acc
      | _ -> Some (j, (fill, deg)))
    remaining None
  |> Option.get |> fst

(* [Min_fill] simulates both heuristics and keeps whichever induces the
   smaller (width, cells) — min-fill usually wins on dense interaction
   graphs but can lose on trees, and the point of the flag is a
   width-minimizing order, so the mode is never worse than min-degree.
   Ties keep min-degree, preserving the historical order. *)
let elimination_order ?(heuristic = Min_degree) ctx slots clauses =
  let min_degree () = simulate_order pick_min_degree ctx slots clauses in
  match heuristic with
  | Min_degree -> min_degree ()
  | Min_fill ->
    let (_, wd, cd) as by_degree = min_degree () in
    let (_, wf, cf) as by_fill =
      simulate_order pick_min_fill ctx slots clauses
    in
    if (wf, cf) < (wd, cd) then by_fill else by_degree

(* Bucket elimination of one component along [order]. *)
let eliminate ctx order clauses =
  let factors =
    ref (Array.to_list (Array.map (factor_of_clause ctx) clauses))
  in
  List.iter
    (fun j ->
      let touching, rest =
        List.partition (fun f -> Array.mem j f.scope) !factors
      in
      (* Every slot of the component is fixed by some clause and scopes
         only merge, so a slot stays in scope until eliminated. *)
      assert (touching <> []);
      Metrics.incr factors_merged ~by:(List.length touching);
      Metrics.incr slots_eliminated;
      let merged = multiply ctx touching in
      factors := rest @ [ sum_out ctx j merged ])
    order;
  List.fold_left (fun acc f -> Nat.mul acc f.table.(0)) Nat.one !factors

(* ------------------------------------------------------------------ *)
(* Connected components                                                *)
(* ------------------------------------------------------------------ *)

(* Split the clauses into connected components of the slot-interaction
   graph, each with its sorted slot set, ordered by smallest slot: the
   components share no slot, so their avoidance counts multiply. *)
let components clauses =
  let parent = Hashtbl.create 16 in
  let rec find x =
    let p = Hashtbl.find parent x in
    if p = x then x
    else begin
      let r = find p in
      Hashtbl.replace parent x r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent (max ra rb) (min ra rb)
  in
  Array.iter
    (fun c ->
      Array.iter
        (fun (s, _) ->
          if not (Hashtbl.mem parent s) then Hashtbl.replace parent s s)
        c;
      Array.iter (fun (s, _) -> union (fst c.(0)) s) c)
    clauses;
  let groups = Hashtbl.create 8 in
  Array.iter
    (fun c ->
      let r = find (fst c.(0)) in
      let cls, old_slots =
        Option.value ~default:([], Iset.empty) (Hashtbl.find_opt groups r)
      in
      let slots =
        Array.fold_left (fun acc (s, _) -> Iset.add s acc) old_slots c
      in
      Hashtbl.replace groups r (c :: cls, slots))
    clauses;
  Hashtbl.fold (fun r (cls, slots) acc -> (r, cls, slots) :: acc) groups []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  |> List.map (fun (_, cls, slots) ->
         ( Array.of_list (List.rev cls),
           Array.of_list (Iset.elements slots) ))

(* ------------------------------------------------------------------ *)
(* Cross-branch subproblem cache                                       *)
(* ------------------------------------------------------------------ *)

(* Component avoidance counts keyed on {!Lineage.canonical_fixes} of the
   component's clauses (canonical clause array + per-canonical-slot
   domain sizes): the conditioning fallback re-solves structurally
   identical residual components once per branch — in K_{k,k} lineage
   every mentioned-value branch collapses to isomorphic singleton
   residues, and whole dense sub-biclique components recur across
   branches — so one shared table across the recursion (including the
   outermost parallel split) collapses that duplication.

   Sharing across pool domains is a mutex around the table only: lookups
   and insertions are brief, the solving between them runs unlocked.
   Two branches may race to solve the same key; both compute the same
   exact [Nat], so the last [replace] is harmless and counts stay
   bit-identical at every job count (only the hit/miss split can vary
   with the schedule).  The table stops absorbing new entries at
   [capacity] — no eviction, so memory is bounded and what was cached
   early (the widest-shared shallow subproblems) stays cached. *)
type cache = {
  table : ((int * int) array array * int array, Nat.t) Hashtbl.t;
  lock : Mutex.t;
  capacity : int;
}

let cache_create capacity =
  { table = Hashtbl.create 256; lock = Mutex.create (); capacity }

let cache_find cache key =
  Mutex.protect cache.lock (fun () -> Hashtbl.find_opt cache.table key)

let cache_add cache key n =
  Mutex.protect cache.lock (fun () ->
      if Hashtbl.length cache.table < cache.capacity then
        Hashtbl.replace cache.table key n)

(* Per-call solver configuration, threaded through the recursion. *)
type scfg = { width_bound : int; heuristic : order; cache : cache option }

(* ------------------------------------------------------------------ *)
(* The solver: #assignments avoiding every clause                      *)
(* ------------------------------------------------------------------ *)

(* [solve cfg dom clauses live] counts the assignments of the slots
   [live] that extend no clause ([clauses] is minimal and mentions only
   live slots).  Slots fixed by no clause contribute their full domain
   size; each connected component is either eliminated (induced width
   within bounds) or split by conditioning on its highest-degree slot.
   The conditioning branches of the outermost split run on the pool when
   [jobs <> 1]; branches and components are always combined in a fixed
   order, so totals are bit-identical at every job count. *)
let rec solve cfg ~jobs dom clauses live =
  if Array.exists (fun c -> Array.length c = 0) clauses then Nat.zero
  else begin
    let constrained = Iset.of_list (Array.to_list (Lineage.fixes_slots clauses)) in
    let free_w =
      Array.fold_left
        (fun acc j ->
          if Iset.mem j constrained then acc
          else Nat.mul acc (Nat.of_int dom.(j)))
        Nat.one live
    in
    if Array.length clauses = 0 then free_w
    else
      List.fold_left
        (fun acc (cls, slots) ->
          if Nat.is_zero acc then acc
          else Nat.mul acc (solve_component cfg ~jobs dom cls slots))
        free_w (components clauses)
  end

(* Cache wrapper: canonicalize the component, consult the shared table,
   only solve on a miss.  The canonical key is what makes branches
   share: residues that differ only in slot names or in which concrete
   values survived the split collapse to one entry. *)
and solve_component cfg ~jobs dom clauses slots =
  if Incdb_obs.Runtime.enabled () then
    Events.instant "val_kernel.component"
      ~args:
        [
          ("slots", Events.Int (Array.length slots));
          ("clauses", Events.Int (Array.length clauses));
        ];
  match cfg.cache with
  | None -> solve_component_uncached cfg ~jobs dom clauses slots
  | Some cache ->
    let key =
      Trace.with_span "val_kernel.canonicalize" (fun () ->
          Lineage.canonical_fixes clauses ~dom:(fun j -> dom.(j)))
    in
    (match cache_find cache key with
    | Some n ->
      Metrics.incr cache_hits;
      Events.instant "val_kernel.cache" ~args:cache_hit_args;
      n
    | None ->
      Metrics.incr cache_misses;
      Events.instant "val_kernel.cache" ~args:cache_miss_args;
      let n = solve_component_uncached cfg ~jobs dom clauses slots in
      cache_add cache key n;
      n)

and solve_component_uncached cfg ~jobs dom clauses slots =
  let ctx = { dom; vals = mentioned_values clauses } in
  let order, width, cells =
    elimination_order ~heuristic:cfg.heuristic ctx slots clauses
  in
  if width <= cfg.width_bound && cells <= max_factor_cells then begin
    Metrics.incr width_counter ~by:width;
    Events.with_span "val_kernel.eliminate_component"
      ~args:
        [
          ("width", Events.Int width);
          ("cells", Events.Int cells);
          ("slots", Events.Int (Array.length slots));
          ("clauses", Events.Int (Array.length clauses));
        ]
      (fun () -> eliminate ctx order clauses)
  end
  else begin
    (* Condition on the highest-degree slot (ties: smallest index): one
       branch per mentioned value plus one aggregated "other" branch,
       each a strictly smaller subproblem re-minimized and re-split. *)
    Metrics.incr conditioning_splits;
    let degree j =
      let nbrs =
        Array.fold_left
          (fun acc c ->
            if Array.exists (fun (s, _) -> s = j) c then
              Array.fold_left (fun a (s, _) -> Iset.add s a) acc c
            else acc)
          Iset.empty clauses
      in
      Iset.cardinal (Iset.remove j nbrs)
    in
    let j =
      Array.fold_left
        (fun acc s ->
          match acc with
          | Some (_, d) when d >= degree s -> acc
          | _ -> Some (s, degree s))
        None slots
      |> Option.get |> fst
    in
    let mvals = Hashtbl.find ctx.vals j in
    let m = Array.length mvals in
    let dj = dom.(j) in
    let rest =
      Array.of_list (List.filter (fun s -> s <> j) (Array.to_list slots))
    in
    let branch v () =
      match Lineage.condition_fixes clauses ~slot:j ~value:v with
      | None -> Nat.zero
      | Some cls -> solve cfg ~jobs:1 dom (Lineage.minimal_fixes cls) rest
    in
    let other () =
      solve cfg ~jobs:1 dom (Lineage.drop_slot_fixes clauses ~slot:j) rest
    in
    let tasks =
      Array.to_list (Array.map branch mvals)
      @ (if dj > m then [ other ] else [])
    in
    let results =
      Events.with_span "val_kernel.condition"
        ~args:
          [
            ("slot", Events.Int j);
            ("branches", Events.Int (List.length tasks));
            ("width", Events.Int width);
          ]
        (fun () ->
          if jobs <> 1 then Incdb_par.Pool.run ~jobs tasks
          else List.map (fun t -> t ()) tasks)
    in
    let acc = ref Nat.zero in
    List.iteri
      (fun i r ->
        let w = if i < m then Nat.one else Nat.of_int (dj - m) in
        acc := Nat.add !acc (Nat.mul w r))
      results;
    !acc
  end

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let rec strip_negations negated = function
  | Query.Not q -> strip_negations (not negated) q
  | q -> (negated, q)

let count ?(width_bound = default_width_bound)
    ?(max_events = default_max_events) ?(order = Min_degree)
    ?(cache_entries = default_cache_entries) ?(jobs = 1) q db =
  if width_bound < 0 then
    invalid_arg "Val_kernel.count: negative width bound";
  if max_events < 0 then
    invalid_arg "Val_kernel.count: negative event limit";
  if cache_entries < 0 then
    invalid_arg "Val_kernel.count: negative cache size";
  match strip_negations false q with
  | _, Query.Semantic _ -> None
  | negated, core ->
    Trace.with_span "val_kernel.count" (fun () ->
        let evs =
          Trace.with_span "val_kernel.compile_events" (fun () ->
              Array.of_list (Incdb_approx.Karp_luby.events core db))
        in
        let n = Array.length evs in
        if n > max_events then
          raise (Too_many_events { events = n; limit = max_events });
        Metrics.incr events_compiled ~by:n;
        Events.instant "val_kernel.compiled" ~args:[ ("events", Events.Int n) ];
        let clauses =
          Lineage.minimal_fixes (Incdb_approx.Karp_luby.encode_fixes evs db)
        in
        let dom =
          Array.of_list
            (List.map
               (fun nm -> List.length (Idb.domain_of db nm))
               (Idb.nulls db))
        in
        let live = Array.init (Array.length dom) Fun.id in
        Log.debugf
          "val_kernel: %d events, %d minimal clauses over %d nulls (%s order)"
          n (Array.length clauses) (Array.length dom) (order_to_string order);
        let cfg =
          {
            width_bound;
            heuristic = order;
            (* One fresh table per call: entries key on canonical clause
               structure plus domain sizes, so nothing ties them to this
               database — but a per-call table keeps memory bounded by
               the query and needs no invalidation story. *)
            cache =
              (if cache_entries = 0 then None
               else Some (cache_create cache_entries));
          }
        in
        let avoid =
          Trace.with_span "val_kernel.eliminate" (fun () ->
              solve cfg ~jobs dom clauses live)
        in
        let total = Idb.total_valuations db in
        Some (if negated then avoid else Nat.sub total avoid))
