open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
module Trace = Incdb_obs.Trace
module Metrics = Incdb_obs.Metrics
module Events = Incdb_obs.Events
module Log = Incdb_obs.Log
module Iset = Set.Make (Int)

(* Hoisted flight-recorder args for the per-lookup cache instants: the
   cache probe is the kernel's hottest event site, and a literal list
   there would allocate even with observability disabled. *)
let cache_hit_args = [ ("cache", Events.Str "hit") ]
let cache_miss_args = [ ("cache", Events.Str "miss") ]

exception Too_many_events of { events : int; limit : int }

let () =
  Printexc.register_printer (function
    | Too_many_events { events; limit } ->
      Some
        (Printf.sprintf
           "Val_kernel.Too_many_events { events = %d; limit = %d }" events
           limit)
    | _ -> None)

let default_width_bound = 8
let default_max_events = 4096
let default_cache_entries = 1 lsl 16

(* Largest factor table the DP materializes in memory; a separator
   message beyond this spills to disk (policy permitting) instead of
   forcing the component into conditioning. *)
let default_max_cells = 1 lsl 20

(* Ceiling on the bytes a DP may stream through spilled tables before
   the component falls back to conditioning. *)
let default_spill_budget_bytes = 1 lsl 30

type order = Min_degree | Min_fill

let order_to_string = function
  | Min_degree -> "min-degree"
  | Min_fill -> "min-fill"

type spill = Auto | Off | Force

let spill_to_string = function
  | Auto -> "auto"
  | Off -> "off"
  | Force -> "force"

(* Registered eagerly so the kernel's activity always shows up in metric
   exports, at zero when it never ran. *)
let events_compiled = Metrics.counter "val_kernel.events_compiled"
let width_counter = Metrics.counter "val_kernel.width"
let factors_merged = Metrics.counter "val_kernel.factors_merged"
let conditioning_splits = Metrics.counter "val_kernel.conditioning_splits"
let slots_eliminated = Metrics.counter "val_kernel.slots_eliminated"
let cache_hits = Metrics.counter "val_kernel.cache_hits"
let cache_misses = Metrics.counter "val_kernel.cache_misses"
let bags_processed = Metrics.counter "val_kernel.bags"
let treedec_width_gauge = Metrics.gauge "treedec.width"

(* ------------------------------------------------------------------ *)
(* Reduced domains                                                     *)
(* ------------------------------------------------------------------ *)

(* Within one connected component of clauses, a slot's values split into
   the values some clause mentions (each its own reduced value) and one
   aggregated "other" value of weight [|dom| - |mentioned|]: the clauses
   cannot tell the unmentioned values apart, so the factor tables shrink
   from the domain size to the mention count plus one. *)
type cctx = {
  dom : int array;  (* per slot, its full domain size *)
  vals : (int, int array) Hashtbl.t;  (* per slot, sorted mentioned values *)
}

let mentioned_values clauses =
  let sets = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      Array.iter
        (fun (s, v) ->
          let cur = Option.value ~default:Iset.empty (Hashtbl.find_opt sets s) in
          Hashtbl.replace sets s (Iset.add v cur))
        c)
    clauses;
  let out = Hashtbl.create 16 in
  Hashtbl.iter
    (fun s vs -> Hashtbl.replace out s (Array.of_list (Iset.elements vs)))
    sets;
  out

let red_size ctx j =
  let m = Array.length (Hashtbl.find ctx.vals j) in
  if ctx.dom.(j) > m then m + 1 else m

(* Weight of reduced value [r] of slot [j]: mentioned values come first
   (weight 1 each), the trailing "other" bucket aggregates the rest. *)
let red_weight ctx j r =
  let m = Array.length (Hashtbl.find ctx.vals j) in
  if r < m then Nat.one else Nat.of_int (ctx.dom.(j) - m)

let red_index ctx j v =
  let vals = Hashtbl.find ctx.vals j in
  let rec go lo hi =
    if lo >= hi then invalid_arg "Val_kernel.red_index: unmentioned value"
    else
      let mid = (lo + hi) / 2 in
      if vals.(mid) = v then mid
      else if vals.(mid) < v then go (mid + 1) hi
      else go lo mid
  in
  go 0 (Array.length vals)

(* ------------------------------------------------------------------ *)
(* Elimination order                                                   *)
(* ------------------------------------------------------------------ *)

(* Saturating cell-count product, so simulating a wide cluster cannot
   overflow the machine int (anything past the cap is "too big" anyway). *)
let cells_mul ~cap a b = if a > cap / b then cap + 1 else a * b

(* Slot-interaction adjacency (slots adjacent when co-fixed by a
   clause), shared by both heuristic simulations — values are immutable
   [Iset]s, so a [Hashtbl.copy] is a safe snapshot. *)
let build_adjacency slots clauses =
  let adj = Hashtbl.create 16 in
  Array.iter (fun j -> Hashtbl.replace adj j Iset.empty) slots;
  Array.iter
    (fun c ->
      Array.iter
        (fun (a, _) ->
          Array.iter
            (fun (b, _) ->
              if a <> b then
                Hashtbl.replace adj a (Iset.add b (Hashtbl.find adj a)))
            c)
        c)
    clauses;
  adj

(* Greedy elimination-order simulation: returns the order, the induced
   width (max cluster size) and the largest factor-table cell count the
   elimination would materialize.  [pick] chooses the next slot to
   eliminate; both heuristics break ties on the smallest slot index (the
   [Iset] fold visits slots ascending and [<=] keeps the first minimum),
   so each order — and with it every count and metric — is
   deterministic.  Consumes [adj]. *)
let simulate_order ~max_cells pick ctx adj slots =
  let remaining = ref (Iset.of_list (Array.to_list slots)) in
  let order = ref [] in
  let width = ref 0 in
  let cells = ref 1 in
  while not (Iset.is_empty !remaining) do
    let j = pick !remaining adj in
    let nbrs = Hashtbl.find adj j in
    let cluster = Iset.add j nbrs in
    width := max !width (Iset.cardinal cluster);
    cells :=
      max !cells
        (Iset.fold
           (fun s acc -> cells_mul ~cap:max_cells acc (red_size ctx s))
           cluster 1);
    Iset.iter
      (fun a ->
        Hashtbl.replace adj a
          (Iset.remove j
             (Iset.union (Hashtbl.find adj a) (Iset.remove a nbrs))))
      nbrs;
    Hashtbl.remove adj j;
    remaining := Iset.remove j !remaining;
    order := j :: !order
  done;
  (List.rev !order, !width, !cells)

let pick_min_degree remaining adj =
  Iset.fold
    (fun j acc ->
      let dj = Iset.cardinal (Hashtbl.find adj j) in
      match acc with
      | Some (_, d) when d <= dj -> acc
      | _ -> Some (j, dj))
    remaining None
  |> Option.get |> fst

(* Min-fill: eliminate the slot whose neighborhood needs the fewest new
   edges to become a clique (degree is the secondary criterion). *)
let pick_min_fill remaining adj =
  Iset.fold
    (fun j acc ->
      let nbrs = Hashtbl.find adj j in
      let deg = Iset.cardinal nbrs in
      let fill =
        Iset.fold
          (fun a acc ->
            let adj_a = Hashtbl.find adj a in
            Iset.fold
              (fun b acc ->
                if b > a && not (Iset.mem b adj_a) then acc + 1 else acc)
              nbrs acc)
          nbrs 0
      in
      match acc with
      | Some (_, cost) when cost <= (fill, deg) -> acc
      | _ -> Some (j, (fill, deg)))
    remaining None
  |> Option.get |> fst

(* [Min_fill] simulates both heuristics and keeps whichever induces the
   smaller (width, cells) — min-fill usually wins on dense interaction
   graphs but can lose on trees, and the point of the flag is a
   width-minimizing order, so the mode is never worse than min-degree.
   Ties keep min-degree, preserving the historical order.

   Components of at most two slots have a forced order (ascending, both
   heuristics agree), so they skip the simulations — and the larger
   components build the interaction adjacency once and snapshot it
   between the two runs instead of reconstructing it. *)
let elimination_order ?(heuristic = Min_degree) ~max_cells ctx slots clauses =
  let n = Array.length slots in
  if n <= 2 then begin
    let adjacent =
      n = 2
      && Array.exists
           (fun c ->
             Array.exists (fun (s, _) -> s = slots.(0)) c
             && Array.exists (fun (s, _) -> s = slots.(1)) c)
           clauses
    in
    let width = if n = 0 then 0 else if adjacent then 2 else 1 in
    let cells =
      if n = 0 then 1
      else if adjacent then
        cells_mul ~cap:max_cells (red_size ctx slots.(0))
          (red_size ctx slots.(1))
      else Array.fold_left (fun acc s -> max acc (red_size ctx s)) 1 slots
    in
    (Array.to_list slots, width, cells)
  end
  else begin
    let base = build_adjacency slots clauses in
    let run pick adj = simulate_order ~max_cells pick ctx adj slots in
    match heuristic with
    | Min_degree -> run pick_min_degree base
    | Min_fill ->
      let (_, wd, cd) as by_degree = run pick_min_degree (Hashtbl.copy base) in
      let (_, wf, cf) as by_fill = run pick_min_fill base in
      if (wf, cf) < (wd, cd) then by_fill else by_degree
  end

(* ------------------------------------------------------------------ *)
(* Tree-decomposition DP with a pluggable factor store                 *)
(* ------------------------------------------------------------------ *)

(* Raised by the spill-budget hook mid-write; the DP's cleanup deletes
   every temp file and the component falls back to conditioning. *)
exception Spill_budget_exhausted

(* Where the DP keeps its separator messages. *)
type store_mode = All_memory | Spill_large | Spill_all

let store_mode_to_string = function
  | All_memory -> "memory"
  | Spill_large -> "spill-large"
  | Spill_all -> "spill-all"

(* Rough serialized footprint of one table cell, for budget admission
   only (most cells are one-digit Nats). *)
let est_cell_bytes = 16

let sat_add a b =
  let cap = max_int / 2 in
  if a > cap - b then cap else a + b

(* Bytes the DP would stream through its bag joins (every bag cell is
   visited once), the admission-time proxy for both work and disk. *)
let estimate_stream_bytes ctx td =
  let cell_cap = max_int / (2 * est_cell_bytes) in
  Array.fold_left
    (fun acc bag ->
      let cells =
        Array.fold_left
          (fun c s -> cells_mul ~cap:cell_cap c (red_size ctx s))
          1 bag
      in
      sat_add acc (cells * est_cell_bytes))
    0 td.Treedec.bags

(* Does the assignment in [digits] (indexed by bag position) extend some
   clause of [cls]?  Clauses are (bag position, reduced digit) pairs.
   Plain recursive helpers so the per-cell hot path allocates nothing. *)
let clause_matches digits cl =
  let n = Array.length cl in
  let rec go t =
    t >= n
    ||
    let p, r = cl.(t) in
    digits.(p) = r && go (t + 1)
  in
  go 0

let any_clause digits cls =
  let n = Array.length cls in
  let rec go t = t < n && (clause_matches digits cls.(t) || go (t + 1)) in
  go 0

(* Index into a child message for the current bag assignment. *)
let kid_index digits poss strides =
  let idx = ref 0 in
  for t = 0 to Array.length poss - 1 do
    idx := !idx + (digits.(poss.(t)) * strides.(t))
  done;
  !idx

(* Advance the digits at bag positions [poss] (fastest first) one step,
   wrapping at the end. *)
let advance digits sizes poss =
  let n = Array.length poss in
  let rec go t =
    if t < n then begin
      let p = poss.(t) in
      if digits.(p) + 1 < sizes.(p) then digits.(p) <- digits.(p) + 1
      else begin
        digits.(p) <- 0;
        go (t + 1)
      end
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Connected components                                                *)
(* ------------------------------------------------------------------ *)

(* Split the clauses into connected components of the slot-interaction
   graph, each with its sorted slot set, ordered by smallest slot: the
   components share no slot, so their avoidance counts multiply. *)
let components clauses =
  let parent = Hashtbl.create 16 in
  let rec find x =
    let p = Hashtbl.find parent x in
    if p = x then x
    else begin
      let r = find p in
      Hashtbl.replace parent x r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent (max ra rb) (min ra rb)
  in
  Array.iter
    (fun c ->
      Array.iter
        (fun (s, _) ->
          if not (Hashtbl.mem parent s) then Hashtbl.replace parent s s)
        c;
      Array.iter (fun (s, _) -> union (fst c.(0)) s) c)
    clauses;
  let groups = Hashtbl.create 8 in
  Array.iter
    (fun c ->
      let r = find (fst c.(0)) in
      let cls, old_slots =
        Option.value ~default:([], Iset.empty) (Hashtbl.find_opt groups r)
      in
      let slots =
        Array.fold_left (fun acc (s, _) -> Iset.add s acc) old_slots c
      in
      Hashtbl.replace groups r (c :: cls, slots))
    clauses;
  Hashtbl.fold (fun r (cls, slots) acc -> (r, cls, slots) :: acc) groups []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  |> List.map (fun (_, cls, slots) ->
         ( Array.of_list (List.rev cls),
           Array.of_list (Iset.elements slots) ))

(* ------------------------------------------------------------------ *)
(* Cross-branch subproblem cache                                       *)
(* ------------------------------------------------------------------ *)

(* Component avoidance counts keyed on {!Lineage.canonical_fixes} of the
   component's clauses (canonical clause array + per-canonical-slot
   domain sizes): the conditioning fallback re-solves structurally
   identical residual components once per branch — in K_{k,k} lineage
   every mentioned-value branch collapses to isomorphic singleton
   residues, and whole dense sub-biclique components recur across
   branches — so one shared table across the recursion (including the
   outermost parallel split) collapses that duplication.

   Sharing across pool domains is a mutex around the table only: lookups
   and insertions are brief, the solving between them runs unlocked.
   Two branches may race to solve the same key; both compute the same
   exact [Nat], so the last [replace] is harmless and counts stay
   bit-identical at every job count (only the hit/miss split can vary
   with the schedule).  The table stops absorbing new entries at
   [capacity] — no eviction, so memory is bounded and what was cached
   early (the widest-shared shallow subproblems) stays cached. *)
type cache = {
  table : ((int * int) array array * int array, Nat.t) Hashtbl.t;
  lock : Mutex.t;
  capacity : int;
}

let cache_create capacity =
  if capacity < 1 then
    invalid_arg "Val_kernel.cache_create: capacity must be at least 1";
  { table = Hashtbl.create 256; lock = Mutex.create (); capacity }

(* Entries key on canonical clause structure plus reduced-domain sizes —
   nothing ties them to one database — so a caller-owned cache can
   outlive a single [count] call and keep subproblem counts warm across
   requests (the incdbd reuse path).  Clearing keeps the capacity and
   the handle valid. *)
let cache_clear cache =
  Mutex.protect cache.lock (fun () -> Hashtbl.reset cache.table)

let cache_length cache =
  Mutex.protect cache.lock (fun () -> Hashtbl.length cache.table)

let cache_find cache key =
  Mutex.protect cache.lock (fun () -> Hashtbl.find_opt cache.table key)

let cache_add cache key n =
  Mutex.protect cache.lock (fun () ->
      if Hashtbl.length cache.table < cache.capacity then
        Hashtbl.replace cache.table key n)

(* Per-call solver configuration, threaded through the recursion.
   [spill_spent] is shared across every branch and pool domain, so the
   budget bounds the call's total spill traffic, not per-component. *)
type scfg = {
  width_bound : int;
  max_cells : int;
  heuristic : order;
  cache : cache option;
  spill : spill;
  spill_dir : string option;
  spill_budget : int;
  spill_spent : int Atomic.t;
}

(* ------------------------------------------------------------------ *)
(* Bag-local joins over the decomposition                              *)
(* ------------------------------------------------------------------ *)

(* DP over the rooted clique tree: per bag in postorder, stream the
   upward message over the parent separator — for each separator cell
   (outer loop, so writes are sequential) sum over the bag's remaining
   digits the product of the child messages, a zero indicator for any
   clause joined at this bag, and the reduced weights of the summed-out
   slots.  Each slot is marginalized exactly once (at its topmost bag,
   by the running intersection property), so the root's single cell is
   the component's avoidance count.

   Nothing but separator messages is ever materialized: the bag table
   itself exists one cell at a time, which is what lets an oversized
   message become a disk stream (see {!Factor_store}) instead of a
   conditioning fallback.  Every factor and any open writer is released
   by the [Fun.protect] below, so temp files never outlive the call,
   exceptional or not. *)
let eliminate_treedec cfg ctx mode td clauses =
  let m = Treedec.bag_count td in
  let children = Array.make m [] in
  Array.iteri
    (fun i p -> if p >= 0 then children.(p) <- i :: children.(p))
    td.Treedec.parent;
  Array.iteri (fun i l -> children.(i) <- List.rev l) children;
  (* Each clause joins at the first postorder bag covering its slots —
     any covering bag is sound, a fixed one keeps runs deterministic. *)
  let bag_clauses = Array.make m [] in
  Array.iter
    (fun c ->
      let rec find k =
        let b = td.Treedec.postorder.(k) in
        let bag = td.Treedec.bags.(b) in
        if Array.for_all (fun (s, _) -> Array.mem s bag) c then b
        else find (k + 1)
      in
      let b = find 0 in
      bag_clauses.(b) <- c :: bag_clauses.(b))
    clauses;
  Array.iteri (fun i l -> bag_clauses.(i) <- List.rev l) bag_clauses;
  let msgs : Factor_store.t option array = Array.make m None in
  let live = ref [] in
  let open_writer = ref None in
  let budget_hook delta =
    let before = Atomic.fetch_and_add cfg.spill_spent delta in
    if before + delta > cfg.spill_budget then raise Spill_budget_exhausted
  in
  let process i =
    let bag = td.Treedec.bags.(i) in
    let k = Array.length bag in
    let sizes = Array.map (red_size ctx) bag in
    let pos_of s =
      let rec go lo hi =
        let mid = (lo + hi) / 2 in
        if bag.(mid) = s then mid
        else if bag.(mid) < s then go (mid + 1) hi
        else go lo mid
      in
      go 0 k
    in
    let sep = Treedec.separator td i in
    let sep_pos = Array.map pos_of sep in
    let sep_sizes = Array.map (fun p -> sizes.(p)) sep_pos in
    let sep_cells = Array.fold_left ( * ) 1 sep_sizes in
    let in_sep = Array.make k false in
    Array.iter (fun p -> in_sep.(p) <- true) sep_pos;
    let kids =
      List.map
        (fun j -> match msgs.(j) with Some f -> f | None -> assert false)
        children.(i)
    in
    (* Per child: bag position and stride of each of its scope slots. *)
    let kid_access =
      Array.of_list
        (List.map
           (fun f ->
             let fm = Factor_store.meta f in
             let n = Array.length fm.Factor_store.scope in
             let poss = Array.make n 0 and strides = Array.make n 0 in
             let stride = ref 1 in
             Array.iteri
               (fun t s ->
                 poss.(t) <- pos_of s;
                 strides.(t) <- !stride;
                 stride := !stride * fm.Factor_store.sizes.(t))
               fm.Factor_store.scope;
             (f, poss, strides))
           kids)
    in
    (* Summed-out positions, fastest first.  When a spilled child is in
       play, the largest one's low-stride slots go fastest so its block
       reads stay near-sequential; otherwise ascending. *)
    let inner =
      let all = ref [] in
      for p = k - 1 downto 0 do
        if not in_sep.(p) then all := p :: !all
      done;
      let all = !all in
      let big =
        Array.fold_left
          (fun acc (f, poss, _) ->
            if not (Factor_store.spilled f) then acc
            else
              let b = Factor_store.byte_size f in
              match acc with
              | Some (_, b') when b' >= b -> acc
              | _ -> Some (poss, b))
          None kid_access
      in
      match big with
      | None -> Array.of_list all
      | Some (poss, _) ->
        let hot =
          List.filter (fun p -> not in_sep.(p)) (Array.to_list poss)
        in
        let cold = List.filter (fun p -> not (List.mem p hot)) all in
        Array.of_list (hot @ cold)
    in
    let inner_cells = Array.fold_left (fun c p -> c * sizes.(p)) 1 inner in
    (* A summed-out slot's weight differs from 1 only on its trailing
       "other" digit; precompute that one weight per slot. *)
    let other_w =
      Array.map
        (fun p ->
          let s = bag.(p) in
          let mv = Array.length (Hashtbl.find ctx.vals s) in
          if ctx.dom.(s) > mv then Some (red_weight ctx s mv) else None)
        inner
    in
    let cls =
      Array.of_list
        (List.map
           (fun c ->
             Array.map (fun (s, v) -> (pos_of s, red_index ctx s v)) c)
           bag_clauses.(i))
    in
    let spill_this =
      match mode with
      | All_memory -> false
      | Spill_all -> true
      | Spill_large -> sep_cells > cfg.max_cells
    in
    let run () =
      let w =
        Factor_store.create ~spill:spill_this ?dir:cfg.spill_dir
          ~on_write:budget_hook
          (Factor_store.make_meta ~scope:sep ~sizes:sep_sizes)
      in
      open_writer := Some w;
      let digits = Array.make k 0 in
      for _out = 0 to sep_cells - 1 do
        Array.iter (fun p -> digits.(p) <- 0) inner;
        let acc = ref Nat.zero in
        for _in = 0 to inner_cells - 1 do
          if not (any_clause digits cls) then begin
            let v = ref Nat.one in
            let t = ref 0 in
            let nk = Array.length kid_access in
            while (not (Nat.is_zero !v)) && !t < nk do
              let f, poss, strides = kid_access.(!t) in
              v := Nat.mul !v (Factor_store.get f (kid_index digits poss strides));
              incr t
            done;
            if not (Nat.is_zero !v) then begin
              for t = 0 to Array.length inner - 1 do
                match other_w.(t) with
                | Some ow when digits.(inner.(t)) = sizes.(inner.(t)) - 1 ->
                  v := Nat.mul !v ow
                | _ -> ()
              done;
              acc := Nat.add !acc !v
            end
          end;
          advance digits sizes inner
        done;
        Factor_store.append w !acc;
        advance digits sizes sep_pos
      done;
      let f = Factor_store.finish w in
      open_writer := None;
      live := f :: !live;
      msgs.(i) <- Some f;
      (* A consumed child's table is dead; reclaim its file now. *)
      List.iter Factor_store.release kids;
      Metrics.incr bags_processed;
      Metrics.incr factors_merged ~by:(List.length kids + Array.length cls);
      Metrics.incr slots_eliminated ~by:(k - Array.length sep)
    in
    Events.with_span "val_kernel.bag"
      ~args:
        [
          ("bag", Events.Int i);
          ("slots", Events.Int k);
          ("cells", Events.Int (sep_cells * inner_cells));
          ("sep_cells", Events.Int sep_cells);
          ("spilled", Events.Int (if spill_this then 1 else 0));
        ]
      run
  in
  Fun.protect
    ~finally:(fun () ->
      (match !open_writer with
      | Some w ->
        open_writer := None;
        Factor_store.abort w
      | None -> ());
      List.iter Factor_store.release !live)
    (fun () ->
      Array.iter process td.Treedec.postorder;
      match msgs.(td.Treedec.postorder.(m - 1)) with
      | Some f -> Factor_store.get f 0
      | None -> assert false)

(* ------------------------------------------------------------------ *)
(* The solver: #assignments avoiding every clause                      *)
(* ------------------------------------------------------------------ *)

(* [solve cfg dom clauses live] counts the assignments of the slots
   [live] that extend no clause ([clauses] is minimal and mentions only
   live slots).  Slots fixed by no clause contribute their full domain
   size; each connected component is either eliminated by the
   tree-decomposition DP (induced width within bounds, message tables in
   memory or spilled per policy) or split by conditioning on its
   highest-degree slot.  The conditioning branches of the outermost
   split run on the pool when [jobs <> 1]; branches and components are
   always combined in a fixed order, so totals are bit-identical at
   every job count. *)
let rec solve cfg ~jobs dom clauses live =
  if Array.exists (fun c -> Array.length c = 0) clauses then Nat.zero
  else begin
    let constrained = Iset.of_list (Array.to_list (Lineage.fixes_slots clauses)) in
    let free_w =
      Array.fold_left
        (fun acc j ->
          if Iset.mem j constrained then acc
          else Nat.mul acc (Nat.of_int dom.(j)))
        Nat.one live
    in
    if Array.length clauses = 0 then free_w
    else
      List.fold_left
        (fun acc (cls, slots) ->
          if Nat.is_zero acc then acc
          else Nat.mul acc (solve_component cfg ~jobs dom cls slots))
        free_w (components clauses)
  end

(* Cache wrapper: canonicalize the component, consult the shared table,
   only solve on a miss.  The canonical key is what makes branches
   share: residues that differ only in slot names or in which concrete
   values survived the split collapse to one entry. *)
and solve_component cfg ~jobs dom clauses slots =
  if Incdb_obs.Runtime.enabled () then
    Events.instant "val_kernel.component"
      ~args:
        [
          ("slots", Events.Int (Array.length slots));
          ("clauses", Events.Int (Array.length clauses));
        ];
  match cfg.cache with
  | None -> solve_component_uncached cfg ~jobs dom clauses slots
  | Some cache ->
    let key =
      Trace.with_span "val_kernel.canonicalize" (fun () ->
          Lineage.canonical_fixes clauses ~dom:(fun j -> dom.(j)))
    in
    (match cache_find cache key with
    | Some n ->
      Metrics.incr cache_hits;
      Events.instant "val_kernel.cache" ~args:cache_hit_args;
      n
    | None ->
      Metrics.incr cache_misses;
      Events.instant "val_kernel.cache" ~args:cache_miss_args;
      let n = solve_component_uncached cfg ~jobs dom clauses slots in
      cache_add cache key n;
      n)

(* Mode decision per component.  [Off] preserves the seed behavior:
   in-bounds components run the DP with in-memory tables, the rest
   condition.  [Auto] additionally rescues components whose width is
   within bound but whose tables exceed [max_cells] — exactly the
   regime the seed kernel lost to conditioning — by spilling oversized
   messages, provided the estimated stream stays inside what is left of
   the spill budget.  [Force] spills every message (a test and
   measurement mode); the width bound is then advisory, only the budget
   gates admission.  An exhausted budget (estimated up front or hit
   mid-DP by the write hook) falls back to conditioning, so disk and
   time stay bounded whatever the instance. *)
and solve_component_uncached cfg ~jobs dom clauses slots =
  let ctx = { dom; vals = mentioned_values clauses } in
  let order, width, cells =
    elimination_order ~heuristic:cfg.heuristic ~max_cells:cfg.max_cells ctx
      slots clauses
  in
  let in_bounds = width <= cfg.width_bound && cells <= cfg.max_cells in
  let mode =
    match cfg.spill with
    | Off -> if in_bounds then Some All_memory else None
    | Auto ->
      if in_bounds then Some All_memory
      else if width <= cfg.width_bound then Some Spill_large
      else None
    | Force -> Some Spill_all
  in
  let dp =
    match mode with
    | None -> None
    | Some m ->
      let td =
        Trace.with_span "val_kernel.treedec" (fun () ->
            Treedec.build ~order
              ~cliques:(Array.map (fun c -> Array.map fst c) clauses))
      in
      let admitted =
        match m with
        | All_memory -> true
        | Spill_large | Spill_all ->
          estimate_stream_bytes ctx td
          <= cfg.spill_budget - Atomic.get cfg.spill_spent
      in
      if admitted then Some (m, td) else None
  in
  match dp with
  | Some (m, td) -> (
    match
      Events.with_span "val_kernel.eliminate_component"
        ~args:
          [
            ("width", Events.Int width);
            ("cells", Events.Int cells);
            ("slots", Events.Int (Array.length slots));
            ("clauses", Events.Int (Array.length clauses));
            ("bags", Events.Int (Treedec.bag_count td));
            ("store", Events.Str (store_mode_to_string m));
          ]
        (fun () -> eliminate_treedec cfg ctx m td clauses)
    with
    | n ->
      Metrics.incr width_counter ~by:width;
      Metrics.set treedec_width_gauge (float_of_int td.Treedec.width);
      n
    | exception Spill_budget_exhausted ->
      Log.debugf
        "val_kernel: spill budget exhausted mid-DP (%d-slot component); \
         falling back to conditioning"
        (Array.length slots);
      Events.instant "val_kernel.spill_budget_exhausted";
      condition_component cfg ~jobs dom ctx clauses slots width)
  | None -> condition_component cfg ~jobs dom ctx clauses slots width

(* Condition on the highest-degree slot (ties: smallest index): one
   branch per mentioned value plus one aggregated "other" branch, each a
   strictly smaller subproblem re-minimized and re-split. *)
and condition_component cfg ~jobs dom ctx clauses slots width =
  Metrics.incr conditioning_splits;
  let degree j =
    let nbrs =
      Array.fold_left
        (fun acc c ->
          if Array.exists (fun (s, _) -> s = j) c then
            Array.fold_left (fun a (s, _) -> Iset.add s a) acc c
          else acc)
        Iset.empty clauses
    in
    Iset.cardinal (Iset.remove j nbrs)
  in
  let j =
    Array.fold_left
      (fun acc s ->
        match acc with
        | Some (_, d) when d >= degree s -> acc
        | _ -> Some (s, degree s))
      None slots
    |> Option.get |> fst
  in
  let mvals = Hashtbl.find ctx.vals j in
  let m = Array.length mvals in
  let dj = dom.(j) in
  let rest =
    Array.of_list (List.filter (fun s -> s <> j) (Array.to_list slots))
  in
  let branch v () =
    match Lineage.condition_fixes clauses ~slot:j ~value:v with
    | None -> Nat.zero
    | Some cls -> solve cfg ~jobs:1 dom (Lineage.minimal_fixes cls) rest
  in
  let other () =
    solve cfg ~jobs:1 dom (Lineage.drop_slot_fixes clauses ~slot:j) rest
  in
  let tasks =
    Array.to_list (Array.map branch mvals)
    @ (if dj > m then [ other ] else [])
  in
  let results =
    Events.with_span "val_kernel.condition"
      ~args:
        [
          ("slot", Events.Int j);
          ("branches", Events.Int (List.length tasks));
          ("width", Events.Int width);
        ]
      (fun () ->
        if jobs <> 1 then Incdb_par.Pool.run ~jobs tasks
        else List.map (fun t -> t ()) tasks)
  in
  let acc = ref Nat.zero in
  List.iteri
    (fun i r ->
      let w = if i < m then Nat.one else Nat.of_int (dj - m) in
      acc := Nat.add !acc (Nat.mul w r))
    results;
  !acc

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let rec strip_negations negated = function
  | Query.Not q -> strip_negations (not negated) q
  | q -> (negated, q)

let count ?(width_bound = default_width_bound)
    ?(max_events = default_max_events) ?(max_cells = default_max_cells)
    ?(order = Min_degree) ?(cache_entries = default_cache_entries) ?cache
    ?(spill = Auto) ?spill_dir
    ?(spill_budget_bytes = default_spill_budget_bytes) ?(jobs = 1) q db =
  if width_bound < 0 then
    invalid_arg "Val_kernel.count: negative width bound";
  if max_events < 0 then
    invalid_arg "Val_kernel.count: negative event limit";
  if max_cells < 1 then
    invalid_arg "Val_kernel.count: max_cells must be at least 1";
  if cache_entries < 0 then
    invalid_arg "Val_kernel.count: negative cache size";
  if spill_budget_bytes < 0 then
    invalid_arg "Val_kernel.count: negative spill budget";
  match strip_negations false q with
  | _, Query.Semantic _ -> None
  | negated, core ->
    Trace.with_span "val_kernel.count" (fun () ->
        let evs =
          Trace.with_span "val_kernel.compile_events" (fun () ->
              Array.of_list (Incdb_approx.Karp_luby.events core db))
        in
        let n = Array.length evs in
        if n > max_events then
          raise (Too_many_events { events = n; limit = max_events });
        Metrics.incr events_compiled ~by:n;
        Events.instant "val_kernel.compiled" ~args:[ ("events", Events.Int n) ];
        let clauses =
          Lineage.minimal_fixes (Incdb_approx.Karp_luby.encode_fixes evs db)
        in
        let dom =
          Array.of_list
            (List.map
               (fun nm -> List.length (Idb.domain_of db nm))
               (Idb.nulls db))
        in
        let live = Array.init (Array.length dom) Fun.id in
        Log.debugf
          "val_kernel: %d events, %d minimal clauses over %d nulls (%s order, \
           %s spill)"
          n (Array.length clauses) (Array.length dom) (order_to_string order)
          (spill_to_string spill);
        let cfg =
          {
            width_bound;
            max_cells;
            heuristic = order;
            (* A caller-owned [?cache] survives this call — entries key
               on canonical clause structure plus domain sizes, so
               nothing ties them to one database and cross-call reuse
               is sound (incdbd holds one per server).  Otherwise one
               fresh table per call: memory bounded by the query, no
               invalidation story needed. *)
            cache =
              (match cache with
              | Some c -> Some c
              | None ->
                if cache_entries = 0 then None
                else Some (cache_create cache_entries));
            spill;
            spill_dir;
            spill_budget = spill_budget_bytes;
            spill_spent = Atomic.make 0;
          }
        in
        let avoid =
          Trace.with_span "val_kernel.eliminate" (fun () ->
              solve cfg ~jobs dom clauses live)
        in
        let total = Idb.total_valuations db in
        Some (if negated then avoid else Nat.sub total avoid))
