(** Libkin's relative-frequency measure and the 0–1 law (Section 7).

    For a Boolean query [q], a naïve table [T] and an integer [k],
    [mu_k(q, T) = |Supp_k(q,T)| / |V_k(T)|] is the fraction of valuations
    over the uniform domain [{1,...,k}] whose completion satisfies [q].
    Libkin (PODS 2018) showed that for generic queries this value tends to
    0 or 1 as [k] grows; the paper studies the complexity of actually
    {e computing} it, under the name [#Val^u(q)].

    This module computes [mu_k] exactly (as a rational), routing through
    the dispatcher so that tractable query shapes use the Theorem 3.9
    algorithm, and exposes a convergence scan that makes the 0–1 behaviour
    observable. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

(** [mu q facts ~k] is [mu_k] for the naïve table [facts].  Constants
    already in the table are kept as-is (they are "large" values in
    Libkin's sense unless they collide with ["1"..."k"]).
    @raise Invalid_argument if [k < 1] or brute force would exceed its
    enumeration limit on a hard query shape. *)
val mu : Cq.t -> Idb.fact list -> k:int -> Qnum.t

(** The same measure over distinct completions instead of valuations
    (computed by enumeration; Libkin's results cover this variant too). *)
val mu_completions : Cq.t -> Idb.fact list -> k:int -> Qnum.t

(** [mu_symbolic q facts ~k] computes [mu_k] with the matrix-power
    algorithm ({!Count_val.uniform_symbolic}): [k] may be astronomically
    large (e.g. 10^9) as long as the table constants are regarded as
    external to [{1..k}].  Exact rational output. *)
val mu_symbolic : Cq.t -> Idb.fact list -> k:int -> Qnum.t

(** [scan q facts ~kmax] tabulates [(k, mu_k)] for [k = 1 .. kmax]. *)
val scan : Cq.t -> Idb.fact list -> kmax:int -> (int * Qnum.t) list

(** [float_of_mu] for display. *)
val float_of_mu : Qnum.t -> float
