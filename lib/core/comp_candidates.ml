open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_relational

(* Ground instantiations of one incomplete fact: the product of the term
   candidate sets. *)
let ground_facts db (f : Idb.fact) =
  let choices =
    Array.to_list f.Idb.args
    |> List.map (function
         | Term.Const c -> [ c ]
         | Term.Null n -> Idb.domain_of db n)
  in
  let rec product = function
    | [] -> [ [] ]
    | cs :: rest ->
      let tails = product rest in
      List.concat_map (fun c -> List.map (fun t -> c :: t) tails) cs
  in
  List.map (fun args -> Cdb.fact f.Idb.rel args) (product choices)

let candidate_facts db =
  List.concat_map (ground_facts db) (Idb.facts db)
  |> List.sort_uniq Cdb.compare_fact

module Trace = Incdb_obs.Trace
module Metrics = Incdb_obs.Metrics

(* Same counter the brute-force path registers: candidate subsets that
   went through the is-completion check. *)
let completions_checked = Metrics.counter "completions_checked"

let count ?query ?(max_candidates = 22) db =
  if not (Idb.is_codd db) then
    invalid_arg "Comp_candidates.count: requires a Codd table";
  let universe =
    Trace.with_span "count_comp.candidate_generation" (fun () ->
        Array.of_list (candidate_facts db))
  in
  let m = Array.length universe in
  if m > max_candidates then
    invalid_arg "Comp_candidates.count: candidate universe too large";
  let satisfies s =
    match query with None -> true | Some q -> Query.eval q s
  in
  let count = ref Nat.zero in
  for mask = 0 to (1 lsl m) - 1 do
    Metrics.incr completions_checked;
    let s =
      Cdb.of_list
        (List.filteri (fun i _ -> mask land (1 lsl i) <> 0)
           (Array.to_list universe))
    in
    if satisfies s && Codd.is_completion db s then count := Nat.succ !count
  done;
  !count
