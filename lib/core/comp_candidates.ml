open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_relational

module Fset = Set.Make (struct
  type t = Cdb.fact

  let compare = Cdb.compare_fact
end)

(* Ground instantiations of one incomplete fact, streamed: the product of
   the term candidate sets, visited without materializing the product. *)
let iter_ground_facts db (f : Idb.fact) yield =
  let arity = Array.length f.Idb.args in
  let choices =
    Array.map
      (function
        | Term.Const c -> [| c |]
        | Term.Null n -> Array.of_list (Idb.domain_of db n))
      f.Idb.args
  in
  let args = Array.make arity "" in
  let rec go i =
    if i = arity then yield (Cdb.fact f.Idb.rel (Array.to_list args))
    else
      Array.iter
        (fun c ->
          args.(i) <- c;
          go (i + 1))
        choices.(i)
  in
  go 0

let candidate_facts db =
  let acc = ref Fset.empty in
  List.iter
    (fun f -> iter_ground_facts db f (fun g -> acc := Fset.add g !acc))
    (Idb.facts db);
  Fset.elements !acc

exception Universe_exceeded

(* Early-exit probe: the ground-fact universe as a sorted array, or [None]
   as soon as its size passes [limit] — grounding stops there, so probing
   a huge instance costs [limit + 1] set insertions, not the full
   product. *)
let universe_within db ~limit =
  let acc = ref Fset.empty in
  let size = ref 0 in
  match
    List.iter
      (fun f ->
        iter_ground_facts db f (fun g ->
            let acc' = Fset.add g !acc in
            if acc' != !acc then begin
              incr size;
              if !size > limit then raise Universe_exceeded;
              acc := acc'
            end))
      (Idb.facts db)
  with
  | () -> Some (Array.of_list (Fset.elements !acc))
  | exception Universe_exceeded -> None

exception Too_many_candidates of { universe : int; limit : int }

let () =
  Printexc.register_printer (function
    | Too_many_candidates { universe; limit } ->
      Some
        (Printf.sprintf
           "Comp_candidates.Too_many_candidates(universe %d, limit %d)"
           universe limit)
    | _ -> None)

module Trace = Incdb_obs.Trace
module Metrics = Incdb_obs.Metrics
module Events = Incdb_obs.Events

(* Same counter the brute-force path registers: candidate subsets that
   went through the is-completion check. *)
let completions_checked = Metrics.counter "completions_checked"

(* Kernel instrumentation, batched per shard: per-subset atomic updates
   at 2^26 subsets would cost more than the subsets themselves. *)
let clauses_compiled = Metrics.counter "comp_kernel.clauses_compiled"
let masks_pruned = Metrics.counter "comp_kernel.masks_pruned"
let subsets_checked = Metrics.counter "comp_kernel.subsets_checked"
let shards_run = Metrics.counter "comp_kernel.shards_run"

(* Which representation the last dispatch chose: the probed universe
   size (= mask width in bits), and how often the wide path ran. *)
let mask_width = Metrics.gauge "comp_kernel.mask_width"
let wide_dispatch = Metrics.counter "comp_kernel.wide_dispatch"

let default_max_candidates = 80

type mask_choice = Auto | Int_masks | Wide_masks

(* How the query is decided at an enumeration leaf. *)
type sat_mode =
  | All  (* no query *)
  | Dnf of bool (* compiled lineage; [true] = outer negation *)
  | Opaque of Query.t (* uncompilable: materialize and evaluate *)

(* ------------------------------------------------------------------ *)
(* One shard: recursive-prefix enumeration of the masks extending a     *)
(* fixed high-bit prefix.                                               *)
(* ------------------------------------------------------------------ *)

(* The enumeration maintains, incrementally along the prefix tree, for
   the reachable set R = partial ∪ {undecided bits}:
   - per table fact, |ground_mask ∩ R| — when it hits 0 the star check
     can never pass below this node (a completion must give every table
     fact a landing spot), killing the subtree;
   - per lineage clause, |clause \ R| — a clause is winnable iff 0;
     when no clause is winnable a positive query cannot hold below this
     node, and at a leaf (R = partial) winnability IS satisfaction, so
     the DNF is never rescanned per subset;
   - the included-bit count — a completion has at most [nd] facts
     (distinct producers), so overfull branches die on entry.
   Only bit *exclusions* shrink R, so each branch updates exactly the
   facts/clauses indexed by its bit. *)

type shard_stats = {
  mutable checked : int;
  mutable pruned : int;
  mutable found : int;
}

let run_shard ~m ~shard_bits ~prefix ~kernel ~clauses ~sat_mode ~universe
    ~facts_with_bit ~clauses_with_bit (stats : shard_stats) =
  let nd = Codd.kernel_size kernel in
  let dmasks = Codd.kernel_masks kernel in
  let free_bits = m - shard_bits in
  let reach0 = prefix lor ((1 lsl free_bits) - 1) in
  let reach = Array.map (fun dm -> Lineage.popcount (dm land reach0)) dmasks in
  let outside =
    Array.map (fun c -> Lineage.popcount (c land lnot reach0)) clauses
  in
  let winnable = ref (Array.fold_left (fun n o -> n + if o = 0 then 1 else 0) 0 outside) in
  let positive_dnf = match sat_mode with Dnf false -> true | _ -> false in
  let subtree_dead () =
    Array.exists (fun r -> r = 0) reach || (positive_dnf && !winnable = 0)
  in
  let leaf_sat partial =
    match sat_mode with
    | All -> true
    | Dnf negated -> !winnable > 0 <> negated
    | Opaque q ->
      let rec facts i acc =
        if i = m then acc
        else
          facts (i + 1)
            (if partial land (1 lsl i) <> 0 then universe.(i) :: acc else acc)
      in
      Query.eval q (Cdb.of_list (facts 0 []))
  in
  if subtree_dead () then begin
    stats.pruned <- stats.pruned + (1 lsl free_bits);
    0
  end
  else begin
    let rec go i partial included =
      if i < 0 then begin
        stats.checked <- stats.checked + 1;
        if leaf_sat partial && Codd.kernel_saturates kernel partial then
          stats.found <- stats.found + 1
      end
      else begin
        (* Include bit i: R is unchanged, only the cardinality grows. *)
        if included + 1 <= nd then
          go (i - 1) (partial lor (1 lsl i)) (included + 1)
        else stats.pruned <- stats.pruned + (1 lsl i);
        (* Exclude bit i: R shrinks by bit i. *)
        Array.iter (fun f -> reach.(f) <- reach.(f) - 1) facts_with_bit.(i);
        Array.iter
          (fun c ->
            if outside.(c) = 0 then decr winnable;
            outside.(c) <- outside.(c) + 1)
          clauses_with_bit.(i);
        if subtree_dead () then stats.pruned <- stats.pruned + (1 lsl i)
        else go (i - 1) partial included;
        Array.iter (fun f -> reach.(f) <- reach.(f) + 1) facts_with_bit.(i);
        Array.iter
          (fun c ->
            outside.(c) <- outside.(c) - 1;
            if outside.(c) = 0 then incr winnable)
          clauses_with_bit.(i)
      end
    in
    go (free_bits - 1) prefix (Lineage.popcount prefix);
    stats.found
  end

(* ------------------------------------------------------------------ *)
(* The same shard over multi-word masks                                 *)
(* ------------------------------------------------------------------ *)

module WB = Bitset.Wide

(* Identical prefix-tree walk, with two representation changes: the
   [partial] mask is a single worker-private scratch array mutated along
   the walk (set bit / recurse / clear bit) instead of a value threaded
   through the recursion, and the bulk pruned-leaf count is a [Nat] —
   [2^i] leaves at a killed node no longer fits an int once [i] can
   exceed the word size. *)
type wide_stats = {
  mutable wchecked : int;
  mutable wpruned : Nat.t;
  mutable wfound : int;
}

let prune_wide stats i =
  stats.wpruned <- Nat.add stats.wpruned (Nat.pow Nat.two i)

let run_shard_wide ~m ~shard_bits ~prefix ~kernel ~clauses ~sat_mode ~universe
    ~facts_with_bit ~clauses_with_bit (stats : wide_stats) =
  let nd = Codd.Wide.size kernel in
  let dmasks = Codd.Wide.masks kernel in
  let free_bits = m - shard_bits in
  let reach0 = WB.union prefix (WB.low ~width:m free_bits) in
  let reach = Array.map (fun dm -> WB.popcount_inter dm reach0) dmasks in
  let outside = Array.map (fun c -> WB.popcount_diff c reach0) clauses in
  let winnable =
    ref (Array.fold_left (fun n o -> n + if o = 0 then 1 else 0) 0 outside)
  in
  let positive_dnf = match sat_mode with Dnf false -> true | _ -> false in
  let subtree_dead () =
    Array.exists (fun r -> r = 0) reach || (positive_dnf && !winnable = 0)
  in
  let partial = WB.copy prefix in
  let leaf_sat () =
    match sat_mode with
    | All -> true
    | Dnf negated -> !winnable > 0 <> negated
    | Opaque q ->
      let rec facts i acc =
        if i = m then acc
        else facts (i + 1) (if WB.test partial i then universe.(i) :: acc else acc)
      in
      Query.eval q (Cdb.of_list (facts 0 []))
  in
  if subtree_dead () then begin
    prune_wide stats free_bits;
    0
  end
  else begin
    let rec go i included =
      if i < 0 then begin
        stats.wchecked <- stats.wchecked + 1;
        if leaf_sat () && Codd.Wide.saturates kernel partial then
          stats.wfound <- stats.wfound + 1
      end
      else begin
        if included + 1 <= nd then begin
          WB.set_inplace partial i;
          go (i - 1) (included + 1);
          WB.clear_inplace partial i
        end
        else prune_wide stats i;
        Array.iter (fun f -> reach.(f) <- reach.(f) - 1) facts_with_bit.(i);
        Array.iter
          (fun c ->
            if outside.(c) = 0 then decr winnable;
            outside.(c) <- outside.(c) + 1)
          clauses_with_bit.(i);
        if subtree_dead () then prune_wide stats i else go (i - 1) included;
        Array.iter (fun f -> reach.(f) <- reach.(f) + 1) facts_with_bit.(i);
        Array.iter
          (fun c ->
            outside.(c) <- outside.(c) - 1;
            if outside.(c) = 0 then incr winnable)
          clauses_with_bit.(i)
      end
    in
    go (free_bits - 1) (WB.popcount prefix);
    stats.wfound
  end

(* ------------------------------------------------------------------ *)
(* The kernel driver                                                    *)
(* ------------------------------------------------------------------ *)

(* Shard granularity.  At least the 64-way split of small universes, and
   on large ones enough prefix bits to cap a shard's subtree at 2^16
   leaf masks — concentrated pruning can no longer strand most of the
   surviving work in one shard.  But sharding is not free: every shard
   re-walks the prefix constraints before touching its subtree, so a
   shard count far beyond what the pool can keep busy is pure overhead
   (a 1-core host paid 2–5x for the 4096-way split that a 64-core host
   amortizes).  Cap the split at [16 x recommended] shards — ample for
   the pool's size-halving chunk claiming to balance, proportional to
   the machine.  The split depends only on [m] and the host's
   recommended domain count, never on the [jobs] argument, so per-shard
   work and metric totals stay jobs-invariant, like the counts
   themselves. *)
let shard_bits_for ?(pool = Incdb_par.Pool.recommended ()) m =
  let cap =
    let target = 16 * max 1 pool in
    let b = ref 6 in
    while 1 lsl !b < target do incr b done;
    !b
  in
  min m (min (max 6 (min 12 (m - 16))) cap)

(* The wide driver: same sharding, same shard split (so the totals and
   metric deltas stay jobs-invariant), masks [Bitset.Wide].  The bulk
   pruned-leaf total is summed as a [Nat] across shards and exported
   into the int [masks_pruned] counter with saturation — exact whenever
   it fits a word (in particular on every universe the int path can also
   run, which is what the int-vs-wide metric agreement tests pin). *)
let count_wide ?query ~jobs ~universe ~m db =
  let kernel0 = Codd.Wide.make db ~universe in
  let sat_mode, clauses =
    match query with
    | None -> (All, [||])
    | Some q -> (
      match
        Trace.with_span "count_comp.lineage_compile" (fun () ->
            Lineage.Wide.compile q universe)
      with
      | Some l -> (Dnf (Lineage.Wide.is_negated l), Lineage.Wide.clauses l)
      | None -> (Opaque q, [||]))
  in
  Metrics.incr clauses_compiled ~by:(Array.length clauses);
  let index_bits masks n =
    Array.init m (fun j ->
        let hits = ref [] in
        for i = n - 1 downto 0 do
          if WB.test masks.(i) j then hits := i :: !hits
        done;
        Array.of_list !hits)
  in
  let facts_with_bit =
    index_bits (Codd.Wide.masks kernel0) (Codd.Wide.size kernel0)
  in
  let clauses_with_bit = index_bits clauses (Array.length clauses) in
  let shard_bits = shard_bits_for m in
  let nshards = 1 lsl shard_bits in
  let wide_prefix s =
    let p = ref (WB.zero ~width:m) in
    for j = 0 to shard_bits - 1 do
      if s land (1 lsl j) <> 0 then p := WB.set !p (m - shard_bits + j)
    done;
    !p
  in
  let tasks =
    List.init nshards (fun s () ->
        Metrics.incr shards_run;
        let stats = { wchecked = 0; wpruned = Nat.zero; wfound = 0 } in
        let found =
          Events.with_span "comp_kernel.shard"
            ~args:[ ("shard", Events.Int s) ]
            (fun () ->
              run_shard_wide ~m ~shard_bits ~prefix:(wide_prefix s)
                ~kernel:(Codd.Wide.copy kernel0) ~clauses ~sat_mode ~universe
                ~facts_with_bit ~clauses_with_bit stats)
        in
        Metrics.incr subsets_checked ~by:stats.wchecked;
        Metrics.incr completions_checked ~by:stats.wchecked;
        (found, stats.wpruned))
  in
  let per_shard = Incdb_par.Pool.run ~jobs tasks in
  let pruned = Nat.sum (List.map snd per_shard) in
  let pruned_int =
    match Nat.to_int_opt pruned with
    | Some p -> Stdlib.min p (max_int - Metrics.value masks_pruned)
    | None -> max_int - Metrics.value masks_pruned
  in
  Metrics.incr masks_pruned ~by:pruned_int;
  Nat.of_int (List.fold_left (fun acc (f, _) -> acc + f) 0 per_shard)

let count ?query ?(max_candidates = default_max_candidates) ?(jobs = 1)
    ?(mask = Auto) ?universe db =
  if not (Idb.is_codd db) then
    invalid_arg "Comp_candidates.count: requires a Codd table";
  let universe =
    match universe with
    | Some u -> u
    | None -> (
      Trace.with_span "count_comp.candidate_generation" (fun () ->
          match universe_within db ~limit:max_candidates with
          | Some u -> u
          | None ->
            raise
              (Too_many_candidates
                 {
                   universe = List.length (candidate_facts db);
                   limit = max_candidates;
                 })))
  in
  let m = Array.length universe in
  if m > max_candidates then
    raise (Too_many_candidates { universe = m; limit = max_candidates });
  let wide =
    match mask with
    | Wide_masks -> true
    | Auto -> m > Lineage.max_universe
    | Int_masks ->
      (* Forced int masks past one word cannot run: report the word
         ceiling as the limit, like the pre-wide dispatcher did. *)
      if m > Lineage.max_universe then
        raise
          (Too_many_candidates { universe = m; limit = Lineage.max_universe });
      false
  in
  Metrics.set mask_width (float_of_int m);
  if wide then Metrics.incr wide_dispatch;
  if wide then
    Trace.with_span "count_comp.mask_enumeration" (fun () ->
        count_wide ?query ~jobs ~universe ~m db)
  else
  Trace.with_span "count_comp.mask_enumeration" (fun () ->
      let kernel0 = Codd.kernel db ~universe in
      let sat_mode, clauses =
        match query with
        | None -> (All, [||])
        | Some q -> (
          match
            Trace.with_span "count_comp.lineage_compile" (fun () ->
                Lineage.compile q universe)
          with
          | Some l -> (Dnf (Lineage.is_negated l), Lineage.clauses l)
          | None -> (Opaque q, [||]))
      in
      Metrics.incr clauses_compiled ~by:(Array.length clauses);
      let index_bits masks n =
        Array.init m (fun j ->
            let hits = ref [] in
            for i = n - 1 downto 0 do
              if masks.(i) land (1 lsl j) <> 0 then hits := i :: !hits
            done;
            Array.of_list !hits)
      in
      let facts_with_bit =
        index_bits (Codd.kernel_masks kernel0) (Codd.kernel_size kernel0)
      in
      let clauses_with_bit = index_bits clauses (Array.length clauses) in
      let shard_bits = shard_bits_for m in
      let nshards = 1 lsl shard_bits in
      let tasks =
        List.init nshards (fun s () ->
            Metrics.incr shards_run;
            let stats = { checked = 0; pruned = 0; found = 0 } in
            let found =
              Events.with_span "comp_kernel.shard"
                ~args:[ ("shard", Events.Int s) ]
                (fun () ->
                  run_shard ~m ~shard_bits ~prefix:(s lsl (m - shard_bits))
                    ~kernel:(Codd.kernel_copy kernel0) ~clauses ~sat_mode
                    ~universe ~facts_with_bit ~clauses_with_bit stats)
            in
            Metrics.incr subsets_checked ~by:stats.checked;
            Metrics.incr completions_checked ~by:stats.checked;
            Metrics.incr masks_pruned ~by:stats.pruned;
            found)
      in
      Nat.of_int
        (List.fold_left ( + ) 0 (Incdb_par.Pool.run ~jobs tasks)))

(* ------------------------------------------------------------------ *)
(* The seed implementation, kept verbatim as the agreement/bench oracle *)
(* ------------------------------------------------------------------ *)

let count_reference ?query ?(max_candidates = 22) db =
  if not (Idb.is_codd db) then
    invalid_arg "Comp_candidates.count: requires a Codd table";
  let universe =
    Trace.with_span "count_comp.candidate_generation" (fun () ->
        Array.of_list (candidate_facts db))
  in
  let m = Array.length universe in
  if m > max_candidates then
    invalid_arg "Comp_candidates.count: candidate universe too large";
  let satisfies s =
    match query with None -> true | Some q -> Query.eval q s
  in
  let count = ref Nat.zero in
  for mask = 0 to (1 lsl m) - 1 do
    Metrics.incr completions_checked;
    let s =
      Cdb.of_list
        (List.filteri (fun i _ -> mask land (1 lsl i) <> 0)
           (Array.to_list universe))
    in
    if satisfies s && Codd.is_completion db s then count := Nat.succ !count
  done;
  !count
