(** The explicit closed-form formulas written out in the paper, verbatim —
    an independent reference implementation used to cross-validate the
    general algorithms.

    All functions take the instance {e parameters} (domain size, null and
    constant counts) rather than a database; the corresponding databases
    are built in the test-suite and benches and counted with the general
    algorithms, which must agree with these formulas. *)

open Incdb_bignum

(** Warm-up B.6.1, Equation (3): completions of a single unary relation
    with [n] nulls and no constants over a uniform domain of size [d]:
    [sum over i of C(d, i) * check(i)]. *)
val comp_unary_no_constants : d:int -> n:int -> Nat.t

(** Warm-up B.6.2, Equation (4): with [c] constants (all inside the
    domain): [sum over 0 <= i of C(d-c, i) * check(i)]. *)
val comp_unary : d:int -> n:int -> c:int -> Nat.t

(** Warm-up B.6.3, Equation (5): completions of [R(x) ∧ S(y)] with no
    constants, given the counts of nulls occurring only in R ([nr]), only
    in S ([ns]), and in both ([nrs]). *)
val comp_two_unary_no_constants : d:int -> nr:int -> ns:int -> nrs:int -> Nat.t

(** Warm-up B.6.4: the same sum restricted to completions satisfying
    [R(x) ∧ S(x)] (the intersection class must be non-empty). *)
val comp_two_unary_joint : d:int -> nr:int -> ns:int -> nrs:int -> Nat.t

(** Example 3.10: the number of valuations of a uniform Codd instance
    {e falsifying} [R(x) ∧ S(x)], with [nr]/[ns] nulls and [cr]/[cs]
    constants (disjoint, inside the domain):
    [sum over m', r' of C(m,m') C(cr,r') surj(nr, m'+r') (d-cr-m')^ns]. *)
val example_3_10_unsatisfying : d:int -> nr:int -> cr:int -> ns:int -> cs:int -> Nat.t

(** The satisfying count: [d^(nr+ns) - example_3_10_unsatisfying]. *)
val example_3_10 : d:int -> nr:int -> cr:int -> ns:int -> cs:int -> Nat.t
