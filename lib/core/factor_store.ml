(* Factor-table storage for the #Val kernel: an in-memory backend (the
   historical Nat arrays) and a disk-backed backend that serializes
   tables block-wise to temp files.  See factor_store.mli. *)

open Incdb_bignum
module Metrics = Incdb_obs.Metrics
module Log = Incdb_obs.Log

type meta = { scope : int array; sizes : int array; cells : int }

let make_meta ~scope ~sizes =
  if Array.length scope <> Array.length sizes then
    invalid_arg "Factor_store.make_meta: scope/sizes length mismatch";
  if Array.exists (fun s -> s < 1) sizes then
    invalid_arg "Factor_store.make_meta: non-positive domain size";
  { scope; sizes; cells = Array.fold_left ( * ) 1 sizes }

(* Registered here (not in val_kernel) so the accounting lives next to
   the IO it measures; the val_kernel prefix keeps the kernel's metric
   namespace in one place for dashboards and the smoke assertions. *)
let spilled_factors = Metrics.counter "val_kernel.spilled_factors"
let spill_bytes = Metrics.counter "val_kernel.spill_bytes"
let spill_read_bytes = Metrics.counter "val_kernel.spill_read_bytes"

let disk_block_cells = 1 lsl 14

module type FACTOR_STORE = sig
  val backend : string

  type writer
  type factor

  val create : ?dir:string -> ?on_write:(int -> unit) -> meta -> writer
  val append : writer -> Nat.t -> unit
  val finish : writer -> factor
  val abort : writer -> unit
  val meta : factor -> meta
  val byte_size : factor -> int
  val get : factor -> int -> Nat.t
  val release : factor -> unit
end

module Memory : FACTOR_STORE = struct
  let backend = "memory"

  type factor = { mmeta : meta; table : Nat.t array }
  type writer = { fac : factor; mutable filled : int }

  let create ?dir:_ ?on_write:_ m =
    { fac = { mmeta = m; table = Array.make m.cells Nat.zero }; filled = 0 }

  let append w v =
    if w.filled >= w.fac.mmeta.cells then
      invalid_arg "Factor_store.Memory.append: table already full";
    w.fac.table.(w.filled) <- v;
    w.filled <- w.filled + 1

  let finish w =
    if w.filled <> w.fac.mmeta.cells then
      invalid_arg "Factor_store.Memory.finish: table not fully written";
    w.fac

  let abort _ = ()
  let meta f = f.mmeta
  let byte_size _ = 0
  let get f i = f.table.(i)
  let release _ = ()
end

module Disk : FACTOR_STORE = struct
  let backend = "disk"

  (* Layout: a sequence of [Marshal]ed [Nat.t array] chunks, one per
     block of [disk_block_cells] cells (the last may be short), with
     the byte offset of every block kept in memory — random access at
     block granularity, sequential IO within a block.  Files live only
     as long as the factor: [release]/[abort] delete them, and both are
     idempotent so the kernel's exception cleanup can fire on top of
     the normal path. *)
  type factor = {
    dmeta : meta;
    path : string;
    offsets : int array;
    bytes : int;
    mutable chan : in_channel option;
    mutable cached_block : int;
    mutable cache : Nat.t array;
    mutable released : bool;
  }

  type writer = {
    wmeta : meta;
    wpath : string;
    oc : out_channel;
    on_write : int -> unit;
    buf : Nat.t array;
    mutable filled : int; (* cells in [buf] *)
    mutable written : int; (* cells flushed *)
    mutable woffsets : int list; (* reversed block offsets *)
    mutable closed : bool;
  }

  let create ?dir ?(on_write = fun _ -> ()) m =
    let path =
      Filename.temp_file ?temp_dir:dir "incdb_val_factor_" ".spill"
    in
    let oc = open_out_bin path in
    Log.debugf "factor_store: spilling %d cells over %d slots to %s" m.cells
      (Array.length m.scope) path;
    {
      wmeta = m;
      wpath = path;
      oc;
      on_write;
      buf = Array.make (min m.cells disk_block_cells) Nat.zero;
      filled = 0;
      written = 0;
      woffsets = [];
      closed = false;
    }

  let flush_block w =
    if w.filled > 0 then begin
      let start = pos_out w.oc in
      w.woffsets <- start :: w.woffsets;
      Marshal.to_channel w.oc (Array.sub w.buf 0 w.filled) [];
      w.written <- w.written + w.filled;
      w.filled <- 0;
      let delta = pos_out w.oc - start in
      Metrics.incr spill_bytes ~by:delta;
      (* The budget hook runs after the accounting: if it raises, the
         bytes were really written and the caller aborts the writer. *)
      w.on_write delta
    end

  let append w v =
    if w.closed then invalid_arg "Factor_store.Disk.append: writer closed";
    if w.written + w.filled >= w.wmeta.cells then
      invalid_arg "Factor_store.Disk.append: table already full";
    w.buf.(w.filled) <- v;
    w.filled <- w.filled + 1;
    if w.filled = Array.length w.buf then flush_block w

  let abort w =
    if not w.closed then begin
      w.closed <- true;
      close_out_noerr w.oc;
      try Sys.remove w.wpath with Sys_error _ -> ()
    end

  let finish w =
    if w.closed then invalid_arg "Factor_store.Disk.finish: writer closed";
    if w.written + w.filled <> w.wmeta.cells then
      invalid_arg "Factor_store.Disk.finish: table not fully written";
    flush_block w;
    let bytes = pos_out w.oc in
    w.closed <- true;
    close_out w.oc;
    Metrics.incr spilled_factors;
    {
      dmeta = w.wmeta;
      path = w.wpath;
      offsets = Array.of_list (List.rev w.woffsets);
      bytes;
      chan = None;
      cached_block = -1;
      cache = [||];
      released = false;
    }

  let meta f = f.dmeta
  let byte_size f = f.bytes

  let load_block f b =
    let ic =
      match f.chan with
      | Some ic -> ic
      | None ->
        let ic = open_in_bin f.path in
        f.chan <- Some ic;
        ic
    in
    seek_in ic f.offsets.(b);
    let cells : Nat.t array = Marshal.from_channel ic in
    Metrics.incr spill_read_bytes ~by:(pos_in ic - f.offsets.(b));
    f.cached_block <- b;
    f.cache <- cells

  let get f i =
    if f.released then invalid_arg "Factor_store.Disk.get: factor released";
    let b = i / disk_block_cells in
    if b <> f.cached_block then load_block f b;
    f.cache.(i mod disk_block_cells)

  let release f =
    if not f.released then begin
      f.released <- true;
      (match f.chan with Some ic -> close_in_noerr ic | None -> ());
      f.chan <- None;
      f.cache <- [||];
      try Sys.remove f.path with Sys_error _ -> ()
    end
end

(* ------------------------------------------------------------------ *)
(* Kernel-facing dispatch                                              *)
(* ------------------------------------------------------------------ *)

type t = In_memory of Memory.factor | On_disk of Disk.factor
type writer = W_memory of Memory.writer | W_disk of Disk.writer

let create ~spill ?dir ?on_write m =
  if spill then W_disk (Disk.create ?dir ?on_write m)
  else W_memory (Memory.create ?dir ?on_write m)

let append w v =
  match w with
  | W_memory w -> Memory.append w v
  | W_disk w -> Disk.append w v

let finish = function
  | W_memory w -> In_memory (Memory.finish w)
  | W_disk w -> On_disk (Disk.finish w)

let abort = function
  | W_memory w -> Memory.abort w
  | W_disk w -> Disk.abort w

let meta = function
  | In_memory f -> Memory.meta f
  | On_disk f -> Disk.meta f

let get f i =
  match f with
  | In_memory f -> Memory.get f i
  | On_disk f -> Disk.get f i

let byte_size = function
  | In_memory f -> Memory.byte_size f
  | On_disk f -> Disk.byte_size f

let release = function
  | In_memory f -> Memory.release f
  | On_disk f -> Disk.release f

let spilled = function In_memory _ -> false | On_disk _ -> true
