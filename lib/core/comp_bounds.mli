(** Guaranteed bounds and under-approximations for [#Comp(q)] — the
    heuristic direction the paper's final remarks call for (Section 8:
    "developing algorithms that compute under-approximations for the
    number of completions ... without provable quantitative guarantees,
    but that work sufficiently well in practice").

    [#Comp] admits no FPRAS in most settings (Section 5.2), so these
    bounds are the honest alternative: the lower bound is the number of
    {e distinct} completions actually witnessed among sampled valuations
    (always sound), and the upper bound is [#Val(q)] (sound because the
    completion map is surjective onto the counted set). *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

type bounds = { lower : Nat.t; upper : Nat.t }

(** [bounds ~seed ~samples q db] returns sound bounds
    [lower <= #Comp(q)(db) <= upper].  The lower bound is the number of
    distinct satisfying completions among [samples] uniformly drawn
    valuations (plus deterministic sweeps of each null's extreme values);
    the upper bound is [min(#Val(q), upper bound on completions)] with
    [#Val] computed by the dispatcher when tractable and by the Karp–Luby
    event union size otherwise. *)
val bounds : seed:int -> samples:int -> Cq.t -> Idb.t -> bounds

(** [exact_within ~seed ~samples q db] is [Some n] when the two bounds
    meet (the sampling saw every completion), [None] otherwise. *)
val exact_within : seed:int -> samples:int -> Cq.t -> Idb.t -> Nat.t option
