(** A small text format for incomplete databases, used by the [idbcount]
    command-line tool and the examples.

    {v
    # Example 2.2 of the paper
    dom ?n1 a b c        # per-null domain (non-uniform database)
    dom ?n2 a b
    S(a, b)
    S(?n1, a)
    S(a, ?n2)
    v}

    A uniform database instead declares one shared domain:

    {v
    dom 0 1
    R(?x, ?y)
    v}

    Arguments starting with ['?'] are nulls, everything else is a
    constant.  ['#'] starts a comment; blank lines are skipped. *)

(** [of_string s] parses a database.
    @raise Invalid_argument with a line-numbered message on errors
    (unknown directives, mixing uniform and per-null domains, facts with
    no domain for a null, syntax errors). *)
val of_string : string -> Idb.t

(** [of_file path] reads and parses a file. *)
val of_file : string -> Idb.t

(** [to_string db] renders a database in the same format ([of_string] of
    the output reconstructs an equal database). *)
val to_string : Idb.t -> string
