(** Brute-force counting of valuations and completions by exhaustive
    enumeration.  These are the problem {e definitions} turned into code
    ([#Val(q)] and [#Comp(q)] of Section 2) and serve as the ground truth
    for every polynomial-time algorithm and every reduction in the test
    suite.  They are exponential in the number of nulls by design. *)

open Incdb_bignum
open Incdb_relational
open Incdb_cq

(** [count_valuations ?limit q db] is [#Val(q)(db)]: the number of
    valuations [v] with [v(db) |= q].
    @raise Invalid_argument if the number of valuations exceeds [limit]. *)
val count_valuations : ?limit:int -> Query.t -> Idb.t -> Nat.t

(** [count_completions ?limit q db] is [#Comp(q)(db)]: the number of
    distinct completions satisfying [q]. *)
val count_completions : ?limit:int -> Query.t -> Idb.t -> Nat.t

(** All distinct completions, satisfying the query or not. *)
val completions : ?limit:int -> Idb.t -> Cdb.t list

(** [count_all_completions ?limit db] is the number of distinct
    completions; already #P-hard for Codd tables over a single unary
    relation in the non-uniform setting (Proposition 4.2). *)
val count_all_completions : ?limit:int -> Idb.t -> Nat.t

(** [count_all_completions_bag ?limit db] counts distinct completions
    under bag semantics (Section 8 future work): duplicates inside a
    completion are kept, so collisions between valuations are rarer and
    [#Comp <= #Comp_bag <= #Val(true)]. *)
val count_all_completions_bag : ?limit:int -> Idb.t -> Nat.t

(** [count_completions_bag ?limit q db] is [#Comp(q)] under bag
    semantics; [q] is evaluated on the underlying set of facts. *)
val count_completions_bag : ?limit:int -> Query.t -> Idb.t -> Nat.t

(** [satisfying_valuations ?limit q db] lists the satisfying valuations —
    for the Figure 1 style exhibits. *)
val satisfying_valuations : ?limit:int -> Query.t -> Idb.t -> Idb.valuation list
