open Incdb_relational
open Incdb_graph

let fact_can_produce db (f : Idb.fact) (g : Cdb.fact) =
  f.Idb.rel = g.Cdb.rel
  && Array.length f.Idb.args = Array.length g.Cdb.args
  && begin
       (* A null repeated inside one fact must take one consistent value;
          in a Codd table repetition cannot happen, but handling it keeps
          the check sound on arbitrary single facts. *)
       let binding = Hashtbl.create 4 in
       let ok = ref true in
       Array.iteri
         (fun i t ->
           if !ok then
             match t with
             | Term.Const c -> if c <> g.Cdb.args.(i) then ok := false
             | Term.Null n ->
               let c = g.Cdb.args.(i) in
               (match Hashtbl.find_opt binding n with
               | Some c' -> if c <> c' then ok := false
               | None ->
                 if List.mem c (Idb.domain_of db n) then
                   Hashtbl.replace binding n c
                 else ok := false))
         f.Idb.args;
       !ok
     end

let is_completion db s =
  if not (Idb.is_codd db) then
    invalid_arg "Codd.is_completion: requires a Codd table";
  let dfacts = Array.of_list (Idb.facts db) in
  let sfacts = Array.of_list (Cdb.to_list s) in
  let nd = Array.length dfacts and ns = Array.length sfacts in
  (* Star check: every fact of D must be able to produce some fact of S,
     otherwise no valuation lands inside S at all. *)
  let producible i =
    Array.exists (fun g -> fact_can_produce db dfacts.(i) g) sfacts
  in
  let star_ok = Array.for_all producible (Array.init nd Fun.id) in
  star_ok
  &&
  (* Every fact of S must be matched by a distinct fact of D: maximum
     matching of the producibility graph must saturate S. *)
  let edges = ref [] in
  for i = 0 to nd - 1 do
    for j = 0 to ns - 1 do
      if fact_can_produce db dfacts.(i) sfacts.(j) then edges := (i, j) :: !edges
    done
  done;
  let b = Bipartite.make ~left:nd ~right:ns !edges in
  let size, _ = Matching.maximum_matching b in
  size = ns

let is_completion_naive db s =
  let sfacts = Array.of_list (Cdb.to_list s) in
  let nulls = Array.of_list (Idb.nulls db) in
  let k = Array.length nulls in
  let index = Hashtbl.create 8 in
  Array.iteri (fun i n -> Hashtbl.replace index n i) nulls;
  let assignment = Array.make k None in
  (* A fact can still land in [s] under the partial assignment when some
     s-fact agrees with every already-fixed position. *)
  let fact_alive (f : Idb.fact) =
    Array.exists
      (fun (g : Cdb.fact) ->
        f.Idb.rel = g.Cdb.rel
        && Array.length f.Idb.args = Array.length g.Cdb.args
        && begin
             let ok = ref true in
             Array.iteri
               (fun i t ->
                 if !ok then
                   match t with
                   | Term.Const c -> if c <> g.Cdb.args.(i) then ok := false
                   | Term.Null n -> (
                     match assignment.(Hashtbl.find index n) with
                     | Some c -> if c <> g.Cdb.args.(i) then ok := false
                     | None ->
                       if not (List.mem g.Cdb.args.(i) (Idb.domain_of db n))
                       then ok := false))
               f.Idb.args;
             !ok
           end)
      sfacts
  in
  let all_alive () = List.for_all fact_alive (Idb.facts db) in
  (* Every s-fact must be produced by some table fact under the final
     assignment; check at the leaves (coverage pruning mid-way would need
     per-fact bookkeeping that rarely pays off at these sizes). *)
  let covered () =
    let v =
      List.init k (fun i ->
          (nulls.(i), match assignment.(i) with Some c -> c | None -> assert false))
    in
    Cdb.equal (Idb.apply db v) s
  in
  let rec go i =
    if i = k then covered ()
    else
      List.exists
        (fun c ->
          assignment.(i) <- Some c;
          let feasible = all_alive () in
          let result = feasible && go (i + 1) in
          assignment.(i) <- None;
          result)
        (Idb.domain_of db nulls.(i))
  in
  if k = 0 then Cdb.equal (Idb.apply db []) s else all_alive () && go 0

let is_completion_brute ?limit db s =
  let found = ref false in
  Idb.iter_valuations ?limit db (fun v ->
      if (not !found) && Cdb.equal (Idb.apply db v) s then found := true);
  !found
