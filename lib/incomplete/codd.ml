open Incdb_relational
open Incdb_graph

let fact_can_produce db (f : Idb.fact) (g : Cdb.fact) =
  f.Idb.rel = g.Cdb.rel
  && Array.length f.Idb.args = Array.length g.Cdb.args
  && begin
       (* A null repeated inside one fact must take one consistent value;
          in a Codd table repetition cannot happen, but handling it keeps
          the check sound on arbitrary single facts. *)
       let binding = Hashtbl.create 4 in
       let ok = ref true in
       Array.iteri
         (fun i t ->
           if !ok then
             match t with
             | Term.Const c -> if c <> g.Cdb.args.(i) then ok := false
             | Term.Null n ->
               let c = g.Cdb.args.(i) in
               (match Hashtbl.find_opt binding n with
               | Some c' -> if c <> c' then ok := false
               | None ->
                 if List.mem c (Idb.domain_of db n) then
                   Hashtbl.replace binding n c
                 else ok := false))
         f.Idb.args;
       !ok
     end

let is_completion db s =
  if not (Idb.is_codd db) then
    invalid_arg "Codd.is_completion: requires a Codd table";
  let dfacts = Array.of_list (Idb.facts db) in
  let sfacts = Array.of_list (Cdb.to_list s) in
  let nd = Array.length dfacts and ns = Array.length sfacts in
  (* Star check: every fact of D must be able to produce some fact of S,
     otherwise no valuation lands inside S at all. *)
  let producible i =
    Array.exists (fun g -> fact_can_produce db dfacts.(i) g) sfacts
  in
  let star_ok = Array.for_all producible (Array.init nd Fun.id) in
  star_ok
  &&
  (* Every fact of S must be matched by a distinct fact of D: maximum
     matching of the producibility graph must saturate S. *)
  let edges = ref [] in
  for i = 0 to nd - 1 do
    for j = 0 to ns - 1 do
      if fact_can_produce db dfacts.(i) sfacts.(j) then edges := (i, j) :: !edges
    done
  done;
  let b = Bipartite.make ~left:nd ~right:ns !edges in
  let size, _ = Matching.maximum_matching b in
  size = ns

(* ------------------------------------------------------------------ *)
(* Bitset completion kernel (the mask form of the Lemma B.2 test)      *)
(* ------------------------------------------------------------------ *)

type kernel = {
  masks : int array; (* per table fact: bitmask of its ground image in U *)
  producers : int array array; (* per universe bit: table facts producing it *)
  nd : int;
  (* Kuhn matching scratch, reused across calls (one kernel per domain). *)
  matched_bit : int array; (* per table fact: universe bit held, or -1 *)
  visit : int array; (* per table fact: stamp of the last augmenting pass *)
  touched : int array; (* facts assigned during the current call *)
  mutable ntouched : int;
  mutable clock : int;
}

let kernel db ~universe =
  if not (Idb.is_codd db) then invalid_arg "Codd.kernel: requires a Codd table";
  let m = Array.length universe in
  if m > Sys.int_size - 1 then
    invalid_arg "Codd.kernel: universe too large for one mask word";
  let dfacts = Array.of_list (Idb.facts db) in
  let nd = Array.length dfacts in
  let masks =
    Array.map
      (fun f ->
        let mask = ref 0 in
        Array.iteri
          (fun j g -> if fact_can_produce db f g then mask := !mask lor (1 lsl j))
          universe;
        !mask)
      dfacts
  in
  let producers =
    Array.init m (fun j ->
        let fs = ref [] in
        for i = nd - 1 downto 0 do
          if masks.(i) land (1 lsl j) <> 0 then fs := i :: !fs
        done;
        Array.of_list !fs)
  in
  {
    masks;
    producers;
    nd;
    matched_bit = Array.make nd (-1);
    visit = Array.make nd (-1);
    touched = Array.make nd 0;
    ntouched = 0;
    clock = 0;
  }

let kernel_masks k = k.masks
let kernel_size k = k.nd

(* Fresh matching scratch over the shared immutable precomputation, so
   sharded enumerations get one kernel per domain without re-deriving the
   ground-image masks. *)
let kernel_copy k =
  {
    k with
    matched_bit = Array.make k.nd (-1);
    visit = Array.make k.nd (-1);
    touched = Array.make k.nd 0;
    ntouched = 0;
    clock = 0;
  }

(* Kuhn's algorithm from the S side: every set bit of [mask] needs a
   distinct producing table fact.  Matching state is reset by undoing only
   the facts touched in this call, so a failed check costs what it
   explored, not O(nd). *)
let kernel_saturates k mask =
  let rec augment j =
    let ps = k.producers.(j) in
    let n = Array.length ps in
    let rec go i =
      if i = n then false
      else begin
        let f = Array.unsafe_get ps i in
        if k.visit.(f) = k.clock then go (i + 1)
        else begin
          k.visit.(f) <- k.clock;
          let prev = k.matched_bit.(f) in
          if prev = -1 || augment prev then begin
            if prev = -1 then begin
              k.touched.(k.ntouched) <- f;
              k.ntouched <- k.ntouched + 1
            end;
            k.matched_bit.(f) <- j;
            true
          end
          else go (i + 1)
        end
      end
    in
    go 0
  in
  let ok = ref true in
  let rest = ref mask in
  while !ok && !rest <> 0 do
    let j =
      (* index of the lowest set bit *)
      let b = !rest land - !rest in
      let rec log2 b acc = if b = 1 then acc else log2 (b lsr 1) (acc + 1) in
      log2 b 0
    in
    rest := !rest land (!rest - 1);
    k.clock <- k.clock + 1;
    if not (augment j) then ok := false
  done;
  for i = 0 to k.ntouched - 1 do
    k.matched_bit.(k.touched.(i)) <- -1
  done;
  k.ntouched <- 0;
  !ok

let kernel_is_completion k mask =
  (* Star check: every table fact must land somewhere inside the set. *)
  let rec star i =
    i = k.nd || (Array.unsafe_get k.masks i land mask <> 0 && star (i + 1))
  in
  star 0
  && (let rec pop m acc = if m = 0 then acc else pop (m land (m - 1)) (acc + 1) in
      pop mask 0 <= k.nd)
  && kernel_saturates k mask

(* ------------------------------------------------------------------ *)
(* The same kernel over an abstract mask representation                *)
(* ------------------------------------------------------------------ *)

module type KERNEL = sig
  type mask
  type t

  val make : Idb.t -> universe:Cdb.fact array -> t
  val masks : t -> mask array
  val size : t -> int
  val copy : t -> t
  val saturates : t -> mask -> bool
  val is_completion : t -> mask -> bool
end

module Kernel (M : Incdb_bignum.Bitset.MASK) = struct
  type mask = M.t

  type t = {
    masks : M.t array;
    producers : int array array;
    nd : int;
    matched_bit : int array;
    visit : int array;
    touched : int array;
    mutable ntouched : int;
    mutable clock : int;
  }

  let make db ~universe =
    if not (Idb.is_codd db) then
      invalid_arg "Codd.Kernel.make: requires a Codd table";
    let m = Array.length universe in
    if m > M.max_width then
      invalid_arg "Codd.Kernel.make: universe too large for this mask type";
    let dfacts = Array.of_list (Idb.facts db) in
    let nd = Array.length dfacts in
    let masks =
      Array.map
        (fun f ->
          let mask = ref (M.zero ~width:m) in
          Array.iteri
            (fun j g -> if fact_can_produce db f g then mask := M.set !mask j)
            universe;
          !mask)
        dfacts
    in
    let producers =
      Array.init m (fun j ->
          let fs = ref [] in
          for i = nd - 1 downto 0 do
            if M.test masks.(i) j then fs := i :: !fs
          done;
          Array.of_list !fs)
    in
    {
      masks;
      producers;
      nd;
      matched_bit = Array.make nd (-1);
      visit = Array.make nd (-1);
      touched = Array.make nd 0;
      ntouched = 0;
      clock = 0;
    }

  let masks k = k.masks
  let size k = k.nd

  let copy k =
    {
      k with
      matched_bit = Array.make k.nd (-1);
      visit = Array.make k.nd (-1);
      touched = Array.make k.nd 0;
      ntouched = 0;
      clock = 0;
    }

  exception Unsaturated

  (* Kuhn from the S side, identical to {!kernel_saturates}: the bits of
     [mask] are tried in ascending order ([M.iter]), and a failed
     augmenting pass aborts the whole check. *)
  let saturates k mask =
    let rec augment j =
      let ps = k.producers.(j) in
      let n = Array.length ps in
      let rec go i =
        if i = n then false
        else begin
          let f = Array.unsafe_get ps i in
          if k.visit.(f) = k.clock then go (i + 1)
          else begin
            k.visit.(f) <- k.clock;
            let prev = k.matched_bit.(f) in
            if prev = -1 || augment prev then begin
              if prev = -1 then begin
                k.touched.(k.ntouched) <- f;
                k.ntouched <- k.ntouched + 1
              end;
              k.matched_bit.(f) <- j;
              true
            end
            else go (i + 1)
          end
        end
      in
      go 0
    in
    let ok =
      match
        M.iter
          (fun j ->
            k.clock <- k.clock + 1;
            if not (augment j) then raise Unsaturated)
          mask
      with
      | () -> true
      | exception Unsaturated -> false
    in
    for i = 0 to k.ntouched - 1 do
      k.matched_bit.(k.touched.(i)) <- -1
    done;
    k.ntouched <- 0;
    ok

  let is_completion k mask =
    let rec star i =
      i = k.nd || ((not (M.disjoint (Array.unsafe_get k.masks i) mask)) && star (i + 1))
    in
    star 0 && M.popcount mask <= k.nd && saturates k mask
end

module Wide = Kernel (Incdb_bignum.Bitset.Wide)

let is_completion_naive db s =
  let sfacts = Array.of_list (Cdb.to_list s) in
  let nulls = Array.of_list (Idb.nulls db) in
  let k = Array.length nulls in
  let index = Hashtbl.create 8 in
  Array.iteri (fun i n -> Hashtbl.replace index n i) nulls;
  let assignment = Array.make k None in
  (* A fact can still land in [s] under the partial assignment when some
     s-fact agrees with every already-fixed position. *)
  let fact_alive (f : Idb.fact) =
    Array.exists
      (fun (g : Cdb.fact) ->
        f.Idb.rel = g.Cdb.rel
        && Array.length f.Idb.args = Array.length g.Cdb.args
        && begin
             let ok = ref true in
             Array.iteri
               (fun i t ->
                 if !ok then
                   match t with
                   | Term.Const c -> if c <> g.Cdb.args.(i) then ok := false
                   | Term.Null n -> (
                     match assignment.(Hashtbl.find index n) with
                     | Some c -> if c <> g.Cdb.args.(i) then ok := false
                     | None ->
                       if not (List.mem g.Cdb.args.(i) (Idb.domain_of db n))
                       then ok := false))
               f.Idb.args;
             !ok
           end)
      sfacts
  in
  let all_alive () = List.for_all fact_alive (Idb.facts db) in
  (* Every s-fact must be produced by some table fact under the final
     assignment; check at the leaves (coverage pruning mid-way would need
     per-fact bookkeeping that rarely pays off at these sizes). *)
  let covered () =
    let v =
      List.init k (fun i ->
          (nulls.(i), match assignment.(i) with Some c -> c | None -> assert false))
    in
    Cdb.equal (Idb.apply db v) s
  in
  let rec go i =
    if i = k then covered ()
    else
      List.exists
        (fun c ->
          assignment.(i) <- Some c;
          let feasible = all_alive () in
          let result = feasible && go (i + 1) in
          assignment.(i) <- None;
          result)
        (Idb.domain_of db nulls.(i))
  in
  if k = 0 then Cdb.equal (Idb.apply db []) s else all_alive () && go 0

let is_completion_brute ?limit db s =
  let found = ref false in
  Idb.iter_valuations ?limit db (fun v ->
      if (not !found) && Cdb.equal (Idb.apply db v) s then found := true);
  !found
