open Incdb_bignum
open Incdb_relational

type fact = { rel : string; args : Term.t array }

let fact rel args = { rel; args = Array.of_list args }

let fact_of_strings rel args =
  let term s =
    if String.length s > 0 && s.[0] = '?' then
      Term.null (String.sub s 1 (String.length s - 1))
    else Term.const s
  in
  fact rel (List.map term args)

let pp_fact fmt f =
  Format.fprintf fmt "%s(%s)" f.rel
    (String.concat "," (List.map Term.to_string (Array.to_list f.args)))

type domain_spec =
  | Nonuniform of (string * string list) list
  | Uniform of string list

module Smap = Map.Make (String)

type t = {
  facts : fact list;
  spec : domain_spec;
  doms : string list Smap.t; (* resolved domain of each null of the table *)
  null_order : string list;
}

let fact_nulls f =
  Array.to_list f.args
  |> List.filter_map (function Term.Null n -> Some n | Term.Const _ -> None)

let dedup_keep_order l =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.replace seen x ();
        true
      end)
    l

let check_domain name dom =
  if dom = [] then
    invalid_arg (Printf.sprintf "Idb.make: empty domain for null %s" name);
  if List.length (List.sort_uniq String.compare dom) <> List.length dom then
    invalid_arg (Printf.sprintf "Idb.make: duplicate values in domain of %s" name)

let make facts spec =
  let facts = dedup_keep_order facts in
  let null_order = dedup_keep_order (List.concat_map fact_nulls facts) in
  let doms =
    match spec with
    | Uniform dom ->
      check_domain "(uniform)" dom;
      List.fold_left (fun m n -> Smap.add n dom m) Smap.empty null_order
    | Nonuniform assoc ->
      let lookup n =
        match List.assoc_opt n assoc with
        | Some dom ->
          check_domain n dom;
          dom
        | None ->
          invalid_arg (Printf.sprintf "Idb.make: no domain for null %s" n)
      in
      List.fold_left (fun m n -> Smap.add n (lookup n) m) Smap.empty null_order
  in
  { facts; spec; doms; null_order }

let facts db = db.facts
let domain_spec db = db.spec
let is_uniform db = match db.spec with Uniform _ -> true | Nonuniform _ -> false
let nulls db = db.null_order

let table_constants db =
  dedup_keep_order
    (List.concat_map
       (fun f ->
         Array.to_list f.args
         |> List.filter_map (function Term.Const c -> Some c | Term.Null _ -> None))
       db.facts)

let domain_of db n =
  match Smap.find_opt n db.doms with
  | Some dom -> dom
  | None -> raise Not_found

let is_codd db =
  let seen = Hashtbl.create 16 in
  let fresh n =
    if Hashtbl.mem seen n then false
    else begin
      Hashtbl.replace seen n ();
      true
    end
  in
  List.for_all (fun f -> List.for_all fresh (fact_nulls f)) db.facts

let relations db = dedup_keep_order (List.map (fun f -> f.rel) db.facts)
let facts_of db rel = List.filter (fun f -> f.rel = rel) db.facts

type valuation = (string * string) list

let apply db v =
  let value n =
    match List.assoc_opt n v with
    | Some c ->
      if not (List.mem c (domain_of db n)) then
        invalid_arg
          (Printf.sprintf "Idb.apply: value %s outside domain of null %s" c n);
      c
    | None -> invalid_arg (Printf.sprintf "Idb.apply: null %s not valued" n)
  in
  let ground f =
    let arg = function Term.Const c -> c | Term.Null n -> value n in
    { Cdb.rel = f.rel; args = Array.map arg f.args }
  in
  Cdb.of_list (List.map ground db.facts)

let apply_bag db v =
  let value n =
    match List.assoc_opt n v with
    | Some c ->
      if not (List.mem c (domain_of db n)) then
        invalid_arg
          (Printf.sprintf "Idb.apply_bag: value %s outside domain of null %s" c n);
      c
    | None -> invalid_arg (Printf.sprintf "Idb.apply_bag: null %s not valued" n)
  in
  let ground f =
    let arg = function Term.Const c -> c | Term.Null n -> value n in
    { Cdb.rel = f.rel; args = Array.map arg f.args }
  in
  List.sort Cdb.compare_fact (List.map ground db.facts)

let total_valuations db =
  Nat.product
    (List.map (fun n -> Nat.of_int (List.length (domain_of db n))) db.null_order)

exception Too_many_valuations of { total : Nat.t; limit : int }

let () =
  Printexc.register_printer (function
    | Too_many_valuations { total; limit } ->
      Some
        (Printf.sprintf "Idb.Too_many_valuations { total = %s; limit = %d }"
           (Nat.to_string total) limit)
    | _ -> None)

let check_enumerable ~limit total =
  match Nat.to_int_opt total with
  | Some t when t <= limit -> ()
  | _ -> raise (Too_many_valuations { total; limit })

let iter_valuations_prefix ?(limit = 4_000_000) db ~prefix f =
  let names = Array.of_list db.null_order in
  let k = Array.length names in
  let p = List.length prefix in
  if p > k then
    invalid_arg "Idb.iter_valuations_prefix: prefix longer than the null list";
  List.iteri
    (fun i (n, c) ->
      if names.(i) <> n then
        invalid_arg
          (Printf.sprintf
             "Idb.iter_valuations_prefix: %s is not null #%d in table order" n i);
      if not (List.mem c (domain_of db n)) then
        invalid_arg
          (Printf.sprintf
             "Idb.iter_valuations_prefix: value %s outside domain of null %s" c
             n))
    prefix;
  (* The limit governs the iterated subspace: the free (non-prefix) nulls. *)
  check_enumerable ~limit
    (Nat.product
       (List.filteri (fun i _ -> i >= p) db.null_order
       |> List.map (fun n -> Nat.of_int (List.length (domain_of db n)))));
  let doms = Array.map (fun n -> Array.of_list (domain_of db n)) names in
  let current = Array.make k "" in
  List.iteri (fun i (_, c) -> current.(i) <- c) prefix;
  let rec go i =
    if i = k then
      f (List.init k (fun j -> (names.(j), current.(j))))
    else
      Array.iter
        (fun c ->
          current.(i) <- c;
          go (i + 1))
        doms.(i)
  in
  go p

let iter_valuations ?limit db f = iter_valuations_prefix ?limit db ~prefix:[] f

let restrict db rels =
  let facts = List.filter (fun f -> List.mem f.rel rels) db.facts in
  make facts db.spec

let map_table db f = make (f db.facts) db.spec

let pp fmt db =
  Format.fprintf fmt "@[<v>table:@,";
  List.iter (fun f -> Format.fprintf fmt "  %a@," pp_fact f) db.facts;
  (match db.spec with
  | Uniform dom ->
    Format.fprintf fmt "dom = {%s}@," (String.concat "," dom)
  | Nonuniform _ ->
    List.iter
      (fun n ->
        Format.fprintf fmt "dom(%s) = {%s}@,"
          (Term.to_string (Term.Null n))
          (String.concat "," (domain_of db n)))
      db.null_order);
  Format.fprintf fmt "@]"
