(** Completion membership for Codd tables (Lemma B.2).

    Given a Codd table [D] and a set [S] of ground facts, decide in
    polynomial time whether some valuation [v] of [D] has [v(D) = S].
    The test combines a per-fact realizability check with a maximum
    bipartite matching between the facts of [D] and the facts of [S];
    this is the engine behind membership of [#Comp_Cd(q)] in #P
    (Proposition B.1). *)

open Incdb_relational

(** [fact_can_produce db f g] decides whether the incomplete fact [f] has a
    valuation (within the null domains of [db]) yielding exactly the ground
    fact [g]. *)
val fact_can_produce : Idb.t -> Idb.fact -> Cdb.fact -> bool

(** [is_completion db s] decides whether [s] is a completion of [db].
    @raise Invalid_argument when [db] is not a Codd table (the matching
    argument is only sound for Codd tables; see the remark after
    Proposition 5.2 for why naïve tables resist this approach). *)
val is_completion : Idb.t -> Cdb.t -> bool

(** [is_completion_naive db s] decides completion membership for
    arbitrary (naïve) tables by backtracking over nulls with forward
    pruning: a partial assignment is abandoned as soon as some table fact
    can no longer land inside [s].  Exponential in the worst case — the
    remark after Proposition 5.2 explains why no matching-style
    polynomial test is known here — but far faster than full valuation
    enumeration in practice, and exact. *)
val is_completion_naive : Idb.t -> Cdb.t -> bool

(** [is_completion_brute db s] decides the same by enumerating valuations;
    works for naïve tables too but is exponential.  Test oracle. *)
val is_completion_brute : ?limit:int -> Idb.t -> Cdb.t -> bool
