(** Completion membership for Codd tables (Lemma B.2).

    Given a Codd table [D] and a set [S] of ground facts, decide in
    polynomial time whether some valuation [v] of [D] has [v(D) = S].
    The test combines a per-fact realizability check with a maximum
    bipartite matching between the facts of [D] and the facts of [S];
    this is the engine behind membership of [#Comp_Cd(q)] in #P
    (Proposition B.1). *)

open Incdb_relational

(** [fact_can_produce db f g] decides whether the incomplete fact [f] has a
    valuation (within the null domains of [db]) yielding exactly the ground
    fact [g]. *)
val fact_can_produce : Idb.t -> Idb.fact -> Cdb.fact -> bool

(** [is_completion db s] decides whether [s] is a completion of [db].
    @raise Invalid_argument when [db] is not a Codd table (the matching
    argument is only sound for Codd tables; see the remark after
    Proposition 5.2 for why naïve tables resist this approach). *)
val is_completion : Idb.t -> Cdb.t -> bool

(** {2 Bitset completion kernel}

    The mask form of the same Lemma B.2 test, for enumerations over a
    fixed ground-fact universe [U] (Proposition B.1's candidate space):
    candidate sets are bitmasks over [U], the per-fact realizability
    ("star") check is one [land] per table fact against its precomputed
    ground-image mask, and the saturating-matching check runs Kuhn's
    algorithm over precomputed producer lists with reusable scratch
    state — no per-candidate allocation.  One {!kernel} value holds
    mutable matching scratch: build one per domain when sharding. *)

type kernel

(** [kernel db ~universe] precomputes the ground-image masks and producer
    lists of the facts of [db] over [universe] (the bit of a universe
    fact is its array index).
    @raise Invalid_argument if [db] is not Codd or [universe] exceeds one
    mask word ([Sys.int_size - 1] facts). *)
val kernel : Idb.t -> universe:Cdb.fact array -> kernel

(** Per table fact (in [Idb.facts] order), the bitmask of the universe
    facts it can produce. *)
val kernel_masks : kernel -> int array

(** Number of table facts. *)
val kernel_size : kernel -> int

(** A kernel sharing the immutable precomputation but with fresh matching
    scratch — one per worker domain when sharding an enumeration. *)
val kernel_copy : kernel -> kernel

(** [kernel_is_completion k mask] decides whether the sub-universe
    selected by [mask] is a completion: the star check, a cardinality
    bound, then {!kernel_saturates}.  Agrees with {!is_completion} on the
    materialized set (property-tested). *)
val kernel_is_completion : kernel -> int -> bool

(** The matching half alone: every set bit of [mask] matched to a
    distinct producing table fact.  For callers (the candidate kernel)
    whose enumeration already maintains the star check incrementally. *)
val kernel_saturates : kernel -> int -> bool

(** {2 Mask-generic kernel}

    The same kernel over an abstract {!Incdb_bignum.Bitset.MASK}
    representation.  [Kernel (Bitset.Int)] is semantically the direct
    int kernel above (which stays as the fast path — its masks are
    unboxed); {!Wide} lifts the universe ceiling past one word.
    Matching order and scratch discipline are identical, so the two
    agree bit-for-bit wherever both apply. *)

module type KERNEL = sig
  type mask
  type t

  (** @raise Invalid_argument if the table is not Codd or the universe
      exceeds the mask representation. *)
  val make : Idb.t -> universe:Cdb.fact array -> t

  val masks : t -> mask array
  val size : t -> int
  val copy : t -> t
  val saturates : t -> mask -> bool
  val is_completion : t -> mask -> bool
end

module Kernel (M : Incdb_bignum.Bitset.MASK) : KERNEL with type mask = M.t
module Wide : KERNEL with type mask = Incdb_bignum.Bitset.Wide.t

(** [is_completion_naive db s] decides completion membership for
    arbitrary (naïve) tables by backtracking over nulls with forward
    pruning: a partial assignment is abandoned as soon as some table fact
    can no longer land inside [s].  Exponential in the worst case — the
    remark after Proposition 5.2 explains why no matching-style
    polynomial test is known here — but far faster than full valuation
    enumeration in practice, and exact. *)
val is_completion_naive : Idb.t -> Cdb.t -> bool

(** [is_completion_brute db s] decides the same by enumerating valuations;
    works for naïve tables too but is exponential.  Test oracle. *)
val is_completion_brute : ?limit:int -> Idb.t -> Cdb.t -> bool
