(** Incomplete databases (Section 2): a naïve table [T] over constants and
    nulls, together with a finite domain for every null.

    Two flavours of domain assignment are supported, matching the paper's
    non-uniform (each null carries its own domain, the default) and uniform
    (one shared domain) settings.  The table is kept under set semantics:
    duplicate incomplete facts are collapsed at construction. *)

open Incdb_bignum
open Incdb_relational

type fact = { rel : string; args : Term.t array }

val fact : string -> Term.t list -> fact

(** Shorthand: [fact_of_strings "R" ["a"; "?x"]] reads arguments starting
    with ['?'] as nulls and everything else as constants. *)
val fact_of_strings : string -> string list -> fact

val pp_fact : Format.formatter -> fact -> unit

type domain_spec =
  | Nonuniform of (string * string list) list
      (** domain of each null, keyed by null name *)
  | Uniform of string list  (** one domain shared by all nulls *)

type t

(** [make facts dom] builds an incomplete database.
    @raise Invalid_argument if some null of the table has no (or an empty)
    domain, or if a domain list contains duplicates. *)
val make : fact list -> domain_spec -> t

val facts : t -> fact list
val domain_spec : t -> domain_spec
val is_uniform : t -> bool

(** Nulls of the table, in order of first appearance. *)
val nulls : t -> string list

(** Constants appearing in the table (not the domains). *)
val table_constants : t -> string list

(** Domain of one null.
    @raise Not_found if the null does not occur in the table. *)
val domain_of : t -> string -> string list

(** Every null occurs at most once in the whole table (Codd condition). *)
val is_codd : t -> bool

(** Relation names of the table. *)
val relations : t -> string list

(** Facts of one relation. *)
val facts_of : t -> string -> fact list

(** A valuation: one constant per null of the table, within its domain. *)
type valuation = (string * string) list

(** [apply db v] is the completion [v(db)], with duplicate facts collapsed
    by set semantics.
    @raise Invalid_argument if [v] misses a null or picks a value outside
    its domain. *)
val apply : t -> valuation -> Cdb.t

(** [apply_bag db v] is the completion under {e bag semantics}: duplicate
    facts are kept (as a sorted list with multiplicities).  The paper
    works under set semantics and lists bag semantics as future work
    (Section 8); under bags, distinct valuations can still collide only
    when they permute nulls within identical facts. *)
val apply_bag : t -> valuation -> Cdb.fact list

(** Total number of valuations: the product of the domain sizes. *)
val total_valuations : t -> Nat.t

(** Raised by the exhaustive enumerators when the valuation space they
    would have to walk ([total]) exceeds the caller's [limit]. *)
exception Too_many_valuations of { total : Nat.t; limit : int }

(** [iter_valuations ?limit db f] enumerates every valuation.
    @raise Too_many_valuations if the total exceeds [limit]
    (default [4_000_000]). *)
val iter_valuations : ?limit:int -> t -> (valuation -> unit) -> unit

(** [iter_valuations_prefix ?limit db ~prefix f] enumerates the valuations
    whose first bindings (in [nulls db] order) are exactly [prefix] — the
    sharding primitive of the parallel brute-force engines.  The
    valuations passed to [f] have the same shape and relative order as
    those of {!iter_valuations}, so iterating every value of the first
    null as a one-binding prefix visits exactly the sequential stream,
    partitioned.  The [limit] is checked against the size of the iterated
    subspace (the free nulls).
    @raise Too_many_valuations if that subspace exceeds [limit].
    @raise Invalid_argument if [prefix] does not bind a prefix of
    [nulls db] in order, or binds a value outside a null's domain. *)
val iter_valuations_prefix :
  ?limit:int -> t -> prefix:valuation -> (valuation -> unit) -> unit

(** Restrict the table to the facts of the given relations, keeping the
    domain spec (used by the Lemma 3.3 / 4.1 pattern reductions). *)
val restrict : t -> string list -> t

(** [map_table db f] rebuilds the database with table [f (facts db)],
    keeping the domain spec. *)
val map_table : t -> (fact list -> fact list) -> t

val pp : Format.formatter -> t -> unit
