let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokenize s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

(* Parse "R(a, ?x)" into relation and argument strings. *)
let parse_fact lineno line =
  let fail msg = invalid_arg (Printf.sprintf "Idb_parser: line %d: %s" lineno msg) in
  match String.index_opt line '(' with
  | None -> fail "expected a fact like R(a, ?x)"
  | Some open_paren ->
    let rel = String.trim (String.sub line 0 open_paren) in
    if rel = "" then fail "empty relation name";
    (match String.rindex_opt line ')' with
    | None -> fail "missing closing parenthesis"
    | Some close_paren when close_paren < open_paren -> fail "mismatched parentheses"
    | Some close_paren ->
      let inner =
        String.sub line (open_paren + 1) (close_paren - open_paren - 1)
      in
      let args = String.split_on_char ',' inner |> List.map String.trim in
      if List.exists (fun a -> a = "") args then fail "empty argument";
      Idb.fact_of_strings rel args)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let uniform = ref None in
  let nonuniform = ref [] in
  let facts = ref [] in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim (strip_comment raw) in
      let fail msg =
        invalid_arg (Printf.sprintf "Idb_parser: line %d: %s" lineno msg)
      in
      if line <> "" then
        if String.length line >= 4 && String.sub line 0 4 = "dom " then begin
          match tokenize (String.sub line 4 (String.length line - 4)) with
          | [] -> fail "empty domain declaration"
          | first :: rest when String.length first > 0 && first.[0] = '?' ->
            let null = String.sub first 1 (String.length first - 1) in
            if rest = [] then fail "empty domain for null";
            if !uniform <> None then fail "mixing uniform and per-null domains";
            nonuniform := (null, rest) :: !nonuniform
          | values ->
            if !nonuniform <> [] then fail "mixing uniform and per-null domains";
            (match !uniform with
            | Some _ -> fail "duplicate uniform domain declaration"
            | None -> uniform := Some values)
        end
        else facts := parse_fact lineno line :: !facts)
    lines;
  let spec =
    match (!uniform, !nonuniform) with
    | Some dom, [] -> Idb.Uniform dom
    | None, assoc -> Idb.Nonuniform (List.rev assoc)
    | Some _, _ :: _ -> assert false
  in
  Idb.make (List.rev !facts) spec

let of_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s

let term_to_syntax = function
  | Term.Const c -> c
  | Term.Null n -> "?" ^ n

let to_string db =
  let buf = Buffer.create 256 in
  (match Idb.domain_spec db with
  | Idb.Uniform dom ->
    Buffer.add_string buf ("dom " ^ String.concat " " dom ^ "\n")
  | Idb.Nonuniform _ ->
    List.iter
      (fun n ->
        Buffer.add_string buf
          (Printf.sprintf "dom ?%s %s\n" n
             (String.concat " " (Idb.domain_of db n))))
      (Idb.nulls db));
  List.iter
    (fun (f : Idb.fact) ->
      Buffer.add_string buf
        (Printf.sprintf "%s(%s)\n" f.Idb.rel
           (String.concat ", "
              (List.map term_to_syntax (Array.to_list f.Idb.args)))))
    (Idb.facts db);
  Buffer.contents buf
