open Incdb_bignum
open Incdb_relational
open Incdb_cq

module Cdb_set = Set.Make (struct
  type t = Cdb.t

  let compare = Cdb.compare
end)

let count_valuations ?limit q db =
  let count = ref Nat.zero in
  let visit v = if Query.eval q (Idb.apply db v) then count := Nat.succ !count in
  Idb.iter_valuations ?limit db visit;
  !count

let fold_completions ?limit db =
  let acc = ref Cdb_set.empty in
  Idb.iter_valuations ?limit db (fun v -> acc := Cdb_set.add (Idb.apply db v) !acc);
  !acc

let count_completions ?limit q db =
  let sat = ref Cdb_set.empty in
  let visit v =
    let c = Idb.apply db v in
    if Query.eval q c then sat := Cdb_set.add c !sat
  in
  Idb.iter_valuations ?limit db visit;
  Nat.of_int (Cdb_set.cardinal !sat)

let completions ?limit db = Cdb_set.elements (fold_completions ?limit db)

let count_all_completions ?limit db =
  Nat.of_int (Cdb_set.cardinal (fold_completions ?limit db))

module Bag_set = Set.Make (struct
  type t = Cdb.fact list

  let compare = Stdlib.compare
end)

let count_all_completions_bag ?limit db =
  let acc = ref Bag_set.empty in
  Idb.iter_valuations ?limit db (fun v ->
      acc := Bag_set.add (Idb.apply_bag db v) !acc);
  Nat.of_int (Bag_set.cardinal !acc)

let count_completions_bag ?limit q db =
  let acc = ref Bag_set.empty in
  Idb.iter_valuations ?limit db (fun v ->
      let bag = Idb.apply_bag db v in
      if Query.eval q (Cdb.of_list bag) then acc := Bag_set.add bag !acc);
  Nat.of_int (Bag_set.cardinal !acc)

let satisfying_valuations ?limit q db =
  let acc = ref [] in
  let visit v = if Query.eval q (Idb.apply db v) then acc := v :: !acc in
  Idb.iter_valuations ?limit db visit;
  List.rev !acc
