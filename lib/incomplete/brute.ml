open Incdb_bignum
open Incdb_relational
open Incdb_cq

module Cdb_set = Set.Make (struct
  type t = Cdb.t

  let compare = Cdb.compare
end)

module Metrics = Incdb_obs.Metrics

(* Shared engine counters: how many valuations the brute-force oracles
   enumerated, and how many applied completions went through the
   set-semantics dedup.  Registered here so they always appear in
   metric exports, even at zero. *)
let valuations_visited = Metrics.counter "valuations_visited"
let completions_checked = Metrics.counter "completions_checked"

let count_valuations ?limit q db =
  let count = ref Nat.zero in
  let visit v =
    Metrics.incr valuations_visited;
    if Query.eval q (Idb.apply db v) then count := Nat.succ !count
  in
  Idb.iter_valuations ?limit db visit;
  !count

let fold_completions ?limit db =
  let acc = ref Cdb_set.empty in
  Idb.iter_valuations ?limit db (fun v ->
      Metrics.incr valuations_visited;
      Metrics.incr completions_checked;
      acc := Cdb_set.add (Idb.apply db v) !acc);
  !acc

let count_completions ?limit q db =
  let sat = ref Cdb_set.empty in
  let visit v =
    Metrics.incr valuations_visited;
    let c = Idb.apply db v in
    Metrics.incr completions_checked;
    if Query.eval q c then sat := Cdb_set.add c !sat
  in
  Idb.iter_valuations ?limit db visit;
  Nat.of_int (Cdb_set.cardinal !sat)

let completions ?limit db = Cdb_set.elements (fold_completions ?limit db)

let count_all_completions ?limit db =
  Nat.of_int (Cdb_set.cardinal (fold_completions ?limit db))

(* Bags are the sorted fact lists produced by [Idb.apply_bag]; compare
   them structurally through the Cdb fact order rather than with the
   polymorphic [Stdlib.compare], which is slower and breaks silently if
   the fact representation ever gains non-comparable fields. *)
module Bag_set = Set.Make (struct
  type t = Cdb.fact list

  let compare = List.compare Cdb.compare_fact
end)

let count_all_completions_bag ?limit db =
  let acc = ref Bag_set.empty in
  Idb.iter_valuations ?limit db (fun v ->
      Metrics.incr valuations_visited;
      Metrics.incr completions_checked;
      acc := Bag_set.add (Idb.apply_bag db v) !acc);
  Nat.of_int (Bag_set.cardinal !acc)

let count_completions_bag ?limit q db =
  let acc = ref Bag_set.empty in
  Idb.iter_valuations ?limit db (fun v ->
      Metrics.incr valuations_visited;
      Metrics.incr completions_checked;
      let bag = Idb.apply_bag db v in
      if Query.eval q (Cdb.of_list bag) then acc := Bag_set.add bag !acc);
  Nat.of_int (Bag_set.cardinal !acc)

let satisfying_valuations ?limit q db =
  let acc = ref [] in
  let visit v =
    Metrics.incr valuations_visited;
    if Query.eval q (Idb.apply db v) then acc := v :: !acc
  in
  Idb.iter_valuations ?limit db visit;
  List.rev !acc
