type t = Const of string | Null of string

let const c = Const c
let null n = Null n
let is_null = function Null _ -> true | Const _ -> false
let compare = Stdlib.compare
let equal = Stdlib.( = )
let to_string = function Const c -> c | Null n -> "\xe2\x8a\xa5" ^ n
let pp fmt t = Format.pp_print_string fmt (to_string t)
