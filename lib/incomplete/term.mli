(** Terms of a naïve table: constants from [Consts] or labeled nulls from
    [Nulls] (Section 2).  Constants and nulls live in disjoint namespaces;
    a null is written [⊥name] when printed. *)

type t = Const of string | Null of string

val const : string -> t
val null : string -> t
val is_null : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
