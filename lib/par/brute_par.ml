open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

module Cdb_set = Set.Make (struct
  type t = Incdb_relational.Cdb.t

  let compare = Incdb_relational.Cdb.compare
end)

module Trace = Incdb_obs.Trace
module Metrics = Incdb_obs.Metrics

(* The same engine counters the sequential oracles update ([Metrics.counter]
   returns the registered handle), so metric totals are engine-agnostic. *)
let valuations_visited = Metrics.counter "valuations_visited"
let completions_checked = Metrics.counter "completions_checked"
let shards_run = Metrics.counter "par.brute_shards"

let default_limit = 4_000_000

(* One shard per value of the first null; a no-null table is a single
   empty-prefix shard.  The global limit is checked up front so that the
   parallel engines accept and reject exactly the instances the
   sequential ones do. *)
let shards ~limit db =
  (match Nat.to_int_opt (Idb.total_valuations db) with
  | Some t when t <= limit -> ()
  | _ ->
    raise (Idb.Too_many_valuations { total = Idb.total_valuations db; limit }));
  match Idb.nulls db with
  | [] -> [ [] ]
  | first :: _ -> List.map (fun c -> [ (first, c) ]) (Idb.domain_of db first)

let shard_map ~limit ~jobs db shard_job =
  let tasks =
    List.map
      (fun prefix () ->
        Metrics.incr shards_run;
        shard_job prefix)
      (shards ~limit db)
  in
  Pool.run ~jobs tasks

let count_valuations ?(limit = default_limit) ?(jobs = 1) q db =
  let jobs = Pool.resolve jobs in
  if jobs <= 1 then Brute.count_valuations ~limit q db
  else
    Trace.with_span "brute_par.count_valuations" (fun () ->
        shard_map ~limit ~jobs db (fun prefix ->
            let count = ref Nat.zero in
            Idb.iter_valuations_prefix ~limit db ~prefix (fun v ->
                Metrics.incr valuations_visited;
                if Query.eval q (Idb.apply db v) then count := Nat.succ !count);
            !count)
        |> List.fold_left Nat.add Nat.zero)

let sat_completion_sets ~limit ~jobs q db =
  shard_map ~limit ~jobs db (fun prefix ->
      let acc = ref Cdb_set.empty in
      Idb.iter_valuations_prefix ~limit db ~prefix (fun v ->
          Metrics.incr valuations_visited;
          let c = Idb.apply db v in
          Metrics.incr completions_checked;
          match q with
          | Some q -> if Query.eval q c then acc := Cdb_set.add c !acc
          | None -> acc := Cdb_set.add c !acc);
      !acc)

let merged_completions ~limit ~jobs q db =
  List.fold_left Cdb_set.union Cdb_set.empty
    (sat_completion_sets ~limit ~jobs q db)

let count_completions ?(limit = default_limit) ?(jobs = 1) q db =
  let jobs = Pool.resolve jobs in
  if jobs <= 1 then Brute.count_completions ~limit q db
  else
    Trace.with_span "brute_par.count_completions" (fun () ->
        Nat.of_int (Cdb_set.cardinal (merged_completions ~limit ~jobs (Some q) db)))

let completions ?(limit = default_limit) ?(jobs = 1) db =
  let jobs = Pool.resolve jobs in
  if jobs <= 1 then Brute.completions ~limit db
  else
    Trace.with_span "brute_par.completions" (fun () ->
        Cdb_set.elements (merged_completions ~limit ~jobs None db))

let count_all_completions ?(limit = default_limit) ?(jobs = 1) db =
  let jobs = Pool.resolve jobs in
  if jobs <= 1 then Brute.count_all_completions ~limit db
  else
    Trace.with_span "brute_par.count_all_completions" (fun () ->
        Nat.of_int (Cdb_set.cardinal (merged_completions ~limit ~jobs None db)))
