(** Parallel Karp–Luby: the coverage estimator's sample loop fanned out
    across domains.

    The sample budget is split over a {e fixed} number of independent
    streams ({!streams}, independent of [jobs]); stream [s] draws its
    share of the samples from its own RNG, seeded splittably from
    [(seed, s)], and reports its canonical-coverage hit tally.  The
    merged estimate is [total_weight * (sum of hits) / samples] — the
    same statistic as [Karp_luby.estimate], so the FPRAS analysis and
    the confidence interval of [estimate_with_ci] carry over verbatim.

    Because the stream decomposition does not depend on [jobs], a fixed
    [(seed, samples)] pair yields a bit-identical estimate for every
    job count — the determinism guarantee the agreement tests assert.
    The estimate differs from the sequential [Karp_luby.estimate] for
    the same seed (a different sample stream), with identical
    statistical semantics.

    [jobs] defaults to [Pool.recommended ()]; pass [~jobs:1] to run the
    stream loop in the calling domain. *)

open Incdb_cq
open Incdb_incomplete

(** Number of independent sample streams the budget is split over. *)
val streams : int

(** Parallel analogue of [Karp_luby.estimate].
    @raise Invalid_argument on [samples <= 0] or a non-monotone query. *)
val estimate : ?jobs:int -> seed:int -> samples:int -> Query.t -> Idb.t -> float

(** Parallel analogue of [Karp_luby.estimate_with_ci]: the estimate and
    a 95% Wilson-score confidence half-width
    ([Karp_luby.wilson_half_width] scaled by the total event weight). *)
val estimate_with_ci :
  ?jobs:int -> seed:int -> samples:int -> Query.t -> Idb.t -> float * float
