open Incdb_approx

module Trace = Incdb_obs.Trace
module Metrics = Incdb_obs.Metrics
module Events = Incdb_obs.Events
module Log = Incdb_obs.Log

(* Shared with the sequential estimator: same counter names, same
   registered handles. *)
let samples_drawn = Metrics.counter "karp_luby.samples_drawn"
let coverage_hits = Metrics.counter "karp_luby.coverage_hits"
let streams_run = Metrics.counter "karp_luby.streams_run"
let running_estimate = Metrics.gauge "karp_luby.running_estimate"

(* Enough streams that any plausible domain count divides the work
   evenly, few enough that tiny sample budgets are not shredded. *)
let streams = 64

(* Hit tally of one stream: [count] samples from the RNG seeded by
   [(seed, stream)], through the compiled sampler ([Karp_luby.sample_hit]
   is read-only on the compiled events with per-call scratch, so one
   compiled value is safely shared by every worker domain). *)
let stream_hits ~seed ~stream ~count compiled =
  let st = Random.State.make [| seed; stream |] in
  let hits = ref 0 in
  for _ = 1 to count do
    Metrics.incr samples_drawn;
    if Karp_luby.sample_hit compiled st then begin
      Metrics.incr coverage_hits;
      incr hits
    end
  done;
  !hits

let run_estimator ?(jobs = 0) ~seed ~samples q db =
  if samples <= 0 then invalid_arg "Karp_luby_par.estimate: need positive samples";
  let jobs = Pool.resolve jobs in
  let compiled = Karp_luby.compile q db in
  if Karp_luby.compiled_size compiled = 0 then None
  else begin
    let total_weight = Karp_luby.compiled_total_weight compiled in
    let nstreams = min streams samples in
    (* Stream s draws ceil-or-floor of samples/nstreams so the counts sum
       to exactly [samples]; the split depends only on [samples], never on
       [jobs], which is what makes the estimate jobs-invariant. *)
    let tasks =
      List.init nstreams (fun s () ->
          Metrics.incr streams_run;
          let count =
            (samples / nstreams) + (if s < samples mod nstreams then 1 else 0)
          in
          Events.with_span "karp_luby.stream"
            ~args:[ ("stream", Events.Int s); ("count", Events.Int count) ]
            (fun () -> stream_hits ~seed ~stream:s ~count compiled))
    in
    let hits =
      Trace.with_span "karp_luby_par.sample" (fun () ->
          List.fold_left ( + ) 0 (Pool.run ~jobs tasks))
    in
    let rate = float_of_int hits /. float_of_int samples in
    Metrics.set running_estimate (total_weight *. rate);
    Log.debugf
      "karp_luby_par: %d events, %d streams, %d jobs, %d/%d canonical hits, \
       estimate %.6g"
      (Karp_luby.compiled_size compiled) nstreams jobs hits samples
      (total_weight *. rate);
    Some (total_weight, rate)
  end

let estimate ?jobs ~seed ~samples q db =
  Trace.with_span "karp_luby_par.estimate" (fun () ->
      match run_estimator ?jobs ~seed ~samples q db with
      | None -> 0.
      | Some (total_weight, rate) -> total_weight *. rate)

let estimate_with_ci ?jobs ~seed ~samples q db =
  Trace.with_span "karp_luby_par.estimate" (fun () ->
      match run_estimator ?jobs ~seed ~samples q db with
      | None -> (0., 0.)
      | Some (total_weight, rate) ->
        ( total_weight *. rate,
          total_weight *. Karp_luby.wilson_half_width ~samples rate ))
