(** A small one-shot domain pool for the parallel counting engines.

    [run ~jobs tasks] executes the thunks of [tasks] on up to [jobs]
    OCaml 5 domains and returns their results in task order.  The tasks
    form a dynamically chunked work queue: each claim on the shared
    atomic cursor takes half an even share of the remaining tasks
    (guided self-scheduling), so chunks start large — few atomic
    operations while the queue is full — and halve down to single tasks
    at the tail, which keeps skewed workloads (pruning-heavy mask
    shards, uneven conditioning branches) balanced without a
    jobs-dependent split.  Results are stored by task index, so counts
    and metric totals are independent of the claim schedule.  The
    calling domain participates as a worker, and [jobs = 1] runs
    everything sequentially in the current domain without spawning.

    Exceptions raised by tasks are captured with their backtraces; after
    every domain has been joined, the failure of the lowest-indexed
    failing task is re-raised in the caller.  Once a failure is
    recorded, workers stop claiming new chunks; a claimed chunk always
    runs to completion, and chunks are claimed in index order, so the
    lowest-indexed failing task is guaranteed to execute and win
    whatever the schedule.

    Everything the tasks touch must be domain-safe.  The engines built
    on this pool only mutate per-task accumulators plus the [Incdb_obs]
    registries, which are atomic / mutex-guarded by construction. *)

(** [Domain.recommended_domain_count ()]: what [jobs = 0] resolves to. *)
val recommended : unit -> int

(** Normalize a job-count request: [0] means {!recommended}, positive
    values are taken as-is.
    @raise Invalid_argument on a negative request. *)
val resolve : int -> int

(** Run the tasks and return their results in order.  [jobs] is resolved
    with {!resolve}, then clamped to the number of tasks. *)
val run : jobs:int -> (unit -> 'a) list -> 'a list
