(** A small one-shot domain pool for the parallel counting engines.

    [run ~jobs tasks] executes the thunks of [tasks] on up to [jobs]
    OCaml 5 domains and returns their results in task order.  The tasks
    form a chunked work queue (an atomic cursor over the task array), so
    shards of uneven cost balance automatically; the calling domain
    participates as a worker, so [jobs = 1] runs everything sequentially
    in the current domain without spawning.

    Exceptions raised by tasks are captured with their backtraces; after
    every domain has been joined, the failure of the lowest-indexed
    failing task is re-raised in the caller.  Once a failure is recorded,
    workers stop picking up new tasks (tasks already running finish).

    Everything the tasks touch must be domain-safe.  The engines built
    on this pool only mutate per-task accumulators plus the [Incdb_obs]
    registries, which are atomic / mutex-guarded by construction. *)

(** [Domain.recommended_domain_count ()]: what [jobs = 0] resolves to. *)
val recommended : unit -> int

(** Normalize a job-count request: [0] means {!recommended}, positive
    values are taken as-is.
    @raise Invalid_argument on a negative request. *)
val resolve : int -> int

(** Run the tasks and return their results in order.  [jobs] is resolved
    with {!resolve}, then clamped to the number of tasks. *)
val run : jobs:int -> (unit -> 'a) list -> 'a list
