module Metrics = Incdb_obs.Metrics
module Events = Incdb_obs.Events

(* Registered eagerly so the pool's activity always shows up in metric
   exports, at zero when nothing ran in parallel. *)
let tasks_run = Metrics.counter "par.tasks_run"
let domains_spawned = Metrics.counter "par.domains_spawned"
let chunks_claimed = Metrics.counter "par.chunks_claimed"

let recommended () = Domain.recommended_domain_count ()

let resolve jobs =
  if jobs < 0 then invalid_arg "Pool.resolve: negative job count"
  else if jobs = 0 then recommended ()
  else jobs

type failure = { index : int; exn : exn; bt : Printexc.raw_backtrace }

(* Keep the failure of the lowest-indexed failing task, so which
   exception the caller sees does not depend on domain scheduling. *)
let record_failure cell index exn bt =
  let rec go () =
    let cur = Atomic.get cell in
    match cur with
    | Some f when f.index <= index -> ()
    | _ ->
      if not (Atomic.compare_and_set cell cur (Some { index; exn; bt })) then
        go ()
  in
  go ()

let run ~jobs tasks =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  if n = 0 then []
  else begin
    let workers = max 1 (min (resolve jobs) n) in
    if workers = 1 then
      Array.to_list
        (Array.map
           (fun task ->
             Metrics.incr tasks_run;
             task ())
           tasks)
    else begin
      let results = Array.make n None in
      let failure : failure option Atomic.t = Atomic.make None in
      let next = Atomic.make 0 in
      (* Guided self-scheduling: each claim takes half an even share of
         the remaining tasks, so chunks start large (few atomic
         operations while the queue is full) and halve down to single
         tasks at the tail (no worker left holding a big chunk while the
         others idle).  The claim sequence — hence which worker runs
         which task — never affects results: they are stored by index. *)
      let claim () =
        let rec go () =
          let i = Atomic.get next in
          if i >= n then None
          else
            let chunk = max 1 ((n - i) / (2 * workers)) in
            let stop = min n (i + chunk) in
            if Atomic.compare_and_set next i stop then begin
              Metrics.incr chunks_claimed;
              Events.instant "pool.claim"
                ~args:[ ("lo", Events.Int i); ("hi", Events.Int stop) ];
              Some (i, stop)
            end
            else go ()
        in
        go ()
      in
      let worker () =
        let rec loop () =
          if Atomic.get failure = None then
            match claim () with
            | None -> ()
            | Some (lo, hi) ->
              (* A claimed chunk always runs to completion: chunks are
                 claimed in index order, so the lowest-indexed failing
                 task is guaranteed to execute and win the failure cell,
                 whatever the schedule. *)
              Events.with_span "pool.chunk"
                ~args:[ ("lo", Events.Int lo); ("hi", Events.Int hi) ]
                (fun () ->
                  for i = lo to hi - 1 do
                    match tasks.(i) () with
                    | r ->
                      Metrics.incr tasks_run;
                      results.(i) <- Some r
                    | exception exn ->
                      record_failure failure i exn
                        (Printexc.get_raw_backtrace ())
                  done);
              loop ()
        in
        (* One lane-covering span per worker: in the Chrome export each
           domain's lane shows the worker's lifetime with its claimed
           chunks nested inside, idle gaps visible between them. *)
        Events.with_span "pool.worker" loop
      in
      let spawned =
        List.init (workers - 1) (fun _ ->
            Metrics.incr domains_spawned;
            Domain.spawn worker)
      in
      worker ();
      List.iter Domain.join spawned;
      match Atomic.get failure with
      | Some { exn; bt; _ } -> Printexc.raise_with_backtrace exn bt
      | None ->
        Array.to_list
          (Array.map
             (function
               | Some r -> r
               (* Unreachable: every task either stored a result or
                  recorded the failure re-raised above. *)
               | None -> assert false)
             results)
    end
  end
