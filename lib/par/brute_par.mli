(** Sharded brute-force counting: the [Brute] oracles with the valuation
    space partitioned across domains.

    The shards are the values of the {e first} null in [Idb.nulls] order,
    each iterated with {!Idb.iter_valuations_prefix}; together the shards
    visit exactly the sequential enumeration stream, partitioned, so

    - [#Val] is the sum of per-shard counts,
    - [#Comp] merges per-shard completion sets with set union (the same
      completion can arise in several shards),

    and every result is bit-identical to the corresponding [Brute]
    function.  [jobs] defaults to [1], which delegates to [Brute]
    directly — the exact sequential code path; [jobs = 0] means
    [Pool.recommended ()].

    The enumeration limit is enforced on the {e whole} valuation space
    before any shard runs, exactly like the sequential oracles:
    @raise Idb.Too_many_valuations if the total exceeds [limit]. *)

open Incdb_bignum
open Incdb_relational
open Incdb_cq
open Incdb_incomplete

(** [#Val(q)(db)], sharded. *)
val count_valuations : ?limit:int -> ?jobs:int -> Query.t -> Idb.t -> Nat.t

(** [#Comp(q)(db)], sharded with set-union merge. *)
val count_completions : ?limit:int -> ?jobs:int -> Query.t -> Idb.t -> Nat.t

(** All distinct completions (sorted, as [Brute.completions]). *)
val completions : ?limit:int -> ?jobs:int -> Idb.t -> Cdb.t list

(** Number of distinct completions, satisfying a query or not. *)
val count_all_completions : ?limit:int -> ?jobs:int -> Idb.t -> Nat.t
