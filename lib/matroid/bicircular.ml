open Incdb_bignum
open Incdb_graph

let rank g sub = Pseudoforest.bicircular_rank (Graph.node_count g) sub

(* Exact rational exponentiation with non-negative machine exponent. *)
let qpow q e =
  let rec go acc e = if e = 0 then acc else go (Qnum.mul acc q) (e - 1) in
  go Qnum.one e

let tutte g x y =
  let es = Array.of_list (Graph.edges g) in
  let m = Array.length es in
  if m > 22 then invalid_arg "Bicircular.tutte: too many edges";
  let full_rank = rank g (Array.to_list es) in
  let x1 = Qnum.sub x Qnum.one and y1 = Qnum.sub y Qnum.one in
  let acc = ref Qnum.zero in
  for mask = 0 to (1 lsl m) - 1 do
    let sub =
      List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list es)
    in
    let r = rank g sub in
    let size = List.length sub in
    acc := Qnum.add !acc (Qnum.mul (qpow x1 (full_rank - r)) (qpow y1 (size - r)))
  done;
  !acc

let q_to_nat q =
  if not (Qnum.is_integer q) then failwith "Bicircular: expected an integer";
  Zint.to_nat (Qnum.to_zint q)

let count_independent_sets g =
  q_to_nat (tutte g (Qnum.of_int 2) Qnum.one)

let basis_count g = q_to_nat (tutte g Qnum.one Qnum.one)

let stretch_identity_holds g k =
  let stretched = Generators.k_stretch g k in
  let lhs = tutte stretched (Qnum.of_int 2) Qnum.one in
  let m = Graph.edge_count g in
  let rk_e = rank g (Graph.edges g) in
  let factor = qpow (Qnum.of_int ((1 lsl k) - 1)) (m - rk_e) in
  let rhs = Qnum.mul factor (tutte g (Qnum.of_int (1 lsl k)) Qnum.one) in
  Qnum.equal lhs rhs
