(** The bicircular matroid of a graph and its Tutte polynomial
    (Appendix B.5, Definitions B.6–B.11).

    The independent sets of [B(G)] are the edge subsets inducing
    pseudoforests; [T(B(G); 2, 1)] counts them ([#PF], Observation B.8).
    The #P-hardness of [#PF] on bipartite graphs follows from hardness of
    [T(B(G); 1, 1)] plus the Brylawski k-stretch identity
    [T(B(s_k(G)); 2, 1) = (2^k - 1)^(rank deficiency) · T(B(G); 2^k, 1)]
    evaluated at even stretches; this module makes all the ingredients
    executable so the identity can be checked numerically. *)

open Incdb_bignum
open Incdb_graph

(** Rank of an edge subset in [B(G)] (size of a largest pseudoforest
    sub-subset). *)
val rank : Graph.t -> (int * int) list -> int

(** [tutte g x y] evaluates the Tutte polynomial of [B(G)] exactly, by
    summing over all all 2^|E| edge subsets; restricted to small graphs.
    @raise Invalid_argument beyond 22 edges. *)
val tutte : Graph.t -> Qnum.t -> Qnum.t -> Qnum.t

(** [count_independent_sets g] is [T(B(G); 2, 1)], i.e. [#PF(G)]. *)
val count_independent_sets : Graph.t -> Nat.t

(** [basis_count g] is [T(B(G); 1, 1)], the number of maximum-size induced
    pseudoforests — the quantity that is #P-hard by Proposition B.10. *)
val basis_count : Graph.t -> Nat.t

(** [stretch_identity_holds g k] checks the Brylawski identity for the
    [k]-stretch of [g] numerically. *)
val stretch_identity_holds : Graph.t -> int -> bool
