(* One-line leveled logging to stderr.

   Disabled unless a level is set -- via [set_level] (the CLI --verbose
   flag does this) or the INCDB_LOG environment variable
   (error|warn|info|debug).  Messages carry the innermost open span
   path so log lines correlate with the trace tree. *)

type level = Error | Warn | Info | Debug

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3
let label = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let current : level option ref = ref None
let set_level l = current := l

let init_from_env () =
  match Sys.getenv_opt "INCDB_LOG" with
  | Some s -> (
    match level_of_string s with Some _ as l -> current := l | None -> ())
  | None -> ()

let () = init_from_env ()

let visible lvl =
  match !current with None -> false | Some l -> severity lvl <= severity l

let emit lvl msg =
  let where = match Trace.current_path () with None -> "" | Some p -> " " ^ p in
  Printf.eprintf "incdb[%s]%s: %s\n%!" (label lvl) where msg

let logf lvl fmt =
  if visible lvl then Printf.ksprintf (emit lvl) fmt
  else Printf.ikfprintf (fun () -> ()) () fmt

let errorf fmt = logf Error fmt
let warnf fmt = logf Warn fmt
let infof fmt = logf Info fmt
let debugf fmt = logf Debug fmt
