(* Flight recorder: per-domain timelines of individual events.

   Where {!Trace} aggregates span totals into a call tree, this module
   records *each* span begin/end and instant event with its timestamp
   (the same monotonic clock) and small key/value args, so a run can be
   replayed as a timeline — one lane per domain — in Perfetto or
   chrome://tracing via {!Chrome}.

   Each domain writes into its own fixed-capacity ring buffer, created
   lazily in domain-local storage on the first event, so recording is
   lock-free: no atomics beyond the {!Runtime.enabled} gate, no
   contention between pool workers.  The global registry of rings (read
   by [snapshot], written once per domain per generation) is the only
   mutex, and it is never taken on the recording path after a domain's
   first event.  On overflow the ring overwrites its oldest entry —
   newest events are kept, because the end of a run is where a
   post-mortem looks first — and every overwrite increments the exact
   [obs.events_dropped] counter (also available, reset-proof within a
   generation, as [dropped ()]).

   When observability is disabled every probe is one atomic load and a
   branch, like the rest of Incdb_obs. *)

type arg = Int of int | Str of string
type phase = Begin | End | Instant

type event = {
  ts : int; (* monotonic nanoseconds, Runtime.now_ns *)
  name : string;
  phase : phase;
  args : (string * arg) list;
}

let dummy = { ts = 0; name = ""; phase = Instant; args = [] }

type ring = {
  rdom : int; (* owning domain id: the timeline lane *)
  rgen : int; (* generation at creation; stale rings are dead *)
  buf : event array;
  mutable wrote : int; (* total events ever written to this ring *)
}

let dropped_counter = Metrics.counter "obs.events_dropped"

(* Bumped by [reset]: domain-local rings from before a reset identify
   themselves as stale and are re-created on the next event, so a reset
   never needs to reach into other domains' storage. *)
let generation = Atomic.make 0

let registry_lock = Mutex.create ()
let rings : ring list ref = ref []

let default_capacity = 65_536
let capacity = ref default_capacity

(* Applies to rings created afterwards; call [reset] to retire the
   current ones.  Tiny capacities are allowed (tests exercise the
   overflow policy with single-digit rings). *)
let set_capacity n =
  if n < 1 then invalid_arg "Events.set_capacity: capacity must be positive";
  capacity := n

let () =
  match Sys.getenv_opt "INCDB_EVENTS_CAP" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> capacity := n
    | _ -> ())
  | None -> ()

let ring_key : ring option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let my_ring () =
  let cell = Domain.DLS.get ring_key in
  let gen = Atomic.get generation in
  match !cell with
  | Some r when r.rgen = gen -> r
  | _ ->
    let r =
      {
        rdom = (Domain.self () :> int);
        rgen = gen;
        buf = Array.make !capacity dummy;
        wrote = 0;
      }
    in
    Mutex.protect registry_lock (fun () -> rings := r :: !rings);
    cell := Some r;
    r

let emit phase ?(args = []) name =
  if Runtime.enabled () then begin
    let r = my_ring () in
    let cap = Array.length r.buf in
    if r.wrote >= cap then Metrics.incr dropped_counter;
    r.buf.(r.wrote mod cap) <- { ts = Runtime.now_ns (); name; phase; args };
    r.wrote <- r.wrote + 1
  end

let instant ?args name = emit Instant ?args name

let with_span ?args name f =
  if not (Runtime.enabled ()) then f ()
  else begin
    emit Begin ?args name;
    Fun.protect ~finally:(fun () -> emit End name) f
  end

(* ------------------------------------------------------------------ *)
(* Reading the recorder                                                *)
(* ------------------------------------------------------------------ *)

let live_rings () =
  let gen = Atomic.get generation in
  Mutex.protect registry_lock (fun () ->
      List.filter (fun r -> r.rgen = gen) !rings)

(* Exact number of events lost to ring overflow since the last reset:
   each overwrite dropped exactly one event, so per ring it is
   [wrote - capacity] clamped at zero. *)
let dropped () =
  List.fold_left
    (fun acc r -> acc + max 0 (r.wrote - Array.length r.buf))
    0 (live_rings ())

(* One (domain id, events oldest-kept-first) lane per domain, sorted by
   domain id.  Reading a ring another domain is still writing is a
   benign race (slots are whole records, replaced atomically by the
   write barrier-free store); in practice exports run after the pool
   has joined its workers. *)
let snapshot () =
  live_rings ()
  |> List.map (fun r ->
         let cap = Array.length r.buf in
         let n = min r.wrote cap in
         let start = r.wrote - n in
         (r.rdom, List.init n (fun i -> r.buf.((start + i) mod cap))))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Retire every ring.  Safe while spans are open on any domain: open
   [with_span]s still emit their End into a *fresh* ring of the new
   generation, which at worst leaves one unmatched End at the head of a
   lane — the registry itself never corrupts. *)
let reset () =
  Atomic.incr generation;
  Mutex.protect registry_lock (fun () -> rings := [])
