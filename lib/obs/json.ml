(* Minimal JSON: a value type, a printer and a recursive-descent parser.

   The exporter needs a schema-stable serialization that bench/ and the
   obs-smoke validator can read back; no JSON library is vendored in the
   sealed container, so this is a from-scratch substrate (like
   incdb_bignum).  It supports exactly the JSON we emit: finite numbers,
   strings with standard escapes, arrays, objects. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else "null" (* nan/inf are not JSON; observability data degrades to null *)

let to_string ?(indent = 0) v =
  let buf = Buffer.create 256 in
  let pad n = if indent > 0 then Buffer.add_string buf (String.make n ' ') in
  let nl () = if indent > 0 then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_literal f)
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad ((depth + 1) * indent);
          go (depth + 1) item)
        items;
      nl ();
      pad (depth * indent);
      Buffer.add_char buf ']'
    | Assoc [] -> Buffer.add_string buf "{}"
    | Assoc fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad ((depth + 1) * indent);
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf (if indent > 0 then ": " else ":");
          go (depth + 1) item)
        fields;
      nl ();
      pad (depth * indent);
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          (* Encode the code point as UTF-8 (BMP only, which is all we
             ever emit). *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end;
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if tok = "" then fail "expected number";
    if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad float"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Assoc []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Assoc (fields [])
      end
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Assoc fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_list = function List l -> Some l | _ -> None
