(* Global observability switch and clock.

   Everything in Incdb_obs is gated on one atomic flag so that, when
   disabled (the default), instrumented hot paths pay a single atomic
   load and a branch per probe -- no allocation, no locking, no clock
   reads.  Enable programmatically (CLI flags do this) or by exporting
   INCDB_OBS=1. *)

let flag = Atomic.make false
let enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b

(* Wall time on the monotonic clock (CLOCK_MONOTONIC), in nanoseconds.
   The bechamel stub is the same clock the benchmark harness uses, so
   span timings and bechamel estimates are directly comparable. *)
let now_ns () = Int64.to_int (Monotonic_clock.now ())

let truthy = function
  | "1" | "true" | "on" | "yes" -> true
  | _ -> false

let init_from_env () =
  match Sys.getenv_opt "INCDB_OBS" with
  | Some v when truthy v -> set_enabled true
  | _ -> ()

let () = init_from_env ()
