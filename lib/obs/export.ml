(* Exporters: a human-readable summary table (stderr) and a
   schema-stable JSON document (consumed by bench/ and the obs-smoke
   validator).

   JSON schema (version 2):

     { "schema_version": 2,
       "spans":    [ { "name": str, "path": str, "calls": int,
                       "wall_ns": int, "children": [span...] } ... ],
       "counters": { name: int, ... },
       "gauges":   { name: float, ... },
       "histograms": {
         name: { "count": int, "sum": float,
                 "p50": float, "p90": float, "p99": float,
                 "buckets": [ { "le": float|null, "count": int } ... ] } } }

   Adding fields is allowed; renaming or removing them is a schema
   version bump.  Version 1 -> 2: histograms gained the "p50"/"p90"/
   "p99" percentile estimates (Metrics.percentile over the exponential
   buckets; 0.0 when the histogram is empty) — additive in spirit, but
   consumers that *require* the percentiles need the version gate, so
   the number moved. *)

type tree = { span : Trace.span; children : tree list }

(* Rebuild the call forest from the flat path-keyed registry. *)
let span_forest () =
  let spans = Trace.spans () in
  let children_of : (string, Trace.span list) Hashtbl.t = Hashtbl.create 32 in
  let roots = ref [] in
  List.iter
    (fun (s : Trace.span) ->
      match String.rindex_opt s.Trace.span_path '/' with
      | None -> roots := s :: !roots
      | Some i ->
        let parent = String.sub s.Trace.span_path 0 i in
        let cur = Option.value ~default:[] (Hashtbl.find_opt children_of parent) in
        Hashtbl.replace children_of parent (s :: cur))
    spans;
  let rec build (s : Trace.span) =
    let kids =
      Option.value ~default:[] (Hashtbl.find_opt children_of s.Trace.span_path)
    in
    { span = s; children = List.rev_map build kids |> List.rev }
  in
  List.rev_map build !roots |> List.rev

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let rec tree_to_json t =
  Json.Assoc
    [
      ("name", Json.String t.span.Trace.span_name);
      ("path", Json.String t.span.Trace.span_path);
      ("calls", Json.Int t.span.Trace.span_calls);
      ("wall_ns", Json.Int t.span.Trace.span_wall_ns);
      ("children", Json.List (List.map tree_to_json t.children));
    ]

let histogram_to_json (h : Metrics.histogram_snapshot) =
  Json.Assoc
    [
      ("count", Json.Int h.Metrics.count);
      ("sum", Json.Float h.Metrics.sum);
      ("p50", Json.Float (Metrics.percentile h 0.50));
      ("p90", Json.Float (Metrics.percentile h 0.90));
      ("p99", Json.Float (Metrics.percentile h 0.99));
      ( "buckets",
        Json.List
          (List.map
             (fun (le, c) ->
               Json.Assoc
                 [
                   ("le", if Float.is_finite le then Json.Float le else Json.Null);
                   ("count", Json.Int c);
                 ])
             h.Metrics.bucket_counts) );
    ]

let to_json () =
  Json.Assoc
    [
      ("schema_version", Json.Int 2);
      ("spans", Json.List (List.map tree_to_json (span_forest ())));
      ( "counters",
        Json.Assoc
          (List.map (fun (n, v) -> (n, Json.Int v)) (Metrics.counters_snapshot ()))
      );
      ( "gauges",
        Json.Assoc
          (List.map (fun (n, v) -> (n, Json.Float v)) (Metrics.gauges_snapshot ()))
      );
      ( "histograms",
        Json.Assoc
          (List.map
             (fun (n, h) -> (n, histogram_to_json h))
             (Metrics.histograms_snapshot ())) );
    ]

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~indent:2 (to_json ()));
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Human-readable table                                                *)
(* ------------------------------------------------------------------ *)

let pp_duration ns =
  let f = float_of_int ns in
  if ns < 1_000 then Printf.sprintf "%d ns" ns
  else if ns < 1_000_000 then Printf.sprintf "%.1f us" (f /. 1e3)
  else if ns < 1_000_000_000 then Printf.sprintf "%.2f ms" (f /. 1e6)
  else Printf.sprintf "%.3f s" (f /. 1e9)

let pp_summary oc =
  let forest = span_forest () in
  if forest <> [] then begin
    Printf.fprintf oc "== span tree (wall clock) ==\n";
    Printf.fprintf oc "  %-44s %8s %12s %12s\n" "span" "calls" "total" "mean";
    let rec print depth t =
      let s = t.span in
      let label = String.make (2 * depth) ' ' ^ s.Trace.span_name in
      Printf.fprintf oc "  %-44s %8d %12s %12s\n" label s.Trace.span_calls
        (pp_duration s.Trace.span_wall_ns)
        (pp_duration
           (if s.Trace.span_calls = 0 then 0
            else s.Trace.span_wall_ns / s.Trace.span_calls));
      List.iter (print (depth + 1)) t.children
    in
    List.iter (print 0) forest
  end;
  let counters = Metrics.counters_snapshot () in
  if counters <> [] then begin
    Printf.fprintf oc "== counters ==\n";
    List.iter (fun (n, v) -> Printf.fprintf oc "  %-44s %12d\n" n v) counters
  end;
  let gauges = Metrics.gauges_snapshot () in
  if gauges <> [] then begin
    Printf.fprintf oc "== gauges ==\n";
    List.iter (fun (n, v) -> Printf.fprintf oc "  %-44s %12g\n" n v) gauges
  end;
  let histograms = Metrics.histograms_snapshot () in
  if List.exists (fun (_, h) -> h.Metrics.count > 0) histograms then begin
    Printf.fprintf oc "== histograms ==\n";
    List.iter
      (fun (n, h) ->
        if h.Metrics.count > 0 then begin
          Printf.fprintf oc
            "  %-44s count %d, mean %s, p50 %s, p90 %s, p99 %s\n" n
            h.Metrics.count
            (pp_duration
               (int_of_float (h.Metrics.sum /. float_of_int h.Metrics.count)))
            (pp_duration (int_of_float (Metrics.percentile h 0.50)))
            (pp_duration (int_of_float (Metrics.percentile h 0.90)))
            (pp_duration (int_of_float (Metrics.percentile h 0.99)));
          List.iter
            (fun (le, c) ->
              if c > 0 then
                if Float.is_finite le then
                  Printf.fprintf oc "    <= %-10s %8d\n"
                    (pp_duration (int_of_float le))
                    c
                else Printf.fprintf oc "    overflow      %8d\n" c)
            h.Metrics.bucket_counts
        end)
      histograms
  end;
  flush oc

(* Zero every span, metric and recorded event; registrations survive.
   Safe while spans are open on any domain (see Trace.reset and
   Events.reset) — incdbd calls this between requests. *)
let reset () =
  Trace.reset ();
  Metrics.reset ();
  Events.reset ()

(* ------------------------------------------------------------------ *)
(* Cache lifecycle                                                     *)
(* ------------------------------------------------------------------ *)

(* Long-lived engine caches (the Classify verdict cache, and any other
   module-global memo a library layer grows) register a reset thunk
   here, so a persistent process can drop warm state without the obs
   layer depending on the engine modules above it.  Deliberately
   separate from {!reset}: metrics are zeroed per request in incdbd,
   caches only on an explicit lifecycle request — warm reuse across
   requests is the whole point of the server. *)

let cache_resets : (string * (unit -> unit)) list ref = ref []
let cache_resets_lock = Mutex.create ()

let register_cache_reset name thunk =
  Mutex.protect cache_resets_lock (fun () ->
      cache_resets := (name, thunk) :: List.remove_assoc name !cache_resets)

let registered_caches () =
  Mutex.protect cache_resets_lock (fun () -> List.map fst !cache_resets)

let reset_caches () =
  let thunks =
    Mutex.protect cache_resets_lock (fun () -> List.map snd !cache_resets)
  in
  List.iter (fun thunk -> thunk ()) thunks

(* Everything: metrics, spans, events and every registered cache. *)
let reset_all () =
  reset ();
  reset_caches ()
