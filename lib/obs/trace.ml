(* Nested wall-clock spans.

   [with_span name f] runs [f] and charges its wall time (monotonic
   clock) and one call to the span identified by the *path* of names
   from the outermost enclosing span down to [name] -- so the registry
   aggregates a call tree, not a flat list.  The current path lives in
   domain-local storage (each domain has its own stack; the shared
   registry is mutex-protected), and the time is recorded even when [f]
   raises, so partial phases of a failed count still show up.

   When observability is disabled, [with_span name f] is [f ()] plus an
   atomic load -- no clock read, no allocation. *)

type node = {
  path : string; (* "outer/inner", '/'-joined *)
  name : string;
  mutable calls : int;
  mutable wall_ns : int;
  order : int; (* first-seen sequence number, for stable display *)
}

let lock = Mutex.create ()
let nodes : (string, node) Hashtbl.t = Hashtbl.create 64
let seq = ref 0

(* Bumped by [reset].  The domain-local span stacks tag themselves with
   the generation they were built under: a stack from before a reset is
   stale, and treating it as live would graft every post-reset span
   onto parent paths that no longer exist in the registry (the exact
   corruption a mid-span reset used to cause).  Stale stacks are
   discarded lazily, on the next [with_span] in that domain, so [reset]
   never has to reach into other domains' storage. *)
let generation = Atomic.make 0

let stack_key : (int * string list) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (0, []))

let record path name dt =
  Mutex.protect lock (fun () ->
      let n =
        match Hashtbl.find_opt nodes path with
        | Some n -> n
        | None ->
          let n = { path; name; calls = 0; wall_ns = 0; order = !seq } in
          incr seq;
          Hashtbl.replace nodes path n;
          n
      in
      n.calls <- n.calls + 1;
      n.wall_ns <- n.wall_ns + dt)

let with_span name f =
  if not (Runtime.enabled ()) then f ()
  else begin
    let gen = Atomic.get generation in
    let sgen, stale = Domain.DLS.get stack_key in
    let parent = if sgen = gen then stale else [] in
    let path = match parent with [] -> name | p :: _ -> p ^ "/" ^ name in
    Domain.DLS.set stack_key (gen, path :: parent);
    let t0 = Runtime.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Runtime.now_ns () - t0 in
        Domain.DLS.set stack_key (gen, parent);
        (* A span that straddled a reset keeps the pre-reset registry's
           path; recording it would plant a stale root in the fresh
           registry, so it is dropped instead. *)
        if Atomic.get generation = gen then record path name dt)
      f
  end

(* The path of the innermost open span, for log correlation. *)
let current_path () =
  match Domain.DLS.get stack_key with
  | gen, p :: _ when gen = Atomic.get generation -> Some p
  | _ -> None

type span = { span_path : string; span_name : string; span_calls : int; span_wall_ns : int }

(* All recorded spans, outermost-first in first-seen order. *)
let spans () =
  let all =
    Mutex.protect lock (fun () -> Hashtbl.fold (fun _ n acc -> n :: acc) nodes [])
  in
  List.sort (fun a b -> compare a.order b.order) all
  |> List.map (fun n ->
         {
           span_path = n.path;
           span_name = n.name;
           span_calls = n.calls;
           span_wall_ns = n.wall_ns;
         })

let find path =
  Mutex.protect lock (fun () ->
      Option.map
        (fun n ->
          {
            span_path = n.path;
            span_name = n.name;
            span_calls = n.calls;
            span_wall_ns = n.wall_ns;
          })
        (Hashtbl.find_opt nodes path))

(* Safe while spans are open on any domain: the generation bump orphans
   every open span (it neither records nor parents anything afterwards)
   instead of letting it corrupt the fresh registry. *)
let reset () =
  Atomic.incr generation;
  Mutex.protect lock (fun () ->
      Hashtbl.reset nodes;
      seq := 0)
