(* Prometheus text-exposition formatter over the {!Metrics} and
   {!Trace} snapshots (exposition format version 0.0.4).

   Counters become `incdb_<name>_total`, gauges `incdb_<name>`, and
   histograms the standard `_bucket{le=...}` / `_sum` / `_count`
   triple with *cumulative* bucket counts (our snapshots store
   per-bucket counts).  Span aggregates are exposed as two metric
   families labelled by path: `incdb_span_calls_total{path="a/b"}` and
   `incdb_span_wall_ns_total{path="a/b"}`.  Metric names are sanitized
   to the Prometheus alphabet (dots become underscores).

   This is the payload a persistent `incdbd` serves from /metrics —
   writing it to a socket instead of a file is the only missing step. *)

let sanitize name =
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name
  in
  "incdb_" ^ mapped

(* Label values escape backslash, double quote and newline. *)
let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let float_literal f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" f

let to_string () =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun (name, v) ->
      let n = sanitize name ^ "_total" in
      line "# TYPE %s counter" n;
      line "%s %d" n v)
    (Metrics.counters_snapshot ());
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      line "# TYPE %s gauge" n;
      line "%s %s" n (float_literal v))
    (Metrics.gauges_snapshot ());
  List.iter
    (fun (name, (h : Metrics.histogram_snapshot)) ->
      let n = sanitize name in
      line "# TYPE %s histogram" n;
      let cum = ref 0 in
      List.iter
        (fun (le, c) ->
          cum := !cum + c;
          line "%s_bucket{le=\"%s\"} %d" n (float_literal le) !cum)
        h.Metrics.bucket_counts;
      line "%s_sum %s" n (float_literal h.Metrics.sum);
      line "%s_count %d" n h.Metrics.count)
    (Metrics.histograms_snapshot ());
  (match Trace.spans () with
  | [] -> ()
  | spans ->
    line "# TYPE incdb_span_calls_total counter";
    List.iter
      (fun (s : Trace.span) ->
        line "incdb_span_calls_total{path=\"%s\"} %d"
          (escape_label s.Trace.span_path)
          s.Trace.span_calls)
      spans;
    line "# TYPE incdb_span_wall_ns_total counter";
    List.iter
      (fun (s : Trace.span) ->
        line "incdb_span_wall_ns_total{path=\"%s\"} %d"
          (escape_label s.Trace.span_path)
          s.Trace.span_wall_ns)
      spans);
  Buffer.contents buf

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ()))
