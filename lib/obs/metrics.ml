(* Named counters, gauges and exponential-bucket histograms.

   Handles are registered eagerly at module-initialization time of the
   instrumented code (so every metric appears in exports, at zero, even
   if its code path never ran) and updated through the handle.  Updates
   are gated on Runtime.enabled: disabled probes cost one atomic load
   and a branch.  Counters use Atomic and are lock-free; gauges and
   histograms take a mutex (they are never on a per-valuation path). *)

type counter = { name : string; cell : int Atomic.t }
type gauge = { gname : string; gcell : float Atomic.t }

type histogram = {
  hname : string;
  lower : float; (* upper bound of the first bucket *)
  factor : float; (* bucket growth factor, > 1 *)
  hlock : Mutex.t;
  buckets : int array; (* last slot counts overflow beyond the top bound *)
  mutable hcount : int;
  mutable hsum : float;
}

let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

(* Registration order, so exports are stable and diffable. *)
let counter_order : string list ref = ref []
let gauge_order : string list ref = ref []
let histogram_order : string list ref = ref []

let counter name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = { name; cell = Atomic.make 0 } in
        Hashtbl.replace counters name c;
        counter_order := name :: !counter_order;
        c)

let incr ?(by = 1) c =
  if Runtime.enabled () then ignore (Atomic.fetch_and_add c.cell by)

let value c = Atomic.get c.cell

(* Like [counter]: register the handle eagerly at module-init time of
   the instrumented code, so the gauge appears in every export at zero
   even when its code path never ran — [set_gauge]'s historical
   lazy-and-only-while-enabled registration broke that contract. *)
let gauge gname =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt gauges gname with
      | Some g -> g
      | None ->
        let g = { gname; gcell = Atomic.make 0. } in
        Hashtbl.replace gauges gname g;
        gauge_order := gname :: !gauge_order;
        g)

let set g v = if Runtime.enabled () then Atomic.set g.gcell v
let gauge_read g = Atomic.get g.gcell

(* Convenience for one-off call sites: registers eagerly (even while
   disabled, honoring the every-metric-appears contract), but pays a
   registry lookup per call — hot paths should hold a [gauge] handle. *)
let set_gauge name v = set (gauge name) v

let gauge_value name =
  Mutex.protect lock (fun () ->
      Option.map (fun g -> Atomic.get g.gcell) (Hashtbl.find_opt gauges name))

(* Default latency buckets: 1 us doubling 24 times reaches ~8.4 s. *)
let histogram ?(lower = 1_000.) ?(factor = 2.) ?(nbuckets = 24) hname =
  if factor <= 1. then invalid_arg "Metrics.histogram: factor must exceed 1";
  if nbuckets < 1 then invalid_arg "Metrics.histogram: need at least one bucket";
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt histograms hname with
      | Some h -> h
      | None ->
        let h =
          {
            hname;
            lower;
            factor;
            hlock = Mutex.create ();
            buckets = Array.make (nbuckets + 1) 0;
            hcount = 0;
            hsum = 0.;
          }
        in
        Hashtbl.replace histograms hname h;
        histogram_order := hname :: !histogram_order;
        h)

let observe h v =
  if Runtime.enabled () then
    Mutex.protect h.hlock (fun () ->
        h.hcount <- h.hcount + 1;
        h.hsum <- h.hsum +. v;
        let top = Array.length h.buckets - 1 in
        let rec index i le =
          if i >= top then top
          else if v <= le then i
          else index (i + 1) (le *. h.factor)
        in
        let i = index 0 h.lower in
        h.buckets.(i) <- h.buckets.(i) + 1)

(* Time [f] on the monotonic clock and record the elapsed nanoseconds. *)
let time h f =
  if not (Runtime.enabled ()) then f ()
  else begin
    let t0 = Runtime.now_ns () in
    Fun.protect
      ~finally:(fun () -> observe h (float_of_int (Runtime.now_ns () - t0)))
      f
  end

let bucket_bound h i = h.lower *. (h.factor ** float_of_int i)

(* ------------------------------------------------------------------ *)
(* Snapshots (export order = registration order)                       *)
(* ------------------------------------------------------------------ *)

type histogram_snapshot = {
  count : int;
  sum : float;
  (* (inclusive upper bound, count); the final bound is infinity. *)
  bucket_counts : (float * int) list;
}

(* Estimate the [q]-quantile (q in [0,1]) from the exponential buckets
   by linear interpolation inside the bucket holding rank [q * count]:
   the classic Prometheus histogram_quantile estimate.  The first
   bucket interpolates from 0; observations in the overflow bucket
   degrade to the largest finite bound (the estimator cannot know how
   far beyond it they fell).  Returns 0 for an empty histogram. *)
let percentile (s : histogram_snapshot) q =
  if q < 0. || q > 1. then invalid_arg "Metrics.percentile: q outside [0,1]";
  if s.count = 0 then 0.
  else begin
    let rank = q *. float_of_int s.count in
    let rec go lo cum = function
      | [] -> lo
      | (le, c) :: rest ->
        let cum' = cum +. float_of_int c in
        if c > 0 && cum' >= rank then
          if Float.is_finite le then
            lo +. ((le -. lo) *. ((rank -. cum) /. float_of_int c))
          else lo
        else go (if Float.is_finite le then le else lo) cum' rest
    in
    go 0. 0. s.bucket_counts
  end

let counters_snapshot () =
  Mutex.protect lock (fun () ->
      List.rev_map
        (fun name -> (name, Atomic.get (Hashtbl.find counters name).cell))
        !counter_order)

let gauges_snapshot () =
  Mutex.protect lock (fun () ->
      List.rev_map
        (fun name -> (name, Atomic.get (Hashtbl.find gauges name).gcell))
        !gauge_order)

let histograms_snapshot () =
  let hs =
    Mutex.protect lock (fun () ->
        List.rev_map (fun name -> Hashtbl.find histograms name) !histogram_order)
  in
  List.map
    (fun h ->
      Mutex.protect h.hlock (fun () ->
          let top = Array.length h.buckets - 1 in
          let bucket_counts =
            List.init (top + 1) (fun i ->
                let le = if i = top then infinity else bucket_bound h i in
                (le, h.buckets.(i)))
          in
          (h.hname, { count = h.hcount; sum = h.hsum; bucket_counts })))
    hs

(* Zero every value but keep all registrations (handles stay valid). *)
let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.gcell 0.) gauges);
  Hashtbl.iter
    (fun _ h ->
      Mutex.protect h.hlock (fun () ->
          Array.fill h.buckets 0 (Array.length h.buckets) 0;
          h.hcount <- 0;
          h.hsum <- 0.))
    histograms
