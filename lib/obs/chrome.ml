(* Chrome trace_event exporter for the {!Events} flight recorder.

   Emits the JSON object form of the trace-event format — the subset
   understood by both Perfetto (ui.perfetto.dev) and chrome://tracing:

     { "traceEvents": [
         { "name": "process_name", "ph": "M", "pid": 1, "args": {...} },
         { "name": "thread_name",  "ph": "M", "pid": 1, "tid": 0, ... },
         { "name": "pool.chunk", "cat": "incdb", "ph": "B", "ts": 12.3,
           "pid": 1, "tid": 4, "args": { "lo": 0, "hi": 16 } },
         { ... "ph": "E" ... },
         { ... "ph": "i", "s": "t" ... } ],
       "displayTimeUnit": "ms" }

   One lane (tid) per OCaml domain, named "domain N"; timestamps are
   microseconds relative to the earliest recorded event, so traces from
   different runs line up at zero. *)

let phase_string = function
  | Events.Begin -> "B"
  | Events.End -> "E"
  | Events.Instant -> "i"

let arg_to_json = function
  | Events.Int i -> Json.Int i
  | Events.Str s -> Json.String s

let event_to_json ~base ~tid (e : Events.event) =
  let fields =
    [
      ("name", Json.String e.Events.name);
      ("cat", Json.String "incdb");
      ("ph", Json.String (phase_string e.Events.phase));
      ("ts", Json.Float (float_of_int (e.Events.ts - base) /. 1e3));
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
    ]
  in
  let fields =
    match e.Events.phase with
    | Events.Instant -> fields @ [ ("s", Json.String "t") ] (* thread scope *)
    | Events.Begin | Events.End -> fields
  in
  let fields =
    match e.Events.args with
    | [] -> fields
    | args ->
      fields
      @ [ ("args", Json.Assoc (List.map (fun (k, v) -> (k, arg_to_json v)) args)) ]
  in
  Json.Assoc fields

let metadata ~tid name value =
  Json.Assoc
    ([
       ("name", Json.String name);
       ("ph", Json.String "M");
       ("pid", Json.Int 1);
     ]
    @ (match tid with None -> [] | Some t -> [ ("tid", Json.Int t) ])
    @ [ ("args", Json.Assoc [ ("name", Json.String value) ]) ])

let to_json () =
  let lanes = Events.snapshot () in
  let base =
    List.fold_left
      (fun acc (_, evs) ->
        List.fold_left (fun a (e : Events.event) -> min a e.Events.ts) acc evs)
      max_int lanes
  in
  let base = if base = max_int then 0 else base in
  let meta =
    metadata ~tid:None "process_name" "idbcount"
    :: List.map
         (fun (dom, _) ->
           metadata ~tid:(Some dom) "thread_name"
             (Printf.sprintf "domain %d" dom))
         lanes
  in
  let events =
    List.concat_map
      (fun (dom, evs) -> List.map (event_to_json ~base ~tid:dom) evs)
      lanes
  in
  Json.Assoc
    [
      ("traceEvents", Json.List (meta @ events));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~indent:2 (to_json ()));
      output_char oc '\n')
