(** Boolean conjunctive queries (Section 2).

    A BCQ is a conjunction of relational atoms whose variables are all
    implicitly existentially quantified.  A self-join-free BCQ (sjfBCQ)
    uses every relation symbol at most once; the dichotomies of the paper
    are stated for this class. *)

open Incdb_relational

type atom = { rel : string; vars : string array }

(** A BCQ as its list of atoms. *)
type t = atom list

val atom : string -> string list -> atom

(** [make atoms] validates a BCQ: at least one atom, every atom with at
    least one variable (the standing assumptions of the paper).
    @raise Invalid_argument when violated. *)
val make : atom list -> t

(** [of_string s] parses the concrete syntax ["R(x,y), S(x)"] (commas or
    [∧]/[/\ ] between atoms).
    @raise Invalid_argument on a syntax error. *)
val of_string : string -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Relation symbols, in order of first appearance. *)
val relations : t -> string list

(** Distinct variables, in order of first appearance. *)
val variables : t -> string list

(** Is the query self-join-free (no repeated relation symbol)? *)
val is_self_join_free : t -> bool

(** Number of occurrences of a variable across the whole query. *)
val occurrences : t -> string -> int

(** [eval q db] decides [db |= q] by searching for a homomorphism from the
    atoms of [q] into the facts of [db]. *)
val eval : t -> Cdb.t -> bool

(** All homomorphisms from [q] to [db], as bindings from variables to
    constants.  Exposed for the Karp–Luby estimator (every satisfying
    valuation extends some homomorphism image). *)
val homomorphisms : t -> Cdb.t -> (string * string) list list

(** Well-known pattern queries from Table 1. *)

val q_rxx : t (* R(x,x) *)
val q_rx_sx : t (* R(x) ∧ S(x) *)
val q_rx_sxy_ty : t (* R(x) ∧ S(x,y) ∧ T(y) *)
val q_rxy_sxy : t (* R(x,y) ∧ S(x,y) *)
val q_rx : t (* R(x) *)
val q_rxy : t (* R(x,y) *)
