open Incdb_relational

type atom = { rel : string; vars : string array }
type t = atom list

let atom rel vars = { rel; vars = Array.of_list vars }

let make atoms =
  if atoms = [] then invalid_arg "Cq.make: a BCQ needs at least one atom";
  List.iter
    (fun a ->
      if Array.length a.vars = 0 then
        invalid_arg "Cq.make: every atom needs at least one variable")
    atoms;
  atoms

(* Concrete syntax: atoms [Name(v1,...,vk)] separated by a comma, a wedge
   symbol, or slash-backslash; whitespace is free. *)
let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = invalid_arg (Printf.sprintf "Cq.of_string: %s at %d" msg !pos) in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n') do
      incr pos
    done
  in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '\''
  in
  let ident () =
    let start = !pos in
    while !pos < n && is_ident s.[!pos] do incr pos done;
    if !pos = start then error "expected identifier";
    String.sub s start (!pos - start)
  in
  let expect c = if !pos < n && s.[!pos] = c then incr pos else error (Printf.sprintf "expected '%c'" c) in
  let parse_atom () =
    skip_ws ();
    let rel = ident () in
    skip_ws ();
    expect '(';
    let vars = ref [] in
    let rec more () =
      skip_ws ();
      vars := ident () :: !vars;
      skip_ws ();
      if !pos < n && s.[!pos] = ',' then begin
        incr pos;
        more ()
      end
    in
    more ();
    expect ')';
    { rel; vars = Array.of_list (List.rev !vars) }
  in
  let atoms = ref [] in
  let rec loop () =
    atoms := parse_atom () :: !atoms;
    skip_ws ();
    if !pos < n then begin
      (match s.[!pos] with
      | ',' -> incr pos
      | '/' ->
        incr pos;
        expect '\\'
      | '\xe2' ->
        (* UTF-8 for the wedge symbol. *)
        if !pos + 2 < n then pos := !pos + 3 else error "bad separator"
      | _ -> error "expected separator");
      loop ()
    end
  in
  loop ();
  make (List.rev !atoms)

let atom_to_string a =
  Printf.sprintf "%s(%s)" a.rel (String.concat "," (Array.to_list a.vars))

let to_string q = String.concat " ∧ " (List.map atom_to_string q)
let pp fmt q = Format.pp_print_string fmt (to_string q)

let dedup_keep_order l =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.replace seen x ();
        true
      end)
    l

let relations q = dedup_keep_order (List.map (fun a -> a.rel) q)

let variables q =
  dedup_keep_order (List.concat_map (fun a -> Array.to_list a.vars) q)

let is_self_join_free q = List.length (relations q) = List.length q

let occurrences q v =
  List.fold_left
    (fun acc a ->
      Array.fold_left (fun acc u -> if u = v then acc + 1 else acc) acc a.vars)
    0 q

(* Backtracking homomorphism search; [emit] receives each complete binding.
   Raises [Stop] from [emit] to terminate early. *)
exception Stop

let search q db emit =
  let rec go atoms binding =
    match atoms with
    | [] -> emit binding
    | a :: rest ->
      let try_fact (f : Cdb.fact) =
        if f.Cdb.rel = a.rel && Array.length f.Cdb.args = Array.length a.vars
        then begin
          (* Extend the binding if consistent with this fact. *)
          let rec extend i acc =
            if i = Array.length a.vars then Some acc
            else begin
              let v = a.vars.(i) and c = f.Cdb.args.(i) in
              match List.assoc_opt v acc with
              | Some c' -> if c = c' then extend (i + 1) acc else None
              | None -> extend (i + 1) ((v, c) :: acc)
            end
          in
          match extend 0 binding with
          | Some binding' -> go rest binding'
          | None -> ()
        end
      in
      List.iter try_fact (Cdb.facts_of db a.rel)
  in
  go q []

let eval q db =
  try
    search q db (fun _ -> raise Stop);
    false
  with Stop -> true

let homomorphisms q db =
  let vars = variables q in
  let acc = ref [] in
  search q db (fun binding ->
      let canonical = List.map (fun v -> (v, List.assoc v binding)) vars in
      acc := canonical :: !acc);
  dedup_keep_order !acc

let q_rxx = make [ atom "R" [ "x"; "x" ] ]
let q_rx_sx = make [ atom "R" [ "x" ]; atom "S" [ "x" ] ]

let q_rx_sxy_ty =
  make [ atom "R" [ "x" ]; atom "S" [ "x"; "y" ]; atom "T" [ "y" ] ]

let q_rxy_sxy = make [ atom "R" [ "x"; "y" ]; atom "S" [ "x"; "y" ] ]
let q_rx = make [ atom "R" [ "x" ] ]
let q_rxy = make [ atom "R" [ "x"; "y" ] ]
