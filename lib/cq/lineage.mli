(** Query lineage compiled to bitmask DNF.

    In the probabilistic-database tradition (and the Kenig–Suciu model
    counting line of work), counting over uncertain data reduces to a
    Boolean formula over ground tuples.  For a monotone query [q] and a
    finite universe [U] of ground facts, the {e lineage} of [q] over [U]
    is the DNF whose clauses are the footprints of the homomorphisms of
    [q] into [U]: a sub-database [S ⊆ U] satisfies [q] iff [S] contains
    some footprint.  With [|U| <= Sys.int_size - 1], every clause — and
    every candidate [S] — is a single OCaml int, and query evaluation
    inside an enumeration over subsets of [U] becomes "some clause mask
    is a subset of the candidate mask": pure word operations, no
    allocation.  This is the evaluation kernel behind
    [Comp_candidates.count]'s candidate-space enumeration.

    The module lives in [incdb_cq] (not [incdb_core]) because the
    compiler only needs [Query] and [Cdb], and the approximation layer
    ([Karp_luby]) sits below [incdb_core] in the dependency order yet
    reuses the slot-assignment helpers for its event compilation. *)

open Incdb_relational

(** Largest universe a single-word clause mask can represent
    ([Sys.int_size - 1]); the {!Wide} instantiation has no such bound. *)
val max_universe : int

(** Raised by {!conflict_masks} when the clause set exceeds one mask
    word; carries the actual clause count, mirroring the other typed
    limits ([Too_many_valuations]/[Too_many_candidates]) so the CLI can
    report it uniformly. *)
exception Too_many_clauses of { clauses : int; limit : int }

(** A compiled lineage: minimal DNF clauses over fact-id bits, with an
    outer negation flag (so [Not q] compiles when [q] does). *)
type t

(** Number of (minimal, deduplicated) clauses. *)
val clause_count : t -> int

(** Whether the compiled query is evaluated as the negation of the DNF. *)
val is_negated : t -> bool

(** The minimal clause masks themselves, for enumerators that maintain
    per-clause state incrementally (do not mutate). *)
val clauses : t -> int array

(** [compile q universe] compiles [q]'s satisfaction over sub-databases
    of [universe].  Returns [None] when the query cannot be compiled to a
    mask DNF: opaque [Semantic] queries, or a universe too large for one
    machine word.  [Not] recurses with the negation flag flipped, so any
    (iterated) negation of a compilable query compiles. *)
val compile : Query.t -> Cdb.fact array -> t option

(** [sat l mask] decides whether the sub-database of the universe selected
    by [mask] satisfies the compiled query.  Semantically equal to
    [Query.eval q (facts selected by mask)] — property-tested against it. *)
val sat : t -> int -> bool

(** [dnf_sat clauses mask] is the positive-DNF core of {!sat}: some clause
    is a subset of [mask]. *)
val dnf_sat : int array -> int -> bool

(** Number of set bits. *)
val popcount : int -> int

(** {2 Slot-assignment clauses}

    The valuation-space face of the same compilation: a clause fixes
    values for a set of {e slots} (null indices), given as an array of
    [(slot, value)] pairs sorted by slot.  [Karp_luby] compiles its
    union-of-events representation this way — one clause per match
    candidate — so the per-sample coverage test and the
    inclusion–exclusion subset merge run on ints instead of re-matching
    association lists. *)

(** Per-clause bitmask of the slots it fixes. *)
val fixed_masks : (int * int) array array -> int array

(** [compatible a b]: no slot assigned different values (both sorted). *)
val compatible : (int * int) array -> (int * int) array -> bool

(** [conflict_masks fixes]: for each clause, the bitmask of clauses it
    conflicts with (some shared slot assigned differently).  A set of
    clauses is jointly mergeable iff it is pairwise conflict-free, which
    makes subset validity an incremental one-word test.
    @raise Too_many_clauses with more than {!max_universe} clauses. *)
val conflict_masks : (int * int) array array -> int array

(** [fixes_subset a b]: every pair of [a] occurs in [b] (both sorted by
    slot).  In a disjunction of slot clauses, [a] then subsumes [b]. *)
val fixes_subset : (int * int) array -> (int * int) array -> bool

(** Minimal, deduplicated form of a disjunction of slot clauses: clauses
    subsumed by a (sub)clause are dropped — the slot-assignment analogue
    of the bitmask {!clauses} minimization.  An empty clause (matches
    everything) collapses the result to [[| [||] |]]. *)
val minimal_fixes : (int * int) array array -> (int * int) array array

(** The distinct slots fixed by any clause, sorted ascending. *)
val fixes_slots : (int * int) array array -> int array

(** [condition_fixes fixes ~slot ~value] restricts the disjunction to the
    assignments with [slot = value]: clauses fixing [slot] to another
    value are dropped (they can no longer match), clauses fixing
    [slot = value] lose that pair.  [None] means some clause became empty
    — every assignment of the restricted space matches the disjunction. *)
val condition_fixes :
  (int * int) array array ->
  slot:int ->
  value:int ->
  (int * int) array array option

(** Clauses not mentioning [slot] — the residual disjunction seen by the
    assignments whose value at [slot] appears in no clause. *)
val drop_slot_fixes : (int * int) array array -> slot:int -> (int * int) array array

(** [canonical_fixes fixes ~dom] is the canonical form of the
    disjunction, for keying a subproblem cache: slots renamed to dense
    ids by first occurrence, each slot's values renamed to dense ids by
    first occurrence, clauses re-sorted, paired with the per-canonical-
    slot domain sizes ([dom] maps an original slot to its domain size).
    Subproblems with equal canonical forms have equal avoidance counts
    (the renaming composes a slot bijection with per-slot value
    bijections); the first-occurrence scan is order-sensitive, so the
    converse may fail — missed sharing, never wrong sharing.  Input
    clauses must be slot-sorted, as produced by {!minimal_fixes}. *)
val canonical_fixes :
  (int * int) array array ->
  dom:(int -> int) ->
  (int * int) array array * int array

(** {2 Mask-generic compilation}

    The same compiler over an abstract {!Incdb_bignum.Bitset.MASK}
    representation.  [Make (Bitset.Int)] is semantically the single-word
    compiler above (which stays in its direct int form as the fast
    path); {!Wide} lifts the universe ceiling past [max_universe] with
    multi-word masks.  Clause order, subsumption minimization, and
    satisfaction are identical across instantiations — the enumerator
    agreement tests check counts {e and} metrics bit-for-bit. *)

module type MASKED = sig
  type mask
  type lineage

  val clause_count : lineage -> int
  val is_negated : lineage -> bool
  val clauses : lineage -> mask array

  (** Like the single-word [compile]: [None] on [Semantic] queries or a
      universe beyond the representation ([Wide] never hits that). *)
  val compile : Query.t -> Cdb.fact array -> lineage option

  val sat : lineage -> mask -> bool
  val dnf_sat : mask array -> mask -> bool

  (** Per-clause mask of fixed slots, over [width] slots — the
      mask-generic {!fixed_masks}. *)
  val fixed_masks : width:int -> (int * int) array array -> mask array
end

module Make (M : Incdb_bignum.Bitset.MASK) : MASKED with type mask = M.t
module Wide : MASKED with type mask = Incdb_bignum.Bitset.Wide.t
