(** The pattern relation between sjfBCQs (Definition 3.1).

    [q'] is a pattern of [q] when [q'] can be obtained from [q] by deleting
    atoms, deleting variable occurrences (never all occurrences within an
    atom), renaming relations or variables to fresh ones, and reordering
    variables inside atoms.  By Lemmas 3.3 and 4.1, the counting problems
    for [q] are at least as hard as for any of its patterns; Table 1 is
    phrased entirely in terms of forbidden patterns.

    Because renamings only go to {e fresh} names, the relation reduces to
    the existence of an injective map from the atoms of [q'] to the atoms
    of [q] together with an injective map from the variables of [q'] to the
    variables of [q], such that inside each mapped atom the pattern's
    variable occurrences embed injectively into occurrences of their image
    variables. *)

(** A witness that [q'] is a pattern of [q]: for each atom of [q'] (in
    order), the index of its image atom in [q] and, for every position of
    the image atom, either [Some p] (this occurrence survives as position
    [p] of the pattern atom) or [None] (this occurrence was deleted). *)
type embedding = { atom_images : (int * int option array) list }

(** [find_embedding q' q] returns a witness embedding if [q'] is a pattern
    of [q]. *)
val find_embedding : Cq.t -> Cq.t -> embedding option

(** [is_pattern_of q' q] decides whether [q'] is a pattern of [q]. *)
val is_pattern_of : Cq.t -> Cq.t -> bool

(** [first_hard_pattern patterns q] returns the first element of
    [patterns] that is a pattern of [q], if any. *)
val first_hard_pattern : Cq.t list -> Cq.t -> Cq.t option

(** Convenient checks for the Table 1 patterns. *)

(** Some atom repeats a variable. *)
val has_rxx : Cq.t -> bool

(** Two distinct atoms share a variable. *)
val has_rx_sx : Cq.t -> bool

(** The path pattern [R(x) ∧ S(x,y) ∧ T(y)]. *)
val has_rx_sxy_ty : Cq.t -> bool

(** Two atoms share two distinct variables. *)
val has_rxy_sxy : Cq.t -> bool

(** Some atom has two occurrences of distinct variables. *)
val has_rxy : Cq.t -> bool
