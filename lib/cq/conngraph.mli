(** The connectivity graph of an sjfBCQ (Definition A.9) and the Lemma A.11
    shape criterion used by the tractable side of Theorem 3.9. *)

type component = { atoms : Cq.atom list; shared_var : string option }

(** Variables shared by two atoms, sorted. *)
val shared_vars : Cq.atom -> Cq.atom -> string list

(** Connected components of the connectivity graph. *)
val components : Cq.t -> component list

(** Lemma A.11 criterion: the component is a clique and all its edges are
    labeled by one single common variable (vacuously true for singleton
    components). *)
val component_is_single_variable_clique : component -> bool
