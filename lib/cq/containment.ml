open Incdb_relational

let freeze v = "\xc2\xa7" ^ v (* variables become tagged constants *)

let canonical_database (q : Cq.t) =
  Cdb.of_list
    (List.map
       (fun (a : Cq.atom) ->
         { Cdb.rel = a.Cq.rel; args = Array.map freeze a.Cq.vars })
       q)

(* Homomorphism theorem: q ⊑ q' iff q' has a homomorphism into the
   canonical database of q. *)
let contained q q' = Cq.eval q' (canonical_database q)

let equivalent q q' = contained q q' && contained q' q

let minimize q =
  (* Greedily drop atoms that keep the query equivalent.  A dropped atom
     must leave at least one atom standing. *)
  let rec shrink kept remaining =
    match remaining with
    | [] -> List.rev kept
    | a :: rest ->
      let candidate = List.rev_append kept rest in
      if candidate <> [] && equivalent q candidate then shrink kept rest
      else shrink (a :: kept) rest
  in
  shrink [] q
