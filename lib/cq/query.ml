open Incdb_relational

type t =
  | Bcq of Cq.t
  | Union of Cq.t list
  | Bcq_neq of Cq.t * (string * string) list
  | Not of t
  | Semantic of semantic

and semantic = { name : string; monotone : bool; sem_eval : Cdb.t -> bool }

let eval_neq cq pairs db =
  List.exists
    (fun h ->
      List.for_all (fun (x, y) -> List.assoc x h <> List.assoc y h) pairs)
    (Cq.homomorphisms cq db)

let rec eval q db =
  match q with
  | Bcq cq -> Cq.eval cq db
  | Union cqs -> List.exists (fun cq -> Cq.eval cq db) cqs
  | Bcq_neq (cq, pairs) -> eval_neq cq pairs db
  | Not q -> not (eval q db)
  | Semantic s -> s.sem_eval db

let rec relations = function
  | Bcq cq | Bcq_neq (cq, _) -> Cq.relations cq
  | Union cqs ->
    List.sort_uniq String.compare (List.concat_map Cq.relations cqs)
  | Not q -> relations q
  | Semantic _ -> []

let is_monotone = function
  | Bcq _ | Union _ | Bcq_neq _ -> true
  | Not _ -> false
  | Semantic s -> s.monotone

let rec to_string = function
  | Bcq cq -> Cq.to_string cq
  | Union cqs ->
    String.concat " ∨ " (List.map (fun c -> "(" ^ Cq.to_string c ^ ")") cqs)
  | Bcq_neq (cq, pairs) ->
    Cq.to_string cq ^ " ∧ "
    ^ String.concat " ∧ "
        (List.map (fun (x, y) -> x ^ " ≠ " ^ y) pairs)
  | Not q -> "¬(" ^ to_string q ^ ")"
  | Semantic s -> s.name

let pp fmt q = Format.pp_print_string fmt (to_string q)
