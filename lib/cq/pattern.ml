type embedding = { atom_images : (int * int option array) list }

(* Match one pattern atom [a'] against one target atom [a] under the
   global injective variable map [tau] (pattern var -> target var):
   injectively assign every position of [a'] to a position of [a] carrying
   the image variable.  Returns all (tau', position_map) extensions, where
   [position_map.(target_pos) = Some pattern_pos] for surviving
   occurrences. *)
let atom_matches tau (a' : Cq.atom) (a : Cq.atom) =
  let k' = Array.length a'.Cq.vars and k = Array.length a.Cq.vars in
  if k' > k then []
  else begin
    let results = ref [] in
    (* used.(j) = pattern position occupying target position j, or -1. *)
    let used = Array.make k (-1) in
    let rec go i tau =
      if i = k' then begin
        let posmap =
          Array.init k (fun j -> if used.(j) >= 0 then Some used.(j) else None)
        in
        results := (tau, posmap) :: !results
      end else begin
        let v' = a'.Cq.vars.(i) in
        for j = 0 to k - 1 do
          if used.(j) < 0 then begin
            let v = a.Cq.vars.(j) in
            let compatible =
              match List.assoc_opt v' tau with
              | Some w -> w = v
              | None -> not (List.exists (fun (_, w) -> w = v) tau)
            in
            if compatible then begin
              let tau' =
                if List.mem_assoc v' tau then tau else (v', v) :: tau
              in
              used.(j) <- i;
              go (i + 1) tau';
              used.(j) <- -1
            end
          end
        done
      end
    in
    go 0 tau;
    !results
  end

let find_embedding q' q =
  let target_atoms = Array.of_list q in
  let nt = Array.length target_atoms in
  let pattern_atoms = Array.of_list q' in
  let np = Array.length pattern_atoms in
  let found = ref None in
  let rec place i used tau images =
    if !found <> None then ()
    else if i = np then found := Some { atom_images = List.rev images }
    else
      for t = 0 to nt - 1 do
        if !found = None && not (List.mem t used) then begin
          let extensions = atom_matches tau pattern_atoms.(i) target_atoms.(t) in
          List.iter
            (fun (tau', posmap) ->
              if !found = None then
                place (i + 1) (t :: used) tau' ((t, posmap) :: images))
            extensions
        end
      done
  in
  place 0 [] [] [];
  !found

let is_pattern_of q' q = Option.is_some (find_embedding q' q)

let first_hard_pattern patterns q =
  List.find_opt (fun p -> is_pattern_of p q) patterns

let has_rxx q = is_pattern_of Cq.q_rxx q
let has_rx_sx q = is_pattern_of Cq.q_rx_sx q
let has_rx_sxy_ty q = is_pattern_of Cq.q_rx_sxy_ty q
let has_rxy_sxy q = is_pattern_of Cq.q_rxy_sxy q
let has_rxy q = is_pattern_of Cq.q_rxy q
