open Incdb_relational

let max_universe = Sys.int_size - 1

exception Too_many_clauses of { clauses : int; limit : int }

let () =
  Printexc.register_printer (function
    | Too_many_clauses { clauses; limit } ->
      Some
        (Printf.sprintf "Lineage.Too_many_clauses(clauses %d, limit %d)" clauses
           limit)
    | _ -> None)

type t = { clauses : int array; negated : bool }

let clause_count l = Array.length l.clauses
let is_negated l = l.negated
let clauses l = l.clauses

let popcount mask =
  let rec pop m acc = if m = 0 then acc else pop (m land (m - 1)) (acc + 1) in
  pop mask 0

(* Keep only the minimal clauses of a deduplicated DNF: a clause subsumed
   by a strict subset is redundant (the subset fires first).  Sorting by
   popcount lets the filter compare each clause only against already-kept
   smaller ones. *)
let minimal clauses =
  let sorted =
    List.sort_uniq compare clauses
    |> List.map (fun c -> (popcount c, c))
    |> List.sort compare
  in
  let kept = ref [] in
  List.iter
    (fun (_, c) ->
      if not (List.exists (fun c' -> c' land c = c') !kept) then
        kept := c :: !kept)
    sorted;
  Array.of_list (List.rev !kept)

let index_universe universe =
  let idx : (Cdb.fact, int) Hashtbl.t =
    Hashtbl.create (2 * Array.length universe)
  in
  Array.iteri (fun i g -> Hashtbl.replace idx g i) universe;
  idx

(* Clauses of one BCQ disjunct: every homomorphism into the universe
   leaves a footprint (the set of image facts); a sub-database satisfies
   the disjunct iff it contains some footprint. *)
let cq_clauses ?(neqs = []) idx universe cq =
  let cdb = Cdb.of_list (Array.to_list universe) in
  let image h (a : Cq.atom) =
    Cdb.fact a.Cq.rel (List.map (fun v -> List.assoc v h) (Array.to_list a.Cq.vars))
  in
  Cq.homomorphisms cq cdb
  |> List.filter_map (fun h ->
         if
           List.for_all
             (fun (x, y) -> List.assoc_opt x h <> List.assoc_opt y h)
             neqs
         then
           Some
             (List.fold_left
                (fun m a -> m lor (1 lsl Hashtbl.find idx (image h a)))
                0 cq)
         else None)

let compile q universe =
  if Array.length universe > max_universe then None
  else begin
    let idx = index_universe universe in
    let rec go negated = function
      | Query.Bcq cq -> Some (cq_clauses idx universe cq, negated)
      | Query.Bcq_neq (cq, neqs) -> Some (cq_clauses ~neqs idx universe cq, negated)
      | Query.Union cqs ->
        Some (List.concat_map (cq_clauses idx universe) cqs, negated)
      | Query.Not q -> go (not negated) q
      | Query.Semantic _ -> None
    in
    Option.map
      (fun (clauses, negated) -> { clauses = minimal clauses; negated })
      (go false q)
  end

let dnf_sat clauses mask =
  let n = Array.length clauses in
  let rec go i =
    if i = n then false
    else
      let c = Array.unsafe_get clauses i in
      c land mask = c || go (i + 1)
  in
  go 0

let sat l mask = dnf_sat l.clauses mask <> l.negated

(* ------------------------------------------------------------------ *)
(* The same compiler over an abstract mask representation              *)
(* ------------------------------------------------------------------ *)

module type MASKED = sig
  type mask
  type lineage

  val clause_count : lineage -> int
  val is_negated : lineage -> bool
  val clauses : lineage -> mask array
  val compile : Query.t -> Cdb.fact array -> lineage option
  val sat : lineage -> mask -> bool
  val dnf_sat : mask array -> mask -> bool
  val fixed_masks : width:int -> (int * int) array array -> mask array
end

module Make (M : Incdb_bignum.Bitset.MASK) = struct
  type mask = M.t
  type lineage = { clauses : mask array; negated : bool }

  let clause_count l = Array.length l.clauses
  let is_negated l = l.negated
  let clauses l = l.clauses

  (* Mirrors the single-word {!minimal} above, with the implicit int
     orderings spelled out: dedup by mask order, then sort by
     (popcount, mask) so the subsumption filter only compares against
     already-kept smaller clauses. *)
  let minimal clauses =
    let sorted =
      List.sort_uniq M.compare clauses
      |> List.map (fun c -> (M.popcount c, c))
      |> List.sort (fun (pa, a) (pb, b) ->
             match Stdlib.Int.compare pa pb with
             | 0 -> M.compare a b
             | c -> c)
    in
    let kept = ref [] in
    List.iter
      (fun (_, c) ->
        if not (List.exists (fun c' -> M.subset c' c) !kept) then
          kept := c :: !kept)
      sorted;
    Array.of_list (List.rev !kept)

  let cq_clauses ?(neqs = []) ~width idx universe cq =
    let cdb = Cdb.of_list (Array.to_list universe) in
    let image h (a : Cq.atom) =
      Cdb.fact a.Cq.rel
        (List.map (fun v -> List.assoc v h) (Array.to_list a.Cq.vars))
    in
    Cq.homomorphisms cq cdb
    |> List.filter_map (fun h ->
           if
             List.for_all
               (fun (x, y) -> List.assoc_opt x h <> List.assoc_opt y h)
               neqs
           then
             Some
               (List.fold_left
                  (fun m a -> M.set m (Hashtbl.find idx (image h a)))
                  (M.zero ~width) cq)
           else None)

  let compile q universe =
    let width = Array.length universe in
    if width > M.max_width then None
    else begin
      let idx = index_universe universe in
      let rec go negated = function
        | Query.Bcq cq -> Some (cq_clauses ~width idx universe cq, negated)
        | Query.Bcq_neq (cq, neqs) ->
          Some (cq_clauses ~neqs ~width idx universe cq, negated)
        | Query.Union cqs ->
          Some (List.concat_map (cq_clauses ~width idx universe) cqs, negated)
        | Query.Not q -> go (not negated) q
        | Query.Semantic _ -> None
      in
      Option.map
        (fun (clauses, negated) -> { clauses = minimal clauses; negated })
        (go false q)
    end

  let dnf_sat clauses mask =
    let n = Array.length clauses in
    let rec go i =
      if i = n then false
      else M.subset (Array.unsafe_get clauses i) mask || go (i + 1)
    in
    go 0

  let sat l mask = dnf_sat l.clauses mask <> l.negated

  let fixed_masks ~width fixes =
    Array.map
      (fun assigns ->
        Array.fold_left (fun m (slot, _) -> M.set m slot) (M.zero ~width) assigns)
      fixes
end

module Wide = Make (Incdb_bignum.Bitset.Wide)

(* ------------------------------------------------------------------ *)
(* Slot-assignment clauses (the valuation-space face of the same idea) *)
(* ------------------------------------------------------------------ *)

let fixed_masks fixes =
  Array.map
    (fun assigns ->
      Array.fold_left (fun m (slot, _) -> m lor (1 lsl slot)) 0 assigns)
    fixes

let compatible a b =
  (* Both sorted by slot: one linear merge pass. *)
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i = la || j = lb then true
    else
      let sa, va = a.(i) and sb, vb = b.(j) in
      if sa < sb then go (i + 1) j
      else if sa > sb then go i (j + 1)
      else va = vb && go (i + 1) (j + 1)
  in
  go 0 0

let conflict_masks fixes =
  let n = Array.length fixes in
  if n > max_universe then
    raise (Too_many_clauses { clauses = n; limit = max_universe });
  let conflicts = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      if not (compatible fixes.(i) fixes.(j)) then begin
        conflicts.(i) <- conflicts.(i) lor (1 lsl j);
        conflicts.(j) <- conflicts.(j) lor (1 lsl i)
      end
    done
  done;
  conflicts

(* [a] subsumes [b] when every (slot, value) pair of [a] appears in [b]:
   any assignment matching [b] then matches [a], so [b] is redundant in a
   disjunction of slot clauses.  Both sorted by slot, one merge pass. *)
let fixes_subset a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i = la then true
    else if j = lb then false
    else
      let sa, va = a.(i) and sb, vb = b.(j) in
      if sa < sb then false
      else if sa > sb then go i (j + 1)
      else va = vb && go (i + 1) (j + 1)
  in
  go 0 0

(* The slot-clause analogue of {!minimal}: sort by length so each clause
   is only compared against already-kept shorter (or equal-length) ones. *)
let minimal_fixes fixes =
  let sorted =
    List.sort_uniq Stdlib.compare (Array.to_list fixes)
    |> List.map (fun c -> (Array.length c, c))
    |> List.sort Stdlib.compare
  in
  let kept = ref [] in
  List.iter
    (fun (_, c) ->
      if not (List.exists (fun c' -> fixes_subset c' c) !kept) then
        kept := c :: !kept)
    sorted;
  Array.of_list (List.rev !kept)

module Iset = Set.Make (Int)

let fixes_slots fixes =
  let slots =
    Array.fold_left
      (fun acc c ->
        Array.fold_left (fun acc (slot, _) -> Iset.add slot acc) acc c)
      Iset.empty fixes
  in
  Array.of_list (Iset.elements slots)

let condition_fixes fixes ~slot ~value =
  let fired = ref false in
  let keep = ref [] in
  Array.iter
    (fun c ->
      if not !fired then
        match Array.find_opt (fun (s, _) -> s = slot) c with
        | None -> keep := c :: !keep
        | Some (_, v) ->
          if v = value then begin
            let c' =
              Array.of_list
                (List.filter (fun (s, _) -> s <> slot) (Array.to_list c))
            in
            if Array.length c' = 0 then fired := true else keep := c' :: !keep
          end
          (* [v <> value]: the clause can no longer match; drop it. *))
    fixes;
  if !fired then None else Some (Array.of_list (List.rev !keep))

let drop_slot_fixes fixes ~slot =
  Array.of_list
    (List.filter
       (fun c -> not (Array.exists (fun (s, _) -> s = slot) c))
       (Array.to_list fixes))

(* Canonical form of a disjunction of slot clauses, for keying a
   subproblem cache: slots are renamed to dense ids in order of first
   occurrence (scanning clauses in the given order, pairs slot-first),
   each slot's values are renamed to dense ids in order of first
   occurrence, and the renamed clauses are re-sorted (pairs by new slot,
   clauses lexicographically).  Two subproblems with the same canonical
   clauses and the same per-canonical-slot domain sizes have the same
   avoidance count: the renaming is a slot bijection composed with a
   per-slot value bijection, and the count only depends on the clause
   structure up to such bijections.  The converse does not hold — the
   first-occurrence scan is order-sensitive, so some isomorphic pairs
   canonicalize apart — which costs cache hits, never correctness. *)
let canonical_fixes fixes ~dom =
  let slot_ids = Hashtbl.create 16 in
  let doms = ref [] in
  let val_ids : (int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let slot_id s =
    match Hashtbl.find_opt slot_ids s with
    | Some i -> i
    | None ->
      let i = Hashtbl.length slot_ids in
      Hashtbl.replace slot_ids s i;
      Hashtbl.replace val_ids i (Hashtbl.create 4);
      doms := dom s :: !doms;
      i
  in
  let value_id i v =
    let vals = Hashtbl.find val_ids i in
    match Hashtbl.find_opt vals v with
    | Some r -> r
    | None ->
      let r = Hashtbl.length vals in
      Hashtbl.replace vals v r;
      r
  in
  let renamed =
    Array.map
      (fun c ->
        let c' =
          Array.map
            (fun (s, v) ->
              let i = slot_id s in
              (i, value_id i v))
            c
        in
        Array.sort compare c';
        c')
      fixes
  in
  Array.sort compare renamed;
  (renamed, Array.of_list (List.rev !doms))
