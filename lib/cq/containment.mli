(** Containment and minimization of Boolean conjunctive queries, via the
    Chandra–Merlin homomorphism theorem.

    These classical tools complement the pattern relation of
    Definition 3.1: patterns compare query {e shapes} (atom and
    occurrence deletion), while containment compares query {e semantics}
    ([q ⊑ q'] iff every database satisfying [q] satisfies [q'], iff there
    is a homomorphism from [q'] to [q]'s canonical database).  The test
    suite uses containment to sanity-check that pattern steps never
    contradict semantics on constant-free instances. *)

open Incdb_relational

(** [canonical_database q] freezes each variable into a constant, giving
    the canonical instance of the homomorphism theorem. *)
val canonical_database : Cq.t -> Cdb.t

(** [contained q q'] decides [q ⊑ q']: every (set-semantics) database
    satisfying [q] satisfies [q']. *)
val contained : Cq.t -> Cq.t -> bool

(** [equivalent q q'] is containment both ways. *)
val equivalent : Cq.t -> Cq.t -> bool

(** [minimize q] returns a minimal equivalent sub-query (the core): atoms
    are removed while equivalence holds.  For self-join-free queries the
    result is always [q] itself (no atom is redundant), which the tests
    assert. *)
val minimize : Cq.t -> Cq.t
