(* Connectivity graph of an sjfBCQ (Definition A.9): nodes are atoms, two
   atoms are adjacent when they share a variable, edges labeled by the
   shared variables.  Lemma A.11: when none of the Theorem 3.9 patterns is
   present, every connected component is a clique whose edges all carry the
   same single variable. *)

type component = { atoms : Cq.atom list; shared_var : string option }

let shared_vars (a : Cq.atom) (b : Cq.atom) =
  let va = Array.to_list a.Cq.vars and vb = Array.to_list b.Cq.vars in
  List.sort_uniq String.compare (List.filter (fun v -> List.mem v vb) va)

let components (q : Cq.t) : component list =
  let atoms = Array.of_list q in
  let n = Array.length atoms in
  let parent = Array.init n Fun.id in
  let rec find x = if parent.(x) = x then x else (parent.(x) <- find parent.(x); parent.(x)) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if shared_vars atoms.(i) atoms.(j) <> [] then begin
        let ri = find i and rj = find j in
        if ri <> rj then parent.(ri) <- rj
      end
    done
  done;
  let groups = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    let r = find i in
    let cur = Option.value ~default:[] (Hashtbl.find_opt groups r) in
    Hashtbl.replace groups r (i :: cur)
  done;
  let build _ members acc =
    let members = List.sort Stdlib.compare members in
    let atoms_of = List.map (fun i -> atoms.(i)) members in
    (* The single shared variable, when the component indeed has one. *)
    let shared =
      match atoms_of with
      | [ _ ] -> None
      | a :: rest ->
        let inter =
          List.fold_left
            (fun acc b ->
              List.filter (fun v -> Array.exists (String.equal v) b.Cq.vars) acc)
            (Array.to_list a.Cq.vars) rest
        in
        (match List.sort_uniq String.compare inter with
        | [ v ] -> Some v
        | _ -> None)
      | [] -> None
    in
    { atoms = atoms_of; shared_var = shared } :: acc
  in
  Hashtbl.fold build groups []

(* Does the component satisfy the Lemma A.11 criterion: a clique whose
   edges all carry exactly one and the same variable? *)
let component_is_single_variable_clique (c : component) =
  match c.atoms with
  | [ _ ] -> true
  | atoms ->
    (match c.shared_var with
    | None -> false
    | Some v ->
      (* Every pair must share exactly [v]. *)
      let rec pairs = function
        | [] -> true
        | a :: rest ->
          List.for_all (fun b -> shared_vars a b = [ v ]) rest && pairs rest
      in
      pairs atoms)
