(** Bounded minimal models (Section 5.1).

    A Boolean query [q] has {e bounded minimal models} when there is a
    constant [C_q] such that any database satisfying [q] contains a
    sub-database of at most [C_q] facts that already satisfies it.  This
    property (together with monotonicity and cheap model checking) is what
    puts [#Val(q)] in SpanL (Proposition 5.2) and hence gives it an FPRAS;
    it is also the structural fact behind the Karp–Luby event construction
    of [incdb_approx].

    For a union of BCQs the bound is the maximum number of atoms of a
    disjunct, and the minimal models are the inclusion-minimal
    homomorphism images. *)

open Incdb_relational

(** [bound q] is the minimal-models bound [C_q] for monotone queries,
    [None] for non-monotone ones. *)
val bound : Query.t -> int option

(** [minimal_models q db] enumerates the inclusion-minimal sub-databases
    of [db] satisfying [q] (no duplicates).
    @raise Invalid_argument on a non-monotone query. *)
val minimal_models : Query.t -> Cdb.t -> Cdb.t list

(** [is_minimal_model q db sub] checks that [sub ⊆ db], [sub |= q], and no
    proper subset of [sub] satisfies [q]. *)
val is_minimal_model : Query.t -> Cdb.t -> Cdb.t -> bool
