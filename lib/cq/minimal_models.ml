open Incdb_relational

let disjuncts = function
  | Query.Bcq cq -> Some [ cq ]
  | Query.Union cqs -> Some cqs
  | Query.Bcq_neq (cq, _) -> Some [ cq ]
  | Query.Not _ | Query.Semantic _ -> None

let bound q =
  match disjuncts q with
  | None -> None
  | Some cqs ->
    Some (List.fold_left (fun acc cq -> max acc (List.length cq)) 0 cqs)

(* The homomorphism images of one disjunct: for every homomorphism h, the
   set of facts {h(atom)}.  Minimal models are the inclusion-minimal
   images (an image has at most |q| facts, and any model contains some
   homomorphism image). *)
let images cq ?neqs db =
  let homs = Cq.homomorphisms cq db in
  let homs =
    match neqs with
    | None -> homs
    | Some pairs ->
      List.filter
        (fun h ->
          List.for_all
            (fun (x, y) -> List.assoc x h <> List.assoc y h)
            pairs)
        homs
  in
  List.map
    (fun h ->
      Cdb.of_list
        (List.map
           (fun (a : Cq.atom) ->
             {
               Cdb.rel = a.Cq.rel;
               args = Array.map (fun v -> List.assoc v h) a.Cq.vars;
             })
           cq))
    homs

let all_images q db =
  match q with
  | Query.Bcq cq -> images cq db
  | Query.Union cqs -> List.concat_map (fun cq -> images cq db) cqs
  | Query.Bcq_neq (cq, neqs) -> images cq ~neqs db
  | Query.Not _ | Query.Semantic _ ->
    invalid_arg "Minimal_models: only monotone (unions of) BCQs"

let minimal_models q db =
  let candidates =
    List.sort_uniq Cdb.compare (all_images q db)
  in
  List.filter
    (fun m ->
      List.for_all
        (fun m' -> Cdb.equal m m' || not (Cdb.subset m' m))
        candidates)
    candidates

let is_minimal_model q db sub =
  Cdb.subset sub db && Query.eval q sub
  && begin
       (* Dropping any single fact must falsify q (equivalent to proper
          subset minimality for monotone queries). *)
       let facts = Cdb.to_list sub in
       List.for_all
         (fun f ->
           let without =
             Cdb.of_list (List.filter (fun g -> Cdb.compare_fact f g <> 0) facts)
           in
           not (Query.eval q without))
         facts
     end
