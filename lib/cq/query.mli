(** Boolean queries beyond single BCQs: unions of BCQs (Corollary 5.3),
    BCQs with inequality atoms (footnote 4 of Section 5.1 — these still
    admit an FPRAS for [#Val]), negations (Section 6, where [#Comp^u(¬q)]
    is SpanP-complete), and opaque {e semantic} queries given by an
    evaluation function (used for Datalog and the ∃SO query of
    Theorem 6.4; Observation 6.2 places [#Comp] of any such
    polynomial-time query in SpanP). *)

open Incdb_relational

type t =
  | Bcq of Cq.t
  | Union of Cq.t list  (** a union of Boolean conjunctive queries *)
  | Bcq_neq of Cq.t * (string * string) list
      (** a BCQ with inequality atoms [x ≠ y] between its variables *)
  | Not of t
  | Semantic of semantic
      (** an opaque Boolean query; only enumeration-based counting
          applies *)

and semantic = {
  name : string;  (** used for printing *)
  monotone : bool;  (** trusted monotonicity annotation *)
  sem_eval : Cdb.t -> bool;
}

val eval : t -> Cdb.t -> bool

(** Relation symbols mentioned anywhere in the query (empty for semantic
    queries, whose footprint is unknown). *)
val relations : t -> string list

(** Monotone queries are preserved under adding facts (Section 5.1);
    negation breaks monotonicity, inequalities do not; semantic queries
    carry their own annotation. *)
val is_monotone : t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit
