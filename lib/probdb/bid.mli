(** Block-independent-disjoint probabilistic databases (Section 7; the
    model under which counting repairs embeds, Dalvi–Ré–Suciu).  Facts are
    partitioned into blocks; within a block at most one fact is present,
    chosen with the block's probabilities (whose sum may be below 1,
    leaving mass for "no fact"); blocks are independent. *)

open Incdb_bignum
open Incdb_relational
open Incdb_cq

(** One block: the candidate facts with their probabilities. *)
type block = (Cdb.fact * Qnum.t) list

type t

(** @raise Invalid_argument if some block's probabilities are negative or
    sum above 1. *)
val make : block list -> t

val blocks : t -> block list

(** All worlds with probabilities (product over blocks of choices,
    including the "absent" choice when mass remains).
    @raise Invalid_argument beyond [max_worlds] (default 200000). *)
val worlds : ?max_worlds:int -> t -> (Cdb.t * Qnum.t) list

val probability : ?max_worlds:int -> Query.t -> t -> Qnum.t
