open Incdb_bignum
open Incdb_relational
open Incdb_cq

type t = (Cdb.fact * Qnum.t) list

let in_unit p = Qnum.compare p Qnum.zero >= 0 && Qnum.compare p Qnum.one <= 0

let make assoc =
  List.iter
    (fun (_, p) ->
      if not (in_unit p) then
        invalid_arg "Tid.make: probability outside [0,1]")
    assoc;
  let keys = List.map fst assoc in
  if List.length (List.sort_uniq Cdb.compare_fact keys) <> List.length keys then
    invalid_arg "Tid.make: duplicate fact";
  assoc

let facts t = t

let worlds ?(max_facts = 20) t =
  if List.length t > max_facts then
    invalid_arg "Tid.worlds: too many facts for exhaustive enumeration";
  let arr = Array.of_list t in
  let n = Array.length arr in
  List.init (1 lsl n) (fun mask ->
      let present = ref [] in
      let prob = ref Qnum.one in
      for i = 0 to n - 1 do
        let f, p = arr.(i) in
        if mask land (1 lsl i) <> 0 then begin
          present := f :: !present;
          prob := Qnum.mul !prob p
        end
        else prob := Qnum.mul !prob (Qnum.sub Qnum.one p)
      done;
      (Cdb.of_list !present, !prob))

let probability ?max_facts q t =
  List.fold_left
    (fun acc (w, p) -> if Query.eval q w then Qnum.add acc p else acc)
    Qnum.zero (worlds ?max_facts t)
