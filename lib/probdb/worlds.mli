(** The bridge between the paper's setting and the probabilistic models
    it is compared against in Section 7.

    A uniform-or-not incomplete database, with each null drawn uniformly
    and independently from its domain, induces a probability distribution
    over {e completions}.  Under this distribution
    [Prob(q) = #Val(q) / total valuations] — the numerator is exactly the
    paper's counting problem — while the number of {e distinct} worlds is
    [#Comp(true)], which can be strictly smaller than the number of
    valuations.  In BID databases and repairs this collapse never happens
    (each choice yields a different database); the functions here make
    that contrast checkable. *)

open Incdb_bignum
open Incdb_relational
open Incdb_cq
open Incdb_incomplete

(** [of_incomplete db] lists the distinct completions with their induced
    probabilities (summing to 1).
    @raise Invalid_argument beyond the valuation enumeration limit. *)
val of_incomplete : ?limit:int -> Idb.t -> (Cdb.t * Qnum.t) list

(** [probability q db] is [Prob(q)] under the induced distribution;
    always equals [#Val(q) / total]. *)
val probability : ?limit:int -> Query.t -> Idb.t -> Qnum.t

(** [collision_count db] is [total valuations − #distinct completions] —
    zero exactly when the incomplete database behaves like a BID space
    (no two valuations collide). *)
val collision_count : ?limit:int -> Idb.t -> Nat.t
