open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

module Smap = Map.Make (String)

type t = { idb : Idb.t; weights : Qnum.t Smap.t Smap.t }

let make db assoc =
  let weights =
    List.fold_left
      (fun acc (null, dist) ->
        let dom = try Idb.domain_of db null with Not_found ->
          invalid_arg (Printf.sprintf "Indnull.make: %s is not a null" null)
        in
        let total =
          List.fold_left (fun s (_, p) -> Qnum.add s p) Qnum.zero dist
        in
        if not (Qnum.equal total Qnum.one) then
          invalid_arg
            (Printf.sprintf "Indnull.make: weights of %s do not sum to 1" null);
        List.iter
          (fun (v, p) ->
            if not (List.mem v dom) then
              invalid_arg
                (Printf.sprintf "Indnull.make: %s outside domain of %s" v null);
            if Qnum.sign p < 0 then
              invalid_arg "Indnull.make: negative weight")
          dist;
        Smap.add null
          (List.fold_left (fun m (v, p) -> Smap.add v p m) Smap.empty dist)
          acc)
      Smap.empty assoc
  in
  List.iter
    (fun n ->
      if not (Smap.mem n weights) then
        invalid_arg (Printf.sprintf "Indnull.make: no distribution for %s" n))
    (Idb.nulls db);
  { idb = db; weights }

let uniform db =
  make db
    (List.map
       (fun n ->
         let dom = Idb.domain_of db n in
         let p = Qnum.of_ints 1 (List.length dom) in
         (n, List.map (fun v -> (v, p)) dom))
       (Idb.nulls db))

let idb t = t.idb

let weight t null value =
  match Smap.find_opt null t.weights with
  | None -> Qnum.zero
  | Some dist -> Option.value ~default:Qnum.zero (Smap.find_opt value dist)

let valuation_weight t v =
  List.fold_left (fun acc (n, c) -> Qnum.mul acc (weight t n c)) Qnum.one v

let probability_brute ?limit q t =
  let acc = ref Qnum.zero in
  Idb.iter_valuations ?limit t.idb (fun v ->
      if Query.eval q (Idb.apply t.idb v) then
        acc := Qnum.add !acc (valuation_weight t v));
  !acc

let probability_single_occurrence q t =
  if not (List.for_all (fun v -> Cq.occurrences q v = 1) (Cq.variables q)) then
    invalid_arg "Indnull.probability_single_occurrence: a variable repeats";
  let atom_has_fact (a : Cq.atom) =
    List.exists
      (fun (f : Idb.fact) -> Array.length f.Idb.args = Array.length a.Cq.vars)
      (Idb.facts_of t.idb a.Cq.rel)
  in
  if List.for_all atom_has_fact q then Qnum.one else Qnum.zero

(* Probability that a term takes value [a]. *)
let term_prob t a = function
  | Term.Const c -> if c = a then Qnum.one else Qnum.zero
  | Term.Null n -> weight t n a

(* Values a term could take at all. *)
let term_values t = function
  | Term.Const c -> [ c ]
  | Term.Null n -> Idb.domain_of t.idb n

let probability_codd q t =
  if not (Idb.is_codd t.idb) then
    invalid_arg "Indnull.probability_codd: requires a Codd table";
  let shared a b =
    List.exists
      (fun v -> Array.exists (String.equal v) b.Cq.vars)
      (Array.to_list a.Cq.vars)
  in
  let rec disjoint = function
    | [] -> true
    | a :: rest -> List.for_all (fun b -> not (shared a b)) rest && disjoint rest
  in
  if not (disjoint q) then
    invalid_arg "Indnull.probability_codd: atoms share a variable";
  (* P(q) = prod over atoms of (1 - prod over tuples of (1 - P(match))).
     Within a tuple, P(match) = prod over the atom's distinct variables of
     P(all its positions agree) = sum_a prod_p P(term_p = a). *)
  let atom_probability (a : Cq.atom) =
    let tuples = Idb.facts_of t.idb a.Cq.rel in
    let tuple_match (f : Idb.fact) =
      if Array.length f.Idb.args <> Array.length a.Cq.vars then Qnum.zero
      else begin
        let vars = List.sort_uniq String.compare (Array.to_list a.Cq.vars) in
        List.fold_left
          (fun acc v ->
            let positions =
              List.filteri
                (fun i _ -> a.Cq.vars.(i) = v)
                (Array.to_list f.Idb.args)
            in
            let candidates =
              match positions with
              | [] -> []
              | p :: rest ->
                List.filter
                  (fun a' ->
                    List.for_all (fun p' -> List.mem a' (term_values t p')) rest)
                  (term_values t p)
            in
            let p_var =
              List.fold_left
                (fun s a' ->
                  Qnum.add s
                    (List.fold_left
                       (fun prod pos -> Qnum.mul prod (term_prob t a' pos))
                       Qnum.one positions))
                Qnum.zero candidates
            in
            Qnum.mul acc p_var)
          Qnum.one vars
      end
    in
    let p_none =
      List.fold_left
        (fun acc f -> Qnum.mul acc (Qnum.sub Qnum.one (tuple_match f)))
        Qnum.one tuples
    in
    Qnum.sub Qnum.one p_none
  in
  List.fold_left (fun acc a -> Qnum.mul acc (atom_probability a)) Qnum.one q
