(** Counting database repairs under primary keys (Section 7;
    Maslowski–Wijsen, Calautti–Console–Pieris).

    An inconsistent database may contain several facts agreeing on the key
    attributes of their relation; a {e repair} picks exactly one fact per
    key group.  [#Repairs(q)] counts the repairs satisfying [q].  Counting
    repairs is the special case of a BID database in which each block's
    choices are uniform and sum to 1 — an embedding this module makes
    executable ({!to_bid}), together with the structural contrast the
    paper draws: every repair choice yields a {e distinct} database,
    whereas distinct valuations of an incomplete database can collide. *)

open Incdb_bignum
open Incdb_relational
open Incdb_cq

type t

(** [make ~keys facts]: [keys] maps each relation name to the list of its
    key positions (0-based); facts of unlisted relations are treated as
    all-attributes-key (never conflicting).
    @raise Invalid_argument on an out-of-range key position. *)
val make : keys:(string * int list) list -> Cdb.fact list -> t

(** The key groups (each a non-empty list of facts sharing key values). *)
val groups : t -> Cdb.fact list list

(** Total number of repairs: the product of the group sizes. *)
val total_repairs : t -> Nat.t

(** [count_repairs ?query t] is [#Repairs(q)]; all repairs if omitted.
    Enumerates the choice space.
    @raise Invalid_argument beyond [max_repairs] (default 200000). *)
val count_repairs : ?max_repairs:int -> ?query:Query.t -> t -> Nat.t

(** The uniform-BID view: each group becomes a block with uniform
    probabilities summing to one, so
    [Prob_BID(q) = #Repairs(q) / total_repairs]. *)
val to_bid : t -> Bid.t
