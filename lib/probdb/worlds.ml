open Incdb_bignum
open Incdb_relational
open Incdb_cq
open Incdb_incomplete

module Cdb_map = Map.Make (struct
  type t = Cdb.t

  let compare = Cdb.compare
end)

let of_incomplete ?limit db =
  let counts = ref Cdb_map.empty in
  let total = ref 0 in
  Idb.iter_valuations ?limit db (fun v ->
      incr total;
      let c = Idb.apply db v in
      counts :=
        Cdb_map.update c
          (fun cur -> Some (1 + Option.value ~default:0 cur))
          !counts);
  let denom = Zint.of_int !total in
  Cdb_map.fold
    (fun world count acc ->
      (world, Qnum.make (Zint.of_int count) denom) :: acc)
    !counts []
  |> List.rev

let probability ?limit q db =
  List.fold_left
    (fun acc (w, p) -> if Query.eval q w then Qnum.add acc p else acc)
    Qnum.zero
    (of_incomplete ?limit db)

let collision_count ?limit db =
  let distinct = Incdb_incomplete.Brute.count_all_completions ?limit db in
  Nat.sub (Idb.total_valuations db) distinct
