(** Independent-null probabilistic incomplete databases: each null draws
    its value from its domain under its own distribution, independently.

    With uniform weights this is exactly the paper's counting setting —
    [Prob(q) = #Val(q) / total] — and the tractable counting algorithms
    generalize to weighted versions; with non-uniform weights it is the
    natural probabilistic refinement the Section 7 comparison with
    probabilistic databases suggests.  The Theorem 3.6 and 3.7 shapes
    stay polynomial (implemented here); the Theorem 3.9 block DP relies
    on nulls being interchangeable, which breaks under per-null weights,
    so general shapes fall back to enumeration. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

type t

(** [make db weights] with, for every null of [db], a distribution over
    exactly its domain (rationals summing to 1).
    @raise Invalid_argument on a missing null, a value outside the
    domain, or weights not summing to 1. *)
val make : Idb.t -> (string * (string * Qnum.t) list) list -> t

(** Uniform weights: the paper's setting. *)
val uniform : Idb.t -> t

val idb : t -> Idb.t

(** Probability of one value for one null. *)
val weight : t -> string -> string -> Qnum.t

(** [probability_brute q t] sums the weight product over satisfying
    valuations (enumeration; the semantics). *)
val probability_brute : ?limit:int -> Query.t -> t -> Qnum.t

(** [probability_single_occurrence q t] — weighted Theorem 3.6: when
    every variable of [q] occurs once, the probability is 1 or 0
    (non-empty relations decide).
    @raise Invalid_argument on other shapes. *)
val probability_single_occurrence : Cq.t -> t -> Qnum.t

(** [probability_codd q t] — weighted Theorem 3.7: atoms pairwise
    variable-disjoint over a Codd table; per-tuple match probabilities
    multiply out exactly.
    @raise Invalid_argument on other shapes or non-Codd tables. *)
val probability_codd : Cq.t -> t -> Qnum.t
