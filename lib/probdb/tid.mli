(** Tuple-independent probabilistic databases (Section 7 related work;
    Dalvi–Suciu).  Every fact is present independently with its own
    probability; [Prob(q)] is the total probability of the worlds
    satisfying [q].

    This substrate exists to make the paper's comparison concrete: query
    probability over a TID is a weighted count over an independent
    product space, whereas the paper's [#Val]/[#Comp] count valuations
    whose completions may {e collide} — see [Worlds.of_incomplete]. *)

open Incdb_bignum
open Incdb_relational
open Incdb_cq

type t

(** [make assoc] with exact rational probabilities in [0,1].
    @raise Invalid_argument on an out-of-range probability or a duplicate
    fact. *)
val make : (Cdb.fact * Qnum.t) list -> t

val facts : t -> (Cdb.fact * Qnum.t) list

(** All possible worlds with their probabilities ([2^n] of them).
    @raise Invalid_argument beyond [max_facts] (default 20). *)
val worlds : ?max_facts:int -> t -> (Cdb.t * Qnum.t) list

(** [probability q t] is [Prob(q)], exactly, by world enumeration. *)
val probability : ?max_facts:int -> Query.t -> t -> Qnum.t
