open Incdb_bignum
open Incdb_relational
open Incdb_cq

type t = Cdb.fact list list (* key groups *)

let make ~keys facts =
  let key_of (f : Cdb.fact) =
    match List.assoc_opt f.Cdb.rel keys with
    | None -> (f.Cdb.rel, Array.to_list f.Cdb.args)
    | Some positions ->
      let arity = Array.length f.Cdb.args in
      let values =
        List.map
          (fun p ->
            if p < 0 || p >= arity then
              invalid_arg "Repairs.make: key position out of range"
            else f.Cdb.args.(p))
          positions
      in
      (f.Cdb.rel, values)
  in
  let table = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun f ->
      let k = key_of f in
      match Hashtbl.find_opt table k with
      | Some group -> Hashtbl.replace table k (f :: group)
      | None ->
        Hashtbl.replace table k [ f ];
        order := k :: !order)
    (List.sort_uniq Cdb.compare_fact facts);
  List.rev_map (fun k -> List.rev (Hashtbl.find table k)) !order

let groups t = t

let total_repairs t =
  Nat.product (List.map (fun g -> Nat.of_int (List.length g)) t)

let count_repairs ?(max_repairs = 200_000) ?query t =
  (match Nat.to_int_opt (total_repairs t) with
  | Some n when n <= max_repairs -> ()
  | _ -> invalid_arg "Repairs.count_repairs: too many repairs");
  let rec go groups chosen =
    match groups with
    | [] -> begin
      match query with
      | None -> Nat.one
      | Some q -> if Query.eval q (Cdb.of_list chosen) then Nat.one else Nat.zero
    end
    | g :: rest ->
      List.fold_left
        (fun acc f -> Nat.add acc (go rest (f :: chosen)))
        Nat.zero g
  in
  go t []

let to_bid t =
  Bid.make
    (List.map
       (fun g ->
         let p = Qnum.of_ints 1 (List.length g) in
         List.map (fun f -> (f, p)) g)
       t)
