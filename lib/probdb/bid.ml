open Incdb_bignum
open Incdb_relational
open Incdb_cq

type block = (Cdb.fact * Qnum.t) list
type t = block list

let make blocks =
  List.iter
    (fun block ->
      let total =
        List.fold_left (fun acc (_, p) -> Qnum.add acc p) Qnum.zero block
      in
      if
        List.exists (fun (_, p) -> Qnum.sign p < 0) block
        || Qnum.compare total Qnum.one > 0
      then invalid_arg "Bid.make: invalid block probabilities")
    blocks;
  blocks

let blocks t = t

let worlds ?(max_worlds = 200_000) t =
  (* Choices per block: each candidate fact, plus "absent" when mass is
     left over. *)
  let block_choices block =
    let total =
      List.fold_left (fun acc (_, p) -> Qnum.add acc p) Qnum.zero block
    in
    let absent = Qnum.sub Qnum.one total in
    let choices = List.map (fun (f, p) -> (Some f, p)) block in
    if Qnum.is_zero absent then choices else (None, absent) :: choices
  in
  let count =
    List.fold_left (fun acc b -> acc * List.length (block_choices b)) 1 t
  in
  if count > max_worlds then
    invalid_arg "Bid.worlds: too many worlds for exhaustive enumeration";
  let rec go = function
    | [] -> [ ([], Qnum.one) ]
    | b :: rest ->
      let tails = go rest in
      List.concat_map
        (fun (choice, p) ->
          List.map
            (fun (facts, q) ->
              ( (match choice with Some f -> f :: facts | None -> facts),
                Qnum.mul p q ))
            tails)
        (block_choices b)
  in
  List.map (fun (facts, p) -> (Cdb.of_list facts, p)) (go t)

let probability ?max_worlds q t =
  List.fold_left
    (fun acc (w, p) -> if Query.eval q w then Qnum.add acc p else acc)
    Qnum.zero (worlds ?max_worlds t)
