(** Positive Datalog over complete databases — the "more expressive query
    languages" of Section 6: Observation 6.2 places [#Comp(q)] in SpanP
    for every query with polynomial-time model checking, "even more
    expressive query languages such as Datalog".  This module supplies
    such queries: recursive, monotone, evaluated by semi-naive fixpoint.

    Combined with {!to_query} (which wraps a program as a monotone
    [Query.Semantic]), the brute-force counters compute [#Val]/[#Comp] of
    recursive properties such as reachability over incomplete databases —
    network-reliability-style counting. *)

open Incdb_relational

(** Terms: variables (lowercase identifiers) or constants (digit-leading
    or single-quoted in the concrete syntax). *)
type term = Var of string | Const of string

type atom = { rel : string; args : term list }

(** A rule [head :- body].  Safety: every head variable must occur in the
    body. *)
type rule = { head : atom; body : atom list }

type program = rule list

(** [make rules] validates safety.
    @raise Invalid_argument on an unsafe rule or an empty body with a
    non-ground head. *)
val make : rule list -> program

(** Concrete syntax, one rule per '.'-terminated clause:
    {v Reach(x,y) :- E(x,y). Reach(x,z) :- Reach(x,y), E(y,z). v}
    Arguments starting with a lowercase letter are variables; arguments
    starting with a digit or wrapped in single quotes are constants.
    @raise Invalid_argument on syntax errors. *)
val parse : string -> program

val rule_to_string : rule -> string
val to_string : program -> string

(** [saturate p db] computes the least fixpoint: [db] extended with every
    derivable IDB fact (semi-naive evaluation). *)
val saturate : program -> Cdb.t -> Cdb.t

(** [holds p ~goal db] decides whether some instantiation of [goal]
    (an atom, possibly with variables) is derivable from [db] under
    [p]. *)
val holds : program -> goal:atom -> Cdb.t -> bool

(** [to_query p ~goal] wraps the program as a monotone semantic query
    usable with the counting machinery ([Brute], [Certainty], the
    dispatchers' brute-force paths). *)
val to_query : program -> goal:atom -> Incdb_cq.Query.t

(** Convenience: the transitive-closure program
    [Reach(x,y) :- E(x,y).  Reach(x,z) :- Reach(x,y), E(y,z).] with goal
    [Reach(from, to_)] over the binary EDB relation ["E"]. *)
val reachability : from:string -> to_:string -> Incdb_cq.Query.t
