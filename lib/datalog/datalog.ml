open Incdb_relational

type term = Var of string | Const of string
type atom = { rel : string; args : term list }
type rule = { head : atom; body : atom list }
type program = rule list

let atom_vars a =
  List.filter_map (function Var v -> Some v | Const _ -> None) a.args

let make rules =
  List.iter
    (fun r ->
      let body_vars = List.concat_map atom_vars r.body in
      List.iter
        (fun v ->
          if not (List.mem v body_vars) then
            invalid_arg
              (Printf.sprintf "Datalog.make: unsafe rule, head variable %s" v))
        (atom_vars r.head))
    rules;
  rules

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg =
    invalid_arg (Printf.sprintf "Datalog.parse: %s at offset %d" msg !pos)
  in
  let skip_ws () =
    while
      !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n' || s.[!pos] = '\r')
    do
      incr pos
    done
  in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  let ident () =
    let start = !pos in
    while !pos < n && is_ident s.[!pos] do incr pos done;
    if !pos = start then error "expected identifier";
    String.sub s start (!pos - start)
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else error (Printf.sprintf "expected '%c'" c)
  in
  let parse_term () =
    skip_ws ();
    if !pos < n && s.[!pos] = '\'' then begin
      incr pos;
      let t = ident () in
      expect '\'';
      Const t
    end
    else begin
      let t = ident () in
      if t = "" then error "empty term"
      else if t.[0] >= '0' && t.[0] <= '9' then Const t
      else Var t
    end
  in
  let parse_atom () =
    skip_ws ();
    let rel = ident () in
    skip_ws ();
    expect '(';
    let args = ref [ parse_term () ] in
    skip_ws ();
    while !pos < n && s.[!pos] = ',' do
      incr pos;
      args := parse_term () :: !args;
      skip_ws ()
    done;
    expect ')';
    { rel; args = List.rev !args }
  in
  let rules = ref [] in
  skip_ws ();
  while !pos < n do
    let head = parse_atom () in
    skip_ws ();
    let body =
      if !pos < n && s.[!pos] = ':' then begin
        incr pos;
        expect '-';
        let atoms = ref [ parse_atom () ] in
        skip_ws ();
        while !pos < n && s.[!pos] = ',' do
          incr pos;
          atoms := parse_atom () :: !atoms;
          skip_ws ()
        done;
        List.rev !atoms
      end
      else []
    in
    skip_ws ();
    expect '.';
    skip_ws ();
    rules := { head; body } :: !rules
  done;
  make (List.rev !rules)

let term_to_string = function Var v -> v | Const c -> "'" ^ c ^ "'"

let atom_to_string a =
  Printf.sprintf "%s(%s)" a.rel
    (String.concat "," (List.map term_to_string a.args))

let rule_to_string r =
  match r.body with
  | [] -> atom_to_string r.head ^ "."
  | body ->
    Printf.sprintf "%s :- %s." (atom_to_string r.head)
      (String.concat ", " (List.map atom_to_string body))

let to_string p = String.concat "  " (List.map rule_to_string p)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(* Match [atom] against the facts of [db], extending [binding]; calls
   [k] with each extended binding. *)
let match_atom db atom binding k =
  List.iter
    (fun (f : Cdb.fact) ->
      if Array.length f.Cdb.args = List.length atom.args then begin
        let rec unify i terms binding =
          match terms with
          | [] -> k binding
          | Const c :: rest ->
            if f.Cdb.args.(i) = c then unify (i + 1) rest binding
          | Var v :: rest ->
            (match List.assoc_opt v binding with
            | Some c -> if f.Cdb.args.(i) = c then unify (i + 1) rest binding
            | None -> unify (i + 1) rest ((v, f.Cdb.args.(i)) :: binding))
        in
        unify 0 atom.args binding
      end)
    (Cdb.facts_of db atom.rel)

let instantiate_head head binding =
  Cdb.fact head.rel
    (List.map
       (function
         | Const c -> c
         | Var v -> (
           match List.assoc_opt v binding with
           | Some c -> c
           | None -> assert false (* safety was validated *)))
       head.args)

(* One rule application: all head instantiations derivable from [db],
   where at least one body atom is matched within [delta] (the semi-naive
   restriction; when [delta] covers [db] this is naive evaluation). *)
let apply_rule db delta rule acc =
  let rec go atoms binding used_delta acc =
    match atoms with
    | [] -> if used_delta then instantiate_head rule.head binding :: acc else acc
    | a :: rest ->
      let results = ref acc in
      (* match within the full database *)
      match_atom db a binding (fun binding' ->
          let in_delta =
            (* the matched fact could lie in delta; recompute cheaply by
               membership of the instantiated atom *)
            let f =
              instantiate_head
                { rel = a.rel; args = a.args }
                binding'
            in
            Cdb.mem f delta
          in
          results := go rest binding' (used_delta || in_delta) !results);
      !results
  in
  (* Rules with an empty body fire once (ground heads). *)
  match rule.body with
  | [] -> instantiate_head rule.head [] :: acc
  | _ -> go rule.body [] false acc

let saturate p db =
  (* Seed: facts from bodyless rules. *)
  let initial =
    List.fold_left
      (fun acc r -> match r.body with [] -> apply_rule db db r acc | _ -> acc)
      [] p
  in
  let db = ref (List.fold_left (fun d f -> Cdb.add f d) db initial) in
  let delta = ref !db in
  let continue_ = ref true in
  while !continue_ do
    let fresh =
      List.fold_left
        (fun acc r ->
          match r.body with [] -> acc | _ -> apply_rule !db !delta r acc)
        [] p
    in
    let new_facts = List.filter (fun f -> not (Cdb.mem f !db)) fresh in
    match List.sort_uniq Cdb.compare_fact new_facts with
    | [] -> continue_ := false
    | added ->
      delta := Cdb.of_list added;
      db := List.fold_left (fun d f -> Cdb.add f d) !db added
  done;
  !db

let holds p ~goal db =
  let saturated = saturate p db in
  let found = ref false in
  match_atom saturated goal [] (fun _ -> found := true);
  !found

let to_query p ~goal =
  Incdb_cq.Query.Semantic
    {
      Incdb_cq.Query.name =
        Printf.sprintf "datalog[%s ? %s]" (to_string p) (atom_to_string goal);
      monotone = true;
      sem_eval = (fun db -> holds p ~goal db);
    }

let reachability ~from ~to_ =
  let p =
    make
      [
        {
          head = { rel = "Reach"; args = [ Var "x"; Var "y" ] };
          body = [ { rel = "E"; args = [ Var "x"; Var "y" ] } ];
        };
        {
          head = { rel = "Reach"; args = [ Var "x"; Var "z" ] };
          body =
            [
              { rel = "Reach"; args = [ Var "x"; Var "y" ] };
              { rel = "E"; args = [ Var "y"; Var "z" ] };
            ];
        };
      ]
  in
  to_query p ~goal:{ rel = "Reach"; args = [ Const from; Const to_ ] }
