(** Fixed-width bitsets, one machine word or many.

    The completion kernel ([Lineage] clause masks, [Codd]'s Lemma B.2
    matching, [Comp_candidates]' prefix enumerator) was written against
    single-word int masks, which caps the candidate universe at
    [Sys.int_size - 1] bits.  This module abstracts the operations that
    stack actually uses behind a small {!MASK} signature with two
    implementations: {!Int}, the original single-word masks (kept as the
    fast path — a mask is an unboxed int), and {!Wide}, immutable
    [int array] bitsets whose width is fixed at construction.

    Every word of a {!Wide} value holds {!bits_per_word} payload bits
    ([Sys.int_size - 1], so a word is always a nonnegative int — the
    same convention as the single-word masks, which keeps the two
    implementations bit-for-bit comparable position by position).  All
    binary operations require both operands built for the same width;
    bits at or above the width are never set (operations preserve this
    invariant, so structural equality is set equality). *)

(** Payload bits per word ([Sys.int_size - 1] = 62 on 64-bit). *)
val bits_per_word : int

(** Number of words a width-[w] wide bitset occupies ([0] for width 0). *)
val words_for : int -> int

(** The operations the mask-consuming layers are functorized over.
    Sets are over bit positions [0 .. width - 1]; [zero]/[full]/[low]
    fix the width, everything else preserves it. *)
module type MASK = sig
  type t

  (** Implementation tag, for metrics and error messages. *)
  val name : string

  (** Largest representable width ([bits_per_word] for {!Int},
      effectively unbounded for {!Wide}). *)
  val max_width : int

  (** The empty set over [width] bits. *)
  val zero : width:int -> t

  (** All [width] bits set. *)
  val full : width:int -> t

  (** The lowest [n] bits set, in a set of [width] bits ([n <= width]). *)
  val low : width:int -> int -> t

  (** [set m i] is [m] with bit [i] set (functional). *)
  val set : t -> int -> t

  (** [test m i] is whether bit [i] is set. *)
  val test : t -> int -> bool

  val union : t -> t -> t
  val inter : t -> t -> t
  val is_empty : t -> bool

  (** [disjoint a b]: no common bit. *)
  val disjoint : t -> t -> bool

  (** [subset a b]: every bit of [a] is in [b]. *)
  val subset : t -> t -> bool

  val popcount : t -> int

  (** [popcount_inter a b] = [popcount (inter a b)], allocation-free. *)
  val popcount_inter : t -> t -> int

  (** [popcount_diff a b] = |a \ b|, allocation-free — the only use the
      kernel has for within-width complement. *)
  val popcount_diff : t -> t -> int

  (** Index of the lowest set bit, [-1] on the empty set. *)
  val lowest : t -> int

  (** [iter f m] applies [f] to each set bit in ascending order. *)
  val iter : (int -> unit) -> t -> unit

  (** Structural (= set) equality, a total order, and a hash consistent
      with {!equal} — so masks key [Hashtbl]s and sort clause lists. *)
  val equal : t -> t -> bool

  val compare : t -> t -> int
  val hash : t -> int
end

(** Single-word masks: the original kernel representation, verbatim.
    [zero]/[set]/[union]/... compile to the int operations the
    pre-functor code spelled inline.  Widths beyond {!bits_per_word}
    are a programming error ([full]/[low] raise [Invalid_argument]). *)
module Int : MASK with type t = int

(** Multi-word masks: [int array] of {!bits_per_word}-bit words, lowest
    bits in word 0.  Values are immutable except through the explicitly
    unsafe in-place operations below, which exist for worker-private
    enumeration scratch (one array mutated along a depth-first walk
    instead of one allocation per node). *)
module Wide : sig
  include MASK

  (** A private mutable copy for in-place scratch use. *)
  val copy : t -> t

  (** [set_inplace m i] / [clear_inplace m i] mutate [m].  Unsafe in the
      sharing sense: never apply to a mask that escaped to a reader
      (kernel masks, clause arrays, hash keys). *)
  val set_inplace : t -> int -> unit

  val clear_inplace : t -> int -> unit
end
