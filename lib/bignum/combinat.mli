(** Combinatorial quantities used throughout the paper's algorithms.

    The surjection numbers [surj n m] are central to Example 3.10,
    Proposition 3.11 and the uniform counting algorithms of Appendices A.3
    and B.6. *)

(** [factorial n] is [n!].
    @raise Invalid_argument if [n < 0]. *)
val factorial : int -> Nat.t

(** [binomial n k] is [C(n, k)]; zero when [k < 0] or [k > n].
    @raise Invalid_argument if [n < 0]. *)
val binomial : int -> int -> Nat.t

(** [surj n m] is the number of surjective functions from an [n]-element set
    onto an [m]-element set, via inclusion–exclusion
    [surj n m = sum_{i=0}^{m} (-1)^i C(m,i) (m-i)^n].
    It is zero when [m > n], and [surj 0 0 = 1]. *)
val surj : int -> int -> Nat.t

(** [stirling2 n m] is the Stirling number of the second kind, the number of
    partitions of an [n]-set into [m] non-empty blocks.  It satisfies
    [surj n m = m! * stirling2 n m]. *)
val stirling2 : int -> int -> Nat.t

(** [power b e] is [b^e] for machine-integer base and exponent, as a
    natural.
    @raise Invalid_argument if [b < 0] or [e < 0]. *)
val power : int -> int -> Nat.t

(** [falling n k] is the falling factorial [n (n-1) ... (n-k+1)]. *)
val falling : int -> int -> Nat.t

(** [pow2 n] is [2^n]. *)
val pow2 : int -> Nat.t

(** [subsets l] enumerates all sublists of [l] (2^|l| of them); the order of
    elements within each sublist follows [l]. *)
val subsets : 'a list -> 'a list list

(** [int_compositions total parts] lists all vectors of [parts] non-negative
    integers summing to exactly [total]. *)
val int_compositions : int -> int -> int list list

(** [vectors_upto bounds] enumerates all integer vectors [v] with
    [0 <= v.(i) <= bounds.(i)] componentwise. *)
val vectors_upto : int list -> int list list
