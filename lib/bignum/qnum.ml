(* Normalized fraction: gcd(|num|, den) = 1 and den > 0, so structural
   equality coincides with numeric equality. *)

type t = { num : Zint.t; den : Nat.t }

let normalize num den =
  if Nat.is_zero den then raise Division_by_zero
  else if Zint.is_zero num then { num = Zint.zero; den = Nat.one }
  else begin
    let g = Nat.gcd (Zint.abs num) den in
    let num_mag = Nat.div (Zint.abs num) g in
    let den' = Nat.div den g in
    let num' =
      if Zint.sign num >= 0 then Zint.of_nat num_mag
      else Zint.neg (Zint.of_nat num_mag)
    in
    { num = num'; den = den' }
  end

let make num den =
  match Zint.sign den with
  | 0 -> raise Division_by_zero
  | s when s > 0 -> normalize num (Zint.abs den)
  | _ -> normalize (Zint.neg num) (Zint.abs den)

let of_zint z = { num = z; den = Nat.one }
let of_nat n = of_zint (Zint.of_nat n)
let of_int n = of_zint (Zint.of_int n)
let of_ints a b = make (Zint.of_int a) (Zint.of_int b)
let zero = of_int 0
let one = of_int 1
let num q = q.num
let den q = q.den
let is_zero q = Zint.is_zero q.num
let is_integer q = Nat.equal q.den Nat.one

let to_zint q =
  if is_integer q then q.num
  else invalid_arg "Qnum.to_zint: not an integer"

let equal (a : t) (b : t) = a = b

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den *)
  Zint.compare
    (Zint.mul a.num (Zint.of_nat b.den))
    (Zint.mul b.num (Zint.of_nat a.den))

let neg q = { q with num = Zint.neg q.num }

let add a b =
  normalize
    (Zint.add
       (Zint.mul a.num (Zint.of_nat b.den))
       (Zint.mul b.num (Zint.of_nat a.den)))
    (Nat.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = normalize (Zint.mul a.num b.num) (Nat.mul a.den b.den)

let inv q =
  match Zint.sign q.num with
  | 0 -> raise Division_by_zero
  | s when s > 0 -> { num = Zint.of_nat q.den; den = Zint.abs q.num }
  | _ -> { num = Zint.neg (Zint.of_nat q.den); den = Zint.abs q.num }

let div a b = mul a (inv b)
let sign q = Zint.sign q.num

let to_string q =
  if is_integer q then Zint.to_string q.num
  else Zint.to_string q.num ^ "/" ^ Nat.to_string q.den

let pp fmt q = Format.pp_print_string fmt (to_string q)
