let bits_per_word = Sys.int_size - 1
let words_for width = (width + bits_per_word - 1) / bits_per_word

let popword m =
  let rec pop m acc = if m = 0 then acc else pop (m land (m - 1)) (acc + 1) in
  pop m 0

let lowword m =
  (* Index of the lowest set bit of a nonzero word. *)
  let b = m land -m in
  let rec log2 b acc = if b = 1 then acc else log2 (b lsr 1) (acc + 1) in
  log2 b 0

module type MASK = sig
  type t

  val name : string
  val max_width : int
  val zero : width:int -> t
  val full : width:int -> t
  val low : width:int -> int -> t
  val set : t -> int -> t
  val test : t -> int -> bool
  val union : t -> t -> t
  val inter : t -> t -> t
  val is_empty : t -> bool
  val disjoint : t -> t -> bool
  val subset : t -> t -> bool
  val popcount : t -> int
  val popcount_inter : t -> t -> int
  val popcount_diff : t -> t -> int
  val lowest : t -> int
  val iter : (int -> unit) -> t -> unit
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
end

module Int = struct
  type t = int

  let name = "int"
  let max_width = bits_per_word

  let low ~width n =
    if n < 0 || n > width || width > max_width then
      invalid_arg "Bitset.Int.low: width out of range";
    if n = max_width then max_int else (1 lsl n) - 1

  let zero ~width:_ = 0
  let full ~width = low ~width width
  let set m i = m lor (1 lsl i)
  let test m i = m land (1 lsl i) <> 0
  let union a b = a lor b
  let inter a b = a land b
  let is_empty m = m = 0
  let disjoint a b = a land b = 0
  let subset a b = a land b = a
  let popcount = popword
  let popcount_inter a b = popword (a land b)
  let popcount_diff a b = popword (a land lnot b)
  let lowest m = if m = 0 then -1 else lowword m

  let iter f m =
    let rest = ref m in
    while !rest <> 0 do
      f (lowword !rest);
      rest := !rest land (!rest - 1)
    done

  let equal (a : int) b = a = b
  let compare = Stdlib.Int.compare
  let hash (m : int) = m
end

module Wide = struct
  type t = int array

  let name = "wide"

  (* Bounded only by array length; in practice the candidate cap rules
     long before this does. *)
  let max_width = bits_per_word * Sys.max_array_length

  let zero ~width = Array.make (words_for width) 0

  let low ~width n =
    if n < 0 || n > width then invalid_arg "Bitset.Wide.low: width out of range";
    let m = zero ~width in
    let fullw = n / bits_per_word and rem = n mod bits_per_word in
    (* [max_int] is exactly [bits_per_word] ones. *)
    for k = 0 to fullw - 1 do
      m.(k) <- max_int
    done;
    if rem > 0 then m.(fullw) <- (1 lsl rem) - 1;
    m

  let full ~width = low ~width width

  let set m i =
    let m' = Array.copy m in
    m'.(i / bits_per_word) <-
      m'.(i / bits_per_word) lor (1 lsl (i mod bits_per_word));
    m'

  let test m i = m.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

  let union a b = Array.init (Array.length a) (fun k -> a.(k) lor b.(k))
  let inter a b = Array.init (Array.length a) (fun k -> a.(k) land b.(k))

  let is_empty m =
    let rec go k = k = Array.length m || (m.(k) = 0 && go (k + 1)) in
    go 0

  let disjoint a b =
    let rec go k = k = Array.length a || (a.(k) land b.(k) = 0 && go (k + 1)) in
    go 0

  let subset a b =
    let rec go k =
      k = Array.length a || (a.(k) land b.(k) = a.(k) && go (k + 1))
    in
    go 0

  let popcount m = Array.fold_left (fun acc w -> acc + popword w) 0 m

  let popcount_inter a b =
    let acc = ref 0 in
    for k = 0 to Array.length a - 1 do
      acc := !acc + popword (a.(k) land b.(k))
    done;
    !acc

  let popcount_diff a b =
    (* Word-wise [lnot] sets junk high bits, but [land a] clears them
       again ([a]'s bits beyond the width are zero by invariant). *)
    let acc = ref 0 in
    for k = 0 to Array.length a - 1 do
      acc := !acc + popword (a.(k) land lnot b.(k))
    done;
    !acc

  let lowest m =
    let rec go k =
      if k = Array.length m then -1
      else if m.(k) <> 0 then (k * bits_per_word) + lowword m.(k)
      else go (k + 1)
    in
    go 0

  let iter f m =
    for k = 0 to Array.length m - 1 do
      let rest = ref m.(k) in
      while !rest <> 0 do
        f ((k * bits_per_word) + lowword !rest);
        rest := !rest land (!rest - 1)
      done
    done

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go k = k = Array.length a || (a.(k) = b.(k) && go (k + 1)) in
    go 0

  (* Same-width masks compare as the numbers they spell (word 0 least
     significant), matching the numeric order int masks sort in. *)
  let compare a b =
    let c = Stdlib.Int.compare (Array.length a) (Array.length b) in
    if c <> 0 then c
    else
      let rec go k =
        if k < 0 then 0
        else
          let c = Stdlib.Int.compare a.(k) b.(k) in
          if c <> 0 then c else go (k - 1)
      in
      go (Array.length a - 1)

  let hash m =
    Array.fold_left (fun h w -> ((h * 1000003) lxor w) land max_int) 17 m

  let copy = Array.copy

  let set_inplace m i =
    m.(i / bits_per_word) <-
      m.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

  let clear_inplace m i =
    m.(i / bits_per_word) <-
      m.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word))
end
