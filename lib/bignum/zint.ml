(* Sign-magnitude representation; [Zero] keeps the form canonical so that
   structural equality coincides with numeric equality. *)

type t =
  | Zero
  | Pos of Nat.t
  | Neg of Nat.t

let zero = Zero
let of_nat n = if Nat.is_zero n then Zero else Pos n

let of_int n =
  if n = 0 then Zero
  else if n > 0 then Pos (Nat.of_int n)
  else Neg (Nat.of_int (-n))

let one = of_int 1
let minus_one = of_int (-1)

let to_nat = function
  | Zero -> Nat.zero
  | Pos m -> m
  | Neg _ -> invalid_arg "Zint.to_nat: negative value"

let to_int_opt = function
  | Zero -> Some 0
  | Pos m -> Nat.to_int_opt m
  | Neg m -> Option.map (fun i -> -i) (Nat.to_int_opt m)

let to_int z =
  match to_int_opt z with
  | Some n -> n
  | None -> failwith "Zint.to_int: value does not fit in a machine integer"

let sign = function Zero -> 0 | Pos _ -> 1 | Neg _ -> -1
let is_zero z = z = Zero
let equal (a : t) (b : t) = a = b

let compare a b =
  match (a, b) with
  | Zero, Zero -> 0
  | Zero, Pos _ | Neg _, (Zero | Pos _) -> -1
  | Zero, Neg _ | Pos _, (Zero | Neg _) -> 1
  | Pos m, Pos n -> Nat.compare m n
  | Neg m, Neg n -> Nat.compare n m

let neg = function Zero -> Zero | Pos m -> Neg m | Neg m -> Pos m
let abs = function Zero -> Nat.zero | Pos m | Neg m -> m

(* Add magnitudes [m + n] with the result carrying sign [s]. *)
let signed s m = if s >= 0 then of_nat m else (if Nat.is_zero m then Zero else Neg m)

let add a b =
  match (a, b) with
  | Zero, x | x, Zero -> x
  | Pos m, Pos n -> Pos (Nat.add m n)
  | Neg m, Neg n -> Neg (Nat.add m n)
  | Pos m, Neg n | Neg n, Pos m ->
    let c = Nat.compare m n in
    if c = 0 then Zero
    else if c > 0 then Pos (Nat.sub m n)
    else Neg (Nat.sub n m)

let sub a b = add a (neg b)

let mul a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | Pos m, Pos n | Neg m, Neg n -> Pos (Nat.mul m n)
  | Pos m, Neg n | Neg m, Pos n -> Neg (Nat.mul m n)

let divmod a b =
  match (a, b) with
  | _, Zero -> raise Division_by_zero
  | Zero, _ -> (Zero, Zero)
  | _ ->
    let q, r = Nat.divmod (abs a) (abs b) in
    let qs = sign a * sign b in
    (signed qs q, signed (sign a) r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow a e =
  if e < 0 then invalid_arg "Zint.pow: negative exponent";
  let mag = Nat.pow (abs a) e in
  if sign a >= 0 || e land 1 = 0 then of_nat mag else signed (-1) mag

let gcd a b = Nat.gcd (abs a) (abs b)
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_string = function
  | Zero -> "0"
  | Pos m -> Nat.to_string m
  | Neg m -> "-" ^ Nat.to_string m

let of_string s =
  if String.length s > 0 && s.[0] = '-' then
    signed (-1) (Nat.of_string (String.sub s 1 (String.length s - 1)))
  else of_nat (Nat.of_string s)

let pp fmt z = Format.pp_print_string fmt (to_string z)
let sum l = List.fold_left add zero l
let product l = List.fold_left mul one l
