let factorial n =
  if n < 0 then invalid_arg "Combinat.factorial: negative argument";
  let rec go acc i = if i > n then acc else go (Nat.mul acc (Nat.of_int i)) (i + 1) in
  go Nat.one 1

let binomial n k =
  if n < 0 then invalid_arg "Combinat.binomial: negative n";
  if k < 0 || k > n then Nat.zero
  else begin
    (* C(n,k) = prod_{i=1}^{k} (n-k+i)/i, exact at every step. *)
    let k = Stdlib.min k (n - k) in
    let acc = ref Nat.one in
    for i = 1 to k do
      acc := Nat.div (Nat.mul !acc (Nat.of_int (n - k + i))) (Nat.of_int i)
    done;
    !acc
  end

let power b e =
  if b < 0 then invalid_arg "Combinat.power: negative base";
  Nat.pow (Nat.of_int b) e

let surj n m =
  if n < 0 || m < 0 then invalid_arg "Combinat.surj: negative argument";
  if m > n then Nat.zero
  else begin
    let terms = ref Zint.zero in
    for i = 0 to m do
      let t = Zint.of_nat (Nat.mul (binomial m i) (power (m - i) n)) in
      terms := Zint.add !terms (if i land 1 = 0 then t else Zint.neg t)
    done;
    Zint.to_nat !terms
  end

let stirling2 n m =
  if n < 0 || m < 0 then invalid_arg "Combinat.stirling2: negative argument";
  if m > n then Nat.zero else Nat.div (surj n m) (factorial m)

let falling n k =
  let rec go acc i =
    if i >= k then acc else go (Nat.mul acc (Nat.of_int (n - i))) (i + 1)
  in
  if k < 0 || k > n then Nat.zero else go Nat.one 0

let pow2 n = Nat.pow Nat.two n

let subsets l =
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
      let subs = go rest in
      List.map (fun s -> x :: s) subs @ subs
  in
  go l

let rec int_compositions total parts =
  if parts = 0 then if total = 0 then [ [] ] else []
  else begin
    let with_head h = List.map (fun t -> h :: t) (int_compositions (total - h) (parts - 1)) in
    List.concat_map with_head (List.init (total + 1) Fun.id)
  end

let rec vectors_upto = function
  | [] -> [ [] ]
  | b :: rest ->
    let tails = vectors_upto rest in
    List.concat_map (fun v -> List.map (fun t -> v :: t) tails) (List.init (b + 1) Fun.id)
