(* Little-endian base-2^31 representation.  A 31-bit digit size keeps every
   intermediate of schoolbook multiplication within a 63-bit OCaml integer:
   (2^31-1)^2 + 2*(2^31-1) = 2^62 - 1, the largest representable value. *)

type t = int array

let digit_bits = 31
let base = 1 lsl digit_bits
let digit_mask = base - 1

let zero : t = [||]

(* Strip trailing zero digits so that the representation is canonical. *)
let normalize (a : int array) : t =
  let n = Array.length a in
  let rec top i = if i >= 0 && a.(i) = 0 then top (i - 1) else i in
  let hi = top (n - 1) in
  if hi = n - 1 then a else Array.sub a 0 (hi + 1)

let is_zero (a : t) = Array.length a = 0

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative argument"
  else if n = 0 then zero
  else if n < base then [| n |]
  else begin
    (* A 63-bit integer needs at most three 31-bit digits. *)
    let d0 = n land digit_mask in
    let d1 = (n lsr digit_bits) land digit_mask in
    let d2 = n lsr (2 * digit_bits) in
    normalize [| d0; d1; d2 |]
  end

let one = of_int 1
let two = of_int 2

let to_int_opt (a : t) =
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0)
  | 2 -> Some (a.(0) lor (a.(1) lsl digit_bits))
  | 3 when a.(2) < 1 lsl (Sys.int_size - 1 - (2 * digit_bits)) ->
    Some (a.(0) lor (a.(1) lsl digit_bits) lor (a.(2) lsl (2 * digit_bits)))
  | _ -> None

let to_int a =
  match to_int_opt a with
  | Some n -> n
  | None -> failwith "Nat.to_int: value does not fit in a machine integer"

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec cmp i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else cmp (i - 1)
    in
    cmp (la - 1)

let hash (a : t) = Hashtbl.hash a

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = Stdlib.max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    r.(i) <- s land digit_mask;
    carry := s lsr digit_bits
  done;
  r.(n) <- !carry;
  normalize r

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Nat.sub: result would be negative";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let s = a.(i) - db - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize r

let mul_schoolbook (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let t = (ai * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- t land digit_mask;
        carry := t lsr digit_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let t = r.(!k) + !carry in
        r.(!k) <- t land digit_mask;
        carry := t lsr digit_bits;
        incr k
      done
    done;
    normalize r
  end

(* Karatsuba above this digit count; schoolbook below.  The threshold is
   generous because counting workloads rarely exceed a few hundred
   digits, where schoolbook's constant factor wins. *)
let karatsuba_threshold = 32

let shift_digits (a : t) m =
  if is_zero a then zero
  else Array.append (Array.make m 0) a

let low_digits (a : t) m = normalize (Array.sub a 0 (min m (Array.length a)))

let high_digits (a : t) m =
  if Array.length a <= m then zero
  else Array.sub a m (Array.length a - m)

let rec mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else if Stdlib.min la lb <= karatsuba_threshold then mul_schoolbook a b
  else begin
    let m = Stdlib.max la lb / 2 in
    let a0 = low_digits a m and a1 = high_digits a m in
    let b0 = low_digits b m and b1 = high_digits b m in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add z0 (add (shift_digits z1 m) (shift_digits z2 (2 * m)))
  end

let succ a = add a one
let pred a = sub a one

(* [mul_small a d] with [0 <= d < base]. *)
let mul_small (a : t) (d : int) : t =
  if d = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let t = (a.(i) * d) + !carry in
      r.(i) <- t land digit_mask;
      carry := t lsr digit_bits
    done;
    r.(la) <- !carry;
    normalize r
  end

(* [divmod_small a d] with [0 < d < base]; returns quotient and small rem. *)
let divmod_small (a : t) (d : int) : t * int =
  if d <= 0 then raise Division_by_zero;
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl digit_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, !r)

let bit_length (a : t) =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec width n acc = if n = 0 then acc else width (n lsr 1) (acc + 1) in
    ((la - 1) * digit_bits) + width top 0
  end

let bit (a : t) (i : int) =
  let w = i / digit_bits and b = i mod digit_bits in
  if w >= Array.length a then 0 else (a.(w) lsr b) land 1

(* Binary long division: O(bits(a) * digits(a)).  Simple and adequate for
   the magnitudes produced by the counting algorithms. *)
let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_small a b.(0) in
    (q, of_int r)
  end
  else begin
    let n = bit_length a in
    let q = Array.make (Array.length a) 0 in
    let r = ref zero in
    for i = n - 1 downto 0 do
      r := add (mul_small !r 2) (of_int (bit a i));
      if compare !r b >= 0 then begin
        r := sub !r b;
        q.(i / digit_bits) <- q.(i / digit_bits) lor (1 lsl (i mod digit_bits))
      end
    done;
    (normalize q, !r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec pow (a : t) (e : int) : t =
  if e < 0 then invalid_arg "Nat.pow: negative exponent"
  else if e = 0 then one
  else begin
    let h = pow a (e / 2) in
    let h2 = mul h h in
    if e land 1 = 1 then mul h2 a else h2
  end

let rec gcd (a : t) (b : t) : t = if is_zero b then a else gcd b (rem a b)
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_float (a : t) =
  Array.fold_right (fun d acc -> (acc *. float_of_int base) +. float_of_int d) a 0.

let to_string (a : t) =
  if is_zero a then "0"
  else begin
    let chunks = ref [] in
    let cur = ref a in
    while not (is_zero !cur) do
      let q, r = divmod_small !cur 1_000_000_000 in
      chunks := r :: !chunks;
      cur := q
    done;
    match !chunks with
    | [] -> assert false
    | first :: rest ->
      let buf = Buffer.create 16 in
      Buffer.add_string buf (string_of_int first);
      let add_chunk c = Buffer.add_string buf (Printf.sprintf "%09d" c) in
      List.iter add_chunk rest;
      Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Nat.of_string: empty string";
  let acc = ref zero in
  for i = 0 to n - 1 do
    match s.[i] with
    | '0' .. '9' as c ->
      acc := add (mul_small !acc 10) (of_int (Char.code c - Char.code '0'))
    | c -> invalid_arg (Printf.sprintf "Nat.of_string: bad character %c" c)
  done;
  !acc

let pp fmt a = Format.pp_print_string fmt (to_string a)
let sum l = List.fold_left add zero l
let product l = List.fold_left mul one l
