(** Arbitrary-precision natural numbers.

    Counting valuations and completions of an incomplete database produces
    numbers that are exponential in the size of the input (for instance the
    total number of valuations is the product of the domain sizes of all
    nulls), so every counter in this repository returns values of this type
    rather than a machine integer.

    The representation is a little-endian array of 31-bit digits with no
    trailing zero digit; the empty array denotes [0]. All operations are
    purely functional. *)

type t

val zero : t
val one : t
val two : t

(** [of_int n] converts a non-negative machine integer.
    @raise Invalid_argument if [n < 0]. *)
val of_int : int -> t

(** [to_int n] converts back to a machine integer.
    @raise Failure if the value does not fit. *)
val to_int : t -> int

(** [to_int_opt n] is [Some i] when the value fits in a machine integer. *)
val to_int_opt : t -> int option

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val add : t -> t -> t

(** [sub a b] is [a - b].
    @raise Invalid_argument if [b > a]. *)
val sub : t -> t -> t

val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

(** [divmod a b] is the pair (quotient, remainder) of Euclidean division.
    @raise Division_by_zero if [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [pow base e] is [base] raised to the non-negative machine integer [e]. *)
val pow : t -> int -> t

val gcd : t -> t -> t

(** Number of significant bits; [bit_length zero = 0]. *)
val bit_length : t -> int

val min : t -> t -> t
val max : t -> t -> t

(** Approximate conversion to a float (infinity on overflow); used only
    for sampling weights and error reporting, never for exact counting. *)
val to_float : t -> float

(** Decimal string conversion. *)
val to_string : t -> string

(** Parse a decimal string.
    @raise Invalid_argument on the empty string or non-digit characters. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit

(** [sum l] adds up a list of naturals. *)
val sum : t list -> t

(** [product l] multiplies a list of naturals ([one] for the empty list). *)
val product : t list -> t
