(** Exact rational numbers, used by the exact linear algebra of
    [incdb_linalg] (matrix inversion in the Proposition 3.11 Turing
    reduction and the Appendix B.5 polynomial interpolation). *)

type t

val zero : t
val one : t

(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den] is zero. *)
val make : Zint.t -> Zint.t -> t

val of_int : int -> t
val of_ints : int -> int -> t
val of_zint : Zint.t -> t
val of_nat : Nat.t -> t

val num : t -> Zint.t

(** Denominator, always positive. *)
val den : t -> Nat.t

val is_zero : t -> bool

(** [is_integer q] holds when the denominator is one. *)
val is_integer : t -> bool

(** [to_zint q] for an integer-valued rational.
    @raise Invalid_argument if [q] is not an integer. *)
val to_zint : t -> Zint.t

val equal : t -> t -> bool
val compare : t -> t -> int
val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero on a zero divisor. *)
val div : t -> t -> t

(** @raise Division_by_zero on zero. *)
val inv : t -> t

val sign : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
