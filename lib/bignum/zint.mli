(** Arbitrary-precision signed integers, built on {!Nat}.

    Used wherever inclusion–exclusion produces signed intermediate values
    (surjection numbers, the block sums of Theorem 3.9) and as the numerator
    type of the exact rationals in [incdb_linalg]. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
val of_nat : Nat.t -> t

(** [to_nat z] converts a non-negative integer to a natural.
    @raise Invalid_argument if [z] is negative. *)
val to_nat : t -> Nat.t

val to_int : t -> int
val to_int_opt : t -> int option

(** Sign of the number: [-1], [0] or [1]. *)
val sign : t -> int

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val neg : t -> t
val abs : t -> Nat.t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Truncated division (rounds toward zero), as for OCaml's [( / )].
    @raise Division_by_zero if the divisor is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [pow base e] for a non-negative machine exponent [e]. *)
val pow : t -> int -> t

val gcd : t -> t -> Nat.t
val min : t -> t -> t
val max : t -> t -> t
val to_string : t -> string
val of_string : string -> t
val pp : Format.formatter -> t -> unit
val sum : t list -> t
val product : t list -> t
