(** Warm state of a persistent incdbd process.

    Bundles the four reuse layers of the server: a bounded result cache
    (canonical request key → finished payload), parse caches for
    databases (content-stamped) and queries, one shared
    {!Incdb_core.Val_kernel} subproblem cache (sound across requests —
    its keys are database-independent), and per-(db, query)
    {!Incdb_core.Comp_kernel} transform-memo bundles with their run
    locks.  All layers are thread- and domain-safe, and all register
    with {!Incdb_obs.Export.register_cache_reset} so the [reset]
    protocol op can drop them generation-safely. *)

open Incdb_cq
open Incdb_incomplete
open Incdb_core

type t

val default_result_cap : int

(** [create ()] builds an empty warm state and registers its cache-reset
    hooks.  [result_cap] bounds the result cache (0 disables it),
    [val_cache_entries] sizes the shared #Val subproblem cache,
    [memo_cap] bounds the #Comp memo pool (recycled wholesale at
    capacity).
    @raise Invalid_argument on a negative [result_cap] or a [memo_cap]
    below 1. *)
val create :
  ?result_cap:int -> ?val_cache_entries:int -> ?memo_cap:int -> unit -> t

(** Resolve a request's database source to its content key and parsed
    table, through the cache.  A path is stamped with (mtime, size), so
    an edited file is reparsed and keys differently. *)
val load_db : t -> Protocol.source -> (string * Idb.t, string) result

val parse_query : t -> string -> (Cq.t, string) result

(** Result-cache lookup/insert; hits and misses tick
    [serve.result_cache_hits]/[..._misses]. *)
val find_result : t -> string -> Incdb_obs.Json.t option

val store_result : t -> string -> Incdb_obs.Json.t -> unit
val result_count : t -> int

(** The shared #Val subproblem cache, passed to every kernel call. *)
val val_cache : t -> Val_kernel.cache

(** The transform-memo bundle and run lock for one (db, query) cache
    key; hold the lock across the Comp_kernel run that uses it. *)
val comp_memos : t -> string -> Comp_kernel.memos * Mutex.t

(** Current population of every warm layer, for the [metrics] op. *)
val cache_sizes : t -> (string * int) list
