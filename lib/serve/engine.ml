(* Request execution: one function from a parsed request to a response
   object, shared by the socket server, the stdio mode and the tests.

   Every engine failure a one-shot idbcount turns into a one-line
   message and exit 1 is admission control here: the typed resource
   limits (Too_many_valuations, Too_many_candidates, Too_many_events,
   Infeasible, Too_many_clauses) map to structured error responses with
   a machine-readable [kind], the request is refused, and the server
   keeps serving.  Nothing in this module exits or lets an exception
   escape past [handle]. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_core
module Json = Incdb_obs.Json
module Metrics = Incdb_obs.Metrics

let requests_total = Metrics.counter "serve.requests"
let errors_total = Metrics.counter "serve.errors"
let refusals_total = Metrics.counter "serve.refusals"
let spill_orphans = Metrics.counter "serve.spill_orphans"
let spill_dirs_active = Metrics.gauge "serve.spill_dirs_active"
let active_dirs = Atomic.make 0

(* ------------------------------------------------------------------ *)
(* Per-request spill isolation                                         *)
(* ------------------------------------------------------------------ *)

(* Each request that can touch disk gets a private spill directory,
   removed when the request finishes — on success, on refusal, and when
   the client has gone away mid-request (the computation still unwinds
   through the same Fun.protect).  The kernels already delete their own
   temp files; files found at removal time are counted as
   [serve.spill_orphans] (a regression signal, asserted 0 in tests). *)

let dir_seq = Atomic.make 0

let with_spill_dir f =
  let rec make tries =
    let name =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "incdbd-spill-%d-%d" (Unix.getpid ())
           (Atomic.fetch_and_add dir_seq 1))
    in
    match Unix.mkdir name 0o700 with
    | () -> name
    | exception Unix.Unix_error (Unix.EEXIST, _, _) when tries < 100 ->
      make (tries + 1)
  in
  let dir = make 0 in
  Metrics.set spill_dirs_active
    (float_of_int (Atomic.fetch_and_add active_dirs 1 + 1));
  Fun.protect
    (fun () -> f dir)
    ~finally:(fun () ->
      Metrics.set spill_dirs_active
        (float_of_int (Atomic.fetch_and_add active_dirs (-1) - 1));
      match Sys.readdir dir with
      | entries ->
        Array.iter
          (fun e ->
            Metrics.incr spill_orphans;
            try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
          entries;
        (try Unix.rmdir dir with Unix.Unix_error _ -> ())
      | exception Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Error mapping (the handle_limits of the protocol)                   *)
(* ------------------------------------------------------------------ *)

let error_response ~id exn =
  let refusal kind ?(data = []) msg =
    Metrics.incr refusals_total;
    Protocol.err ~id ~kind ~data msg
  in
  match exn with
  | Protocol.Bad msg ->
    Metrics.incr errors_total;
    Protocol.err ~id ~kind:"bad_request" msg
  | Invalid_argument msg -> refusal "invalid_argument" msg
  | Idb.Too_many_valuations { total; limit } ->
    refusal "too_many_valuations"
      ~data:
        [ ("total", Json.String (Nat.to_string total));
          ("limit", Json.Int limit) ]
      (Printf.sprintf
         "exhaustive enumeration would visit %s valuations (limit %d); raise \
          brute_limit or use approx/bounds"
         (Nat.to_string total) limit)
  | Comp_candidates.Too_many_candidates { universe; limit } ->
    refusal "too_many_candidates"
      ~data:[ ("universe", Json.Int universe); ("limit", Json.Int limit) ]
      (Printf.sprintf
         "the candidate universe has %d ground facts (limit %d); raise \
          max_candidates or use bounds"
         universe limit)
  | Val_kernel.Too_many_events { events; limit } ->
    refusal "too_many_events"
      ~data:[ ("events", Json.Int events); ("limit", Json.Int limit) ]
      (Printf.sprintf
         "the #Val kernel would compile %d Karp-Luby events (limit %d); \
          raise val_max_events or brute_limit"
         events limit)
  | Comp_kernel.Infeasible reason ->
    refusal "comp_infeasible"
      ~data:
        [ ("reason", Json.String (Comp_kernel.infeasible_to_string reason)) ]
      (Printf.sprintf
         "the #Comp elimination kernel declined the instance: %s"
         (Comp_kernel.infeasible_to_string reason))
  | Lineage.Too_many_clauses { clauses; limit } ->
    refusal "too_many_clauses"
      ~data:[ ("clauses", Json.Int clauses); ("limit", Json.Int limit) ]
      (Printf.sprintf
         "the compiled lineage has %d clauses, more than one conflict mask \
          word holds (limit %d)"
         clauses limit)
  | exn ->
    Metrics.incr errors_total;
    Protocol.err ~id ~kind:"internal_error" (Printexc.to_string exn)

(* ------------------------------------------------------------------ *)
(* Request plumbing                                                    *)
(* ------------------------------------------------------------------ *)

exception Db_error of string

let require_db state (r : Protocol.t) =
  match r.source with
  | None -> raise (Protocol.Bad "this op needs \"db\" or \"db_text\"")
  | Some src -> (
    match State.load_db state src with
    | Ok pair -> pair
    | Error msg -> raise (Db_error msg))

let require_query state (r : Protocol.t) =
  match r.query with
  | None -> raise (Protocol.Bad "this op needs a \"query\"")
  | Some s -> (
    match State.parse_query state s with
    | Ok q -> q
    | Error msg -> raise (Protocol.Bad ("bad query: " ^ msg)))

(* ------------------------------------------------------------------ *)
(* Op bodies (result payloads only)                                    *)
(* ------------------------------------------------------------------ *)

let run_count state (r : Protocol.t) ~db_key db q =
  let setting_problem =
    match r.problem with
    | Protocol.Val -> Setting.Valuations
    | Protocol.Comp -> Setting.Completions
  in
  let setting = Setting.of_idb setting_problem db in
  let classification = Classify.verdict_to_string (Classify.exact setting q) in
  with_spill_dir @@ fun spill_dir ->
  let algo_name, result =
    match r.problem with
    | Protocol.Val ->
      let a, n =
        Count_val.count ~brute_limit:r.brute_limit
          ~val_width_bound:r.val_width_bound ~val_max_events:r.val_max_events
          ~val_max_cells:r.val_max_cells ~val_order:r.val_order
          ~val_cache_entries:r.val_cache_entries
          ~val_cache:(State.val_cache state) ~val_spill:r.val_spill
          ~val_spill_dir:spill_dir ~jobs:r.jobs q db
      in
      (Count_val.algorithm_to_string a, n)
    | Protocol.Comp ->
      let memos, memo_lock =
        State.comp_memos state (db_key ^ "|" ^ Cq.to_string q)
      in
      let a, n =
        Mutex.protect memo_lock (fun () ->
            Count_comp.count ~brute_limit:r.brute_limit
              ~max_candidates:r.max_candidates ~jobs:r.jobs ~mask:r.comp_mask
              ~comp_elim:r.comp_elim ~comp_width_bound:r.comp_width_bound
              ~comp_max_cells:r.comp_max_cells ~comp_memos:memos
              ~comp_spill_dir:spill_dir q db)
      in
      (Count_comp.algorithm_to_string a, n)
  in
  Json.Assoc
    [
      ("setting", Json.String (Setting.to_string setting));
      ("classification", Json.String classification);
      ("algorithm", Json.String algo_name);
      ( "total_valuations",
        Json.String (Nat.to_string (Idb.total_valuations db)) );
      ("count", Json.String (Nat.to_string result));
    ]

let run_approx state (r : Protocol.t) db q =
  let samples = Option.value ~default:50_000 r.samples in
  let query = Query.Bcq q in
  with_spill_dir @@ fun spill_dir ->
  let head, est =
    match r.meth with
    | Protocol.Karp_luby ->
      let events = List.length (Incdb_approx.Karp_luby.events query db) in
      let est =
        if r.jobs = 1 then
          Incdb_approx.Karp_luby.estimate ~seed:r.seed ~samples query db
        else
          Incdb_par.Karp_luby_par.estimate ~jobs:r.jobs ~seed:r.seed ~samples
            query db
      in
      ([ ("method", Json.String "karp-luby"); ("events", Json.Int events) ], est)
    | Protocol.Monte_carlo ->
      ( [ ("method", Json.String "monte-carlo") ],
        Incdb_approx.Montecarlo.estimate ~seed:r.seed ~samples query db )
  in
  let exact_fields =
    if not r.exact_check then []
    else
      match
        Val_kernel.count ~width_bound:r.val_width_bound
          ~max_cells:r.val_max_cells ~order:r.val_order
          ~cache_entries:r.val_cache_entries ~cache:(State.val_cache state)
          ~spill:r.val_spill ~spill_dir ~jobs:r.jobs query db
      with
      | Some n -> [ ("exact", Json.String (Nat.to_string n)) ]
      | None -> []
      | exception Val_kernel.Too_many_events { events; limit } ->
        (* Best-effort cross-check, like the CLI: the estimate stands. *)
        [
          ( "exact_skipped",
            Json.String
              (Printf.sprintf "%d events exceed limit %d" events limit) );
        ]
  in
  Json.Assoc
    (head
    @ [
        ("samples", Json.Int samples);
        ("seed", Json.Int r.seed);
        ("estimate", Json.Float est);
        ("estimate_text", Json.String (Printf.sprintf "%.6g" est));
      ]
    @ exact_fields
    @ [
        ( "total_valuations",
          Json.String (Nat.to_string (Idb.total_valuations db)) );
      ])

let run_classify q =
  Json.Assoc
    [
      ("query", Json.String (Cq.to_string q));
      ( "settings",
        Json.List
          (List.map
             (fun s ->
               Json.Assoc
                 [
                   ("setting", Json.String (Setting.to_string s));
                   ( "exact",
                     Json.String
                       (Classify.verdict_to_string (Classify.exact s q)) );
                   ( "approx",
                     Json.String
                       (Classify.approx_verdict_to_string
                          (Classify.approximate s q)) );
                   ("class", Json.String (Classify.membership s));
                 ])
             Setting.all) );
    ]

let run_bounds (r : Protocol.t) db q =
  let samples = Option.value ~default:5_000 r.samples in
  let b = Comp_bounds.bounds ~seed:r.seed ~samples q db in
  let exact =
    match Comp_bounds.exact_within ~seed:r.seed ~samples q db with
    | Some n -> Json.String (Nat.to_string n)
    | None -> Json.Null
  in
  Json.Assoc
    [
      ("lower", Json.String (Nat.to_string b.Comp_bounds.lower));
      ("upper", Json.String (Nat.to_string b.Comp_bounds.upper));
      ("exact", exact);
    ]

let run_metrics state =
  Json.Assoc
    [
      ("prometheus", Json.String (Incdb_obs.Prom.to_string ()));
      ( "counters",
        Json.Assoc
          (List.map
             (fun (k, v) -> (k, Json.Int v))
             (Metrics.counters_snapshot ())) );
      ( "caches",
        Json.Assoc
          (List.map (fun (k, v) -> (k, Json.Int v)) (State.cache_sizes state))
      );
    ]

let run_reset (r : Protocol.t) =
  (* Metrics and trace generations always roll (generation-safe: spans
     still open keep writing into the old generation); warm caches only
     go when asked, because dropping them is the opposite of what a
     persistent server is for. *)
  Incdb_obs.Export.reset ();
  let dropped =
    if r.caches then begin
      Incdb_obs.Export.reset_caches ();
      Incdb_obs.Export.registered_caches ()
    end
    else []
  in
  Json.Assoc
    [
      ("metrics", Json.Bool true);
      ("caches", Json.List (List.map (fun c -> Json.String c) dropped));
    ]

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

(* Ops whose result payload is a pure function of the request and the
   database contents — the cacheable ones. *)
let cacheable (r : Protocol.t) =
  match r.op with
  | "count" | "approx" | "classify" | "bounds" -> true
  | _ -> false

let rec handle state (r : Protocol.t) : Json.t =
  Metrics.incr requests_total;
  let id = r.id in
  match
    match r.op with
    | "ping" -> Protocol.ok ~id (Json.Assoc [ ("pong", Json.Bool true) ])
    | "metrics" -> Protocol.ok ~id (run_metrics state)
    | "reset" -> Protocol.ok ~id (run_reset r)
    | "shutdown" ->
      Protocol.ok ~id (Json.Assoc [ ("stopping", Json.Bool true) ])
    | "batch" -> handle_batch state r
    | "classify" ->
      let q = require_query state r in
      cached_ok state r ~db_key:"" (fun () -> run_classify q)
    | "count" ->
      let db_key, db = require_db state r in
      let q = require_query state r in
      cached_ok state r ~db_key (fun () -> run_count state r ~db_key db q)
    | "approx" ->
      let db_key, db = require_db state r in
      let q = require_query state r in
      cached_ok state r ~db_key (fun () -> run_approx state r db q)
    | "bounds" ->
      let db_key, db = require_db state r in
      let q = require_query state r in
      cached_ok state r ~db_key (fun () -> run_bounds r db q)
    | op -> raise (Protocol.Bad ("op not implemented: " ^ op))
  with
  | resp -> resp
  | exception Db_error msg ->
    Metrics.incr errors_total;
    Protocol.err ~id ~kind:"db_error" msg
  | exception exn -> error_response ~id exn

(* Result-cache wrapper: replay a warm payload byte-identically, or run
   the body and absorb its payload.  [fresh] skips the lookup but still
   overwrites, so a forced re-run refreshes the cache. *)
and cached_ok state (r : Protocol.t) ~db_key body =
  if not (cacheable r) then Protocol.ok ~id:r.id (body ())
  else begin
    let key = Protocol.cache_key r ~db_key in
    match if r.fresh then None else State.find_result state key with
    | Some payload -> Protocol.ok ~id:r.id ~cached:true payload
    | None ->
      let payload = body () in
      State.store_result state key payload;
      Protocol.ok ~id:r.id payload
  end

(* Batches fan the sub-requests over the domain pool; each sub-request
   is individually admission-controlled, so one refused entry never
   poisons its neighbors and the pool never sees an exception.  Nested
   batches and lifecycle ops are rejected up front. *)
and handle_batch state (r : Protocol.t) =
  let subs =
    List.map
      (fun j ->
        match Protocol.of_json j with
        | sub ->
          if sub.Protocol.op = "batch" then
            Error (sub.Protocol.id, "nested batch is not allowed")
          else if sub.Protocol.op = "shutdown" || sub.Protocol.op = "reset"
          then
            Error
              ( sub.Protocol.id,
                "lifecycle op " ^ sub.Protocol.op ^ " is not allowed in a batch"
              )
          else Ok sub
        | exception Protocol.Bad msg -> Error (Json.Null, msg))
      r.subs
  in
  let tasks =
    List.map
      (fun sub () ->
        match sub with
        | Ok sub -> handle state sub
        | Error (id, msg) ->
          Metrics.incr errors_total;
          Protocol.err ~id ~kind:"bad_request" msg)
      subs
  in
  let results = Incdb_par.Pool.run ~jobs:r.jobs tasks in
  Protocol.ok ~id:r.id (Json.Assoc [ ("results", Json.List results) ])
