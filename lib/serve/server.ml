(* The incdbd transport: a Unix-domain-socket accept loop with one
   thread per connection, and a stdio mode (one connection on
   stdin/stdout) for tests and pipelines.

   Responses are written as one line per request, in request order per
   connection.  A client that disappears mid-conversation (EPIPE /
   ECONNRESET on write, or EOF on read) just ends its connection thread;
   whatever request was in flight unwinds through the engine's spill
   protection, so no temp state outlives the connection. *)

module Json = Incdb_obs.Json
module Metrics = Incdb_obs.Metrics
module Log = Incdb_obs.Log

let connections_total = Metrics.counter "serve.connections"
let disconnects_total = Metrics.counter "serve.disconnects"

type opts = { state : State.t }

let make_opts ?state () =
  let state = match state with Some s -> s | None -> State.create () in
  { state }

(* Serve one NDJSON conversation.  Returns [`Shutdown] when the peer
   asked the whole server to stop, [`Eof] when it just went away. *)
let serve_channel (o : opts) ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> `Eof
    | exception Sys_error _ -> `Eof
    | line ->
      if String.trim line = "" then loop ()
      else begin
        let resp, stop =
          match Protocol.of_line line with
          | Error msg ->
            ( Protocol.err ~id:Json.Null ~kind:"bad_request" msg,
              false )
          | Ok req -> (Engine.handle o.state req, req.Protocol.op = "shutdown")
        in
        match
          output_string oc (Protocol.to_line resp);
          output_char oc '\n';
          flush oc
        with
        | () -> if stop then `Shutdown else loop ()
        | exception Sys_error _ ->
          Metrics.incr disconnects_total;
          `Eof
      end
  in
  loop ()

let run_stdio (o : opts) = ignore (serve_channel o stdin stdout)

(* ------------------------------------------------------------------ *)
(* Socket server                                                       *)
(* ------------------------------------------------------------------ *)

let unlink_quiet path = try Unix.unlink path with Unix.Unix_error _ -> ()

(* Wake the accept loop after [stop] flips: a throwaway connection makes
   [accept] return without platform-specific tricks. *)
let poke socket_path =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
     with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let run_socket (o : opts) ~socket_path =
  (* A dead write must surface as Sys_error on the channel, not kill
     the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  unlink_quiet socket_path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX socket_path);
  Unix.listen sock 16;
  let stop = Atomic.make false in
  let threads_lock = Mutex.create () in
  let threads = ref [] in
  let handle_conn fd =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    Fun.protect
      (fun () ->
        match serve_channel o ic oc with
        | `Shutdown ->
          Atomic.set stop true;
          poke socket_path
        | `Eof -> ())
      ~finally:(fun () ->
        (* One close for both channels: they share the descriptor, and
           closing the out channel closes it. *)
        close_out_noerr oc)
  in
  Log.debugf "incdbd: listening on %s" socket_path;
  let rec accept_loop () =
    if not (Atomic.get stop) then begin
      match Unix.accept sock with
      | fd, _ ->
        if Atomic.get stop then (try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          Metrics.incr connections_total;
          let t = Thread.create handle_conn fd in
          Mutex.protect threads_lock (fun () -> threads := t :: !threads);
          accept_loop ()
        end
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
        accept_loop ()
      | exception Unix.Unix_error _ when Atomic.get stop -> ()
    end
  in
  Fun.protect accept_loop
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      List.iter Thread.join
        (Mutex.protect threads_lock (fun () -> !threads));
      unlink_quiet socket_path)
