(* Warm state of a persistent incdbd process: everything that makes a
   repeated request cheaper than its first run.

   Four layers, hottest first:

   - a result cache mapping canonical request keys to finished result
     payloads (byte-identical replay, no engine work at all);
   - parse caches for databases (keyed by content stamp, so an edited
     file is reparsed) and queries;
   - one shared Val_kernel subproblem cache — entry keys are
     database-independent canonical lineage, so a single table is sound
     across every request;
   - Comp_kernel transform memos per (db, query) pair — their keys are
     plan-relative, so each pair gets its own bundle (the bundle itself
     re-checks the plan on every run).

   Everything is mutex-guarded: connections are served by threads and
   batches fan out over Incdb_par.Pool domains.  All four layers
   register with Incdb_obs.Export.register_cache_reset, so the [reset]
   protocol op (and any other lifecycle hook) can drop warm state
   without a direct dependency on this module. *)

open Incdb_cq
open Incdb_incomplete
open Incdb_core
module Metrics = Incdb_obs.Metrics

let result_hits = Metrics.counter "serve.result_cache_hits"
let result_misses = Metrics.counter "serve.result_cache_misses"
let db_hits = Metrics.counter "serve.db_cache_hits"
let db_misses = Metrics.counter "serve.db_cache_misses"

type db_entry = { mtime : float; size : int; db : Idb.t }

type t = {
  lock : Mutex.t;
  dbs : (string, db_entry) Hashtbl.t;
  queries : (string, Cq.t) Hashtbl.t;
  results : (string, Incdb_obs.Json.t) Hashtbl.t;
  result_cap : int;
  val_cache : Val_kernel.cache;
  memos : (string, Comp_kernel.memos * Mutex.t) Hashtbl.t;
  memo_cap : int;
}

let default_result_cap = 1024

let create ?(result_cap = default_result_cap)
    ?(val_cache_entries = Val_kernel.default_cache_entries)
    ?(memo_cap = 64) () =
  if result_cap < 0 then invalid_arg "State.create: negative result_cap";
  if memo_cap < 1 then invalid_arg "State.create: memo_cap must be positive";
  let t =
    {
      lock = Mutex.create ();
      dbs = Hashtbl.create 16;
      queries = Hashtbl.create 64;
      results = Hashtbl.create 64;
      result_cap;
      val_cache = Val_kernel.cache_create (max 1 val_cache_entries);
      memos = Hashtbl.create 16;
      memo_cap;
    }
  in
  let module E = Incdb_obs.Export in
  E.register_cache_reset "serve.result_cache" (fun () ->
      Mutex.protect t.lock (fun () -> Hashtbl.reset t.results));
  E.register_cache_reset "serve.parse_caches" (fun () ->
      Mutex.protect t.lock (fun () ->
          Hashtbl.reset t.dbs;
          Hashtbl.reset t.queries));
  E.register_cache_reset "serve.comp_memos" (fun () ->
      Mutex.protect t.lock (fun () -> Hashtbl.reset t.memos));
  E.register_cache_reset "val_kernel.shared_cache" (fun () ->
      Val_kernel.cache_clear t.val_cache);
  t

(* ------------------------------------------------------------------ *)
(* Databases and queries                                               *)
(* ------------------------------------------------------------------ *)

(* Content key + parsed table.  A path is stamped with (mtime, size):
   an edited file re-parses and yields a different result-cache key, so
   stale counts cannot be replayed.  Inline text keys by digest. *)
let load_db t (src : Protocol.source) =
  match src with
  | Protocol.Inline text -> (
    let key = "inline:" ^ Digest.to_hex (Digest.string text) in
    match
      Mutex.protect t.lock (fun () ->
          Hashtbl.find_opt t.dbs key |> Option.map (fun e -> e.db))
    with
    | Some db ->
      Metrics.incr db_hits;
      Ok (key, db)
    | None -> (
      Metrics.incr db_misses;
      match Idb_parser.of_string text with
      | db ->
        Mutex.protect t.lock (fun () ->
            Hashtbl.replace t.dbs key { mtime = 0.; size = 0; db });
        Ok (key, db)
      | exception Invalid_argument msg -> Error msg))
  | Protocol.Path path -> (
    match Unix.stat path with
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
    | st -> (
      let stamp =
        Printf.sprintf "%s@%f+%d" path st.Unix.st_mtime st.Unix.st_size
      in
      let cached =
        Mutex.protect t.lock (fun () ->
            match Hashtbl.find_opt t.dbs path with
            | Some e when e.mtime = st.Unix.st_mtime && e.size = st.Unix.st_size
              ->
              Some e.db
            | _ -> None)
      in
      match cached with
      | Some db ->
        Metrics.incr db_hits;
        Ok (stamp, db)
      | None -> (
        Metrics.incr db_misses;
        match Idb_parser.of_file path with
        | db ->
          Mutex.protect t.lock (fun () ->
              Hashtbl.replace t.dbs path
                { mtime = st.Unix.st_mtime; size = st.Unix.st_size; db });
          Ok (stamp, db)
        | exception Invalid_argument msg -> Error msg)))

let parse_query t s =
  match Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.queries s) with
  | Some q -> Ok q
  | None -> (
    match Cq.of_string s with
    | q ->
      Mutex.protect t.lock (fun () ->
          if Hashtbl.length t.queries < 4096 then Hashtbl.replace t.queries s q);
      Ok q
    | exception Invalid_argument msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

let find_result t key =
  let r = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.results key) in
  (match r with
  | Some _ -> Metrics.incr result_hits
  | None -> Metrics.incr result_misses);
  r

let store_result t key payload =
  Mutex.protect t.lock (fun () ->
      if Hashtbl.mem t.results key || Hashtbl.length t.results < t.result_cap
      then Hashtbl.replace t.results key payload)

let result_count t =
  Mutex.protect t.lock (fun () -> Hashtbl.length t.results)

(* ------------------------------------------------------------------ *)
(* Kernel caches                                                       *)
(* ------------------------------------------------------------------ *)

let val_cache t = t.val_cache

(* The memo bundle (and its run lock — Comp_kernel memos are not
   internally synchronized) for one (db, query) pair.  At capacity the
   whole pool recycles: memo bundles are cheap to rebuild relative to
   unbounded growth, and correctness never depends on them. *)
let comp_memos t key =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.memos key with
      | Some pair -> pair
      | None ->
        if Hashtbl.length t.memos >= t.memo_cap then Hashtbl.reset t.memos;
        let pair = (Comp_kernel.memos_create (), Mutex.create ()) in
        Hashtbl.replace t.memos key pair;
        pair)

let cache_sizes t =
  Mutex.protect t.lock (fun () ->
      [
        ("serve.result_cache", Hashtbl.length t.results);
        ("serve.db_cache", Hashtbl.length t.dbs);
        ("serve.query_cache", Hashtbl.length t.queries);
        ("serve.comp_memos", Hashtbl.length t.memos);
      ])
  @ [
      ("val_kernel.shared_cache", Val_kernel.cache_length t.val_cache);
      ("classify.verdict_cache", Classify.cache_length ());
    ]
