(** Request execution for incdbd.

    {!handle} maps one parsed request to one response object and never
    raises and never exits: engine failures that the one-shot CLI turns
    into [exit 1] — the typed resource limits, bad queries, unreadable
    databases — come back as [ok: false] responses whose [error.kind]
    is one of [bad_request], [db_error], [invalid_argument],
    [too_many_valuations], [too_many_candidates], [too_many_events],
    [comp_infeasible], [too_many_clauses] or [internal_error].  Refused
    requests tick [serve.refusals] and leave the server (and its warm
    caches) fully operational — admission control, not failure.

    [count]/[approx]/[classify]/[bounds] payloads go through the warm
    result cache unless the request says [fresh]; [batch] fans its
    sub-requests over {!Incdb_par.Pool} with per-entry error capture;
    [metrics] returns the Prometheus rendering plus counter and
    cache-population snapshots; [reset] rolls the metrics generation
    and, with [caches: true], drops every registered warm cache.

    Requests that may touch disk run inside a private spill directory,
    removed on every exit path (including a client disconnect
    mid-request); files found at removal tick [serve.spill_orphans]. *)

val handle : State.t -> Protocol.t -> Incdb_obs.Json.t
