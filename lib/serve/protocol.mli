(** The incdbd wire protocol: newline-delimited JSON, one request object
    per line in, one response object per line out.

    A request is an idbcount invocation in object form — the field
    vocabulary is the CLI flag set without the leading dashes and with
    the same defaults ([brute_limit], [val_width_bound],
    [val_max_events], [val_order], [comp_elim], [samples], [seed], …) —
    plus the server-side fields [id] (echoed verbatim in the response),
    [fresh] (bypass the result cache), [caches] (for [reset]) and
    [requests] (the sub-requests of a [batch]).  The database is named
    by [db] (a file path, cached by content stamp) or [db_text] (the
    Idb_parser source inline).

    Responses are [{"id": …, "ok": true, "result": {…}}] or
    [{"id": …, "ok": false, "error": {"kind": …, "message": …}}];
    the [kind] vocabulary is fixed by {!Engine}. *)

open Incdb_core
module Json = Incdb_obs.Json

(** Raised by {!of_json} on a malformed request. *)
exception Bad of string

type problem = Val | Comp
type meth = Karp_luby | Monte_carlo
type source = Path of string | Inline of string

type t = {
  id : Json.t;
  op : string;
  source : source option;
  query : string option;
  fresh : bool;
  problem : problem;
  jobs : int;
  brute_limit : int;
  val_width_bound : int;
  val_max_events : int;
  val_max_cells : int;
  val_order : Val_kernel.order;
  val_cache_entries : int;
  val_spill : Val_kernel.spill;
  max_candidates : int;
  comp_mask : Comp_candidates.mask_choice;
  comp_elim : Comp_kernel.choice;
  comp_width_bound : int;
  comp_max_cells : int;
  samples : int option;
  seed : int;
  meth : meth;
  exact_check : bool;
  caches : bool;
  subs : Json.t list;
}

(** The accepted values of the [op] field. *)
val ops : string list

(** @raise Bad on a non-object, an unknown [op], or an ill-typed field. *)
val of_json : Json.t -> t

(** Parse one request line; never raises. *)
val of_line : string -> (t, string) result

(** Canonical parameter string of a request given its database's content
    key — the server's result-cache key.  [id], [fresh] and [jobs] are
    excluded (results are bit-identical at every job count). *)
val cache_key : t -> db_key:string -> string

(** [ok ~id result] / [err ~id ~kind msg] build response objects;
    [cached] marks a result served from the warm result cache (the
    [result] payload itself is byte-identical either way). *)
val ok : id:Json.t -> ?cached:bool -> Json.t -> Json.t

val err :
  id:Json.t -> kind:string -> ?data:(string * Json.t) list -> string -> Json.t

(** One-line serialization (no embedded newlines). *)
val to_line : Json.t -> string
