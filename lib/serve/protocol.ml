(* Wire protocol of incdbd: one JSON object per line in, one per line
   out.  The request vocabulary mirrors the idbcount flags one-to-one
   (same names minus the leading dashes, same defaults), so a request is
   a CLI invocation in object form and the answers are comparable
   field-for-field with the one-shot tool. *)

open Incdb_core
module Json = Incdb_obs.Json

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

type problem = Val | Comp
type meth = Karp_luby | Monte_carlo
type source = Path of string | Inline of string

type t = {
  id : Json.t;  (* echoed verbatim; [Null] when the client sent none *)
  op : string;
  source : source option;
  query : string option;
  fresh : bool;  (* bypass (and overwrite) the server's result cache *)
  problem : problem;
  jobs : int;
  brute_limit : int;
  val_width_bound : int;
  val_max_events : int;
  val_max_cells : int;
  val_order : Val_kernel.order;
  val_cache_entries : int;
  val_spill : Val_kernel.spill;
  max_candidates : int;
  comp_mask : Comp_candidates.mask_choice;
  comp_elim : Comp_kernel.choice;
  comp_width_bound : int;
  comp_max_cells : int;
  samples : int option;  (* op-dependent default: approx 50000, bounds 5000 *)
  seed : int;
  meth : meth;
  exact_check : bool;
  caches : bool;  (* reset: also drop warm caches, not just metrics *)
  subs : Json.t list;  (* batch: raw sub-request objects *)
}

let ops =
  [
    "count"; "approx"; "classify"; "bounds"; "batch"; "metrics"; "reset";
    "ping"; "shutdown";
  ]

(* ------------------------------------------------------------------ *)
(* Field extraction                                                    *)
(* ------------------------------------------------------------------ *)

let str_opt j name =
  match Json.member name j with
  | None | Some Json.Null -> None
  | Some (Json.String s) -> Some s
  | Some _ -> bad "field %S must be a string" name

let int_def j name default =
  match Json.member name j with
  | None | Some Json.Null -> default
  | Some (Json.Int i) -> i
  | Some _ -> bad "field %S must be an integer" name

let int_opt j name =
  match Json.member name j with
  | None | Some Json.Null -> None
  | Some (Json.Int i) -> Some i
  | Some _ -> bad "field %S must be an integer" name

let bool_def j name default =
  match Json.member name j with
  | None | Some Json.Null -> default
  | Some (Json.Bool b) -> b
  | Some _ -> bad "field %S must be a boolean" name

let enum_def j name table default =
  match str_opt j name with
  | None -> default
  | Some s -> (
    match List.assoc_opt s table with
    | Some v -> v
    | None ->
      bad "field %S must be one of %s" name
        (String.concat ", " (List.map fst table)))

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)
(* ------------------------------------------------------------------ *)

let of_json j =
  match j with
  | Json.Assoc _ ->
    let op =
      match str_opt j "op" with
      | Some op when List.mem op ops -> op
      | Some op -> bad "unknown op %S" op
      | None -> bad "missing field \"op\""
    in
    let source =
      match (str_opt j "db", str_opt j "db_text") with
      | Some _, Some _ -> bad "give either \"db\" or \"db_text\", not both"
      | Some p, None -> Some (Path p)
      | None, Some s -> Some (Inline s)
      | None, None -> None
    in
    let subs =
      match Json.member "requests" j with
      | None | Some Json.Null -> []
      | Some (Json.List l) -> l
      | Some _ -> bad "field \"requests\" must be an array"
    in
    {
      id = Option.value ~default:Json.Null (Json.member "id" j);
      op;
      source;
      query = str_opt j "query";
      fresh = bool_def j "fresh" false;
      problem =
        enum_def j "problem"
          [ ("val", Val); ("valuations", Val); ("comp", Comp);
            ("completions", Comp) ]
          Val;
      jobs = int_def j "jobs" 1;
      brute_limit = int_def j "brute_limit" 4_000_000;
      val_width_bound =
        int_def j "val_width_bound" Val_kernel.default_width_bound;
      val_max_events = int_def j "val_max_events" Val_kernel.default_max_events;
      val_max_cells = int_def j "val_max_cells" Val_kernel.default_max_cells;
      val_order =
        enum_def j "val_order"
          [ ("min-degree", Val_kernel.Min_degree);
            ("min-fill", Val_kernel.Min_fill) ]
          Val_kernel.Min_degree;
      val_cache_entries =
        int_def j "val_cache_entries" Val_kernel.default_cache_entries;
      val_spill =
        enum_def j "val_spill"
          [ ("auto", Val_kernel.Auto); ("off", Val_kernel.Off);
            ("force", Val_kernel.Force) ]
          Val_kernel.Auto;
      max_candidates =
        int_def j "max_candidates" Comp_candidates.default_max_candidates;
      comp_mask =
        enum_def j "comp_mask"
          [ ("auto", Comp_candidates.Auto);
            ("int", Comp_candidates.Int_masks);
            ("wide", Comp_candidates.Wide_masks) ]
          Comp_candidates.Auto;
      comp_elim =
        enum_def j "comp_elim"
          [ ("auto", Comp_kernel.Auto); ("off", Comp_kernel.Off);
            ("force", Comp_kernel.Force) ]
          Comp_kernel.Auto;
      comp_width_bound =
        int_def j "comp_width_bound" Comp_kernel.default_width_bound;
      comp_max_cells = int_def j "comp_max_cells" Comp_kernel.default_max_cells;
      samples = int_opt j "samples";
      seed = int_def j "seed" 42;
      meth =
        enum_def j "method"
          [ ("karp-luby", Karp_luby); ("monte-carlo", Monte_carlo) ]
          Karp_luby;
      exact_check = bool_def j "exact_check" false;
      caches = bool_def j "caches" false;
      subs;
    }
  | _ -> bad "request must be a JSON object"

let of_line line =
  match Json.of_string line with
  | Error msg -> Error ("request is not valid JSON: " ^ msg)
  | Ok j -> ( match of_json j with r -> Ok r | exception Bad msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* Result-cache key                                                    *)
(* ------------------------------------------------------------------ *)

(* Canonical parameter string of a request, given the content key of its
   database.  [id], [fresh] and [jobs] are excluded: the first two are
   delivery concerns, and every engine is bit-identical across job
   counts, so a warm result is valid at any [jobs]. *)
let cache_key r ~db_key =
  let b = Buffer.create 128 in
  let add k v =
    Buffer.add_string b k;
    Buffer.add_char b '=';
    Buffer.add_string b v;
    Buffer.add_char b ';'
  in
  add "op" r.op;
  add "db" db_key;
  add "query" (Option.value ~default:"" r.query);
  (match r.op with
  | "count" ->
    add "problem" (match r.problem with Val -> "val" | Comp -> "comp");
    add "brute_limit" (string_of_int r.brute_limit);
    add "val_width_bound" (string_of_int r.val_width_bound);
    add "val_max_events" (string_of_int r.val_max_events);
    add "val_max_cells" (string_of_int r.val_max_cells);
    add "val_order" (Val_kernel.order_to_string r.val_order);
    add "val_cache_entries" (string_of_int r.val_cache_entries);
    add "val_spill" (Val_kernel.spill_to_string r.val_spill);
    add "max_candidates" (string_of_int r.max_candidates);
    add "comp_mask"
      (match r.comp_mask with
      | Comp_candidates.Auto -> "auto"
      | Comp_candidates.Int_masks -> "int"
      | Comp_candidates.Wide_masks -> "wide");
    add "comp_elim"
      (match r.comp_elim with
      | Comp_kernel.Auto -> "auto"
      | Comp_kernel.Off -> "off"
      | Comp_kernel.Force -> "force");
    add "comp_width_bound" (string_of_int r.comp_width_bound);
    add "comp_max_cells" (string_of_int r.comp_max_cells)
  | "approx" ->
    add "samples" (string_of_int (Option.value ~default:50_000 r.samples));
    add "seed" (string_of_int r.seed);
    add "method"
      (match r.meth with Karp_luby -> "karp-luby" | Monte_carlo -> "monte-carlo");
    add "exact_check" (string_of_bool r.exact_check);
    add "val_width_bound" (string_of_int r.val_width_bound);
    add "val_max_cells" (string_of_int r.val_max_cells);
    add "val_order" (Val_kernel.order_to_string r.val_order);
    add "val_cache_entries" (string_of_int r.val_cache_entries);
    add "val_spill" (Val_kernel.spill_to_string r.val_spill)
  | "bounds" ->
    add "samples" (string_of_int (Option.value ~default:5_000 r.samples));
    add "seed" (string_of_int r.seed)
  | _ -> ());
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let ok ~id ?(cached = false) result =
  Json.Assoc
    (("id", id) :: ("ok", Json.Bool true)
    :: (if cached then [ ("cached", Json.Bool true) ] else [])
    @ [ ("result", result) ])

let err ~id ~kind ?(data = []) msg =
  Json.Assoc
    [
      ("id", id);
      ("ok", Json.Bool false);
      ( "error",
        Json.Assoc
          (("kind", Json.String kind) :: ("message", Json.String msg) :: data)
      );
    ]

let to_line j = Json.to_string j
