(** incdbd transports: a Unix-domain-socket accept loop (one thread per
    connection) and a stdio mode serving exactly one conversation on
    stdin/stdout.

    Both speak the {!Protocol} NDJSON framing and execute through
    {!Engine.handle} over one shared warm {!State}.  The [shutdown] op
    stops the socket server after its response is written; remaining
    connection threads are joined and the socket file is removed.
    Client disconnects (EOF on read, EPIPE on write) end only their own
    connection and tick [serve.disconnects]. *)

type opts = { state : State.t }

(** [make_opts ()] builds server options with a fresh warm state (or
    the one given). *)
val make_opts : ?state:State.t -> unit -> opts

(** Serve one conversation on the given channels; returns on EOF or
    after answering a [shutdown]. *)
val serve_channel : opts -> in_channel -> out_channel -> [ `Eof | `Shutdown ]

(** {!serve_channel} on stdin/stdout. *)
val run_stdio : opts -> unit

(** Bind, listen and serve [socket_path] until a [shutdown] request;
    an existing socket file is replaced.  Keep the path short: Unix
    limits [sun_path] to roughly 100 bytes. *)
val run_socket : opts -> socket_path:string -> unit
