let maximum_matching_kuhn b =
  let nl = Bipartite.left_count b and nr = Bipartite.right_count b in
  let match_right = Array.make nr (-1) in
  let visited = Array.make nr false in
  (* Standard Kuhn augmentation from a free left node. *)
  let rec try_augment i =
    let attempt j =
      if visited.(j) then false
      else begin
        visited.(j) <- true;
        if match_right.(j) = -1 || try_augment match_right.(j) then begin
          match_right.(j) <- i;
          true
        end else false
      end
    in
    List.exists attempt (Bipartite.right_neighbors b i)
  in
  let size = ref 0 in
  for i = 0 to nl - 1 do
    Array.fill visited 0 nr false;
    if try_augment i then incr size
  done;
  let pairs = ref [] in
  for j = 0 to nr - 1 do
    if match_right.(j) >= 0 then pairs := (match_right.(j), j) :: !pairs
  done;
  (!size, !pairs)

(* Hopcroft-Karp: repeatedly build a BFS layering from the free left
   nodes, then augment along a maximal set of vertex-disjoint shortest
   augmenting paths found by layered DFS. *)
let maximum_matching b =
  let nl = Bipartite.left_count b and nr = Bipartite.right_count b in
  let match_left = Array.make nl (-1) in
  let match_right = Array.make nr (-1) in
  let inf = max_int in
  let dist = Array.make nl inf in
  let queue = Queue.create () in
  let bfs () =
    Queue.clear queue;
    for i = 0 to nl - 1 do
      if match_left.(i) = -1 then begin
        dist.(i) <- 0;
        Queue.add i queue
      end
      else dist.(i) <- inf
    done;
    let found_free = ref false in
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      List.iter
        (fun j ->
          match match_right.(j) with
          | -1 -> found_free := true
          | i' ->
            if dist.(i') = inf then begin
              dist.(i') <- dist.(i) + 1;
              Queue.add i' queue
            end)
        (Bipartite.right_neighbors b i)
    done;
    !found_free
  in
  let rec dfs i =
    let attempt j =
      let ok =
        match match_right.(j) with
        | -1 -> true
        | i' -> dist.(i') = dist.(i) + 1 && dfs i'
      in
      if ok then begin
        match_right.(j) <- i;
        match_left.(i) <- j;
        true
      end
      else false
    in
    if List.exists attempt (Bipartite.right_neighbors b i) then true
    else begin
      (* Dead end: remove from this phase's layering. *)
      dist.(i) <- inf;
      false
    end
  in
  let size = ref 0 in
  while bfs () do
    for i = 0 to nl - 1 do
      if match_left.(i) = -1 && dfs i then incr size
    done
  done;
  let pairs = ref [] in
  for j = 0 to nr - 1 do
    if match_right.(j) >= 0 then pairs := (match_right.(j), j) :: !pairs
  done;
  (!size, !pairs)

let is_matching b pairs =
  let lefts = List.map fst pairs and rights = List.map snd pairs in
  List.for_all (fun (i, j) -> Bipartite.has_edge b i j) pairs
  && List.length (List.sort_uniq Stdlib.compare lefts) = List.length lefts
  && List.length (List.sort_uniq Stdlib.compare rights) = List.length rights
