module Edge_set = Set.Make (struct
  type t = int * int

  let compare = Stdlib.compare
end)

type t = { n : int; edge_set : Edge_set.t; adj : int list array }

let make n edge_list =
  if n < 0 then invalid_arg "Graph.make: negative node count";
  let norm (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Graph.make: endpoint out of range";
    if u = v then invalid_arg "Graph.make: self-loop";
    if u < v then (u, v) else (v, u)
  in
  let edge_set = Edge_set.of_list (List.map norm edge_list) in
  let adj = Array.make n [] in
  Edge_set.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edge_set;
  Array.iteri (fun i l -> adj.(i) <- List.sort Stdlib.compare l) adj;
  { n; edge_set; adj }

let node_count g = g.n
let edge_count g = Edge_set.cardinal g.edge_set
let edges g = Edge_set.elements g.edge_set

let has_edge g u v =
  let e = if u < v then (u, v) else (v, u) in
  Edge_set.mem e g.edge_set

let neighbors g u = g.adj.(u)
let degree g u = List.length g.adj.(u)

let adjacency_mask g u =
  if g.n > 62 then invalid_arg "Graph.adjacency_mask: more than 62 nodes";
  List.fold_left (fun m v -> m lor (1 lsl v)) 0 g.adj.(u)

let components g =
  let seen = Array.make g.n false in
  let comp_of root =
    let acc = ref [] in
    let rec dfs u =
      if not seen.(u) then begin
        seen.(u) <- true;
        acc := u :: !acc;
        List.iter dfs g.adj.(u)
      end
    in
    dfs root;
    List.sort Stdlib.compare !acc
  in
  let comps = ref [] in
  for u = 0 to g.n - 1 do
    if not seen.(u) then comps := comp_of u :: !comps
  done;
  List.rev !comps

let bipartition g =
  let side = Array.make g.n None in
  let ok = ref true in
  let rec dfs u s =
    match side.(u) with
    | Some s' -> if s' <> s then ok := false
    | None ->
      side.(u) <- Some s;
      List.iter (fun v -> dfs v (not s)) g.adj.(u)
  in
  for u = 0 to g.n - 1 do
    if side.(u) = None then dfs u false
  done;
  if !ok then Some (Array.map (function Some s -> s | None -> false) side)
  else None

let induced g nodes =
  let index = Hashtbl.create 16 in
  List.iteri (fun i u -> Hashtbl.replace index u i) nodes;
  let keep (u, v) =
    match (Hashtbl.find_opt index u, Hashtbl.find_opt index v) with
    | Some i, Some j -> Some (i, j)
    | _ -> None
  in
  make (List.length nodes) (List.filter_map keep (edges g))

let complement g =
  let es = ref [] in
  for u = 0 to g.n - 1 do
    for v = u + 1 to g.n - 1 do
      if not (has_edge g u v) then es := (u, v) :: !es
    done
  done;
  make g.n !es

let pp fmt g =
  Format.fprintf fmt "graph(n=%d; " g.n;
  List.iteri
    (fun i (u, v) ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%d-%d" u v)
    (edges g);
  Format.fprintf fmt ")"
