(** Hamiltonicity testing and the [#HamSubgraphs] oracle of Definition D.4,
    used to exercise the SpanP-hardness construction of Theorem 6.4. *)

open Incdb_bignum

(** [is_hamiltonian g] decides whether [g] has a Hamiltonian cycle, by the
    Held–Karp bitmask dynamic program; requires [node_count g <= 20].
    Graphs with fewer than 3 nodes are not Hamiltonian. *)
val is_hamiltonian : Graph.t -> bool

(** [count_hamiltonian_subgraphs g k] is the number of node subsets [S] of
    size [k] whose induced subgraph [g[S]] is Hamiltonian. *)
val count_hamiltonian_subgraphs : Graph.t -> int -> Nat.t
