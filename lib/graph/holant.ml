open Incdb_bignum

type t = { graph : Multigraph.t; side : bool array (* true = degree-2 side *) }

let make graph side =
  if Array.length side <> Multigraph.node_count graph then
    invalid_arg "Holant.make: side array length mismatch";
  Array.iteri
    (fun u s ->
      let d = Multigraph.degree graph u in
      if s && d <> 2 then invalid_arg "Holant.make: degree-2 side violation";
      if (not s) && d <> 3 then invalid_arg "Holant.make: degree-3 side violation")
    side;
  { graph; side }

let of_graph g =
  match Graph.bipartition g with
  | None -> None
  | Some parts ->
    let n = Graph.node_count g in
    let ok = ref true in
    let side = Array.make n false in
    for u = 0 to n - 1 do
      match (Graph.degree g u, parts.(u)) with
      | 2, _ -> side.(u) <- true
      | 3, _ -> side.(u) <- false
      | _ -> ok := false
    done;
    (* All degree-2 nodes must be on one part and degree-3 on the other. *)
    let coherent =
      List.for_all
        (fun (u, v) -> side.(u) <> side.(v))
        (Graph.edges g)
    in
    if !ok && coherent then Some (make (Multigraph.of_graph g) side) else None

let eval { graph; side } ~deg2 ~deg3 =
  if List.length deg2 <> 3 then invalid_arg "Holant.eval: deg2 needs 3 entries";
  if List.length deg3 <> 4 then invalid_arg "Holant.eval: deg3 needs 4 entries";
  let m = Multigraph.edge_count graph in
  if m > 22 then invalid_arg "Holant.eval: too many edges";
  let x = Array.of_list deg2 and y = Array.of_list deg3 in
  let n = Multigraph.node_count graph in
  let total = ref Nat.zero in
  for mask = 0 to (1 lsl m) - 1 do
    let product = ref 1 in
    for u = 0 to n - 1 do
      if !product <> 0 then begin
        let weight =
          List.fold_left
            (fun acc e -> if mask land (1 lsl e) <> 0 then acc + 1 else acc)
            0 (Multigraph.incident graph u)
        in
        let f = if side.(u) then x.(weight) else y.(weight) in
        product := !product * f
      end
    done;
    total := Nat.add !total (Nat.of_int !product)
  done;
  !total

let count_perfect_matchings h = eval h ~deg2:[ 0; 1; 0 ] ~deg3:[ 0; 1; 0; 0 ]
let count_matchings h = eval h ~deg2:[ 1; 1; 0 ] ~deg3:[ 1; 1; 0; 0 ]
let count_edge_covers h = eval h ~deg2:[ 0; 1; 1 ] ~deg3:[ 0; 1; 1; 1 ]
let avoidance_holant h = eval h ~deg2:[ 1; 1; 0 ] ~deg3:[ 0; 1; 0; 0 ]
