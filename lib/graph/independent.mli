(** Exact counting of independent sets and vertex covers.

    These counters are the ground-truth oracles against which the hardness
    reductions of Propositions 3.8, 3.11, 4.2 and 4.5 are verified: each
    reduction is #P-hard in general, but on small instances we can cross
    check the counting identities exactly. *)

open Incdb_bignum

(** [count_independent_sets g] is [#IS(g)]: the number of subsets [S] of
    nodes with no edge inside [S] (the empty set counts).  Uses the
    branching recursion [#IS(G) = #IS(G - v) + #IS(G - N[v])] with bitmask
    states; requires [node_count g <= 62]. *)
val count_independent_sets : Graph.t -> Nat.t

(** [count_vertex_covers g] is [#VC(g)].  Computed through the bijection
    [S] is independent iff [V \ S] is a cover, so [#VC = #IS]
    (the observation used after Proposition 4.2). *)
val count_vertex_covers : Graph.t -> Nat.t

(** [count_vertex_covers_brute g] enumerates all subsets — for testing the
    bijection on tiny graphs only. *)
val count_vertex_covers_brute : Graph.t -> Nat.t

(** [count_independent_sets_brute g] enumerates all subsets. *)
val count_independent_sets_brute : Graph.t -> Nat.t

(** [independent_pairs_by_size b] returns the matrix [z] where [z.(i).(j)]
    is the number of pairs [(S1, S2)], [S1] a set of [i] left nodes and
    [S2] a set of [j] right nodes, with no edge between [S1] and [S2] —
    the quantities [Z_{i,j}] of Proposition 3.11. *)
val independent_pairs_by_size : Bipartite.t -> Nat.t array array

(** [count_bipartite_independent_sets b] is [#BIS], the number of
    independent pairs; equals the sum of all [Z_{i,j}]. *)
val count_bipartite_independent_sets : Bipartite.t -> Nat.t
