open Incdb_bignum

(* Union-find where each class remembers whether it already contains a
   cycle.  Adding an edge inside a cyclic class, or joining two cyclic
   classes, would create a second cycle in one component. *)
module Uf = struct
  type t = { parent : int array; cyclic : bool array }

  let create n = { parent = Array.init n Fun.id; cyclic = Array.make n false }

  let rec find uf x =
    if uf.parent.(x) = x then x
    else begin
      let r = find uf uf.parent.(x) in
      uf.parent.(x) <- r;
      r
    end

  (* Returns [true] when the edge keeps the subgraph a pseudoforest. *)
  let add_edge uf u v =
    let ru = find uf u and rv = find uf v in
    if ru = rv then
      if uf.cyclic.(ru) then false
      else begin
        uf.cyclic.(ru) <- true;
        true
      end
    else if uf.cyclic.(ru) && uf.cyclic.(rv) then false
    else begin
      uf.parent.(ru) <- rv;
      uf.cyclic.(rv) <- uf.cyclic.(ru) || uf.cyclic.(rv);
      true
    end
end

let bicircular_rank n edges =
  let uf = Uf.create n in
  List.fold_left
    (fun rank (u, v) -> if Uf.add_edge uf u v then rank + 1 else rank)
    0 edges

let edge_subset_is_pseudoforest g sub =
  let n = Graph.node_count g in
  let uf = Uf.create n in
  List.for_all (fun (u, v) -> Uf.add_edge uf u v) sub

let is_pseudoforest g = edge_subset_is_pseudoforest g (Graph.edges g)

let count_pseudoforests g =
  let es = Array.of_list (Graph.edges g) in
  let m = Array.length es in
  if m > 24 then invalid_arg "Pseudoforest.count_pseudoforests: too many edges";
  let n = Graph.node_count g in
  let count = ref Nat.zero in
  for mask = 0 to (1 lsl m) - 1 do
    let uf = Uf.create n in
    let ok = ref true in
    for e = 0 to m - 1 do
      if !ok && mask land (1 lsl e) <> 0 then begin
        let u, v = es.(e) in
        if not (Uf.add_edge uf u v) then ok := false
      end
    done;
    if !ok then count := Nat.succ !count
  done;
  !count

let find_outdegree_one_orientation g =
  if not (is_pseudoforest g) then None
  else begin
    (* Peel degree-1 nodes, orienting their unique remaining edge away from
       them; what remains is a disjoint union of cycles, oriented around. *)
    let n = Graph.node_count g in
    let alive_edges = Hashtbl.create 16 in
    List.iter (fun e -> Hashtbl.replace alive_edges e ()) (Graph.edges g);
    let deg = Array.init n (Graph.degree g) in
    let oriented = ref [] in
    let remove_edge u v =
      let e = if u < v then (u, v) else (v, u) in
      Hashtbl.remove alive_edges e;
      deg.(u) <- deg.(u) - 1;
      deg.(v) <- deg.(v) - 1
    in
    let queue = Queue.create () in
    for u = 0 to n - 1 do
      if deg.(u) = 1 then Queue.add u queue
    done;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      if deg.(u) = 1 then begin
        let v =
          List.find
            (fun v ->
              let e = if u < v then (u, v) else (v, u) in
              Hashtbl.mem alive_edges e)
            (Graph.neighbors g u)
        in
        oriented := (u, v) :: !oriented;
        remove_edge u v;
        if deg.(v) = 1 then Queue.add v queue
      end
    done;
    (* Remaining alive edges form disjoint cycles (every degree is 2). *)
    while Hashtbl.length alive_edges > 0 do
      let (u0, v0) = Hashtbl.fold (fun e () _ -> e) alive_edges (0, 0) in
      let rec walk u v =
        (* orient u -> v, continue from v *)
        oriented := (u, v) :: !oriented;
        remove_edge u v;
        let next =
          List.find_opt
            (fun w ->
              let e = if v < w then (v, w) else (w, v) in
              Hashtbl.mem alive_edges e)
            (Graph.neighbors g v)
        in
        match next with Some w -> walk v w | None -> ()
      in
      walk u0 v0
    done;
    Some !oriented
  end
