open Incdb_bignum

exception Found

(* Backtracking over nodes in order; a node only needs to be checked
   against its already-colored neighbors.  [stop_at_first] turns the
   counter into a decision procedure. *)
let search g k ~stop_at_first =
  let n = Graph.node_count g in
  let color = Array.make n (-1) in
  let count = ref Nat.zero in
  let rec go u =
    if u = n then begin
      count := Nat.succ !count;
      if stop_at_first then raise Found
    end else
      for c = 0 to k - 1 do
        let conflict =
          List.exists (fun v -> color.(v) = c) (Graph.neighbors g u)
        in
        if not conflict then begin
          color.(u) <- c;
          go (u + 1);
          color.(u) <- -1
        end
      done
  in
  (try go 0 with Found -> ());
  !count

let count_colorings g k =
  if k < 0 then invalid_arg "Colorings.count_colorings: negative k";
  search g k ~stop_at_first:false

let is_colorable g k = not (Nat.is_zero (search g k ~stop_at_first:true))


(* Chromatic polynomial by deletion-contraction on multigraph-like edge
   lists: P(G) = P(G - e) - P(G / e).  The base case (no edges, n nodes)
   is k^n.  Parallel edges produced by contraction are dropped (they do
   not change proper colorings); self-loops make the polynomial zero. *)
let chromatic_polynomial g =
  if Graph.edge_count g > 16 then
    invalid_arg "Colorings.chromatic_polynomial: too many edges";
  (* polynomials as Zint arrays, low degree first *)
  let add_poly a b =
    let n = max (Array.length a) (Array.length b) in
    Array.init n (fun i ->
        let va = if i < Array.length a then a.(i) else Zint.zero in
        let vb = if i < Array.length b then b.(i) else Zint.zero in
        Zint.add va vb)
  in
  let neg_poly a = Array.map Zint.neg a in
  let monomial n =
    Array.init (n + 1) (fun i -> if i = n then Zint.one else Zint.zero)
  in
  (* state: n nodes, edge list over 0..n-1 with u < v, no self-loops,
     deduplicated *)
  let rec go n edges =
    match edges with
    | [] -> monomial n
    | (u, v) :: rest ->
      (* deletion *)
      let deleted = go n rest in
      (* contraction: merge v into u, renumber v.. down by one *)
      let rename w = if w = v then u else if w > v then w - 1 else w in
      let contracted_edges =
        rest
        |> List.filter_map (fun (a, b) ->
               let a = rename a and b = rename b in
               if a = b then None else Some (min a b, max a b))
        |> List.sort_uniq Stdlib.compare
      in
      let contracted = go (n - 1) contracted_edges in
      add_poly deleted (neg_poly contracted)
  in
  go (Graph.node_count g) (Graph.edges g)

let eval_polynomial p k =
  let acc = ref Zint.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Zint.add (Zint.mul !acc (Zint.of_int k)) p.(i)
  done;
  match Zint.sign !acc with
  | s when s >= 0 -> Zint.to_nat !acc
  | _ -> failwith "Colorings.eval_polynomial: negative value"
