type t = { n : int; ends : (int * int) array; inc : int list array }

let make n endpoints =
  if n < 0 then invalid_arg "Multigraph.make: negative node count";
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Multigraph.make: endpoint out of range";
      if u = v then invalid_arg "Multigraph.make: self-loop")
    endpoints;
  let inc = Array.make n [] in
  Array.iteri
    (fun e (u, v) ->
      inc.(u) <- e :: inc.(u);
      inc.(v) <- e :: inc.(v))
    endpoints;
  Array.iteri (fun i l -> inc.(i) <- List.rev l) inc;
  { n; ends = Array.copy endpoints; inc }

let node_count g = g.n
let edge_count g = Array.length g.ends
let endpoints g e = g.ends.(e)
let incident g u = g.inc.(u)
let degree g u = List.length g.inc.(u)

let is_regular g d =
  let rec check u = u >= g.n || (degree g u = d && check (u + 1)) in
  check 0

let of_graph g =
  make (Graph.node_count g) (Array.of_list (Graph.edges g))

let merging g =
  let n = Graph.node_count g in
  (* Renumber the degree-3 nodes. *)
  let index = Array.make n (-1) in
  let next = ref 0 in
  for u = 0 to n - 1 do
    match Graph.degree g u with
    | 3 ->
      index.(u) <- !next;
      incr next
    | 2 -> ()
    | _ -> invalid_arg "Multigraph.merging: node degree not in {2, 3}"
  done;
  let merged_edges = ref [] in
  for u = 0 to n - 1 do
    if Graph.degree g u = 2 then begin
      match Graph.neighbors g u with
      | [ a; b ] ->
        if index.(a) < 0 || index.(b) < 0 then
          invalid_arg "Multigraph.merging: adjacent degree-2 nodes";
        merged_edges := (index.(a), index.(b)) :: !merged_edges
      | _ -> assert false
    end
  done;
  make !next (Array.of_list (List.rev !merged_edges))
