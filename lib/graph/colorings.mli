(** Exact counting of proper colorings; the oracle for Proposition 3.4
    (counting 3-colorings reduces to [#Val^u(R(x,x))]) and for the
    3-colorability gadget of Proposition 5.6. *)

open Incdb_bignum

(** [count_colorings g k] is the number of proper [k]-colorings of [g]
    (maps from nodes to [k] colors such that adjacent nodes differ). *)
val count_colorings : Graph.t -> int -> Nat.t

(** [is_colorable g k] decides whether a proper [k]-coloring exists. *)
val is_colorable : Graph.t -> int -> bool

(** [chromatic_polynomial g] computes the chromatic polynomial by
    deletion–contraction, as integer coefficients (low degree first); an
    independent validation path for {!count_colorings}, which must equal
    the polynomial evaluated at [k].  Exponential in the edge count;
    restricted to small graphs.
    @raise Invalid_argument beyond 16 edges. *)
val chromatic_polynomial : Graph.t -> Zint.t array

(** [eval_polynomial p k] evaluates integer coefficients at [k >= 0];
    chromatic values are non-negative.
    @raise Failure on a negative result. *)
val eval_polynomial : Zint.t array -> int -> Nat.t
