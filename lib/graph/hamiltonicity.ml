open Incdb_bignum

let is_hamiltonian g =
  let n = Graph.node_count g in
  if n > 20 then invalid_arg "Hamiltonicity.is_hamiltonian: more than 20 nodes";
  if n < 3 then false
  else begin
    let adj = Array.init n (Graph.adjacency_mask g) in
    (* reach.(mask).(v): a path starting at node 0 visits exactly [mask] and
       ends at [v].  Node 0 is fixed as the cycle anchor. *)
    let full = (1 lsl n) - 1 in
    let reach = Array.make_matrix (full + 1) n false in
    reach.(1).(0) <- true;
    for mask = 1 to full do
      if mask land 1 = 1 then
        for v = 0 to n - 1 do
          if reach.(mask).(v) then
            for w = 0 to n - 1 do
              if mask land (1 lsl w) = 0 && adj.(v) land (1 lsl w) <> 0 then
                reach.(mask lor (1 lsl w)).(w) <- true
            done
        done
    done;
    let closes v = reach.(full).(v) && adj.(v) land 1 <> 0 in
    List.exists closes (List.init n Fun.id)
  end

let count_hamiltonian_subgraphs g k =
  let n = Graph.node_count g in
  if n > 20 then
    invalid_arg "Hamiltonicity.count_hamiltonian_subgraphs: more than 20 nodes";
  let count = ref Nat.zero in
  for mask = 0 to (1 lsl n) - 1 do
    let members = List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id) in
    if List.length members = k && is_hamiltonian (Graph.induced g members) then
      count := Nat.succ !count
  done;
  !count
