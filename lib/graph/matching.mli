(** Maximum-cardinality bipartite matching.  This powers the Lemma B.2
    polynomial-time test of whether a set of ground facts is a completion
    of a Codd table, which in turn gives membership of [#Comp_Cd(q)] in #P
    (Proposition B.1).

    The default algorithm is Hopcroft–Karp (O(E sqrt V)); the simpler
    Kuhn augmenting-path algorithm is kept as a reference implementation
    for differential testing. *)

(** [maximum_matching b] returns the size of a maximum matching and the
    matching itself as pairs [(left, right)]. *)
val maximum_matching : Bipartite.t -> int * (int * int) list

(** Kuhn's O(V·E) algorithm; same contract, used as a test oracle. *)
val maximum_matching_kuhn : Bipartite.t -> int * (int * int) list

(** [is_matching b pairs] checks that [pairs] are edges of [b] and no
    endpoint repeats — for validating the outputs above. *)
val is_matching : Bipartite.t -> (int * int) list -> bool
