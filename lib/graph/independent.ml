open Incdb_bignum

(* Number of set bits of a non-negative integer. *)
let popcount m =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go m 0

let lowest_bit m = m land -m

let bit_index m =
  let rec go m i = if m land 1 = 1 then i else go (m lsr 1) (i + 1) in
  go m 0

let count_independent_sets g =
  let n = Graph.node_count g in
  let adj = Array.init n (Graph.adjacency_mask g) in
  (* [count avail] = number of independent sets within the node set
     [avail].  Branch on a node of maximum degree within [avail]; when no
     edges remain, every subset is independent. *)
  let rec count avail =
    if avail = 0 then Nat.one
    else begin
      let best = ref (-1) and best_deg = ref (-1) in
      let m = ref avail in
      while !m <> 0 do
        let b = lowest_bit !m in
        m := !m lxor b;
        let v = bit_index b in
        let d = popcount (adj.(v) land avail) in
        if d > !best_deg then begin
          best_deg := d;
          best := v
        end
      done;
      if !best_deg = 0 then Combinat.pow2 (popcount avail)
      else begin
        let v = !best in
        let without_v = avail land lnot (1 lsl v) in
        let without_closed = without_v land lnot adj.(v) in
        Nat.add (count without_v) (count without_closed)
      end
    end
  in
  if n = 0 then Nat.one else count ((1 lsl n) - 1)

let count_vertex_covers = count_independent_sets

let subset_count g keep =
  let n = Graph.node_count g in
  if n > 25 then invalid_arg "Independent: brute-force graph too large";
  let es = Graph.edges g in
  let total = ref Nat.zero in
  for mask = 0 to (1 lsl n) - 1 do
    if keep es mask then total := Nat.succ !total
  done;
  !total

let count_independent_sets_brute g =
  let independent es mask =
    List.for_all (fun (u, v) -> mask land (1 lsl u) = 0 || mask land (1 lsl v) = 0) es
  in
  subset_count g independent

let count_vertex_covers_brute g =
  let covers es mask =
    List.for_all (fun (u, v) -> mask land (1 lsl u) <> 0 || mask land (1 lsl v) <> 0) es
  in
  subset_count g covers

let independent_pairs_by_size b =
  let nl = Bipartite.left_count b and nr = Bipartite.right_count b in
  if nl > 25 || nr > 25 then
    invalid_arg "Independent.independent_pairs_by_size: sides too large";
  let z = Array.make_matrix (nl + 1) (nr + 1) Nat.zero in
  (* For each left subset, the compatible right nodes are those with no
     neighbor inside the subset; any subset of them forms an independent
     pair, so they contribute binomially by size. *)
  for mask = 0 to (1 lsl nl) - 1 do
    let i = popcount mask in
    let free = ref 0 in
    for j = 0 to nr - 1 do
      let touched =
        List.exists (fun u -> mask land (1 lsl u) <> 0) (Bipartite.left_neighbors b j)
      in
      if not touched then incr free
    done;
    for j = 0 to !free do
      z.(i).(j) <- Nat.add z.(i).(j) (Combinat.binomial !free j)
    done
  done;
  z

let count_bipartite_independent_sets b =
  let z = independent_pairs_by_size b in
  let total = ref Nat.zero in
  Array.iter (Array.iter (fun c -> total := Nat.add !total c)) z;
  !total
