(** Bipartite graphs with explicit sides, as needed by the reductions from
    [#BIS] (Proposition 3.11), [#Avoidance] on bipartite graphs
    (Proposition 3.5) and [#PF] on bipartite graphs (Proposition 4.5(b)).

    Left nodes are [0 .. left-1], right nodes are [0 .. right-1], and every
    edge [(i, j)] joins left node [i] to right node [j]. *)

type t

(** @raise Invalid_argument on out-of-range endpoints. *)
val make : left:int -> right:int -> (int * int) list -> t

val left_count : t -> int
val right_count : t -> int
val edges : t -> (int * int) list
val edge_count : t -> int
val has_edge : t -> int -> int -> bool
val right_neighbors : t -> int -> int list
val left_neighbors : t -> int -> int list

(** View as a plain graph: left node [i] keeps number [i], right node [j]
    becomes [left + j]. *)
val to_graph : t -> Graph.t

(** [of_graph g] splits a bipartite simple graph along a 2-coloring.
    Returns the bipartite view plus the maps from [g]'s node numbering:
    [side.(u)] is [false] for left, and [index.(u)] the position within its
    side.  [None] if [g] is not bipartite. *)
val of_graph : Graph.t -> (t * bool array * int array) option
