(** Avoiding assignments of a multigraph (Definition A.1).

    An assignment picks, for every node, one of its incident edges; it is
    {e avoiding} when no edge is picked by both of its endpoints.  Counting
    avoiding assignments ([#Avoidance]) is #P-complete even on 3-regular
    multigraphs (Proposition A.3) and on 2-3-regular bipartite graphs
    (Proposition A.8); it is the source problem of the reduction showing
    that [#Val_Cd(R(x) ∧ S(x))] is #P-hard (Proposition 3.5). *)

open Incdb_bignum

(** Number of assignments, avoiding or not: the product of all degrees.
    Zero as soon as some node is isolated. *)
val count_assignments : Multigraph.t -> Nat.t

(** [count_avoiding g] counts avoiding assignments by backtracking. *)
val count_avoiding : Multigraph.t -> Nat.t

(** [subdivide g] inserts a fresh node in the middle of every edge of the
    multigraph, yielding the 2-3-regular bipartite {e simple} graph of
    Proposition A.8 when [g] is 3-regular.  Original node [u] keeps number
    [u]; the node subdividing edge [e] becomes [node_count g + e]. *)
val subdivide : Multigraph.t -> Graph.t
