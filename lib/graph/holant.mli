(** The Holant framework of Appendix A.2 (Definitions A.4–A.5), used by
    the paper to derive hardness of [#Avoidance] (Proposition A.3) from
    the results of Cai, Lu and Xia.

    [Holant([x0,x1,x2] | [y0,y1,y2,y3])] takes a 2–3-regular bipartite
    multigraph [(U ⊔ V, E)] and sums, over all 0/1 edge assignments, the
    product of signature values: a node contributes [x_i] (resp. [y_i])
    when exactly [i] of its incident edges carry 1.

    Example A.6 instances: perfect matchings are
    [Holant([0,1,0]|[0,1,0,0])], matchings [Holant([1,1,0]|[1,1,0,0])],
    edge covers [Holant([0,1,1]|[0,1,1,1])]; and Proposition A.3 rests on
    [#Avoidance(merging G) = Holant([1,1,0]|[0,1,0,0])(G)]. *)

open Incdb_bignum

(** A bipartite 2–3-regular multigraph given as a multigraph plus the side
    assignment: [side.(u) = true] iff node [u] is on the degree-2 side.
    @raise Invalid_argument if degrees do not match the sides. *)
type t

val make : Multigraph.t -> bool array -> t

(** [of_graph g] splits a simple bipartite graph whose sides have degrees
    2 and 3 respectively; [None] when [g] is not of that shape. *)
val of_graph : Graph.t -> t option

(** [eval h ~deg2 ~deg3] evaluates the Holant sum with signature [deg2] =
    [[x0;x1;x2]] on degree-2 nodes and [deg3] = [[y0;y1;y2;y3]] on
    degree-3 nodes, by enumerating all [2^{|E|}] edge assignments
    (restricted to small instances).
    @raise Invalid_argument on bad signature lengths or beyond 22
    edges. *)
val eval : t -> deg2:int list -> deg3:int list -> Nat.t

(** The Example A.6 specializations and the Proposition A.3 instance. *)

val count_perfect_matchings : t -> Nat.t
val count_matchings : t -> Nat.t
val count_edge_covers : t -> Nat.t

(** [avoidance_holant h] is [Holant([1,1,0]|[0,1,0,0])(h)]; by
    Proposition A.3 it equals the number of avoiding assignments of the
    merging of the underlying graph. *)
val avoidance_holant : t -> Nat.t
