open Incdb_bignum

let count_assignments g =
  let n = Multigraph.node_count g in
  let total = ref Nat.one in
  for u = 0 to n - 1 do
    total := Nat.mul !total (Nat.of_int (Multigraph.degree g u))
  done;
  if n = 0 then Nat.one else !total

let count_avoiding g =
  let n = Multigraph.node_count g in
  let choice = Array.make n (-1) in
  let count = ref Nat.zero in
  (* Assign nodes in increasing order; edge [e = {u, v}] with [v < u] causes
     a conflict exactly when [v] already chose [e] too. *)
  let rec go u =
    if u = n then count := Nat.succ !count
    else begin
      let try_edge e =
        let a, b = Multigraph.endpoints g e in
        let other = if a = u then b else a in
        let conflict = other < u && choice.(other) = e in
        if not conflict then begin
          choice.(u) <- e;
          go (u + 1);
          choice.(u) <- -1
        end
      in
      List.iter try_edge (Multigraph.incident g u)
    end
  in
  if n = 0 then Nat.one
  else begin
    go 0;
    !count
  end

let subdivide g =
  let n = Multigraph.node_count g in
  let m = Multigraph.edge_count g in
  let half_edges e =
    let u, v = Multigraph.endpoints g e in
    [ (u, n + e); (n + e, v) ]
  in
  Graph.make (n + m) (List.concat_map half_edges (List.init m Fun.id))
