(** Finite undirected graphs as used in Section 2 of the paper: no
    self-loops, no parallel edges.  Nodes are the integers [0 .. n-1]. *)

type t

(** [make n edges] builds a graph on [n] nodes.  Self-loops are rejected;
    duplicate edges are collapsed.
    @raise Invalid_argument on a self-loop or an out-of-range endpoint. *)
val make : int -> (int * int) list -> t

val node_count : t -> int
val edge_count : t -> int

(** Edges as pairs [(u, v)] with [u < v], sorted. *)
val edges : t -> (int * int) list

val has_edge : t -> int -> int -> bool
val neighbors : t -> int -> int list
val degree : t -> int -> int

(** Adjacency bitmask of a node (bit [v] set iff [u ~ v]); only valid when
    [node_count <= 62].
    @raise Invalid_argument when the graph is too large for bitmasks. *)
val adjacency_mask : t -> int -> int

(** Connected components, each a sorted list of nodes. *)
val components : t -> int list list

(** Two-color the graph if possible; [Some side] assigns a boolean side to
    every node such that every edge crosses, [None] if not bipartite. *)
val bipartition : t -> bool array option

(** [induced g nodes] restricts to the given node subset, renumbering nodes
    in the order given. *)
val induced : t -> int list -> t

(** [complement g] has an edge exactly where [g] has none. *)
val complement : t -> t

val pp : Format.formatter -> t -> unit
