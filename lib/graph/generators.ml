let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need at least 3 nodes";
  Graph.make n (List.init n (fun i -> (i, (i + 1) mod n)))

let path n =
  if n < 1 then invalid_arg "Generators.path: need at least 1 node";
  Graph.make n (List.init (n - 1) (fun i -> (i, i + 1)))

let complete n =
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      es := (u, v) :: !es
    done
  done;
  Graph.make n !es

let complete_bipartite a b =
  let es = ref [] in
  for u = 0 to a - 1 do
    for v = 0 to b - 1 do
      es := (u, a + v) :: !es
    done
  done;
  Graph.make (a + b) !es

let star n =
  if n < 1 then invalid_arg "Generators.star: need at least 1 node";
  Graph.make n (List.init (n - 1) (fun i -> (0, i + 1)))

let grid w h =
  if w < 1 || h < 1 then invalid_arg "Generators.grid: empty grid";
  let id x y = (y * w) + x in
  let es = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then es := (id x y, id (x + 1) y) :: !es;
      if y + 1 < h then es := (id x y, id x (y + 1)) :: !es
    done
  done;
  Graph.make (w * h) !es

let petersen () =
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let spokes = List.init 5 (fun i -> (i, 5 + i)) in
  let inner = List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5))) in
  Graph.make 10 (outer @ spokes @ inner)

let random ~seed n p_num p_den =
  let st = Random.State.make [| seed |] in
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.int st p_den < p_num then es := (u, v) :: !es
    done
  done;
  Graph.make n !es

let random_bipartite ~seed left right p_num p_den =
  let st = Random.State.make [| seed |] in
  let es = ref [] in
  for i = 0 to left - 1 do
    for j = 0 to right - 1 do
      if Random.State.int st p_den < p_num then es := (i, j) :: !es
    done
  done;
  Bipartite.make ~left ~right !es

let random_multigraph ~seed n m =
  if n < 2 then invalid_arg "Generators.random_multigraph: need 2 nodes";
  let st = Random.State.make [| seed |] in
  let draw _ =
    let u = Random.State.int st n in
    let rec other () =
      let v = Random.State.int st n in
      if v = u then other () else v
    in
    (u, other ())
  in
  Multigraph.make n (Array.init m draw)

let random_regular_multigraph ~seed n d =
  if n * d mod 2 = 1 then
    invalid_arg "Generators.random_regular_multigraph: n*d must be even";
  let st = Random.State.make [| seed |] in
  let attempts = ref 0 in
  let rec attempt () =
    incr attempts;
    if !attempts > 1000 then
      failwith "Generators.random_regular_multigraph: too many attempts";
    (* Configuration model: shuffle the n*d half-edges and pair them up. *)
    let stubs = Array.init (n * d) (fun i -> i / d) in
    for i = Array.length stubs - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let t = stubs.(i) in
      stubs.(i) <- stubs.(j);
      stubs.(j) <- t
    done;
    let ok = ref true in
    let edges =
      Array.init (n * d / 2) (fun k ->
          let u = stubs.(2 * k) and v = stubs.((2 * k) + 1) in
          if u = v then ok := false;
          (u, v))
    in
    if !ok then Multigraph.make n edges else attempt ()
  in
  attempt ()

let k_stretch g k =
  if k < 1 then invalid_arg "Generators.k_stretch: k must be positive";
  let n = Graph.node_count g in
  let next = ref n in
  let stretch_edge (u, v) =
    (* Replace u-v by u - f1 - f2 - ... - f(k-1) - v. *)
    let fresh = Array.init (k - 1) (fun _ -> let id = !next in incr next; id) in
    let nodes = Array.concat [ [| u |]; fresh; [| v |] ] in
    List.init k (fun i -> (nodes.(i), nodes.(i + 1)))
  in
  let es = List.concat_map stretch_edge (Graph.edges g) in
  Graph.make !next es
