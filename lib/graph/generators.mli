(** Deterministic graph generators for tests and benchmarks. *)

val cycle : int -> Graph.t
val path : int -> Graph.t
val complete : int -> Graph.t
val complete_bipartite : int -> int -> Graph.t
val star : int -> Graph.t

(** [grid w h] is the [w*h] king-free grid graph (4-neighborhood). *)
val grid : int -> int -> Graph.t

val petersen : unit -> Graph.t

(** [random ~seed n p_num p_den] is an Erdős–Rényi graph where each edge is
    present with probability [p_num/p_den]. *)
val random : seed:int -> int -> int -> int -> Graph.t

(** [random_bipartite ~seed left right p_num p_den]. *)
val random_bipartite : seed:int -> int -> int -> int -> int -> Bipartite.t

(** [random_multigraph ~seed n m] draws [m] edges uniformly (parallel edges
    allowed, self-loops resampled); nodes with no incident edge may
    occur. *)
val random_multigraph : seed:int -> int -> int -> Multigraph.t

(** [random_regular_multigraph ~seed n d] builds a [d]-regular multigraph
    on [n] nodes by a configuration-model pairing (self-loop pairings are
    locally repaired; raises after too many failed attempts).
    @raise Invalid_argument when [n * d] is odd. *)
val random_regular_multigraph : seed:int -> int -> int -> Multigraph.t

(** [k_stretch g k] replaces every edge by a path with [k] edges
    (Definition B.11); [k_stretch g 1] is [g] itself. *)
val k_stretch : Graph.t -> int -> Graph.t
