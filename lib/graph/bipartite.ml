module Edge_set = Set.Make (struct
  type t = int * int

  let compare = Stdlib.compare
end)

type t = {
  left : int;
  right : int;
  edge_set : Edge_set.t;
  radj : int list array; (* right neighbors of each left node *)
  ladj : int list array; (* left neighbors of each right node *)
}

let make ~left ~right edge_list =
  if left < 0 || right < 0 then invalid_arg "Bipartite.make: negative side";
  List.iter
    (fun (i, j) ->
      if i < 0 || i >= left || j < 0 || j >= right then
        invalid_arg "Bipartite.make: endpoint out of range")
    edge_list;
  let edge_set = Edge_set.of_list edge_list in
  let radj = Array.make left [] in
  let ladj = Array.make right [] in
  Edge_set.iter
    (fun (i, j) ->
      radj.(i) <- j :: radj.(i);
      ladj.(j) <- i :: ladj.(j))
    edge_set;
  Array.iteri (fun i l -> radj.(i) <- List.sort Stdlib.compare l) radj;
  Array.iteri (fun j l -> ladj.(j) <- List.sort Stdlib.compare l) ladj;
  { left; right; edge_set; radj; ladj }

let left_count b = b.left
let right_count b = b.right
let edges b = Edge_set.elements b.edge_set
let edge_count b = Edge_set.cardinal b.edge_set
let has_edge b i j = Edge_set.mem (i, j) b.edge_set
let right_neighbors b i = b.radj.(i)
let left_neighbors b j = b.ladj.(j)

let to_graph b =
  Graph.make (b.left + b.right)
    (List.map (fun (i, j) -> (i, b.left + j)) (edges b))

let of_graph g =
  match Graph.bipartition g with
  | None -> None
  | Some side ->
    let n = Graph.node_count g in
    let index = Array.make n 0 in
    let nl = ref 0 and nr = ref 0 in
    for u = 0 to n - 1 do
      if side.(u) then begin
        index.(u) <- !nr;
        incr nr
      end else begin
        index.(u) <- !nl;
        incr nl
      end
    done;
    let to_bip (u, v) =
      let u, v = if side.(u) then (v, u) else (u, v) in
      (index.(u), index.(v))
    in
    let b = make ~left:!nl ~right:!nr (List.map to_bip (Graph.edges g)) in
    Some (b, side, index)
