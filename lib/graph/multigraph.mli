(** Multigraphs as in Appendix A.2: undirected, no self-loops, parallel
    edges allowed.  Nodes are [0 .. n-1]; edges are identified by their
    index into the edge array so that parallel edges stay distinct (this
    matters for avoiding assignments, where a node picks an {e edge}, not a
    neighbor). *)

type t

(** [make n endpoints] builds a multigraph; [endpoints.(e)] are the two
    distinct endpoints of edge [e].
    @raise Invalid_argument on a self-loop or out-of-range endpoint. *)
val make : int -> (int * int) array -> t

val node_count : t -> int
val edge_count : t -> int

(** Endpoints of an edge id. *)
val endpoints : t -> int -> int * int

(** Edge ids incident to a node. *)
val incident : t -> int -> int list

val degree : t -> int -> int

(** Every node has degree exactly [d]. *)
val is_regular : t -> int -> bool

(** [of_graph g] views a simple graph as a multigraph; edge ids follow
    [Graph.edges g]. *)
val of_graph : Graph.t -> t

(** [merging g] of a 2-3-regular bipartite simple graph: merge the two
    incident edges of every degree-2 node, producing the 3-regular
    multigraph of Proposition A.3.  Nodes of the result are the degree-3
    nodes of [g], renumbered in increasing order.
    @raise Invalid_argument if some node has degree other than 2 or 3, or
    if merging would create a self-loop. *)
val merging : Graph.t -> t
