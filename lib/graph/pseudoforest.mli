(** Pseudoforests and the bicircular matroid (Definition B.3, B.9).

    A graph is a pseudoforest when every connected component has at most
    one cycle — equivalently (Lemma B.4) when it admits an orientation of
    maximum outdegree 1.  Edge subsets inducing pseudoforests are exactly
    the independent sets of the bicircular matroid, and counting them
    ([#PF]) is #P-hard even on bipartite graphs (Proposition B.5); this is
    the source problem of the Proposition 4.5(b) reduction. *)

open Incdb_bignum

(** [is_pseudoforest g] checks the at-most-one-cycle-per-component
    condition (each component has [#edges <= #nodes]). *)
val is_pseudoforest : Graph.t -> bool

(** [edge_subset_is_pseudoforest g sub] checks the subgraph induced by the
    edge subset [sub] (a sublist of [Graph.edges g]). *)
val edge_subset_is_pseudoforest : Graph.t -> (int * int) list -> bool

(** [count_pseudoforests g] is [#PF(g)]: the number of edge subsets [S]
    with [G[S]] a pseudoforest (the empty set counts).  Enumerates the
    [2^m] subsets; restricted to small graphs. *)
val count_pseudoforests : Graph.t -> Nat.t

(** [bicircular_rank n edges] is the rank of the given edge multiset in the
    bicircular matroid of the host graph on [n] nodes: the size of a
    largest sub-multiset inducing a pseudoforest.  Computed greedily (the
    independence structure is a matroid, Definition B.9). *)
val bicircular_rank : int -> (int * int) list -> int

(** [find_outdegree_one_orientation g] returns [Some dir] with one oriented
    pair per edge of [g], each node appearing as a source at most once, or
    [None] when [g] is not a pseudoforest (Lemma B.4). *)
val find_outdegree_one_orientation : Graph.t -> (int * int) list option
