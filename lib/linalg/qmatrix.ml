open Incdb_bignum

type t = Qnum.t array array

let make rows cols f =
  if rows <= 0 || cols <= 0 then invalid_arg "Qmatrix.make: non-positive dimension";
  Array.init rows (fun i -> Array.init cols (fun j -> f i j))

let rows (m : t) = Array.length m
let cols (m : t) = Array.length m.(0)
let get (m : t) i j = m.(i).(j)
let identity n = make n n (fun i j -> if i = j then Qnum.one else Qnum.zero)

let equal (a : t) (b : t) =
  rows a = rows b && cols a = cols b
  && begin
       let ok = ref true in
       for i = 0 to rows a - 1 do
         for j = 0 to cols a - 1 do
           if not (Qnum.equal a.(i).(j) b.(i).(j)) then ok := false
         done
       done;
       !ok
     end

let mul (a : t) (b : t) =
  if cols a <> rows b then invalid_arg "Qmatrix.mul: dimension mismatch";
  let inner i j =
    let acc = ref Qnum.zero in
    for k = 0 to cols a - 1 do
      acc := Qnum.add !acc (Qnum.mul a.(i).(k) b.(k).(j))
    done;
    !acc
  in
  make (rows a) (cols b) inner

let mul_vec (a : t) (v : Qnum.t array) =
  if cols a <> Array.length v then invalid_arg "Qmatrix.mul_vec: dimension mismatch";
  let entry i =
    let acc = ref Qnum.zero in
    for k = 0 to cols a - 1 do
      acc := Qnum.add !acc (Qnum.mul a.(i).(k) v.(k))
    done;
    !acc
  in
  Array.init (rows a) entry

let kronecker (a : t) (b : t) =
  let ra = rows a and ca = cols a and rb = rows b and cb = cols b in
  make (ra * rb) (ca * cb) (fun i j ->
      Qnum.mul a.(i / rb).(j / cb) b.(i mod rb).(j mod cb))

(* Gauss–Jordan elimination of [a], applying the same row operations to the
   augmented columns [aug].  Returns the transformed augmentation. *)
let gauss_jordan (a : t) (aug : t) : t =
  let n = rows a in
  if cols a <> n then failwith "Qmatrix: non-square system";
  if rows aug <> n then invalid_arg "Qmatrix: augmentation rows mismatch";
  let m = Array.map Array.copy a in
  let g = Array.map Array.copy aug in
  let caug = cols aug in
  for col = 0 to n - 1 do
    (* Find a pivot row at or below [col]. *)
    let rec find r =
      if r >= n then failwith "Qmatrix: singular matrix"
      else if Qnum.is_zero m.(r).(col) then find (r + 1)
      else r
    in
    let piv = find col in
    if piv <> col then begin
      let tmp = m.(col) in m.(col) <- m.(piv); m.(piv) <- tmp;
      let tmp = g.(col) in g.(col) <- g.(piv); g.(piv) <- tmp
    end;
    let inv_p = Qnum.inv m.(col).(col) in
    for j = 0 to n - 1 do m.(col).(j) <- Qnum.mul m.(col).(j) inv_p done;
    for j = 0 to caug - 1 do g.(col).(j) <- Qnum.mul g.(col).(j) inv_p done;
    for r = 0 to n - 1 do
      if r <> col && not (Qnum.is_zero m.(r).(col)) then begin
        let f = m.(r).(col) in
        for j = 0 to n - 1 do
          m.(r).(j) <- Qnum.sub m.(r).(j) (Qnum.mul f m.(col).(j))
        done;
        for j = 0 to caug - 1 do
          g.(r).(j) <- Qnum.sub g.(r).(j) (Qnum.mul f g.(col).(j))
        done
      end
    done
  done;
  g

let solve a b =
  let aug = make (rows a) 1 (fun i _ -> b.(i)) in
  let sol = gauss_jordan a aug in
  Array.init (rows a) (fun i -> sol.(i).(0))

let inverse a = gauss_jordan a (identity (rows a))

let determinant (a : t) =
  let n = rows a in
  if cols a <> n then failwith "Qmatrix.determinant: non-square";
  let m = Array.map Array.copy a in
  let det = ref Qnum.one in
  (try
     for col = 0 to n - 1 do
       let rec find r =
         if r >= n then raise Exit
         else if Qnum.is_zero m.(r).(col) then find (r + 1)
         else r
       in
       let piv = find col in
       if piv <> col then begin
         let tmp = m.(col) in m.(col) <- m.(piv); m.(piv) <- tmp;
         det := Qnum.neg !det
       end;
       det := Qnum.mul !det m.(col).(col);
       let inv_p = Qnum.inv m.(col).(col) in
       for r = col + 1 to n - 1 do
         if not (Qnum.is_zero m.(r).(col)) then begin
           let f = Qnum.mul m.(r).(col) inv_p in
           for j = col to n - 1 do
             m.(r).(j) <- Qnum.sub m.(r).(j) (Qnum.mul f m.(col).(j))
           done
         end
       done
     done
   with Exit -> det := Qnum.zero);
  !det

let eval_poly coeffs x =
  (* Horner, from the high-degree end. *)
  let acc = ref Qnum.zero in
  for i = Array.length coeffs - 1 downto 0 do
    acc := Qnum.add (Qnum.mul !acc x) coeffs.(i)
  done;
  !acc

let lagrange_interpolate points =
  let pts = Array.of_list points in
  let n = Array.length pts in
  if n = 0 then [||]
  else begin
    (* Solve the Vandermonde system exactly; n is small in our uses. *)
    let vander =
      make n n (fun i j ->
          let x, _ = pts.(i) in
          let rec pow acc k = if k = 0 then acc else pow (Qnum.mul acc x) (k - 1) in
          pow Qnum.one j)
    in
    let b = Array.map snd pts in
    try solve vander b
    with Failure _ -> failwith "Qmatrix.lagrange_interpolate: duplicate abscissae"
  end

let pp fmt (m : t) =
  Format.fprintf fmt "@[<v>";
  Array.iter
    (fun row ->
      Format.fprintf fmt "@[<h>[";
      Array.iteri
        (fun j q ->
          if j > 0 then Format.fprintf fmt ", ";
          Qnum.pp fmt q)
        row;
      Format.fprintf fmt "]@]@,")
    m;
  Format.fprintf fmt "@]"
