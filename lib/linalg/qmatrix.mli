(** Exact dense linear algebra over the rationals.

    Used by the Proposition 3.11 Turing reduction (inverting the Kronecker
    square of the surjection matrix to recover [#BIS] from oracle answers)
    and by the Appendix B.5 Lagrange interpolation of bicircular Tutte
    polynomials. *)

open Incdb_bignum

type t

(** [make rows cols f] builds the matrix with entry [f i j] at row [i],
    column [j] (0-indexed).
    @raise Invalid_argument on non-positive dimensions. *)
val make : int -> int -> (int -> int -> Qnum.t) -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Qnum.t
val identity : int -> t
val equal : t -> t -> bool
val mul : t -> t -> t

(** [mul_vec m v] is the matrix–vector product. *)
val mul_vec : t -> Qnum.t array -> Qnum.t array

(** Kronecker (tensor) product; for the [(n+1)^2]-dimensional system of
    Proposition 3.11. *)
val kronecker : t -> t -> t

(** [solve a b] solves [a x = b] by Gaussian elimination with exact pivots.
    @raise Failure if [a] is singular or non-square. *)
val solve : t -> Qnum.t array -> Qnum.t array

(** [inverse a] computes the exact inverse.
    @raise Failure if [a] is singular or non-square. *)
val inverse : t -> t

(** [determinant a] by fraction-free elimination over [Qnum].
    @raise Failure if [a] is non-square. *)
val determinant : t -> Qnum.t

(** [lagrange_interpolate points] returns the coefficients (low degree
    first) of the unique polynomial of degree [< n] through the [n] given
    [(x, y)] pairs with pairwise distinct abscissae.
    @raise Failure on duplicate abscissae. *)
val lagrange_interpolate : (Qnum.t * Qnum.t) list -> Qnum.t array

(** [eval_poly coeffs x] evaluates a polynomial given low-first coefficients. *)
val eval_poly : Qnum.t array -> Qnum.t -> Qnum.t

val pp : Format.formatter -> t -> unit
