open Incdb_bignum
open Incdb_linalg
open Incdb_graph
open Incdb_cq
open Incdb_incomplete

let query = Cq.q_rx_sxy_ty

let value_const i = Printf.sprintf "c%d" (i + 1)

let encode b a_count b_count =
  let n = max (Bipartite.left_count b) (Bipartite.right_count b) in
  let dom = List.init n value_const in
  let s_facts =
    List.map
      (fun (i, j) -> Idb.fact "S" [ Term.const (value_const i); Term.const (value_const j) ])
      (Bipartite.edges b)
  in
  let r_facts =
    List.init a_count (fun i -> Idb.fact "R" [ Term.null (Printf.sprintf "r%d" i) ])
  in
  let t_facts =
    List.init b_count (fun j -> Idb.fact "T" [ Term.null (Printf.sprintf "t%d" j) ])
  in
  Idb.make (s_facts @ r_facts @ t_facts) (Idb.Uniform dom)

let default_oracle db =
  Incdb_incomplete.Brute.count_valuations (Query.Bcq query) db

let bis_via_val ?(oracle = default_oracle) b =
  let left = Bipartite.left_count b and right = Bipartite.right_count b in
  let n = max left right in
  if n = 0 then Nat.one
  else begin
    (* (n+1)^2 oracle calls: C_{a,b} = (number of valuations of D_{a,b}
       whose spanned pair of index sets is independent). *)
    let dim = n + 1 in
    let c = Array.make (dim * dim) Qnum.zero in
    for a = 0 to n do
      for bb = 0 to n do
        let db = encode b a bb in
        let total = Combinat.power n (a + bb) in
        let non_satisfying = Nat.sub total (oracle db) in
        c.((a * dim) + bb) <- Qnum.of_nat non_satisfying
      done
    done;
    let surj_matrix =
      Qmatrix.make dim dim (fun a i -> Qnum.of_nat (Combinat.surj a i))
    in
    let system = Qmatrix.kronecker surj_matrix surj_matrix in
    let z = Qmatrix.solve system c in
    let total =
      Array.fold_left (fun acc zi -> Qnum.add acc zi) Qnum.zero z
    in
    (* The solution counts independent pairs of the n+n padded graph;
       remove the padding factor 2^{(n-left)+(n-right)}. *)
    let padded =
      match Zint.to_nat (Qnum.to_zint total) with
      | nat -> nat
      | exception Invalid_argument _ ->
        failwith "Bis_val: non-integral solution (oracle inconsistent?)"
    in
    let pad = n - left + (n - right) in
    let q, r = Nat.divmod padded (Combinat.pow2 pad) in
    if not (Nat.is_zero r) then
      failwith "Bis_val: padding factor does not divide the solution";
    q
  end
