(** 3-CNF formulas and the [#k3SAT] oracle (Definition D.2), the SpanP-hard
    source problem of the Theorem 6.3 reduction. *)

open Incdb_bignum

(** A literal: variable index (0-based) and polarity. *)
type literal = { var : int; positive : bool }

(** A clause is exactly three literals; a formula is a clause list over
    variables [0 .. nvars-1]. *)
type t = { nvars : int; clauses : (literal * literal * literal) list }

(** @raise Invalid_argument on out-of-range variables. *)
val make : nvars:int -> (literal * literal * literal) list -> t

val lit : ?positive:bool -> int -> literal

(** [eval f assignment] with [assignment.(v)] the truth value of [v]. *)
val eval : t -> bool array -> bool

(** Number of satisfying assignments, by enumeration. *)
val count_sat : t -> Nat.t

(** [count_k3sat f k] is [#k3SAT]: the number of assignments to the first
    [k] variables extendable to a satisfying assignment of [f].
    @raise Invalid_argument unless [0 <= k <= nvars]. *)
val count_k3sat : t -> int -> Nat.t

(** [random ~seed ~nvars ~nclauses] draws clauses uniformly (distinct
    variables within a clause). *)
val random : seed:int -> nvars:int -> nclauses:int -> t

val to_string : t -> string
