(** Proposition 4.2: counting vertex covers (equivalently, independent
    sets) reduces {e parsimoniously} to [#Comp_Cd(R(x))] — counting the
    completions of a single unary Codd table in the non-uniform setting.

    Edge nulls ([dom(⊥e) = {u,v}]) force one endpoint of every edge into
    the completion; node nulls ([dom(⊥u) = {u, a}] with a fresh absorber
    constant [a]) let any superset be reached, so completions are exactly
    the vertex covers of [G]. *)

open Incdb_bignum
open Incdb_graph
open Incdb_incomplete

(** The Codd table; node [u] is constant ["v<u>"], the absorber is
    ["abs"]. *)
val encode : Graph.t -> Idb.t

val query : Incdb_cq.Cq.t

(** [vertex_covers_via_comp ?oracle g] recovers [#VC(G)] as
    [#Comp_Cd(R(x))(D_G)], parsimoniously. *)
val vertex_covers_via_comp : ?oracle:(Idb.t -> Nat.t) -> Graph.t -> Nat.t

(** The same count read as [#IS(G)] through complementation — the form
    used in the Theorem 5.5 non-approximability argument. *)
val independent_sets_via_comp : ?oracle:(Idb.t -> Nat.t) -> Graph.t -> Nat.t
