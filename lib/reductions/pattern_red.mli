(** The pattern reductions of Lemmas 3.3 and 4.1, executable: if [q'] is a
    pattern of [q], transform any input database [D'] for [q'] into a
    database [D] for [q] with [#Val(q')(D') = #Val(q)(D)] and
    [#Comp(q')(D') = #Comp(q)(D)] (the same transformation works for both,
    and preserves Codd-ness and uniformity). *)

open Incdb_cq
open Incdb_incomplete

(** [transform ~pattern ~target db'] builds [D] from [D'].
    Deleted variable occurrences and deleted atoms are filled with every
    constant of the active domain [A] (constants of [D'] plus all domain
    values), exactly as in the proof of Lemma 3.3.

    Deviation note (documented in DESIGN.md): filling a deleted column of
    a null-bearing tuple replicates that tuple once per constant of [A],
    so a null can end up occurring several times and the output is not
    always a Codd table, contrary to the parenthetical claim in the
    paper's proof.  The counting identities (which the test suite checks
    exhaustively) and uniformity are preserved unconditionally; Codd-ness
    is preserved exactly when no null-bearing tuple has a deleted column.
    @raise Invalid_argument if [pattern] is not a pattern of [target]. *)
val transform : pattern:Cq.t -> target:Cq.t -> Idb.t -> Idb.t
