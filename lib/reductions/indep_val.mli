(** Proposition 3.8: counting independent sets reduces to
    [#Val^u(R(x) ∧ S(x,y) ∧ T(y))] and to [#Val^u(R(x,y) ∧ S(x,y))], with
    the fixed uniform domain [{0,1}].

    Valuations are in bijection with node subsets ([⊥u = 1] means "u in
    the subset"); a valuation falsifies the query exactly when the subset
    is independent, so [#IS(G) = 2^{|V|} - #Val(q)(D_G)]. *)

open Incdb_bignum
open Incdb_graph
open Incdb_incomplete

(** Encoding for [R(x) ∧ S(x,y) ∧ T(y)]: facts [S(⊥u,⊥v)], [S(⊥v,⊥u)]
    per edge plus [R(1)] and [T(1)]. *)
val encode_rst : Graph.t -> Idb.t

(** Encoding for [R(x,y) ∧ S(x,y)]: the same [S] encoding plus
    [R(1,1)]. *)
val encode_rs : Graph.t -> Idb.t

val query_rst : Incdb_cq.Cq.t
val query_rs : Incdb_cq.Cq.t

(** [independent_sets_via_val ~variant ?oracle g] recovers [#IS(G)] as
    [2^{|V|} - #Val(q)(D_G)]; [variant] picks the query/encoding pair. *)
val independent_sets_via_val :
  variant:[ `Rst | `Rs ] -> ?oracle:(Incdb_cq.Cq.t -> Idb.t -> Nat.t) ->
  Graph.t -> Nat.t
