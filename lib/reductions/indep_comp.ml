open Incdb_bignum
open Incdb_graph
open Incdb_incomplete

let node_const u = Printf.sprintf "v%d" u
let node_null u = Printf.sprintf "x%d" u

let encode g =
  let n = Graph.node_count g in
  let anchor_facts =
    List.init n (fun u ->
        Idb.fact "R" [ Term.const (node_const u); Term.null (node_null u) ])
  in
  let edge_facts =
    List.concat_map
      (fun (u, v) ->
        [
          Idb.fact "R" [ Term.null (node_null u); Term.null (node_null v) ];
          Idb.fact "R" [ Term.null (node_null v); Term.null (node_null u) ];
        ])
      (Graph.edges g)
  in
  let constant_facts =
    [
      Idb.fact "R" [ Term.const "0"; Term.const "0" ];
      Idb.fact "R" [ Term.const "0"; Term.const "1" ];
      Idb.fact "R" [ Term.const "1"; Term.const "0" ];
      Idb.fact "R" [ Term.null "loop"; Term.null "loop" ];
    ]
  in
  Idb.make (anchor_facts @ edge_facts @ constant_facts) (Idb.Uniform [ "0"; "1" ])

let default_oracle db = Incdb_incomplete.Brute.count_all_completions db

let independent_sets_via_comp ?(oracle = default_oracle) g =
  let completions = oracle (encode g) in
  Nat.sub completions (Combinat.pow2 (Graph.node_count g))
