(** Proposition 3.11: [#Val^u_Cd(R(x) ∧ S(x,y) ∧ T(y))] is #P-hard, by a
    Turing reduction from counting independent sets of a bipartite graph
    ([#BIS]).

    The reduction makes [(n+1)^2] oracle calls on databases [D_{a,b}]
    ([a] nulls in [R], [b] nulls in [T], the edge relation [S] ground,
    uniform domain of size [n]), producing counts
    [C_{a,b} = Σ_{i,j} surj(a,i) surj(b,j) Z_{i,j}] where [Z_{i,j}] counts
    independent pairs by size.  The matrix of this linear system is the
    Kronecker square of the triangular surjection matrix, hence
    invertible; solving it exactly over the rationals recovers
    [#BIS = Σ Z_{i,j}]. *)

open Incdb_bignum
open Incdb_graph
open Incdb_incomplete

(** [encode b a_count b_count] is the database [D_{a,b}] for the bipartite
    graph [b], padded so both sides have [n = max(|X|,|Y|)] nodes. *)
val encode : Bipartite.t -> int -> int -> Idb.t

val query : Incdb_cq.Cq.t

(** [bis_via_val ?oracle b] runs the full Turing reduction and returns
    [#BIS(b)].  [oracle] computes [#Val] of the query on each [D_{a,b}]
    (brute force by default). *)
val bis_via_val : ?oracle:(Idb.t -> Nat.t) -> Bipartite.t -> Nat.t
