(** Proposition 3.4: counting k-colorings reduces to [#Val^u(R(x,x))].

    Given a graph [G], build the uniform incomplete database with one null
    per node (domain [{1..k}]) and facts [R(⊥u, ⊥v)], [R(⊥v, ⊥u)] per
    edge: the valuations {e falsifying} [R(x,x)] are exactly the proper
    [k]-colorings. *)

open Incdb_bignum
open Incdb_graph
open Incdb_incomplete

(** The encoding database.  Nulls are named after nodes; the uniform
    domain is [{"1", ..., "k"}]. *)
val encode : ?k:int -> Graph.t -> Idb.t

(** The query [R(x,x)]. *)
val query : Incdb_cq.Cq.t

(** [colorings_via_val ?k ?oracle g] recovers the number of proper
    [k]-colorings as [total valuations - #Val(R(x,x))], where [#Val] is
    computed by [oracle] (brute force by default — the problem is #P-hard,
    Proposition 3.4). *)
val colorings_via_val : ?k:int -> ?oracle:(Idb.t -> Nat.t) -> Graph.t -> Nat.t
