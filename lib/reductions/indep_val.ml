open Incdb_bignum
open Incdb_graph
open Incdb_cq
open Incdb_incomplete

let query_rst = Cq.q_rx_sxy_ty
let query_rs = Cq.q_rxy_sxy

let node_null u = Printf.sprintf "v%d" u

let edge_facts g =
  List.concat_map
    (fun (u, v) ->
      [
        Idb.fact "S" [ Term.null (node_null u); Term.null (node_null v) ];
        Idb.fact "S" [ Term.null (node_null v); Term.null (node_null u) ];
      ])
    (Graph.edges g)

let encode_rst g =
  Idb.make
    (edge_facts g
    @ [ Idb.fact "R" [ Term.const "1" ]; Idb.fact "T" [ Term.const "1" ] ])
    (Idb.Uniform [ "0"; "1" ])

let encode_rs g =
  Idb.make
    (edge_facts g @ [ Idb.fact "R" [ Term.const "1"; Term.const "1" ] ])
    (Idb.Uniform [ "0"; "1" ])

let default_oracle q db =
  Incdb_incomplete.Brute.count_valuations (Query.Bcq q) db

let independent_sets_via_val ~variant ?(oracle = default_oracle) g =
  let q, db =
    match variant with
    | `Rst -> (query_rst, encode_rst g)
    | `Rs -> (query_rs, encode_rs g)
  in
  let satisfying = oracle q db in
  (* Isolated nodes contribute no null; their subsets are free. *)
  let isolated =
    List.length
      (List.filter (fun u -> Graph.degree g u = 0)
         (List.init (Graph.node_count g) Fun.id))
  in
  Nat.mul
    (Nat.sub (Idb.total_valuations db) satisfying)
    (Combinat.pow2 isolated)
