open Incdb_cq
open Incdb_incomplete

let bits = [ 0; 1 ]

let triples =
  List.concat_map
    (fun a -> List.concat_map (fun b -> List.map (fun c -> (a, b, c)) bits) bits)
    bits

let c_rel (a, b, c) = Printf.sprintf "C%d%d%d" a b c

let query =
  (* S(x0,y0) ∧ ⋀_{abc} C_abc(x,y,z): an sjfBCQ (Equation (8)). *)
  Cq.make
    (Cq.atom "S" [ "x0"; "y0" ]
    :: List.map (fun t -> Cq.atom (c_rel t) [ "x"; "y"; "z" ]) triples)

let var_null v = Printf.sprintf "y%d" v

let encode (f : Cnf.t) k =
  if k < 1 || k > f.Cnf.nvars then invalid_arg "Spanp.encode: need 1 <= k <= n";
  (* Seven ground facts per C_abc: the tuples agreeing somewhere. *)
  let ground_facts =
    List.concat_map
      (fun (a, b, c) ->
        List.concat_map
          (fun a' ->
            List.concat_map
              (fun b' ->
                List.filter_map
                  (fun c' ->
                    if a = a' || b = b' || c = c' then
                      Some
                        (Idb.fact (c_rel (a, b, c))
                           [
                             Term.const (string_of_int a');
                             Term.const (string_of_int b');
                             Term.const (string_of_int c');
                           ])
                    else None)
                  bits)
              bits)
          bits)
      triples
  in
  let clause_facts =
    List.map
      (fun (l1, l2, l3) ->
        let bit (l : Cnf.literal) = if l.Cnf.positive then 1 else 0 in
        Idb.fact
          (c_rel (bit l1, bit l2, bit l3))
          [
            Term.null (var_null l1.Cnf.var);
            Term.null (var_null l2.Cnf.var);
            Term.null (var_null l3.Cnf.var);
          ])
      f.Cnf.clauses
  in
  let s_facts =
    List.init k (fun i ->
        Idb.fact "S"
          [ Term.const (Printf.sprintf "p%d" (i + 1)); Term.null (var_null i) ])
  in
  Idb.make (ground_facts @ clause_facts @ s_facts) (Idb.Uniform [ "0"; "1" ])

let default_oracle db =
  Incdb_incomplete.Brute.count_completions (Query.Not (Query.Bcq query)) db

let k3sat_via_comp ?(oracle = default_oracle) f k = oracle (encode f k)
