(** Proposition 4.5(a): [#Comp^u(R(x,x))] and [#Comp^u(R(x,y))] are
    #P-hard over the fixed domain [{0,1}], by a Turing reduction from
    counting independent sets: the constructed database has exactly
    [2^{|V|} + #IS(G)] completions, and every completion satisfies both
    queries. *)

open Incdb_bignum
open Incdb_graph
open Incdb_incomplete

(** The uniform naive table over the binary relation [R] and the domain
    [{0,1}] described in the proposition (anchor facts [R(u,⊥u)], edge
    facts, the constants square minus [R(1,1)], and the [R(⊥,⊥)] escape
    fact). *)
val encode : Graph.t -> Idb.t

(** [independent_sets_via_comp ?oracle g] recovers
    [#IS(G) = #Comp(D_G) - 2^{|V|}]. *)
val independent_sets_via_comp : ?oracle:(Idb.t -> Nat.t) -> Graph.t -> Nat.t
