(** End-to-end hardness certificates: the composition that actually proves
    each #P-hardness cell of Table 1.

    The paper's architecture is two-staged: a source reduction maps a
    #P-hard graph problem to the counting problem of a fixed {e pattern}
    query (Propositions 3.4, 3.5, 3.8, 4.2, 4.5), and Lemma 3.3 / 4.1
    lifts it to every query containing that pattern.  This module composes
    the two stages, so that for {e any} sjfBCQ [q] classified hard one can
    run a genuine reduction from a graph problem into [#Val(q)] or
    [#Comp(q)] and check the counting identity on concrete graphs.

    Each certificate bundles: the witness pattern, the source problem's
    name, the instance transformation [Graph.t -> Idb.t] (source encoding
    followed by the pattern transform), and the recovery function that
    turns [count(q)] on the transformed instance back into the graph
    quantity. *)

open Incdb_bignum
open Incdb_graph
open Incdb_cq
open Incdb_incomplete

type t = {
  pattern : Cq.t;  (** the Table 1 witness pattern used *)
  source : string;  (** e.g. "#3COL", "#IS", "#VC" *)
  encode : Graph.t -> Idb.t;
      (** graph instance → database for the {e target} query *)
  recover : Graph.t -> Nat.t -> Nat.t;
      (** turns the target count on the encoded instance into the source
          graph quantity *)
  direct : Graph.t -> Nat.t;  (** the combinatorial oracle to compare to *)
}

(** [for_val q] builds a certificate for [#Val(q)] in the uniform naive
    setting, when [q] is hard there: via [R(x,x)] (from #3COL) or via the
    path / double-edge patterns (from #IS).  [None] when [q] is
    tractable. *)
val for_val : Cq.t -> t option

(** [for_comp q] builds a certificate for [#Comp(q)] in the non-uniform
    Codd-or-naive setting (always hard, Theorem 4.3), reducing from #VC
    through the [R(x)] pattern. *)
val for_comp : Cq.t -> t

(** [check cert ~count g] runs the full pipeline on a concrete graph:
    encodes, counts with [count] (e.g. brute force), recovers, and
    compares with the direct oracle.  Returns [(recovered, direct)]. *)
val check : t -> count:(Idb.t -> Nat.t) -> Graph.t -> Nat.t * Nat.t
