open Incdb_graph
open Incdb_cq
open Incdb_incomplete

let query = Cq.q_rx

let node_const u = Printf.sprintf "v%d" u
let absorber = "abs"

let encode g =
  let edge_nulls =
    List.mapi
      (fun i (u, v) ->
        let name = Printf.sprintf "e%d" i in
        (name, [ node_const u; node_const v ]))
      (Graph.edges g)
  in
  let node_nulls =
    List.init (Graph.node_count g) (fun u ->
        (Printf.sprintf "n%d" u, [ node_const u; absorber ]))
  in
  let facts =
    List.map (fun (name, _) -> Idb.fact "R" [ Term.null name ])
      (edge_nulls @ node_nulls)
    @ [ Idb.fact "R" [ Term.const absorber ] ]
  in
  Idb.make facts (Idb.Nonuniform (edge_nulls @ node_nulls))

let default_oracle db =
  Incdb_incomplete.Brute.count_completions (Query.Bcq query) db

let vertex_covers_via_comp ?(oracle = default_oracle) g = oracle (encode g)

let independent_sets_via_comp ?oracle g = vertex_covers_via_comp ?oracle g
