open Incdb_bignum
open Incdb_graph
open Incdb_incomplete
open Incdb_relational

let node_const u = Printf.sprintf "a%d" u

let encode g k =
  let edge_facts =
    List.concat_map
      (fun (u, v) ->
        [
          Idb.fact "R" [ Term.const (node_const u); Term.const (node_const v) ];
          Idb.fact "R" [ Term.const (node_const v); Term.const (node_const u) ];
        ])
      (Graph.edges g)
  in
  let marker_facts =
    List.init (Graph.node_count g) (fun u ->
        Idb.fact "T"
          [ Term.const (node_const u); Term.null (Printf.sprintf "m%d" u) ])
  in
  let size_facts =
    List.init k (fun j -> Idb.fact "K" [ Term.const (string_of_int (j + 1)) ])
  in
  Idb.make (edge_facts @ marker_facts @ size_facts) (Idb.Uniform [ "0"; "1" ])

let query_holds db =
  (* S = nodes marked T(v, 1); check |S| = |K| and that the R-edges inside
     S form a Hamiltonian graph. *)
  let marked =
    List.filter_map
      (fun (f : Cdb.fact) ->
        if Array.length f.Cdb.args = 2 && f.Cdb.args.(1) = "1" then
          Some f.Cdb.args.(0)
        else None)
      (Cdb.facts_of db "T")
  in
  let k = List.length (Cdb.facts_of db "K") in
  List.length marked = k
  &&
  let index = List.mapi (fun i v -> (v, i)) marked in
  let edges =
    List.filter_map
      (fun (f : Cdb.fact) ->
        match
          ( List.assoc_opt f.Cdb.args.(0) index,
            List.assoc_opt f.Cdb.args.(1) index )
        with
        | Some i, Some j when i <> j -> Some (i, j)
        | _ -> None)
      (Cdb.facts_of db "R")
  in
  Hamiltonicity.is_hamiltonian (Graph.make (List.length marked) edges)

let ham_subgraphs_via_val g k =
  let db = encode g k in
  let count = ref Nat.zero in
  Idb.iter_valuations db (fun v ->
      if query_holds (Idb.apply db v) then count := Nat.succ !count);
  !count
