(** Proposition 3.5: counting avoiding assignments of a bipartite graph
    reduces to [#Val_Cd(R(x) ∧ S(x))] on Codd tables.

    Every node [t] becomes a null whose (non-uniform) domain is the set of
    its incident edge identifiers; left nodes populate [R], right nodes
    populate [S].  A valuation is exactly an assignment, and it satisfies
    [R(x) ∧ S(x)] precisely when two adjacent nodes picked the same edge —
    i.e. when the assignment is {e not} avoiding. *)

open Incdb_bignum
open Incdb_graph
open Incdb_incomplete

(** The encoding Codd table; edge [i] of [Bipartite.edges b] is the
    constant ["e<i>"].
    @raise Invalid_argument if some node of [b] is isolated (an isolated
    node has no assignment at all, matching the convention that its
    [#Avoidance] is zero). *)
val encode : Bipartite.t -> Idb.t

val query : Incdb_cq.Cq.t

(** [avoidance_via_val ?oracle b] recovers the number of avoiding
    assignments of [b] as [total - #Val_Cd(R(x) ∧ S(x))]. *)
val avoidance_via_val : ?oracle:(Idb.t -> Nat.t) -> Bipartite.t -> Nat.t
