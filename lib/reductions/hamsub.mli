(** Theorem 6.4: [#Val^u(q)] is SpanP-complete for a Boolean query [q]
    with NP model checking, by a parsimonious reduction from
    [#HamSubgraphs].

    The query of the proof is an ∃SO sentence ("the set marked by
    [T(·,1)] has the same size as [K] and induces a Hamiltonian
    subgraph"); here it is implemented as a semantic checker over
    completions, and the valuation count is taken over the Codd table
    [{R edges, T(u,⊥u), K(1..k)}] with uniform domain [{0,1}]. *)

open Incdb_bignum
open Incdb_graph
open Incdb_incomplete
open Incdb_relational

(** The encoding database for graph [g] and size [k]. *)
val encode : Graph.t -> int -> Idb.t

(** The ∃SO query as a semantic test on complete databases. *)
val query_holds : Cdb.t -> bool

(** [ham_subgraphs_via_val g k] counts the valuations of the encoding
    whose completion satisfies the query; equals
    [#HamSubgraphs(g, k)]. *)
val ham_subgraphs_via_val : Graph.t -> int -> Nat.t
