(** Proposition 4.5(b): [#Comp^u_Cd] over a single binary relation is
    #P-hard, by a parsimonious reduction from counting induced
    pseudoforests of a bipartite graph ([#PF], itself #P-hard on bipartite
    graphs by Proposition B.5).

    The uniform Codd table contains all "complementary" pairs (the
    non-edges, in both orientations, over [U ∪ V]), one fact [R(u, ⊥u)]
    per left node and [R(⊥v, v)] per right node, and an [R(f,f)] anchor;
    a candidate completion corresponds to an edge subset, and it is
    reachable exactly when the subset induces a pseudoforest (via the
    outdegree-1 orientation characterization, Lemma B.4). *)

open Incdb_bignum
open Incdb_graph
open Incdb_incomplete

(** The Codd table.  Left node [i] is the constant ["u<i>"], right node
    [j] is ["w<j>"], the anchor constant is ["f"]; the uniform domain is
    all node constants. *)
val encode : Bipartite.t -> Idb.t

(** [pseudoforests_via_comp ?oracle b] recovers [#PF] of the bipartite
    graph as the number of completions of the encoding. *)
val pseudoforests_via_comp : ?oracle:(Idb.t -> Nat.t) -> Bipartite.t -> Nat.t
