open Incdb_bignum
open Incdb_graph
open Incdb_cq
open Incdb_incomplete

let query = Cq.q_rx_sx

let edge_const i = Printf.sprintf "e%d" i

let encode b =
  (* Identify each bipartite edge with its index. *)
  let edges = Array.of_list (Bipartite.edges b) in
  let incident_left i =
    Array.to_list edges
    |> List.mapi (fun e (u, _) -> (e, u))
    |> List.filter_map (fun (e, u) -> if u = i then Some (edge_const e) else None)
  in
  let incident_right j =
    Array.to_list edges
    |> List.mapi (fun e (_, v) -> (e, v))
    |> List.filter_map (fun (e, v) -> if v = j then Some (edge_const e) else None)
  in
  let left_null i = Printf.sprintf "u%d" i in
  let right_null j = Printf.sprintf "w%d" j in
  let doms = ref [] in
  let facts = ref [] in
  for i = 0 to Bipartite.left_count b - 1 do
    let dom = incident_left i in
    if dom = [] then
      invalid_arg "Avoidance_red.encode: isolated left node";
    doms := (left_null i, dom) :: !doms;
    facts := Idb.fact "R" [ Term.null (left_null i) ] :: !facts
  done;
  for j = 0 to Bipartite.right_count b - 1 do
    let dom = incident_right j in
    if dom = [] then
      invalid_arg "Avoidance_red.encode: isolated right node";
    doms := (right_null j, dom) :: !doms;
    facts := Idb.fact "S" [ Term.null (right_null j) ] :: !facts
  done;
  Idb.make (List.rev !facts) (Idb.Nonuniform !doms)

let default_oracle db =
  Incdb_incomplete.Brute.count_valuations (Query.Bcq query) db

let avoidance_via_val ?(oracle = default_oracle) b =
  let db = encode b in
  Nat.sub (Idb.total_valuations db) (oracle db)
