open Incdb_bignum
open Incdb_graph
open Incdb_cq
open Incdb_incomplete

let query = Cq.q_rxx

let node_null u = Printf.sprintf "v%d" u

let encode ?(k = 3) g =
  let dom = List.init k (fun i -> string_of_int (i + 1)) in
  let edge_facts (u, v) =
    [
      Idb.fact "R" [ Term.null (node_null u); Term.null (node_null v) ];
      Idb.fact "R" [ Term.null (node_null v); Term.null (node_null u) ];
    ]
  in
  Idb.make (List.concat_map edge_facts (Graph.edges g)) (Idb.Uniform dom)

let default_oracle db =
  Incdb_incomplete.Brute.count_valuations (Query.Bcq query) db

let colorings_via_val ?(k = 3) ?(oracle = default_oracle) g =
  if Graph.edge_count g = 0 then
    (* No edges: every assignment is proper. *)
    Combinat.power k (Graph.node_count g)
  else begin
    let db = encode ~k g in
    let satisfying = oracle db in
    (* Isolated nodes carry no null; each contributes a free factor k. *)
    let isolated =
      List.length
        (List.filter (fun u -> Graph.degree g u = 0)
           (List.init (Graph.node_count g) Fun.id))
    in
    Nat.mul
      (Nat.sub (Idb.total_valuations db) satisfying)
      (Combinat.power k isolated)
  end
