open Incdb_graph
open Incdb_incomplete

let left_const i = Printf.sprintf "u%d" i
let right_const j = Printf.sprintf "w%d" j
let anchor = "f"

let encode b =
  let lefts = List.init (Bipartite.left_count b) left_const in
  let rights = List.init (Bipartite.right_count b) right_const in
  let all_nodes = lefts @ rights in
  let is_edge t t' =
    (* Only the left-to-right orientation represents an edge. *)
    List.exists
      (fun (i, j) -> t = left_const i && t' = right_const j)
      (Bipartite.edges b)
  in
  let complementary =
    List.concat_map
      (fun t ->
        List.filter_map
          (fun t' ->
            if is_edge t t' then None
            else Some (Idb.fact "R" [ Term.const t; Term.const t' ]))
          all_nodes)
      all_nodes
  in
  let left_facts =
    List.init (Bipartite.left_count b) (fun i ->
        Idb.fact "R" [ Term.const (left_const i); Term.null (Printf.sprintf "lu%d" i) ])
  in
  let right_facts =
    List.init (Bipartite.right_count b) (fun j ->
        Idb.fact "R" [ Term.null (Printf.sprintf "rw%d" j); Term.const (right_const j) ])
  in
  let anchor_fact = Idb.fact "R" [ Term.const anchor; Term.const anchor ] in
  Idb.make
    (complementary @ left_facts @ right_facts @ [ anchor_fact ])
    (Idb.Uniform all_nodes)

let default_oracle db = Incdb_incomplete.Brute.count_all_completions db

let pseudoforests_via_comp ?(oracle = default_oracle) b = oracle (encode b)
