open Incdb_bignum

type literal = { var : int; positive : bool }
type t = { nvars : int; clauses : (literal * literal * literal) list }

let lit ?(positive = true) var = { var; positive }

let make ~nvars clauses =
  List.iter
    (fun (a, b, c) ->
      List.iter
        (fun l ->
          if l.var < 0 || l.var >= nvars then
            invalid_arg "Cnf.make: variable out of range")
        [ a; b; c ])
    clauses;
  { nvars; clauses }

let eval_literal assignment l = if l.positive then assignment.(l.var) else not assignment.(l.var)

let eval f assignment =
  List.for_all
    (fun (a, b, c) ->
      eval_literal assignment a || eval_literal assignment b
      || eval_literal assignment c)
    f.clauses

let for_all_assignments n f =
  let a = Array.make n false in
  let rec go i = if i = n then f a else (a.(i) <- false; go (i + 1); a.(i) <- true; go (i + 1)) in
  go 0

let count_sat f =
  let count = ref Nat.zero in
  for_all_assignments f.nvars (fun a -> if eval f a then count := Nat.succ !count);
  !count

let count_k3sat f k =
  if k < 0 || k > f.nvars then invalid_arg "Cnf.count_k3sat: bad k";
  (* Enumerate prefixes; for each, search for a satisfying extension. *)
  let count = ref Nat.zero in
  let a = Array.make f.nvars false in
  let rec extend i =
    if i = f.nvars then eval f a
    else begin
      a.(i) <- false;
      if extend (i + 1) then true
      else begin
        a.(i) <- true;
        extend (i + 1)
      end
    end
  in
  let rec prefix i =
    if i = k then begin
      if extend k then count := Nat.succ !count
    end else begin
      a.(i) <- false;
      prefix (i + 1);
      a.(i) <- true;
      prefix (i + 1)
    end
  in
  prefix 0;
  !count

let random ~seed ~nvars ~nclauses =
  if nvars < 3 then invalid_arg "Cnf.random: need at least 3 variables";
  let st = Random.State.make [| seed |] in
  let clause _ =
    let v1 = Random.State.int st nvars in
    let rec distinct exclude =
      let v = Random.State.int st nvars in
      if List.mem v exclude then distinct exclude else v
    in
    let v2 = distinct [ v1 ] in
    let v3 = distinct [ v1; v2 ] in
    let l v = { var = v; positive = Random.State.bool st } in
    (l v1, l v2, l v3)
  in
  { nvars; clauses = List.init nclauses clause }

let to_string f =
  let lit_str l = (if l.positive then "" else "~") ^ "x" ^ string_of_int l.var in
  String.concat " & "
    (List.map
       (fun (a, b, c) ->
         Printf.sprintf "(%s | %s | %s)" (lit_str a) (lit_str b) (lit_str c))
       f.clauses)
