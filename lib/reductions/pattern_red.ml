open Incdb_cq
open Incdb_incomplete

(* All tuples over positions, where each position is either fixed to a
   term or free over the constant list [a]. *)
let fill_tuples fixed_or_free a =
  let rec go = function
    | [] -> [ [] ]
    | `Fixed t :: rest ->
      List.map (fun tl -> t :: tl) (go rest)
    | `Free :: rest ->
      let tails = go rest in
      List.concat_map (fun c -> List.map (fun tl -> Term.const c :: tl) tails) a
  in
  go fixed_or_free

let transform ~pattern ~target db' =
  let prels = Cq.relations pattern in
  List.iter
    (fun (f : Idb.fact) ->
      if not (List.mem f.Idb.rel prels) then
        invalid_arg "Pattern_red.transform: input database not over sig(q')")
    (Idb.facts db');
  match Pattern.find_embedding pattern target with
  | None -> invalid_arg "Pattern_red.transform: not a pattern"
  | Some { Pattern.atom_images } ->
    let pattern_atoms = Array.of_list pattern in
    let target_atoms = Array.of_list target in
    (* Active domain: table constants plus every domain value. *)
    let a =
      let dom_consts =
        match Idb.domain_spec db' with
        | Idb.Uniform dom -> dom
        | Idb.Nonuniform assoc -> List.concat_map snd assoc
      in
      List.sort_uniq String.compare (Idb.table_constants db' @ dom_consts)
    in
    (* atom_images.(i) = (target index, posmap) for pattern atom i. *)
    let image_of_target = Hashtbl.create 8 in
    List.iteri
      (fun p (t, posmap) -> Hashtbl.replace image_of_target t (p, posmap))
      atom_images;
    let facts =
      List.concat
        (List.init (Array.length target_atoms) (fun t ->
             let tatom = target_atoms.(t) in
             let arity = Array.length tatom.Cq.vars in
             match Hashtbl.find_opt image_of_target t with
             | Some (p, posmap) ->
               let source_rel = pattern_atoms.(p).Cq.rel in
               List.concat_map
                 (fun (f' : Idb.fact) ->
                   let spec =
                     List.init arity (fun j ->
                         match posmap.(j) with
                         | Some pp -> `Fixed f'.Idb.args.(pp)
                         | None -> `Free)
                   in
                   List.map
                     (fun args -> Idb.fact tatom.Cq.rel args)
                     (fill_tuples spec a))
                 (Idb.facts_of db' source_rel)
             | None ->
               (* Deleted atom: every possible fact over A. *)
               List.map
                 (fun args -> Idb.fact tatom.Cq.rel args)
                 (fill_tuples (List.init arity (fun _ -> `Free)) a)))
    in
    Idb.make facts (Idb.domain_spec db')
