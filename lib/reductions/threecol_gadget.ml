open Incdb_bignum
open Incdb_graph
open Incdb_incomplete

let node_null u = Printf.sprintf "x%d" u

let encode g =
  let encoding_facts =
    List.concat_map
      (fun (u, v) ->
        [
          Idb.fact "R" [ Term.null (node_null u); Term.null (node_null v) ];
          Idb.fact "R" [ Term.null (node_null v); Term.null (node_null u) ];
        ])
      (Graph.edges g)
  in
  let triangle_facts =
    List.map
      (fun (a, b) -> Idb.fact "R" [ Term.const a; Term.const b ])
      [ ("1", "2"); ("2", "1"); ("2", "3"); ("3", "2"); ("1", "3"); ("3", "1") ]
  in
  let auxiliary_facts =
    List.concat_map
      (fun i ->
        let p = Printf.sprintf "aux%d" i and p' = Printf.sprintf "aux%d'" i in
        [
          Idb.fact "R" [ Term.null p; Term.null p' ];
          Idb.fact "R" [ Term.null p'; Term.null p ];
        ])
      [ 1; 2; 3 ]
  in
  let anchor = Idb.fact "R" [ Term.const "c"; Term.const "c" ] in
  Idb.make
    (encoding_facts @ triangle_facts @ auxiliary_facts @ [ anchor ])
    (Idb.Uniform [ "1"; "2"; "3" ])

let default_oracle db = Incdb_incomplete.Brute.count_all_completions db

let completion_count ?(oracle = default_oracle) g = oracle (encode g)

let decide_3colorable ~count = count >= 7.5

let is_3colorable_via_comp ?oracle g =
  decide_3colorable ~count:(Nat.to_float (completion_count ?oracle g))
