(** Proposition 5.6: no FPRAS for [#Comp^u(R(x,x))] or [#Comp^u(R(x,y))]
    unless NP = RP.

    The gadget maps a graph [G] to a uniform database over one binary
    relation and the fixed domain [{1,2,3}] whose completion count is
    exactly [8] if [G] is 3-colorable and [7] otherwise; any [1/16]-good
    approximation therefore decides 3-colorability with the paper's
    [>= 7.5] threshold. *)

open Incdb_bignum
open Incdb_graph
open Incdb_incomplete

(** The gadget database: edge-encoding facts, the triangle facts, three
    pairs of auxiliary nulls, and the fresh [R(c,c)] anchor. *)
val encode : Graph.t -> Idb.t

(** [completion_count ?oracle g] is the gadget's number of completions —
    [8] iff [g] is 3-colorable, else [7]. *)
val completion_count : ?oracle:(Idb.t -> Nat.t) -> Graph.t -> Nat.t

(** [decide_3colorable ~count g] applies the paper's decision rule to an
    (exact or approximate) completion count: colorable iff
    [count >= 7.5]. *)
val decide_3colorable : count:float -> bool

(** [is_3colorable_via_comp ?oracle g] runs the full pipeline. *)
val is_3colorable_via_comp : ?oracle:(Idb.t -> Nat.t) -> Graph.t -> bool
