open Incdb_bignum
open Incdb_graph
open Incdb_cq
open Incdb_incomplete

type t = {
  pattern : Cq.t;
  source : string;
  encode : Graph.t -> Idb.t;
  recover : Graph.t -> Nat.t -> Nat.t;
  direct : Graph.t -> Nat.t;
}

let isolated_count g =
  List.length
    (List.filter (fun u -> Graph.degree g u = 0)
       (List.init (Graph.node_count g) Fun.id))

(* The transform preserves the null set and domains, so the total number
   of valuations of the lifted instance equals the source instance's. *)
let total db = Idb.total_valuations db

let for_val q =
  if Pattern.has_rxx q then
    Some
      {
        pattern = Cq.q_rxx;
        source = "#3COL";
        encode =
          (fun g ->
            Pattern_red.transform ~pattern:Cq.q_rxx ~target:q
              (Coloring_red.encode g));
        recover =
          (fun g count ->
            let g_enc =
              Pattern_red.transform ~pattern:Cq.q_rxx ~target:q
                (Coloring_red.encode g)
            in
            Nat.mul
              (Nat.sub (total g_enc) count)
              (Combinat.power 3 (isolated_count g)));
        direct = (fun g -> Colorings.count_colorings g 3);
      }
  else if Pattern.has_rx_sxy_ty q then
    Some
      {
        pattern = Cq.q_rx_sxy_ty;
        source = "#IS";
        encode =
          (fun g ->
            Pattern_red.transform ~pattern:Cq.q_rx_sxy_ty ~target:q
              (Indep_val.encode_rst g));
        recover =
          (fun g count ->
            let g_enc =
              Pattern_red.transform ~pattern:Cq.q_rx_sxy_ty ~target:q
                (Indep_val.encode_rst g)
            in
            Nat.mul
              (Nat.sub (total g_enc) count)
              (Combinat.pow2 (isolated_count g)));
        direct = Independent.count_independent_sets;
      }
  else if Pattern.has_rxy_sxy q then
    Some
      {
        pattern = Cq.q_rxy_sxy;
        source = "#IS";
        encode =
          (fun g ->
            Pattern_red.transform ~pattern:Cq.q_rxy_sxy ~target:q
              (Indep_val.encode_rs g));
        recover =
          (fun g count ->
            let g_enc =
              Pattern_red.transform ~pattern:Cq.q_rxy_sxy ~target:q
                (Indep_val.encode_rs g)
            in
            Nat.mul
              (Nat.sub (total g_enc) count)
              (Combinat.pow2 (isolated_count g)));
        direct = Independent.count_independent_sets;
      }
  else None

let for_comp q =
  {
    pattern = Cq.q_rx;
    source = "#VC";
    encode =
      (fun g ->
        Pattern_red.transform ~pattern:Cq.q_rx ~target:q (Vc_comp.encode g));
    recover = (fun _ count -> count);
    direct = Independent.count_vertex_covers;
  }

module Trace = Incdb_obs.Trace
module Metrics = Incdb_obs.Metrics

let certificates_checked = Metrics.counter "reductions.certificates_checked"

(* Parsimony check, with each leg of the identity in its own span: the
   encoding D_G, the counting-oracle call on the lifted instance, the
   arithmetic recovery, and the direct combinatorial count it must
   equal. *)
let check cert ~count g =
  Trace.with_span "reductions.check" (fun () ->
      Metrics.incr certificates_checked;
      let db = Trace.with_span "reductions.encode" (fun () -> cert.encode g) in
      let oracle =
        Trace.with_span "reductions.oracle_count" (fun () -> count db)
      in
      let recovered =
        Trace.with_span "reductions.recover" (fun () -> cert.recover g oracle)
      in
      let direct =
        Trace.with_span "reductions.direct_count" (fun () -> cert.direct g)
      in
      (recovered, direct))
