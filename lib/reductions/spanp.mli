(** Theorem 6.3: [#Comp^u(¬q)] is SpanP-complete for a fixed sjfBCQ [q],
    by a parsimonious reduction from [#k3SAT].

    The schema has a binary relation [S] and eight ternary relations
    [C_abc]; each [C_abc] starts with the seven ground tuples that agree
    with [(a,b,c)] in some coordinate, each clause contributes one
    null-tuple, and [S] anchors the first [k] variables so that distinct
    prefixes give distinct completions.  A completion fails
    [q = S(x0,y0) ∧ ⋀ C_abc(x,y,z)] exactly when the underlying
    assignment satisfies the formula, so the completions of [¬q] count
    the [#k3SAT] prefixes. *)

open Incdb_bignum
open Incdb_incomplete

(** The fixed sjfBCQ [q] of Equation (8). *)
val query : Incdb_cq.Cq.t

(** [encode f k] is the uniform database over [{0,1}] built from the 3-CNF
    [f] and prefix length [k].
    @raise Invalid_argument unless [1 <= k <= nvars]. *)
val encode : Cnf.t -> int -> Idb.t

(** [k3sat_via_comp ?oracle f k] recovers [#k3SAT(f,k)] as the number of
    completions of the encoding that falsify [q]. *)
val k3sat_via_comp : ?oracle:(Idb.t -> Nat.t) -> Cnf.t -> int -> Nat.t
