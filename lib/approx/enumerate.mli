(** Output-sensitive enumeration and uniform sampling of satisfying
    valuations — the constructive content of Proposition 5.2's SpanL
    membership and of the counting/uniform-generation connection the
    paper's FPRAS rests on (Arenas, Croquevielle, Jayaram, Riveros 2019).

    The satisfying valuations are the union of the Karp–Luby events; the
    enumerator outputs, for each event in order, exactly the extensions
    whose {e canonical} (first covering) event it is — so each satisfying
    valuation appears exactly once, without ever materializing the
    valuation space, mirroring the proof's "write values in order of first
    appearance, deduplicate by the guessed sub-database" machine.  Total
    work is bounded by (number of events) x (size of the union), i.e. it
    is output-sensitive rather than proportional to the full product of
    domains. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

(** [satisfying q db] lazily enumerates the satisfying valuations, each
    exactly once.
    @raise Invalid_argument (when forced) on a non-monotone query. *)
val satisfying : Query.t -> Idb.t -> Idb.valuation Seq.t

(** [count_by_enumeration ?cap q db] counts by draining the enumerator;
    stops (returning [None]) after [cap] outputs — unlike brute force its
    cost scales with the number of {e satisfying} valuations, not with the
    whole valuation space. *)
val count_by_enumeration : ?cap:int -> Query.t -> Idb.t -> Nat.t option

(** [sample_uniform ~seed ?max_tries q db] draws a satisfying valuation
    {e uniformly at random} by Karp–Luby rejection (draw an event with
    probability proportional to its size, extend uniformly, accept iff the
    event is canonical — every satisfying valuation is accepted with
    probability exactly [1/Σ|events|]).  [None] when the query is
    unsatisfiable or every try was rejected (expected tries are bounded by
    the number of events). *)
val sample_uniform :
  seed:int -> ?max_tries:int -> Query.t -> Idb.t -> Idb.valuation option
