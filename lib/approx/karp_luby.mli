(** A Karp–Luby union-of-events FPRAS for [#Val(q)] when [q] is a BCQ or a
    union of BCQs (Corollary 5.3).

    The satisfying valuations are exactly the union, over all {e match
    candidates}, of the valuations extending the candidate's induced
    partial valuation.  A match candidate picks one table fact per atom of
    a disjunct and a consistent homomorphism from the disjunct's variables
    into constants; this is the constructive core of Proposition 5.2's
    bounded-minimal-models argument (a minimal model of a BCQ has at most
    [|q|] facts).  The number of candidates is polynomial for a fixed
    query, each event's cardinality is a product of domain sizes, uniform
    sampling within an event is trivial, and membership is a prefix check:
    exactly the ingredients of the Karp–Luby coverage estimator. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

(** One event of the union: the valuations extending [partial]. *)
type event = { partial : (string * string) list; size : Nat.t }

(** [events q db] enumerates the (deduplicated) events; their union is the
    set of satisfying valuations.
    @raise Invalid_argument on a non-monotone query. *)
val events : Query.t -> Idb.t -> event list

(** [encode_fixes evs db] encodes each event as a slot-sorted
    [(slot, value)] array — {!Incdb_cq.Lineage}'s slot-assignment clause
    form — where slots index [Idb.nulls db] and values index the slot's
    domain array.  A valuation satisfies the query iff its slot encoding
    extends some clause, which is what both the compiled sampler and the
    [Val_kernel] variable-elimination counter consume. *)
val encode_fixes : event array -> Idb.t -> (int * int) array array

(** {2 Compiled events}

    The sampler's inner loop compiled to machine ints: nulls become
    slots, domain values become indices into the slot's (duplicate-free)
    domain array, and each event becomes a slot-sorted [(slot, value)]
    array — {!Incdb_cq.Lineage}'s slot-assignment clause form.  Sampling
    and the canonical first-cover check then run on int arrays instead of
    re-matching string association lists per valuation.  The RNG is
    consumed exactly as the uncompiled sampler did, so estimates are
    bit-identical for any seed. *)

type compiled

(** [compile q db] builds and encodes the events once.
    @raise Invalid_argument on a non-monotone query. *)
val compile : Query.t -> Idb.t -> compiled

(** Number of events ([0] means the query is unsatisfiable: no sampling). *)
val compiled_size : compiled -> int

(** Sum of event cardinalities (the estimator's scaling weight). *)
val compiled_total_weight : compiled -> float

(** The underlying events, in canonical order (do not mutate). *)
val compiled_events : compiled -> event array

(** [sample_hit c st] draws one weighted event, extends its partial
    valuation uniformly at random, and reports whether the drawn event is
    the canonical (first) cover of the sampled valuation.  Thread-safe
    across domains: [c] is read-only, scratch is per-call. *)
val sample_hit : compiled -> Random.State.t -> bool

(** [estimate ~seed ~samples q db] runs the coverage estimator and returns
    the estimated [#Val(q)(db)].  The standard analysis gives relative
    error [epsilon] with confidence [3/4] once
    [samples >= 4 * (number of events) / epsilon^2]. *)
val estimate : seed:int -> samples:int -> Query.t -> Idb.t -> float

(** [wilson_half_width ~samples rate] is the half-width of a 95% Wilson
    score interval around the Bernoulli point estimate [rate], relative
    to [rate] itself: [rate ± half-width] covers the Wilson interval.
    Unlike the normal-approximation standard error, it stays strictly
    positive at [rate ∈ {0, 1}], where an all-hits (or no-hits) sample
    run still carries genuine uncertainty. *)
val wilson_half_width : samples:int -> float -> float

(** [estimate_with_ci ~seed ~samples q db] additionally returns a 95%
    confidence half-width for the estimate: the coverage indicator is a
    Bernoulli variable scaled by the total event weight, and the
    half-width is the scaled {!wilson_half_width} — positive for every
    finite sample count, including degenerate all-hit/no-hit runs. *)
val estimate_with_ci :
  seed:int -> samples:int -> Query.t -> Idb.t -> float * float

(** The FPRAS budget [4 * events / epsilon^2] exceeds [max_int]: raised
    by {!samples_for} instead of silently truncating the float to a
    meaningless (possibly negative) sample count. *)
exception Sample_budget_overflow of { epsilon : float; events : int }

(** [samples_for ~epsilon ~events] is the sample count prescribed by the
    FPRAS analysis (with the 3/4 success probability of the Section 5
    definition).
    @raise Invalid_argument on [epsilon <= 0] or negative [events].
    @raise Sample_budget_overflow when the budget exceeds [max_int]. *)
val samples_for : epsilon:float -> events:int -> int

(** [exact_via_events q db] computes [#Val] exactly by inclusion–exclusion
    over the events — exponential in the number of events, used in tests
    and benchmarks as an independent oracle for the event construction
    (the dispatcher's exact path for unions now runs through the
    [Val_kernel] variable-elimination counter instead).

    With [memo] (the default), subset terms are shared: subset validity
    is one [land] against precomputed pairwise-conflict masks
    ({!Incdb_cq.Lineage.conflict_masks} — an invalid subset invalidates
    all its supersets), the fixed-null set of a subset is the [lor] of
    its events' fixed-slot masks, and term sizes are cached keyed on that
    mask, with [karp_luby.iex_cache_hits]/[..._misses] counters recording
    the sharing.  Tables with more nulls than fit one mask word use
    {!Incdb_bignum.Bitset.Wide} fixed-null masks with the same sharing
    classes; the [iex.mask_repr] gauge records the words per mask (1 on
    the single-word path), so the representation choice is observable.
    [~memo:false] recomputes every subset from scratch; all paths return
    identical counts. *)
val exact_via_events : ?memo:bool -> Query.t -> Idb.t -> Nat.t
