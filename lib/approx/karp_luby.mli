(** A Karp–Luby union-of-events FPRAS for [#Val(q)] when [q] is a BCQ or a
    union of BCQs (Corollary 5.3).

    The satisfying valuations are exactly the union, over all {e match
    candidates}, of the valuations extending the candidate's induced
    partial valuation.  A match candidate picks one table fact per atom of
    a disjunct and a consistent homomorphism from the disjunct's variables
    into constants; this is the constructive core of Proposition 5.2's
    bounded-minimal-models argument (a minimal model of a BCQ has at most
    [|q|] facts).  The number of candidates is polynomial for a fixed
    query, each event's cardinality is a product of domain sizes, uniform
    sampling within an event is trivial, and membership is a prefix check:
    exactly the ingredients of the Karp–Luby coverage estimator. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

(** One event of the union: the valuations extending [partial]. *)
type event = { partial : (string * string) list; size : Nat.t }

(** [events q db] enumerates the (deduplicated) events; their union is the
    set of satisfying valuations.
    @raise Invalid_argument on a non-monotone query. *)
val events : Query.t -> Idb.t -> event list

(** [estimate ~seed ~samples q db] runs the coverage estimator and returns
    the estimated [#Val(q)(db)].  The standard analysis gives relative
    error [epsilon] with confidence [3/4] once
    [samples >= 4 * (number of events) / epsilon^2]. *)
val estimate : seed:int -> samples:int -> Query.t -> Idb.t -> float

(** [estimate_with_ci ~seed ~samples q db] additionally returns a
    normal-approximation 95% confidence half-width for the estimate
    (the coverage indicator is a Bernoulli variable scaled by the total
    event weight, so its standard error is directly available). *)
val estimate_with_ci :
  seed:int -> samples:int -> Query.t -> Idb.t -> float * float

(** [samples_for ~epsilon ~events] is the sample count prescribed by the
    FPRAS analysis (with the 3/4 success probability of the Section 5
    definition). *)
val samples_for : epsilon:float -> events:int -> int

(** [exact_via_events q db] computes [#Val] exactly by inclusion–exclusion
    over the events — exponential in the number of events, used in tests
    to validate the event construction on small instances, and as the
    [Event_inclusion_exclusion] engine of [Count_val.count_query].

    With [memo] (the default), subset terms are shared: each subset's
    merged partial valuation extends the subset's without its lowest
    event (so conflicts prune whole supersets), and term sizes are cached
    keyed on the fixed-null name set, with
    [karp_luby.iex_cache_hits]/[..._misses] counters recording the
    sharing.  [~memo:false] recomputes every subset from scratch; both
    paths return identical counts. *)
val exact_via_events : ?memo:bool -> Query.t -> Idb.t -> Nat.t
