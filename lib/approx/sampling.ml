open Incdb_incomplete

let random_valuation st db =
  List.map
    (fun n ->
      let dom = Array.of_list (Idb.domain_of db n) in
      (n, dom.(Random.State.int st (Array.length dom))))
    (Idb.nulls db)

let random_extension st db partial =
  List.map
    (fun n ->
      match List.assoc_opt n partial with
      | Some v -> (n, v)
      | None ->
        let dom = Array.of_list (Idb.domain_of db n) in
        (n, dom.(Random.State.int st (Array.length dom))))
    (Idb.nulls db)

let weighted_index st weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. || Array.length weights = 0 then
    invalid_arg "Sampling.weighted_index: empty or zero weights";
  let x = Random.State.float st total in
  let n = Array.length weights in
  let rec go i acc =
    if i = n - 1 then i
    else begin
      let acc = acc +. weights.(i) in
      if x < acc then i else go (i + 1) acc
    end
  in
  go 0 0.
