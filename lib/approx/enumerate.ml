open Incdb_bignum
open Incdb_incomplete

(* Lazily enumerate the valuations extending [partial], as full
   assignments over all the nulls of [db] (in [Idb.nulls] order). *)
let extensions db partial : Idb.valuation Seq.t =
  let slots =
    List.map
      (fun n ->
        match List.assoc_opt n partial with
        | Some c -> (n, [ c ])
        | None -> (n, Idb.domain_of db n))
      (Idb.nulls db)
  in
  let rec build = function
    | [] -> Seq.return []
    | (n, values) :: rest ->
      let tails = build rest in
      Seq.concat_map
        (fun c -> Seq.map (fun tl -> (n, c) :: tl) tails)
        (List.to_seq values)
  in
  build slots

let covered_by partial v =
  List.for_all (fun (n, c) -> List.assoc_opt n v = Some c) partial

let satisfying q db : Idb.valuation Seq.t =
 fun () ->
  let events = Array.of_list (Karp_luby.events q db) in
  let per_event i =
    Seq.filter
      (fun v ->
        (* Output only when event i is the canonical cover. *)
        let rec first j =
          if covered_by events.(j).Karp_luby.partial v then j else first (j + 1)
        in
        first 0 = i)
      (extensions db events.(i).Karp_luby.partial)
  in
  Seq.concat_map per_event (Seq.init (Array.length events) Fun.id) ()

let count_by_enumeration ?(cap = 10_000_000) q db =
  let count = ref 0 in
  let exception Capped in
  match
    Seq.iter
      (fun _ ->
        incr count;
        if !count > cap then raise Capped)
      (satisfying q db)
  with
  | () -> Some (Nat.of_int !count)
  | exception Capped -> None

let sample_uniform ~seed ?max_tries q db =
  let events = Array.of_list (Karp_luby.events q db) in
  if Array.length events = 0 then None
  else begin
    let max_tries =
      Option.value ~default:(20 * Array.length events) max_tries
    in
    let weights =
      Array.map (fun e -> Nat.to_float e.Karp_luby.size) events
    in
    let st = Random.State.make [| seed |] in
    let rec attempt tries =
      if tries = 0 then None
      else begin
        let i = Sampling.weighted_index st weights in
        let v = Sampling.random_extension st db events.(i).Karp_luby.partial in
        let rec first j =
          if covered_by events.(j).Karp_luby.partial v then j else first (j + 1)
        in
        if first 0 = i then Some v else attempt (tries - 1)
      end
    in
    attempt max_tries
  end
