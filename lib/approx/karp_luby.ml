open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

type event = { partial : (string * string) list; size : Nat.t }

module Sset = Set.Make (String)

(* Candidate constants for a term under a homomorphism target. *)
let term_candidates db = function
  | Term.Const c -> [ c ]
  | Term.Null n -> Idb.domain_of db n

(* Match candidates of one BCQ disjunct: for every choice of one fact per
   atom and every consistent homomorphism, the induced partial valuation
   of the nulls involved. *)
let cq_events ?(neqs = []) cq db =
  let atoms = Array.of_list cq in
  let m = Array.length atoms in
  let facts_per_atom =
    Array.map
      (fun (a : Cq.atom) ->
        List.filter
          (fun (f : Idb.fact) -> Array.length f.Idb.args = Array.length a.Cq.vars)
          (Idb.facts_of db a.Cq.rel))
      atoms
  in
  let results = ref [] in
  (* Choose facts for atoms one by one, narrowing per-variable candidate
     sets; then assign variables and induce the partial valuation. *)
  let rec choose_facts i chosen =
    if i = m then assign_vars (List.rev chosen)
    else
      List.iter (fun f -> choose_facts (i + 1) (f :: chosen)) facts_per_atom.(i)
  and assign_vars chosen =
    (* Collect (variable, term) constraints across all atoms. *)
    let constraints = ref [] in
    List.iteri
      (fun i (f : Idb.fact) ->
        Array.iteri
          (fun j v -> constraints := (v, f.Idb.args.(j)) :: !constraints)
          atoms.(i).Cq.vars)
      chosen;
    let vars =
      List.sort_uniq String.compare (List.map fst !constraints)
    in
    let candidates_of v =
      List.filter_map (fun (v', t) -> if v = v' then Some t else None) !constraints
      |> List.map (fun t -> Sset.of_list (term_candidates db t))
      |> function
      | [] -> Sset.empty
      | s :: rest -> List.fold_left Sset.inter s rest
    in
    (* Enumerate h variable by variable, building the induced partial
       valuation and checking null consistency; [hvals] records h itself so
       that inequality atoms can be checked at the leaves. *)
    let rec go vars hvals sigma =
      match vars with
      | [] ->
        let neq_ok =
          List.for_all
            (fun (x, y) -> List.assoc_opt x hvals <> List.assoc_opt y hvals)
            neqs
        in
        if neq_ok then results := List.sort Stdlib.compare sigma :: !results
      | v :: rest ->
        let terms_of_v =
          List.filter_map (fun (v', t) -> if v = v' then Some t else None)
            !constraints
        in
        Sset.iter
          (fun c ->
            (* Extend sigma with null := c for every null position of v. *)
            let rec extend sigma = function
              | [] -> Some sigma
              | Term.Const c' :: rest ->
                if c' = c then extend sigma rest else None
              | Term.Null n :: rest ->
                (match List.assoc_opt n sigma with
                | Some c' -> if c' = c then extend sigma rest else None
                | None -> extend ((n, c) :: sigma) rest)
            in
            match extend sigma terms_of_v with
            | Some sigma' -> go rest ((v, c) :: hvals) sigma'
            | None -> ())
          (candidates_of v)
    in
    go vars [] []
  in
  if Array.exists (fun fs -> fs = []) facts_per_atom then []
  else begin
    choose_facts 0 [];
    !results
  end

let event_size db partial =
  let fixed = List.map fst partial in
  Nat.product
    (List.filter_map
       (fun n ->
         if List.mem n fixed then None
         else Some (Nat.of_int (List.length (Idb.domain_of db n))))
       (Idb.nulls db))

module Trace = Incdb_obs.Trace
module Metrics = Incdb_obs.Metrics
module Obs_events = Incdb_obs.Events
module Log = Incdb_obs.Log

let events_built = Metrics.counter "karp_luby.events_built"
let samples_drawn = Metrics.counter "karp_luby.samples_drawn"
let coverage_hits = Metrics.counter "karp_luby.coverage_hits"
let estimate_latency = Metrics.histogram "karp_luby.estimate_ns"
let iex_cache_hits = Metrics.counter "karp_luby.iex_cache_hits"
let iex_cache_misses = Metrics.counter "karp_luby.iex_cache_misses"

(* Words per fixed-null mask in the memoized inclusion–exclusion: 1 when
   the nulls fit one machine word, more on the wide-bitset path — the
   representation choice is observable instead of silent. *)
let iex_mask_repr = Metrics.gauge "iex.mask_repr"
let running_estimate = Metrics.gauge "karp_luby.running_estimate"

let events q db =
  Trace.with_span "karp_luby.build_events" (fun () ->
      let collect = function
        | Query.Bcq cq -> cq_events cq db
        | Query.Union cqs -> List.concat_map (fun cq -> cq_events cq db) cqs
        | Query.Bcq_neq (cq, neqs) -> cq_events ~neqs cq db
        | Query.Not _ | Query.Semantic _ ->
          invalid_arg "Karp_luby.events: only monotone (unions of) BCQs"
      in
      let sigmas = List.sort_uniq Stdlib.compare (collect q) in
      Metrics.incr events_built ~by:(List.length sigmas);
      List.map (fun partial -> { partial; size = event_size db partial }) sigmas)

(* ------------------------------------------------------------------ *)
(* Compiled events: the sampler's inner loop on ints                   *)
(* ------------------------------------------------------------------ *)

(* Nulls become slots (indices into [Idb.nulls] order), values become
   indices into the slot's domain array (domains are duplicate-free, so
   the encoding is bijective), and an event becomes a slot-sorted
   [(slot, value)] array — the {!Lineage} slot-assignment clause form.
   The per-sample first-cover scan then compares machine ints on arrays
   instead of walking string association lists. *)
type compiled = {
  cevents : event array;
  cweights : float array;
  ctotal : float;
  cdomains : string array array; (* per slot, in [Idb.nulls] order *)
  cfixes : (int * int) array array; (* per event: sorted (slot, value) *)
}

(* Per-event encodings over the nulls of [db]. *)
let encode_fixes evs db =
  let nulls = Array.of_list (Idb.nulls db) in
  let slot_of = Hashtbl.create 16 in
  Array.iteri (fun j n -> Hashtbl.replace slot_of n j) nulls;
  let index_of =
    Array.map
      (fun n ->
        let h = Hashtbl.create 8 in
        List.iteri (fun k c -> Hashtbl.replace h c k) (Idb.domain_of db n);
        h)
      nulls
  in
  Array.map
    (fun e ->
      List.map
        (fun (n, c) ->
          let s = Hashtbl.find slot_of n in
          (s, Hashtbl.find index_of.(s) c))
        e.partial
      |> List.sort Stdlib.compare |> Array.of_list)
    evs

let compile q db =
  let cevents = Array.of_list (events q db) in
  let cdomains =
    Array.of_list
      (List.map (fun n -> Array.of_list (Idb.domain_of db n)) (Idb.nulls db))
  in
  let cfixes = encode_fixes cevents db in
  let cweights = Array.map (fun e -> Nat.to_float e.size) cevents in
  let ctotal = Array.fold_left ( +. ) 0. cweights in
  { cevents; cweights; ctotal; cdomains; cfixes }

let compiled_size c = Array.length c.cevents
let compiled_total_weight c = c.ctotal
let compiled_events c = c.cevents

(* One estimator step.  The RNG is consumed exactly as the uncompiled
   loop did — [Sampling.weighted_index] on the same weight array, then one
   [Random.State.int] per free null in [Idb.nulls] order — so estimates
   are bit-identical to the pre-compilation sampler for any seed. *)
let sample_hit c st =
  let i = Sampling.weighted_index st c.cweights in
  let n = Array.length c.cdomains in
  let vals = Array.make n (-1) in
  Array.iter (fun (s, v) -> vals.(s) <- v) c.cfixes.(i);
  for j = 0 to n - 1 do
    if Array.unsafe_get vals j < 0 then
      vals.(j) <- Random.State.int st (Array.length c.cdomains.(j))
  done;
  let covers f = Array.for_all (fun (s, v) -> Array.unsafe_get vals s = v) f in
  let rec first j = if covers c.cfixes.(j) then j else first (j + 1) in
  first 0 = i

let run_estimator ~seed ~samples q db =
  if samples <= 0 then invalid_arg "Karp_luby.estimate: need positive samples";
  let c = compile q db in
  if compiled_size c = 0 then None
  else begin
    let total_weight = c.ctotal in
    let st = Random.State.make [| seed |] in
    let hits = ref 0 in
    (* Snapshot the running estimate ~16 times over the run so a trace
       shows how (badly) the estimator is converging. *)
    let snap_every = max 1 (samples / 16) in
    Trace.with_span "karp_luby.sample" (fun () ->
        for s = 1 to samples do
          Metrics.incr samples_drawn;
          if sample_hit c st then begin
            Metrics.incr coverage_hits;
            incr hits
          end;
          if s mod snap_every = 0 then begin
            Metrics.set running_estimate
              (total_weight *. float_of_int !hits /. float_of_int s);
            (* One timeline event per batch of [snap_every] samples, so
               a trace shows the estimator's cadence and convergence
               without an event per draw. *)
            Obs_events.instant "karp_luby.sample_batch"
              ~args:
                [
                  ("samples", Obs_events.Int s);
                  ("hits", Obs_events.Int !hits);
                ]
          end
        done);
    let rate = float_of_int !hits /. float_of_int samples in
    Log.debugf "karp_luby: %d events, %d/%d canonical hits, estimate %.6g"
      (compiled_size c) !hits samples (total_weight *. rate);
    Some (total_weight, rate)
  end

let estimate ~seed ~samples q db =
  if samples <= 0 then invalid_arg "Karp_luby.estimate: need positive samples";
  Metrics.time estimate_latency (fun () ->
      Trace.with_span "karp_luby.estimate" (fun () ->
          match run_estimator ~seed ~samples q db with
          | None -> 0.
          | Some (total_weight, rate) -> total_weight *. rate))

(* 95% Wilson score half-width for a Bernoulli rate estimated from
   [samples] draws.  The naive normal-approximation standard error
   [sqrt (p (1-p) / n)] collapses to a zero-width interval at p ∈ {0, 1}
   — exactly where a coverage estimator most needs honest uncertainty
   (every sample hit, or none did).  The Wilson interval keeps width
   ~ z²/(n + z²) at the endpoints, so the half-width is strictly
   positive for any finite sample count.  Returned relative to the point
   estimate [rate]: [rate ± half-width] covers the Wilson interval. *)
let wilson_half_width ~samples rate =
  let z = 1.96 in
  let n = float_of_int samples in
  let z2 = z *. z in
  let denom = n +. z2 in
  let center = ((rate *. n) +. (z2 /. 2.)) /. denom in
  let spread =
    z *. sqrt ((rate *. (1. -. rate) *. n) +. (z2 /. 4.)) /. denom
  in
  let lo = Float.max 0. (center -. spread) in
  let hi = Float.min 1. (center +. spread) in
  Float.max (rate -. lo) (hi -. rate)

let estimate_with_ci ~seed ~samples q db =
  if samples <= 0 then invalid_arg "Karp_luby.estimate: need positive samples";
  Trace.with_span "karp_luby.estimate" (fun () ->
      match run_estimator ~seed ~samples q db with
      | None -> (0., 0.)
      | Some (total_weight, rate) ->
        (total_weight *. rate, total_weight *. wilson_half_width ~samples rate))

exception Sample_budget_overflow of { epsilon : float; events : int }

let () =
  Printexc.register_printer (function
    | Sample_budget_overflow { epsilon; events } ->
      Some
        (Printf.sprintf
           "Karp_luby.Sample_budget_overflow: 4 * %d / %g^2 samples do not \
            fit a machine int"
           events epsilon)
    | _ -> None)

let samples_for ~epsilon ~events =
  if epsilon <= 0. then invalid_arg "Karp_luby.samples_for: epsilon <= 0";
  if events < 0 then invalid_arg "Karp_luby.samples_for: negative events";
  let budget = ceil (4. *. float_of_int events /. (epsilon *. epsilon)) in
  (* [float_of_int max_int] rounds up to 2^62, one past max_int, and
     [int_of_float] is unspecified from there on — a tiny epsilon must
     fail loudly, not wrap into a garbage (even negative) budget. *)
  if not (Float.is_finite budget) || budget >= float_of_int max_int then
    raise (Sample_budget_overflow { epsilon; events });
  int_of_float budget

(* Extend [sigma] with one event's bindings, or [None] on conflict. *)
let rec add_partial sigma = function
  | [] -> Some sigma
  | (n, c) :: rest -> (
    match List.assoc_opt n sigma with
    | Some c' -> if c = c' then add_partial sigma rest else None
    | None -> add_partial ((n, c) :: sigma) rest)

let popcount mask =
  let rec pop m acc = if m = 0 then acc else pop (m land (m - 1)) (acc + 1) in
  pop mask 0

let signed_term acc mask size =
  Zint.add acc (if popcount mask land 1 = 1 then size else Zint.neg size)

(* The straightforward 2^m loop: every subset's merged valuation is
   rebuilt from scratch.  Kept as the reference the memoized path is
   tested against. *)
let exact_unmemoized evs m db =
  let acc = ref Zint.zero in
  for mask = 1 to (1 lsl m) - 1 do
    (* Merge the partial valuations of the chosen events. *)
    let rec merge i sigma =
      if i = m then Some sigma
      else if mask land (1 lsl i) = 0 then merge (i + 1) sigma
      else
        match add_partial sigma evs.(i).partial with
        | Some sigma' -> merge (i + 1) sigma'
        | None -> None
    in
    match merge 0 [] with
    | None -> ()
    | Some sigma ->
      acc := signed_term !acc mask (Zint.of_nat (event_size db sigma))
  done;
  Zint.to_nat !acc

(* Memoized inclusion-exclusion (the Lemma A.13 style term cache the
   ROADMAP asks for), through the {!Lineage} slot-assignment clauses.
   Two layers of sharing across the 2^m subsets: pairwise conflict masks
   make subset validity one [land] per mask (a set of events is jointly
   mergeable iff pairwise conflict-free, and a conflict in a subset kills
   all its supersets), and — since an event term's size depends only on
   WHICH nulls the subset fixes, not on their values — term sizes are
   cached keyed on the subset's fixed-null mask (the [lor] of its events'
   fixed masks).  Subsets that fix the same nulls (ubiquitous when events
   range over the same tuples with different witness values) share one
   size computation; the hit/miss counters make the sharing
   observable. *)
let exact_memoized_masked evs m db =
  let fixes = encode_fixes evs db in
  let fixed = Lineage.fixed_masks fixes in
  let conflicts = Lineage.conflict_masks fixes in
  let dom_sizes =
    Array.of_list
      (List.map
         (fun n -> Nat.of_int (List.length (Idb.domain_of db n)))
         (Idb.nulls db))
  in
  let nn = Array.length dom_sizes in
  let size_of_fixed : (int, Zint.t) Hashtbl.t = Hashtbl.create 64 in
  let size fixedmask =
    match Hashtbl.find_opt size_of_fixed fixedmask with
    | Some z ->
      Metrics.incr iex_cache_hits;
      z
    | None ->
      Metrics.incr iex_cache_misses;
      let rec free j acc =
        if j = nn then acc
        else
          free (j + 1)
            (if fixedmask land (1 lsl j) <> 0 then acc
             else Nat.mul acc dom_sizes.(j))
      in
      let z = Zint.of_nat (free 0 Nat.one) in
      Hashtbl.replace size_of_fixed fixedmask z;
      z
  in
  let nmasks = 1 lsl m in
  let valid = Array.make nmasks true in
  let fixedmask = Array.make nmasks 0 in
  let acc = ref Zint.zero in
  for mask = 1 to nmasks - 1 do
    let low =
      (* index of the lowest set bit *)
      let rec go i = if mask land (1 lsl i) <> 0 then i else go (i + 1) in
      go 0
    in
    let rest = mask land (mask - 1) in
    let ok = valid.(rest) && conflicts.(low) land rest = 0 in
    valid.(mask) <- ok;
    if ok then begin
      fixedmask.(mask) <- fixedmask.(rest) lor fixed.(low);
      acc := signed_term !acc mask (size fixedmask.(mask))
    end
  done;
  Zint.to_nat !acc

(* The same recurrence past one word of nulls: fixed-null sets become
   {!Bitset.Wide} masks (the conflict masks stay single-word — they are
   over the <= 20 events, not the nulls) and the term-size cache is
   keyed on the wide mask, whose structural hash/equality give exactly
   the int path's sharing classes.  Replaces the pre-wide sorted-name-
   list fallback, which rebuilt and re-sorted a name list per subset. *)
let exact_memoized_wide evs m db =
  let module W = Bitset.Wide in
  let fixes = encode_fixes evs db in
  let nulls = Idb.nulls db in
  let nn = List.length nulls in
  let fixed = Lineage.Wide.fixed_masks ~width:nn fixes in
  let conflicts = Lineage.conflict_masks fixes in
  let dom_sizes =
    Array.of_list
      (List.map (fun n -> Nat.of_int (List.length (Idb.domain_of db n))) nulls)
  in
  let size_of_fixed : (W.t, Zint.t) Hashtbl.t = Hashtbl.create 64 in
  let size fixedmask =
    match Hashtbl.find_opt size_of_fixed fixedmask with
    | Some z ->
      Metrics.incr iex_cache_hits;
      z
    | None ->
      Metrics.incr iex_cache_misses;
      let free = ref Nat.one in
      for j = 0 to nn - 1 do
        if not (W.test fixedmask j) then free := Nat.mul !free dom_sizes.(j)
      done;
      let z = Zint.of_nat !free in
      Hashtbl.replace size_of_fixed fixedmask z;
      z
  in
  let nmasks = 1 lsl m in
  let valid = Array.make nmasks true in
  let fixedmask = Array.make nmasks (W.zero ~width:nn) in
  let acc = ref Zint.zero in
  for mask = 1 to nmasks - 1 do
    let low =
      (* index of the lowest set bit *)
      let rec go i = if mask land (1 lsl i) <> 0 then i else go (i + 1) in
      go 0
    in
    let rest = mask land (mask - 1) in
    let ok = valid.(rest) && conflicts.(low) land rest = 0 in
    valid.(mask) <- ok;
    if ok then begin
      fixedmask.(mask) <- W.union fixedmask.(rest) fixed.(low);
      acc := signed_term !acc mask (size fixedmask.(mask))
    end
  done;
  Zint.to_nat !acc

let exact_via_events ?(memo = true) q db =
  let evs = Array.of_list (events q db) in
  let m = Array.length evs in
  if m > 20 then
    invalid_arg "Karp_luby.exact_via_events: too many events for inclusion-exclusion";
  if not memo then exact_unmemoized evs m db
  else begin
    let nn = List.length (Idb.nulls db) in
    let wide = nn > Lineage.max_universe in
    Metrics.set iex_mask_repr
      (float_of_int (if wide then Bitset.words_for nn else 1));
    if wide then exact_memoized_wide evs m db
    else exact_memoized_masked evs m db
  end
