(** Randomized sampling of valuations, shared by the estimators. *)

open Incdb_incomplete

(** [random_valuation st db] draws each null's value independently and
    uniformly from its domain — the uniform distribution over the
    valuations of [db]. *)
val random_valuation : Random.State.t -> Idb.t -> Idb.valuation

(** [random_extension st db partial] extends the partial valuation
    [partial] by drawing the remaining nulls uniformly — the uniform
    distribution over the valuations extending [partial]. *)
val random_extension :
  Random.State.t -> Idb.t -> (string * string) list -> Idb.valuation

(** [weighted_index st weights] draws an index with probability
    proportional to [weights.(i)] (converted to floats; weights may exceed
    float range only collectively, in which case precision degrades
    gracefully).
    @raise Invalid_argument on an empty or all-zero weight vector. *)
val weighted_index : Random.State.t -> float array -> int
