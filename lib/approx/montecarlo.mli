(** Naive Monte-Carlo estimation of [#Val(q)]: sample valuations uniformly
    and scale the hit rate by the total number of valuations.

    This has {e additive} guarantees with respect to the total count, not
    the relative FPRAS guarantee — it degrades when satisfying valuations
    are rare.  It is included as the baseline the Karp–Luby estimator is
    compared against in the Section 5 benchmarks. *)

open Incdb_cq
open Incdb_incomplete

(** [estimate ~seed ~samples q db] returns the estimated number of
    satisfying valuations (as a float; exact totals are bignums, but an
    estimate is approximate by nature). *)
val estimate : seed:int -> samples:int -> Query.t -> Idb.t -> float

(** The hit rate itself, i.e. the estimated [mu_k] of Libkin's relative
    frequency (Section 7). *)
val hit_rate : seed:int -> samples:int -> Query.t -> Idb.t -> float
