open Incdb_bignum
open Incdb_cq
open Incdb_incomplete

let hit_rate ~seed ~samples q db =
  if samples <= 0 then invalid_arg "Montecarlo: need a positive sample count";
  let st = Random.State.make [| seed |] in
  let hits = ref 0 in
  for _ = 1 to samples do
    let v = Sampling.random_valuation st db in
    if Query.eval q (Idb.apply db v) then incr hits
  done;
  float_of_int !hits /. float_of_int samples

let estimate ~seed ~samples q db =
  hit_rate ~seed ~samples q db *. Nat.to_float (Idb.total_valuations db)
