(** Complete relational databases under set semantics (Section 2).

    A database is a finite set of facts [R(a1, ..., ak)] whose arguments
    are constants.  Set semantics matters: applying a valuation to a naïve
    table can collapse distinct facts into one, which is the entire reason
    [#Val(q)] and [#Comp(q)] differ. *)

(** A single fact; [args] are constants. *)
type fact = { rel : string; args : string array }

val fact : string -> string list -> fact
val pp_fact : Format.formatter -> fact -> unit
val compare_fact : fact -> fact -> int

(** A database: a set of facts. *)
type t

val empty : t
val of_list : fact list -> t
val to_list : t -> fact list
val add : fact -> t -> t
val mem : fact -> t -> bool
val cardinal : t -> int
val union : t -> t -> t
val subset : t -> t -> bool

(** Relation names present in the database. *)
val relations : t -> string list

(** Facts over one relation. *)
val facts_of : t -> string -> fact list

(** All constants appearing in the database (the active domain). *)
val constants : t -> string list

(** Total order on databases, compatible with set equality; used to count
    distinct completions. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
