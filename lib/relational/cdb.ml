type fact = { rel : string; args : string array }

let fact rel args = { rel; args = Array.of_list args }

let compare_fact (a : fact) (b : fact) =
  match String.compare a.rel b.rel with
  | 0 -> Stdlib.compare a.args b.args
  | c -> c

let pp_fact fmt f =
  Format.fprintf fmt "%s(%s)" f.rel (String.concat "," (Array.to_list f.args))

module Fact_set = Set.Make (struct
  type t = fact

  let compare = compare_fact
end)

type t = Fact_set.t

let empty = Fact_set.empty
let of_list facts = Fact_set.of_list facts
let to_list db = Fact_set.elements db
let add f db = Fact_set.add f db
let mem f db = Fact_set.mem f db
let cardinal = Fact_set.cardinal
let union = Fact_set.union
let subset = Fact_set.subset

let relations db =
  Fact_set.fold
    (fun f acc -> if List.mem f.rel acc then acc else f.rel :: acc)
    db []
  |> List.sort String.compare

let facts_of db rel = List.filter (fun f -> f.rel = rel) (to_list db)

let constants db =
  let module S = Set.Make (String) in
  Fact_set.fold
    (fun f acc -> Array.fold_left (fun acc a -> S.add a acc) acc f.args)
    db S.empty
  |> S.elements

let compare = Fact_set.compare
let equal = Fact_set.equal

let pp fmt db =
  Format.fprintf fmt "{";
  List.iteri
    (fun i f ->
      if i > 0 then Format.fprintf fmt ", ";
      pp_fact fmt f)
    (to_list db);
  Format.fprintf fmt "}"
