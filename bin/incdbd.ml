(* incdbd: the persistent counting service.

     incdbd --socket /tmp/incdbd.sock
     incdbd --stdio < requests.ndjson

   One JSON request per line in, one JSON response per line out; the
   request vocabulary is the idbcount flag set in object form (see
   Incdb_serve.Protocol).  Compiled lineage, kernel subproblem caches,
   transform memos and classification verdicts stay warm across
   requests, so a repeated question is answered from memory — and
   always bit-identically to a one-shot idbcount run. *)

open Cmdliner
open Incdb_serve

let socket_term =
  let doc =
    "Serve a Unix-domain socket at $(docv) (newline-delimited JSON, one \
     concurrent connection per client thread).  Keep the path short: the \
     kernel caps sun_path at about 100 bytes."
  in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let stdio_term =
  let doc =
    "Serve exactly one conversation on stdin/stdout instead of a socket \
     (for pipelines and tests)."
  in
  Arg.(value & flag & info [ "stdio" ] ~doc)

let val_cache_entries_term =
  let doc =
    "Capacity of the shared #Val subproblem cache kept warm across \
     requests."
  in
  Arg.(value
      & opt int Incdb_core.Val_kernel.default_cache_entries
      & info [ "val-cache-entries" ] ~docv:"N" ~doc)

let result_cap_term =
  let doc =
    "Capacity of the result cache (finished payloads replayed for \
     repeated requests); 0 disables it."
  in
  Arg.(value
      & opt int State.default_result_cap
      & info [ "result-cache" ] ~docv:"N" ~doc)

let classify_cache_term =
  let doc = "Capacity of the classification verdict cache; 0 disables it." in
  Arg.(value
      & opt int Incdb_core.Classify.default_cache_capacity
      & info [ "classify-cache" ] ~docv:"N" ~doc)

let verbose_term =
  let doc = "Enable debug logging to stderr." in
  Arg.(value & flag & info [ "verbose" ] ~doc)

let run socket stdio val_cache_entries result_cap classify_cache verbose =
  if verbose then Incdb_obs.Log.set_level (Some Incdb_obs.Log.Debug);
  (* The metrics op serves live counters, so collection is always on. *)
  Incdb_obs.Runtime.set_enabled true;
  Incdb_core.Classify.set_cache_capacity classify_cache;
  let state = State.create ~result_cap ~val_cache_entries () in
  let opts = Server.make_opts ~state () in
  match (socket, stdio) with
  | None, true -> Ok (Server.run_stdio opts)
  | Some path, false -> Ok (Server.run_socket opts ~socket_path:path)
  | None, false | Some _, true ->
    Error "incdbd: give exactly one of --socket PATH or --stdio"

let main socket stdio val_cache_entries result_cap classify_cache verbose =
  match run socket stdio val_cache_entries result_cap classify_cache verbose with
  | Ok () -> 0
  | Error msg ->
    prerr_endline msg;
    124
  | exception Invalid_argument msg ->
    prerr_endline ("incdbd: " ^ msg);
    124
  | exception Unix.Unix_error (e, fn, arg) ->
    Printf.eprintf "incdbd: %s(%s): %s\n" fn arg (Unix.error_message e);
    124

let () =
  let doc = "Persistent counting service over incomplete databases" in
  let info = Cmd.info "incdbd" ~version:"1.0" ~doc in
  let term =
    Cmdliner.Term.(
      const main $ socket_term $ stdio_term $ val_cache_entries_term
      $ result_cap_term $ classify_cache_term $ verbose_term)
  in
  exit (Cmd.eval' (Cmd.v info term))
