(* Differential fuzzer: hammer the tractable counting algorithms, the
   dispatchers, the estimators' event constructions and the classifier
   against brute force on randomly generated queries and databases, with
   a fixed seed for reproducibility.

     dune exec bin/fuzz.exe -- [--trace] [--metrics-out FILE] \
                               [--trace-out FILE] [--val-max-cells N] \
                               [--comp-elim auto|off|force] \
                               [--comp-width-bound W] [rounds] [seed]

   Exits non-zero on the first discrepancy, printing a replayable
   counterexample.  The obs flags mirror idbcount's; they are flushed
   through [at_exit] so a failing round (which exits mid-flight) still
   leaves a timeline of the run that produced the counterexample. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_core

let consts = [| "a"; "b"; "c"; "d"; "e" |]

let random_query st =
  let natoms = 1 + Random.State.int st 3 in
  let vars = [| "x"; "y"; "z"; "w" |] in
  Cq.make
    (List.init natoms (fun i ->
         let arity = 1 + Random.State.int st 3 in
         Cq.atom
           (Printf.sprintf "Q%d" i)
           (List.init arity (fun _ ->
                vars.(Random.State.int st (Array.length vars))))))

let random_db st q =
  let fresh = ref 0 in
  let pool = [| "p0"; "p1"; "p2" |] in
  let codd = Random.State.bool st in
  let uniform = Random.State.bool st in
  let cell () =
    if Random.State.int st 10 < 4 then
      Term.const consts.(Random.State.int st (Array.length consts))
    else if codd then begin
      incr fresh;
      Term.null (Printf.sprintf "n%d" !fresh)
    end
    else Term.null pool.(Random.State.int st (Array.length pool))
  in
  let facts =
    List.concat_map
      (fun (a : Cq.atom) ->
        List.init 2 (fun _ ->
            Idb.fact a.Cq.rel
              (List.init (Array.length a.Cq.vars) (fun _ -> cell ()))))
      q
  in
  let null_names =
    List.sort_uniq String.compare
      (List.concat_map
         (fun (f : Idb.fact) ->
           Array.to_list f.Idb.args
           |> List.filter_map (function
                | Term.Null n -> Some n
                | Term.Const _ -> None))
         facts)
  in
  let subset () =
    let chosen =
      Array.to_list consts |> List.filter (fun _ -> Random.State.bool st)
    in
    match chosen with
    | [] -> [ consts.(Random.State.int st (Array.length consts)) ]
    | l -> l
  in
  let spec =
    if uniform then Idb.Uniform (subset ())
    else Idb.Nonuniform (List.map (fun n -> (n, subset ())) null_names)
  in
  Idb.make facts spec

let manageable db =
  match Nat.to_int_opt (Idb.total_valuations db) with
  | Some t -> t <= 50_000
  | None -> false

let check_round ~val_max_cells ~comp_elim ~comp_width_bound st round =
  let q = random_query st in
  let db = random_db st q in
  if manageable db then begin
    let fail what expected got =
      Printf.printf "FAILURE in round %d (%s)\n" round what;
      Printf.printf "query: %s\n" (Cq.to_string q);
      Printf.printf "database:\n%s\n" (Idb_parser.to_string db);
      Printf.printf "expected %s, got %s\n" expected got;
      exit 1
    in
    let brute_val = Brute.count_valuations (Query.Bcq q) db in
    let brute_comp = Brute.count_completions (Query.Bcq q) db in
    (* 1. dispatchers *)
    let _, v = Count_val.count ~val_max_cells q db in
    if not (Nat.equal v brute_val) then
      fail "#Val dispatcher" (Nat.to_string brute_val) (Nat.to_string v);
    let _, c = Count_comp.count ~comp_elim ~comp_width_bound q db in
    if not (Nat.equal c brute_comp) then
      fail "#Comp dispatcher" (Nat.to_string brute_comp) (Nat.to_string c);
    (* 1b. the elimination kernel, forced, against the dispatcher's own
       answer: a disagreement between the DP sweep and the enumerator /
       brute force is a first-class failure, not a fallback.  A typed
       [Infeasible] refusal is legitimate (the instance may genuinely
       exceed a kernel limit) — but only under the default policy; with
       --comp-elim force the count above already went through the
       kernel, so this cross-check is free. *)
    (match
       Count_comp.count ~comp_elim:Comp_kernel.Force ~comp_width_bound q db
     with
    | _, ce ->
      if not (Nat.equal ce brute_comp) then
        fail "comp elimination vs enumerator" (Nat.to_string brute_comp)
          (Nat.to_string ce)
    | exception Comp_kernel.Infeasible _ -> ());
    (* 2. Karp-Luby event inclusion-exclusion *)
    let events = Incdb_approx.Karp_luby.events (Query.Bcq q) db in
    if List.length events <= 16 then begin
      let via_events = Incdb_approx.Karp_luby.exact_via_events (Query.Bcq q) db in
      if not (Nat.equal via_events brute_val) then
        fail "event inclusion-exclusion" (Nat.to_string brute_val)
          (Nat.to_string via_events)
    end;
    (* 3. enumeration *)
    let enum_count =
      List.length (List.of_seq (Incdb_approx.Enumerate.satisfying (Query.Bcq q) db))
    in
    if not (Nat.equal (Nat.of_int enum_count) brute_val) then
      fail "enumerator" (Nat.to_string brute_val) (string_of_int enum_count);
    (* 4. certainty shortcuts *)
    let possible = Certainty.possible (Query.Bcq q) db in
    if possible <> (Nat.compare brute_val Nat.zero > 0) then
      fail "possibility shortcut"
        (string_of_bool (Nat.compare brute_val Nat.zero > 0))
        (string_of_bool possible);
    (* 4b. general query dispatcher on a union with the same atoms *)
    let union = Query.Union [ q ] in
    let _, vu = Count_val.count_query ~val_max_cells union db in
    if not (Nat.equal vu brute_val) then
      fail "count_query (union)" (Nat.to_string brute_val) (Nat.to_string vu);
    (* 4c. bag semantics bounds *)
    let bag = Brute.count_all_completions_bag db in
    let set = Brute.count_all_completions db in
    if
      Nat.compare set bag > 0
      || Nat.compare bag (Idb.total_valuations db) > 0
    then
      fail "bag-semantics bounds"
        (Printf.sprintf "%s <= %s <= %s" (Nat.to_string set) (Nat.to_string bag)
           (Nat.to_string (Idb.total_valuations db)))
        "violated";
    (* 5. bounds *)
    let b = Comp_bounds.bounds ~seed:round ~samples:100 q db in
    if
      Nat.compare b.Comp_bounds.lower brute_comp > 0
      || Nat.compare brute_comp b.Comp_bounds.upper > 0
    then
      fail "comp bounds"
        (Nat.to_string brute_comp)
        (Printf.sprintf "[%s, %s]"
           (Nat.to_string b.Comp_bounds.lower)
           (Nat.to_string b.Comp_bounds.upper));
    true
  end
  else false

(* Obs flags first, then the positional [rounds] [seed].  Exports hang
   off [at_exit], not a [Fun.protect]: the [fail] path and the usage
   errors both leave through [exit], which runs at_exit handlers but
   would skip a protect finalizer higher up the stack. *)
let parse_args () =
  let usage () =
    prerr_endline
      "usage: fuzz [--trace] [--metrics-out FILE] [--trace-out FILE] \
       [--val-max-cells N] [--comp-elim auto|off|force] \
       [--comp-width-bound W] [rounds] [seed]";
    exit 2
  in
  let trace = ref false in
  let metrics_out = ref None in
  let trace_out = ref None in
  let val_max_cells = ref Val_kernel.default_max_cells in
  let comp_elim = ref Comp_kernel.Auto in
  let comp_width_bound = ref Comp_kernel.default_width_bound in
  let positional = ref [] in
  let rec go = function
    | [] -> ()
    | "--trace" :: rest ->
      trace := true;
      go rest
    | "--metrics-out" :: path :: rest ->
      metrics_out := Some path;
      go rest
    | "--trace-out" :: path :: rest ->
      trace_out := Some path;
      go rest
    | "--val-max-cells" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n ->
        val_max_cells := n;
        go rest
      | None -> usage ())
    | "--comp-elim" :: policy :: rest -> (
      match policy with
      | "auto" ->
        comp_elim := Comp_kernel.Auto;
        go rest
      | "off" ->
        comp_elim := Comp_kernel.Off;
        go rest
      | "force" ->
        comp_elim := Comp_kernel.Force;
        go rest
      | _ -> usage ())
    | "--comp-width-bound" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n ->
        comp_width_bound := n;
        go rest
      | None -> usage ())
    | arg :: rest when String.length arg > 0 && arg.[0] <> '-' -> (
      match int_of_string_opt arg with
      | Some n ->
        positional := n :: !positional;
        go rest
      | None -> usage ())
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  let rounds, seed =
    match List.rev !positional with
    | [] -> (300, 20260704)
    | [ rounds ] -> (rounds, 20260704)
    | [ rounds; seed ] -> (rounds, seed)
    | _ -> usage ()
  in
  if !trace || !metrics_out <> None || !trace_out <> None then
    Incdb_obs.Runtime.set_enabled true;
  if !trace then at_exit (fun () -> Incdb_obs.Export.pp_summary stderr);
  (match !metrics_out with
  | None -> ()
  | Some path ->
    at_exit (fun () ->
        try Incdb_obs.Export.write_file path
        with Sys_error msg -> prerr_endline ("fuzz: cannot write metrics: " ^ msg)));
  (match !trace_out with
  | None -> ()
  | Some path ->
    at_exit (fun () ->
        try Incdb_obs.Chrome.write_file path
        with Sys_error msg -> prerr_endline ("fuzz: cannot write trace: " ^ msg)));
  (rounds, seed, !val_max_cells, !comp_elim, !comp_width_bound)

let () =
  let rounds, seed, val_max_cells, comp_elim, comp_width_bound =
    parse_args ()
  in
  let st = Random.State.make [| seed |] in
  let executed = ref 0 in
  let limited = ref 0 in
  for round = 1 to rounds do
    (* The engines' typed resource-limit errors are legitimate refusals,
       not discrepancies: a random instance may blow any of the
       enumeration caps, and under --comp-elim force the elimination
       kernel's typed [Infeasible] is the same kind of refusal.  Skip
       the round — the generator must keep consuming the same random
       stream either way, and [check_round] draws its instance before
       any engine runs, so replayability holds. *)
    match check_round ~val_max_cells ~comp_elim ~comp_width_bound st round with
    | true -> incr executed
    | false -> ()
    | exception
        ( Idb.Too_many_valuations _ | Comp_candidates.Too_many_candidates _
        | Val_kernel.Too_many_events _ | Comp_kernel.Infeasible _ ) ->
      incr limited
  done;
  Printf.printf
    "fuzz: %d/%d rounds executed (%d skipped as too large, %d refused by an \
     engine limit), no discrepancies\n"
    !executed rounds
    (rounds - !executed - !limited)
    !limited
