(* idbcount: command-line front end for the incomplete-database counting
   library.

     idbcount classify  "R(x), S(x,y), T(y)"
     idbcount count     --db census.idb --query "R(x), S(x)" --problem val
     idbcount approx    --db big.idb --query "R(x,x)" --samples 50000
     idbcount enumerate --db example.idb --query "S(x,x)"
     idbcount table1    "R(x,x)" "R(x), S(x)" ...
*)

open Cmdliner
open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_core
module Count_bounds_alias = Comp_bounds

let query_conv =
  let parse s =
    match Cq.of_string s with
    | q -> Ok q
    | exception Invalid_argument msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Cq.pp)

let db_arg =
  let doc = "Incomplete database file (see Idb_parser for the format)." in
  Arg.(required & opt (some file) None & info [ "db" ] ~docv:"FILE" ~doc)

let load_db path =
  Incdb_obs.Trace.with_span "idbcount.load_db" (fun () ->
      try Ok (Idb_parser.of_file path)
      with Invalid_argument msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* Observability flags, shared by every subcommand                     *)
(* ------------------------------------------------------------------ *)

type obs_opts = {
  trace : bool;
  verbose : bool;
  metrics_out : string option;
  trace_out : string option;
}

let obs_term =
  let trace =
    let doc =
      "Record per-phase spans and engine counters; print the span tree and \
       metric tables to stderr when the command finishes."
    in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let verbose =
    let doc =
      "Enable debug logging to stderr (equivalent to INCDB_LOG=debug)."
    in
    Arg.(value & flag & info [ "verbose" ] ~doc)
  in
  let metrics_out =
    let doc =
      "Write span and metric data as JSON (schema version 2) to $(docv) when \
       the command finishes.  Implies metric collection."
    in
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let trace_out =
    let doc =
      "Write the flight recorder's per-domain event timeline as Chrome \
       trace_event JSON to $(docv) when the command finishes (open it in \
       Perfetto or chrome://tracing).  Implies event collection."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  Cmdliner.Term.(
    const (fun trace verbose metrics_out trace_out ->
        { trace; verbose; metrics_out; trace_out })
    $ trace $ verbose $ metrics_out $ trace_out)

(* A fatal CLI error whose message is already on stderr.  The bodies
   under with_obs raise this instead of calling exit: Stdlib.exit does
   not unwind Fun.protect, so an exit inside the protected body would
   silently skip the export flush — a refused run with --metrics-out
   must still write its metrics file. *)
exception Cli_error

(* Enable collection before the body runs; flush the requested exports
   afterwards, also when the body raises or is refused.  Both exports
   are always attempted — a failed metrics write must not eat the trace
   write — and every failure is reported before the single exit. *)
let with_obs (o : obs_opts) f =
  if o.trace || o.metrics_out <> None || o.trace_out <> None then
    Incdb_obs.Runtime.set_enabled true;
  if o.verbose then Incdb_obs.Log.set_level (Some Incdb_obs.Log.Debug);
  let export_failed = ref false in
  let flush_exports () =
    if o.trace then Incdb_obs.Export.pp_summary stderr;
    let write what writer = function
      | None -> ()
      | Some path -> (
        try writer path
        with Sys_error msg ->
          prerr_endline ("idbcount: cannot write " ^ what ^ ": " ^ msg);
          export_failed := true)
    in
    write "metrics" Incdb_obs.Export.write_file o.metrics_out;
    write "trace" Incdb_obs.Chrome.write_file o.trace_out
  in
  (match Fun.protect f ~finally:flush_exports with
  | () -> ()
  | exception Cli_error -> exit 1);
  if !export_failed then exit 1

let query_opt =
  let doc = "Boolean conjunctive query, e.g. \"R(x), S(x,y)\"." in
  Arg.(required & opt (some query_conv) None & info [ "query"; "q" ] ~docv:"QUERY" ~doc)

(* ------------------------------------------------------------------ *)
(* Parallelism                                                         *)
(* ------------------------------------------------------------------ *)

let jobs_term =
  let doc =
    "Worker domains for the parallelizable engines (sharded brute force, \
     parallel Karp-Luby).  1 (the default) is the sequential path; 0 \
     auto-detects the machine's recommended domain count."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* A clean, actionable message for the one anticipated failure of the
   exhaustive engines, instead of an exception backtrace. *)
let too_many_msg what (total : Nat.t) limit =
  Printf.sprintf
    "error: %s needs exhaustive enumeration, but the instance has %s \
     valuations (limit %d).\n\
     Raise --brute-limit, or use `idbcount approx` / `idbcount bounds` for \
     an estimate."
    what (Nat.to_string total) limit

(* Every subcommand funnels its body through this handler, so the three
   typed resource-limit errors — and bad arguments — surface as one-line
   messages with a non-zero exit instead of a backtrace, whichever engine
   the query happens to route through. *)
let handle_limits ?(what = "this query/database pair") f =
  try f () with
  | Invalid_argument msg ->
    prerr_endline ("error: " ^ msg);
    raise Cli_error
  | Idb.Too_many_valuations { total; limit } ->
    prerr_endline (too_many_msg what total limit);
    raise Cli_error
  | Comp_candidates.Too_many_candidates { universe; limit } ->
    Printf.eprintf
      "error: the candidate universe has %d ground facts (limit %d).\n\
       Raise --max-candidates (with --comp-mask auto past 62 facts), or \
       use `idbcount bounds` for an estimate.\n"
      universe limit;
    raise Cli_error
  | Val_kernel.Too_many_events { events; limit } ->
    Printf.eprintf
      "error: the #Val kernel would compile %d Karp-Luby events (limit \
       %d).\n\
       Raise --val-max-events, or raise --brute-limit to let enumeration \
       run.\n"
      events limit;
    raise Cli_error
  | Comp_kernel.Infeasible reason ->
    Printf.eprintf
      "error: the #Comp elimination kernel declined the instance: %s.\n\
       Drop --comp-elim force to let the dispatcher fall back, or raise \
       the offending limit (--comp-width-bound, --max-candidates, \
       --brute-limit).\n"
      (Comp_kernel.infeasible_to_string reason);
    raise Cli_error
  | Lineage.Too_many_clauses { clauses; limit } ->
    Printf.eprintf
      "error: the compiled lineage has %d clauses, more than one conflict \
       mask word holds (limit %d).\n\
       Use `idbcount approx` (sampling does not build conflict masks) or \
       a smaller instance.\n"
      clauses limit;
    raise Cli_error

(* The #Val lineage-elimination kernel knobs, shared by count/approx. *)
let val_width_bound_term =
  let doc =
    "Induced-width bound of the #Val variable-elimination kernel: a \
     clause component whose elimination would exceed this width is split \
     by conditioning instead (0 forces pure conditioning)."
  in
  Arg.(value
      & opt int Val_kernel.default_width_bound
      & info [ "val-width-bound" ] ~docv:"W" ~doc)

let val_max_events_term =
  let doc =
    "Largest Karp-Luby event set the #Val kernel compiles; above it (or \
     with 0 on any satisfiable instance) the dispatcher falls back to \
     brute-force enumeration."
  in
  Arg.(value
      & opt int Val_kernel.default_max_events
      & info [ "val-max-events" ] ~docv:"N" ~doc)

let val_order_term =
  let doc =
    "Elimination-order heuristic of the #Val kernel: min-degree (the \
     default), or min-fill, which simulates both heuristics per clause \
     component and keeps whichever order induces the smaller width."
  in
  Arg.(value
      & opt
          (enum
             [
               ("min-degree", Val_kernel.Min_degree);
               ("min-fill", Val_kernel.Min_fill);
             ])
          Val_kernel.Min_degree
      & info [ "val-order" ] ~docv:"HEURISTIC" ~doc)

let val_cache_entries_term =
  let doc =
    "Size bound of the #Val kernel's cross-branch subproblem cache \
     (memoized component counts keyed on the canonicalized residual \
     lineage).  0 disables the cache; counts are identical either way."
  in
  Arg.(value
      & opt int Val_kernel.default_cache_entries
      & info [ "val-cache-entries" ] ~docv:"N" ~doc)

let val_max_cells_term =
  let doc =
    "Largest factor table (in cells) the #Val kernel keeps in memory; a \
     separator message beyond it spills to disk or forces conditioning, \
     per --val-spill.  Must be at least 1."
  in
  Arg.(value
      & opt int Val_kernel.default_max_cells
      & info [ "val-max-cells" ] ~docv:"CELLS" ~doc)

let val_spill_term =
  let doc =
    "Spill policy of the #Val kernel for factor tables over \
     --val-max-cells: auto (spill oversized separator messages to disk \
     within the spill budget), off (the pre-spill behavior: condition \
     instead), or force (spill every message — a testing mode).  Counts \
     are identical in all three modes."
  in
  Arg.(value
      & opt
          (enum
             [
               ("auto", Val_kernel.Auto);
               ("off", Val_kernel.Off);
               ("force", Val_kernel.Force);
             ])
          Val_kernel.Auto
      & info [ "val-spill" ] ~docv:"POLICY" ~doc)

let val_spill_dir_term =
  let doc =
    "Directory for the #Val kernel's spilled factor tables (default: the \
     system temp directory).  Temp files are always deleted before the \
     command exits."
  in
  Arg.(value
      & opt (some string) None
      & info [ "val-spill-dir" ] ~docv:"DIR" ~doc)

(* ------------------------------------------------------------------ *)
(* classify                                                            *)
(* ------------------------------------------------------------------ *)

let classify_cmd =
  let query =
    Arg.(required & pos 0 (some query_conv) None & info [] ~docv:"QUERY")
  in
  let run obs q =
    with_obs obs (fun () ->
        handle_limits @@ fun () ->
        Printf.printf "query: %s\n\n" (Cq.to_string q);
        (* Pad the continuation lines to the widest setting name so the
           exact/approx/class lines stay aligned whatever the labels are. *)
        let width =
          List.fold_left
            (fun w s -> max w (String.length (Setting.to_string s)))
            0 Setting.all
        in
        List.iter
          (fun s ->
            let label = Setting.to_string s in
            let padded =
              label ^ String.make (width - String.length label) ' '
            in
            let indent = String.make width ' ' in
            Printf.printf "%s exact: %s\n%s approx: %s\n%s class: %s\n\n"
              padded
              (Classify.verdict_to_string (Classify.exact s q))
              indent
              (Classify.approx_verdict_to_string (Classify.approximate s q))
              indent (Classify.membership s))
          Setting.all)
  in
  let doc = "Classify a query in all eight Table 1 settings." in
  Cmd.v (Cmd.info "classify" ~doc) Cmdliner.Term.(const run $ obs_term $ query)

(* ------------------------------------------------------------------ *)
(* count                                                               *)
(* ------------------------------------------------------------------ *)

let problem_conv =
  Arg.enum [ ("val", `Val); ("valuations", `Val); ("comp", `Comp); ("completions", `Comp) ]

let count_cmd =
  let problem =
    let doc = "What to count: satisfying valuations (val) or completions (comp)." in
    Arg.(value & opt problem_conv `Val & info [ "problem"; "p" ] ~doc)
  in
  let brute_limit =
    let doc = "Maximum number of valuations brute force may enumerate." in
    Arg.(value & opt int 4_000_000 & info [ "brute-limit" ] ~doc)
  in
  let max_candidates =
    let doc =
      "Largest ground-fact universe the completion-counting bitset kernel \
       may enumerate (the mask space is 2^N subsets, sharded over --jobs)."
    in
    Arg.(value
        & opt int Comp_candidates.default_max_candidates
        & info [ "max-candidates" ] ~docv:"N" ~doc)
  in
  let comp_mask =
    let doc =
      "Mask representation of the completion-counting kernel: auto (the \
       default; single-word int masks up to the word ceiling, multi-word \
       bitsets beyond), or force int / wide for A/B measurement."
    in
    Arg.(value
        & opt
            (enum
               [
                 ("auto", Comp_candidates.Auto);
                 ("int", Comp_candidates.Int_masks);
                 ("wide", Comp_candidates.Wide_masks);
               ])
            Comp_candidates.Auto
        & info [ "comp-mask" ] ~docv:"REPR" ~doc)
  in
  let comp_elim =
    let doc =
      "The #Comp lineage-elimination arm: auto (the default; used \
       whenever a sweep plan compiles and the candidate enumerator does \
       not apply), off (restore the pre-kernel dispatch), or force \
       (require the kernel; a declined instance is a hard error instead \
       of a fallback)."
    in
    Arg.(value
        & opt
            (enum
               [
                 ("auto", Comp_kernel.Auto);
                 ("off", Comp_kernel.Off);
                 ("force", Comp_kernel.Force);
               ])
            Comp_kernel.Auto
        & info [ "comp-elim" ] ~docv:"POLICY" ~doc)
  in
  let comp_width_bound =
    let doc =
      "Width bound of the #Comp elimination sweep: the largest number of \
       fact windows open at once before the kernel declines the instance \
       (plan-time, so under --comp-elim auto the dispatcher falls back \
       without wasted work).  Capped at 62 regardless."
    in
    Arg.(value
        & opt int Comp_kernel.default_width_bound
        & info [ "comp-width-bound" ] ~docv:"W" ~doc)
  in
  let comp_max_cells =
    let doc =
      "Largest in-memory DP frontier (in states) the #Comp elimination \
       kernel carries across a tree-decomposition bag boundary; a larger \
       message spills its counts to disk.  Counts are identical either \
       way."
    in
    Arg.(value
        & opt int Comp_kernel.default_max_cells
        & info [ "comp-max-cells" ] ~docv:"CELLS" ~doc)
  in
  let run obs db_path q problem brute_limit val_width_bound val_max_events
      val_max_cells val_order val_cache_entries val_spill val_spill_dir
      max_candidates comp_mask comp_elim comp_width_bound comp_max_cells jobs =
    with_obs obs (fun () ->
        match load_db db_path with
        | Error msg ->
          prerr_endline msg;
          raise Cli_error
        | Ok db ->
          let setting_problem =
            match problem with
            | `Val -> Setting.Valuations
            | `Comp -> Setting.Completions
          in
          let setting = Setting.of_idb setting_problem db in
          Printf.printf "setting: %s\n" (Setting.to_string setting);
          Printf.printf "classification: %s\n"
            (Classify.verdict_to_string (Classify.exact setting q));
          handle_limits (fun () ->
              let algo_name, result =
                match problem with
                | `Val ->
                  let a, n =
                    Count_val.count ~brute_limit ~val_width_bound
                      ~val_max_events ~val_max_cells ~val_order
                      ~val_cache_entries ~val_spill ?val_spill_dir ~jobs q db
                  in
                  (Count_val.algorithm_to_string a, n)
                | `Comp ->
                  let a, n =
                    Count_comp.count ~brute_limit ~max_candidates ~jobs
                      ~mask:comp_mask ~comp_elim ~comp_width_bound
                      ~comp_max_cells ?comp_spill_dir:val_spill_dir q db
                  in
                  (Count_comp.algorithm_to_string a, n)
              in
              Printf.printf "algorithm: %s\n" algo_name;
              Printf.printf "total valuations: %s\n"
                (Nat.to_string (Idb.total_valuations db));
              Printf.printf "count: %s\n" (Nat.to_string result)))
  in
  let doc = "Count satisfying valuations or completions exactly." in
  Cmd.v (Cmd.info "count" ~doc)
    Cmdliner.Term.(
      const run $ obs_term $ db_arg $ query_opt $ problem $ brute_limit
      $ val_width_bound_term $ val_max_events_term $ val_max_cells_term
      $ val_order_term $ val_cache_entries_term $ val_spill_term
      $ val_spill_dir_term $ max_candidates $ comp_mask $ comp_elim
      $ comp_width_bound $ comp_max_cells $ jobs_term)

(* ------------------------------------------------------------------ *)
(* approx                                                              *)
(* ------------------------------------------------------------------ *)

let approx_cmd =
  let samples =
    Arg.(value & opt int 50_000 & info [ "samples"; "n" ] ~doc:"Sample count.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let meth =
    let doc = "Estimator: karp-luby (FPRAS, Corollary 5.3) or monte-carlo." in
    Arg.(value
        & opt (enum [ ("karp-luby", `Kl); ("monte-carlo", `Mc) ]) `Kl
        & info [ "method"; "m" ] ~doc)
  in
  let exact_check =
    let doc =
      "Also compute the exact #Val through the variable-elimination \
       kernel (honoring --val-width-bound) and print it next to the \
       estimate, when the event set fits the kernel's limit."
    in
    Arg.(value & flag & info [ "exact-check" ] ~doc)
  in
  let run obs db_path q samples seed meth val_width_bound val_max_cells
      val_order val_cache_entries val_spill val_spill_dir exact_check jobs =
    with_obs obs (fun () ->
        match load_db db_path with
        | Error msg ->
          prerr_endline msg;
          raise Cli_error
        | Ok db ->
          let query = Query.Bcq q in
          handle_limits (fun () ->
              (match meth with
              | `Kl ->
                let events =
                  List.length (Incdb_approx.Karp_luby.events query db)
                in
                Printf.printf "events: %d\n" events;
                let est =
                  if jobs = 1 then
                    Incdb_approx.Karp_luby.estimate ~seed ~samples query db
                  else
                    Incdb_par.Karp_luby_par.estimate ~jobs ~seed ~samples
                      query db
                in
                Printf.printf "estimate (#Val): %.6g\n" est
              | `Mc ->
                Printf.printf "estimate (#Val): %.6g\n"
                  (Incdb_approx.Montecarlo.estimate ~seed ~samples query db));
              if exact_check then
                (match
                   Val_kernel.count ~width_bound:val_width_bound
                     ~max_cells:val_max_cells ~order:val_order
                     ~cache_entries:val_cache_entries ~spill:val_spill
                     ?spill_dir:val_spill_dir ~jobs query db
                 with
                | Some n ->
                  Printf.printf "exact (#Val kernel): %s\n" (Nat.to_string n)
                | None -> ()
                | exception Val_kernel.Too_many_events { events; limit } ->
                  (* Soft skip: the estimate above already printed; the
                     exact cross-check is best-effort by design. *)
                  Printf.printf
                    "exact (#Val kernel): skipped (%d events exceed limit \
                     %d)\n"
                    events limit);
              Printf.printf "total valuations: %s\n"
                (Nat.to_string (Idb.total_valuations db))))
  in
  let doc = "Estimate #Val with randomized approximation (Section 5)." in
  Cmd.v (Cmd.info "approx" ~doc)
    Cmdliner.Term.(
      const run $ obs_term $ db_arg $ query_opt $ samples $ seed $ meth
      $ val_width_bound_term $ val_max_cells_term $ val_order_term
      $ val_cache_entries_term $ val_spill_term $ val_spill_dir_term
      $ exact_check $ jobs_term)

(* ------------------------------------------------------------------ *)
(* enumerate                                                           *)
(* ------------------------------------------------------------------ *)

let enumerate_cmd =
  let query =
    let doc = "Optional query; marks satisfying valuations." in
    Arg.(value & opt (some query_conv) None & info [ "query"; "q" ] ~doc)
  in
  let limit =
    Arg.(value & opt int 64 & info [ "limit" ] ~doc:"Maximum rows printed.")
  in
  let run obs db_path query limit =
    with_obs obs (fun () ->
        match load_db db_path with
        | Error msg ->
          prerr_endline msg;
          raise Cli_error
        | Ok db ->
          let shown = ref 0 in
          handle_limits ~what:"enumeration" (fun () ->
            Idb.iter_valuations db (fun v ->
              if !shown < limit then begin
                incr shown;
                let completion = Idb.apply db v in
                let mark =
                  match query with
                  | None -> ""
                  | Some q ->
                    if Cq.eval q completion then "  |= q" else "  not |= q"
                in
                let binding =
                  String.concat ", "
                    (List.map (fun (n, c) -> "?" ^ n ^ "=" ^ c) v)
                in
                Format.printf "%-40s %a%s@." binding Incdb_relational.Cdb.pp
                  completion mark
              end);
            let total = Idb.total_valuations db in
            Printf.printf "(%d of %s valuations shown)\n" !shown
              (Nat.to_string total)))
  in
  let doc = "Enumerate valuations and their completions (Figure 1 style)." in
  Cmd.v (Cmd.info "enumerate" ~doc)
    Cmdliner.Term.(const run $ obs_term $ db_arg $ query $ limit)

(* ------------------------------------------------------------------ *)
(* certainty                                                           *)
(* ------------------------------------------------------------------ *)

let certainty_cmd =
  let run obs db_path q =
    with_obs obs (fun () ->
        match load_db db_path with
        | Error msg ->
          prerr_endline msg;
          raise Cli_error
        | Ok db ->
          let query = Query.Bcq q in
          handle_limits @@ fun () ->
          Printf.printf "possible: %b\n" (Certainty.possible query db);
          Printf.printf "certain:  %b\n" (Certainty.certain query db);
          Printf.printf "support:  %s\n"
            (Qnum.to_string (Certainty.support_ratio query db)))
  in
  let doc = "Decide possibility/certainty and compute the support ratio." in
  Cmd.v (Cmd.info "certainty" ~doc)
    Cmdliner.Term.(const run $ obs_term $ db_arg $ query_opt)

(* ------------------------------------------------------------------ *)
(* sample                                                              *)
(* ------------------------------------------------------------------ *)

let sample_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let count =
    Arg.(value & opt int 1 & info [ "count"; "n" ] ~doc:"Number of samples.")
  in
  let run obs db_path q seed count =
    with_obs obs (fun () ->
        match load_db db_path with
        | Error msg ->
          prerr_endline msg;
          raise Cli_error
        | Ok db ->
          let query = Query.Bcq q in
          handle_limits @@ fun () ->
          for i = 0 to count - 1 do
            match
              Incdb_approx.Enumerate.sample_uniform ~seed:(seed + i) query db
            with
            | None -> print_endline "(unsatisfiable)"
            | Some v ->
              print_endline
                (String.concat ", "
                   (List.map (fun (n, c) -> "?" ^ n ^ "=" ^ c) v))
          done)
  in
  let doc = "Sample satisfying valuations uniformly at random." in
  Cmd.v (Cmd.info "sample" ~doc)
    Cmdliner.Term.(const run $ obs_term $ db_arg $ query_opt $ seed $ count)

(* ------------------------------------------------------------------ *)
(* mu (zero-one law scan)                                              *)
(* ------------------------------------------------------------------ *)

let mu_cmd =
  let kmax = Arg.(value & opt int 8 & info [ "kmax" ] ~doc:"Largest domain size.") in
  let run obs db_path q kmax =
    with_obs obs (fun () ->
        match load_db db_path with
        | Error msg ->
          prerr_endline msg;
          raise Cli_error
        | Ok db ->
          (* Only the naive table matters: mu_k replaces the domains with
             the uniform {1..k}. *)
          handle_limits @@ fun () ->
          List.iter
            (fun (k, v) ->
              Printf.printf "k=%-3d mu_k = %s\n" k (Qnum.to_string v))
            (Zero_one.scan q (Idb.facts db) ~kmax))
  in
  let doc = "Scan Libkin's mu_k relative frequency over growing domains." in
  Cmd.v (Cmd.info "mu" ~doc)
    Cmdliner.Term.(const run $ obs_term $ db_arg $ query_opt $ kmax)

(* ------------------------------------------------------------------ *)
(* bounds                                                              *)
(* ------------------------------------------------------------------ *)

let bounds_cmd =
  let samples =
    Arg.(value & opt int 5000 & info [ "samples"; "n" ] ~doc:"Sampling budget.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let run obs db_path q samples seed =
    with_obs obs (fun () ->
        match load_db db_path with
        | Error msg ->
          prerr_endline msg;
          raise Cli_error
        | Ok db ->
          handle_limits @@ fun () ->
          let b = Count_bounds_alias.bounds ~seed ~samples q db in
          Printf.printf "#Comp(q) is within [%s, %s]\n"
            (Nat.to_string b.Count_bounds_alias.lower)
            (Nat.to_string b.Count_bounds_alias.upper);
          (match Count_bounds_alias.exact_within ~seed ~samples q db with
          | Some n ->
            Printf.printf "bounds meet: #Comp = %s\n" (Nat.to_string n)
          | None -> ()))
  in
  let doc = "Sound lower/upper bounds for #Comp (Section 8 heuristics)." in
  Cmd.v (Cmd.info "bounds" ~doc)
    Cmdliner.Term.(const run $ obs_term $ db_arg $ query_opt $ samples $ seed)

(* ------------------------------------------------------------------ *)
(* reach (datalog reachability counting)                               *)
(* ------------------------------------------------------------------ *)

let reach_cmd =
  let from_ =
    Arg.(required & opt (some string) None & info [ "from" ] ~doc:"Source node.")
  in
  let to_ =
    Arg.(required & opt (some string) None & info [ "to" ] ~doc:"Target node.")
  in
  let run obs db_path from_ to_ jobs =
    with_obs obs (fun () ->
        match load_db db_path with
        | Error msg ->
          prerr_endline msg;
          raise Cli_error
        | Ok db ->
          let q = Incdb_datalog.Datalog.reachability ~from:from_ ~to_ in
          handle_limits ~what:"reachability counting" (fun () ->
              let sat = Incdb_par.Brute_par.count_valuations ~jobs q db in
              let total = Idb.total_valuations db in
              Printf.printf
                "worlds where %s reaches %s (over relation E): %s of %s\n"
                from_ to_ (Nat.to_string sat) (Nat.to_string total)))
  in
  let doc = "Count worlds where one node reaches another (Datalog over E)." in
  Cmd.v (Cmd.info "reach" ~doc)
    Cmdliner.Term.(const run $ obs_term $ db_arg $ from_ $ to_ $ jobs_term)

(* ------------------------------------------------------------------ *)
(* repairs                                                             *)
(* ------------------------------------------------------------------ *)

let repairs_cmd =
  let keys =
    let doc =
      "Primary keys as Rel:pos,pos pairs, repeatable, e.g. --key Emp:0."
    in
    Arg.(value & opt_all string [] & info [ "key" ] ~docv:"REL:POS,..." ~doc)
  in
  let query =
    Arg.(value & opt (some query_conv) None & info [ "query"; "q" ]
           ~doc:"Optional query to filter repairs.")
  in
  let run obs db_path keys query =
    with_obs obs (fun () ->
        match load_db db_path with
        | Error msg ->
          prerr_endline msg;
          raise Cli_error
        | Ok db ->
          if Idb.nulls db <> [] then begin
            prerr_endline "repairs: the database must be complete (no nulls)";
            raise Cli_error
          end;
          handle_limits @@ fun () ->
          let parse_key spec =
            match String.split_on_char ':' spec with
            | [ rel; positions ] ->
              ( rel,
                String.split_on_char ',' positions
                |> List.map (fun p -> int_of_string (String.trim p)) )
            | _ -> failwith ("bad --key " ^ spec)
          in
          let keys = List.map parse_key keys in
          let facts =
            List.map
              (fun (f : Idb.fact) ->
                Incdb_relational.Cdb.fact f.Idb.rel
                  (List.map
                     (function
                       | Term.Const c -> c
                       | Term.Null _ -> assert false)
                     (Array.to_list f.Idb.args)))
              (Idb.facts db)
          in
          let r = Incdb_probdb.Repairs.make ~keys facts in
          Printf.printf "key groups: %d\n"
            (List.length (Incdb_probdb.Repairs.groups r));
          Printf.printf "total repairs: %s\n"
            (Nat.to_string (Incdb_probdb.Repairs.total_repairs r));
          (match query with
          | None -> ()
          | Some q ->
            Printf.printf "#Repairs(q): %s\n"
              (Nat.to_string
                 (Incdb_probdb.Repairs.count_repairs ~query:(Query.Bcq q) r))))
  in
  let doc = "Count repairs of an inconsistent database under primary keys." in
  Cmd.v (Cmd.info "repairs" ~doc)
    Cmdliner.Term.(const run $ obs_term $ db_arg $ keys $ query)

(* ------------------------------------------------------------------ *)
(* table1                                                              *)
(* ------------------------------------------------------------------ *)

let table1_cmd =
  let queries = Arg.(value & pos_all query_conv [] & info [] ~docv:"QUERY...") in
  let run obs queries =
    with_obs obs (fun () ->
        handle_limits @@ fun () ->
        let queries =
          if queries <> [] then queries
          else
            [
              Cq.q_rx;
              Cq.q_rxy;
              Cq.q_rxx;
              Cq.q_rx_sx;
              Cq.q_rx_sxy_ty;
              Cq.q_rxy_sxy;
            ]
        in
        print_string (Classify.table1 queries))
  in
  let doc = "Print a Table 1 style dichotomy table for a query corpus." in
  Cmd.v (Cmd.info "table1" ~doc) Cmdliner.Term.(const run $ obs_term $ queries)

let () =
  let doc = "Counting valuations and completions of incomplete databases" in
  let info = Cmd.info "idbcount" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            classify_cmd;
            count_cmd;
            approx_cmd;
            enumerate_cmd;
            certainty_cmd;
            sample_cmd;
            mu_cmd;
            bounds_cmd;
            reach_cmd;
            repairs_cmd;
            table1_cmd;
          ]))
