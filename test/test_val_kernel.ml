(* Tests for the lineage variable-elimination #Val kernel: agreement with
   brute-force enumeration on random and hand-built hard-pattern
   instances (including negations and unions), jobs-invariance of the
   counts, the width-bound conditioning fallback, and the typed
   event-limit error.  The brute-force enumerator stays in the suite as
   the kernel's independent oracle. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_core

let job_levels = [ 1; 2; 4 ]
let check_nat = Gen.check_nat

(* Unwrap the kernel's option: every query in this file is compilable. *)
let kernel ?width_bound ?max_events ?max_cells ?order ?cache_entries ?spill
    ?spill_dir ?spill_budget_bytes ?jobs q db =
  match
    Val_kernel.count ?width_bound ?max_events ?max_cells ?order ?cache_entries
      ?spill ?spill_dir ?spill_budget_bytes ?jobs q db
  with
  | Some n -> n
  | None -> Alcotest.fail "kernel declined a compilable query"

(* Run [f] with metric collection on and report the named counters'
   deltas next to its result. *)
let with_counters names f =
  let v name = Incdb_obs.Metrics.value (Incdb_obs.Metrics.counter name) in
  let before = List.map v names in
  Incdb_obs.Runtime.set_enabled true;
  let r =
    Fun.protect f ~finally:(fun () -> Incdb_obs.Runtime.set_enabled false)
  in
  (r, List.map2 (fun n b -> (n, v n - b)) names before)

let brute ?jobs q db = Incdb_par.Brute_par.count_valuations ?jobs q db

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)
(* ------------------------------------------------------------------ *)

let figure1 () =
  Idb.make
    [
      Idb.fact "S" [ Term.const "a"; Term.const "b" ];
      Idb.fact "S" [ Term.null "n1"; Term.const "a" ];
      Idb.fact "S" [ Term.const "a"; Term.null "n2" ];
    ]
    (Idb.Nonuniform [ ("n1", [ "a"; "b"; "c" ]); ("n2", [ "a"; "b" ]) ])

let test_figure1 () =
  let db = figure1 () in
  let q = Query.Bcq (Cq.of_string "S(x,x)") in
  check_nat "Figure 1: 4 of the 6 valuations satisfy S(x,x)"
    (Nat.of_int 4) (kernel q db);
  check_nat "complement via Not" (Nat.of_int 2) (kernel (Query.Not q) db);
  check_nat "double negation cancels" (Nat.of_int 4)
    (kernel (Query.Not (Query.Not q)) db)

(* ------------------------------------------------------------------ *)
(* The hard pattern: R(x), S(x,y), T(y) beyond the closed forms         *)
(* ------------------------------------------------------------------ *)

(* A path instance with [k] nulls on each side of a fixed S edge set:
   the query has no closed form (shared variables, non-uniform domains),
   so the dispatcher must route it through the kernel. *)
let path_instance ~k ~d ~edges =
  let dom = List.init d (fun i -> Printf.sprintf "v%d" i) in
  let side prefix rel =
    List.init k (fun i ->
        Idb.fact rel [ Term.null (Printf.sprintf "%s%d" prefix i) ])
  in
  let names prefix = List.init k (fun i -> Printf.sprintf "%s%d" prefix i) in
  Idb.make
    (side "r" "R"
    @ List.map (fun (a, b) -> Idb.fact "S" [ Term.const a; Term.const b ]) edges
    @ side "t" "T")
    (Idb.Nonuniform
       (List.map (fun n -> (n, dom)) (names "r" @ names "t")))

let path_query = Cq.of_string "R(x), S(x,y), T(y)"

let test_dispatcher_takes_kernel () =
  let db = path_instance ~k:3 ~d:3 ~edges:[ ("v0", "v1") ] in
  let algo, n = Count_val.count path_query db in
  Alcotest.(check string)
    "dispatcher picks the kernel"
    (Count_val.algorithm_to_string Count_val.Lineage_elimination)
    (Count_val.algorithm_to_string algo);
  check_nat "dispatcher count = brute force" (brute (Query.Bcq path_query) db) n

let test_path_agreement () =
  (* K_{k,k}-style clause structure: every (R-null = v0, T-null = v1)
     pair is an event, so the interaction graph is dense and the kernel
     must mix elimination with conditioning. *)
  List.iter
    (fun (k, d, edges) ->
      let db = path_instance ~k ~d ~edges in
      let q = Query.Bcq path_query in
      let want = brute q db in
      List.iter
        (fun jobs ->
          check_nat
            (Printf.sprintf "path k=%d d=%d (jobs=%d)" k d jobs)
            want
            (kernel ~jobs q db))
        job_levels;
      check_nat
        (Printf.sprintf "path k=%d d=%d negated" k d)
        (Nat.sub (Idb.total_valuations db) want)
        (kernel (Query.Not q) db))
    [
      (2, 3, [ ("v0", "v1") ]);
      (4, 3, [ ("v0", "v1"); ("v2", "v0") ]);
      (5, 4, [ ("v0", "v1") ]);
    ]

(* ------------------------------------------------------------------ *)
(* Width bound: conditioning fallback returns the same counts           *)
(* ------------------------------------------------------------------ *)

let test_width_bound_fallback () =
  let db = path_instance ~k:4 ~d:4 ~edges:[ ("v0", "v1"); ("v2", "v3") ] in
  let q = Query.Bcq path_query in
  let reference = kernel q db in
  (* width_bound 0 forbids elimination outright: the kernel must solve
     the whole instance by conditioning alone, with identical counts. *)
  List.iter
    (fun wb ->
      check_nat
        (Printf.sprintf "width_bound=%d agrees with default" wb)
        reference
        (kernel ~width_bound:wb q db))
    [ 0; 1; 2 ];
  Alcotest.check_raises "negative width bound rejected"
    (Invalid_argument "Val_kernel.count: negative width bound") (fun () ->
      ignore (kernel ~width_bound:(-1) q db));
  Alcotest.check_raises "max_cells below 1 rejected"
    (Invalid_argument "Val_kernel.count: max_cells must be at least 1")
    (fun () -> ignore (kernel ~max_cells:0 q db));
  Alcotest.check_raises "negative spill budget rejected"
    (Invalid_argument "Val_kernel.count: negative spill budget") (fun () ->
      ignore (kernel ~spill_budget_bytes:(-1) q db));
  (* A 1-cell message cap forces every component through conditioning
     when spilling is off — same counts as unrestricted elimination. *)
  check_nat "max_cells=1, spill off agrees with default" reference
    (kernel ~max_cells:1 ~spill:Val_kernel.Off q db)

(* ------------------------------------------------------------------ *)
(* Cross-branch subproblem cache and the min-fill order                *)
(* ------------------------------------------------------------------ *)

let test_subproblem_cache () =
  (* Two S edges over a dense K_{k,k} clause structure: the conditioning
     branches leave value-isomorphic residual components, which is
     exactly what the canonical-form cache is meant to collapse. *)
  let db = path_instance ~k:4 ~d:3 ~edges:[ ("v0", "v1"); ("v2", "v0") ] in
  let q = Query.Bcq path_query in
  let reference = kernel ~cache_entries:0 q db in
  check_nat "cache on = cache off" reference (kernel q db);
  List.iter
    (fun jobs ->
      List.iter
        (fun order ->
          check_nat
            (Printf.sprintf "cache on, order=%s, jobs=%d"
               (Val_kernel.order_to_string order)
               jobs)
            reference
            (kernel ~order ~jobs q db);
          check_nat
            (Printf.sprintf "pure conditioning, order=%s, jobs=%d"
               (Val_kernel.order_to_string order)
               jobs)
            reference
            (kernel ~width_bound:0 ~order ~jobs q db))
        [ Val_kernel.Min_degree; Val_kernel.Min_fill ])
    job_levels;
  (* Pure conditioning maximizes branch count; the isomorphic residues
     must actually hit the cache, and a disabled cache must not. *)
  let (_ : Nat.t), deltas =
    with_counters
      [ "val_kernel.cache_hits"; "val_kernel.cache_misses" ]
      (fun () -> kernel ~width_bound:0 q db)
  in
  Alcotest.(check bool)
    "cache hits recorded" true
    (List.assoc "val_kernel.cache_hits" deltas > 0);
  Alcotest.(check bool)
    "cache misses recorded" true
    (List.assoc "val_kernel.cache_misses" deltas > 0);
  let (_ : Nat.t), deltas_off =
    with_counters
      [ "val_kernel.cache_hits"; "val_kernel.cache_misses" ]
      (fun () -> kernel ~width_bound:0 ~cache_entries:0 q db)
  in
  Alcotest.(check int) "disabled cache never hits" 0
    (List.assoc "val_kernel.cache_hits" deltas_off);
  Alcotest.(check int) "disabled cache never misses" 0
    (List.assoc "val_kernel.cache_misses" deltas_off);
  Alcotest.check_raises "negative cache size rejected"
    (Invalid_argument "Val_kernel.count: negative cache size") (fun () ->
      ignore (kernel ~cache_entries:(-1) q db))

let test_min_fill_order () =
  List.iter
    (fun (k, d, edges) ->
      let db = path_instance ~k ~d ~edges in
      let q = Query.Bcq path_query in
      let want = kernel q db in
      List.iter
        (fun jobs ->
          check_nat
            (Printf.sprintf "min-fill k=%d d=%d jobs=%d" k d jobs)
            want
            (kernel ~order:Val_kernel.Min_fill ~jobs q db))
        job_levels)
    [
      (2, 3, [ ("v0", "v1") ]);
      (4, 3, [ ("v0", "v1"); ("v2", "v0") ]);
      (5, 4, [ ("v0", "v1"); ("v2", "v3") ]);
    ]

let test_event_limit () =
  let db = figure1 () in
  let q = Query.Bcq (Cq.of_string "S(x,x)") in
  (match kernel q db with
  | _ -> ()
  | exception _ -> Alcotest.fail "default limit must admit Figure 1");
  match Val_kernel.count ~max_events:0 q db with
  | _ -> Alcotest.fail "expected Too_many_events"
  | exception Val_kernel.Too_many_events { events; limit } ->
    Alcotest.(check int) "limit payload" 0 limit;
    Alcotest.(check bool) "events payload positive" true (events > 0)

(* ------------------------------------------------------------------ *)
(* Spill-to-disk factor store                                          *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "incdb_test_spill" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    (fun () -> f dir)
    ~finally:(fun () ->
      Array.iter
        (fun e -> Sys.remove (Filename.concat dir e))
        (Sys.readdir dir);
      Sys.rmdir dir)

let check_empty_dir msg dir =
  Alcotest.(check (list string)) msg [] (Array.to_list (Sys.readdir dir))

let test_spill_agreement () =
  let db = path_instance ~k:4 ~d:3 ~edges:[ ("v0", "v1"); ("v2", "v0") ] in
  let q = Query.Bcq path_query in
  let reference = kernel ~spill:Val_kernel.Off q db in
  List.iter
    (fun jobs ->
      check_nat
        (Printf.sprintf "forced spill, jobs=%d" jobs)
        reference
        (kernel ~spill:Val_kernel.Force ~jobs q db);
      check_nat
        (Printf.sprintf "forced spill, cache off, jobs=%d" jobs)
        reference
        (kernel ~spill:Val_kernel.Force ~cache_entries:0 ~jobs q db);
      (* A 2-cell cap overflows every multi-slot message: Auto must
         rescue the component by spilling, Off must condition — both
         bit-identical to the unrestricted in-memory run. *)
      check_nat
        (Printf.sprintf "auto spill under a 2-cell cap, jobs=%d" jobs)
        reference
        (kernel ~spill:Val_kernel.Auto ~max_cells:2 ~jobs q db);
      check_nat
        (Printf.sprintf "conditioning under a 2-cell cap, jobs=%d" jobs)
        reference
        (kernel ~spill:Val_kernel.Off ~max_cells:2 ~jobs q db))
    job_levels;
  (* The forced run must actually touch the disk backend. *)
  let n, deltas =
    with_counters
      [
        "val_kernel.spilled_factors";
        "val_kernel.spill_bytes";
        "val_kernel.spill_read_bytes";
      ]
      (fun () -> kernel ~spill:Val_kernel.Force q db)
  in
  check_nat "forced spill count" reference n;
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " recorded") true
        (List.assoc name deltas > 0))
    [
      "val_kernel.spilled_factors";
      "val_kernel.spill_bytes";
      "val_kernel.spill_read_bytes";
    ]

let test_spill_cleanup () =
  let db = path_instance ~k:4 ~d:3 ~edges:[ ("v0", "v1") ] in
  let q = Query.Bcq path_query in
  let reference = kernel ~spill:Val_kernel.Off q db in
  with_temp_dir (fun dir ->
      let n, deltas =
        with_counters
          [ "val_kernel.spilled_factors" ]
          (fun () -> kernel ~spill:Val_kernel.Force ~spill_dir:dir q db)
      in
      check_nat "forced spill in a custom dir" reference n;
      Alcotest.(check bool)
        "factors spilled into the custom dir" true
        (List.assoc "val_kernel.spilled_factors" deltas > 0);
      check_empty_dir "no temp files survive a successful run" dir)

(* Mid-DP abort: a single-slot component whose only slot has reduced
   domain size 1 streams an estimated 16 bytes (one bag cell) but
   marshals to a ~22-byte block, so there is a budget window where
   admission passes and the on_write hook then raises
   Spill_budget_exhausted from inside the DP — the injected exception
   of the cleanup contract.  Sweeping the budget covers all three
   regimes (admission refusal, mid-write abort, success) without
   hard-coding marshalling sizes; the abort regime is asserted to occur
   via its counter signature (bytes written, then conditioned). *)
let test_spill_budget_exhaustion () =
  let db =
    Idb.make
      [ Idb.fact "R" [ Term.null "n1" ] ]
      (Idb.Nonuniform [ ("n1", [ "a" ]) ])
  in
  let q = Query.Bcq (Cq.of_string "R(x)") in
  let reference = kernel ~spill:Val_kernel.Off q db in
  with_temp_dir (fun dir ->
      let saw_mid_dp_abort = ref false in
      for budget = 1 to 64 do
        let n, deltas =
          with_counters
            [ "val_kernel.spill_bytes"; "val_kernel.conditioning_splits" ]
            (fun () ->
              kernel ~spill:Val_kernel.Force ~spill_dir:dir
                ~spill_budget_bytes:budget q db)
        in
        check_nat (Printf.sprintf "budget=%d count" budget) reference n;
        check_empty_dir
          (Printf.sprintf "budget=%d leaves no temp files" budget)
          dir;
        if
          List.assoc "val_kernel.spill_bytes" deltas > 0
          && List.assoc "val_kernel.conditioning_splits" deltas > 0
        then saw_mid_dp_abort := true
      done;
      Alcotest.(check bool)
        "some budget aborted mid-DP (bytes written, then conditioned)" true
        !saw_mid_dp_abort)

(* ------------------------------------------------------------------ *)
(* Edge cases                                                          *)
(* ------------------------------------------------------------------ *)

let test_edge_cases () =
  let db = figure1 () in
  (* Satisfied by the constant fact alone: every valuation counts. *)
  check_nat "constant-satisfied query counts all valuations"
    (Idb.total_valuations db)
    (kernel (Query.Bcq (Cq.of_string "S(x,y)")) db);
  (* No matching relation: unsatisfiable, zero valuations. *)
  check_nat "unsatisfiable query counts none" Nat.zero
    (kernel (Query.Bcq (Cq.of_string "Z(x)")) db);
  check_nat "negated unsatisfiable counts all"
    (Idb.total_valuations db)
    (kernel (Query.Not (Query.Bcq (Cq.of_string "Z(x)"))) db);
  (* Semantic queries are opaque to lineage compilation. *)
  let opaque =
    Query.Semantic
      { Query.name = "always"; monotone = true; sem_eval = (fun _ -> true) }
  in
  Alcotest.(check bool) "semantic query declined" true
    (Val_kernel.count opaque db = None)

(* ------------------------------------------------------------------ *)
(* Randomized agreement with the brute-force oracle                    *)
(* ------------------------------------------------------------------ *)

let seeds_arb =
  QCheck.(
    make (Gen.pair (Gen.int_range 1 1_000_000) (Gen.int_range 1 1_000_000)))

let random_instance (qseed, dseed) =
  let q = Gen.random_sjfbcq ~seed:qseed in
  let db =
    Gen.random_idb ~seed:dseed ~schema:(Gen.schema_of_query q) ~rows:2
      ~codd:(dseed mod 2 = 0) ~uniform:(dseed mod 3 <> 0)
  in
  (q, db)

let prop_kernel_agrees =
  QCheck.Test.make ~count:80
    ~name:"kernel #Val = brute force for jobs in {1,2,4}" seeds_arb
    (fun seeds ->
      let q, db = random_instance seeds in
      QCheck.assume (Gen.manageable ~limit:20_000 db);
      let query = Query.Bcq q in
      let want = brute query db in
      List.for_all
        (fun jobs -> Nat.equal want (kernel ~jobs query db))
        job_levels)

let prop_kernel_not_agrees =
  QCheck.Test.make ~count:60
    ~name:"kernel #Val on Not q = brute force" seeds_arb
    (fun seeds ->
      let q, db = random_instance seeds in
      QCheck.assume (Gen.manageable ~limit:20_000 db);
      let query = Query.Not (Query.Bcq q) in
      Nat.equal (brute query db) (kernel query db))

let prop_kernel_union_agrees =
  QCheck.Test.make ~count:60
    ~name:"kernel #Val on unions = brute force" seeds_arb
    (fun (qseed, dseed) ->
      let q1 = Gen.random_sjfbcq ~seed:qseed in
      let q2 = Gen.random_sjfbcq ~seed:(qseed + 1) in
      let db =
        Gen.random_idb ~seed:dseed
          ~schema:(Gen.schema_of_query q1 @ Gen.schema_of_query q2)
          ~rows:2 ~codd:(dseed mod 2 = 0) ~uniform:(dseed mod 3 <> 0)
      in
      QCheck.assume (Gen.manageable ~limit:20_000 db);
      let query = Query.Union [ q1; q2 ] in
      Nat.equal (brute query db) (kernel query db))

let prop_kernel_tight_width =
  QCheck.Test.make ~count:40
    ~name:"width_bound 0 (pure conditioning) = default" seeds_arb
    (fun seeds ->
      let q, db = random_instance seeds in
      QCheck.assume (Gen.manageable ~limit:20_000 db);
      let query = Query.Bcq q in
      Nat.equal (kernel query db) (kernel ~width_bound:0 query db))

(* Directed at the conditioning "other" bucket: with only the (v0, v1)
   edge, every R-null mentions one value ([v0]) out of a domain of
   [d >= 3], so the aggregated rest-of-domain branch carries weight
   [d - 1 > 1] — precisely the weighted branch a plain mentioned-values
   split would miss.  width_bound 0 forces every component through it. *)
let prop_other_bucket_weight =
  QCheck.Test.make ~count:25
    ~name:"conditioning other-bucket weight (|dom| > |mentioned|)"
    QCheck.(make (Gen.pair (Gen.int_range 2 4) (Gen.int_range 3 5)))
    (fun (k, d) ->
      let db = path_instance ~k ~d ~edges:[ ("v0", "v1") ] in
      let q = Query.Bcq path_query in
      let want = brute q db in
      List.for_all
        (fun jobs ->
          Nat.equal want (kernel ~width_bound:0 ~jobs q db)
          && Nat.equal want
               (kernel ~width_bound:0 ~cache_entries:0 ~jobs q db))
        job_levels)

let prop_spill_agrees =
  QCheck.Test.make ~count:40
    ~name:"spill force/auto/off bit-identical for jobs in {1,2,4}" seeds_arb
    (fun seeds ->
      let q, db = random_instance seeds in
      QCheck.assume (Gen.manageable ~limit:20_000 db);
      let query = Query.Bcq q in
      let want = kernel ~spill:Val_kernel.Off query db in
      List.for_all
        (fun jobs ->
          Nat.equal want (kernel ~spill:Val_kernel.Force ~jobs query db)
          && Nat.equal want
               (kernel ~spill:Val_kernel.Auto ~max_cells:2 ~jobs query db)
          && Nat.equal want
               (kernel ~spill:Val_kernel.Off ~max_cells:1 ~jobs query db)
          && Nat.equal want
               (kernel ~spill:Val_kernel.Force ~cache_entries:0 ~jobs query db))
        job_levels)

let prop_cache_and_order_agree =
  QCheck.Test.make ~count:40
    ~name:"cache off = cache on = min-fill on random instances" seeds_arb
    (fun seeds ->
      let q, db = random_instance seeds in
      QCheck.assume (Gen.manageable ~limit:20_000 db);
      let query = Query.Bcq q in
      let want = kernel ~cache_entries:0 query db in
      Nat.equal want (kernel query db)
      && Nat.equal want (kernel ~order:Val_kernel.Min_fill query db)
      && Nat.equal want
           (kernel ~order:Val_kernel.Min_fill ~width_bound:1 query db))

let () =
  Alcotest.run "val_kernel"
    [
      ( "deterministic",
        [
          Alcotest.test_case "figure 1" `Quick test_figure1;
          Alcotest.test_case "dispatcher routes to kernel" `Quick
            test_dispatcher_takes_kernel;
          Alcotest.test_case "hard-pattern agreement" `Quick
            test_path_agreement;
          Alcotest.test_case "edge cases" `Quick test_edge_cases;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "width-bound fallback" `Quick
            test_width_bound_fallback;
          Alcotest.test_case "typed event limit" `Quick test_event_limit;
        ] );
      ( "cache",
        [
          Alcotest.test_case "cross-branch subproblem cache" `Quick
            test_subproblem_cache;
          Alcotest.test_case "min-fill order" `Quick test_min_fill_order;
        ] );
      ( "spill",
        [
          Alcotest.test_case "spill modes agree" `Quick test_spill_agreement;
          Alcotest.test_case "forced spill leaves no temp files" `Quick
            test_spill_cleanup;
          Alcotest.test_case "mid-DP budget exhaustion" `Quick
            test_spill_budget_exhaustion;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_kernel_agrees;
            prop_kernel_not_agrees;
            prop_kernel_union_agrees;
            prop_kernel_tight_width;
            prop_other_bucket_weight;
            prop_spill_agrees;
            prop_cache_and_order_agree;
          ] );
    ]
