(* The incdbd serve layer: protocol round-trips, warm-cache reuse across
   requests, admission control that refuses without wedging the server,
   and socket answers bit-identical to the in-process engine (which the
   engine tests in turn pin to the counting library, i.e. to what a
   one-shot idbcount computes). *)

open Incdb_bignum
open Incdb_core
open Incdb_serve
module Json = Incdb_obs.Json
module Metrics = Incdb_obs.Metrics

let testdata name =
  let candidates =
    [
      Filename.concat "testdata" name;
      Filename.concat "../testdata" name;
      Filename.concat "../../../testdata" name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail ("cannot locate testdata file " ^ name)

(* Counters only tick when collection is on; the server always enables
   it, so the tests do too. *)
let () = Incdb_obs.Runtime.set_enabled true

let counter name =
  Option.value ~default:0 (List.assoc_opt name (Metrics.counters_snapshot ()))

(* ------------------------------------------------------------------ *)
(* JSON plumbing                                                       *)
(* ------------------------------------------------------------------ *)

let get name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.fail ("missing field " ^ name ^ " in " ^ Json.to_string j)

let get_str name j =
  match get name j with
  | Json.String s -> s
  | _ -> Alcotest.fail (name ^ " is not a string")

let get_bool name j =
  match get name j with
  | Json.Bool b -> b
  | _ -> Alcotest.fail (name ^ " is not a bool")

let handle state line =
  match Protocol.of_line line with
  | Ok r -> Engine.handle state r
  | Error msg -> Alcotest.fail ("request refused to parse: " ^ msg)

let result_of resp =
  Alcotest.(check bool)
    ("response ok: " ^ Json.to_string resp)
    true (get_bool "ok" resp);
  get "result" resp

let error_kind resp =
  Alcotest.(check bool) "response is an error" false (get_bool "ok" resp);
  get_str "kind" (get "error" resp)

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_protocol_parse () =
  (match Protocol.of_line {|{"op":"count","db":"x.idb","query":"R(x)"}|} with
  | Ok r ->
    Alcotest.(check string) "op" "count" r.Protocol.op;
    Alcotest.(check int) "default brute_limit" 4_000_000 r.Protocol.brute_limit;
    Alcotest.(check int) "default jobs" 1 r.Protocol.jobs;
    Alcotest.(check bool) "default fresh" false r.Protocol.fresh;
    Alcotest.(check bool) "source is the path" true
      (r.Protocol.source = Some (Protocol.Path "x.idb"))
  | Error msg -> Alcotest.fail msg);
  let bad line =
    match Protocol.of_line line with
    | Ok _ -> Alcotest.fail ("accepted bad request: " ^ line)
    | Error _ -> ()
  in
  bad "not json at all";
  bad {|[1,2,3]|};
  bad {|{"op":"frobnicate"}|};
  bad {|{"op":"count","jobs":"two"}|};
  bad {|{"op":"count","db":"a","db_text":"b"}|};
  (* Unknown ids are echoed verbatim, whatever their type. *)
  match Protocol.of_line {|{"op":"ping","id":{"k":[1,2]}}|} with
  | Ok r ->
    Alcotest.(check string) "structured id survives" {|{"k":[1,2]}|}
      (Json.to_string r.Protocol.id)
  | Error msg -> Alcotest.fail msg

let test_cache_key () =
  let parse line =
    match Protocol.of_line line with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  let base = {|{"op":"count","db":"x.idb","query":"R(x)"}|} in
  let k line = Protocol.cache_key (parse line) ~db_key:"K" in
  Alcotest.(check string)
    "id, fresh and jobs do not key"
    (k base)
    (k {|{"op":"count","db":"x.idb","query":"R(x)","id":7,"fresh":true,"jobs":4}|});
  Alcotest.(check bool)
    "limits key" true
    (k base <> k {|{"op":"count","db":"x.idb","query":"R(x)","brute_limit":1}|});
  Alcotest.(check bool)
    "problem keys" true
    (k base <> k {|{"op":"count","db":"x.idb","query":"R(x)","problem":"comp"}|})

(* ------------------------------------------------------------------ *)
(* Engine: answers pinned to the counting library                      *)
(* ------------------------------------------------------------------ *)

let census_query = "Office(x,y), Skill(x,z)"

let count_req ?(extra = "") ?(fresh = false) ~db ~query () =
  Printf.sprintf {|{"op":"count","db":"%s","query":"%s","fresh":%b%s}|} db query
    fresh extra

let test_count_val_identical () =
  let state = State.create () in
  let db_path = testdata "census.idb" in
  let resp = handle state (count_req ~db:db_path ~query:census_query ()) in
  let r = result_of resp in
  let q = Incdb_cq.Cq.of_string census_query in
  let db = Incdb_incomplete.Idb_parser.of_file db_path in
  let algo, expected = Count_val.count q db in
  Alcotest.(check string) "count" (Nat.to_string expected) (get_str "count" r);
  Alcotest.(check string) "algorithm"
    (Count_val.algorithm_to_string algo)
    (get_str "algorithm" r);
  Alcotest.(check string) "total valuations"
    (Nat.to_string (Incdb_incomplete.Idb.total_valuations db))
    (get_str "total_valuations" r);
  (* The same request at jobs 2 and 4 must answer bit-identically. *)
  List.iter
    (fun jobs ->
      let line =
        count_req ~db:db_path ~query:census_query ~fresh:true
          ~extra:(Printf.sprintf {|,"jobs":%d|} jobs)
          ()
      in
      let r' = result_of (handle state line) in
      Alcotest.(check string)
        (Printf.sprintf "bit-identical at jobs %d" jobs)
        (Json.to_string r) (Json.to_string r'))
    [ 2; 4 ]

let test_count_comp_identical () =
  let state = State.create () in
  let db_path = testdata "noncodd.idb" in
  let line =
    count_req ~db:db_path ~query:"R(x), S(x)" ~extra:{|,"problem":"comp"|} ()
  in
  let r = result_of (handle state line) in
  let q = Incdb_cq.Cq.of_string "R(x), S(x)" in
  let db = Incdb_incomplete.Idb_parser.of_file db_path in
  let algo, expected = Count_comp.count q db in
  Alcotest.(check string) "count" (Nat.to_string expected) (get_str "count" r);
  Alcotest.(check string) "algorithm"
    (Count_comp.algorithm_to_string algo)
    (get_str "algorithm" r)

(* ------------------------------------------------------------------ *)
(* Warm reuse                                                          *)
(* ------------------------------------------------------------------ *)

let test_warm_val_cache () =
  let state = State.create () in
  let db_path = testdata "census.idb" in
  let line = count_req ~db:db_path ~query:census_query ~fresh:true () in
  let cold = result_of (handle state line) in
  let hits0 = counter "val_kernel.cache_hits" in
  let warm = result_of (handle state line) in
  let hits1 = counter "val_kernel.cache_hits" in
  Alcotest.(check bool) "kernel subproblem cache reused across requests" true
    (hits1 > hits0);
  Alcotest.(check string) "warm answer identical" (Json.to_string cold)
    (Json.to_string warm)

let test_warm_comp_memos () =
  let state = State.create () in
  let db_path = testdata "noncodd.idb" in
  let line =
    count_req ~db:db_path ~query:"R(x), S(x)" ~fresh:true
      ~extra:{|,"problem":"comp"|} ()
  in
  let cold = result_of (handle state line) in
  Alcotest.(check string) "elimination arm"
    (Count_comp.algorithm_to_string Count_comp.Lineage_elimination)
    (get_str "algorithm" cold);
  let hits0 = counter "comp_kernel.elim_cache_hits" in
  let misses0 = counter "comp_kernel.elim_cache_misses" in
  let warm = result_of (handle state line) in
  let hits1 = counter "comp_kernel.elim_cache_hits" in
  let misses1 = counter "comp_kernel.elim_cache_misses" in
  Alcotest.(check string) "warm answer identical" (Json.to_string cold)
    (Json.to_string warm);
  Alcotest.(check bool) "transform memos replay as hits" true (hits1 > hits0);
  Alcotest.(check int) "no transform recomputed on the warm run" 0
    (misses1 - misses0)

let test_warm_classify () =
  let state = State.create () in
  Classify.reset_cache ();
  let line = {|{"op":"classify","query":"R(x), S(x,y), T(y)"}|} in
  let cold = result_of (handle state line) in
  let hits0 = counter "classify.cache_hits" in
  let warm = result_of (handle state {|{"op":"classify","query":"R(x), S(x,y), T(y)","fresh":true}|}) in
  let hits1 = counter "classify.cache_hits" in
  Alcotest.(check bool) "verdict cache reused" true (hits1 > hits0);
  Alcotest.(check string) "verdicts identical" (Json.to_string cold)
    (Json.to_string warm)

let test_result_cache () =
  let state = State.create () in
  let db_path = testdata "figure1.idb" in
  let line = count_req ~db:db_path ~query:"S(x,x)" () in
  let first = handle state line in
  Alcotest.(check bool) "first answer is computed" true
    (Json.member "cached" first = None);
  let hits0 = counter "serve.result_cache_hits" in
  let second = handle state line in
  Alcotest.(check bool) "second answer is replayed" true
    (get_bool "cached" second);
  Alcotest.(check int) "one result-cache hit" (hits0 + 1)
    (counter "serve.result_cache_hits");
  Alcotest.(check string) "payload byte-identical"
    (Json.to_string (result_of first))
    (Json.to_string (result_of second));
  (* fresh recomputes but stays cached for the next caller. *)
  let third = handle state (count_req ~db:db_path ~query:"S(x,x)" ~fresh:true ()) in
  Alcotest.(check bool) "fresh bypasses the cache" true
    (Json.member "cached" third = None)

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let test_admission_control () =
  let state = State.create () in
  let db_path = testdata "census.idb" in
  let refusals0 = counter "serve.refusals" in
  let refused =
    handle state
      (count_req ~db:db_path ~query:census_query ~fresh:true
         ~extra:{|,"val_max_events":0,"brute_limit":1|} ())
  in
  Alcotest.(check string) "typed refusal" "too_many_valuations"
    (error_kind refused);
  Alcotest.(check int) "refusal counted" (refusals0 + 1)
    (counter "serve.refusals");
  (* The server keeps serving after a refusal, warm state intact. *)
  let ok = result_of (handle state (count_req ~db:db_path ~query:census_query ())) in
  let q = Incdb_cq.Cq.of_string census_query in
  let db = Incdb_incomplete.Idb_parser.of_file db_path in
  Alcotest.(check string) "subsequent request served"
    (Nat.to_string (snd (Count_val.count q db)))
    (get_str "count" ok);
  (* Protocol-level failures answer structurally too. *)
  Alcotest.(check string) "missing query" "bad_request"
    (error_kind (handle state (Printf.sprintf {|{"op":"count","db":"%s"}|} db_path)));
  Alcotest.(check string) "unreadable database" "db_error"
    (error_kind
       (handle state {|{"op":"count","db":"/nonexistent.idb","query":"R(x)"}|}));
  Alcotest.(check string) "unparsable query" "bad_request"
    (error_kind
       (handle state
          (Printf.sprintf {|{"op":"count","db":"%s","query":"R(x"}|} db_path)))

let test_batch () =
  let state = State.create () in
  let db_path = testdata "figure1.idb" in
  let census = testdata "census.idb" in
  let line =
    Printf.sprintf
      {|{"op":"batch","jobs":2,"requests":[
          {"id":"a","op":"count","db":"%s","query":"S(x,x)"},
          {"id":"b","op":"count","db":"%s","query":"S(a,x)"},
          {"id":"c","op":"count","db":"%s","query":"Office(x,y), Skill(x,z)","val_max_events":0,"brute_limit":1},
          {"id":"d","op":"shutdown"}]}|}
      db_path db_path census
    |> String.split_on_char '\n' |> List.map String.trim |> String.concat ""
  in
  let results =
    match get "results" (result_of (handle state line)) with
    | Json.List l -> l
    | _ -> Alcotest.fail "results is not an array"
  in
  Alcotest.(check int) "all sub-requests answered" 4 (List.length results);
  let nth n = List.nth results n in
  Alcotest.(check string) "order preserved" "a" (get_str "id" (nth 0));
  let q = Incdb_cq.Cq.of_string "S(x,x)" in
  let db = Incdb_incomplete.Idb_parser.of_file db_path in
  Alcotest.(check string) "sub-request answer pinned"
    (Nat.to_string (snd (Count_val.count q db)))
    (get_str "count" (result_of (nth 0)));
  Alcotest.(check bool) "refused entry refused alone" false
    (get_bool "ok" (nth 2));
  Alcotest.(check string) "lifecycle op rejected in batch" "bad_request"
    (error_kind (nth 3))

let test_metrics_and_reset () =
  let state = State.create () in
  let m = result_of (handle state {|{"op":"metrics"}|}) in
  let prom = get_str "prometheus" m in
  Alcotest.(check bool) "prometheus text rendered" true
    (String.length prom > 0);
  ignore (get "counters" m);
  ignore (get "caches" m);
  (* A caches reset must empty the warm layers. *)
  let db_path = testdata "figure1.idb" in
  ignore (handle state (count_req ~db:db_path ~query:"S(x,x)" ()));
  Alcotest.(check bool) "result cache populated" true
    (State.result_count state > 0);
  let r = result_of (handle state {|{"op":"reset","caches":true}|}) in
  (match get "caches" r with
  | Json.List (_ :: _) -> ()
  | _ -> Alcotest.fail "reset did not report dropped caches");
  Alcotest.(check int) "result cache emptied" 0 (State.result_count state)

(* ------------------------------------------------------------------ *)
(* Socket transport                                                    *)
(* ------------------------------------------------------------------ *)

let socket_path () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "incdbd-%d-%d.sock" (Unix.getpid ()) (Random.int 10000))

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec retry n =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 0 ->
      Thread.delay 0.05;
      retry (n - 1)
  in
  retry 100;
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let roundtrip oc ic line =
  output_string oc line;
  output_char oc '\n';
  flush oc;
  input_line ic

let test_socket_roundtrip () =
  let path = socket_path () in
  let state = State.create () in
  let opts = Server.make_opts ~state () in
  let server = Thread.create (fun () -> Server.run_socket opts ~socket_path:path) () in
  let db_path = testdata "census.idb" in
  let expected =
    Json.to_string
      (result_of (Engine.handle state (match Protocol.of_line (count_req ~db:db_path ~query:census_query ()) with Ok r -> r | Error m -> Alcotest.fail m)))
  in
  (* Three concurrent clients at different job counts: every response
     must be byte-identical to the sequential in-process answer. *)
  let answers = Array.make 3 "" in
  let clients =
    List.mapi
      (fun i jobs ->
        Thread.create
          (fun () ->
            let _fd, ic, oc = connect path in
            let line =
              count_req ~db:db_path ~query:census_query ~fresh:true
                ~extra:(Printf.sprintf {|,"jobs":%d|} jobs)
                ()
            in
            let resp = roundtrip oc ic line in
            (match Json.of_string resp with
            | Ok j -> answers.(i) <- Json.to_string (get "result" j)
            | Error m -> answers.(i) <- "parse error: " ^ m);
            close_out_noerr oc)
          ())
      [ 1; 2; 4 ]
  in
  List.iter Thread.join clients;
  Array.iteri
    (fun i got ->
      Alcotest.(check string)
        (Printf.sprintf "client %d bit-identical" i)
        expected got)
    answers;
  (* Disconnect mid-conversation must not wedge the server... *)
  let fd, _, _ = connect path in
  Unix.close fd;
  (* ...and a clean shutdown stops it and removes the socket. *)
  let _fd, ic, oc = connect path in
  let resp = roundtrip oc ic {|{"op":"shutdown"}|} in
  (match Json.of_string resp with
  | Ok j -> Alcotest.(check bool) "shutdown acknowledged" true (get_bool "ok" j)
  | Error m -> Alcotest.fail m);
  close_out_noerr oc;
  Thread.join server;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "parse" `Quick test_protocol_parse;
          Alcotest.test_case "cache key" `Quick test_cache_key;
        ] );
      ( "engine",
        [
          Alcotest.test_case "count val = library" `Quick test_count_val_identical;
          Alcotest.test_case "count comp = library" `Quick test_count_comp_identical;
          Alcotest.test_case "batch" `Quick test_batch;
          Alcotest.test_case "metrics and reset" `Quick test_metrics_and_reset;
        ] );
      ( "warm",
        [
          Alcotest.test_case "val kernel cache" `Quick test_warm_val_cache;
          Alcotest.test_case "comp transform memos" `Quick test_warm_comp_memos;
          Alcotest.test_case "classify verdicts" `Quick test_warm_classify;
          Alcotest.test_case "result cache" `Quick test_result_cache;
        ] );
      ( "admission",
        [ Alcotest.test_case "typed refusals" `Quick test_admission_control ] );
      ( "socket",
        [ Alcotest.test_case "round-trip" `Quick test_socket_roundtrip ] );
    ]
