(* Every reduction of the paper, verified as an exact counting identity
   against the direct combinatorial oracles on randomized instances. *)

open Incdb_bignum
open Incdb_graph
open Incdb_cq
open Incdb_incomplete
open Incdb_reductions

let check_nat = Gen.check_nat

let random_graph seed n = Generators.random ~seed n 1 2

(* ------------------------------------------------------------------ *)
(* Proposition 3.4: 3-colorings via #Val^u(R(x,x))                     *)
(* ------------------------------------------------------------------ *)

let prop_coloring =
  QCheck.Test.make ~count:40 ~name:"Prop 3.4: #3COL via #Val(R(x,x))"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let g = random_graph seed 6 in
      Nat.equal
        (Coloring_red.colorings_via_val g)
        (Colorings.count_colorings g 3))

let prop_coloring_k4 =
  QCheck.Test.make ~count:20 ~name:"Prop 3.4 generalized to k=4"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let g = random_graph seed 5 in
      Nat.equal
        (Coloring_red.colorings_via_val ~k:4 g)
        (Colorings.count_colorings g 4))

(* ------------------------------------------------------------------ *)
(* Proposition 3.8: independent sets via #Val^u                        *)
(* ------------------------------------------------------------------ *)

let prop_indep_val variant name =
  QCheck.Test.make ~count:40 ~name
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let g = random_graph seed 6 in
      Nat.equal
        (Indep_val.independent_sets_via_val ~variant g)
        (Independent.count_independent_sets g))

let prop_indep_rst = prop_indep_val `Rst "Prop 3.8: #IS via R(x),S(x,y),T(y)"
let prop_indep_rs = prop_indep_val `Rs "Prop 3.8: #IS via R(x,y),S(x,y)"

(* ------------------------------------------------------------------ *)
(* Proposition 3.5: avoiding assignments via #Val_Cd(R(x) ∧ S(x))      *)
(* ------------------------------------------------------------------ *)

let prop_avoidance_red =
  QCheck.Test.make ~count:40 ~name:"Prop 3.5: #Avoidance via #Val_Cd(RxSx)"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let b = Generators.random_bipartite ~seed 4 4 1 2 in
      let no_isolated =
        List.for_all (fun i -> Bipartite.right_neighbors b i <> [])
          (List.init 4 Fun.id)
        && List.for_all (fun j -> Bipartite.left_neighbors b j <> [])
             (List.init 4 Fun.id)
      in
      QCheck.assume no_isolated;
      let direct =
        Avoidance.count_avoiding (Multigraph.of_graph (Bipartite.to_graph b))
      in
      Nat.equal (Avoidance_red.avoidance_via_val b) direct)

(* ------------------------------------------------------------------ *)
(* Proposition 4.2: vertex covers via #Comp_Cd(R(x))                   *)
(* ------------------------------------------------------------------ *)

let prop_vc =
  QCheck.Test.make ~count:30 ~name:"Prop 4.2: #VC via #Comp_Cd(R(x))"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let g = random_graph seed 4 in
      Nat.equal (Vc_comp.vertex_covers_via_comp g)
        (Independent.count_vertex_covers g))

let test_vc_is_parsimonious () =
  (* The encoding's completions are exactly the vertex covers: also check
     the witness bijection on a fixed triangle. *)
  let g = Generators.complete 3 in
  (* VC(K3): all 2^3 subsets except those missing 2+ nodes: {}, {0},{1},{2}
     are not covers; covers: {01},{02},{12},{012} = 4. *)
  check_nat "#VC(K3)" (Nat.of_int 4) (Vc_comp.vertex_covers_via_comp g);
  check_nat "#IS reading" (Nat.of_int 4) (Vc_comp.independent_sets_via_comp g)

(* ------------------------------------------------------------------ *)
(* Proposition 4.5(a): #Comp^u = 2^V + #IS                             *)
(* ------------------------------------------------------------------ *)

let prop_indep_comp =
  QCheck.Test.make ~count:25 ~name:"Prop 4.5a: #Comp = 2^V + #IS"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let g = random_graph seed 4 in
      Nat.equal
        (Indep_comp.independent_sets_via_comp g)
        (Independent.count_independent_sets g))

(* ------------------------------------------------------------------ *)
(* Proposition 4.5(b): #Comp^u_Cd = #PF on bipartite graphs            *)
(* ------------------------------------------------------------------ *)

let prop_pf =
  QCheck.Test.make ~count:15 ~name:"Prop 4.5b: #Comp^u_Cd = #PF"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let b = Generators.random_bipartite ~seed 3 3 1 2 in
      QCheck.assume (Bipartite.edge_count b <= 5);
      let g = Bipartite.to_graph b in
      Nat.equal (Pf_comp.pseudoforests_via_comp b)
        (Pseudoforest.count_pseudoforests g))

let test_pf_encoding_is_codd () =
  let b = Bipartite.make ~left:2 ~right:2 [ (0, 0); (1, 1) ] in
  Alcotest.(check bool) "codd" true (Idb.is_codd (Pf_comp.encode b));
  Alcotest.(check bool) "uniform" true (Idb.is_uniform (Pf_comp.encode b))

(* ------------------------------------------------------------------ *)
(* Proposition 3.11: #BIS via the linear-system Turing reduction       *)
(* ------------------------------------------------------------------ *)

let prop_bis =
  QCheck.Test.make ~count:12 ~name:"Prop 3.11: #BIS via (n+1)^2 oracle calls"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let b = Generators.random_bipartite ~seed 3 3 1 2 in
      Nat.equal (Bis_val.bis_via_val b)
        (Independent.count_bipartite_independent_sets b))

let test_bis_unbalanced () =
  (* Padding path: sides of different size. *)
  let b = Bipartite.make ~left:2 ~right:3 [ (0, 0); (1, 2) ] in
  check_nat "unbalanced #BIS" (Independent.count_bipartite_independent_sets b)
    (Bis_val.bis_via_val b)

(* ------------------------------------------------------------------ *)
(* Proposition 5.6: 7-vs-8 completions gadget                          *)
(* ------------------------------------------------------------------ *)

let prop_gadget =
  QCheck.Test.make ~count:15 ~name:"Prop 5.6: gadget has 7 or 8 completions"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let g = random_graph seed 4 in
      QCheck.assume (Graph.edge_count g >= 1);
      let count = Threecol_gadget.completion_count g in
      let colorable = Colorings.is_colorable g 3 in
      Nat.equal count (Nat.of_int (if colorable then 8 else 7)))

let test_gadget_decides () =
  let k4 = Generators.complete 4 in
  Alcotest.(check bool) "K4 not 3-colorable" false
    (Threecol_gadget.is_3colorable_via_comp k4);
  let c5 = Generators.cycle 5 in
  Alcotest.(check bool) "C5 3-colorable" true
    (Threecol_gadget.is_3colorable_via_comp c5);
  (* The decision threshold of the proof. *)
  Alcotest.(check bool) "7.4 rejects" false
    (Threecol_gadget.decide_3colorable ~count:7.4);
  Alcotest.(check bool) "7.6 accepts" true
    (Threecol_gadget.decide_3colorable ~count:7.6)

(* ------------------------------------------------------------------ *)
(* CNF and Theorem 6.3                                                 *)
(* ------------------------------------------------------------------ *)

let test_cnf_basics () =
  let f =
    Cnf.make ~nvars:3
      [ (Cnf.lit 0, Cnf.lit 1, Cnf.lit 2) ]
  in
  check_nat "#SAT of one clause" (Nat.of_int 7) (Cnf.count_sat f);
  check_nat "k=0 satisfiable" Nat.one (Cnf.count_k3sat f 0);
  check_nat "k=n" (Cnf.count_sat f) (Cnf.count_k3sat f f.Cnf.nvars);
  let unsat =
    Cnf.make ~nvars:3
      [
        (Cnf.lit 0, Cnf.lit 1, Cnf.lit 2);
        (Cnf.lit ~positive:false 0, Cnf.lit 1, Cnf.lit 2);
        (Cnf.lit 0, Cnf.lit ~positive:false 1, Cnf.lit 2);
        (Cnf.lit 0, Cnf.lit 1, Cnf.lit ~positive:false 2);
        (Cnf.lit ~positive:false 0, Cnf.lit ~positive:false 1, Cnf.lit 2);
        (Cnf.lit ~positive:false 0, Cnf.lit 1, Cnf.lit ~positive:false 2);
        (Cnf.lit 0, Cnf.lit ~positive:false 1, Cnf.lit ~positive:false 2);
        ( Cnf.lit ~positive:false 0,
          Cnf.lit ~positive:false 1,
          Cnf.lit ~positive:false 2 );
      ]
  in
  check_nat "unsat formula" Nat.zero (Cnf.count_sat unsat);
  check_nat "unsat k3sat" Nat.zero (Cnf.count_k3sat unsat 2)

let prop_k3sat_monotone =
  QCheck.Test.make ~count:40 ~name:"#k3SAT is monotone in k"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let f = Cnf.random ~seed ~nvars:5 ~nclauses:4 in
      let counts = List.map (Cnf.count_k3sat f) [ 0; 1; 2; 3; 4; 5 ] in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> Nat.compare a b <= 0 && nondecreasing rest
        | _ -> true
      in
      nondecreasing counts)

let prop_spanp =
  QCheck.Test.make ~count:12 ~name:"Thm 6.3: #Comp^u(neg q) = #k3SAT"
    QCheck.(make (QCheck.Gen.pair (QCheck.Gen.int_range 1 1_000_000)
                    (QCheck.Gen.int_range 1 4)))
    (fun (seed, k) ->
      let f = Cnf.random ~seed ~nvars:4 ~nclauses:3 in
      Nat.equal (Spanp.k3sat_via_comp f k) (Cnf.count_k3sat f k))

let test_spanp_query_is_sjf () =
  Alcotest.(check bool) "Equation (8) query is self-join-free" true
    (Cq.is_self_join_free Spanp.query);
  Alcotest.(check int) "nine atoms" 9 (List.length Spanp.query)

(* ------------------------------------------------------------------ *)
(* Theorem 6.4: #HamSubgraphs via #Val^u of an ∃SO query               *)
(* ------------------------------------------------------------------ *)

let prop_hamsub =
  QCheck.Test.make ~count:10 ~name:"Thm 6.4: #HamSubgraphs via valuations"
    QCheck.(make (QCheck.Gen.pair (QCheck.Gen.int_range 1 1_000_000)
                    (QCheck.Gen.int_range 3 5)))
    (fun (seed, k) ->
      let g = Generators.random ~seed 6 2 3 in
      Nat.equal (Hamsub.ham_subgraphs_via_val g k)
        (Incdb_graph.Hamiltonicity.count_hamiltonian_subgraphs g k))

(* ------------------------------------------------------------------ *)
(* Lemmas 3.3 / 4.1: the generic pattern reduction                     *)
(* ------------------------------------------------------------------ *)

let prop_pattern_reduction =
  QCheck.Test.make ~count:40
    ~name:"Lemma 3.3/4.1: pattern transform preserves #Val and #Comp"
    QCheck.(make (QCheck.Gen.pair (QCheck.Gen.int_range 1 1_000_000)
                    (QCheck.Gen.int_bound 2)))
    (fun (seed, which) ->
      let pattern, target, schema' =
        match which with
        | 0 ->
          (* R(x,x) inside a wider atom *)
          ("R(x,x)", "A(u,x,u)", [ ("R", 2) ])
        | 1 ->
          (* R(x) ∧ S(x) inside two binary atoms *)
          ("R(x), S(x)", "A(x,y), B(x,z)", [ ("R", 1); ("S", 1) ])
        | _ ->
          (* atom deletion *)
          ("R(x)", "R(x,y), S(z)", [ ("R", 1) ])
      in
      let pattern = Cq.of_string pattern and target = Cq.of_string target in
      let db' =
        Gen.random_idb ~seed ~schema:schema' ~rows:2 ~codd:(seed mod 2 = 0)
          ~uniform:(seed mod 3 = 0)
      in
      QCheck.assume (Gen.manageable ~limit:30_000 db');
      let db = Pattern_red.transform ~pattern ~target db' in
      let val_eq =
        Nat.equal
          (Brute.count_valuations (Query.Bcq pattern) db')
          (Brute.count_valuations (Query.Bcq target) db)
      in
      let comp_eq =
        Nat.equal
          (Brute.count_completions (Query.Bcq pattern) db')
          (Brute.count_completions (Query.Bcq target) db)
      in
      val_eq && comp_eq)

let test_pattern_reduction_preserves_shape () =
  let pattern = Cq.of_string "R(x)" in
  let target = Cq.of_string "R(x,y)" in
  let db' =
    Idb.make [ Idb.fact "R" [ Term.null "n" ] ] (Idb.Uniform [ "a"; "b" ])
  in
  let db = Pattern_red.transform ~pattern ~target db' in
  (* The null-bearing tuple is replicated across the filled column, so the
     result is NOT Codd here (see the deviation note in Pattern_red). *)
  Alcotest.(check bool) "replication breaks codd" false (Idb.is_codd db);
  Alcotest.(check bool) "uniform preserved" true (Idb.is_uniform db);
  Alcotest.(check (list string)) "same nulls" (Idb.nulls db') (Idb.nulls db);
  (* With no deleted column on the null tuple, Codd-ness is preserved. *)
  let target2 = Cq.of_string "R(x)" in
  let db2 = Pattern_red.transform ~pattern ~target:target2 db' in
  Alcotest.(check bool) "identity embedding keeps codd" true (Idb.is_codd db2)

(* ------------------------------------------------------------------ *)
(* End-to-end hardness certificates for arbitrary hard queries         *)
(* ------------------------------------------------------------------ *)

let prop_val_certificates =
  (* For random queries classified hard in the uniform naive #Val
     setting, the composed reduction (source encoding + Lemma 3.3
     transform) must recover the graph quantity exactly. *)
  QCheck.Test.make ~count:25 ~name:"hardness certificates for #Val"
    QCheck.(make (QCheck.Gen.pair (QCheck.Gen.int_range 1 2_000_000)
                    (QCheck.Gen.int_range 1 1_000_000)))
    (fun (qseed, gseed) ->
      let q = Gen.random_sjfbcq ~seed:qseed in
      match Certificate.for_val q with
      | None -> QCheck.assume_fail ()
      | Some cert ->
        let g = Generators.random ~seed:gseed 4 1 2 in
        let db = cert.Certificate.encode g in
        QCheck.assume (Gen.manageable ~limit:10_000 db);
        let count db = Brute.count_valuations (Query.Bcq q) db in
        let recovered, direct = Certificate.check cert ~count g in
        Nat.equal recovered direct)

let prop_comp_certificates =
  QCheck.Test.make ~count:20 ~name:"hardness certificates for #Comp"
    QCheck.(make (QCheck.Gen.pair (QCheck.Gen.int_range 1 2_000_000)
                    (QCheck.Gen.int_range 1 1_000_000)))
    (fun (qseed, gseed) ->
      let q = Gen.random_sjfbcq ~seed:qseed in
      let cert = Certificate.for_comp q in
      let g = Generators.random ~seed:gseed 3 1 2 in
      let db = cert.Certificate.encode g in
      QCheck.assume (Gen.manageable ~limit:10_000 db);
      let count db = Brute.count_completions (Query.Bcq q) db in
      let recovered, direct = Certificate.check cert ~count g in
      Nat.equal recovered direct)

let test_certificate_fixed () =
  (* A concrete hard query lifted from R(x,x): A(u,v,u) ∧ B(w). *)
  let q = Cq.of_string "A(u,v,u), B(w)" in
  match Certificate.for_val q with
  | None -> Alcotest.fail "expected a certificate"
  | Some cert ->
    Alcotest.(check string) "source" "#3COL" cert.Certificate.source;
    let g = Generators.cycle 4 in
    let count db = Brute.count_valuations (Query.Bcq q) db in
    let recovered, direct = Certificate.check cert ~count g in
    check_nat "3-colorings of C4 via arbitrary hard query" direct recovered;
    check_nat "which is 18" (Nat.of_int 18) direct

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_coloring;
        prop_coloring_k4;
        prop_indep_rst;
        prop_indep_rs;
        prop_avoidance_red;
        prop_vc;
        prop_indep_comp;
        prop_pf;
        prop_bis;
        prop_gadget;
        prop_k3sat_monotone;
        prop_spanp;
        prop_hamsub;
        prop_pattern_reduction;
        prop_val_certificates;
        prop_comp_certificates;
      ]
  in
  Alcotest.run "reductions"
    [
      ( "unit",
        [
          Alcotest.test_case "VC on K3" `Quick test_vc_is_parsimonious;
          Alcotest.test_case "PF encoding shape" `Quick test_pf_encoding_is_codd;
          Alcotest.test_case "BIS unbalanced" `Quick test_bis_unbalanced;
          Alcotest.test_case "gadget decisions" `Quick test_gadget_decides;
          Alcotest.test_case "cnf basics" `Quick test_cnf_basics;
          Alcotest.test_case "Equation (8)" `Quick test_spanp_query_is_sjf;
          Alcotest.test_case "pattern transform shape" `Quick
            test_pattern_reduction_preserves_shape;
          Alcotest.test_case "certificate on a lifted query" `Quick
            test_certificate_fixed;
        ] );
      ("properties", props);
    ]
