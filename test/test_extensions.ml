(* Tests for the extension modules: bounded minimal models (Prop 5.2),
   inequality queries (footnote 4), the zero-one law measure (Section 7),
   candidate-space completion counting (Prop B.1), answer support
   (Sections 7-8), bag semantics (Section 8), and the .idb text format. *)

open Incdb_bignum
open Incdb_relational
open Incdb_cq
open Incdb_incomplete
open Incdb_core

let check_nat = Gen.check_nat

let qn = Alcotest.testable Qnum.pp Qnum.equal

(* ------------------------------------------------------------------ *)
(* Minimal models                                                      *)
(* ------------------------------------------------------------------ *)

let test_minimal_models_basic () =
  let db =
    Cdb.of_list
      [
        Cdb.fact "R" [ "a" ];
        Cdb.fact "R" [ "b" ];
        Cdb.fact "S" [ "a" ];
      ]
  in
  let q = Query.Bcq (Cq.of_string "R(x), S(x)") in
  let models = Minimal_models.minimal_models q db in
  Alcotest.(check int) "one minimal model" 1 (List.length models);
  let m = List.hd models in
  Alcotest.(check int) "two facts" 2 (Cdb.cardinal m);
  Alcotest.(check bool) "validated" true (Minimal_models.is_minimal_model q db m);
  Alcotest.(check (option int)) "bound" (Some 2) (Minimal_models.bound q);
  Alcotest.(check (option int)) "no bound under negation" None
    (Minimal_models.bound (Query.Not q))

let prop_minimal_models =
  QCheck.Test.make ~count:60 ~name:"minimal models are minimal and bounded"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let idb =
        Gen.random_idb ~seed ~schema:[ ("R", 1); ("S", 2) ] ~rows:3 ~codd:true
          ~uniform:true
      in
      (* Take one concrete completion as the complete database. *)
      let v =
        List.map (fun n -> (n, List.hd (Idb.domain_of idb n))) (Idb.nulls idb)
      in
      let db = Idb.apply idb v in
      let q = Query.Bcq (Cq.of_string "R(x), S(x,y)") in
      let models = Minimal_models.minimal_models q db in
      let bound = Option.get (Minimal_models.bound q) in
      List.for_all
        (fun m ->
          Minimal_models.is_minimal_model q db m && Cdb.cardinal m <= bound)
        models
      && (Query.eval q db = (models <> [])))

(* ------------------------------------------------------------------ *)
(* Inequality queries                                                  *)
(* ------------------------------------------------------------------ *)

let test_neq_eval () =
  let db = Cdb.of_list [ Cdb.fact "R" [ "a"; "a" ] ] in
  let q_eq = Query.Bcq (Cq.of_string "R(x,y)") in
  let q_neq = Query.Bcq_neq (Cq.of_string "R(x,y)", [ ("x", "y") ]) in
  Alcotest.(check bool) "plain holds" true (Query.eval q_eq db);
  Alcotest.(check bool) "neq fails on diagonal" false (Query.eval q_neq db);
  let db2 = Cdb.of_list [ Cdb.fact "R" [ "a"; "b" ] ] in
  Alcotest.(check bool) "neq holds off-diagonal" true (Query.eval q_neq db2);
  Alcotest.(check bool) "still monotone" true (Query.is_monotone q_neq)

let prop_neq_events =
  QCheck.Test.make ~count:50
    ~name:"KL events handle inequalities (I-E = brute)"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema:[ ("R", 2) ] ~rows:2 ~codd:(seed mod 2 = 0)
          ~uniform:true
      in
      let q = Query.Bcq_neq (Cq.of_string "R(x,y)", [ ("x", "y") ]) in
      QCheck.assume (Gen.manageable db);
      QCheck.assume
        (List.length (Incdb_approx.Karp_luby.events q db) <= 18);
      Nat.equal
        (Incdb_approx.Karp_luby.exact_via_events q db)
        (Brute.count_valuations q db))

let test_neq_estimator () =
  (* Off-diagonal matches: a non-trivial instance with exact answer
     total - (diagonal only) computable by brute force. *)
  let db =
    Idb.make
      (List.init 4 (fun i ->
           Idb.fact "R"
             [ Term.null (Printf.sprintf "a%d" i);
               Term.null (Printf.sprintf "b%d" i) ]))
      (Idb.Uniform [ "0"; "1"; "2" ])
  in
  let q = Query.Bcq_neq (Cq.of_string "R(x,y)", [ ("x", "y") ]) in
  let exact = Brute.count_valuations q db in
  let est = Incdb_approx.Karp_luby.estimate ~seed:3 ~samples:20_000 q db in
  let rel = abs_float (est -. Nat.to_float exact) /. Nat.to_float exact in
  Alcotest.(check bool) "estimator within 5%" true (rel < 0.05)

(* ------------------------------------------------------------------ *)
(* Zero-one law                                                        *)
(* ------------------------------------------------------------------ *)

let test_mu_diagonal () =
  (* For T = {R(n1, n2)} and q = R(x,x): mu_k = 1/k -> 0. *)
  let facts = [ Idb.fact "R" [ Term.null "n1"; Term.null "n2" ] ] in
  let q = Cq.of_string "R(x,x)" in
  List.iter
    (fun k ->
      Alcotest.check qn
        (Printf.sprintf "mu_%d = 1/%d" k k)
        (Qnum.of_ints 1 k)
        (Zero_one.mu q facts ~k))
    [ 1; 2; 3; 5; 8 ]

let test_mu_tends_to_one () =
  (* q = R(x,y) on a non-empty binary table is satisfied always: mu = 1. *)
  let facts = [ Idb.fact "R" [ Term.null "n1"; Term.null "n2" ] ] in
  let q = Cq.of_string "R(x,y)" in
  Alcotest.check qn "mu_4 = 1" Qnum.one (Zero_one.mu q facts ~k:4);
  (* q = R(x), S(x) on single-null unary tables: mu_k = 1/k -> 0. *)
  let facts2 = [ Idb.fact "R" [ Term.null "a" ]; Idb.fact "S" [ Term.null "b" ] ] in
  let q2 = Cq.of_string "R(x), S(x)" in
  Alcotest.check qn "mu_5 = 1/5" (Qnum.of_ints 1 5) (Zero_one.mu q2 facts2 ~k:5)

let test_mu_scan_monotone_query () =
  let facts =
    [ Idb.fact "R" [ Term.null "a" ]; Idb.fact "S" [ Term.null "b" ] ]
  in
  let q = Cq.of_string "R(x), S(x)" in
  let scan = Zero_one.scan q facts ~kmax:6 in
  Alcotest.(check int) "six points" 6 (List.length scan);
  (* decreasing toward 0 *)
  let values = List.map snd scan in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> Qnum.compare b a <= 0 && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "decreasing" true (decreasing values)

let test_mu_completions () =
  (* Example 2.2 flavored: distinct completions vs valuations differ. *)
  let facts =
    [
      Idb.fact "S" [ Term.const "1"; Term.null "n1" ];
      Idb.fact "S" [ Term.null "n2"; Term.const "1" ];
    ]
  in
  let q = Cq.of_string "S(x,x)" in
  let v = Zero_one.mu q facts ~k:2 in
  let c = Zero_one.mu_completions q facts ~k:2 in
  Alcotest.(check bool) "both defined in [0,1]" true
    (Qnum.compare v Qnum.zero >= 0 && Qnum.compare c Qnum.one <= 0)

(* ------------------------------------------------------------------ *)
(* Symbolic-domain counting via matrix exponentiation                  *)
(* ------------------------------------------------------------------ *)

let prop_symbolic_matches_explicit =
  QCheck.Test.make ~count:60
    ~name:"matrix-power #Val^u = explicit-domain algorithm"
    QCheck.(make (QCheck.Gen.pair (QCheck.Gen.int_range 1 1_000_000)
                    (QCheck.Gen.int_range 1 6)))
    (fun (seed, d) ->
      (* Constants drawn from a..e; the explicit domain must be disjoint
         from them to match the symbolic convention. *)
      let db0 =
        Gen.random_idb ~seed ~schema:[ ("R", 1); ("S", 1); ("T", 2) ] ~rows:2
          ~codd:(seed mod 2 = 0) ~uniform:true
      in
      let facts = Idb.facts db0 in
      let dom = List.init d (fun i -> Printf.sprintf "z%d" i) in
      let db = Idb.make facts (Idb.Uniform dom) in
      let q = Cq.of_string "R(x), S(x), T(u,v)" in
      Nat.equal
        (Count_val.uniform_symbolic q facts ~domain_size:d)
        (Count_val.uniform_naive q db))

let test_symbolic_closed_form () =
  (* q = R(x) ∧ S(x) with 2 R-nulls and 1 S-null over a symbolic domain
     of size d: #Val = d^3 - d (d-1)^2, checked at d = 10^6. *)
  let facts =
    [
      Idb.fact "R" [ Term.null "r1" ];
      Idb.fact "R" [ Term.null "r2" ];
      Idb.fact "S" [ Term.null "s1" ];
    ]
  in
  let q = Cq.of_string "R(x), S(x)" in
  let d = 1_000_000 in
  let dn = Nat.of_int d in
  let expected =
    Nat.sub (Nat.pow dn 3) (Nat.mul dn (Nat.pow (Nat.of_int (d - 1)) 2))
  in
  Gen.check_nat "closed form at d = 10^6" expected
    (Count_val.uniform_symbolic q facts ~domain_size:d);
  (* And mu at k = 10^9 is exact. *)
  let mu = Zero_one.mu_symbolic q facts ~k:1_000_000_000 in
  let k = Zint.of_int 1_000_000_000 in
  let expected_mu =
    (* (k^3 - k(k-1)^2) / k^3 = (2k - 1) / k^2 *)
    Qnum.make
      (Zint.sub (Zint.mul (Zint.of_int 2) k) Zint.one)
      (Zint.mul k k)
  in
  Alcotest.check qn "mu at k = 10^9" expected_mu mu

let prop_symbolic_comp =
  QCheck.Test.make ~count:50
    ~name:"symbolic-domain #Comp^u = explicit-domain algorithm"
    QCheck.(make (QCheck.Gen.pair (QCheck.Gen.int_range 1 1_000_000)
                    (QCheck.Gen.int_range 1 6)))
    (fun (seed, d) ->
      let db0 =
        Gen.random_idb ~seed ~schema:[ ("R", 1); ("S", 1) ] ~rows:3
          ~codd:(seed mod 2 = 0) ~uniform:true
      in
      let facts = Idb.facts db0 in
      let dom = List.init d (fun i -> Printf.sprintf "z%d" i) in
      let db = Idb.make facts (Idb.Uniform dom) in
      let q = Cq.of_string "R(x), S(x)" in
      Nat.equal
        (Count_comp.uniform_symbolic facts ~domain_size:d)
        (Count_comp.uniform_unary db)
      && Nat.equal
           (Count_comp.uniform_symbolic ~query:q facts ~domain_size:d)
           (Count_comp.uniform_unary ~query:q db))

let test_symbolic_comp_huge () =
  (* Equation (3) at d = 10^9 with 3 nulls: sum_{1<=i<=3} C(d, i). *)
  let facts =
    List.init 3 (fun i -> Idb.fact "R" [ Term.null (Printf.sprintf "n%d" i) ])
  in
  let d = 1_000_000_000 in
  let expected =
    Nat.sum (List.map (fun i -> Combinat.binomial d i) [ 1; 2; 3 ])
  in
  Gen.check_nat "Eq (3) at a billion values" expected
    (Count_comp.uniform_symbolic facts ~domain_size:d)

let test_symbolic_rejects () =
  Alcotest.check_raises "hard pattern rejected"
    (Invalid_argument "Count_val.uniform_symbolic: query contains a hard pattern")
    (fun () ->
      ignore
        (Count_val.uniform_symbolic (Cq.of_string "R(x,x)")
           [ Idb.fact "R" [ Term.null "a"; Term.null "b" ] ]
           ~domain_size:3))

(* ------------------------------------------------------------------ *)
(* Candidate-space completion counting                                 *)
(* ------------------------------------------------------------------ *)

let prop_comp_candidates =
  QCheck.Test.make ~count:60 ~name:"candidate enumeration = brute force"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema:[ ("R", 1); ("S", 1) ] ~rows:3 ~codd:true
          ~uniform:(seed mod 2 = 0)
      in
      QCheck.assume (Gen.manageable db);
      QCheck.assume (List.length (Comp_candidates.candidate_facts db) <= 14);
      Nat.equal (Comp_candidates.count db) (Brute.count_all_completions db)
      &&
      let q = Query.Bcq (Cq.of_string "R(x), S(x)") in
      Nat.equal
        (Comp_candidates.count ~query:q db)
        (Brute.count_completions q db))

let test_comp_candidates_beats_brute () =
  (* 30 unary nulls over {0,1}: 2^30 valuations but only 2 candidates. *)
  let db =
    Idb.make
      (List.init 30 (fun i -> Idb.fact "R" [ Term.null (Printf.sprintf "n%d" i) ]))
      (Idb.Uniform [ "0"; "1" ])
  in
  Alcotest.(check int) "tiny candidate universe" 2
    (List.length (Comp_candidates.candidate_facts db));
  (* completions: {0}, {1}, {0,1} *)
  check_nat "three completions" (Nat.of_int 3) (Comp_candidates.count db);
  (* and the Theorem 4.6 algorithm agrees *)
  check_nat "Thm 4.6 agrees" (Nat.of_int 3) (Count_comp.uniform_unary db)

let test_comp_candidates_rejects_naive () =
  let db =
    Idb.make
      [ Idb.fact "R" [ Term.null "n" ]; Idb.fact "S" [ Term.null "n" ] ]
      (Idb.Uniform [ "0" ])
  in
  Alcotest.check_raises "naive rejected"
    (Invalid_argument "Comp_candidates.count: requires a Codd table")
    (fun () -> ignore (Comp_candidates.count db))

(* ------------------------------------------------------------------ *)
(* Bounds for #Comp (Section 8 under-approximation)                    *)
(* ------------------------------------------------------------------ *)

let prop_comp_bounds_sound =
  QCheck.Test.make ~count:60 ~name:"lower <= #Comp <= upper"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema:[ ("R", 2); ("S", 1) ] ~rows:2
          ~codd:(seed mod 2 = 0) ~uniform:(seed mod 3 = 0)
      in
      QCheck.assume (Gen.manageable db);
      let q = Cq.of_string "R(x,y), S(y)" in
      let exact = Brute.count_completions (Query.Bcq q) db in
      let b = Comp_bounds.bounds ~seed:7 ~samples:200 q db in
      Nat.compare b.Comp_bounds.lower exact <= 0
      && Nat.compare exact b.Comp_bounds.upper <= 0)

let test_comp_bounds_meet () =
  (* On a tiny instance enough sampling witnesses every completion and
     the upper bound is the tractable #Val; bounds may or may not meet,
     but exact_within must be consistent with brute force when it answers. *)
  let db =
    Idb.make
      [ Idb.fact "R" [ Term.null "n" ] ]
      (Idb.Uniform [ "0"; "1"; "2" ])
  in
  let q = Cq.of_string "R(x)" in
  (match Comp_bounds.exact_within ~seed:3 ~samples:500 q db with
  | Some n ->
    Gen.check_nat "meets at the exact value" n
      (Brute.count_completions (Query.Bcq q) db)
  | None -> Alcotest.fail "bounds should meet on 3 completions");
  (* Unsatisfiable query: both bounds are zero. *)
  let q2 = Cq.of_string "R(x), S(x)" in
  let b = Comp_bounds.bounds ~seed:3 ~samples:50 q2 db in
  Gen.check_nat "lower zero" Nat.zero b.Comp_bounds.lower;
  Gen.check_nat "upper zero" Nat.zero b.Comp_bounds.upper

(* ------------------------------------------------------------------ *)
(* Answer support                                                      *)
(* ------------------------------------------------------------------ *)

let answers_db () =
  (* Office(p,c): ada in berlin; grace in berlin or paris. *)
  Idb.make
    [
      Idb.fact_of_strings "Office" [ "ada"; "berlin" ];
      Idb.fact_of_strings "Office" [ "grace"; "?gc" ];
    ]
    (Idb.Nonuniform [ ("gc", [ "berlin"; "paris" ]) ])

let test_answer_tuples () =
  let db =
    Cdb.of_list [ Cdb.fact "Office" [ "ada"; "berlin" ]; Cdb.fact "Office" [ "bob"; "paris" ] ]
  in
  let q = Cq.of_string "Office(p, c)" in
  Alcotest.(check (list (list string)))
    "projection to p"
    [ [ "ada" ]; [ "bob" ] ]
    (Answers.answer_tuples q ~free:[ "p" ] db);
  Alcotest.check_raises "bad free var"
    (Invalid_argument "Answers: z is not a variable of the query") (fun () ->
      ignore (Answers.answer_tuples q ~free:[ "z" ] db))

let test_supports () =
  let db = answers_db () in
  let q = Cq.of_string "Office(p, c)" in
  let supports = Answers.supports q ~free:[ "c" ] db in
  (* berlin answered in both worlds; paris only when gc = paris. *)
  let find city =
    List.find (fun (s : Answers.support) -> s.tuple = [ city ]) supports
  in
  check_nat "berlin support 2" (Nat.of_int 2) (find "berlin").Answers.count;
  check_nat "paris support 1" (Nat.of_int 1) (find "paris").Answers.count;
  (* sorted descending *)
  (match supports with
  | first :: _ -> Alcotest.(check (list string)) "top is berlin" [ "berlin" ] first.Answers.tuple
  | [] -> Alcotest.fail "no supports")

let test_best_and_certain () =
  let db = answers_db () in
  let q = Cq.of_string "Office(p, c)" in
  Alcotest.(check (list (list string)))
    "best answer is berlin"
    [ [ "berlin" ] ]
    (Answers.best_answers q ~free:[ "c" ] db);
  Alcotest.(check (list (list string)))
    "certain answer is berlin"
    [ [ "berlin" ] ]
    (Answers.certain_answers q ~free:[ "c" ] db);
  (* On the person column both are certain. *)
  Alcotest.(check (list (list string)))
    "both people certain"
    [ [ "ada" ]; [ "grace" ] ]
    (Answers.certain_answers q ~free:[ "p" ] db)

(* ------------------------------------------------------------------ *)
(* Bag semantics                                                       *)
(* ------------------------------------------------------------------ *)

let test_bag_semantics () =
  (* Example 2.1: S(n1,n1), S(a,n2): under set semantics the valuation
     n1=a, n2=a collapses to one fact; under bags it keeps two. *)
  let db =
    Idb.make
      [
        Idb.fact "S" [ Term.null "1"; Term.null "1" ];
        Idb.fact "S" [ Term.const "a"; Term.null "2" ];
      ]
      (Idb.Nonuniform [ ("1", [ "a"; "b" ]); ("2", [ "a"; "c" ]) ])
  in
  let set_count = Brute.count_all_completions db in
  let bag_count = Brute.count_all_completions_bag db in
  let total = Idb.total_valuations db in
  Alcotest.(check bool) "set <= bag" true (Nat.compare set_count bag_count <= 0);
  Alcotest.(check bool) "bag <= total" true (Nat.compare bag_count total <= 0);
  (* Here all 4 valuations give distinct bags. *)
  check_nat "four bag completions" (Nat.of_int 4) bag_count;
  check_nat "four set completions too" (Nat.of_int 4) set_count

let prop_bag_bounds =
  QCheck.Test.make ~count:50 ~name:"#Comp <= #Comp_bag <= total valuations"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema:[ ("R", 2) ] ~rows:3 ~codd:(seed mod 2 = 0)
          ~uniform:true
      in
      QCheck.assume (Gen.manageable db);
      let set_c = Brute.count_all_completions db in
      let bag_c = Brute.count_all_completions_bag db in
      Nat.compare set_c bag_c <= 0
      && Nat.compare bag_c (Idb.total_valuations db) <= 0)

(* ------------------------------------------------------------------ *)
(* The .idb text format                                                *)
(* ------------------------------------------------------------------ *)

let test_parser_roundtrip () =
  let db =
    Idb.make
      [
        Idb.fact_of_strings "S" [ "a"; "b" ];
        Idb.fact_of_strings "S" [ "?n1"; "a" ];
        Idb.fact_of_strings "R" [ "?n2" ];
      ]
      (Idb.Nonuniform [ ("n1", [ "a"; "b"; "c" ]); ("n2", [ "a" ]) ])
  in
  let reparsed = Idb_parser.of_string (Idb_parser.to_string db) in
  Alcotest.(check (list string)) "same nulls" (Idb.nulls db) (Idb.nulls reparsed);
  Alcotest.(check int) "same fact count"
    (List.length (Idb.facts db))
    (List.length (Idb.facts reparsed));
  Gen.check_nat "same valuation count" (Idb.total_valuations db)
    (Idb.total_valuations reparsed)

let test_parser_uniform_and_comments () =
  let db =
    Idb_parser.of_string
      "# a uniform database\ndom 0 1  # the shared domain\nR(?x, ?y)\n\nR(0, 1)\n"
  in
  Alcotest.(check bool) "uniform" true (Idb.is_uniform db);
  Alcotest.(check int) "two facts" 2 (List.length (Idb.facts db));
  Gen.check_nat "four valuations" (Nat.of_int 4) (Idb.total_valuations db)

let test_parser_errors () =
  let fails s =
    match Idb_parser.of_string s with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "mixed domains" true
    (fails "dom 0 1\ndom ?x 2 3\nR(?x)");
  Alcotest.(check bool) "duplicate uniform" true (fails "dom 0\ndom 1\n");
  Alcotest.(check bool) "missing null domain" true (fails "R(?x)\n");
  Alcotest.(check bool) "bad fact" true (fails "dom 0\nR(x\n");
  Alcotest.(check bool) "empty arg" true (fails "dom 0\nR(a,)\n")

(* ------------------------------------------------------------------ *)
(* Domain polynomials (the fixed-table structure behind Section 8)     *)
(* ------------------------------------------------------------------ *)

let test_domain_polynomial_open_case () =
  (* The open #Val^u_Cd query R(x,y) ∧ S(x,y) on a fixed Codd table:
     interpolate from small domains, predict beyond the sample, verify
     against brute force, then evaluate at d = 10^6. *)
  let q = Cq.of_string "R(x,y), S(x,y)" in
  let facts =
    [
      Idb.fact "R" [ Term.null "a"; Term.null "b" ];
      Idb.fact "S" [ Term.null "c"; Term.null "d" ];
    ]
  in
  let p = Domain_polynomial.interpolate q facts in
  Alcotest.(check bool) "degree at most N" true (Domain_polynomial.degree p <= 4);
  List.iter
    (fun d ->
      let predicted = Domain_polynomial.eval p ~d in
      let dom = List.init d (fun i -> Printf.sprintf "Â§%d" i) in
      let brute =
        Brute.count_valuations (Query.Bcq q)
          (Idb.make facts (Idb.Uniform dom))
      in
      Gen.check_nat (Printf.sprintf "prediction at d=%d" d) brute predicted)
    [ 6; 7; 8 ];
  (* The valuation satisfies q iff both tuples coincide: d^2 matches out
     of d^4, so the polynomial must be d^2 exactly... times nothing else:
     #Val = d^2. *)
  Gen.check_nat "closed form at 10^6"
    (Nat.pow (Nat.of_int 1_000_000) 2)
    (Domain_polynomial.eval p ~d:1_000_000)

let prop_domain_polynomial =
  QCheck.Test.make ~count:20 ~name:"interpolated polynomial predicts brute"
    QCheck.(make (QCheck.Gen.pair (QCheck.Gen.int_range 1 1_000_000)
                    (QCheck.Gen.int_range 1 1_000_000)))
    (fun (qseed, dseed) ->
      let q = Gen.random_sjfbcq ~seed:qseed in
      let db0 =
        Gen.random_idb ~seed:dseed ~schema:(Gen.schema_of_query q) ~rows:1
          ~codd:(dseed mod 2 = 0) ~uniform:true
      in
      let facts = Idb.facts db0 in
      let n =
        List.length (Idb.nulls db0)
      in
      QCheck.assume (n >= 1 && n <= 4);
      let p = Domain_polynomial.interpolate q facts in
      let d = n + 3 in
      let dom = List.init d (fun i -> Printf.sprintf "Â§%d" i) in
      let brute =
        Brute.count_valuations (Query.Bcq q) (Idb.make facts (Idb.Uniform dom))
      in
      Nat.equal (Domain_polynomial.eval p ~d) brute)

(* ------------------------------------------------------------------ *)
(* The shipped .idb corpus                                             *)
(* ------------------------------------------------------------------ *)

let testdata name =
  (* dune runtest runs in _build/default/test; dune exec runs from the
     workspace root — probe both. *)
  let candidates =
    [
      Filename.concat "testdata" name;
      Filename.concat "../testdata" name;
      Filename.concat "../../../testdata" name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail ("cannot locate testdata file " ^ name)

let test_corpus_files () =
  (* dune runs tests in _build/default/test; the corpus lives in the
     source tree, which dune mirrors into _build. *)
  let load name = Idb_parser.of_file (testdata name) in
  let fig1 = load "figure1.idb" in
  Gen.check_nat "figure1 #Val" (Nat.of_int 4)
    (Brute.count_valuations (Query.Bcq (Cq.of_string "S(x,x)")) fig1);
  Gen.check_nat "figure1 #Comp" (Nat.of_int 3)
    (Brute.count_completions (Query.Bcq (Cq.of_string "S(x,x)")) fig1);
  let census = load "census.idb" in
  Gen.check_nat "census support" (Nat.of_int 28)
    (Brute.count_valuations
       (Query.Bcq (Cq.of_string "Office(p,c), Site(c)"))
       census);
  let network = load "network.idb" in
  Gen.check_nat "network reliability" (Nat.of_int 4)
    (Brute.count_valuations
       (Incdb_datalog.Datalog.reachability ~from:"s" ~to_:"t")
       network);
  let pair = load "uniform_pair.idb" in
  Alcotest.(check bool) "uniform naive" true
    (Idb.is_uniform pair && not (Idb.is_codd pair));
  let _, c = Count_comp.count (Cq.of_string "R(x), S(x)") pair in
  Gen.check_nat "pair satisfying completions"
    (Brute.count_completions (Query.Bcq (Cq.of_string "R(x), S(x)")) pair)
    c

let test_estimator_ci () =
  let db =
    Idb.make
      (List.init 6 (fun i ->
           Idb.fact "R"
             [ Term.null (Printf.sprintf "a%d" i);
               Term.null (Printf.sprintf "b%d" i) ]))
      (Idb.Uniform [ "0"; "1"; "2" ])
  in
  let q = Query.Bcq (Cq.of_string "R(x,x)") in
  let exact =
    Nat.to_float (Brute.count_valuations q db)
  in
  let est, half = Incdb_approx.Karp_luby.estimate_with_ci ~seed:9 ~samples:20_000 q db in
  Alcotest.(check bool) "CI is positive" true (half > 0.);
  Alcotest.(check bool)
    (Printf.sprintf "CI covers the truth (est %.1f ± %.1f, exact %.1f)" est half exact)
    true
    (exact >= est -. half && exact <= est +. half)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_minimal_models;
        prop_neq_events;
        prop_comp_candidates;
        prop_bag_bounds;
        prop_symbolic_matches_explicit;
        prop_comp_bounds_sound;
        prop_symbolic_comp;
        prop_domain_polynomial;
      ]
  in
  Alcotest.run "extensions"
    [
      ( "minimal-models",
        [ Alcotest.test_case "basics" `Quick test_minimal_models_basic ] );
      ( "inequalities",
        [
          Alcotest.test_case "eval" `Quick test_neq_eval;
          Alcotest.test_case "estimator" `Quick test_neq_estimator;
        ] );
      ( "zero-one",
        [
          Alcotest.test_case "mu diagonal" `Quick test_mu_diagonal;
          Alcotest.test_case "mu limits" `Quick test_mu_tends_to_one;
          Alcotest.test_case "mu scan" `Quick test_mu_scan_monotone_query;
          Alcotest.test_case "mu completions" `Quick test_mu_completions;
        ] );
      ( "symbolic-domain",
        [
          Alcotest.test_case "closed form & huge k" `Quick test_symbolic_closed_form;
          Alcotest.test_case "shape rejection" `Quick test_symbolic_rejects;
          Alcotest.test_case "completions at 10^9" `Quick test_symbolic_comp_huge;
        ] );
      ( "comp-candidates",
        [
          Alcotest.test_case "beats brute" `Quick test_comp_candidates_beats_brute;
          Alcotest.test_case "rejects naive" `Quick test_comp_candidates_rejects_naive;
        ] );
      ( "comp-bounds",
        [ Alcotest.test_case "bounds meet" `Quick test_comp_bounds_meet ] );
      ( "answers",
        [
          Alcotest.test_case "tuples" `Quick test_answer_tuples;
          Alcotest.test_case "supports" `Quick test_supports;
          Alcotest.test_case "best & certain" `Quick test_best_and_certain;
        ] );
      ( "bag-semantics",
        [ Alcotest.test_case "example 2.1" `Quick test_bag_semantics ] );
      ( "domain-polynomial",
        [
          Alcotest.test_case "open case R(x,y)&S(x,y)" `Quick
            test_domain_polynomial_open_case;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "shipped .idb files" `Quick test_corpus_files;
          Alcotest.test_case "estimator CI" `Quick test_estimator_ci;
        ] );
      ( "idb-format",
        [
          Alcotest.test_case "round trip" `Quick test_parser_roundtrip;
          Alcotest.test_case "uniform & comments" `Quick test_parser_uniform_and_comments;
          Alcotest.test_case "errors" `Quick test_parser_errors;
        ] );
      ("properties", props);
    ]
