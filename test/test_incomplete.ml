open Incdb_bignum
open Incdb_relational
open Incdb_cq
open Incdb_incomplete

let check_nat = Gen.check_nat

let bcq s = Query.Bcq (Cq.of_string s)

(* ------------------------------------------------------------------ *)
(* Example 2.1                                                         *)
(* ------------------------------------------------------------------ *)

let example_2_1 () =
  Idb.make
    [
      Idb.fact "S" [ Term.null "1"; Term.null "1" ];
      Idb.fact "S" [ Term.const "a"; Term.null "2" ];
    ]
    (Idb.Nonuniform [ ("1", [ "a"; "b" ]); ("2", [ "a"; "c" ]) ])

let test_example_2_1 () =
  let d = example_2_1 () in
  Alcotest.(check bool) "not codd" false (Idb.is_codd d);
  Alcotest.(check (list string)) "nulls" [ "1"; "2" ] (Idb.nulls d);
  check_nat "4 valuations" (Nat.of_int 4) (Idb.total_valuations d);
  (* nu1: 1 -> b, 2 -> c *)
  let v1 = [ ("1", "b"); ("2", "c") ] in
  let c1 = Idb.apply d v1 in
  Alcotest.(check bool) "S(b,b) in nu1(T)" true
    (Cdb.mem (Cdb.fact "S" [ "b"; "b" ]) c1);
  Alcotest.(check bool) "S(a,c) in nu1(T)" true
    (Cdb.mem (Cdb.fact "S" [ "a"; "c" ]) c1);
  Alcotest.(check int) "two facts" 2 (Cdb.cardinal c1);
  (* nu2: both to a collapses the two facts into one. *)
  let c2 = Idb.apply d [ ("1", "a"); ("2", "a") ] in
  Alcotest.(check int) "set semantics collapse" 1 (Cdb.cardinal c2);
  (* mapping both to b is not a valuation: b not in dom(2). *)
  Alcotest.check_raises "outside domain"
    (Invalid_argument "Idb.apply: value b outside domain of null 2") (fun () ->
      ignore (Idb.apply d [ ("1", "b"); ("2", "b") ]))

(* ------------------------------------------------------------------ *)
(* Example 2.2 / Figure 1                                              *)
(* ------------------------------------------------------------------ *)

let example_2_2 () =
  Idb.make
    [
      Idb.fact "S" [ Term.const "a"; Term.const "b" ];
      Idb.fact "S" [ Term.null "1"; Term.const "a" ];
      Idb.fact "S" [ Term.const "a"; Term.null "2" ];
    ]
    (Idb.Nonuniform [ ("1", [ "a"; "b"; "c" ]); ("2", [ "a"; "b" ]) ])

let test_figure_1 () =
  let d = example_2_2 () in
  let q = bcq "S(x,x)" in
  check_nat "six valuations" (Nat.of_int 6) (Idb.total_valuations d);
  check_nat "#Val = 4" (Nat.of_int 4) (Brute.count_valuations q d);
  check_nat "#Comp = 3" (Nat.of_int 3) (Brute.count_completions q d);
  Alcotest.(check int) "five distinct completions" 5
    (List.length (Brute.completions d));
  check_nat "#Comp(all)" (Nat.of_int 5) (Brute.count_all_completions d);
  (* The individual verdicts of Figure 1, in lexicographic valuation
     order (a,a) (a,b) (b,a) (b,b) (c,a) (c,b). *)
  let expected = [ true; true; true; false; true; false ] in
  let verdicts = ref [] in
  Idb.iter_valuations d (fun v ->
      verdicts := Query.eval q (Idb.apply d v) :: !verdicts);
  Alcotest.(check (list bool)) "Figure 1 verdicts" expected (List.rev !verdicts)

(* ------------------------------------------------------------------ *)
(* Construction and enumeration invariants                             *)
(* ------------------------------------------------------------------ *)

let test_make_validation () =
  Alcotest.check_raises "missing domain"
    (Invalid_argument "Idb.make: no domain for null x") (fun () ->
      ignore (Idb.make [ Idb.fact "R" [ Term.null "x" ] ] (Idb.Nonuniform [])));
  Alcotest.check_raises "empty domain"
    (Invalid_argument "Idb.make: empty domain for null x") (fun () ->
      ignore
        (Idb.make [ Idb.fact "R" [ Term.null "x" ] ]
           (Idb.Nonuniform [ ("x", []) ])))

let test_fact_of_strings () =
  let f = Idb.fact_of_strings "R" [ "a"; "?x" ] in
  (match f.Idb.args.(0) with
  | Term.Const c -> Alcotest.(check string) "const" "a" c
  | Term.Null _ -> Alcotest.fail "expected const");
  match f.Idb.args.(1) with
  | Term.Null n -> Alcotest.(check string) "null" "x" n
  | Term.Const _ -> Alcotest.fail "expected null"

let test_uniform () =
  let d =
    Idb.make
      [ Idb.fact "R" [ Term.null "x" ]; Idb.fact "R" [ Term.null "y" ] ]
      (Idb.Uniform [ "0"; "1" ])
  in
  Alcotest.(check bool) "uniform" true (Idb.is_uniform d);
  Alcotest.(check bool) "codd" true (Idb.is_codd d);
  check_nat "4 valuations" (Nat.of_int 4) (Idb.total_valuations d);
  (* completions: {0}, {1}, {0,1} *)
  check_nat "3 completions" (Nat.of_int 3) (Brute.count_all_completions d)

let test_valuation_count_property () =
  let count = ref 0 in
  let d = example_2_2 () in
  Idb.iter_valuations d (fun _ -> incr count);
  Alcotest.(check int) "enumeration = total" 6 !count

(* ------------------------------------------------------------------ *)
(* Lemma B.2: completion membership for Codd tables                    *)
(* ------------------------------------------------------------------ *)

let test_is_completion_basic () =
  let d =
    Idb.make
      [
        Idb.fact "R" [ Term.null "x" ];
        Idb.fact "R" [ Term.null "y" ];
        Idb.fact "R" [ Term.const "a" ];
      ]
      (Idb.Nonuniform [ ("x", [ "a"; "b" ]); ("y", [ "b"; "c" ]) ])
  in
  let yes facts = Cdb.of_list (List.map (fun v -> Cdb.fact "R" [ v ]) facts) in
  Alcotest.(check bool) "a,b,c" true (Codd.is_completion d (yes [ "a"; "b"; "c" ]));
  Alcotest.(check bool) "a,b" true (Codd.is_completion d (yes [ "a"; "b" ]));
  Alcotest.(check bool) "a alone needs x=a,y=?" false
    (Codd.is_completion d (yes [ "a" ]));
  Alcotest.(check bool) "missing mandatory a" false
    (Codd.is_completion d (yes [ "b"; "c" ]));
  Alcotest.(check bool) "stray fact" false
    (Codd.is_completion d (yes [ "a"; "b"; "d" ]))

let prop_is_completion_matches_brute =
  QCheck.Test.make ~count:80 ~name:"Lemma B.2 matching test = brute force"
    QCheck.(make (QCheck.Gen.int_range 1 100_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema:[ ("R", 1); ("S", 2) ] ~rows:2 ~codd:true
          ~uniform:false
      in
      (* Candidate sets: actual completions (must accept) and mutations
         (should agree with brute force either way). *)
      let completions = Brute.completions db in
      List.for_all
        (fun c -> Codd.is_completion db c && Codd.is_completion_brute db c)
        completions
      &&
      (* mutate: drop a fact from some completion *)
      List.for_all
        (fun c ->
          match Cdb.to_list c with
          | [] -> true
          | f :: rest ->
            ignore f;
            let c' = Cdb.of_list rest in
            Codd.is_completion db c' = Codd.is_completion_brute db c')
        completions)

let prop_is_completion_naive =
  QCheck.Test.make ~count:60
    ~name:"naive-table backtracking membership = brute force"
    QCheck.(make (QCheck.Gen.int_range 1 100_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema:[ ("R", 2); ("S", 1) ] ~rows:2 ~codd:false
          ~uniform:(seed mod 2 = 0)
      in
      QCheck.assume (Gen.manageable ~limit:20_000 db);
      let completions = Brute.completions db in
      List.for_all (fun c -> Codd.is_completion_naive db c) completions
      && (* a mutated candidate must agree with brute force *)
      List.for_all
        (fun c ->
          match Cdb.to_list c with
          | [] -> true
          | _ :: rest ->
            let c' = Cdb.of_list rest in
            Codd.is_completion_naive db c' = Codd.is_completion_brute db c')
        completions)

let prop_count_query =
  QCheck.Test.make ~count:60 ~name:"count_query = brute on unions/inequalities"
    QCheck.(make (QCheck.Gen.pair (QCheck.Gen.int_range 1 100_000)
                    (QCheck.Gen.int_bound 2)))
    (fun (seed, which) ->
      let q =
        match which with
        | 0 -> Query.Union [ Cq.of_string "R(x,x)"; Cq.of_string "S(x)" ]
        | 1 -> Query.Bcq_neq (Cq.of_string "R(x,y)", [ ("x", "y") ])
        | _ -> Query.Not (Query.Bcq (Cq.of_string "R(x,y), S(x)"))
      in
      let db =
        Gen.random_idb ~seed ~schema:[ ("R", 2); ("S", 1) ] ~rows:2
          ~codd:(seed mod 2 = 0) ~uniform:(seed mod 3 = 0)
      in
      QCheck.assume (Gen.manageable db);
      let _, n = Incdb_core.Count_val.count_query q db in
      Incdb_bignum.Nat.equal n (Brute.count_valuations q db))

let prop_completion_count_bounds =
  QCheck.Test.make ~count:60
    ~name:"#Comp(q) <= #Val(q) <= total valuations"
    QCheck.(make (QCheck.Gen.int_range 1 100_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema:[ ("R", 2); ("S", 1) ] ~rows:2 ~codd:false
          ~uniform:(seed mod 2 = 0)
      in
      let q = bcq "R(x,y), S(x)" in
      let comp = Brute.count_completions q db in
      let value = Brute.count_valuations q db in
      let total = Idb.total_valuations db in
      Nat.compare comp value <= 0 && Nat.compare value total <= 0)

let () =
  Alcotest.run "incomplete"
    [
      ( "examples",
        [
          Alcotest.test_case "example 2.1" `Quick test_example_2_1;
          Alcotest.test_case "figure 1 (example 2.2)" `Quick test_figure_1;
        ] );
      ( "construction",
        [
          Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "fact_of_strings" `Quick test_fact_of_strings;
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "enumeration" `Quick test_valuation_count_property;
        ] );
      ( "codd",
        [ Alcotest.test_case "is_completion" `Quick test_is_completion_basic ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_is_completion_matches_brute;
            prop_is_completion_naive;
            prop_count_query;
            prop_completion_count_bounds;
          ] );
    ]
