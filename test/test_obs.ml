(* Tests for the Incdb_obs observability layer: span nesting, counter
   behaviour under exceptions, the disabled no-op mode, histogram
   bucketing and percentiles, the flight-recorder ring buffers, the
   Chrome/Prometheus exports and the JSON export round-trip. *)

open Incdb_obs

(* Every test starts from a clean, enabled registry and leaves the
   switch off so the other suites keep measuring the no-op path. *)
let with_fresh_obs f =
  Export.reset ();
  Runtime.set_enabled true;
  Fun.protect f ~finally:(fun () -> Runtime.set_enabled false)

let test_span_nesting () =
  with_fresh_obs (fun () ->
      Trace.with_span "a" (fun () ->
          Alcotest.(check (option string))
            "path of a" (Some "a") (Trace.current_path ());
          Trace.with_span "b" (fun () ->
              Alcotest.(check (option string))
                "path of a/b" (Some "a/b") (Trace.current_path ()));
          Trace.with_span "c" (fun () -> ());
          Trace.with_span "c" (fun () -> ()));
      let paths = List.map (fun s -> s.Trace.span_path) (Trace.spans ()) in
      (* Spans are recorded when they close, so children appear before
         their parent in first-seen order. *)
      Alcotest.(check (list string)) "paths" [ "a/b"; "a/c"; "a" ] paths;
      (match Trace.find "a/c" with
      | Some s -> Alcotest.(check int) "a/c calls" 2 s.Trace.span_calls
      | None -> Alcotest.fail "span a/c was not recorded");
      match Trace.find "a" with
      | Some s -> Alcotest.(check int) "a calls" 1 s.Trace.span_calls
      | None -> Alcotest.fail "span a was not recorded")

let test_exception_keeps_totals () =
  with_fresh_obs (fun () ->
      let c = Metrics.counter "test.obs_exn" in
      (try
         Trace.with_span "outer" (fun () ->
             Trace.with_span "boom" (fun () ->
                 Metrics.incr c ~by:3;
                 raise Exit))
       with Exit -> ());
      Alcotest.(check int) "counter kept its increments" 3 (Metrics.value c);
      (match Trace.find "outer/boom" with
      | Some s ->
        Alcotest.(check int) "raising span still recorded" 1 s.Trace.span_calls
      | None -> Alcotest.fail "raising span was not recorded");
      (* The span stack must have unwound: new spans are roots again. *)
      Trace.with_span "after" (fun () ->
          Alcotest.(check (option string))
            "stack unwound" (Some "after") (Trace.current_path ())))

let test_disabled_noop () =
  Export.reset ();
  Runtime.set_enabled false;
  let c = Metrics.counter "test.obs_noop" in
  Metrics.incr c;
  Metrics.set_gauge "test.obs_noop_gauge" 1.0;
  Trace.with_span "ghost" (fun () -> Metrics.incr c ~by:10);
  Events.instant "ghost_event";
  Alcotest.(check int) "counter untouched" 0 (Metrics.value c);
  (* Gauges register eagerly (like counters, so they export at zero),
     but the disabled set is still a no-op. *)
  Alcotest.(check (option (float 0.))) "gauge registered, value untouched"
    (Some 0.0)
    (Metrics.gauge_value "test.obs_noop_gauge");
  Alcotest.(check bool) "no span recorded" true (Trace.find "ghost" = None);
  Alcotest.(check int) "span registry empty" 0 (List.length (Trace.spans ()));
  Alcotest.(check int) "no ring created" 0 (List.length (Events.snapshot ()))

let test_histogram_buckets () =
  with_fresh_obs (fun () ->
      let h =
        Metrics.histogram ~lower:10. ~factor:10. ~nbuckets:3 "test.obs_hist"
      in
      List.iter (Metrics.observe h) [ 5.; 50.; 500.; 5_000_000. ];
      let snap = List.assoc "test.obs_hist" (Metrics.histograms_snapshot ()) in
      Alcotest.(check int) "count" 4 snap.Metrics.count;
      Alcotest.(check (float 1e-6)) "sum" 5_000_555. snap.Metrics.sum;
      Alcotest.(check (list (pair (float 1e-6) int)))
        "bucket counts"
        [ (10., 1); (100., 1); (1000., 1); (infinity, 1) ]
        snap.Metrics.bucket_counts)

let get_exn what = function
  | Some v -> v
  | None -> Alcotest.fail ("missing " ^ what)

let test_gauge_handles () =
  with_fresh_obs (fun () ->
      let g = Metrics.gauge "test.obs_gauge_handle" in
      (* Eager registration: the gauge exports at zero before any set. *)
      Alcotest.(check (option (float 0.))) "registered at zero" (Some 0.0)
        (Metrics.gauge_value "test.obs_gauge_handle");
      Metrics.set g 2.5;
      Alcotest.(check (float 0.)) "set through the handle" 2.5
        (Metrics.gauge_read g);
      (* The legacy name-keyed setter hits the same cell. *)
      Metrics.set_gauge "test.obs_gauge_handle" 7.25;
      Alcotest.(check (float 0.)) "name-keyed set shares the cell" 7.25
        (Metrics.gauge_read g))

let test_percentiles () =
  with_fresh_obs (fun () ->
      let h =
        Metrics.histogram ~lower:10. ~factor:10. ~nbuckets:3 "test.obs_pct"
      in
      (* 50 observations in (0,10], 40 in (10,100], 10 in (100,1000]:
         p50 sits exactly at the first bucket bound, p90 at the second,
         p99 interpolates 9/10 into the third. *)
      for _ = 1 to 50 do
        Metrics.observe h 5.
      done;
      for _ = 1 to 40 do
        Metrics.observe h 50.
      done;
      for _ = 1 to 10 do
        Metrics.observe h 500.
      done;
      let snap = List.assoc "test.obs_pct" (Metrics.histograms_snapshot ()) in
      Alcotest.(check (float 1e-9)) "p50" 10. (Metrics.percentile snap 0.50);
      Alcotest.(check (float 1e-9)) "p90" 100. (Metrics.percentile snap 0.90);
      Alcotest.(check (float 1e-9)) "p99" 910. (Metrics.percentile snap 0.99);
      (* Mass in the overflow bucket degrades to the largest finite
         bound rather than inventing an infinite quantile. *)
      let o =
        Metrics.histogram ~lower:10. ~factor:10. ~nbuckets:3 "test.obs_pct_of"
      in
      Metrics.observe o 1e9;
      let osnap =
        List.assoc "test.obs_pct_of" (Metrics.histograms_snapshot ())
      in
      Alcotest.(check (float 1e-9)) "overflow p99" 1000.
        (Metrics.percentile osnap 0.99);
      (* Empty histogram: every quantile is 0. *)
      let e =
        Metrics.histogram ~lower:10. ~factor:10. ~nbuckets:3 "test.obs_pct_e"
      in
      ignore e;
      let esnap =
        List.assoc "test.obs_pct_e" (Metrics.histograms_snapshot ())
      in
      Alcotest.(check (float 1e-9)) "empty p50" 0.
        (Metrics.percentile esnap 0.50))

let test_ring_overflow () =
  with_fresh_obs (fun () ->
      let saved = !Events.capacity in
      Fun.protect
        ~finally:(fun () ->
          Events.set_capacity saved;
          Events.reset ())
        (fun () ->
          Events.set_capacity 8;
          Events.reset ();
          for i = 1 to 20 do
            Events.instant (Printf.sprintf "e%d" i)
          done;
          Alcotest.(check int) "exact drop count" 12 (Events.dropped ());
          Alcotest.(check int) "drop counter matches" 12
            (Metrics.value Events.dropped_counter);
          match Events.snapshot () with
          | [ (_, events) ] ->
            Alcotest.(check (list string))
              "newest events kept, oldest first"
              (List.init 8 (fun i -> Printf.sprintf "e%d" (13 + i)))
              (List.map (fun e -> e.Events.name) events)
          | lanes ->
            Alcotest.fail
              (Printf.sprintf "expected one lane, got %d" (List.length lanes))))

let test_reset_mid_span () =
  with_fresh_obs (fun () ->
      (* A reset landing inside open spans (incdbd reusing the obs layer
         between requests) must neither corrupt the registries nor leak
         the pre-reset stack into post-reset paths. *)
      Trace.with_span "outer" (fun () ->
          Events.with_span "outer_ev" (fun () ->
              Export.reset ();
              Alcotest.(check (option string))
                "stale stack discarded" None (Trace.current_path ());
              Trace.with_span "fresh" (fun () ->
                  Alcotest.(check (option string))
                    "post-reset spans are roots" (Some "fresh")
                    (Trace.current_path ()))));
      (* The straddling span skipped recording; the post-reset one
         recorded at its root path. *)
      Alcotest.(check bool) "straddling span dropped" true
        (Trace.find "outer" = None);
      Alcotest.(check bool) "post-reset span recorded" true
        (Trace.find "fresh" <> None);
      (* New spans keep working on the fresh generation. *)
      Trace.with_span "after" (fun () -> ());
      Alcotest.(check bool) "registry usable after reset" true
        (Trace.find "after" <> None))

let test_chrome_lanes () =
  with_fresh_obs (fun () ->
      Events.reset ();
      (* Enough tasks that with 4 workers at least one spawned domain
         claims a chunk; every worker emits its lane-covering span
         regardless. *)
      let tasks = List.init 32 (fun i () -> i * i) in
      let (_ : int list) = Incdb_par.Pool.run ~jobs:4 tasks in
      let j = Chrome.to_json () in
      let events =
        get_exn "traceEvents"
          (Option.bind (Json.member "traceEvents" j) Json.to_list)
      in
      let lanes = Hashtbl.create 8 in
      let stacks = Hashtbl.create 8 in
      List.iter
        (fun e ->
          let ph =
            match Json.member "ph" e with
            | Some (Json.String s) -> s
            | _ -> Alcotest.fail "event without ph"
          in
          if ph <> "M" then begin
            let tid =
              get_exn "tid" (Option.bind (Json.member "tid" e) Json.to_int)
            in
            let name =
              match Json.member "name" e with
              | Some (Json.String s) -> s
              | _ -> Alcotest.fail "event without name"
            in
            Hashtbl.replace lanes tid ();
            let stack =
              Option.value ~default:[] (Hashtbl.find_opt stacks tid)
            in
            match ph with
            | "B" -> Hashtbl.replace stacks tid (name :: stack)
            | "E" -> (
              match stack with
              | top :: rest when top = name -> Hashtbl.replace stacks tid rest
              | _ -> Alcotest.fail ("unbalanced end of " ^ name))
            | _ -> ()
          end)
        events;
      Alcotest.(check bool) "at least two domain lanes" true
        (Hashtbl.length lanes >= 2);
      Hashtbl.iter
        (fun tid stack ->
          if stack <> [] then
            Alcotest.fail (Printf.sprintf "lane %d left spans open" tid))
        stacks)

let test_prom_format () =
  with_fresh_obs (fun () ->
      let c = Metrics.counter "test.obs_prom" in
      Metrics.incr c ~by:3;
      let g = Metrics.gauge "test.obs_prom_gauge" in
      Metrics.set g 1.5;
      let h = Metrics.histogram "test.obs_prom_hist" in
      Metrics.observe h 42.;
      Trace.with_span "prom_span" (fun () -> ());
      let text = Prom.to_string () in
      let contains sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length text
          && (String.sub text i n = sub || go (i + 1))
        in
        go 0
      in
      List.iter
        (fun (what, needle) ->
          Alcotest.(check bool) what true (contains needle))
        [
          ("counter line", "incdb_test_obs_prom_total 3");
          ("counter type", "# TYPE incdb_test_obs_prom_total counter");
          ("gauge line", "incdb_test_obs_prom_gauge 1.5");
          ("histogram inf bucket", "incdb_test_obs_prom_hist_bucket{le=\"+Inf\"} 1");
          ("histogram count", "incdb_test_obs_prom_hist_count 1");
          ("span family", "incdb_span_calls_total{path=\"prom_span\"} 1");
        ])

let test_json_round_trip () =
  with_fresh_obs (fun () ->
      let c = Metrics.counter "test.obs_rt" in
      Metrics.incr c ~by:7;
      Metrics.set_gauge "test.obs_rt_gauge" 2.5;
      let h = Metrics.histogram "test.obs_rt_hist" in
      Metrics.observe h 1_500.;
      Trace.with_span "outer" (fun () -> Trace.with_span "inner" (fun () -> ()));
      let text = Json.to_string ~indent:2 (Export.to_json ()) in
      match Json.of_string text with
      | Error msg -> Alcotest.fail ("export does not parse back: " ^ msg)
      | Ok j ->
        Alcotest.(check int) "schema_version" 2
          (get_exn "schema_version"
             (Option.bind (Json.member "schema_version" j) Json.to_int));
        let counters = get_exn "counters" (Json.member "counters" j) in
        Alcotest.(check int) "counter value" 7
          (get_exn "test.obs_rt"
             (Option.bind (Json.member "test.obs_rt" counters) Json.to_int));
        let spans =
          get_exn "spans"
            (Option.bind (Json.member "spans" j) Json.to_list)
        in
        let outer =
          get_exn "outer span"
            (List.find_opt
               (fun s -> Json.member "name" s = Some (Json.String "outer"))
               spans)
        in
        let children =
          get_exn "outer children"
            (Option.bind (Json.member "children" outer) Json.to_list)
        in
        Alcotest.(check int) "outer has one child" 1 (List.length children);
        let inner = List.hd children in
        Alcotest.(check bool) "child path" true
          (Json.member "path" inner = Some (Json.String "outer/inner"));
        let wall =
          get_exn "wall_ns"
            (Option.bind (Json.member "wall_ns" inner) Json.to_int)
        in
        Alcotest.(check bool) "wall_ns non-negative" true (wall >= 0);
        let hists = get_exn "histograms" (Json.member "histograms" j) in
        let hist =
          get_exn "test.obs_rt_hist" (Json.member "test.obs_rt_hist" hists)
        in
        Alcotest.(check int) "histogram count" 1
          (get_exn "count" (Option.bind (Json.member "count" hist) Json.to_int)))

let test_export_reset () =
  with_fresh_obs (fun () ->
      let c = Metrics.counter "test.obs_reset" in
      Metrics.incr c ~by:5;
      Trace.with_span "gone" (fun () -> ());
      Export.reset ();
      Alcotest.(check int) "counter zeroed" 0 (Metrics.value c);
      Alcotest.(check int) "spans cleared" 0 (List.length (Trace.spans ()));
      (* Registration survives: the counter still exports at zero. *)
      Alcotest.(check bool) "registration kept" true
        (List.mem_assoc "test.obs_reset" (Metrics.counters_snapshot ())))

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_exception_keeps_totals;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "gauge handles" `Quick test_gauge_handles;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
        ] );
      ( "events",
        [
          Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
          Alcotest.test_case "reset mid-span" `Quick test_reset_mid_span;
          Alcotest.test_case "chrome lanes" `Quick test_chrome_lanes;
        ] );
      ( "export",
        [
          Alcotest.test_case "json round trip" `Quick test_json_round_trip;
          Alcotest.test_case "prometheus format" `Quick test_prom_format;
          Alcotest.test_case "reset" `Quick test_export_reset;
        ] );
    ]
