(* Tests for the Incdb_obs observability layer: span nesting, counter
   behaviour under exceptions, the disabled no-op mode, histogram
   bucketing and the JSON export round-trip. *)

open Incdb_obs

(* Every test starts from a clean, enabled registry and leaves the
   switch off so the other suites keep measuring the no-op path. *)
let with_fresh_obs f =
  Export.reset ();
  Runtime.set_enabled true;
  Fun.protect f ~finally:(fun () -> Runtime.set_enabled false)

let test_span_nesting () =
  with_fresh_obs (fun () ->
      Trace.with_span "a" (fun () ->
          Alcotest.(check (option string))
            "path of a" (Some "a") (Trace.current_path ());
          Trace.with_span "b" (fun () ->
              Alcotest.(check (option string))
                "path of a/b" (Some "a/b") (Trace.current_path ()));
          Trace.with_span "c" (fun () -> ());
          Trace.with_span "c" (fun () -> ()));
      let paths = List.map (fun s -> s.Trace.span_path) (Trace.spans ()) in
      (* Spans are recorded when they close, so children appear before
         their parent in first-seen order. *)
      Alcotest.(check (list string)) "paths" [ "a/b"; "a/c"; "a" ] paths;
      (match Trace.find "a/c" with
      | Some s -> Alcotest.(check int) "a/c calls" 2 s.Trace.span_calls
      | None -> Alcotest.fail "span a/c was not recorded");
      match Trace.find "a" with
      | Some s -> Alcotest.(check int) "a calls" 1 s.Trace.span_calls
      | None -> Alcotest.fail "span a was not recorded")

let test_exception_keeps_totals () =
  with_fresh_obs (fun () ->
      let c = Metrics.counter "test.obs_exn" in
      (try
         Trace.with_span "outer" (fun () ->
             Trace.with_span "boom" (fun () ->
                 Metrics.incr c ~by:3;
                 raise Exit))
       with Exit -> ());
      Alcotest.(check int) "counter kept its increments" 3 (Metrics.value c);
      (match Trace.find "outer/boom" with
      | Some s ->
        Alcotest.(check int) "raising span still recorded" 1 s.Trace.span_calls
      | None -> Alcotest.fail "raising span was not recorded");
      (* The span stack must have unwound: new spans are roots again. *)
      Trace.with_span "after" (fun () ->
          Alcotest.(check (option string))
            "stack unwound" (Some "after") (Trace.current_path ())))

let test_disabled_noop () =
  Export.reset ();
  Runtime.set_enabled false;
  let c = Metrics.counter "test.obs_noop" in
  Metrics.incr c;
  Metrics.set_gauge "test.obs_noop_gauge" 1.0;
  Trace.with_span "ghost" (fun () -> Metrics.incr c ~by:10);
  Alcotest.(check int) "counter untouched" 0 (Metrics.value c);
  Alcotest.(check bool) "gauge not created" true
    (Metrics.gauge_value "test.obs_noop_gauge" = None);
  Alcotest.(check bool) "no span recorded" true (Trace.find "ghost" = None);
  Alcotest.(check int) "span registry empty" 0 (List.length (Trace.spans ()))

let test_histogram_buckets () =
  with_fresh_obs (fun () ->
      let h =
        Metrics.histogram ~lower:10. ~factor:10. ~nbuckets:3 "test.obs_hist"
      in
      List.iter (Metrics.observe h) [ 5.; 50.; 500.; 5_000_000. ];
      let snap = List.assoc "test.obs_hist" (Metrics.histograms_snapshot ()) in
      Alcotest.(check int) "count" 4 snap.Metrics.count;
      Alcotest.(check (float 1e-6)) "sum" 5_000_555. snap.Metrics.sum;
      Alcotest.(check (list (pair (float 1e-6) int)))
        "bucket counts"
        [ (10., 1); (100., 1); (1000., 1); (infinity, 1) ]
        snap.Metrics.bucket_counts)

let get_exn what = function
  | Some v -> v
  | None -> Alcotest.fail ("missing " ^ what)

let test_json_round_trip () =
  with_fresh_obs (fun () ->
      let c = Metrics.counter "test.obs_rt" in
      Metrics.incr c ~by:7;
      Metrics.set_gauge "test.obs_rt_gauge" 2.5;
      let h = Metrics.histogram "test.obs_rt_hist" in
      Metrics.observe h 1_500.;
      Trace.with_span "outer" (fun () -> Trace.with_span "inner" (fun () -> ()));
      let text = Json.to_string ~indent:2 (Export.to_json ()) in
      match Json.of_string text with
      | Error msg -> Alcotest.fail ("export does not parse back: " ^ msg)
      | Ok j ->
        Alcotest.(check int) "schema_version" 1
          (get_exn "schema_version"
             (Option.bind (Json.member "schema_version" j) Json.to_int));
        let counters = get_exn "counters" (Json.member "counters" j) in
        Alcotest.(check int) "counter value" 7
          (get_exn "test.obs_rt"
             (Option.bind (Json.member "test.obs_rt" counters) Json.to_int));
        let spans =
          get_exn "spans"
            (Option.bind (Json.member "spans" j) Json.to_list)
        in
        let outer =
          get_exn "outer span"
            (List.find_opt
               (fun s -> Json.member "name" s = Some (Json.String "outer"))
               spans)
        in
        let children =
          get_exn "outer children"
            (Option.bind (Json.member "children" outer) Json.to_list)
        in
        Alcotest.(check int) "outer has one child" 1 (List.length children);
        let inner = List.hd children in
        Alcotest.(check bool) "child path" true
          (Json.member "path" inner = Some (Json.String "outer/inner"));
        let wall =
          get_exn "wall_ns"
            (Option.bind (Json.member "wall_ns" inner) Json.to_int)
        in
        Alcotest.(check bool) "wall_ns non-negative" true (wall >= 0);
        let hists = get_exn "histograms" (Json.member "histograms" j) in
        let hist =
          get_exn "test.obs_rt_hist" (Json.member "test.obs_rt_hist" hists)
        in
        Alcotest.(check int) "histogram count" 1
          (get_exn "count" (Option.bind (Json.member "count" hist) Json.to_int)))

let test_export_reset () =
  with_fresh_obs (fun () ->
      let c = Metrics.counter "test.obs_reset" in
      Metrics.incr c ~by:5;
      Trace.with_span "gone" (fun () -> ());
      Export.reset ();
      Alcotest.(check int) "counter zeroed" 0 (Metrics.value c);
      Alcotest.(check int) "spans cleared" 0 (List.length (Trace.spans ()));
      (* Registration survives: the counter still exports at zero. *)
      Alcotest.(check bool) "registration kept" true
        (List.mem_assoc "test.obs_reset" (Metrics.counters_snapshot ())))

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_exception_keeps_totals;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
        ] );
      ( "export",
        [
          Alcotest.test_case "json round trip" `Quick test_json_round_trip;
          Alcotest.test_case "reset" `Quick test_export_reset;
        ] );
    ]
