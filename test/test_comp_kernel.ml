(* Tests for the #Comp elimination kernel (Comp_kernel) and its
   dispatcher arm: hand-checked Codd and non-Codd instances (including
   the branch-overlap case where summing per-branch counts would
   overcount), typed-limit units for every Infeasible variant, the
   bag-boundary spill path, and qcheck agreement with the candidate
   enumerator and the parallel brute-force oracle on random Codd and
   non-Codd tables — counts and the deterministic elim counters
   bit-identical across jobs {1,2,4}, mask int/wide and cache on/off. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_core
module Brute = Incdb_par.Brute_par
module Metrics = Incdb_obs.Metrics

let check_nat = Gen.check_nat

(* The elim counters that must not depend on jobs / mask / cache (the
   cache hit/miss counters are excluded by design). *)
let elim_counters =
  [
    "comp_kernel.elim_dispatch";
    "comp_kernel.cond_branches";
    "comp_kernel.elim_states";
    "comp_kernel.elim_spilled_messages";
  ]

let with_elim_deltas f =
  let v n = Metrics.value (Metrics.counter n) in
  let before = List.map v elim_counters in
  let was = Incdb_obs.Runtime.enabled () in
  Incdb_obs.Runtime.set_enabled true;
  let y = Fun.protect ~finally:(fun () -> Incdb_obs.Runtime.set_enabled was) f in
  (y, List.map2 (fun n b -> (n, v n - b)) elim_counters before)

(* ------------------------------------------------------------------ *)
(* Hand-checked instances                                              *)
(* ------------------------------------------------------------------ *)

(* Codd, one unary relation, n nulls over a d-value domain: the number
   of completions is sum_{k=1..n} C(d,k). *)
let test_codd_one_unary () =
  let db =
    Idb.make
      [
        Idb.fact "R" [ Term.null "n0" ];
        Idb.fact "R" [ Term.null "n1" ];
      ]
      (Idb.Uniform [ "v0"; "v1"; "v2" ])
  in
  check_nat "C(3,1) + C(3,2)" (Nat.of_int 6) (Comp_kernel.count db);
  let brute = Brute.count_all_completions db in
  check_nat "matches brute force" brute (Comp_kernel.count db)

(* Non-Codd: R(n), S(n) over {0,1} — the two completions are
   {R(0),S(0)} and {R(1),S(1)}. *)
let shared_pair () =
  Idb.make
    [ Idb.fact "R" [ Term.null "n" ]; Idb.fact "S" [ Term.null "n" ] ]
    (Idb.Nonuniform [ ("n", [ "0"; "1" ]) ])

let test_noncodd_shared_pair () =
  let db = shared_pair () in
  check_nat "two completions" Nat.two (Comp_kernel.count db);
  let brute = Brute.count_all_completions db in
  check_nat "matches brute force" brute (Comp_kernel.count db)

(* The union-overcount trap: R(n), R(m), S(n), S(m), both nulls shared
   over {0,1}.  The assignments (n,m) = (0,1) and (1,0) produce the
   same completion {R(0),R(1),S(0),S(1)}, so summing per-branch counts
   would give 4; the joint sweep must give 3. *)
let test_noncodd_branch_overlap () =
  let db =
    Idb.make
      [
        Idb.fact "R" [ Term.null "n" ];
        Idb.fact "R" [ Term.null "m" ];
        Idb.fact "S" [ Term.null "n" ];
        Idb.fact "S" [ Term.null "m" ];
      ]
      (Idb.Nonuniform [ ("n", [ "0"; "1" ]); ("m", [ "0"; "1" ]) ])
  in
  check_nat "three distinct completions" (Nat.of_int 3) (Comp_kernel.count db);
  let brute = Brute.count_all_completions db in
  check_nat "matches brute force" brute (Comp_kernel.count db)

(* A repeated null inside one fact must condition, not ground the
   off-diagonal: R(n,n) over {0,1} has exactly the two diagonal
   completions. *)
let test_noncodd_diagonal () =
  let db =
    Idb.make
      [ Idb.fact "R" [ Term.null "n"; Term.null "n" ] ]
      (Idb.Nonuniform [ ("n", [ "0"; "1" ]) ])
  in
  check_nat "diagonal only" Nat.two (Comp_kernel.count db);
  match Comp_kernel.plan db with
  | Error i -> Alcotest.failf "plan refused: %s" (Comp_kernel.infeasible_to_string i)
  | Ok p ->
    Alcotest.(check int) "two candidates" 2 (Comp_kernel.plan_universe p);
    Alcotest.(check int) "two branches" 2 (Comp_kernel.plan_branches p)

(* Queries through the lineage: the Figure 1 instance with S(x,x). *)
let test_query_figure1 () =
  let db =
    Idb.make
      [
        Idb.fact_of_strings "S" [ "a"; "b" ];
        Idb.fact_of_strings "S" [ "?n1"; "a" ];
        Idb.fact_of_strings "S" [ "a"; "?n2" ];
      ]
      (Idb.Nonuniform [ ("n1", [ "a"; "b"; "c" ]); ("n2", [ "a"; "b" ]) ])
  in
  let q = Cq.make [ Cq.atom "S" [ "x"; "x" ] ] in
  let _, expected = Count_comp.count ~comp_elim:Comp_kernel.Off q db in
  let got = Comp_kernel.count ~query:(Query.Bcq q) db in
  check_nat "kernel matches the enumerator" expected got;
  (* Negation compiles through the same lineage with the flag flipped:
     the two counts partition the completion space. *)
  let all = Comp_kernel.count db in
  let negated = Comp_kernel.count ~query:(Query.Not (Query.Bcq q)) db in
  check_nat "q and not-q partition the completions" all (Nat.add got negated)

(* Empty table: exactly one completion (the empty database), which
   satisfies no positive query. *)
let test_empty_table () =
  let db = Idb.make [] (Idb.Uniform [ "v" ]) in
  check_nat "one empty completion" Nat.one (Comp_kernel.count db);
  let q = Cq.make [ Cq.atom "R" [ "x" ] ] in
  check_nat "empty completion fails R(x)" Nat.zero
    (Comp_kernel.count ~query:(Query.Bcq q) db)

(* ------------------------------------------------------------------ *)
(* Typed limits                                                        *)
(* ------------------------------------------------------------------ *)

let test_limits () =
  let db = shared_pair () in
  (match Comp_kernel.plan ~width_bound:0 db with
  | Error (Comp_kernel.Width_exceeded { bound = 0; _ }) -> ()
  | Error i ->
    Alcotest.failf "expected Width_exceeded, got %s"
      (Comp_kernel.infeasible_to_string i)
  | Ok _ -> Alcotest.fail "expected Width_exceeded, got a plan");
  (match Comp_kernel.plan ~max_branches:1 db with
  | Error (Comp_kernel.Too_many_branches { limit = 1; _ }) -> ()
  | _ -> Alcotest.fail "expected Too_many_branches");
  (match Comp_kernel.plan ~max_universe:1 db with
  | Error (Comp_kernel.Universe_too_large { limit = 1; _ }) -> ()
  | _ -> Alcotest.fail "expected Universe_too_large");
  (match Comp_kernel.count ~max_states:1 db with
  | exception Comp_kernel.Infeasible (Comp_kernel.Too_many_states { limit = 1; _ })
    -> ()
  | _ -> Alcotest.fail "expected Too_many_states");
  (* The same width failure raised through the convenience wrapper. *)
  match Comp_kernel.count ~width_bound:0 db with
  | exception Comp_kernel.Infeasible (Comp_kernel.Width_exceeded _) -> ()
  | _ -> Alcotest.fail "expected Infeasible through count"

(* Dispatcher: --comp-width-bound 0 under Auto must fall back (typed
   failure at plan time), and a mid-run state blowup under Auto must
   fall back to brute force with the same count. *)
let test_dispatcher_fallback () =
  let db = shared_pair () in
  let algo, n = Count_comp.count_all ~comp_width_bound:0 db in
  Alcotest.(check string)
    "width bound 0 falls back to brute force"
    (Count_comp.algorithm_to_string Count_comp.Brute_force)
    (Count_comp.algorithm_to_string algo);
  check_nat "fallback count" Nat.two n;
  let algo, n = Count_comp.count_all ~comp_max_states:1 db in
  Alcotest.(check string)
    "mid-run state blowup falls back to brute force"
    (Count_comp.algorithm_to_string Count_comp.Brute_force)
    (Count_comp.algorithm_to_string algo);
  check_nat "mid-run fallback count" Nat.two n;
  (* Force propagates instead. *)
  (match Count_comp.count_all ~comp_elim:Comp_kernel.Force ~comp_width_bound:0 db with
  | exception Comp_kernel.Infeasible (Comp_kernel.Width_exceeded _) -> ()
  | _ -> Alcotest.fail "Force must raise Infeasible");
  (* Off restores the pre-kernel policy: non-Codd goes brute. *)
  let algo, _ = Count_comp.count_all ~comp_elim:Comp_kernel.Off db in
  Alcotest.(check string) "Off routes non-Codd to brute force"
    (Count_comp.algorithm_to_string Count_comp.Brute_force)
    (Count_comp.algorithm_to_string algo)

(* ------------------------------------------------------------------ *)
(* Spill path                                                          *)
(* ------------------------------------------------------------------ *)

let test_spill_agreement () =
  let db =
    (* Two components (R-bits, S-bits) => at least two bags, and a
       frontier of more than one state at the boundary. *)
    Idb.make
      [
        Idb.fact "R" [ Term.null "n" ];
        Idb.fact "R" [ Term.null "r0" ];
        Idb.fact "S" [ Term.null "n" ];
        Idb.fact "S" [ Term.null "s0" ];
      ]
      (Idb.Nonuniform
         [
           ("n", [ "0"; "1"; "2" ]);
           ("r0", [ "0"; "1"; "2" ]);
           ("s0", [ "0"; "1"; "2" ]);
         ])
  in
  let reference = Comp_kernel.count db in
  let brute = Brute.count_all_completions db in
  check_nat "reference matches brute" brute reference;
  let spilled, deltas =
    with_elim_deltas (fun () -> Comp_kernel.count ~max_cells:1 db)
  in
  check_nat "count unchanged under max_cells 1" reference spilled;
  let spill_delta = List.assoc "comp_kernel.elim_spilled_messages" deltas in
  if spill_delta < 1 then
    Alcotest.failf "expected at least one spilled message, saw %d" spill_delta;
  (* And with the transform cache off. *)
  check_nat "spill x cache-off unchanged" reference
    (Comp_kernel.count ~max_cells:1 ~cache:false db)

(* ------------------------------------------------------------------ *)
(* Agreement properties                                                *)
(* ------------------------------------------------------------------ *)

let force_count ?jobs ?mask ?cache q db =
  Count_comp.count ?jobs ?mask ~comp_elim:Comp_kernel.Force ?comp_cache:cache q
    db

(* Random (Codd and non-Codd) tables, no query: kernel vs brute dedup. *)
let prop_kernel_vs_brute_all =
  QCheck.Test.make ~count:120 ~name:"comp_kernel count_all = brute dedup"
    QCheck.(triple small_int bool bool)
    (fun (seed, codd, uniform) ->
      let schema = [ ("R", 1); ("S", 2) ] in
      let db = Gen.random_idb ~seed ~schema ~rows:2 ~codd ~uniform in
      QCheck.assume (Gen.manageable ~limit:50_000 db);
      match Comp_kernel.count db with
      | exception Comp_kernel.Infeasible _ -> QCheck.assume_fail ()
      | n ->
        let brute = Brute.count_all_completions db in
        Nat.equal n brute)

(* Random query + random table: the dispatcher's forced elimination arm
   vs brute force. *)
let prop_kernel_vs_brute_query =
  QCheck.Test.make ~count:120 ~name:"comp_kernel query count = brute dedup"
    QCheck.(triple small_int small_int bool)
    (fun (qseed, dbseed, codd) ->
      let q = Gen.random_sjfbcq ~seed:qseed in
      let db =
        Gen.random_idb ~seed:dbseed ~schema:(Gen.schema_of_query q) ~rows:2
          ~codd ~uniform:false
      in
      QCheck.assume (Gen.manageable ~limit:50_000 db);
      match force_count q db with
      | exception Comp_kernel.Infeasible _ -> QCheck.assume_fail ()
      | _, n ->
        let brute = Brute.count_completions (Query.Bcq q) db in
        Nat.equal n brute)

(* Random Codd tables inside the enumerator's range: kernel vs
   Comp_candidates, both through the dispatcher. *)
let prop_kernel_vs_enumerator =
  QCheck.Test.make ~count:120 ~name:"comp_kernel = candidate enumerator"
    QCheck.(pair small_int small_int)
    (fun (qseed, dbseed) ->
      let q = Gen.random_sjfbcq ~seed:qseed in
      let db =
        Gen.random_idb ~seed:dbseed ~schema:(Gen.schema_of_query q) ~rows:2
          ~codd:true ~uniform:false
      in
      QCheck.assume (Idb.is_codd db);
      QCheck.assume
        (Option.is_some (Comp_candidates.universe_within db ~limit:60));
      match force_count q db with
      | exception Comp_kernel.Infeasible _ -> QCheck.assume_fail ()
      | _, n -> (
        match Count_comp.count ~comp_elim:Comp_kernel.Off q db with
        | Count_comp.Candidate_enumeration, m -> Nat.equal n m
        | algo, m ->
          (* Theorem 4.6 instances dispatch to the closed form; still
             must agree. *)
          ignore algo;
          Nat.equal n m))

(* Counts AND deterministic counter deltas bit-identical across
   jobs {1,2,4} x mask int/wide x cache on/off. *)
let prop_config_invariance =
  QCheck.Test.make ~count:40
    ~name:"comp_kernel invariant across jobs x mask x cache"
    QCheck.(triple small_int bool bool)
    (fun (seed, codd, uniform) ->
      let schema = [ ("R", 1); ("S", 2) ] in
      let db = Gen.random_idb ~seed ~schema ~rows:2 ~codd ~uniform in
      QCheck.assume (Gen.manageable ~limit:50_000 db);
      let q = Cq.make [ Cq.atom "R" [ "x" ]; Cq.atom "S" [ "x"; "y" ] ] in
      let run jobs mask cache =
        with_elim_deltas (fun () -> force_count ~jobs ~mask ~cache q db)
      in
      match run 1 Comp_candidates.Auto true with
      | exception Comp_kernel.Infeasible _ -> QCheck.assume_fail ()
      | (ref_algo, ref_n), ref_deltas ->
        List.for_all
          (fun (jobs, mask, cache) ->
            let (algo, n), deltas = run jobs mask cache in
            algo = ref_algo && Nat.equal n ref_n && deltas = ref_deltas)
          [
            (2, Comp_candidates.Auto, true);
            (4, Comp_candidates.Auto, true);
            (1, Comp_candidates.Int_masks, true);
            (1, Comp_candidates.Wide_masks, true);
            (1, Comp_candidates.Auto, false);
            (2, Comp_candidates.Wide_masks, false);
            (4, Comp_candidates.Int_masks, false);
          ])

let () =
  Alcotest.run "comp_kernel"
    [
      ( "hand",
        [
          Alcotest.test_case "codd one unary" `Quick test_codd_one_unary;
          Alcotest.test_case "non-codd shared pair" `Quick
            test_noncodd_shared_pair;
          Alcotest.test_case "non-codd branch overlap" `Quick
            test_noncodd_branch_overlap;
          Alcotest.test_case "non-codd diagonal" `Quick test_noncodd_diagonal;
          Alcotest.test_case "query figure1" `Quick test_query_figure1;
          Alcotest.test_case "empty table" `Quick test_empty_table;
        ] );
      ( "limits",
        [
          Alcotest.test_case "typed limits" `Quick test_limits;
          Alcotest.test_case "dispatcher fallback" `Quick
            test_dispatcher_fallback;
        ] );
      ("spill", [ Alcotest.test_case "spill agreement" `Quick test_spill_agreement ]);
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_kernel_vs_brute_all;
          QCheck_alcotest.to_alcotest prop_kernel_vs_brute_query;
          QCheck_alcotest.to_alcotest prop_kernel_vs_enumerator;
          QCheck_alcotest.to_alcotest prop_config_invariance;
        ] );
    ]
