(* Positive Datalog: parsing, semi-naive fixpoint, and counting over
   incomplete databases through the Query.Semantic bridge (Section 6:
   queries with PTIME model checking keep #Comp in SpanP). *)

open Incdb_bignum
open Incdb_relational
open Incdb_cq
open Incdb_incomplete
open Incdb_datalog.Datalog

let check_nat = Gen.check_nat

let edges_db pairs =
  Cdb.of_list (List.map (fun (a, b) -> Cdb.fact "E" [ a; b ]) pairs)

let tc_program =
  parse "Reach(x,y) :- E(x,y). Reach(x,z) :- Reach(x,y), E(y,z)."

(* ------------------------------------------------------------------ *)
(* Parsing and validation                                              *)
(* ------------------------------------------------------------------ *)

let test_parse () =
  Alcotest.(check int) "two rules" 2 (List.length tc_program);
  let round = parse (to_string tc_program) in
  Alcotest.(check string) "round trip" (to_string tc_program) (to_string round);
  let with_consts = parse "Good(x) :- E(x, '42'). Good(x) :- E(x, 7)." in
  Alcotest.(check int) "constants parsed" 2 (List.length with_consts)

let test_safety () =
  Alcotest.check_raises "unsafe rule"
    (Invalid_argument "Datalog.make: unsafe rule, head variable y") (fun () ->
      ignore (parse "P(x,y) :- E(x,x)."))

(* ------------------------------------------------------------------ *)
(* Fixpoint semantics                                                  *)
(* ------------------------------------------------------------------ *)

let test_transitive_closure () =
  let db = edges_db [ ("a", "b"); ("b", "c"); ("c", "d") ] in
  let sat = saturate tc_program db in
  let reach x y = Cdb.mem (Cdb.fact "Reach" [ x; y ]) sat in
  Alcotest.(check bool) "a->d" true (reach "a" "d");
  Alcotest.(check bool) "b->d" true (reach "b" "d");
  Alcotest.(check bool) "no d->a" false (reach "d" "a");
  (* 3 + 2 + 1 reach facts, plus 3 edges. *)
  Alcotest.(check int) "fact count" 9 (Cdb.cardinal sat)

let test_cycle_termination () =
  let db = edges_db [ ("a", "b"); ("b", "a") ] in
  let sat = saturate tc_program db in
  Alcotest.(check bool) "a->a through the cycle" true
    (Cdb.mem (Cdb.fact "Reach" [ "a"; "a" ]) sat);
  Alcotest.(check int) "terminates with 6 facts" 6 (Cdb.cardinal sat)

let test_holds_goal () =
  let db = edges_db [ ("a", "b"); ("b", "c") ] in
  Alcotest.(check bool) "ground goal" true
    (holds tc_program ~goal:{ rel = "Reach"; args = [ Const "a"; Const "c" ] } db);
  Alcotest.(check bool) "open goal" true
    (holds tc_program ~goal:{ rel = "Reach"; args = [ Var "u"; Var "v" ] } db);
  Alcotest.(check bool) "false ground goal" false
    (holds tc_program ~goal:{ rel = "Reach"; args = [ Const "c"; Const "a" ] } db)

let test_facts_rules () =
  (* Rules with empty bodies are just facts. *)
  let p = parse "Base('a','b'). Reach(x,y) :- Base(x,y)." in
  let sat = saturate p Cdb.empty in
  Alcotest.(check bool) "derived from seeded fact" true
    (Cdb.mem (Cdb.fact "Reach" [ "a"; "b" ]) sat)

let prop_tc_matches_graph_reachability =
  QCheck.Test.make ~count:60 ~name:"datalog TC = DFS reachability"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let n = 6 in
      let edges =
        List.concat_map
          (fun i ->
            List.filter_map
              (fun j ->
                if i <> j && Random.State.int st 4 = 0 then
                  Some (string_of_int i, string_of_int j)
                else None)
              (List.init n Fun.id))
          (List.init n Fun.id)
      in
      let db = edges_db edges in
      let sat = saturate tc_program db in
      (* directed DFS reachability as the reference *)
      let adj = Hashtbl.create 16 in
      List.iter
        (fun (a, b) ->
          Hashtbl.replace adj a (b :: Option.value ~default:[] (Hashtbl.find_opt adj a)))
        edges;
      let reachable_from s =
        let seen = Hashtbl.create 16 in
        let rec dfs u =
          List.iter
            (fun v ->
              if not (Hashtbl.mem seen v) then begin
                Hashtbl.replace seen v ();
                dfs v
              end)
            (Option.value ~default:[] (Hashtbl.find_opt adj u))
        in
        dfs s;
        seen
      in
      List.for_all
        (fun i ->
          let s = string_of_int i in
          let seen = reachable_from s in
          List.for_all
            (fun j ->
              let t = string_of_int j in
              Hashtbl.mem seen t
              = Cdb.mem (Cdb.fact "Reach" [ s; t ]) sat)
            (List.init n Fun.id))
        (List.init n Fun.id))

(* ------------------------------------------------------------------ *)
(* Counting reachability over incomplete databases                     *)
(* ------------------------------------------------------------------ *)

let test_counting_reachability () =
  (* Network with one uncertain link endpoint: E(a,b), E(b,?x) with
     ?x in {c, a}.  s->t reachability a->c holds iff x = c. *)
  let db =
    Idb.make
      [
        Idb.fact_of_strings "E" [ "a"; "b" ];
        Idb.fact_of_strings "E" [ "b"; "?x" ];
      ]
      (Idb.Nonuniform [ ("x", [ "c"; "a" ]) ])
  in
  let q = reachability ~from:"a" ~to_:"c" in
  check_nat "one of two worlds" Nat.one (Brute.count_valuations q db);
  Alcotest.(check bool) "possible" true (Incdb_core.Certainty.possible q db);
  Alcotest.(check bool) "not certain" false (Incdb_core.Certainty.certain q db);
  Alcotest.(check bool) "monotone" true (Query.is_monotone q)

let prop_counting_reachability_brute =
  (* Cross-validate #Val of the datalog query against an independent
     computation: enumerate valuations and DFS each completion. *)
  QCheck.Test.make ~count:40 ~name:"#Val(reachability) = per-world DFS"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema:[ ("E", 2) ] ~rows:3 ~codd:(seed mod 2 = 0)
          ~uniform:true
      in
      QCheck.assume (Gen.manageable ~limit:10_000 db);
      let q = reachability ~from:"a" ~to_:"b" in
      let direct = ref 0 in
      Idb.iter_valuations db (fun v ->
          let world = Idb.apply db v in
          (* DFS from "a" over E-facts *)
          let seen = Hashtbl.create 16 in
          let rec dfs u =
            List.iter
              (fun (f : Cdb.fact) ->
                if f.Cdb.args.(0) = u && not (Hashtbl.mem seen f.Cdb.args.(1))
                then begin
                  Hashtbl.replace seen f.Cdb.args.(1) ();
                  dfs f.Cdb.args.(1)
                end)
              (Cdb.facts_of world "E")
          in
          dfs "a";
          if Hashtbl.mem seen "b" then incr direct);
      Nat.equal (Brute.count_valuations q db) (Nat.of_int !direct))

let () =
  Alcotest.run "datalog"
    [
      ( "syntax",
        [
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "safety" `Quick test_safety;
        ] );
      ( "fixpoint",
        [
          Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
          Alcotest.test_case "cycles terminate" `Quick test_cycle_termination;
          Alcotest.test_case "goals" `Quick test_holds_goal;
          Alcotest.test_case "fact rules" `Quick test_facts_rules;
        ] );
      ( "counting",
        [ Alcotest.test_case "uncertain network" `Quick test_counting_reachability ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_tc_matches_graph_reachability; prop_counting_reachability_brute ] );
    ]
