(* Cross-validation of the three tractable #Val algorithms against the
   brute-force definition, on randomized instances — the soundness core of
   the reproduction of Theorems 3.6, 3.7 and 3.9. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_core

let check_nat = Gen.check_nat

let brute q db = Brute.count_valuations (Query.Bcq q) db

(* ------------------------------------------------------------------ *)
(* Theorem 3.6: single-occurrence variables                            *)
(* ------------------------------------------------------------------ *)

let prop_thm_3_6 query schema =
  let q = Cq.of_string query in
  QCheck.Test.make ~count:60
    ~name:(Printf.sprintf "Thm 3.6 agrees with brute force [%s]" query)
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema ~rows:2 ~codd:(seed mod 2 = 0)
          ~uniform:(seed mod 3 = 0)
      in
      QCheck.assume (Gen.manageable db);
      Nat.equal (Count_val.nonuniform_naive q db) (brute q db))

let prop_36_rxy = prop_thm_3_6 "R(x,y)" [ ("R", 2) ]
let prop_36_two = prop_thm_3_6 "R(x), S(y,z)" [ ("R", 1); ("S", 2) ]

let test_36_empty_relation () =
  let q = Cq.of_string "R(x), S(y)" in
  let db =
    Idb.make [ Idb.fact "R" [ Term.null "n" ] ]
      (Idb.Nonuniform [ ("n", [ "a"; "b" ]) ])
  in
  check_nat "empty S forces 0" Nat.zero (Count_val.nonuniform_naive q db)

let test_36_rejects () =
  let q = Cq.of_string "R(x,x)" in
  let db = Idb.make [] (Idb.Uniform [ "a" ]) in
  Alcotest.check_raises "repeated variable rejected"
    (Invalid_argument "Count_val.nonuniform_naive: a variable occurs twice")
    (fun () -> ignore (Count_val.nonuniform_naive q db))

(* ------------------------------------------------------------------ *)
(* Theorem 3.7: Codd tables, variable-disjoint atoms                   *)
(* ------------------------------------------------------------------ *)

let prop_thm_3_7 query schema =
  let q = Cq.of_string query in
  QCheck.Test.make ~count:60
    ~name:(Printf.sprintf "Thm 3.7 agrees with brute force [%s]" query)
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema ~rows:2 ~codd:true ~uniform:(seed mod 3 = 0)
      in
      QCheck.assume (Gen.manageable db);
      Nat.equal (Count_val.codd_nonuniform q db) (brute q db))

let prop_37_rxx = prop_thm_3_7 "R(x,x)" [ ("R", 2) ]
let prop_37_rxx_sy = prop_thm_3_7 "R(x,x), S(y)" [ ("R", 2); ("S", 1) ]
let prop_37_rxyx = prop_thm_3_7 "R(x,y,x)" [ ("R", 3) ]
let prop_37_disjoint = prop_thm_3_7 "R(x,y), S(z,z)" [ ("R", 2); ("S", 2) ]

let test_37_example () =
  (* R(x,x) over a Codd table: facts R(n1, n2) with dom(n1) = {a,b},
     dom(n2) = {b,c}: matching valuations are n1=n2=b, so #Val = 1;
     adding R(a, n3), dom(n3) = {a,c}: second tuple matches iff n3 = a.
     Non-matching: (4-1) * (2-1) = 3; total 8; #Val = 5. *)
  let q = Cq.of_string "R(x,x)" in
  let db =
    Idb.make
      [
        Idb.fact "R" [ Term.null "n1"; Term.null "n2" ];
        Idb.fact "R" [ Term.const "a"; Term.null "n3" ];
      ]
      (Idb.Nonuniform
         [ ("n1", [ "a"; "b" ]); ("n2", [ "b"; "c" ]); ("n3", [ "a"; "c" ]) ])
  in
  check_nat "hand-computed" (Nat.of_int 5) (Count_val.codd_nonuniform q db);
  check_nat "brute agrees" (Nat.of_int 5) (brute q db)

(* ------------------------------------------------------------------ *)
(* Theorem 3.9: uniform naive tables                                   *)
(* ------------------------------------------------------------------ *)

let prop_thm_3_9 query schema =
  let q = Cq.of_string query in
  QCheck.Test.make ~count:60
    ~name:(Printf.sprintf "Thm 3.9 agrees with brute force [%s]" query)
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema ~rows:2 ~codd:(seed mod 2 = 0) ~uniform:true
      in
      QCheck.assume (Gen.manageable db);
      Nat.equal (Count_val.uniform_naive q db) (brute q db))

let prop_39_rx_sx = prop_thm_3_9 "R(x), S(x)" [ ("R", 1); ("S", 1) ]
let prop_39_three = prop_thm_3_9 "R(x), S(x), T(x)" [ ("R", 1); ("S", 1); ("T", 1) ]

let prop_39_two_groups =
  prop_thm_3_9 "R(x), S(x), T(y), U(y)" [ ("R", 1); ("S", 1); ("T", 1); ("U", 1) ]

let prop_39_wide =
  (* Shared variable inside wider atoms plus single-occurrence variables. *)
  prop_thm_3_9 "R(x,u), S(x,v)" [ ("R", 2); ("S", 2) ]

let prop_39_mixed =
  prop_thm_3_9 "R(x,u), S(x), T(w,z)" [ ("R", 2); ("S", 1); ("T", 2) ]

let test_39_example_3_10 () =
  (* Example 3.10 for R(x) ∧ S(x), checked against the closed form
     given in the paper. *)
  let q = Cq.of_string "R(x), S(x)" in
  let dom = [ "1"; "2"; "3"; "4" ] in
  let d = 4 in
  let cr = 1 and cs = 1 and nr = 2 and ns = 2 in
  let db =
    Idb.make
      [
        Idb.fact "R" [ Term.const "1" ];
        Idb.fact "R" [ Term.null "r1" ];
        Idb.fact "R" [ Term.null "r2" ];
        Idb.fact "S" [ Term.const "2" ];
        Idb.fact "S" [ Term.null "s1" ];
        Idb.fact "S" [ Term.null "s2" ];
      ]
      (Idb.Uniform dom)
  in
  (* Closed form from Example 3.10: the number of NON-satisfying
     valuations is sum over m', r' of C(m,m') C(cR,r') surj(nR, m'+r')
     (d - cR - m')^nS, with M = dom \ (C_R ∪ C_S), m = 2. *)
  let m = d - cr - cs in
  let bad = ref Nat.zero in
  for m' = 0 to m do
    for r' = 0 to cr do
      let term =
        Nat.mul
          (Nat.mul (Combinat.binomial m m') (Combinat.binomial cr r'))
          (Nat.mul (Combinat.surj nr (m' + r'))
             (Combinat.power (d - cr - m') ns))
      in
      bad := Nat.add !bad term
    done
  done;
  let total = Combinat.power d (nr + ns) in
  let expected = Nat.sub total !bad in
  check_nat "algorithm = Example 3.10 closed form" expected
    (Count_val.uniform_naive q db);
  check_nat "brute agrees" expected (brute q db)

let test_39_fixed_cases () =
  (* No nulls at all: counts collapse to satisfaction of the fixed db. *)
  let q = Cq.of_string "R(x), S(x)" in
  let sat =
    Idb.make
      [ Idb.fact "R" [ Term.const "a" ]; Idb.fact "S" [ Term.const "a" ] ]
      (Idb.Uniform [ "a"; "b" ])
  in
  check_nat "satisfied constant db" Nat.one (Count_val.uniform_naive q sat);
  let unsat =
    Idb.make
      [ Idb.fact "R" [ Term.const "a" ]; Idb.fact "S" [ Term.const "b" ] ]
      (Idb.Uniform [ "a"; "b" ])
  in
  check_nat "unsatisfied constant db" Nat.zero (Count_val.uniform_naive q unsat);
  (* Constants outside the uniform domain still witness satisfaction. *)
  let outside =
    Idb.make
      [
        Idb.fact "R" [ Term.const "z" ];
        Idb.fact "S" [ Term.const "z" ];
        Idb.fact "S" [ Term.null "n" ];
      ]
      (Idb.Uniform [ "a" ])
  in
  check_nat "external constant satisfies" Nat.one
    (Count_val.uniform_naive q outside)

(* ------------------------------------------------------------------ *)
(* Dispatcher                                                          *)
(* ------------------------------------------------------------------ *)

let prop_dispatcher =
  QCheck.Test.make ~count:60 ~name:"dispatcher always agrees with brute force"
    QCheck.(make (QCheck.Gen.pair (QCheck.Gen.int_range 1 1_000_000)
                    (QCheck.Gen.int_bound 3)))
    (fun (seed, qi) ->
      let query, schema =
        match qi with
        | 0 -> ("R(x,y)", [ ("R", 2) ])
        | 1 -> ("R(x,x)", [ ("R", 2) ])
        | 2 -> ("R(x), S(x)", [ ("R", 1); ("S", 1) ])
        | _ -> ("R(x), S(x,y), T(y)", [ ("R", 1); ("S", 2); ("T", 1) ])
      in
      let q = Cq.of_string query in
      let db =
        Gen.random_idb ~seed ~schema ~rows:2 ~codd:(seed mod 2 = 0)
          ~uniform:(seed mod 3 <> 0)
      in
      QCheck.assume (Gen.manageable db);
      let _, n = Count_val.count q db in
      Nat.equal n (brute q db))

let test_dispatcher_algorithms () =
  let check_algo query db expected =
    let algo, _ = Count_val.count (Cq.of_string query) db in
    Alcotest.(check string)
      ("algorithm for " ^ query)
      (Count_val.algorithm_to_string expected)
      (Count_val.algorithm_to_string algo)
  in
  let uniform_codd =
    Idb.make [ Idb.fact "R" [ Term.null "a"; Term.null "b" ] ]
      (Idb.Uniform [ "0"; "1" ])
  in
  check_algo "R(x,y)" uniform_codd Count_val.Product_of_domains;
  check_algo "R(x,x)" uniform_codd Count_val.Codd_per_atom;
  let naive =
    Idb.make
      [
        Idb.fact "R" [ Term.null "a" ];
        Idb.fact "S" [ Term.null "a" ];
        Idb.fact "S" [ Term.null "b" ];
      ]
      (Idb.Uniform [ "0"; "1" ])
  in
  check_algo "R(x), S(x)" naive Count_val.Uniform_block_dp;
  check_algo "R(x), S(x,y), T(y)" naive Count_val.Lineage_elimination

(* ------------------------------------------------------------------ *)
(* Observability probes must not change any count                      *)
(* ------------------------------------------------------------------ *)

(* Figure 1 instance: 6 valuations, 4 satisfying S(x,x), 3 satisfying
   completions.  Counts with tracing and metrics enabled must agree with
   the uninstrumented run, and the engine counters must have moved. *)
let test_instrumented_counts_agree () =
  let db =
    Idb.make
      [
        Idb.fact "S" [ Term.const "a"; Term.const "b" ];
        Idb.fact "S" [ Term.null "n1"; Term.const "a" ];
        Idb.fact "S" [ Term.const "a"; Term.null "n2" ];
      ]
      (Idb.Nonuniform [ ("n1", [ "a"; "b"; "c" ]); ("n2", [ "a"; "b" ]) ])
  in
  let q = Cq.of_string "S(x,x)" in
  Incdb_obs.Runtime.set_enabled false;
  let _, plain_val = Count_val.count q db in
  let _, plain_comp = Count_comp.count q db in
  check_nat "6 valuations" (Nat.of_int 6) (Idb.total_valuations db);
  check_nat "#Val baseline" (Nat.of_int 4) plain_val;
  check_nat "#Comp baseline" (Nat.of_int 3) plain_comp;
  Incdb_obs.Export.reset ();
  Incdb_obs.Runtime.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Incdb_obs.Runtime.set_enabled false)
    (fun () ->
      let _, traced_val = Count_val.count q db in
      let _, traced_comp = Count_comp.count q db in
      let traced_brute = brute q db in
      check_nat "instrumented #Val" plain_val traced_val;
      check_nat "instrumented #Comp" plain_comp traced_comp;
      check_nat "instrumented brute force" plain_val traced_brute;
      let counters = Incdb_obs.Metrics.counters_snapshot () in
      let counted name =
        match List.assoc_opt name counters with
        | Some n -> n
        | None -> Alcotest.failf "counter %s not registered" name
      in
      Alcotest.(check int)
        "brute force visited every valuation" 6
        (counted "valuations_visited");
      Alcotest.(check bool)
        "completions were checked" true
        (counted "completions_checked" > 0))

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_36_rxy;
        prop_36_two;
        prop_37_rxx;
        prop_37_rxx_sy;
        prop_37_rxyx;
        prop_37_disjoint;
        prop_39_rx_sx;
        prop_39_three;
        prop_39_two_groups;
        prop_39_wide;
        prop_39_mixed;
        prop_dispatcher;
      ]
  in
  Alcotest.run "count_val"
    [
      ( "thm-3.6",
        [
          Alcotest.test_case "empty relation" `Quick test_36_empty_relation;
          Alcotest.test_case "shape rejection" `Quick test_36_rejects;
        ] );
      ("thm-3.7", [ Alcotest.test_case "hand computed" `Quick test_37_example ]);
      ( "thm-3.9",
        [
          Alcotest.test_case "example 3.10" `Quick test_39_example_3_10;
          Alcotest.test_case "constant corner cases" `Quick test_39_fixed_cases;
        ] );
      ( "dispatch",
        [ Alcotest.test_case "algorithm selection" `Quick test_dispatcher_algorithms ] );
      ( "observability",
        [
          Alcotest.test_case "instrumented counts agree" `Quick
            test_instrumented_counts_agree;
        ] );
      ("properties", props);
    ]
