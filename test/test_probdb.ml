(* The Section 7 comparison substrate: tuple-independent and BID
   probabilistic databases, counting repairs under primary keys, and the
   bridge to incomplete databases. *)

open Incdb_bignum
open Incdb_relational
open Incdb_cq
open Incdb_incomplete
open Incdb_probdb

let qn = Alcotest.testable Qnum.pp Qnum.equal
let check_nat = Gen.check_nat

let half = Qnum.of_ints 1 2
let third = Qnum.of_ints 1 3

(* ------------------------------------------------------------------ *)
(* TID                                                                 *)
(* ------------------------------------------------------------------ *)

let test_tid_basics () =
  let t =
    Tid.make [ (Cdb.fact "R" [ "a" ], half); (Cdb.fact "S" [ "a" ], third) ]
  in
  Alcotest.(check int) "four worlds" 4 (List.length (Tid.worlds t));
  let total =
    List.fold_left (fun acc (_, p) -> Qnum.add acc p) Qnum.zero (Tid.worlds t)
  in
  Alcotest.check qn "probabilities sum to 1" Qnum.one total;
  (* Prob(R(x) ∧ S(x)) = 1/2 * 1/3 (independence). *)
  Alcotest.check qn "independent conjunction" (Qnum.of_ints 1 6)
    (Tid.probability (Query.Bcq (Cq.of_string "R(x), S(x)")) t);
  (* Prob(R(x)) = 1/2. *)
  Alcotest.check qn "marginal" half
    (Tid.probability (Query.Bcq (Cq.of_string "R(x)")) t)

let test_tid_validation () =
  Alcotest.check_raises "probability out of range"
    (Invalid_argument "Tid.make: probability outside [0,1]") (fun () ->
      ignore (Tid.make [ (Cdb.fact "R" [ "a" ], Qnum.of_int 2) ]));
  Alcotest.check_raises "duplicate fact"
    (Invalid_argument "Tid.make: duplicate fact") (fun () ->
      ignore
        (Tid.make [ (Cdb.fact "R" [ "a" ], half); (Cdb.fact "R" [ "a" ], half) ]))

let prop_tid_union_bound =
  QCheck.Test.make ~count:60 ~name:"TID: monotone query probability bounds"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let t =
        Tid.make
          (List.init 5 (fun i ->
               ( Cdb.fact "R" [ string_of_int i; string_of_int (Random.State.int st 3) ],
                 Qnum.of_ints (1 + Random.State.int st 3) 4 )))
      in
      let p1 = Tid.probability (Query.Bcq (Cq.of_string "R(x,y)")) t in
      let p2 = Tid.probability (Query.Bcq (Cq.of_string "R(x,x)")) t in
      (* monotone containment R(x,x) |= R(x,y): Prob(Rxx) <= Prob(Rxy);
         and both probabilities live in [0,1]. *)
      Qnum.compare p2 p1 <= 0
      && Qnum.compare p1 Qnum.one <= 0
      && Qnum.sign p1 >= 0)

(* ------------------------------------------------------------------ *)
(* BID and repairs                                                     *)
(* ------------------------------------------------------------------ *)

let test_bid_basics () =
  let b =
    Bid.make
      [
        [ (Cdb.fact "R" [ "a" ], half); (Cdb.fact "R" [ "b" ], half) ];
        [ (Cdb.fact "S" [ "a" ], third) ];
      ]
  in
  (* 2 choices x (1 + absent) = 4 worlds. *)
  Alcotest.(check int) "worlds" 4 (List.length (Bid.worlds b));
  let total =
    List.fold_left (fun acc (_, p) -> Qnum.add acc p) Qnum.zero (Bid.worlds b)
  in
  Alcotest.check qn "sums to 1" Qnum.one total;
  (* Prob(R(x) ∧ S(x)) = Prob(R(a)) * Prob(S(a)) = 1/2 * 1/3. *)
  Alcotest.check qn "conjunction" (Qnum.of_ints 1 6)
    (Bid.probability (Query.Bcq (Cq.of_string "R(x), S(x)")) b)

let test_bid_validation () =
  Alcotest.check_raises "block overflow"
    (Invalid_argument "Bid.make: invalid block probabilities") (fun () ->
      ignore
        (Bid.make [ [ (Cdb.fact "R" [ "a" ], half); (Cdb.fact "R" [ "b" ], Qnum.of_ints 2 3) ] ]))

let conflicting_db () =
  (* Emp(name, dept): key = name; alice is recorded twice. *)
  Repairs.make
    ~keys:[ ("Emp", [ 0 ]) ]
    [
      Cdb.fact "Emp" [ "alice"; "sales" ];
      Cdb.fact "Emp" [ "alice"; "hr" ];
      Cdb.fact "Emp" [ "bob"; "hr" ];
      Cdb.fact "Dept" [ "hr" ];
    ]

let test_repairs_basics () =
  let r = conflicting_db () in
  Alcotest.(check int) "three groups" 3 (List.length (Repairs.groups r));
  check_nat "two repairs" (Nat.of_int 2) (Repairs.total_repairs r);
  (* q: someone works in a listed department. *)
  let q = Query.Bcq (Cq.of_string "Emp(n, d), Dept(d)") in
  (* both repairs keep bob->hr and Dept(hr), so q holds in both *)
  check_nat "both repairs satisfy" (Nat.of_int 2)
    (Repairs.count_repairs ~query:q r);
  (* A query true in exactly one repair: no employee outside hr.  The
     negation of "someone is in a department with no Dept fact" is not a
     BCQ, so phrase it through counting: alice-in-hr holds in one repair
     via the pigeonhole on the two repairs above. *)
  let one_repair =
    Repairs.count_repairs
      ~query:(Query.Not (Query.Bcq (Cq.of_string "Emp(n, d), Dept(d)")))
      r
  in
  check_nat "negation counts the rest" Nat.zero one_repair

let prop_repairs_bid_correspondence =
  QCheck.Test.make ~count:40
    ~name:"uniform BID probability = #Repairs(q)/total"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let facts =
        List.init 6 (fun i ->
            Cdb.fact "R"
              [ string_of_int (Random.State.int st 3); string_of_int i ])
        @ [ Cdb.fact "S" [ string_of_int (Random.State.int st 3) ] ]
      in
      let r = Repairs.make ~keys:[ ("R", [ 0 ]) ] facts in
      let q = Query.Bcq (Cq.of_string "R(x,y), S(x)") in
      let count = Repairs.count_repairs ~query:q r in
      let total = Repairs.total_repairs r in
      let prob = Bid.probability q (Repairs.to_bid r) in
      Qnum.equal prob
        (Qnum.make (Zint.of_nat count) (Zint.of_nat total)))

(* Every repair is a distinct database — the structural property the
   paper contrasts with valuations (which may collide). *)
let prop_repairs_distinct =
  QCheck.Test.make ~count:40 ~name:"repairs never collide"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let facts =
        List.init 5 (fun i ->
            Cdb.fact "R"
              [ string_of_int (Random.State.int st 2); "v" ^ string_of_int i ])
      in
      let r = Repairs.make ~keys:[ ("R", [ 0 ]) ] facts in
      let bid_worlds = Bid.worlds (Repairs.to_bid r) in
      let dbs = List.map fst bid_worlds in
      List.length (List.sort_uniq Cdb.compare dbs) = List.length dbs)

(* ------------------------------------------------------------------ *)
(* The bridge to incomplete databases                                  *)
(* ------------------------------------------------------------------ *)

let figure1_db () =
  Idb.make
    [
      Idb.fact_of_strings "S" [ "a"; "b" ];
      Idb.fact_of_strings "S" [ "?n1"; "a" ];
      Idb.fact_of_strings "S" [ "a"; "?n2" ];
    ]
    (Idb.Nonuniform [ ("n1", [ "a"; "b"; "c" ]); ("n2", [ "a"; "b" ]) ])

let test_worlds_bridge () =
  let db = figure1_db () in
  let q = Query.Bcq (Cq.of_string "S(x,x)") in
  (* Prob(q) = #Val / total = 4/6 = 2/3. *)
  Alcotest.check qn "Prob = #Val/total" (Qnum.of_ints 2 3)
    (Worlds.probability q db);
  let worlds = Worlds.of_incomplete db in
  Alcotest.(check int) "five distinct worlds" 5 (List.length worlds);
  let total =
    List.fold_left (fun acc (_, p) -> Qnum.add acc p) Qnum.zero worlds
  in
  Alcotest.check qn "distribution sums to 1" Qnum.one total;
  (* 6 valuations but 5 completions: exactly one collision. *)
  check_nat "one collision" Nat.one (Worlds.collision_count db)

let prop_bridge_probability =
  QCheck.Test.make ~count:60 ~name:"Worlds.probability = #Val / total"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema:[ ("R", 2); ("S", 1) ] ~rows:2
          ~codd:(seed mod 2 = 0) ~uniform:(seed mod 3 = 0)
      in
      QCheck.assume (Gen.manageable db);
      let q = Query.Bcq (Cq.of_string "R(x,y), S(y)") in
      let vals = Brute.count_valuations q db in
      let total = Idb.total_valuations db in
      Qnum.equal (Worlds.probability q db)
        (if Nat.is_zero total then Qnum.one
         else Qnum.make (Zint.of_nat vals) (Zint.of_nat total)))

(* ------------------------------------------------------------------ *)
(* Independent-null probabilistic incomplete databases                 *)
(* ------------------------------------------------------------------ *)

let test_indnull_uniform_is_counting () =
  let db = figure1_db () in
  let t = Indnull.uniform db in
  let q = Query.Bcq (Cq.of_string "S(x,x)") in
  (* uniform weights recover #Val / total = 2/3 *)
  Alcotest.check qn "uniform = counting" (Qnum.of_ints 2 3)
    (Indnull.probability_brute q t)

let test_indnull_weighted () =
  (* One null, biased: R(?n), dom {a,b}, P(a) = 3/4; q = R(x) ∧ S(x) with
     S(a) fixed: probability = P(n = a) = 3/4. *)
  let db =
    Idb.make
      [ Idb.fact_of_strings "R" [ "?n" ]; Idb.fact_of_strings "S" [ "a" ] ]
      (Idb.Nonuniform [ ("n", [ "a"; "b" ]) ])
  in
  let t =
    Indnull.make db [ ("n", [ ("a", Qnum.of_ints 3 4); ("b", Qnum.of_ints 1 4) ]) ]
  in
  let q = Query.Bcq (Cq.of_string "R(x), S(x)") in
  Alcotest.check qn "biased" (Qnum.of_ints 3 4) (Indnull.probability_brute q t);
  Alcotest.check qn "weight lookup" (Qnum.of_ints 1 4) (Indnull.weight t "n" "b")

let test_indnull_validation () =
  let db =
    Idb.make [ Idb.fact_of_strings "R" [ "?n" ] ]
      (Idb.Nonuniform [ ("n", [ "a"; "b" ]) ])
  in
  Alcotest.check_raises "bad sum"
    (Invalid_argument "Indnull.make: weights of n do not sum to 1") (fun () ->
      ignore (Indnull.make db [ ("n", [ ("a", Qnum.of_ints 1 2) ]) ]));
  Alcotest.check_raises "value outside domain"
    (Invalid_argument "Indnull.make: c outside domain of n") (fun () ->
      ignore
        (Indnull.make db
           [ ("n", [ ("a", Qnum.of_ints 1 2); ("c", Qnum.of_ints 1 2) ]) ]))

let random_weighted seed db =
  let st = Random.State.make [| seed |] in
  Indnull.make db
    (List.map
       (fun n ->
         let dom = Incdb_incomplete.Idb.domain_of db n in
         let raw = List.map (fun v -> (v, 1 + Random.State.int st 4)) dom in
         let total = List.fold_left (fun s (_, w) -> s + w) 0 raw in
         (n, List.map (fun (v, w) -> (v, Qnum.of_ints w total)) raw))
       (Incdb_incomplete.Idb.nulls db))

let prop_indnull_codd =
  QCheck.Test.make ~count:60
    ~name:"weighted Thm 3.7 probability = enumeration"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema:[ ("R", 2); ("S", 1) ] ~rows:2 ~codd:true
          ~uniform:(seed mod 3 = 0)
      in
      QCheck.assume (Gen.manageable db);
      let t = random_weighted seed db in
      let q = Cq.of_string "R(x,x), S(y)" in
      Qnum.equal
        (Indnull.probability_codd q t)
        (Indnull.probability_brute (Query.Bcq q) t))

let prop_indnull_single =
  QCheck.Test.make ~count:40
    ~name:"weighted Thm 3.6 probability = enumeration"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema:[ ("R", 2) ] ~rows:2 ~codd:(seed mod 2 = 0)
          ~uniform:(seed mod 3 = 0)
      in
      QCheck.assume (Gen.manageable db);
      let t = random_weighted seed db in
      let q = Cq.of_string "R(x,y)" in
      Qnum.equal
        (Indnull.probability_single_occurrence q t)
        (Indnull.probability_brute (Query.Bcq q) t))

let prop_uniform_weighted =
  (* The weighted Thm 3.9 DP equals weighted enumeration, and uniform
     weights reproduce #Val/total. *)
  QCheck.Test.make ~count:50 ~name:"weighted Thm 3.9 DP = enumeration"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema:[ ("R", 1); ("S", 1) ] ~rows:3
          ~codd:(seed mod 2 = 0) ~uniform:true
      in
      QCheck.assume (Gen.manageable db);
      let dom =
        match Idb.domain_spec db with
        | Idb.Uniform dom -> dom
        | Idb.Nonuniform _ -> assert false
      in
      let st = Random.State.make [| seed |] in
      let raw = List.map (fun v -> (v, 1 + Random.State.int st 4)) dom in
      let total = List.fold_left (fun s (_, w) -> s + w) 0 raw in
      let weight a =
        Qnum.of_ints (List.assoc a raw) total
      in
      let q = Cq.of_string "R(x), S(x)" in
      let via_dp = Incdb_core.Count_val.uniform_weighted q db ~weight in
      (* reference: weighted enumeration through Indnull with the shared
         distribution attached to every null *)
      let shared =
        Indnull.make db
          (List.map
             (fun n ->
               (n, List.map (fun (v, w) -> (v, Qnum.of_ints w total)) raw))
             (Idb.nulls db))
      in
      let brute = Indnull.probability_brute (Query.Bcq q) shared in
      Qnum.equal via_dp brute)

let test_uniform_weighted_recovers_counting () =
  let db =
    Idb.make
      [
        Idb.fact_of_strings "R" [ "?a" ];
        Idb.fact_of_strings "R" [ "?b" ];
        Idb.fact_of_strings "S" [ "?c" ];
      ]
      (Idb.Uniform [ "0"; "1"; "2" ])
  in
  let q = Cq.of_string "R(x), S(x)" in
  let p =
    Incdb_core.Count_val.uniform_weighted q db ~weight:(fun _ -> Qnum.of_ints 1 3)
  in
  let vals = Incdb_core.Count_val.uniform_naive q db in
  let expected =
    Qnum.make (Zint.of_nat vals) (Zint.of_nat (Idb.total_valuations db))
  in
  Alcotest.check qn "uniform weights = #Val/total" expected p

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_tid_union_bound;
        prop_repairs_bid_correspondence;
        prop_repairs_distinct;
        prop_bridge_probability;
        prop_indnull_codd;
        prop_indnull_single;
        prop_uniform_weighted;
      ]
  in
  Alcotest.run "probdb"
    [
      ( "tid",
        [
          Alcotest.test_case "basics" `Quick test_tid_basics;
          Alcotest.test_case "validation" `Quick test_tid_validation;
        ] );
      ( "bid-repairs",
        [
          Alcotest.test_case "bid basics" `Quick test_bid_basics;
          Alcotest.test_case "bid validation" `Quick test_bid_validation;
          Alcotest.test_case "repairs" `Quick test_repairs_basics;
        ] );
      ( "indnull",
        [
          Alcotest.test_case "uniform is counting" `Quick
            test_indnull_uniform_is_counting;
          Alcotest.test_case "biased weights" `Quick test_indnull_weighted;
          Alcotest.test_case "validation" `Quick test_indnull_validation;
          Alcotest.test_case "weighted Thm 3.9" `Quick
            test_uniform_weighted_recovers_counting;
        ] );
      ( "bridge",
        [ Alcotest.test_case "figure 1 distribution" `Quick test_worlds_bridge ] );
      ("properties", props);
    ]
