(* Tests for the multicore execution layer: the domain pool, sharded
   brute force, parallel Karp–Luby, and the memoized inclusion–exclusion.

   The load-bearing properties are the agreement ones: for any instance
   and any job count the parallel engines must return bit-identical
   results to their sequential counterparts, and the memoized
   inclusion–exclusion must equal the unmemoized reference. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_par

let job_levels = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_resolve () =
  Alcotest.(check bool) "0 resolves to recommended >= 1" true
    (Pool.resolve 0 >= 1);
  Alcotest.(check int) "positive passes through" 3 (Pool.resolve 3);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Pool.resolve: negative job count") (fun () ->
      ignore (Pool.resolve (-2)))

let test_pool_run_order () =
  List.iter
    (fun jobs ->
      let tasks = List.init 23 (fun i () -> i * i) in
      Alcotest.(check (list int))
        (Printf.sprintf "results in task order (jobs=%d)" jobs)
        (List.init 23 (fun i -> i * i))
        (Pool.run ~jobs tasks))
    job_levels;
  Alcotest.(check (list int)) "no tasks" [] (Pool.run ~jobs:4 [])

exception Boom of int

let test_pool_run_exception () =
  List.iter
    (fun jobs ->
      match
        Pool.run ~jobs
          (List.init 8 (fun i () -> if i mod 2 = 1 then raise (Boom i) else i))
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
        (* The lowest-indexed failing task wins, whatever the schedule. *)
        Alcotest.(check int)
          (Printf.sprintf "lowest failure re-raised (jobs=%d)" jobs)
          1 i)
    job_levels

(* ------------------------------------------------------------------ *)
(* Prefix enumeration and the typed limit exception                    *)
(* ------------------------------------------------------------------ *)

let figure1 () =
  Idb.make
    [
      Idb.fact "S" [ Term.const "a"; Term.const "b" ];
      Idb.fact "S" [ Term.null "n1"; Term.const "a" ];
      Idb.fact "S" [ Term.const "a"; Term.null "n2" ];
    ]
    (Idb.Nonuniform [ ("n1", [ "a"; "b"; "c" ]); ("n2", [ "a"; "b" ]) ])

let test_prefix_partitions () =
  let db = figure1 () in
  let whole = ref [] in
  Idb.iter_valuations db (fun v -> whole := v :: !whole);
  let sharded = ref [] in
  List.iter
    (fun c ->
      Idb.iter_valuations_prefix db ~prefix:[ ("n1", c) ] (fun v ->
          sharded := v :: !sharded))
    (Idb.domain_of db "n1");
  let norm vs =
    List.sort compare (List.map (fun v -> List.sort compare v) vs)
  in
  Alcotest.(check (list (list (pair string string))))
    "shards partition the valuation stream" (norm !whole) (norm !sharded);
  Alcotest.check_raises "bad prefix value rejected"
    (Invalid_argument
       "Idb.iter_valuations_prefix: value z outside domain of null n1")
    (fun () -> Idb.iter_valuations_prefix db ~prefix:[ ("n1", "z") ] ignore)

let test_too_many_valuations () =
  let db = figure1 () in
  (try
     Idb.iter_valuations ~limit:2 db ignore;
     Alcotest.fail "expected Too_many_valuations"
   with Idb.Too_many_valuations { total; limit } ->
     Gen.check_nat "payload total" (Nat.of_int 6) total;
     Alcotest.(check int) "payload limit" 2 limit);
  try
    ignore (Brute_par.count_valuations ~limit:3 ~jobs:2 (Query.Bcq Cq.q_rx)
              (figure1 ()));
    Alcotest.fail "expected Too_many_valuations from the sharded engine"
  with Idb.Too_many_valuations { limit = 3; _ } -> ()

(* ------------------------------------------------------------------ *)
(* Deterministic Figure 1 agreement                                    *)
(* ------------------------------------------------------------------ *)

let test_figure1_counts () =
  let db = figure1 () in
  let q = Query.Bcq (Cq.of_string "S(x,y), S(y,x)") in
  List.iter
    (fun jobs ->
      let tag s = Printf.sprintf "%s (jobs=%d)" s jobs in
      Gen.check_nat (tag "#Val") (Nat.of_int 5)
        (Brute_par.count_valuations ~jobs q db);
      Gen.check_nat (tag "#Comp") (Nat.of_int 4)
        (Brute_par.count_completions ~jobs q db);
      Gen.check_nat (tag "all completions") (Nat.of_int 5)
        (Brute_par.count_all_completions ~jobs db))
    job_levels

(* ------------------------------------------------------------------ *)
(* Randomized parallel-vs-sequential agreement                         *)
(* ------------------------------------------------------------------ *)

let seeds_arb =
  QCheck.(
    make
      (Gen.pair (Gen.int_range 1 1_000_000) (Gen.int_range 1 1_000_000)))

let random_instance (qseed, dseed) =
  let q = Gen.random_sjfbcq ~seed:qseed in
  let db =
    Gen.random_idb ~seed:dseed ~schema:(Gen.schema_of_query q) ~rows:2
      ~codd:(dseed mod 2 = 0) ~uniform:(dseed mod 3 <> 0)
  in
  (q, db)

let prop_par_val_agrees =
  QCheck.Test.make ~count:60
    ~name:"sharded #Val = sequential for jobs in {1,2,4}" seeds_arb
    (fun seeds ->
      let q, db = random_instance seeds in
      QCheck.assume (Gen.manageable ~limit:20_000 db);
      let want = Brute.count_valuations (Query.Bcq q) db in
      List.for_all
        (fun jobs ->
          Nat.equal want (Brute_par.count_valuations ~jobs (Query.Bcq q) db))
        job_levels)

let prop_par_comp_agrees =
  QCheck.Test.make ~count:40
    ~name:"sharded #Comp and completion sets = sequential for jobs in {1,2,4}"
    seeds_arb
    (fun seeds ->
      let q, db = random_instance seeds in
      QCheck.assume (Gen.manageable ~limit:20_000 db);
      let want_count = Brute.count_completions (Query.Bcq q) db in
      let want_comps = Brute.completions db in
      List.for_all
        (fun jobs ->
          Nat.equal want_count
            (Brute_par.count_completions ~jobs (Query.Bcq q) db)
          && List.equal
               (fun a b -> Incdb_relational.Cdb.compare a b = 0)
               want_comps
               (Brute_par.completions ~jobs db))
        job_levels)

(* ------------------------------------------------------------------ *)
(* Memoized inclusion–exclusion                                        *)
(* ------------------------------------------------------------------ *)

let prop_memo_ie_agrees =
  QCheck.Test.make ~count:60
    ~name:"memoized inclusion-exclusion = unmemoized reference" seeds_arb
    (fun seeds ->
      let q, db = random_instance seeds in
      let query = Query.Bcq q in
      QCheck.assume
        (List.length (Incdb_approx.Karp_luby.events query db) <= 12);
      Nat.equal
        (Incdb_approx.Karp_luby.exact_via_events ~memo:true query db)
        (Incdb_approx.Karp_luby.exact_via_events ~memo:false query db))

(* ------------------------------------------------------------------ *)
(* Parallel Karp–Luby determinism                                      *)
(* ------------------------------------------------------------------ *)

let test_kl_par_jobs_invariant () =
  let db = figure1 () in
  let q = Query.Bcq (Cq.of_string "S(x,y), S(y,x)") in
  let reference = Karp_luby_par.estimate ~jobs:1 ~seed:7 ~samples:4_321 q db in
  List.iter
    (fun jobs ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "bit-identical estimate (jobs=%d)" jobs)
        reference
        (Karp_luby_par.estimate ~jobs ~seed:7 ~samples:4_321 q db))
    [ 2; 3; 4 ];
  let est, hw = Karp_luby_par.estimate_with_ci ~jobs:4 ~seed:7 ~samples:4_321 q db in
  Alcotest.(check (float 0.0)) "with_ci estimate matches" reference est;
  Alcotest.(check bool) "half-width positive and finite" true
    (hw > 0. && Float.is_finite hw)

let test_kl_par_close_to_exact () =
  let db = figure1 () in
  let q = Query.Bcq (Cq.of_string "S(x,y), S(y,x)") in
  let exact = 5.0 in
  let est = Karp_luby_par.estimate ~jobs:4 ~seed:11 ~samples:60_000 q db in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.3f within 5%% of %.0f" est exact)
    true
    (Float.abs (est -. exact) /. exact < 0.05)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "resolve" `Quick test_pool_resolve;
          Alcotest.test_case "run order" `Quick test_pool_run_order;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_run_exception;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "prefix shards partition" `Quick
            test_prefix_partitions;
          Alcotest.test_case "typed limit exception" `Quick
            test_too_many_valuations;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "figure 1 deterministic" `Quick
            test_figure1_counts;
          QCheck_alcotest.to_alcotest prop_par_val_agrees;
          QCheck_alcotest.to_alcotest prop_par_comp_agrees;
          QCheck_alcotest.to_alcotest prop_memo_ie_agrees;
        ] );
      ( "karp-luby",
        [
          Alcotest.test_case "jobs-invariant estimates" `Quick
            test_kl_par_jobs_invariant;
          Alcotest.test_case "close to exact" `Quick
            test_kl_par_close_to_exact;
        ] );
    ]
