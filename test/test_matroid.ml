(* The bicircular matroid machinery of Appendix B.5. *)

open Incdb_bignum
open Incdb_graph
open Incdb_matroid

let check_nat = Gen.check_nat

let qn = Alcotest.testable Incdb_bignum.Qnum.pp Incdb_bignum.Qnum.equal

let test_rank () =
  let g = Generators.complete 4 in
  (* B(K4) rank: a maximal pseudoforest can carry all nodes with one cycle
     per component: 4 edges. *)
  Alcotest.(check int) "rank K4" 4 (Bicircular.rank g (Graph.edges g));
  let t = Generators.path 4 in
  Alcotest.(check int) "rank path" 3 (Bicircular.rank t (Graph.edges t))

let test_tutte_counts_pf () =
  List.iter
    (fun g ->
      check_nat "T(2,1) = #PF"
        (Pseudoforest.count_pseudoforests g)
        (Bicircular.count_independent_sets g))
    [
      Generators.complete 3;
      Generators.complete 4;
      Generators.cycle 5;
      Generators.path 5;
      Generators.star 5;
      Generators.grid 2 3;
    ]

let prop_tutte_pf =
  QCheck.Test.make ~count:30 ~name:"T(B(G);2,1) = #PF on random graphs"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let g = Generators.random ~seed 6 1 2 in
      QCheck.assume (Graph.edge_count g <= 12);
      Nat.equal
        (Pseudoforest.count_pseudoforests g)
        (Bicircular.count_independent_sets g))

let test_basis_count () =
  (* For a triangle, the bases of B(K3) are all 3-edge subsets (the whole
     triangle): one basis. *)
  check_nat "bases of B(K3)" Nat.one
    (Bicircular.basis_count (Generators.complete 3));
  (* For a tree, the single basis is the whole edge set. *)
  check_nat "bases of a path" Nat.one (Bicircular.basis_count (Generators.path 5))

let test_stretch_identity () =
  List.iter
    (fun (g, k) ->
      Alcotest.(check bool)
        (Printf.sprintf "Brylawski identity, k=%d" k)
        true
        (Bicircular.stretch_identity_holds g k))
    [
      (Generators.complete 3, 2);
      (Generators.complete 3, 3);
      (Generators.cycle 4, 2);
      (Generators.path 4, 2);
      (Generators.star 4, 2);
    ]

let prop_stretch_identity =
  QCheck.Test.make ~count:12 ~name:"Brylawski identity on random graphs"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let g = Generators.random ~seed 5 1 2 in
      QCheck.assume
        (Graph.edge_count g >= 1 && Graph.edge_count g <= 8);
      Bicircular.stretch_identity_holds g 2)

let test_tutte_rational_point () =
  (* T at a non-integer point stays exact over Q; evaluate and check
     against a directly computed value for a single edge: subsets {} and
     {e}, ranks 0 and 1 -> T(x,y) = (x-1) + 1 = x. *)
  let g = Generators.path 2 in
  let x = Incdb_bignum.Qnum.of_ints 7 2 in
  Alcotest.check qn "T(B(edge); x, y) = x" x
    (Bicircular.tutte g x (Incdb_bignum.Qnum.of_ints 1 3))

let () =
  Alcotest.run "matroid"
    [
      ( "bicircular",
        [
          Alcotest.test_case "rank" `Quick test_rank;
          Alcotest.test_case "tutte counts PF" `Quick test_tutte_counts_pf;
          Alcotest.test_case "basis count" `Quick test_basis_count;
          Alcotest.test_case "stretch identity" `Quick test_stretch_identity;
          Alcotest.test_case "rational point" `Quick test_tutte_rational_point;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_tutte_pf; prop_stretch_identity ] );
    ]
