open Incdb_relational
open Incdb_cq

let q s = Cq.of_string s

(* ------------------------------------------------------------------ *)
(* Parser and printer                                                  *)
(* ------------------------------------------------------------------ *)

let test_parse () =
  let parsed = q "R(x,y), S(x)" in
  Alcotest.(check int) "two atoms" 2 (List.length parsed);
  Alcotest.(check (list string)) "relations" [ "R"; "S" ] (Cq.relations parsed);
  Alcotest.(check (list string)) "variables" [ "x"; "y" ] (Cq.variables parsed);
  let round = Cq.of_string (Cq.to_string parsed) in
  Alcotest.(check string) "round trip" (Cq.to_string parsed) (Cq.to_string round)

let test_parse_wedge () =
  let parsed = q "R(x) \xe2\x88\xa7 S(x,y) \xe2\x88\xa7 T(y)" in
  Alcotest.(check int) "three atoms" 3 (List.length parsed);
  let slash = q {|R(x) /\ S(x,y) /\ T(y)|} in
  Alcotest.(check string) "same query" (Cq.to_string parsed) (Cq.to_string slash)

let test_parse_errors () =
  let fails s =
    match Cq.of_string s with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "empty" true (fails "");
  Alcotest.(check bool) "no parens" true (fails "R");
  Alcotest.(check bool) "empty args" true (fails "R()");
  Alcotest.(check bool) "dangling comma" true (fails "R(x),")

let test_sjf () =
  Alcotest.(check bool) "sjf" true (Cq.is_self_join_free (q "R(x), S(x)"));
  Alcotest.(check bool) "self join" false (Cq.is_self_join_free (q "R(x), R(y)"));
  Alcotest.(check int) "occurrences" 2 (Cq.occurrences (q "R(x,x), S(y)") "x")

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let db facts = Cdb.of_list (List.map (fun (r, args) -> Cdb.fact r args) facts)

let test_eval () =
  let d = db [ ("R", [ "a"; "b" ]); ("R", [ "b"; "b" ]); ("S", [ "b" ]) ] in
  Alcotest.(check bool) "R(x,x)" true (Cq.eval (q "R(x,x)") d);
  Alcotest.(check bool) "R(x,y),S(y)" true (Cq.eval (q "R(x,y), S(y)") d);
  Alcotest.(check bool) "R(x,y),S(x)" true (Cq.eval (q "R(x,y), S(x)") d);
  Alcotest.(check bool) "S(x),T(x) no T" false (Cq.eval (q "S(x), T(x)") d);
  let d2 = db [ ("R", [ "a"; "b" ]); ("S", [ "c" ]) ] in
  Alcotest.(check bool) "join fails" false (Cq.eval (q "R(x,y), S(y)") d2);
  Alcotest.(check bool) "no diag" false (Cq.eval (q "R(x,x)") d2)

let test_homomorphisms () =
  let d = db [ ("R", [ "a"; "b" ]); ("R", [ "b"; "c" ]) ] in
  let homs = Cq.homomorphisms (q "R(x,y)") d in
  Alcotest.(check int) "two homs" 2 (List.length homs);
  let homs2 = Cq.homomorphisms (q "R(x,y), S(y)") d in
  Alcotest.(check int) "no homs" 0 (List.length homs2)

let test_query_eval () =
  let d = db [ ("R", [ "a" ]) ] in
  let union = Query.Union [ q "S(x)"; q "R(x)" ] in
  Alcotest.(check bool) "union" true (Query.eval union d);
  Alcotest.(check bool) "negation" false (Query.eval (Query.Not union) d);
  Alcotest.(check bool) "monotone" true (Query.is_monotone union);
  Alcotest.(check bool) "not monotone" false (Query.is_monotone (Query.Not union))

(* ------------------------------------------------------------------ *)
(* The pattern relation (Definition 3.1)                               *)
(* ------------------------------------------------------------------ *)

let is_pat p target = Pattern.is_pattern_of (q p) (q target)

let test_pattern_example_3_2 () =
  (* q' = R'(u,u,y) ∧ S'(z) is a pattern of
     q = R(u,x,u) ∧ S'(y,y) ∧ T(x,s,z,s). *)
  Alcotest.(check bool) "Example 3.2" true
    (is_pat "Rp(u,u,y), Sp(z)" "R(u,x,u), Sp(y,y), T(x,s,z,s)")

let test_pattern_reflexive () =
  List.iter
    (fun s -> Alcotest.(check bool) ("refl " ^ s) true (is_pat s s))
    [ "R(x,x)"; "R(x), S(x)"; "R(x), S(x,y), T(y)"; "R(x,y), S(x,y)" ]

let test_pattern_positive () =
  Alcotest.(check bool) "Rxx in R(u,x,u)" true (is_pat "R(x,x)" "R(u,x,u)");
  Alcotest.(check bool) "RxSx in RxySx" true (is_pat "R(x), S(x)" "R(x,y), S(x)");
  Alcotest.(check bool) "Rx in anything" true (is_pat "R(x)" "T(a,b,c)");
  Alcotest.(check bool) "Rxy in ternary" true (is_pat "R(x,y)" "T(a,b,c)");
  Alcotest.(check bool) "path pattern" true
    (is_pat "R(x), S(x,y), T(y)" "A(x,u), B(x,y), C(y,v)");
  Alcotest.(check bool) "RxySxy in bigger" true
    (is_pat "R(x,y), S(x,y)" "A(u,x,y), B(y,x,w)")

let test_pattern_negative () =
  Alcotest.(check bool) "Rxy not in Rxx" false (is_pat "R(x,y)" "R(x,x)");
  Alcotest.(check bool) "Rxx not in Rxy" false (is_pat "R(x,x)" "R(x,y)");
  Alcotest.(check bool) "RxSx not in disjoint" false
    (is_pat "R(x), S(x)" "R(x,y), S(z)");
  Alcotest.(check bool) "path not in two-atom" false
    (is_pat "R(x), S(x,y), T(y)" "R(x,y), S(x,y)");
  Alcotest.(check bool) "RxySxy needs two shared" false
    (is_pat "R(x,y), S(x,y)" "R(x,y), S(x,z)");
  Alcotest.(check bool) "cannot merge atoms" false
    (is_pat "R(x,y)" "R(x), S(y)")

let test_pattern_helpers () =
  let check name f query expected =
    Alcotest.(check bool) name expected (f (q query))
  in
  check "has_rxx yes" Pattern.has_rxx "R(a,b,a)" true;
  check "has_rxx no" Pattern.has_rxx "R(a,b), S(b)" false;
  check "has_rx_sx yes" Pattern.has_rx_sx "R(a,b), S(b)" true;
  check "has_rx_sx no" Pattern.has_rx_sx "R(a,b), S(c)" false;
  check "has_rxy yes" Pattern.has_rxy "R(a,b)" true;
  check "has_rxy no (unary)" Pattern.has_rxy "R(a), S(b)" false;
  check "has_rxy no (diag)" Pattern.has_rxy "R(a,a)" false;
  check "path helper yes" Pattern.has_rx_sxy_ty "R(x), S(x,y), T(y,z), U(z)" true;
  check "path helper no" Pattern.has_rx_sxy_ty "R(x), S(x), T(x)" false;
  check "rxysxy helper" Pattern.has_rxy_sxy "R(u,v,w), S(v,w)" true

let test_embedding_witness () =
  match Pattern.find_embedding (q "R(x,x)") (q "A(u,y,u)") with
  | None -> Alcotest.fail "expected embedding"
  | Some e ->
    (match e.Pattern.atom_images with
    | [ (0, posmap) ] ->
      (* positions 0 and 2 (the two u's) survive, position 1 deleted *)
      Alcotest.(check bool) "pos1 deleted" true (posmap.(1) = None);
      Alcotest.(check bool) "two kept" true
        (posmap.(0) <> None && posmap.(2) <> None)
    | _ -> Alcotest.fail "unexpected embedding shape")

(* ------------------------------------------------------------------ *)
(* Connectivity graph (Lemma A.11)                                     *)
(* ------------------------------------------------------------------ *)

let test_conngraph () =
  let comps = Conngraph.components (q "R(x), S(x,u), T(y,v), U(y)") in
  Alcotest.(check int) "two components" 2 (List.length comps);
  Alcotest.(check bool) "all single-var cliques" true
    (List.for_all Conngraph.component_is_single_variable_clique comps);
  let bad = Conngraph.components (q "R(x,y), S(x,y)") in
  Alcotest.(check bool) "double label not a single-var clique" false
    (List.for_all Conngraph.component_is_single_variable_clique bad);
  let path = Conngraph.components (q "R(x), S(x,y), T(y)") in
  Alcotest.(check int) "path is one component" 1 (List.length path);
  Alcotest.(check bool) "path not a clique" false
    (List.for_all Conngraph.component_is_single_variable_clique path)

(* ------------------------------------------------------------------ *)
(* Containment and minimization (homomorphism theorem)                 *)
(* ------------------------------------------------------------------ *)

let test_containment () =
  let c a b = Containment.contained (q a) (q b) in
  (* R(x,x) |= R(x,y): the diagonal implies the projection. *)
  Alcotest.(check bool) "Rxx in Rxy" true (c "R(x,x)" "R(x,y)");
  Alcotest.(check bool) "Rxy not in Rxx" false (c "R(x,y)" "R(x,x)");
  (* Conjunction is contained in each conjunct. *)
  Alcotest.(check bool) "RxSx in Rx" true (c "R(x), S(x)" "R(x)");
  Alcotest.(check bool) "Rx not in RxSx" false (c "R(x)" "R(x), S(x)");
  (* Shared variable strengthens: R(x),S(x) |= R(x),S(y). *)
  Alcotest.(check bool) "join in cross" true (c "R(x), S(x)" "R(x), S(y)");
  Alcotest.(check bool) "cross not in join" false (c "R(x), S(y)" "R(x), S(x)");
  Alcotest.(check bool) "equivalent to itself" true
    (Containment.equivalent (q "R(x,y), S(y)") (q "R(x,y), S(y)"))

let test_minimize () =
  (* Self-join-free queries are their own cores. *)
  List.iter
    (fun s ->
      Alcotest.(check string) ("core of " ^ s) (Cq.to_string (q s))
        (Cq.to_string (Containment.minimize (q s))))
    [ "R(x,x)"; "R(x), S(x)"; "R(x), S(x,y), T(y)" ];
  (* With self-joins, redundant atoms disappear: R(x,y) ∧ R(u,v) has
     core R(x,y). *)
  let redundant = Cq.make [ Cq.atom "R" [ "x"; "y" ]; Cq.atom "R" [ "u"; "v" ] ] in
  Alcotest.(check int) "redundant atom dropped" 1
    (List.length (Containment.minimize redundant));
  (* R(x,y) ∧ R(y,x) is already minimal. *)
  let cycle2 = Cq.make [ Cq.atom "R" [ "x"; "y" ]; Cq.atom "R" [ "y"; "x" ] ] in
  Alcotest.(check int) "2-cycle stays" 2 (List.length (Containment.minimize cycle2))

let prop_containment_vs_eval =
  (* Semantic check of the homomorphism theorem on random complete
     databases: if q ⊑ q' then every database satisfying q satisfies
     q'. *)
  QCheck.Test.make ~count:100 ~name:"containment is sound for eval"
    QCheck.(make (QCheck.Gen.pair (QCheck.Gen.int_range 1 1_000_000)
                    (QCheck.Gen.int_range 1 1_000_000)))
    (fun (s1, s2) ->
      let q1 = Gen.random_sjfbcq ~seed:s1 in
      (* make q2 comparable: random query over the same relation names *)
      let q2 = Gen.random_sjfbcq ~seed:s2 in
      let st = Random.State.make [| s1 + s2 |] in
      let db =
        Cdb.of_list
          (List.concat_map
             (fun (a : Cq.atom) ->
               List.init 3 (fun _ ->
                   Cdb.fact a.Cq.rel
                     (List.init (Array.length a.Cq.vars) (fun _ ->
                          string_of_int (Random.State.int st 3)))))
             (q1 @ q2))
      in
      (not (Containment.contained q1 q2))
      || (not (Cq.eval q1 db))
      || Cq.eval q2 db)

let prop_pattern_transitive =
  (* If p is a pattern of q and q is a pattern of r then p is a pattern of
     r; exercised over a fixed corpus. *)
  let corpus =
    [
      "R(x)";
      "R(x,y)";
      "R(x,x)";
      "R(x), S(x)";
      "R(x), S(y)";
      "R(x,y), S(x)";
      "R(x,y), S(x,y)";
      "R(x), S(x,y), T(y)";
      "R(u,x,u), S(y,y), T(x,s,z,s)";
      "A(x,u), B(x,y), C(y,v)";
    ]
  in
  QCheck.Test.make ~count:200 ~name:"pattern relation is transitive"
    QCheck.(make (QCheck.Gen.triple
                    (QCheck.Gen.int_bound 9)
                    (QCheck.Gen.int_bound 9)
                    (QCheck.Gen.int_bound 9)))
    (fun (i, j, k) ->
      let p = q (List.nth corpus i)
      and r = q (List.nth corpus j)
      and s = q (List.nth corpus k) in
      (not (Pattern.is_pattern_of p r && Pattern.is_pattern_of r s))
      || Pattern.is_pattern_of p s)

let () =
  Alcotest.run "cq"
    [
      ( "syntax",
        [
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "wedge syntax" `Quick test_parse_wedge;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "self-join-free" `Quick test_sjf;
        ] );
      ( "eval",
        [
          Alcotest.test_case "bcq eval" `Quick test_eval;
          Alcotest.test_case "homomorphisms" `Quick test_homomorphisms;
          Alcotest.test_case "query eval" `Quick test_query_eval;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "example 3.2" `Quick test_pattern_example_3_2;
          Alcotest.test_case "reflexive" `Quick test_pattern_reflexive;
          Alcotest.test_case "positive" `Quick test_pattern_positive;
          Alcotest.test_case "negative" `Quick test_pattern_negative;
          Alcotest.test_case "helpers" `Quick test_pattern_helpers;
          Alcotest.test_case "witness" `Quick test_embedding_witness;
        ] );
      ( "conngraph",
        [ Alcotest.test_case "components" `Quick test_conngraph ] );
      ( "containment",
        [
          Alcotest.test_case "homomorphism theorem" `Quick test_containment;
          Alcotest.test_case "minimization" `Quick test_minimize;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_pattern_transitive; prop_containment_vs_eval ] );
    ]
