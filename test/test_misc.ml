(* Edge-case coverage for the supporting API surface: settings, database
   utilities, term/values, error paths of the substrates. *)

open Incdb_bignum
open Incdb_relational
open Incdb_cq
open Incdb_incomplete
open Incdb_graph
open Incdb_core

(* ------------------------------------------------------------------ *)
(* Settings                                                            *)
(* ------------------------------------------------------------------ *)

let test_setting_names () =
  let names = List.map Setting.to_string Setting.all in
  Alcotest.(check (list string))
    "paper notation"
    [
      "#Val"; "#Val_Cd"; "#Val^u"; "#Val^u_Cd";
      "#Comp"; "#Comp_Cd"; "#Comp^u"; "#Comp^u_Cd";
    ]
    names;
  Alcotest.(check int) "eight settings" 8 (List.length Setting.all)

let test_setting_of_idb () =
  let codd_uniform =
    Idb.make [ Idb.fact "R" [ Term.null "n" ] ] (Idb.Uniform [ "0" ])
  in
  Alcotest.(check string) "codd uniform val" "#Val^u_Cd"
    (Setting.to_string (Setting.of_idb Setting.Valuations codd_uniform));
  let naive_nonuniform =
    Idb.make
      [ Idb.fact "R" [ Term.null "n" ]; Idb.fact "S" [ Term.null "n" ] ]
      (Idb.Nonuniform [ ("n", [ "0" ]) ])
  in
  Alcotest.(check string) "naive non-uniform comp" "#Comp"
    (Setting.to_string (Setting.of_idb Setting.Completions naive_nonuniform))

(* ------------------------------------------------------------------ *)
(* Idb utilities                                                       *)
(* ------------------------------------------------------------------ *)

let sample_db () =
  Idb.make
    [
      Idb.fact_of_strings "R" [ "?x"; "a" ];
      Idb.fact_of_strings "S" [ "?y" ];
      Idb.fact_of_strings "T" [ "b" ];
    ]
    (Idb.Nonuniform [ ("x", [ "0"; "1" ]); ("y", [ "0" ]) ])

let test_idb_restrict () =
  let db = sample_db () in
  let restricted = Idb.restrict db [ "R"; "T" ] in
  Alcotest.(check (list string)) "relations kept" [ "R"; "T" ]
    (Idb.relations restricted);
  Alcotest.(check (list string)) "nulls shrink" [ "x" ] (Idb.nulls restricted)

let test_idb_map_table () =
  let db = sample_db () in
  let swapped =
    Idb.map_table db (fun facts ->
        List.filter (fun (f : Idb.fact) -> f.Idb.rel <> "T") facts)
  in
  Alcotest.(check (list string)) "T dropped" [ "R"; "S" ]
    (Idb.relations swapped);
  (* duplicate facts are collapsed on reconstruction *)
  let doubled = Idb.map_table db (fun facts -> facts @ facts) in
  Alcotest.(check int) "set semantics on rebuild" 3
    (List.length (Idb.facts doubled))

let test_idb_table_constants () =
  let db = sample_db () in
  Alcotest.(check (list string)) "constants in order" [ "a"; "b" ]
    (Idb.table_constants db);
  Alcotest.check_raises "domain_of unknown null" Not_found (fun () ->
      ignore (Idb.domain_of db "zz"))

let test_term_printing () =
  Alcotest.(check string) "const" "a" (Term.to_string (Term.const "a"));
  Alcotest.(check bool) "null marker" true
    (String.length (Term.to_string (Term.null "n")) > 1);
  Alcotest.(check bool) "is_null" true (Term.is_null (Term.null "n"));
  Alcotest.(check bool) "not null" false (Term.is_null (Term.const "c"))

(* ------------------------------------------------------------------ *)
(* Cdb                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cdb_operations () =
  let a = Cdb.of_list [ Cdb.fact "R" [ "1" ]; Cdb.fact "R" [ "2" ] ] in
  let b = Cdb.of_list [ Cdb.fact "R" [ "2" ]; Cdb.fact "S" [ "1" ] ] in
  let u = Cdb.union a b in
  Alcotest.(check int) "union dedups" 3 (Cdb.cardinal u);
  Alcotest.(check bool) "subset" true (Cdb.subset a u);
  Alcotest.(check bool) "not subset" false (Cdb.subset u a);
  Alcotest.(check (list string)) "relations" [ "R"; "S" ] (Cdb.relations u);
  Alcotest.(check (list string)) "constants" [ "1"; "2" ] (Cdb.constants u);
  Alcotest.(check int) "facts_of" 2 (List.length (Cdb.facts_of u "R"))

(* ------------------------------------------------------------------ *)
(* Zint and Qnum edges                                                 *)
(* ------------------------------------------------------------------ *)

let test_zint_edges () =
  Alcotest.(check int) "neg pow odd" (-8) (Zint.to_int (Zint.pow (Zint.of_int (-2)) 3));
  Alcotest.(check int) "neg pow even" 16 (Zint.to_int (Zint.pow (Zint.of_int (-2)) 4));
  Alcotest.(check string) "of_string negative" "-42"
    (Zint.to_string (Zint.of_string "-42"));
  Alcotest.check_raises "to_nat on negative"
    (Invalid_argument "Zint.to_nat: negative value") (fun () ->
      ignore (Zint.to_nat (Zint.of_int (-1))));
  Alcotest.(check int) "gcd via Zint" 6
    (Nat.to_int (Zint.gcd (Zint.of_int (-12)) (Zint.of_int 18)))

let test_qnum_edges () =
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () ->
      ignore (Qnum.make Zint.one Zint.zero));
  (* sign normalization: 1/-2 = -1/2 *)
  let q = Qnum.make Zint.one (Zint.of_int (-2)) in
  Alcotest.(check string) "sign moves to numerator" "-1/2" (Qnum.to_string q);
  Alcotest.(check int) "sign" (-1) (Qnum.sign q);
  Alcotest.check_raises "inv zero" Division_by_zero (fun () ->
      ignore (Qnum.inv Qnum.zero));
  Alcotest.(check bool) "is_integer" true (Qnum.is_integer (Qnum.of_ints 4 2))

(* ------------------------------------------------------------------ *)
(* Graph substrate edges                                               *)
(* ------------------------------------------------------------------ *)

let test_generator_errors () =
  Alcotest.check_raises "cycle too small"
    (Invalid_argument "Generators.cycle: need at least 3 nodes") (fun () ->
      ignore (Generators.cycle 2));
  Alcotest.check_raises "odd configuration"
    (Invalid_argument "Generators.random_regular_multigraph: n*d must be even")
    (fun () -> ignore (Generators.random_regular_multigraph ~seed:1 3 3));
  Alcotest.check_raises "stretch needs k>=1"
    (Invalid_argument "Generators.k_stretch: k must be positive") (fun () ->
      ignore (Generators.k_stretch (Generators.complete 3) 0))

let test_multigraph_errors () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Multigraph.make: self-loop") (fun () ->
      ignore (Multigraph.make 2 [| (1, 1) |]));
  Alcotest.check_raises "merging degree"
    (Invalid_argument "Multigraph.merging: node degree not in {2, 3}")
    (fun () -> ignore (Multigraph.merging (Generators.complete 5)))

let test_bipartite_of_graph () =
  match Bipartite.of_graph (Generators.cycle 6) with
  | None -> Alcotest.fail "C6 is bipartite"
  | Some (b, side, index) ->
    Alcotest.(check int) "3+3 split" 3 (Bipartite.left_count b);
    Alcotest.(check int) "right side" 3 (Bipartite.right_count b);
    Alcotest.(check int) "edges preserved" 6 (Bipartite.edge_count b);
    Alcotest.(check int) "side array length" 6 (Array.length side);
    Alcotest.(check int) "index array length" 6 (Array.length index)

(* ------------------------------------------------------------------ *)
(* Qmatrix error paths                                                 *)
(* ------------------------------------------------------------------ *)

let test_qmatrix_errors () =
  Alcotest.check_raises "bad dims"
    (Invalid_argument "Qmatrix.make: non-positive dimension") (fun () ->
      ignore (Incdb_linalg.Qmatrix.make 0 1 (fun _ _ -> Qnum.zero)));
  let a = Incdb_linalg.Qmatrix.identity 2 in
  let b = Incdb_linalg.Qmatrix.identity 3 in
  Alcotest.check_raises "mul mismatch"
    (Invalid_argument "Qmatrix.mul: dimension mismatch") (fun () ->
      ignore (Incdb_linalg.Qmatrix.mul a b))

(* ------------------------------------------------------------------ *)
(* Parser odds and ends                                                *)
(* ------------------------------------------------------------------ *)

let test_parser_render_stability () =
  (* Rendering and reparsing a naive table with repeated nulls is stable. *)
  let db =
    Idb.make
      [
        Idb.fact_of_strings "E" [ "?n"; "?n" ];
        Idb.fact_of_strings "E" [ "?n"; "a" ];
      ]
      (Idb.Nonuniform [ ("n", [ "a"; "b" ]) ])
  in
  let round = Idb_parser.of_string (Idb_parser.to_string db) in
  Alcotest.(check bool) "still naive" false (Idb.is_codd round);
  Gen.check_nat "same total" (Idb.total_valuations db)
    (Idb.total_valuations round);
  Gen.check_nat "same #Val"
    (Brute.count_valuations (Query.Bcq (Cq.of_string "E(x,x)")) db)
    (Brute.count_valuations (Query.Bcq (Cq.of_string "E(x,x)")) round)

let () =
  Alcotest.run "misc"
    [
      ( "settings",
        [
          Alcotest.test_case "names" `Quick test_setting_names;
          Alcotest.test_case "of_idb" `Quick test_setting_of_idb;
        ] );
      ( "idb-utils",
        [
          Alcotest.test_case "restrict" `Quick test_idb_restrict;
          Alcotest.test_case "map_table" `Quick test_idb_map_table;
          Alcotest.test_case "constants & errors" `Quick test_idb_table_constants;
          Alcotest.test_case "terms" `Quick test_term_printing;
        ] );
      ("cdb", [ Alcotest.test_case "set operations" `Quick test_cdb_operations ]);
      ( "numbers",
        [
          Alcotest.test_case "zint edges" `Quick test_zint_edges;
          Alcotest.test_case "qnum edges" `Quick test_qnum_edges;
        ] );
      ( "graph-edges",
        [
          Alcotest.test_case "generator errors" `Quick test_generator_errors;
          Alcotest.test_case "multigraph errors" `Quick test_multigraph_errors;
          Alcotest.test_case "bipartite split" `Quick test_bipartite_of_graph;
          Alcotest.test_case "qmatrix errors" `Quick test_qmatrix_errors;
        ] );
      ( "parser",
        [ Alcotest.test_case "render stability" `Quick test_parser_render_stability ] );
    ]
