(* Tests for the bitset lineage compiler (Lineage) and the completion
   kernel built on it (Codd.kernel, Comp_candidates.count):

   - compiled DNF satisfaction agrees with materialized Query.eval on
     every sub-database of a random universe;
   - the mask-form completion test agrees with the Lemma B.2 matching
     test;
   - the kernel enumerator agrees with the seed enumerator (kept as
     Comp_candidates.count_reference) with and without queries;
   - sharded totals are bit-identical across job counts;
   - the typed Too_many_candidates error carries the real universe
     size. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_relational
open Incdb_core

let check_nat = Gen.check_nat

(* A random Codd table over [schema] whose candidate universe fits
   [limit] bits; [None] when the draw is too big (qcheck assumes). *)
let small_universe ~seed ~limit schema =
  let schema =
    (* One arity per relation: duplicate relation names across the atoms
       of random queries would otherwise produce conflicting rows. *)
    List.sort_uniq compare schema
    |> List.fold_left
         (fun acc (r, a) -> if List.mem_assoc r acc then acc else (r, a) :: acc)
         []
  in
  let db =
    Gen.random_idb ~seed ~schema ~rows:2 ~codd:true ~uniform:(seed mod 2 = 0)
  in
  match Comp_candidates.universe_within db ~limit with
  | Some u -> Some (db, u)
  | None -> None

let subset_of universe mask =
  Cdb.of_list
    (List.filteri
       (fun i _ -> mask land (1 lsl i) <> 0)
       (Array.to_list universe))

(* ------------------------------------------------------------------ *)
(* Lineage compilation vs materialized evaluation                      *)
(* ------------------------------------------------------------------ *)

let lineage_agrees q universe =
  match Lineage.compile q universe with
  | None -> QCheck.assume_fail ()
  | Some l ->
    let m = Array.length universe in
    List.for_all
      (fun mask -> Lineage.sat l mask = Query.eval q (subset_of universe mask))
      (List.init (1 lsl m) Fun.id)

let prop_lineage_eval =
  QCheck.Test.make ~count:80 ~name:"lineage DNF = Query.eval on subsets"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let cq = Gen.random_sjfbcq ~seed in
      match small_universe ~seed ~limit:10 (Gen.schema_of_query cq) with
      | None -> QCheck.assume_fail ()
      | Some (_, universe) ->
        lineage_agrees (Query.Bcq cq) universe
        && lineage_agrees (Query.Not (Query.Bcq cq)) universe)

let prop_lineage_union =
  QCheck.Test.make ~count:40 ~name:"lineage of unions and inequalities"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let cq1 = Gen.random_sjfbcq ~seed in
      let cq2 = Gen.random_sjfbcq ~seed:(seed + 7919) in
      let q = Query.Union [ cq1; cq2 ] in
      match
        small_universe ~seed ~limit:8
          (Gen.schema_of_query cq1 @ Gen.schema_of_query cq2)
      with
      | None -> QCheck.assume_fail ()
      | Some (_, universe) ->
        lineage_agrees q universe
        &&
        let vars =
          match Cq.variables cq1 with x :: y :: _ -> [ (x, y) ] | _ -> []
        in
        lineage_agrees (Query.Bcq_neq (cq1, vars)) universe)

let test_lineage_semantic_uncompilable () =
  let q =
    Query.Semantic
      { Query.name = "opaque"; monotone = true; sem_eval = (fun _ -> true) }
  in
  let universe = [| Cdb.fact "R" [ "a" ] |] in
  Alcotest.(check bool)
    "Semantic does not compile" true
    (Lineage.compile q universe = None);
  Alcotest.(check bool)
    "negated Semantic does not compile" true
    (Lineage.compile (Query.Not q) universe = None)

let test_lineage_minimality () =
  (* R(x) over {R(a), R(b)}: two singleton clauses, none subsumed; the
     2-atom match footprints R(a),R(b) are subsumed away. *)
  let universe = [| Cdb.fact "R" [ "a" ]; Cdb.fact "R" [ "b" ] |] in
  match Lineage.compile (Query.Bcq (Cq.of_string "R(x)")) universe with
  | None -> Alcotest.fail "R(x) must compile"
  | Some l ->
    Alcotest.(check int) "two minimal clauses" 2 (Lineage.clause_count l);
    Alcotest.(check bool) "positive" false (Lineage.is_negated l);
    Array.iter
      (fun c -> Alcotest.(check int) "singleton clause" 1 (Lineage.popcount c))
      (Lineage.clauses l)

(* ------------------------------------------------------------------ *)
(* Mask completion test vs Lemma B.2                                   *)
(* ------------------------------------------------------------------ *)

let prop_kernel_is_completion =
  QCheck.Test.make ~count:80
    ~name:"Codd.kernel_is_completion = Codd.is_completion"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema:[ ("R", 1); ("S", 2) ] ~rows:2 ~codd:true
          ~uniform:(seed mod 2 = 0)
      in
      match Comp_candidates.universe_within db ~limit:10 with
      | None -> QCheck.assume_fail ()
      | Some universe ->
        let k = Codd.kernel db ~universe in
        let m = Array.length universe in
        List.for_all
          (fun mask ->
            Codd.kernel_is_completion k mask
            = Codd.is_completion db (subset_of universe mask))
          (List.init (1 lsl m) Fun.id))

(* ------------------------------------------------------------------ *)
(* Kernel enumerator vs seed enumerator                                *)
(* ------------------------------------------------------------------ *)

let prop_kernel_vs_reference =
  QCheck.Test.make ~count:60 ~name:"kernel count = seed count"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema:[ ("R", 1); ("S", 1) ] ~rows:3 ~codd:true
          ~uniform:(seed mod 2 = 0)
      in
      QCheck.assume (Comp_candidates.universe_within db ~limit:12 <> None);
      let q = Query.Bcq (Cq.of_string "R(x), S(x)") in
      Nat.equal (Comp_candidates.count db)
        (Comp_candidates.count_reference db)
      && Nat.equal
           (Comp_candidates.count ~query:q db)
           (Comp_candidates.count_reference ~query:q db)
      (* Negated and opaque queries exercise the negated-DNF and
         materialized fallback leaves. *)
      && Nat.equal
           (Comp_candidates.count ~query:(Query.Not q) db)
           (Comp_candidates.count_reference ~query:(Query.Not q) db)
      && Nat.equal
           (Comp_candidates.count
              ~query:
                (Query.Semantic
                   {
                     Query.name = "has R";
                     monotone = true;
                     sem_eval = (fun s -> Cdb.cardinal s > 0);
                   })
              db)
           (Comp_candidates.count_reference
              ~query:
                (Query.Semantic
                   {
                     Query.name = "has R";
                     monotone = true;
                     sem_eval = (fun s -> Cdb.cardinal s > 0);
                   })
              db))

let prop_kernel_jobs_invariant =
  QCheck.Test.make ~count:40 ~name:"kernel totals bit-identical across jobs"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema:[ ("R", 2) ] ~rows:3 ~codd:true
          ~uniform:(seed mod 2 = 0)
      in
      QCheck.assume (Comp_candidates.universe_within db ~limit:12 <> None);
      let q = Query.Bcq (Cq.of_string "R(x,x)") in
      let n1 = Comp_candidates.count ~query:q ~jobs:1 db in
      let n2 = Comp_candidates.count ~query:q ~jobs:2 db in
      let n4 = Comp_candidates.count ~query:q ~jobs:4 db in
      Nat.equal n1 n2 && Nat.equal n1 n4)

let test_kernel_beyond_seed_ceiling () =
  (* 24 unary nulls over a 24-value domain: universe 24 > the seed's 22
     ceiling, fine for the kernel's default 26. *)
  let db =
    Idb.make
      (List.init 4 (fun i -> Idb.fact "R" [ Term.null (Printf.sprintf "n%d" i) ]))
      (Idb.Uniform (List.init 24 (fun i -> "v" ^ string_of_int i)))
  in
  Alcotest.check_raises "seed refuses"
    (Invalid_argument "Comp_candidates.count: candidate universe too large")
    (fun () -> ignore (Comp_candidates.count_reference db));
  (* Completions are the nonempty subsets of at most 4 values:
     C(24,1) + ... + C(24,4). *)
  let expected =
    Nat.sum (List.map (fun k -> Combinat.binomial 24 k) [ 1; 2; 3; 4 ])
  in
  check_nat "kernel handles 24 candidates" expected
    (Comp_candidates.count ~jobs:2 db);
  (* Theorem 4.6 agrees. *)
  check_nat "Thm 4.6 agrees" expected (Count_comp.uniform_unary db)

let test_too_many_candidates_typed () =
  let db =
    Idb.make
      [ Idb.fact "R" [ Term.null "n" ] ]
      (Idb.Uniform (List.init 90 (fun i -> "v" ^ string_of_int i)))
  in
  (match Comp_candidates.count db with
  | (_ : Nat.t) -> Alcotest.fail "expected Too_many_candidates"
  | exception Comp_candidates.Too_many_candidates { universe; limit } ->
    Alcotest.(check int) "universe size" 90 universe;
    Alcotest.(check int) "limit" Comp_candidates.default_max_candidates limit);
  (* An explicit higher cap lifts the error (the wide path picks it up:
     90 candidates no longer fit one mask word). *)
  check_nat "explicit cap" (Nat.of_int 90)
    (Comp_candidates.count ~max_candidates:90 db);
  (* Forcing single-word masks re-imposes the word ceiling, as a typed
     error rather than a wrong answer. *)
  (match
     Comp_candidates.count ~max_candidates:90 ~mask:Comp_candidates.Int_masks
       db
   with
  | (_ : Nat.t) -> Alcotest.fail "expected Too_many_candidates under Int_masks"
  | exception Comp_candidates.Too_many_candidates { universe; limit } ->
    Alcotest.(check int) "forced-int universe" 90 universe;
    Alcotest.(check int) "forced-int limit" Lineage.max_universe limit)

let test_universe_within_probe () =
  let db =
    Idb.make
      [ Idb.fact "R" [ Term.null "n" ] ]
      (Idb.Uniform (List.init 8 (fun i -> "v" ^ string_of_int i)))
  in
  (match Comp_candidates.universe_within db ~limit:8 with
  | Some u -> Alcotest.(check int) "full universe" 8 (Array.length u)
  | None -> Alcotest.fail "fits exactly");
  Alcotest.(check bool)
    "early exit" true
    (Comp_candidates.universe_within db ~limit:7 = None)

(* ------------------------------------------------------------------ *)
(* Wide masks: int/wide equivalence, the lifted ceiling, boundaries    *)
(* ------------------------------------------------------------------ *)

module Metrics = Incdb_obs.Metrics

let kernel_counters =
  [
    "comp_kernel.clauses_compiled";
    "comp_kernel.subsets_checked";
    "comp_kernel.masks_pruned";
    "comp_kernel.shards_run";
    "completions_checked";
  ]

(* Run [f] with metrics enabled and return its result together with the
   per-counter deltas it caused.  The test binary is single-domain
   outside the kernel's own pool, so deltas are attributable. *)
let with_counter_deltas f =
  let v n = Metrics.value (Metrics.counter n) in
  let before = List.map v kernel_counters in
  let was = Incdb_obs.Runtime.enabled () in
  Incdb_obs.Runtime.set_enabled true;
  let y =
    Fun.protect ~finally:(fun () -> Incdb_obs.Runtime.set_enabled was) f
  in
  (y, List.map2 (fun n b -> (n, v n - b)) kernel_counters before)

(* The ISSUE's core contract: on any instance the single-word kernel can
   handle, forcing wide masks changes nothing observable — not the
   count, and not the work metrics (subsets checked, masks pruned,
   shards run) either, because the enumeration order and the shard split
   are representation-independent. *)
let prop_int_wide_masks_identical =
  QCheck.Test.make ~count:40
    ~name:"wide masks = int masks (counts and metrics) below the ceiling"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema:[ ("R", 1); ("S", 1) ] ~rows:3 ~codd:true
          ~uniform:(seed mod 2 = 0)
      in
      QCheck.assume (Comp_candidates.universe_within db ~limit:12 <> None);
      let q = Query.Bcq (Cq.of_string "R(x), S(x)") in
      let run mask query =
        with_counter_deltas (fun () ->
            Comp_candidates.count ?query ~mask ~jobs:2 db)
      in
      List.for_all
        (fun query ->
          let ni, di = run Comp_candidates.Int_masks query in
          let nw, dw = run Comp_candidates.Wide_masks query in
          Nat.equal ni nw && di = dw)
        [ None; Some q; Some (Query.Not q) ])

let uniform_unary ~d ~n =
  Idb.make
    (List.init n (fun i -> Idb.fact "R" [ Term.null (Printf.sprintf "n%d" i) ]))
    (Idb.Uniform (List.init d (fun i -> "v" ^ string_of_int i)))

let test_wide_beyond_word_ceiling () =
  (* 65 candidates: one word cannot hold the universe, the wide kernel
     must agree with brute-force enumeration and the closed form
     C(65,1) + C(65,2), bit-identically at every job count. *)
  let db = uniform_unary ~d:65 ~n:2 in
  let expected =
    Nat.add (Combinat.binomial 65 1) (Combinat.binomial 65 2)
  in
  let counts =
    List.map (fun jobs -> Comp_candidates.count ~jobs db) [ 1; 2; 4 ]
  in
  List.iteri
    (fun i n ->
      check_nat (Printf.sprintf "wide total at jobs %d" (List.nth [ 1; 2; 4 ] i))
        expected n)
    counts;
  check_nat "Brute_par agrees" expected
    (Incdb_par.Brute_par.count_all_completions ~jobs:2 db);
  check_nat "Thm 4.6 agrees" expected (Count_comp.uniform_unary db);
  (* A query leg past the ceiling: R(x) never prunes here (every
     completion is nonempty), so pair it with a negated query that
     does. *)
  let q = Query.Bcq (Cq.of_string "R(x)") in
  check_nat "wide query = brute query"
    (Incdb_par.Brute_par.count_completions ~jobs:2 q db)
    (Comp_candidates.count ~query:q ~jobs:2 db);
  check_nat "wide negated query"
    (Incdb_par.Brute_par.count_completions ~jobs:2 (Query.Not q) db)
    (Comp_candidates.count ~query:(Query.Not q) ~jobs:2 db)

(* A Codd table whose candidate universe is exactly [sizes] summed: one
   unary null per domain block, pairwise-disjoint domains. *)
let disjoint_codd sizes =
  let facts =
    List.mapi
      (fun i _ -> Idb.fact "R" [ Term.null (Printf.sprintf "n%d" i) ])
      sizes
  in
  let doms =
    List.mapi
      (fun i d ->
        ( Printf.sprintf "n%d" i,
          List.init d (fun j -> Printf.sprintf "b%d_%d" i j) ))
      sizes
  in
  Idb.make facts (Idb.Nonuniform doms)

let test_codd_wide_matching_boundary () =
  (* Universes of exactly 63, 64 and 65 ground facts — one word plus
     one, two and three bits — so the Kuhn matching's mask walk crosses
     the word boundary.  Verdicts are checked against the materialized
     Codd.is_completion on hand-picked masks covering: a valid
     one-fact-per-null completion (including the highest candidate), a
     same-null double assignment (star holds, matching must fail), and
     an oversized mask (popcount > number of nulls). *)
  List.iter
    (fun sizes ->
      let m = List.fold_left ( + ) 0 sizes in
      let db = disjoint_codd sizes in
      let universe =
        match Comp_candidates.universe_within db ~limit:m with
        | Some u -> u
        | None -> Alcotest.fail "universe must fit exactly"
      in
      Alcotest.(check int) "universe size" m (Array.length universe);
      let k = Codd.Wide.make db ~universe in
      let module W = Bitset.Wide in
      let index_of value =
        let found = ref (-1) in
        Array.iteri
          (fun i f -> if f = Cdb.fact "R" [ value ] then found := i)
          universe;
        Alcotest.(check bool) (value ^ " in universe") true (!found >= 0);
        !found
      in
      let mask_of values =
        List.fold_left
          (fun acc v -> W.set acc (index_of v))
          (W.zero ~width:m) values
      in
      let check_mask name values =
        let mask = mask_of values in
        let subset =
          Cdb.of_list (List.map (fun v -> Cdb.fact "R" [ v ]) values)
        in
        let expected = Codd.is_completion db subset in
        Alcotest.(check bool)
          (Printf.sprintf "%s (m=%d)" name m)
          expected
          (Codd.Wide.is_completion k mask);
        expected
      in
      let last i = Printf.sprintf "b%d_%d" i (List.nth sizes i - 1) in
      Alcotest.(check bool) "valid completion, high bits" true
        (check_mask "one per null" [ "b0_0"; last 1; last 2 ]);
      Alcotest.(check bool) "double assignment fails matching" false
        (check_mask "two from one null" [ "b0_0"; "b0_1"; "b1_0" ]);
      Alcotest.(check bool) "oversized mask" false
        (check_mask "four facts, three nulls"
           [ "b0_0"; "b1_0"; "b2_0"; last 2 ]);
      (* Full count: disjoint domains make completions exactly the
         choice tuples. *)
      let expected = List.fold_left (fun a d -> a * d) 1 sizes in
      check_nat
        (Printf.sprintf "count at universe %d" m)
        (Nat.of_int expected)
        (Comp_candidates.count ~max_candidates:m ~jobs:2 db))
    [ [ 21; 21; 21 ]; [ 21; 21; 22 ]; [ 21; 22; 22 ] ]

let test_too_many_clauses_typed () =
  (* 63 pairwise-compatible singleton clauses: one more than fits a
     conflict-mask word. *)
  let fixes = Array.init 63 (fun i -> [| (i, 0) |]) in
  (match Lineage.conflict_masks fixes with
  | (_ : int array) -> Alcotest.fail "expected Too_many_clauses"
  | exception Lineage.Too_many_clauses { clauses; limit } ->
    Alcotest.(check int) "clauses" 63 clauses;
    Alcotest.(check int) "limit" Lineage.max_universe limit);
  (* One word's worth still works. *)
  Alcotest.(check int) "62 clauses fit" 62
    (Array.length (Lineage.conflict_masks (Array.sub fixes 0 62)))

(* ------------------------------------------------------------------ *)

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "lineage"
    [
      ( "lineage",
        [
          to_alcotest prop_lineage_eval;
          to_alcotest prop_lineage_union;
          Alcotest.test_case "semantic uncompilable" `Quick
            test_lineage_semantic_uncompilable;
          Alcotest.test_case "minimality" `Quick test_lineage_minimality;
        ] );
      ( "kernel",
        [
          to_alcotest prop_kernel_is_completion;
          to_alcotest prop_kernel_vs_reference;
          to_alcotest prop_kernel_jobs_invariant;
          Alcotest.test_case "beyond seed ceiling" `Quick
            test_kernel_beyond_seed_ceiling;
          Alcotest.test_case "typed candidate limit" `Quick
            test_too_many_candidates_typed;
          Alcotest.test_case "universe probe" `Quick test_universe_within_probe;
        ] );
      ( "wide",
        [
          to_alcotest prop_int_wide_masks_identical;
          Alcotest.test_case "beyond word ceiling" `Quick
            test_wide_beyond_word_ceiling;
          Alcotest.test_case "Codd matching at 63/64/65" `Quick
            test_codd_wide_matching_boundary;
          Alcotest.test_case "typed clause limit" `Quick
            test_too_many_clauses_typed;
        ] );
    ]
