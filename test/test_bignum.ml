open Incdb_bignum

let check_int name expected n =
  Alcotest.(check int) name expected (Nat.to_int n)

(* ------------------------------------------------------------------ *)
(* Nat unit tests                                                      *)
(* ------------------------------------------------------------------ *)

let test_basics () =
  check_int "zero" 0 Nat.zero;
  check_int "one" 1 Nat.one;
  check_int "of_int" 123456789 (Nat.of_int 123456789);
  Alcotest.(check string) "to_string small" "42" (Nat.to_string (Nat.of_int 42));
  Alcotest.(check string) "to_string 0" "0" (Nat.to_string Nat.zero);
  Alcotest.(check bool) "is_zero" true (Nat.is_zero Nat.zero);
  Alcotest.(check bool) "is_zero one" false (Nat.is_zero Nat.one)

let test_big_values () =
  (* 2^200 has a well-known decimal expansion. *)
  Alcotest.(check string)
    "2^200"
    "1606938044258990275541962092341162602522202993782792835301376"
    (Nat.to_string (Nat.pow Nat.two 200));
  let big = Nat.of_string "123456789012345678901234567890" in
  Alcotest.(check string)
    "of_string round trip" "123456789012345678901234567890"
    (Nat.to_string big);
  let q, r = Nat.divmod big (Nat.of_int 1000007) in
  Gen.check_nat "divmod reconstruct" big
    (Nat.add (Nat.mul q (Nat.of_int 1000007)) r)

let test_sub_errors () =
  Alcotest.check_raises "sub underflow"
    (Invalid_argument "Nat.sub: result would be negative") (fun () ->
      ignore (Nat.sub Nat.one Nat.two));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Nat.divmod Nat.one Nat.zero))

let test_factorial () =
  Alcotest.(check string)
    "20!" "2432902008176640000"
    (Nat.to_string (Combinat.factorial 20));
  Alcotest.(check string)
    "50!"
    "30414093201713378043612608166064768844377641568960512000000000000"
    (Nat.to_string (Combinat.factorial 50))

let test_binomial () =
  check_int "C(10,3)" 120 (Combinat.binomial 10 3);
  check_int "C(10,0)" 1 (Combinat.binomial 10 0);
  check_int "C(10,10)" 1 (Combinat.binomial 10 10);
  check_int "C(5,7)=0" 0 (Combinat.binomial 5 7);
  check_int "C(52,5)" 2598960 (Combinat.binomial 52 5)

let test_surjections () =
  check_int "surj(3,2)" 6 (Combinat.surj 3 2);
  check_int "surj(4,2)" 14 (Combinat.surj 4 2);
  check_int "surj(n,n)=n!" 24 (Combinat.surj 4 4);
  check_int "surj(2,3)=0" 0 (Combinat.surj 2 3);
  check_int "surj(0,0)=1" 1 (Combinat.surj 0 0);
  check_int "surj(5,0)=0" 0 (Combinat.surj 5 0)

let test_stirling () =
  check_int "S(4,2)" 7 (Combinat.stirling2 4 2);
  check_int "S(5,3)" 25 (Combinat.stirling2 5 3);
  (* surj n m = m! * S(n, m) *)
  for n = 0 to 7 do
    for m = 0 to n do
      Gen.check_nat
        (Printf.sprintf "surj(%d,%d) = %d! * S" n m m)
        (Combinat.surj n m)
        (Nat.mul (Combinat.factorial m) (Combinat.stirling2 n m))
    done
  done

let test_surj_recurrence () =
  (* surj(n, m) = m * (surj(n-1, m) + surj(n-1, m-1)) *)
  for n = 1 to 8 do
    for m = 1 to n do
      Gen.check_nat
        (Printf.sprintf "recurrence surj(%d,%d)" n m)
        (Combinat.surj n m)
        (Nat.mul (Nat.of_int m)
           (Nat.add (Combinat.surj (n - 1) m) (Combinat.surj (n - 1) (m - 1))))
    done
  done

let test_misc_combinat () =
  check_int "falling 5 2" 20 (Combinat.falling 5 2);
  check_int "falling 5 0" 1 (Combinat.falling 5 0);
  check_int "pow2 10" 1024 (Combinat.pow2 10);
  Alcotest.(check int) "subsets size" 16 (List.length (Combinat.subsets [ 1; 2; 3; 4 ]));
  Alcotest.(check int)
    "compositions 4 into 3"
    15
    (List.length (Combinat.int_compositions 4 3));
  Alcotest.(check int)
    "vectors_upto"
    12
    (List.length (Combinat.vectors_upto [ 1; 2; 1 ]))

(* ------------------------------------------------------------------ *)
(* Property-based tests against machine arithmetic                     *)
(* ------------------------------------------------------------------ *)

let small = QCheck.Gen.int_bound 1_000_000

let prop_add =
  QCheck.Test.make ~count:500 ~name:"Nat.add agrees with int"
    QCheck.(make (Gen.pair small small))
    (fun (a, b) ->
      Nat.to_int (Nat.add (Nat.of_int a) (Nat.of_int b)) = a + b)

let prop_mul =
  QCheck.Test.make ~count:500 ~name:"Nat.mul agrees with int"
    QCheck.(make (Gen.pair small small))
    (fun (a, b) ->
      Nat.to_int (Nat.mul (Nat.of_int a) (Nat.of_int b)) = a * b)

let prop_divmod =
  QCheck.Test.make ~count:500 ~name:"Nat.divmod agrees with int"
    QCheck.(make (Gen.pair small (Gen.int_range 1 99999)))
    (fun (a, b) ->
      let q, r = Nat.divmod (Nat.of_int a) (Nat.of_int b) in
      Nat.to_int q = a / b && Nat.to_int r = a mod b)

let prop_string_roundtrip =
  QCheck.Test.make ~count:200 ~name:"Nat decimal round trip"
    QCheck.(make (Gen.list_size (Gen.int_range 1 6) small))
    (fun parts ->
      let n =
        List.fold_left
          (fun acc p -> Nat.add (Nat.mul acc (Nat.of_int 1_000_001)) (Nat.of_int p))
          Nat.zero parts
      in
      Nat.equal n (Nat.of_string (Nat.to_string n)))

let prop_mul_assoc =
  QCheck.Test.make ~count:200 ~name:"Nat.mul associative on large values"
    QCheck.(make (Gen.triple small small small))
    (fun (a, b, c) ->
      let a = Nat.pow (Nat.of_int (a + 2)) 7
      and b = Nat.pow (Nat.of_int (b + 2)) 5
      and c = Nat.of_int c in
      Nat.equal (Nat.mul (Nat.mul a b) c) (Nat.mul a (Nat.mul b c)))

let prop_karatsuba =
  (* Build numbers far above the Karatsuba threshold (32 digits of 31
     bits each, i.e. roughly 1000 bits) and check multiplication against
     an independent identity: (x + y)^2 = x^2 + 2xy + y^2. *)
  QCheck.Test.make ~count:60 ~name:"Karatsuba multiplication identities"
    QCheck.(make (Gen.pair small small))
    (fun (a, b) ->
      let x = Nat.pow (Nat.of_int (a + 2)) 150 in
      let y = Nat.pow (Nat.of_int (b + 3)) 140 in
      let lhs = Nat.mul (Nat.add x y) (Nat.add x y) in
      let rhs =
        Nat.add (Nat.mul x x)
          (Nat.add (Nat.mul (Nat.of_int 2) (Nat.mul x y)) (Nat.mul y y))
      in
      Nat.equal lhs rhs
      (* and division undoes the big product *)
      && Nat.equal (Nat.div (Nat.mul x y) y) x)

let prop_gcd =
  QCheck.Test.make ~count:300 ~name:"Nat.gcd divides and is maximal-ish"
    QCheck.(make (Gen.pair (Gen.int_range 1 100000) (Gen.int_range 1 100000)))
    (fun (a, b) ->
      let rec igcd a b = if b = 0 then a else igcd b (a mod b) in
      Nat.to_int (Nat.gcd (Nat.of_int a) (Nat.of_int b)) = igcd a b)

let zsmall = QCheck.Gen.int_range (-1_000_000) 1_000_000

let prop_zint_ring =
  QCheck.Test.make ~count:500 ~name:"Zint ring operations agree with int"
    QCheck.(make (Gen.pair zsmall zsmall))
    (fun (a, b) ->
      let za = Zint.of_int a and zb = Zint.of_int b in
      Zint.to_int (Zint.add za zb) = a + b
      && Zint.to_int (Zint.sub za zb) = a - b
      && Zint.to_int (Zint.mul za zb) = a * b
      && Zint.compare za zb = Stdlib.compare a b)

let prop_zint_divmod =
  QCheck.Test.make ~count:500 ~name:"Zint.divmod truncates like OCaml"
    QCheck.(make (Gen.pair zsmall zsmall))
    (fun (a, b) ->
      QCheck.assume (b <> 0);
      let q, r = Zint.divmod (Zint.of_int a) (Zint.of_int b) in
      Zint.to_int q = a / b && Zint.to_int r = a mod b)

let qfrac =
  QCheck.make
    QCheck.Gen.(pair (pair (int_range (-50) 50) (int_range 1 30))
                  (pair (int_range (-50) 50) (int_range 1 30)))

let prop_qnum_field =
  QCheck.Test.make ~count:500 ~name:"Qnum field laws" qfrac
    (fun (((an, ad), (bn, bd))) ->
      let a = Qnum.of_ints an ad and b = Qnum.of_ints bn bd in
      let sum = Qnum.add a b and prod = Qnum.mul a b in
      Qnum.equal (Qnum.sub sum b) a
      && (Qnum.is_zero b || Qnum.equal (Qnum.div prod b) a)
      && Qnum.equal (Qnum.add a (Qnum.neg a)) Qnum.zero)

let prop_qnum_compare =
  QCheck.Test.make ~count:500 ~name:"Qnum.compare matches cross-multiplication"
    qfrac
    (fun ((an, ad), (bn, bd)) ->
      let a = Qnum.of_ints an ad and b = Qnum.of_ints bn bd in
      Qnum.compare a b = Stdlib.compare (an * bd) (bn * ad))

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_add;
        prop_mul;
        prop_divmod;
        prop_string_roundtrip;
        prop_mul_assoc;
        prop_karatsuba;
        prop_gcd;
        prop_zint_ring;
        prop_zint_divmod;
        prop_qnum_field;
        prop_qnum_compare;
      ]
  in
  Alcotest.run "bignum"
    [
      ( "nat",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "big values" `Quick test_big_values;
          Alcotest.test_case "errors" `Quick test_sub_errors;
        ] );
      ( "combinat",
        [
          Alcotest.test_case "factorial" `Quick test_factorial;
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "surjections" `Quick test_surjections;
          Alcotest.test_case "stirling" `Quick test_stirling;
          Alcotest.test_case "surj recurrence" `Quick test_surj_recurrence;
          Alcotest.test_case "misc" `Quick test_misc_combinat;
        ] );
      ("properties", qsuite);
    ]
