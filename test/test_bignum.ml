open Incdb_bignum

let check_int name expected n =
  Alcotest.(check int) name expected (Nat.to_int n)

(* ------------------------------------------------------------------ *)
(* Nat unit tests                                                      *)
(* ------------------------------------------------------------------ *)

let test_basics () =
  check_int "zero" 0 Nat.zero;
  check_int "one" 1 Nat.one;
  check_int "of_int" 123456789 (Nat.of_int 123456789);
  Alcotest.(check string) "to_string small" "42" (Nat.to_string (Nat.of_int 42));
  Alcotest.(check string) "to_string 0" "0" (Nat.to_string Nat.zero);
  Alcotest.(check bool) "is_zero" true (Nat.is_zero Nat.zero);
  Alcotest.(check bool) "is_zero one" false (Nat.is_zero Nat.one)

let test_big_values () =
  (* 2^200 has a well-known decimal expansion. *)
  Alcotest.(check string)
    "2^200"
    "1606938044258990275541962092341162602522202993782792835301376"
    (Nat.to_string (Nat.pow Nat.two 200));
  let big = Nat.of_string "123456789012345678901234567890" in
  Alcotest.(check string)
    "of_string round trip" "123456789012345678901234567890"
    (Nat.to_string big);
  let q, r = Nat.divmod big (Nat.of_int 1000007) in
  Gen.check_nat "divmod reconstruct" big
    (Nat.add (Nat.mul q (Nat.of_int 1000007)) r)

let test_sub_errors () =
  Alcotest.check_raises "sub underflow"
    (Invalid_argument "Nat.sub: result would be negative") (fun () ->
      ignore (Nat.sub Nat.one Nat.two));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Nat.divmod Nat.one Nat.zero))

let test_factorial () =
  Alcotest.(check string)
    "20!" "2432902008176640000"
    (Nat.to_string (Combinat.factorial 20));
  Alcotest.(check string)
    "50!"
    "30414093201713378043612608166064768844377641568960512000000000000"
    (Nat.to_string (Combinat.factorial 50))

let test_binomial () =
  check_int "C(10,3)" 120 (Combinat.binomial 10 3);
  check_int "C(10,0)" 1 (Combinat.binomial 10 0);
  check_int "C(10,10)" 1 (Combinat.binomial 10 10);
  check_int "C(5,7)=0" 0 (Combinat.binomial 5 7);
  check_int "C(52,5)" 2598960 (Combinat.binomial 52 5)

let test_surjections () =
  check_int "surj(3,2)" 6 (Combinat.surj 3 2);
  check_int "surj(4,2)" 14 (Combinat.surj 4 2);
  check_int "surj(n,n)=n!" 24 (Combinat.surj 4 4);
  check_int "surj(2,3)=0" 0 (Combinat.surj 2 3);
  check_int "surj(0,0)=1" 1 (Combinat.surj 0 0);
  check_int "surj(5,0)=0" 0 (Combinat.surj 5 0)

let test_stirling () =
  check_int "S(4,2)" 7 (Combinat.stirling2 4 2);
  check_int "S(5,3)" 25 (Combinat.stirling2 5 3);
  (* surj n m = m! * S(n, m) *)
  for n = 0 to 7 do
    for m = 0 to n do
      Gen.check_nat
        (Printf.sprintf "surj(%d,%d) = %d! * S" n m m)
        (Combinat.surj n m)
        (Nat.mul (Combinat.factorial m) (Combinat.stirling2 n m))
    done
  done

let test_surj_recurrence () =
  (* surj(n, m) = m * (surj(n-1, m) + surj(n-1, m-1)) *)
  for n = 1 to 8 do
    for m = 1 to n do
      Gen.check_nat
        (Printf.sprintf "recurrence surj(%d,%d)" n m)
        (Combinat.surj n m)
        (Nat.mul (Nat.of_int m)
           (Nat.add (Combinat.surj (n - 1) m) (Combinat.surj (n - 1) (m - 1))))
    done
  done

let test_misc_combinat () =
  check_int "falling 5 2" 20 (Combinat.falling 5 2);
  check_int "falling 5 0" 1 (Combinat.falling 5 0);
  check_int "pow2 10" 1024 (Combinat.pow2 10);
  Alcotest.(check int) "subsets size" 16 (List.length (Combinat.subsets [ 1; 2; 3; 4 ]));
  Alcotest.(check int)
    "compositions 4 into 3"
    15
    (List.length (Combinat.int_compositions 4 3));
  Alcotest.(check int)
    "vectors_upto"
    12
    (List.length (Combinat.vectors_upto [ 1; 2; 1 ]))

(* ------------------------------------------------------------------ *)
(* Property-based tests against machine arithmetic                     *)
(* ------------------------------------------------------------------ *)

let small = QCheck.Gen.int_bound 1_000_000

let prop_add =
  QCheck.Test.make ~count:500 ~name:"Nat.add agrees with int"
    QCheck.(make (Gen.pair small small))
    (fun (a, b) ->
      Nat.to_int (Nat.add (Nat.of_int a) (Nat.of_int b)) = a + b)

let prop_mul =
  QCheck.Test.make ~count:500 ~name:"Nat.mul agrees with int"
    QCheck.(make (Gen.pair small small))
    (fun (a, b) ->
      Nat.to_int (Nat.mul (Nat.of_int a) (Nat.of_int b)) = a * b)

let prop_divmod =
  QCheck.Test.make ~count:500 ~name:"Nat.divmod agrees with int"
    QCheck.(make (Gen.pair small (Gen.int_range 1 99999)))
    (fun (a, b) ->
      let q, r = Nat.divmod (Nat.of_int a) (Nat.of_int b) in
      Nat.to_int q = a / b && Nat.to_int r = a mod b)

let prop_string_roundtrip =
  QCheck.Test.make ~count:200 ~name:"Nat decimal round trip"
    QCheck.(make (Gen.list_size (Gen.int_range 1 6) small))
    (fun parts ->
      let n =
        List.fold_left
          (fun acc p -> Nat.add (Nat.mul acc (Nat.of_int 1_000_001)) (Nat.of_int p))
          Nat.zero parts
      in
      Nat.equal n (Nat.of_string (Nat.to_string n)))

let prop_mul_assoc =
  QCheck.Test.make ~count:200 ~name:"Nat.mul associative on large values"
    QCheck.(make (Gen.triple small small small))
    (fun (a, b, c) ->
      let a = Nat.pow (Nat.of_int (a + 2)) 7
      and b = Nat.pow (Nat.of_int (b + 2)) 5
      and c = Nat.of_int c in
      Nat.equal (Nat.mul (Nat.mul a b) c) (Nat.mul a (Nat.mul b c)))

let prop_karatsuba =
  (* Build numbers far above the Karatsuba threshold (32 digits of 31
     bits each, i.e. roughly 1000 bits) and check multiplication against
     an independent identity: (x + y)^2 = x^2 + 2xy + y^2. *)
  QCheck.Test.make ~count:60 ~name:"Karatsuba multiplication identities"
    QCheck.(make (Gen.pair small small))
    (fun (a, b) ->
      let x = Nat.pow (Nat.of_int (a + 2)) 150 in
      let y = Nat.pow (Nat.of_int (b + 3)) 140 in
      let lhs = Nat.mul (Nat.add x y) (Nat.add x y) in
      let rhs =
        Nat.add (Nat.mul x x)
          (Nat.add (Nat.mul (Nat.of_int 2) (Nat.mul x y)) (Nat.mul y y))
      in
      Nat.equal lhs rhs
      (* and division undoes the big product *)
      && Nat.equal (Nat.div (Nat.mul x y) y) x)

let prop_gcd =
  QCheck.Test.make ~count:300 ~name:"Nat.gcd divides and is maximal-ish"
    QCheck.(make (Gen.pair (Gen.int_range 1 100000) (Gen.int_range 1 100000)))
    (fun (a, b) ->
      let rec igcd a b = if b = 0 then a else igcd b (a mod b) in
      Nat.to_int (Nat.gcd (Nat.of_int a) (Nat.of_int b)) = igcd a b)

(* ------------------------------------------------------------------ *)
(* Bitset: Int vs Wide agreement below one word, word boundaries       *)
(* ------------------------------------------------------------------ *)

module BI = Bitset.Int
module BW = Bitset.Wide

let both ~width bits =
  ( List.fold_left BI.set (BI.zero ~width) bits,
    List.fold_left BW.set (BW.zero ~width) bits )

let wide_bits m =
  let acc = ref [] in
  BW.iter (fun i -> acc := i :: !acc) m;
  List.rev !acc

let sign n = compare n 0

(* Below one word the two implementations must agree operation by
   operation: a Wide value is then a single array slot holding exactly
   the Int mask's word (same bit positions, same nonnegative-word
   convention), so even compare orders coincide. *)
let prop_bitset_int_wide =
  QCheck.Test.make ~count:300 ~name:"Bitset.Int = Bitset.Wide below one word"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let width = 1 + Random.State.int st Bitset.bits_per_word in
      let bits () =
        List.filter (fun _ -> Random.State.bool st) (List.init width Fun.id)
      in
      let ba = bits () and bb = bits () in
      let ia, wa = both ~width ba and ib, wb = both ~width bb in
      List.for_all (fun i -> BI.test ia i = BW.test wa i)
        (List.init width Fun.id)
      && BI.popcount ia = BW.popcount wa
      && BI.popcount_inter ia ib = BW.popcount_inter wa wb
      && BI.popcount_diff ia ib = BW.popcount_diff wa wb
      && BI.lowest ia = BW.lowest wa
      && BI.is_empty ia = BW.is_empty wa
      && BI.disjoint ia ib = BW.disjoint wa wb
      && BI.subset ia ib = BW.subset wa wb
      && BI.equal ia ib = BW.equal wa wb
      && sign (BI.compare ia ib) = sign (BW.compare wa wb)
      && wide_bits (BW.union wa wb)
         = List.filter (fun i -> BI.test (BI.union ia ib) i)
             (List.init width Fun.id)
      && wide_bits (BW.inter wa wb)
         = List.filter (fun i -> BI.test (BI.inter ia ib) i)
             (List.init width Fun.id)
      && ((not (BW.equal wa wb)) || BW.hash wa = BW.hash wb))

(* Multi-word semantics independent of Int: set algebra on sorted bit
   lists is the reference model, exercised across the 62/63 and 124/125
   word boundaries. *)
let prop_bitset_wide_model =
  QCheck.Test.make ~count:300 ~name:"Bitset.Wide = set algebra across words"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let width = 1 + Random.State.int st 150 in
      let bits () =
        List.filter (fun _ -> Random.State.int st 4 = 0)
          (List.init width Fun.id)
      in
      let ba = bits () and bb = bits () in
      let wa = List.fold_left BW.set (BW.zero ~width) ba
      and wb = List.fold_left BW.set (BW.zero ~width) bb in
      let inter = List.filter (fun i -> List.mem i bb) ba in
      let union = List.sort_uniq compare (ba @ bb) in
      wide_bits wa = ba
      && wide_bits (BW.union wa wb) = union
      && wide_bits (BW.inter wa wb) = inter
      && BW.popcount wa = List.length ba
      && BW.popcount_inter wa wb = List.length inter
      && BW.popcount_diff wa wb
         = List.length (List.filter (fun i -> not (List.mem i bb)) ba)
      && BW.lowest wa = (match ba with [] -> -1 | i :: _ -> i)
      && BW.is_empty wa = (ba = [])
      && BW.disjoint wa wb = (inter = [])
      && BW.subset wa wb = List.for_all (fun i -> List.mem i bb) ba
      && BW.equal wa wb = (ba = bb))

let test_bitset_words_for () =
  let bpw = Bitset.bits_per_word in
  Alcotest.(check int) "bits_per_word" (Sys.int_size - 1) bpw;
  Alcotest.(check int) "words_for 0" 0 (Bitset.words_for 0);
  Alcotest.(check int) "words_for 1" 1 (Bitset.words_for 1);
  Alcotest.(check int) "words_for bpw" 1 (Bitset.words_for bpw);
  Alcotest.(check int) "words_for bpw+1" 2 (Bitset.words_for (bpw + 1));
  Alcotest.(check int) "words_for 2*bpw" 2 (Bitset.words_for (2 * bpw));
  Alcotest.(check int) "words_for 2*bpw+1" 3 (Bitset.words_for (2 * bpw + 1))

let test_bitset_boundaries () =
  (* full / low at exactly one-word, one-word-plus-one and two-word
     widths: the bits just below and just above each boundary behave
     identically. *)
  List.iter
    (fun width ->
      let f = BW.full ~width in
      Alcotest.(check int)
        (Printf.sprintf "full %d popcount" width)
        width (BW.popcount f);
      Alcotest.(check bool)
        (Printf.sprintf "full %d top bit" width)
        true
        (BW.test f (width - 1));
      Alcotest.(check int)
        (Printf.sprintf "full %d lowest" width)
        0 (BW.lowest f);
      Alcotest.(check bool)
        (Printf.sprintf "full %d = low width" width)
        true
        (BW.equal f (BW.low ~width width));
      let l = BW.low ~width (width - 1) in
      Alcotest.(check int)
        (Printf.sprintf "low %d popcount" (width - 1))
        (width - 1) (BW.popcount l);
      Alcotest.(check bool)
        (Printf.sprintf "low misses bit %d" (width - 1))
        false
        (BW.test l (width - 1));
      Alcotest.(check bool)
        (Printf.sprintf "low subset full (%d)" width)
        true (BW.subset l f))
    [ 62; 63; 64; 124; 125 ];
  (* A bit in word 0 and a bit in word 1 straddling the boundary. *)
  let width = 70 in
  let a = BW.set (BW.zero ~width) 61 and b = BW.set (BW.zero ~width) 62 in
  Alcotest.(check bool) "straddle disjoint" true (BW.disjoint a b);
  Alcotest.(check int) "straddle union" 2 (BW.popcount (BW.union a b));
  Alcotest.(check bool) "order across words" true (BW.compare a b < 0);
  Alcotest.(check (list int)) "iter ascending" [ 61; 62 ]
    (wide_bits (BW.union a b))

let test_bitset_inplace () =
  let width = 100 in
  let base = BW.set (BW.zero ~width) 7 in
  let scratch = BW.copy base in
  BW.set_inplace scratch 99;
  Alcotest.(check bool) "copy isolates" false (BW.test base 99);
  Alcotest.(check bool) "set_inplace lands" true (BW.test scratch 99);
  BW.clear_inplace scratch 99;
  Alcotest.(check bool) "clear undoes" true (BW.equal scratch base)

let zsmall = QCheck.Gen.int_range (-1_000_000) 1_000_000

let prop_zint_ring =
  QCheck.Test.make ~count:500 ~name:"Zint ring operations agree with int"
    QCheck.(make (Gen.pair zsmall zsmall))
    (fun (a, b) ->
      let za = Zint.of_int a and zb = Zint.of_int b in
      Zint.to_int (Zint.add za zb) = a + b
      && Zint.to_int (Zint.sub za zb) = a - b
      && Zint.to_int (Zint.mul za zb) = a * b
      && Zint.compare za zb = Stdlib.compare a b)

let prop_zint_divmod =
  QCheck.Test.make ~count:500 ~name:"Zint.divmod truncates like OCaml"
    QCheck.(make (Gen.pair zsmall zsmall))
    (fun (a, b) ->
      QCheck.assume (b <> 0);
      let q, r = Zint.divmod (Zint.of_int a) (Zint.of_int b) in
      Zint.to_int q = a / b && Zint.to_int r = a mod b)

let qfrac =
  QCheck.make
    QCheck.Gen.(pair (pair (int_range (-50) 50) (int_range 1 30))
                  (pair (int_range (-50) 50) (int_range 1 30)))

let prop_qnum_field =
  QCheck.Test.make ~count:500 ~name:"Qnum field laws" qfrac
    (fun (((an, ad), (bn, bd))) ->
      let a = Qnum.of_ints an ad and b = Qnum.of_ints bn bd in
      let sum = Qnum.add a b and prod = Qnum.mul a b in
      Qnum.equal (Qnum.sub sum b) a
      && (Qnum.is_zero b || Qnum.equal (Qnum.div prod b) a)
      && Qnum.equal (Qnum.add a (Qnum.neg a)) Qnum.zero)

let prop_qnum_compare =
  QCheck.Test.make ~count:500 ~name:"Qnum.compare matches cross-multiplication"
    qfrac
    (fun ((an, ad), (bn, bd)) ->
      let a = Qnum.of_ints an ad and b = Qnum.of_ints bn bd in
      Qnum.compare a b = Stdlib.compare (an * bd) (bn * ad))

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_add;
        prop_mul;
        prop_divmod;
        prop_string_roundtrip;
        prop_mul_assoc;
        prop_karatsuba;
        prop_gcd;
        prop_zint_ring;
        prop_zint_divmod;
        prop_qnum_field;
        prop_qnum_compare;
      ]
  in
  Alcotest.run "bignum"
    [
      ( "nat",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "big values" `Quick test_big_values;
          Alcotest.test_case "errors" `Quick test_sub_errors;
        ] );
      ( "bitset",
        [
          QCheck_alcotest.to_alcotest prop_bitset_int_wide;
          QCheck_alcotest.to_alcotest prop_bitset_wide_model;
          Alcotest.test_case "words_for" `Quick test_bitset_words_for;
          Alcotest.test_case "word boundaries" `Quick test_bitset_boundaries;
          Alcotest.test_case "in-place scratch" `Quick test_bitset_inplace;
        ] );
      ( "combinat",
        [
          Alcotest.test_case "factorial" `Quick test_factorial;
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "surjections" `Quick test_surjections;
          Alcotest.test_case "stirling" `Quick test_stirling;
          Alcotest.test_case "surj recurrence" `Quick test_surj_recurrence;
          Alcotest.test_case "misc" `Quick test_misc_combinat;
        ] );
      ("properties", qsuite);
    ]
