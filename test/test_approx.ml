(* Validation of the estimators of Section 5: the Karp-Luby event
   construction is exact (inclusion-exclusion over events equals brute
   force), and both estimators converge on seeded instances. *)

open Incdb_bignum
open Incdb_cq
open Incdb_incomplete
open Incdb_approx

let bcq s = Query.Bcq (Cq.of_string s)

let brute = Brute.count_valuations

(* ------------------------------------------------------------------ *)
(* Event construction                                                  *)
(* ------------------------------------------------------------------ *)

let prop_events_exact query schema =
  let q = bcq query in
  QCheck.Test.make ~count:60
    ~name:(Printf.sprintf "events inclusion-exclusion = brute [%s]" query)
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let db =
        Gen.random_idb ~seed ~schema ~rows:2 ~codd:(seed mod 2 = 0)
          ~uniform:(seed mod 3 = 0)
      in
      QCheck.assume (Gen.manageable db);
      QCheck.assume (List.length (Karp_luby.events q db) <= 18);
      Nat.equal (Karp_luby.exact_via_events q db) (brute q db))

let prop_events_rxx = prop_events_exact "R(x,x)" [ ("R", 2) ]
let prop_events_rxsx = prop_events_exact "R(x), S(x)" [ ("R", 1); ("S", 1) ]
let prop_events_path = prop_events_exact "R(x), S(x,y)" [ ("R", 1); ("S", 2) ]

let prop_events_union =
  QCheck.Test.make ~count:40 ~name:"events for a union of BCQs"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let q = Query.Union [ Cq.of_string "R(x,x)"; Cq.of_string "S(x)" ] in
      let db =
        Gen.random_idb ~seed ~schema:[ ("R", 2); ("S", 1) ] ~rows:2 ~codd:false
          ~uniform:true
      in
      QCheck.assume (Gen.manageable db);
      QCheck.assume (List.length (Karp_luby.events q db) <= 18);
      Nat.equal (Karp_luby.exact_via_events q db) (brute q db))

let test_events_monotone_only () =
  let db = Idb.make [ Idb.fact "R" [ Term.null "n" ] ] (Idb.Uniform [ "0" ]) in
  Alcotest.check_raises "negation rejected"
    (Invalid_argument "Karp_luby.events: only monotone (unions of) BCQs")
    (fun () -> ignore (Karp_luby.events (Query.Not (bcq "R(x)")) db))

let test_events_empty () =
  let db = Idb.make [ Idb.fact "R" [ Term.null "n" ] ] (Idb.Uniform [ "0"; "1" ]) in
  Alcotest.(check int) "no S facts, no events" 0
    (List.length (Karp_luby.events (bcq "S(x)") db))

(* ------------------------------------------------------------------ *)
(* Estimator accuracy (seeded, deterministic)                          *)
(* ------------------------------------------------------------------ *)

let relative_error exact est =
  let e = Nat.to_float exact in
  if e = 0. then abs_float est else abs_float (est -. e) /. e

let accuracy_instance () =
  (* A 3-coloring encoding: nontrivial #Val over ~2000 valuations. *)
  let g = Incdb_graph.Generators.cycle 7 in
  let db = Incdb_reductions.Coloring_red.encode g in
  (db, Query.Bcq Incdb_reductions.Coloring_red.query)

let test_karp_luby_accuracy () =
  let db, q = accuracy_instance () in
  let exact = brute q db in
  let est = Karp_luby.estimate ~seed:42 ~samples:20_000 q db in
  Alcotest.(check bool)
    (Printf.sprintf "KL within 5%% (exact=%s est=%.1f)" (Nat.to_string exact) est)
    true
    (relative_error exact est < 0.05)

let test_montecarlo_accuracy () =
  let db, q = accuracy_instance () in
  let exact = brute q db in
  let est = Montecarlo.estimate ~seed:7 ~samples:20_000 q db in
  Alcotest.(check bool) "MC within 5%" true (relative_error exact est < 0.05)

let test_zero_case () =
  (* Unsatisfiable: both estimators must return exactly 0. *)
  let db = Idb.make [ Idb.fact "R" [ Term.null "n" ] ] (Idb.Uniform [ "0"; "1" ]) in
  let q = bcq "R(x), S(x)" in
  Alcotest.(check (float 0.0)) "KL zero" 0.0
    (Karp_luby.estimate ~seed:1 ~samples:100 q db);
  Alcotest.(check (float 0.0)) "MC zero" 0.0
    (Montecarlo.estimate ~seed:1 ~samples:100 q db)

let test_rejects_zero_samples () =
  (* A sample budget of zero must be rejected up front, not return a
     silent 0 or NaN. *)
  let db =
    Idb.make [ Idb.fact "R" [ Term.null "n" ] ] (Idb.Uniform [ "0"; "1" ])
  in
  let q = bcq "R(x)" in
  let expect_invalid name f =
    match f () with
    | (_ : float) -> Alcotest.failf "%s accepted ~samples:0" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "estimate" (fun () ->
      Karp_luby.estimate ~seed:1 ~samples:0 q db);
  expect_invalid "estimate_with_ci" (fun () ->
      fst (Karp_luby.estimate_with_ci ~seed:1 ~samples:0 q db))

let test_full_case () =
  (* Query satisfied by every valuation: estimators return the total. *)
  let db =
    Idb.make
      [ Idb.fact "R" [ Term.null "n"; Term.null "m" ] ]
      (Idb.Uniform [ "0"; "1" ])
  in
  let q = bcq "R(x,y)" in
  Alcotest.(check (float 0.001)) "KL full" 4.0
    (Karp_luby.estimate ~seed:1 ~samples:2000 q db);
  Alcotest.(check (float 0.001)) "MC full" 4.0
    (Montecarlo.estimate ~seed:1 ~samples:2000 q db)

let test_samples_for () =
  Alcotest.(check int) "FPRAS sample budget" 400_000
    (Karp_luby.samples_for ~epsilon:0.01 ~events:10);
  Alcotest.check_raises "bad epsilon"
    (Invalid_argument "Karp_luby.samples_for: epsilon <= 0") (fun () ->
      ignore (Karp_luby.samples_for ~epsilon:0. ~events:1));
  Alcotest.check_raises "negative events"
    (Invalid_argument "Karp_luby.samples_for: negative events") (fun () ->
      ignore (Karp_luby.samples_for ~epsilon:0.5 ~events:(-1)))

let test_samples_for_overflow () =
  (* ceil(4 * events / eps^2) stops fitting a machine int well before
     eps underflows: the budget must fail with the typed error, never
     truncate to a garbage (possibly negative) count. *)
  Alcotest.(check bool) "tiny epsilon overflows" true
    (match Karp_luby.samples_for ~epsilon:1e-10 ~events:1 with
    | (_ : int) -> false
    | exception Karp_luby.Sample_budget_overflow { epsilon; events } ->
      epsilon = 1e-10 && events = 1);
  (* Boundary, with power-of-two epsilons so the float arithmetic is
     exact: eps = 2^-29 gives budget 4 / 2^-58 = 2^60, which fits... *)
  Alcotest.(check int) "2^60 budget fits" (1 lsl 60)
    (Karp_luby.samples_for ~epsilon:(2. ** -29.) ~events:1);
  (* ... and eps = 2^-30 gives 2^62 = float_of_int max_int: one past. *)
  Alcotest.(check bool) "2^62 budget overflows" true
    (match Karp_luby.samples_for ~epsilon:(2. ** -30.) ~events:1 with
    | (_ : int) -> false
    | exception Karp_luby.Sample_budget_overflow _ -> true);
  (* Denormal epsilon: eps^2 underflows to 0 and the float budget is
     infinite; still the typed error, not Invalid_argument. *)
  Alcotest.(check bool) "denormal epsilon overflows" true
    (match Karp_luby.samples_for ~epsilon:1e-320 ~events:1 with
    | (_ : int) -> false
    | exception Karp_luby.Sample_budget_overflow _ -> true)

let test_wilson_ci () =
  (* The normal-approximation stderr sqrt(p(1-p)/n) is exactly 0 at
     p in {0, 1}; the Wilson half-width must stay positive there. *)
  List.iter
    (fun rate ->
      let hw = Karp_luby.wilson_half_width ~samples:1000 rate in
      Alcotest.(check bool)
        (Printf.sprintf "positive half-width at rate %g" rate)
        true
        (hw > 0. && Float.is_finite hw))
    [ 0.; 1.; 0.5; 0.01 ];
  (* More samples, tighter interval. *)
  Alcotest.(check bool) "width shrinks with samples" true
    (Karp_luby.wilson_half_width ~samples:100_000 0.3
    < Karp_luby.wilson_half_width ~samples:100 0.3);
  (* An all-miss estimator run reports estimate 0 with a CI that still
     admits a small positive count. *)
  let db =
    Idb.make
      [ Idb.fact "R" [ Term.null "n"; Term.null "m" ] ]
      (Idb.Uniform [ "0"; "1" ])
  in
  (* R(x,x) missed when n <> m; a seed/sample pair with zero hits would
     need luck — instead pin the degenerate all-hit side, which every
     seed produces on a query satisfied by all valuations. *)
  let est, hw = Karp_luby.estimate_with_ci ~seed:3 ~samples:500 (bcq "R(x,y)") db in
  Alcotest.(check (float 0.001)) "all-hit estimate is the total" 4.0 est;
  Alcotest.(check bool) "all-hit half-width positive" true (hw > 0.)

(* KL stays accurate on instances far beyond brute force: 20 nulls over a
   10-value domain is 10^20 valuations, yet the exact Codd-table count is
   available for comparison. *)
let test_rare_event () =
  let n = 20 in
  let facts =
    List.init n (fun i ->
        Idb.fact "R"
          [ Term.null (Printf.sprintf "a%d" i); Term.null (Printf.sprintf "b%d" i) ])
  in
  (* R(x,x) satisfied only when some pair collides; with domain {0..9}
     collisions are rare-ish per tuple. *)
  let db = Idb.make facts (Idb.Uniform (List.init 10 string_of_int)) in
  let q = Query.Bcq (Cq.of_string "R(x,x)") in
  (* Exact via the Codd algorithm (tuples are variable-disjoint pairs). *)
  let exact =
    Incdb_core.Count_val.codd_nonuniform (Cq.of_string "R(x,x)") db
  in
  let est = Karp_luby.estimate ~seed:11 ~samples:30_000 q db in
  Alcotest.(check bool)
    (Printf.sprintf "KL close on big instance (exact=%s est=%.3e)"
       (Nat.to_string exact) est)
    true
    (relative_error exact est < 0.1)

(* The inclusion-exclusion oracle past one mask word: with more nulls
   than fit a single word, subset term sharing switches to wide-bitset
   fixed-null keys, observable through the iex.mask_repr gauge, and the
   count must not change. *)
let test_exact_via_events_wide_nulls () =
  (* [pad] extra nulls in a relation the query never mentions inflate the
     slot count without touching the two events. *)
  let wide_db pad =
    let free =
      List.init pad (fun i -> Idb.fact "T" [ Term.null (Printf.sprintf "f%d" i) ])
    in
    let facts =
      Idb.fact "R" [ Term.const "u" ]
      :: Idb.fact "S" [ Term.null "a" ]
      :: Idb.fact "S" [ Term.null "b" ]
      :: free
    in
    Idb.make facts
      (Idb.Nonuniform
         (("a", [ "u"; "v" ]) :: ("b", [ "u"; "v" ])
         :: List.init pad (fun i -> (Printf.sprintf "f%d" i, [ "0"; "1" ]))))
  in
  let q = bcq "R(x), S(x)" in
  let mask_repr db =
    let was = Incdb_obs.Runtime.enabled () in
    Incdb_obs.Runtime.set_enabled true;
    let n =
      Fun.protect
        ~finally:(fun () -> Incdb_obs.Runtime.set_enabled was)
        (fun () -> Karp_luby.exact_via_events q db)
    in
    (n, Incdb_obs.Metrics.gauge_value "iex.mask_repr")
  in
  (* 64 nulls: count = 3 * 2^62 (a or b drawn "u", 62 free binary
     nulls), memoized = unmemoized, masks two words wide. *)
  let db = wide_db 62 in
  let expected = Nat.mul (Nat.of_int 3) (Nat.pow Nat.two 62) in
  let n, repr = mask_repr db in
  Gen.check_nat "wide-null count" expected n;
  Gen.check_nat "memo-free agrees" expected
    (Karp_luby.exact_via_events ~memo:false q db);
  Alcotest.(check (option (float 0.))) "two words per mask" (Some 2.) repr;
  (* Exactly at the word boundary the single-word path still runs. *)
  let n62, repr62 = mask_repr (wide_db 60) in
  Gen.check_nat "boundary count" (Nat.mul (Nat.of_int 3) (Nat.pow Nat.two 60))
    n62;
  Alcotest.(check (option (float 0.))) "one word per mask" (Some 1.) repr62

let test_unbiasedness () =
  (* Averaging small-sample estimates over many seeds must approach the
     exact value much more tightly than any single run: the estimator is
     unbiased. *)
  let db, q = accuracy_instance () in
  let exact = Nat.to_float (brute q db) in
  let runs = 60 in
  let mean =
    List.fold_left
      (fun acc seed -> acc +. Karp_luby.estimate ~seed ~samples:300 q db)
      0.
      (List.init runs (fun i -> i + 1))
    /. float_of_int runs
  in
  Alcotest.(check bool)
    (Printf.sprintf "mean of 60 runs within 2%% (mean %.1f, exact %.1f)" mean exact)
    true
    (abs_float (mean -. exact) /. exact < 0.02)

(* ------------------------------------------------------------------ *)
(* Enumeration and uniform sampling                                    *)
(* ------------------------------------------------------------------ *)

let prop_enumeration_exact =
  QCheck.Test.make ~count:50
    ~name:"enumerator yields each satisfying valuation exactly once"
    QCheck.(make (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      let q = bcq "R(x,x)" in
      let db =
        Gen.random_idb ~seed ~schema:[ ("R", 2) ] ~rows:2 ~codd:(seed mod 2 = 0)
          ~uniform:(seed mod 3 = 0)
      in
      QCheck.assume (Gen.manageable db);
      let from_enum = List.of_seq (Enumerate.satisfying q db) in
      (* each output satisfies, no duplicates, and the count matches *)
      List.for_all (fun v -> Query.eval q (Idb.apply db v)) from_enum
      && List.length (List.sort_uniq Stdlib.compare from_enum)
         = List.length from_enum
      && Nat.equal (Nat.of_int (List.length from_enum)) (brute q db))

let test_enumeration_beyond_brute () =
  (* 20 independent binary tuples over 4 values: 4^40 valuations; the
     satisfying count fits the cap only for a sparse query, so instead
     check the enumerator's laziness: taking 5 outputs must be fast. *)
  let facts =
    List.init 20 (fun i ->
        Idb.fact "R"
          [ Term.null (Printf.sprintf "a%d" i);
            Term.null (Printf.sprintf "b%d" i) ])
  in
  let db = Idb.make facts (Idb.Uniform [ "0"; "1"; "2"; "3" ]) in
  let q = bcq "R(x,x)" in
  let first5 = List.of_seq (Seq.take 5 (Enumerate.satisfying q db)) in
  Alcotest.(check int) "got five" 5 (List.length first5);
  Alcotest.(check bool) "all satisfy" true
    (List.for_all (fun v -> Query.eval q (Idb.apply db v)) first5)

let test_count_by_enumeration () =
  let db =
    Idb.make
      [ Idb.fact "R" [ Term.null "a"; Term.null "b" ] ]
      (Idb.Uniform [ "0"; "1"; "2" ])
  in
  let q = bcq "R(x,x)" in
  (match Enumerate.count_by_enumeration q db with
  | Some n -> Gen.check_nat "three diagonal valuations" (Nat.of_int 3) n
  | None -> Alcotest.fail "unexpected cap");
  match Enumerate.count_by_enumeration ~cap:1 q db with
  | None -> ()
  | Some _ -> Alcotest.fail "cap should trigger"

let test_uniform_sampling () =
  (* All satisfying valuations of R(x,x) on one tuple over {0,1,2}: the
     three diagonals; sampling must hit each roughly uniformly. *)
  let db =
    Idb.make
      [ Idb.fact "R" [ Term.null "a"; Term.null "b" ] ]
      (Idb.Uniform [ "0"; "1"; "2" ])
  in
  let q = bcq "R(x,x)" in
  let counts = Hashtbl.create 3 in
  for seed = 1 to 600 do
    match Enumerate.sample_uniform ~seed q db with
    | Some v ->
      let key = List.assoc "a" v in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key));
      Alcotest.(check bool) "sample satisfies" true
        (Query.eval q (Idb.apply db v))
    | None -> Alcotest.fail "sampler gave up"
  done;
  Hashtbl.iter
    (fun _ c ->
      Alcotest.(check bool) "roughly uniform (120..280 of 600)" true
        (c > 120 && c < 280))
    counts;
  (* Unsatisfiable: sampler returns None. *)
  let empty_q = bcq "S(x)" in
  Alcotest.(check bool) "unsat gives None" true
    (Enumerate.sample_uniform ~seed:1 empty_q db = None)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_events_rxx;
        prop_events_rxsx;
        prop_events_path;
        prop_events_union;
        prop_enumeration_exact;
      ]
  in
  Alcotest.run "approx"
    [
      ( "events",
        [
          Alcotest.test_case "monotone only" `Quick test_events_monotone_only;
          Alcotest.test_case "empty" `Quick test_events_empty;
        ] );
      ( "estimators",
        [
          Alcotest.test_case "karp-luby accuracy" `Quick test_karp_luby_accuracy;
          Alcotest.test_case "monte-carlo accuracy" `Quick test_montecarlo_accuracy;
          Alcotest.test_case "zero" `Quick test_zero_case;
          Alcotest.test_case "zero samples rejected" `Quick
            test_rejects_zero_samples;
          Alcotest.test_case "full" `Quick test_full_case;
          Alcotest.test_case "sample budget" `Quick test_samples_for;
          Alcotest.test_case "sample budget overflow" `Quick
            test_samples_for_overflow;
          Alcotest.test_case "wilson confidence interval" `Quick
            test_wilson_ci;
          Alcotest.test_case "rare events" `Quick test_rare_event;
          Alcotest.test_case "wide-null inclusion-exclusion" `Quick
            test_exact_via_events_wide_nulls;
          Alcotest.test_case "unbiasedness" `Quick test_unbiasedness;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "laziness" `Quick test_enumeration_beyond_brute;
          Alcotest.test_case "count by enumeration" `Quick test_count_by_enumeration;
          Alcotest.test_case "uniform sampling" `Quick test_uniform_sampling;
        ] );
      ("properties", props);
    ]
