(* Tests for the tree-decomposition builder behind the #Val kernel's
   bag-local DP: hand-checked shapes (single clique, path, disconnected
   cliques), the Invalid_argument contract on malformed elimination
   orders, and a qcheck property that decompositions built from random
   lineage-style clause sets along random elimination orders pass
   [Treedec.validate] — clique coverage, running intersection, a valid
   children-first postorder — with the reported width matching the
   bags. *)

open Incdb_core

let int_array = Alcotest.(array int)

let ok_or_fail ~cliques td =
  match Treedec.validate ~cliques td with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invalid decomposition: %s" msg

(* ------------------------------------------------------------------ *)
(* Hand-checked shapes                                                 *)
(* ------------------------------------------------------------------ *)

let test_single_clique () =
  let cliques = [| [| 1; 0; 2 |] |] in
  let td = Treedec.build ~order:[ 0; 1; 2 ] ~cliques in
  ok_or_fail ~cliques td;
  Alcotest.(check int) "one bag" 1 (Treedec.bag_count td);
  Alcotest.(check int) "width = clique size" 3 td.Treedec.width;
  Alcotest.check int_array "bag is the sorted clique" [| 0; 1; 2 |]
    td.Treedec.bags.(0);
  Alcotest.check int_array "root has empty separator" [||]
    (Treedec.separator td 0)

let test_path () =
  (* A path R(0)-S(0,1), S(1,2), T(2)-style interaction graph: the
     decomposition must be a chain of 2-slot bags overlapping in one
     slot — width 2, every non-root separator a singleton. *)
  let cliques = [| [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |] |] in
  let td = Treedec.build ~order:[ 0; 1; 2; 3 ] ~cliques in
  ok_or_fail ~cliques td;
  Alcotest.(check int) "three bags" 3 (Treedec.bag_count td);
  Alcotest.(check int) "path width" 2 td.Treedec.width;
  let roots = ref 0 in
  Array.iteri
    (fun i p ->
      if p = -1 then incr roots
      else
        Alcotest.(check int)
          (Printf.sprintf "bag %d separator is a singleton" i)
          1
          (Array.length (Treedec.separator td i)))
    td.Treedec.parent;
  Alcotest.(check int) "exactly one root" 1 !roots

let test_disconnected () =
  (* Two slot-disjoint cliques still form one tree (a weight-0 edge in
     the junction tree), with an empty separator between them. *)
  let cliques = [| [| 0; 1 |]; [| 2; 3 |] |] in
  let td = Treedec.build ~order:[ 0; 1; 2; 3 ] ~cliques in
  ok_or_fail ~cliques td;
  Alcotest.(check int) "two bags" 2 (Treedec.bag_count td);
  let child =
    match td.Treedec.parent with
    | [| -1; _ |] -> 1
    | [| _; -1 |] -> 0
    | _ -> Alcotest.fail "expected exactly one root among two bags"
  in
  Alcotest.check int_array "disjoint bags share nothing" [||]
    (Treedec.separator td child)

let test_subsumed_clique () =
  (* A clause whose slot set is contained in another's must not get its
     own bag: only maximal cliques of the fill-in graph survive. *)
  let cliques = [| [| 0; 1; 2 |]; [| 1; 2 |]; [| 0 |] |] in
  let td = Treedec.build ~order:[ 0; 1; 2 ] ~cliques in
  ok_or_fail ~cliques td;
  Alcotest.(check int) "subsumed cliques fold into one bag" 1
    (Treedec.bag_count td);
  Alcotest.(check int) "width" 3 td.Treedec.width

let test_bad_orders () =
  let cliques = [| [| 0; 1 |] |] in
  let raises order =
    match Treedec.build ~order ~cliques with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "missing slot rejected" true (raises [ 0 ]);
  Alcotest.(check bool) "repeated slot rejected" true (raises [ 0; 1; 0 ]);
  (* Slots in the order that no clique mentions are allowed: they get a
     singleton bag (the caller decides what lives in the decomposition). *)
  let td = Treedec.build ~order:[ 0; 1; 7 ] ~cliques in
  ok_or_fail ~cliques td;
  Alcotest.(check int) "extra slot gets its own bag" 2 (Treedec.bag_count td)

(* ------------------------------------------------------------------ *)
(* Random lineage graphs                                               *)
(* ------------------------------------------------------------------ *)

(* Random clause slot sets over [n] slots, in the shape the kernel
   feeds [build]: small scopes, duplicates and subsumption allowed. *)
let random_cliques st n =
  let nclauses = 1 + Random.State.int st 8 in
  Array.init nclauses (fun _ ->
      let size = 1 + Random.State.int st (min 4 n) in
      let seen = Hashtbl.create 8 in
      let rec draw acc k =
        if k = 0 then acc
        else
          let s = Random.State.int st n in
          if Hashtbl.mem seen s then draw acc k
          else begin
            Hashtbl.add seen s ();
            draw (s :: acc) (k - 1)
          end
      in
      Array.of_list (draw [] size))

let slots_of_cliques cliques =
  let seen = Hashtbl.create 16 in
  Array.iter
    (Array.iter (fun s -> if not (Hashtbl.mem seen s) then Hashtbl.add seen s ()))
    cliques;
  Hashtbl.fold (fun s () acc -> s :: acc) seen []

let shuffle st l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let prop_random_valid =
  QCheck.Test.make ~count:300
    ~name:"random decompositions validate (cover + running intersection)"
    QCheck.(make Gen.(pair (int_range 1 10) (int_range 0 1_000_000)))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; n |] in
      let cliques = random_cliques st n in
      let order = shuffle st (slots_of_cliques cliques) in
      let td = Treedec.build ~order ~cliques in
      let max_bag =
        Array.fold_left (fun w b -> max w (Array.length b)) 0 td.Treedec.bags
      in
      let max_clique =
        Array.fold_left (fun w c -> max w (Array.length c)) 0 cliques
      in
      (match Treedec.validate ~cliques td with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_reportf "validate: %s" msg);
      (* validate already cross-checks width against the bags; pin the
         two obvious bounds independently. *)
      td.Treedec.width = max_bag
      && td.Treedec.width >= max_clique
      && td.Treedec.width <= List.length order
      && Array.length td.Treedec.postorder = Treedec.bag_count td)

let prop_order_independent_validity =
  QCheck.Test.make ~count:100
    ~name:"every elimination order yields a valid decomposition"
    QCheck.(make Gen.(int_range 0 1_000_000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let cliques = random_cliques st 5 in
      let slots = slots_of_cliques cliques in
      List.for_all
        (fun _ ->
          let order = shuffle st slots in
          let td = Treedec.build ~order ~cliques in
          Treedec.validate ~cliques td = Ok ())
        [ (); (); () ])

let () =
  Alcotest.run "treedec"
    [
      ( "shapes",
        [
          Alcotest.test_case "single clique" `Quick test_single_clique;
          Alcotest.test_case "path" `Quick test_path;
          Alcotest.test_case "disconnected cliques" `Quick test_disconnected;
          Alcotest.test_case "subsumed cliques" `Quick test_subsumed_clique;
          Alcotest.test_case "malformed orders" `Quick test_bad_orders;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_random_valid; prop_order_independent_validity ] );
    ]
