open Incdb_bignum
open Incdb_linalg

let qn = Alcotest.testable Qnum.pp Qnum.equal

let random_matrix st n =
  Qmatrix.make n n (fun _ _ -> Qnum.of_int (Random.State.int st 19 - 9))

let test_identity_inverse () =
  let id = Qmatrix.identity 4 in
  Alcotest.(check bool) "I^-1 = I" true (Qmatrix.equal (Qmatrix.inverse id) id)

let test_inverse_random () =
  let st = Random.State.make [| 7 |] in
  let tried = ref 0 in
  while !tried < 12 do
    let m = random_matrix st 4 in
    if not (Qnum.is_zero (Qmatrix.determinant m)) then begin
      incr tried;
      let inv = Qmatrix.inverse m in
      Alcotest.(check bool)
        "M * M^-1 = I" true
        (Qmatrix.equal (Qmatrix.mul m inv) (Qmatrix.identity 4))
    end
  done

let test_solve () =
  let st = Random.State.make [| 13 |] in
  let solved = ref 0 in
  while !solved < 12 do
    let m = random_matrix st 5 in
    if not (Qnum.is_zero (Qmatrix.determinant m)) then begin
      incr solved;
      let x = Array.init 5 (fun i -> Qnum.of_ints (i + 1) 3) in
      let b = Qmatrix.mul_vec m x in
      let x' = Qmatrix.solve m b in
      Array.iteri (fun i xi -> Alcotest.check qn "solve component" xi x'.(i)) x
    end
  done

let test_singular () =
  let m = Qmatrix.make 2 2 (fun _ _ -> Qnum.one) in
  Alcotest.check qn "det singular" Qnum.zero (Qmatrix.determinant m);
  Alcotest.check_raises "inverse singular" (Failure "Qmatrix: singular matrix")
    (fun () -> ignore (Qmatrix.inverse m))

let test_determinant_known () =
  (* det [[1,2],[3,4]] = -2 *)
  let m =
    Qmatrix.make 2 2 (fun i j -> Qnum.of_int [| [| 1; 2 |]; [| 3; 4 |] |].(i).(j))
  in
  Alcotest.check qn "det 2x2" (Qnum.of_int (-2)) (Qmatrix.determinant m)

let test_kronecker () =
  let a = Qmatrix.make 2 2 (fun i j -> Qnum.of_int ((2 * i) + j + 1)) in
  let b = Qmatrix.identity 3 in
  let k = Qmatrix.kronecker a b in
  Alcotest.(check int) "kron rows" 6 (Qmatrix.rows k);
  Alcotest.check qn "kron entry (0,0)" (Qnum.of_int 1) (Qmatrix.get k 0 0);
  Alcotest.check qn "kron entry (0,3)" (Qnum.of_int 2) (Qmatrix.get k 0 3);
  Alcotest.check qn "kron entry (1,4)" (Qnum.of_int 2) (Qmatrix.get k 1 4);
  (* det(A (x) B) = det A ^ rows(B) * det B ^ rows(A) *)
  let det_a = Qmatrix.determinant a in
  let expected =
    Qnum.mul (Qnum.mul det_a det_a) det_a (* det B = 1 *)
  in
  Alcotest.check qn "kron determinant" expected (Qmatrix.determinant k)

let test_surjection_matrix_invertible () =
  (* The Proposition 3.11 matrix A'_{a,i} = surj(a, i) is triangular with a
     non-zero diagonal, hence invertible, and so is its Kronecker square. *)
  let n = 5 in
  let a' =
    Qmatrix.make (n + 1) (n + 1) (fun a i -> Qnum.of_nat (Combinat.surj a i))
  in
  Alcotest.(check bool)
    "surjection matrix invertible" false
    (Qnum.is_zero (Qmatrix.determinant a'));
  let kron = Qmatrix.kronecker a' a' in
  let inv = Qmatrix.inverse kron in
  Alcotest.(check bool)
    "kron inverse works" true
    (Qmatrix.equal (Qmatrix.mul kron inv) (Qmatrix.identity ((n + 1) * (n + 1))))

let test_lagrange () =
  (* p(x) = 3 - 2x + x^3 through 4 points. *)
  let p x = Qnum.add (Qnum.of_int 3)
      (Qnum.add (Qnum.mul (Qnum.of_int (-2)) x) (Qnum.mul x (Qnum.mul x x)))
  in
  let pts = List.map (fun i ->
      let x = Qnum.of_int i in
      (x, p x)) [ 0; 1; 2; 3 ]
  in
  let coeffs = Qmatrix.lagrange_interpolate pts in
  Alcotest.(check int) "degree bound" 4 (Array.length coeffs);
  Alcotest.check qn "c0" (Qnum.of_int 3) coeffs.(0);
  Alcotest.check qn "c1" (Qnum.of_int (-2)) coeffs.(1);
  Alcotest.check qn "c2" Qnum.zero coeffs.(2);
  Alcotest.check qn "c3" Qnum.one coeffs.(3);
  (* Evaluate away from the sample points. *)
  Alcotest.check qn "eval at 10" (p (Qnum.of_int 10))
    (Qmatrix.eval_poly coeffs (Qnum.of_int 10))

let prop_mulvec_linear =
  QCheck.Test.make ~count:100 ~name:"mul_vec is linear"
    QCheck.(make (QCheck.Gen.int_range 1 1000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let m = random_matrix st 3 in
      let v = Array.init 3 (fun _ -> Qnum.of_int (Random.State.int st 9)) in
      let w = Array.init 3 (fun _ -> Qnum.of_int (Random.State.int st 9)) in
      let sum = Array.init 3 (fun i -> Qnum.add v.(i) w.(i)) in
      let mv = Qmatrix.mul_vec m v
      and mw = Qmatrix.mul_vec m w
      and msum = Qmatrix.mul_vec m sum in
      Array.for_all2 Qnum.equal msum (Array.map2 Qnum.add mv mw))

let () =
  Alcotest.run "linalg"
    [
      ( "qmatrix",
        [
          Alcotest.test_case "identity inverse" `Quick test_identity_inverse;
          Alcotest.test_case "random inverse" `Quick test_inverse_random;
          Alcotest.test_case "solve" `Quick test_solve;
          Alcotest.test_case "singular" `Quick test_singular;
          Alcotest.test_case "determinant" `Quick test_determinant_known;
          Alcotest.test_case "kronecker" `Quick test_kronecker;
          Alcotest.test_case "surjection matrix" `Quick
            test_surjection_matrix_invertible;
          Alcotest.test_case "lagrange" `Quick test_lagrange;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_mulvec_linear ]);
    ]
